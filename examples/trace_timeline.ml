(* Where does the simulated time go?  Trace one communication-bound and one
   compute-bound configuration of the Table 2 workload and render the same
   trace three ways: the ASCII processor timeline, the Profile report
   (per-skeleton / per-processor metrics, communication matrix, critical
   path), and a Chrome trace_event JSON file for chrome://tracing /
   Perfetto.

   Run with: dune exec examples/trace_timeline.exe *)

let run_traced ~n ~w ~h =
  let matrix = Workload.gauss_matrix ~seed:5 ~n in
  Machine.run ~trace:true ~topology:(Topology.mesh ~width:w ~height:h)
    (fun ctx -> Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))

let show label ~json_file r =
  let nprocs = Array.length r.Machine.values in
  Printf.printf "%s\n" label;
  (* view 1: ASCII timeline *)
  print_string
    (Trace.timeline r.Machine.trace ~nprocs ~makespan:r.Machine.time);
  Array.iteri
    (fun p _ ->
      Printf.printf "p%d busy %.0f%%  " p
        (100.0
        *. Trace.busy_fraction r.Machine.trace ~proc:p
             ~makespan:r.Machine.time))
    r.Machine.values;
  Printf.printf "\n\n";
  (* view 2: aggregated profile report *)
  Format.printf "%a@.@." Profile.pp
    (Profile.of_trace r.Machine.trace ~nprocs ~makespan:r.Machine.time);
  (* view 3: Chrome trace_event JSON *)
  let oc = open_out json_file in
  output_string oc (Profile.chrome_json r.Machine.trace ~nprocs);
  close_out oc;
  Printf.printf
    "chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n\n"
    json_file

let () =
  (* compute-bound: a large matrix on few processors *)
  show "gauss n=96 on 2x1 (compute-bound):"
    ~json_file:"trace_gauss_2x1.json"
    (run_traced ~n:96 ~w:2 ~h:1);
  (* communication-bound: a small matrix on many processors *)
  show "gauss n=32 on 8x2 (communication-bound):"
    ~json_file:"trace_gauss_8x2.json"
    (run_traced ~n:32 ~w:8 ~h:2)
