(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 5) on the simulated Parsytec MC, prints them next to
   the published values, and runs one Bechamel micro-benchmark per
   table/figure measuring the wall-clock cost of a representative cell.

   Usage: main.exe [--quick] [--csv DIR] [--jobs N] [--json FILE]
                   [--check FILE] [--threshold X]
                   [--trace-out FILE] [--profile]
                   [table1|table2|figure1|claim51|claim52|ablations|
                    scaling|degradation|collectives|optimize|pdes|
                    bechamel|all]...

   [--check FILE] turns the bechamel run into a regression guard: every
   cell present in the baseline JSON (a previous --json dump, e.g.
   BENCH_4.json) must be no slower than baseline * (1 + threshold)
   (--threshold, default 0.5), and — hardware-independently — the compiled
   engine must beat the AST engine on both skil_frontend pairs.  Any
   violation exits nonzero.  With --quick, bechamel uses a reduced
   per-cell quota suitable for CI.

   [all] covers every table/figure/claim; the Bechamel micro-benchmarks
   spend a fixed time quota per cell regardless of simulator speed, so they
   only run when requested explicitly.  [--jobs N] farms the independent
   simulation cells out to N domains (default: all cores); the printed
   tables are bit-identical whatever N is. *)

(* ------------------------------------------------------------------ *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let skil_source name =
  match
    List.find_opt Sys.file_exists
      [
        "../examples/skil/" ^ name;
        "examples/skil/" ^ name;
        "../../../examples/skil/" ^ name;
      ]
  with
  | Some p -> read p
  | None -> failwith ("cannot find examples/skil/" ^ name)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: wall-clock cost of regenerating one
   representative cell per table/figure. *)

let bechamel_tests () =
  let open Bechamel in
  let seed = 1996 in
  let torus2 = Topology.torus2d ~width:2 ~height:2 () in
  let mesh2 = Topology.mesh ~width:2 ~height:2 in
  let sp_cell () =
    let n = 32 in
    let weight = Workload.graph_weight ~seed ~n ~max_weight:100 in
    Experiments.time_of Cost_model.skil torus2 (fun ctx ->
        Skeletons.destroy ctx (Shortest_paths.run ctx ~n ~weight))
  in
  let gauss_cell pivoting () =
    let n = 32 in
    let matrix = Workload.gauss_matrix ~seed ~n in
    Experiments.time_of Cost_model.skil mesh2 (fun ctx ->
        Skeletons.destroy ctx (Gauss.run ~pivoting ctx ~n ~matrix))
  in
  let figure_cell () =
    (* one gauss cell under both comparators: the unit of work behind every
       Figure 1 point *)
    let n = 32 in
    let matrix = Workload.gauss_matrix ~seed ~n in
    let s =
      Experiments.time_of Cost_model.skil mesh2 (fun ctx ->
          Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))
    in
    let d =
      Experiments.time_of Cost_model.dpfl mesh2 (fun ctx ->
          Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))
    in
    d /. s
  in
  let degraded_cell () =
    (* one reliable-transport run under 20% message loss: the wall-clock
       cost of the fault-injection + retransmission machinery *)
    let n = 32 in
    let matrix = Workload.gauss_matrix ~seed ~n in
    let faults =
      {
        (Fault.none ~seed:1) with
        Fault.link = { Fault.no_link_faults with Fault.drop = 0.2 };
      }
    in
    (Machine.run ~faults ~reliable:true
       ~cost:(Cost_model.make Cost_model.skil)
       ~topology:mesh2
       (fun ctx -> Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix)))
      .Machine.time
  in
  let matmul_cell () =
    let n = 32 in
    let a = Workload.float_matrix ~seed
    and b = Workload.float_matrix ~seed:7 in
    Experiments.time_of Cost_model.skil torus2 (fun ctx ->
        Skeletons.destroy ctx (Matmul.run ctx ~n ~a ~b))
  in
  (* the .skil front end: full parse → typecheck → instantiate → simulate
     pipeline under each execution engine (A/B of Spmd's ?engine) *)
  let gauss_src = skil_source "gauss.skil" in
  let shpaths_src = skil_source "shpaths.skil" in
  let mesh21 = Topology.mesh ~width:2 ~height:1 in
  let gauss_skil engine () =
    (Spmd.run_source ~engine ~topology:mesh21 gauss_src ~entry:"gauss"
       ~args:[ Value.VInt 16 ])
      .Machine.time
  in
  let shpaths_skil engine () =
    (Spmd.run_source ~engine ~topology:torus2 shpaths_src ~entry:"shpaths"
       ~args:[ Value.VInt 16 ])
      .Machine.time
  in
  [
    Test.make ~name:"table1_cell(shpaths-2x2-n32)"
      (Staged.stage (fun () -> ignore (sp_cell ())));
    Test.make ~name:"table2_cell(gauss-2x2-n32)"
      (Staged.stage (fun () -> ignore (gauss_cell Gauss.No_pivot_search ())));
    Test.make ~name:"figure1_point(gauss-skil+dpfl)"
      (Staged.stage (fun () -> ignore (figure_cell ())));
    Test.make ~name:"claim51_cell(matmul-2x2-n32)"
      (Staged.stage (fun () -> ignore (matmul_cell ())));
    Test.make ~name:"claim52_cell(gauss-pivoting)"
      (Staged.stage (fun () -> ignore (gauss_cell Gauss.Partial ())));
    Test.make ~name:"degradation_cell(gauss-2x2-drop0.2)"
      (Staged.stage (fun () -> ignore (degraded_cell ())));
    Test.make ~name:"skil_frontend(gauss-n16-ast)"
      (Staged.stage (fun () -> ignore (gauss_skil `Ast ())));
    Test.make ~name:"skil_frontend(gauss-n16-compiled)"
      (Staged.stage (fun () -> ignore (gauss_skil `Compiled ())));
    Test.make ~name:"skil_frontend(shpaths-n16-ast)"
      (Staged.stage (fun () -> ignore (shpaths_skil `Ast ())));
    Test.make ~name:"skil_frontend(shpaths-n16-compiled)"
      (Staged.stage (fun () -> ignore (shpaths_skil `Compiled ())));
  ]

(* ------------------------------------------------------------------ *)
(* Skeleton-fusion cells: every corpus app simulated under
   --optimize none and --optimize fuse.  Simulated makespans and charged
   operations, fully deterministic (identical under any quota), so a
   baseline check pins them exactly. *)

type opt_cell = {
  oc_app : string;
  oc_none_ms : float;
  oc_fuse_ms : float;
  oc_none_ops : int;
  oc_fuse_ops : int;
  oc_identical : bool;  (* per-processor printed output and values agree *)
}

let optimize_apps =
  [
    ("gauss-n16", "gauss.skil", "gauss", [ Value.VInt 16 ], `Mesh (2, 1));
    ("shpaths-n16", "shpaths.skil", "shpaths", [ Value.VInt 16 ], `Torus (2, 2));
    ("matmul-n8", "matmul.skil", "matmul", [ Value.VInt 8 ], `Torus (2, 2));
    ("jacobi-n16", "jacobi.skil", "jacobi", [ Value.VInt 16 ], `Mesh (2, 2));
  ]

(* fusable pipelines the optimizer must strictly improve (ISSUE acceptance) *)
let optimize_must_improve = [ "gauss-n16"; "matmul-n8"; "jacobi-n16" ]

let optimize_cells () =
  List.map
    (fun (app, file, entry, args, topo) ->
      let topology =
        match topo with
        | `Mesh (w, h) -> Topology.mesh ~width:w ~height:h
        | `Torus (w, h) -> Topology.torus2d ~width:w ~height:h ()
      in
      let src = skil_source file in
      let go optimize =
        Spmd.run_source ~optimize ~trace:true ~topology src ~entry ~args
      in
      let ops r =
        let nprocs = Array.length r.Machine.values in
        let p =
          Profile.of_trace r.Machine.trace ~nprocs ~makespan:r.Machine.time
        in
        List.fold_left
          (fun acc s ->
            acc + s.Profile.ops_kernel + s.Profile.ops_mapped
            + s.Profile.ops_scalar)
          0 p.Profile.spans
      in
      let rn = go `None and rf = go `Fuse in
      let identical =
        Array.length rn.Machine.values = Array.length rf.Machine.values
        && Array.for_all2
             (fun a b ->
               a.Spmd.printed = b.Spmd.printed
               && Value.describe a.Spmd.value = Value.describe b.Spmd.value)
             rn.Machine.values rf.Machine.values
      in
      {
        oc_app = app;
        oc_none_ms = rn.Machine.time *. 1e3;
        oc_fuse_ms = rf.Machine.time *. 1e3;
        oc_none_ops = ops rn;
        oc_fuse_ops = ops rf;
        oc_identical = identical;
      })
    optimize_apps

let print_optimize cells =
  print_endline
    "== Skeleton fusion: simulated makespan and charged ops, none vs fuse ==";
  Printf.printf "%-14s %12s %12s %10s %10s %8s\n" "app" "none (ms)"
    "fuse (ms)" "none ops" "fuse ops" "ops";
  List.iter
    (fun c ->
      Printf.printf "%-14s %12.4f %12.4f %10d %10d %7.1f%%\n" c.oc_app
        c.oc_none_ms c.oc_fuse_ms c.oc_none_ops c.oc_fuse_ops
        (100.
        *. float_of_int (c.oc_none_ops - c.oc_fuse_ops)
        /. float_of_int (max 1 c.oc_none_ops)))
    cells;
  print_newline ()

(* Structural guarantees of the fusion pass, checked on this run's
   deterministic cells: fused output identical everywhere, never more
   charged ops or a longer makespan anywhere, and strictly fewer ops on
   the apps with fusable pipelines. *)
let check_optimize cells =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun c ->
      if not c.oc_identical then
        fail "optimize: fused %s output differs from unoptimized" c.oc_app;
      if c.oc_fuse_ops > c.oc_none_ops then
        fail "optimize: fuse charges more ops on %s (%d vs %d)" c.oc_app
          c.oc_fuse_ops c.oc_none_ops;
      if c.oc_fuse_ms > c.oc_none_ms then
        fail "optimize: fuse makespan worse on %s (%.4f vs %.4f ms)" c.oc_app
          c.oc_fuse_ms c.oc_none_ms;
      if List.mem c.oc_app optimize_must_improve
         && c.oc_fuse_ops >= c.oc_none_ops
      then
        fail "optimize: fuse must charge strictly fewer ops on %s (%d vs %d)"
          c.oc_app c.oc_fuse_ops c.oc_none_ops)
    cells;
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Parallel-simulation (PDES) strong-scaling cells: wall-clock of one
   p = 256 shortest-paths simulation at --sim-domains {1, 2, 4}.  The
   simulated makespan must be bit-identical whatever the shard count —
   only the wall clock may move.  Wall-clock numbers are hardware facts:
   they are recorded in the JSON dump but exempt from the baseline
   slowdown threshold (a 1-core container and a 4-core runner would
   otherwise guard each other's clocks); the makespan is deterministic
   and pinned exactly. *)

type pdes_cell = {
  pc_domains : int;
  pc_wall_ms : float;
  pc_makespan : float;  (* simulated seconds — shard-count invariant *)
}

(* 16x16 torus = 256 simulated processors; n = 256 keeps one sequential
   run around a few wall-clock seconds, enough work for the shards to
   amortize their synchronisation. *)
let pdes_sizes = (16, 256)

let pdes_name =
  let q, n = pdes_sizes in
  Printf.sprintf "pdes/shpaths-%dx%d-n%d" q q n

let pdes_cells () =
  let q, n = pdes_sizes in
  let topology = Topology.torus2d ~width:q ~height:q () in
  let weight = Workload.graph_weight ~seed:1996 ~n ~max_weight:100 in
  List.map
    (fun sim_domains ->
      let t0 = Unix.gettimeofday () in
      let r =
        Machine.run ~sim_domains
          ~cost:(Cost_model.make Cost_model.skil)
          ~topology
          (fun ctx ->
            Skeletons.destroy ctx (Shortest_paths.run ctx ~n ~weight))
      in
      {
        pc_domains = sim_domains;
        pc_wall_ms = (Unix.gettimeofday () -. t0) *. 1e3;
        pc_makespan = r.Machine.time;
      })
    [ 1; 2; 4 ]

let print_pdes cells =
  let q, n = pdes_sizes in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "== Parallel simulation: shpaths n=%d on %dx%d torus (p=%d), host \
     cores %d ==\n"
    n q q (q * q) cores;
  Printf.printf "%-12s %12s %14s %9s\n" "sim-domains" "wall (ms)"
    "makespan (s)" "speedup";
  let base = (List.hd cells).pc_wall_ms in
  List.iter
    (fun c ->
      Printf.printf "%-12d %12.1f %14.6f %8.2fx\n" c.pc_domains c.pc_wall_ms
        c.pc_makespan (base /. c.pc_wall_ms))
    cells;
  print_newline ()

(* Guarantees of the sharded simulator, checked on this run's cells:
   bit-identical makespan at every shard count (and against the baseline
   dump when it pins the cell), and — on hosts with enough cores for the
   shards to actually run in parallel — sim-domains 4 must beat the
   sequential scheduler in wall-clock.  The speedup leg is skipped on
   narrower hosts, where every shard shares one core and only overhead
   would be measured. *)
let check_pdes ?baseline cells =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match cells with
  | [] -> fail "pdes: no cells ran"
  | base :: rest ->
      List.iter
        (fun c ->
          if c.pc_makespan <> base.pc_makespan then
            fail
              "pdes: makespan at sim-domains %d (%.6f s) differs from \
               sequential (%.6f s)"
              c.pc_domains c.pc_makespan base.pc_makespan)
        rest;
      (match baseline with
      | None -> ()
      | Some cells' -> (
          match List.assoc_opt (pdes_name ^ "/makespan-ms") cells' with
          | None -> ()
          | Some ms ->
              if Float.abs ((base.pc_makespan *. 1e3) -. ms) > 1e-3 then
                fail "pdes: makespan %.4f ms differs from baseline %.4f ms"
                  (base.pc_makespan *. 1e3)
                  ms));
      let cores = Domain.recommended_domain_count () in
      if cores >= 4 then
        match List.find_opt (fun c -> c.pc_domains = 4) cells with
        | Some c4 when c4.pc_wall_ms >= base.pc_wall_ms ->
            fail
              "pdes: sim-domains 4 (%.1f ms) not faster than sequential \
               (%.1f ms) on a %d-core host"
              c4.pc_wall_ms base.pc_wall_ms cores
        | _ -> ());
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Native execution: the same compiled closures on real OCaml domains
   (shared-memory channels, no simulated clock) against the compiled
   simulator that is their oracle.  Values and printed output are pinned
   bit-identical by the test suite; here only the wall clock is measured.
   One heavy cell per app (2x2 = 4 ranks, the largest grid shpaths' final
   print loop stays local on), native at 1/2/4 domains plus the simulator
   reference. *)

type native_cell = {
  xc_app : string;
  xc_n : int;
  xc_domains : int; (* 0 = compiled-simulator reference *)
  xc_wall_ms : float;
}

(* (app, file, entry, n, torus?, asserted): [asserted] marks the cell heavy
   enough for the cores-gated speedup guarantee — jacobi at n=256 is a few
   milliseconds of compute and only rides along as a data point. *)
let native_specs =
  [
    ("shpaths", "shpaths.skil", "shpaths", 192, true, true);
    ("jacobi", "jacobi.skil", "jacobi", 256, false, false);
  ]

let native_name app n = Printf.sprintf "native/%s-n%d" app n
let native_domain_counts = [ 1; 2; 4 ]

let native_cells () =
  List.concat_map
    (fun (app, file, entry, n, torus, _) ->
      let src = skil_source file in
      let topology =
        if torus then Topology.torus2d ~width:2 ~height:2 ()
        else Topology.mesh ~width:2 ~height:2
      in
      let wall engine ?native_domains () =
        let t0 = Unix.gettimeofday () in
        ignore
          (Spmd.run_source ~engine ?native_domains ~topology src ~entry
             ~args:[ Value.VInt n ]);
        (Unix.gettimeofday () -. t0) *. 1e3
      in
      { xc_app = app; xc_n = n; xc_domains = 0;
        xc_wall_ms = wall `Compiled () }
      :: List.map
           (fun d ->
             { xc_app = app; xc_n = n; xc_domains = d;
               xc_wall_ms = wall `Native ~native_domains:d () })
           native_domain_counts)
    native_specs

let print_native cells =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "== Native execution: .skil programs on real domains (2x2 = 4 ranks), \
     host cores %d ==\n"
    cores;
  Printf.printf "%-16s %-12s %12s %9s\n" "app" "backend" "wall (ms)"
    "speedup";
  List.iter
    (fun (app, _, _, n, _, _) ->
      let mine = List.filter (fun c -> c.xc_app = app) cells in
      let sim =
        List.find (fun c -> c.xc_domains = 0) mine
      in
      List.iter
        (fun c ->
          Printf.printf "%-16s %-12s %12.1f %8.2fx\n"
            (Printf.sprintf "%s n=%d" app n)
            (if c.xc_domains = 0 then "sim"
             else Printf.sprintf "native d=%d" c.xc_domains)
            c.xc_wall_ms
            (sim.xc_wall_ms /. c.xc_wall_ms))
        mine)
    native_specs;
  print_newline ()

(* The backend's raison d'etre, checked on hosts wide enough to show it:
   with 4 real cores, native at 4 domains must beat the compiled simulator
   (which runs all ranks on one core) on every asserted cell.  Narrower
   hosts skip the leg — there native only adds channel overhead. *)
let check_native cells =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if cells = [] then fail "native: no cells ran";
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then
    List.iter
      (fun (app, _, _, _, _, asserted) ->
        if asserted then
          let find d =
            List.find_opt
              (fun c -> c.xc_app = app && c.xc_domains = d)
              cells
          in
          match (find 0, find 4) with
          | Some sim, Some n4 ->
              if n4.xc_wall_ms >= sim.xc_wall_ms then
                fail
                  "native: %s at 4 domains (%.1f ms) not faster than the \
                   compiled simulator (%.1f ms) on a %d-core host"
                  app n4.xc_wall_ms sim.xc_wall_ms cores
          | _ -> fail "native: %s cells missing from this run" app)
      native_specs;
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* skild service cells: an in-process {!Service} driven through a
   loopback client — the daemon minus the socket.  Throughput (jobs/sec
   over a pipelined batch of identical jobs, all but the first cache
   hits), client-side p50/p99 latency, and the service-side cost of a
   cold compile+run vs a cache-hit run (the [ms=] field of OK replies).
   All wall-clock: recorded in the JSON dump, exempt from the cross-host
   slowdown threshold; the hit-beats-cold assertion is checked on this
   run's own numbers. *)

type skild_cell = {
  sk_expected : int;
  sk_answered : int;
  sk_ok : int;
  sk_jobs_per_sec : float;
  sk_p50_ms : float;
  sk_p99_ms : float;
  sk_cold_p50_ms : float; (* service ms of cache-miss replies *)
  sk_hit_p50_ms : float; (* service ms of cache-hit replies *)
}

let skild_src =
  "int conv(int v, Index ix) { return v; }\n\
   int sq(int v, Index ix) { return v * v; }\n\
   int addi(int a, int b) { return a + b; }\n\
   int init(Index ix) { return ix[0] + 1; }\n\
   int main() {\n\
  \  array<int> a;\n\
  \  a = array_create(1, {64}, {0}, {-1}, init, DISTR_DEFAULT);\n\
  \  array_map(sq, a, a);\n\
  \  print_int(array_fold(conv, addi, a));\n\
  \  array_destroy(a);\n\
  \  return 0;\n\
   }\n"

let skild_batch = 200
let skild_cold = 30

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  match Array.length a with 0 -> nan | n -> a.(n / 2)

let skild_cells () =
  let config =
    { Service.default_config with Service.workers = 2; queue_cap = 512 }
  in
  let t = Service.create ~config () in
  let mx = Mutex.create () and cv = Condition.create () in
  let replies = Queue.create () in
  let write line =
    (* stamp arrival here, not after the drain: latency must not include
       time the reply sat in this harness's queue *)
    let now = Unix.gettimeofday () in
    Mutex.lock mx;
    Queue.add (line, now) replies;
    Condition.signal cv;
    Mutex.unlock mx
  in
  let client = Service.attach t ~write in
  let await n =
    let got = ref [] in
    Mutex.lock mx;
    for _ = 1 to n do
      while Queue.is_empty replies do
        Condition.wait cv mx
      done;
      got := Queue.pop replies :: !got
    done;
    Mutex.unlock mx;
    List.rev_map (fun (line, at) -> (Proto.parse_reply line, at)) !got
  in
  let submit i source =
    let spec = { Jobspec.default with Jobspec.id = string_of_int i } in
    Service.submit t client ~spec ~source
  in
  (* cold compiles: each source distinct by a comment, so every job pays
     parse + typecheck + instantiate + compile *)
  for i = 1 to skild_cold do
    submit i (Printf.sprintf "/* cold %d */\n%s" i skild_src)
  done;
  let cold = await skild_cold in
  (* throughput batch: identical jobs, all but the first are cache hits *)
  let t0 = Unix.gettimeofday () in
  let lat = Array.make skild_batch nan in
  let sent = Array.make skild_batch 0. in
  for i = 0 to skild_batch - 1 do
    sent.(i) <- Unix.gettimeofday ();
    submit (skild_cold + 1 + i) skild_src
  done;
  let batch = await skild_batch in
  let elapsed = Unix.gettimeofday () -. t0 in
  List.iteri
    (fun j (r, at) ->
      match r with
      | Ok (Proto.Ok_reply { id; _ }) ->
          (* replies arrive in completion order; latency from the matching
             submit timestamp to the reply's arrival stamp *)
          let i = int_of_string id - skild_cold - 1 in
          lat.(j) <- (at -. sent.(i)) *. 1000.
      | _ -> ())
    batch;
  let s = Service.stats t in
  Service.shutdown t;
  let service_ms ~hit rs =
    List.filter_map
      (function
        | Ok (Proto.Ok_reply { cache_hit; ms; _ }), _ when cache_hit = hit ->
            Some ms
        | _ -> None)
      rs
    |> Array.of_list
  in
  let ok_count =
    List.length
      (List.filter
         (function Ok (Proto.Ok_reply _), _ -> true | _ -> false)
         (cold @ batch))
  in
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let pct p =
    match Array.length sorted with
    | 0 -> nan
    | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  {
    sk_expected = skild_cold + skild_batch;
    sk_answered = s.Service.ok + s.Service.err;
    sk_ok = ok_count;
    sk_jobs_per_sec = float_of_int skild_batch /. elapsed;
    sk_p50_ms = pct 0.50;
    sk_p99_ms = pct 0.99;
    sk_cold_p50_ms = median (service_ms ~hit:false (cold @ batch));
    sk_hit_p50_ms = median (service_ms ~hit:true batch);
  }

let print_skild c =
  print_endline
    "== skild service: in-process daemon, loopback client, cache on ==";
  Printf.printf "%-26s %12s\n" "metric" "value";
  Printf.printf "%-26s %12d / %d\n" "jobs answered" c.sk_answered c.sk_expected;
  Printf.printf "%-26s %12.1f\n" "jobs/sec (hit batch)" c.sk_jobs_per_sec;
  Printf.printf "%-26s %12.3f\n" "p50 latency (ms)" c.sk_p50_ms;
  Printf.printf "%-26s %12.3f\n" "p99 latency (ms)" c.sk_p99_ms;
  Printf.printf "%-26s %12.3f\n" "cold compile+run (ms)" c.sk_cold_p50_ms;
  Printf.printf "%-26s %12.3f\n" "cache-hit run (ms)" c.sk_hit_p50_ms;
  print_newline ()

(* Contract of the service, checked on this run's own numbers (no
   baseline needed, hardware-independent): every job answered exactly
   once and OK, and the compiled-program cache must make a hit strictly
   cheaper than a cold compile — the cache's whole reason to exist. *)
let check_skild c =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if c.sk_answered <> c.sk_expected then
    fail "skild: %d jobs submitted but %d answered" c.sk_expected c.sk_answered;
  if c.sk_ok <> c.sk_expected then
    fail "skild: %d of %d jobs did not answer OK" (c.sk_expected - c.sk_ok)
      c.sk_expected;
  if not (c.sk_hit_p50_ms < c.sk_cold_p50_ms) then
    fail
      "skild: cache-hit run (%.3f ms) not cheaper than cold compile+run \
       (%.3f ms)"
      c.sk_hit_p50_ms c.sk_cold_p50_ms;
  List.rev !failures

(* Parse the flat JSON dump this harness writes with [--json]: one
   [  "name": 1.2345,] line per cell.  Hand-rolled on purpose — no JSON
   dependency, and the format is ours. *)
let read_baseline file =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
  let cells = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match String.index_opt line ':' with
       | Some colon
         when String.length line > 2 && line.[0] = '"' && line.[colon - 1] = '"'
         ->
           let name = String.sub line 1 (colon - 2) in
           let rest =
             String.trim (String.sub line (colon + 1)
                            (String.length line - colon - 1))
           in
           let rest =
             if String.length rest > 0
                && rest.[String.length rest - 1] = ','
             then String.sub rest 0 (String.length rest - 1)
             else rest
           in
           (match float_of_string_opt rest with
            | Some ms -> cells := (name, ms) :: !cells
            | None -> ())
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  Ok (List.rev !cells)

(* Regression guard over the estimates of one bechamel run.

   Two layers: (1) hardware-independent invariants — the compiled engine
   must beat the AST engine on both skil_frontend pairs (the PR-3 shpaths
   inversion, where compiled was *slower* than ast, can never silently
   return); (2) if a baseline file is given, every cell present in it must
   not be slower than baseline * (1 + threshold).  Returns the failure
   messages. *)
let check_estimates ?baseline ~threshold estimates =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let find name = List.assoc_opt name estimates in
  List.iter
    (fun prog ->
      let ast = Printf.sprintf "cells/skil_frontend(%s-ast)" prog in
      let compiled = Printf.sprintf "cells/skil_frontend(%s-compiled)" prog in
      match (find ast, find compiled) with
      | Some a, Some c ->
          if c >= a then
            fail "engine inversion: %s (%.3f ms) is not faster than %s (%.3f ms)"
              compiled c ast a
      | _ -> fail "pair %s/%s missing from this run" ast compiled)
    [ "gauss-n16"; "shpaths-n16" ];
  (match baseline with
   | None -> ()
   | Some cells ->
       List.iter
         (fun (name, base) ->
           if
             String.starts_with ~prefix:"pdes/" name
             || String.starts_with ~prefix:"native/" name
             || String.starts_with ~prefix:"skild/" name
           then
             (* wall-clock scaling cells and host facts: checked by
                check_pdes / check_native / check_skild, not by the
                slowdown threshold *)
             ()
           else
           match find name with
           | None ->
               (* a baseline cell that silently vanishes from the run is a
                  coverage regression, not an informational footnote *)
               fail "baseline cell %s missing from this run" name
           | Some now ->
               let limit = base *. (1. +. threshold) in
               if now > limit then
                 fail "regression: %s is %.3f ms, baseline %.3f ms (limit %.3f)"
                   name now base limit)
         cells);
  List.rev !failures

(* Structural guarantees of the collective-selection layer, checked on the
   deterministic simulated cells of this run (no baseline needed): auto must
   be within 5% of the best fixed algorithm on every grid point, at least
   two kind/topology groups must exhibit a real algorithm crossover as the
   payload grows, and auto must not lose to the legacy trees end-to-end. *)
let check_collectives cells apps =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun c ->
      let best =
        List.fold_left
          (fun b (_, t) -> Float.min b t)
          infinity c.Experiments.cc_algs
      in
      if c.Experiments.cc_auto > best *. 1.05 then
        fail
          "collectives: auto %.3f ms not within 5%%%% of best fixed %.3f ms \
           on %s-%s-b%d"
          (c.Experiments.cc_auto *. 1e3)
          (best *. 1e3) c.Experiments.cc_kind c.Experiments.cc_topo
          c.Experiments.cc_bytes)
    cells;
  let groups = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = (c.Experiments.cc_kind, c.Experiments.cc_topo) in
      let best_name =
        fst
          (List.fold_left
             (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
             ("", infinity) c.Experiments.cc_algs)
      in
      Hashtbl.replace groups key
        (best_name :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    cells;
  let crossovers =
    Hashtbl.fold
      (fun _ names acc ->
        if List.length (List.sort_uniq compare names) >= 2 then acc + 1
        else acc)
      groups 0
  in
  if crossovers < 2 then
    fail
      "collectives: only %d kind/topology groups show an algorithm crossover \
       (need >= 2)"
      crossovers;
  List.iter
    (fun a ->
      if a.Experiments.ca_auto > a.Experiments.ca_legacy then
        fail "collectives: auto (%.4f s) slower than legacy trees (%.4f s) on %s"
          a.Experiments.ca_auto a.Experiments.ca_legacy a.Experiments.ca_app)
    apps;
  List.rev !failures

let run_bechamel ~quick ~jobs ~json ~check ~threshold () =
  print_endline "== Bechamel: wall-clock cost of one simulation per cell ==";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  (* --quick shrinks the per-cell time quota (CI guard); full runs keep the
     baseline-grade quota *)
  let cfg =
    if quick then
      Benchmark.cfg ~limit:20 ~quota:(Time.second 0.1) ~stabilize:false ()
    else
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols instance raw) with
          | Some [ est ] ->
              estimates := (name, est /. 1e6) :: !estimates;
              Printf.printf "%-40s %10.3f ms/run\n%!" name (est /. 1e6)
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n%!" name
          | exception _ -> Printf.printf "%-40s (analysis failed)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"cells" [ t ]) (bechamel_tests ()));
  (* deterministic collective-algorithm cells ride along in the same dump:
     simulated makespans, identical under any quota, so a baseline check
     pins them exactly *)
  let coll_cells, coll_apps = Experiments.collectives_crossover ~jobs () in
  let coll_estimates =
    List.concat_map
      (fun c ->
        let base =
          Printf.sprintf "coll/%s-%s-p%d-b%d" c.Experiments.cc_kind
            c.Experiments.cc_topo c.Experiments.cc_p c.Experiments.cc_bytes
        in
        List.map
          (fun (n, t) -> (base ^ "/" ^ n, t *. 1e3))
          c.Experiments.cc_algs
        @ [ (base ^ "/auto", c.Experiments.cc_auto *. 1e3) ])
      coll_cells
    @ List.concat_map
        (fun a ->
          [
            ("coll/app/" ^ a.Experiments.ca_app ^ "/legacy",
             a.Experiments.ca_legacy *. 1e3);
            ("coll/app/" ^ a.Experiments.ca_app ^ "/auto",
             a.Experiments.ca_auto *. 1e3);
          ])
        coll_apps
  in
  List.iter
    (fun (n, ms) -> Printf.printf "%-52s %10.3f ms (simulated)\n%!" n ms)
    coll_estimates;
  estimates := List.rev_append coll_estimates !estimates;
  (* skeleton-fusion cells ride along too: deterministic simulated
     makespans and charged ops under --optimize none vs fuse *)
  let opt_cells = optimize_cells () in
  let opt_estimates =
    List.concat_map
      (fun c ->
        [
          ("opt/" ^ c.oc_app ^ "/none-ms", c.oc_none_ms);
          ("opt/" ^ c.oc_app ^ "/fuse-ms", c.oc_fuse_ms);
          ("opt/" ^ c.oc_app ^ "/none-ops", float_of_int c.oc_none_ops);
          ("opt/" ^ c.oc_app ^ "/fuse-ops", float_of_int c.oc_fuse_ops);
        ])
      opt_cells
  in
  List.iter
    (fun (n, ms) -> Printf.printf "%-52s %10.3f (simulated)\n%!" n ms)
    opt_estimates;
  estimates := List.rev_append opt_estimates !estimates;
  (* parallel-simulation strong-scaling cells ride along last: wall-clock
     at each shard count plus the (deterministic) makespan they must all
     reproduce, and the core count that contextualises the speedup *)
  let pdes = pdes_cells () in
  let pdes_estimates =
    ("pdes/host-cores", float_of_int (Domain.recommended_domain_count ()))
    :: (pdes_name ^ "/makespan-ms", (List.hd pdes).pc_makespan *. 1e3)
    :: List.map
         (fun c ->
           (Printf.sprintf "%s/sd%d/wall-ms" pdes_name c.pc_domains,
            c.pc_wall_ms))
         pdes
  in
  List.iter
    (fun (n, ms) -> Printf.printf "%-52s %10.3f\n%!" n ms)
    pdes_estimates;
  estimates := List.rev_append pdes_estimates !estimates;
  (* native-backend strong-scaling cells: wall-clock per domain count next
     to the compiled-simulator reference (values pinned equal by the tests) *)
  let native = native_cells () in
  let native_estimates =
    List.map
      (fun c ->
        ( (if c.xc_domains = 0 then
             native_name c.xc_app c.xc_n ^ "/sim/wall-ms"
           else
             Printf.sprintf "%s/d%d/wall-ms"
               (native_name c.xc_app c.xc_n)
               c.xc_domains),
          c.xc_wall_ms ))
      native
  in
  List.iter
    (fun (n, ms) -> Printf.printf "%-52s %10.3f\n%!" n ms)
    native_estimates;
  estimates := List.rev_append native_estimates !estimates;
  (* skild service cells: throughput and latency of the in-process daemon
     plus the cold-compile-vs-cache-hit split that check_skild pins *)
  let skild = skild_cells () in
  let skild_estimates =
    [
      ("skild/jobs-per-sec", skild.sk_jobs_per_sec);
      ("skild/p50-ms", skild.sk_p50_ms);
      ("skild/p99-ms", skild.sk_p99_ms);
      ("skild/cold-p50-ms", skild.sk_cold_p50_ms);
      ("skild/hit-p50-ms", skild.sk_hit_p50_ms);
    ]
  in
  List.iter
    (fun (n, ms) -> Printf.printf "%-52s %10.3f\n%!" n ms)
    skild_estimates;
  estimates := List.rev_append skild_estimates !estimates;
  print_newline ();
  (match json with
   | None -> ()
   | Some file ->
       (* flat machine-readable dump, used to refresh BENCH_*.json baselines *)
       let oc = open_out file in
       output_string oc "{\n";
       List.iteri
         (fun i (name, ms) ->
           Printf.fprintf oc "  %S: %.4f%s\n" name ms
             (if i = List.length !estimates - 1 then "" else ","))
         (List.rev !estimates);
       output_string oc "}\n";
       close_out oc;
       Printf.printf "bechamel estimates written to %s\n\n" file);
  match check with
  | None -> ()
  | Some baseline_file ->
      let baseline =
        match read_baseline baseline_file with
        | Ok cells -> cells
        | Error msg ->
            (* a missing baseline is a check failure, not a crash: say
               which file and why, then exit nonzero like any other
               violation *)
            Printf.printf "check FAILED: cannot read baseline %s: %s\n\n"
              baseline_file msg;
            Pool.shutdown ();
            exit 1
      in
      (match
         check_estimates ~baseline ~threshold (List.rev !estimates)
         @ check_collectives coll_cells coll_apps
         @ check_optimize opt_cells
         @ check_pdes ~baseline pdes
         @ check_native native
         @ check_skild skild
       with
       | [] ->
           Printf.printf
             "check: all cells within %.0f%% of %s, compiled beats ast\n\n"
             (threshold *. 100.) baseline_file
       | failures ->
           List.iter (fun m -> Printf.printf "check FAILED: %s\n" m) failures;
           print_newline ();
           Pool.shutdown ();
           exit 1)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec extract_opt name = function
    | [ flag ] when flag = name -> failwith (name ^ " expects a value")
    | flag :: value :: rest when flag = name ->
        let v, r = extract_opt name rest in
        ((if v = None then Some value else v), r)
    | x :: rest ->
        let v, r = extract_opt name rest in
        (v, x :: r)
    | [] -> (None, [])
  in
  let csv_dir, args = extract_opt "--csv" args in
  let jobs_arg, args = extract_opt "--jobs" args in
  let json_file, args = extract_opt "--json" args in
  let check_file, args = extract_opt "--check" args in
  let threshold_arg, args = extract_opt "--threshold" args in
  let trace_out, args = extract_opt "--trace-out" args in
  let threshold =
    match threshold_arg with
    | None -> 0.5
    | Some s -> (
        match float_of_string_opt s with
        | Some t when t >= 0. -> t
        | Some _ | None ->
            failwith "--threshold expects a non-negative float (0.5 = +50%)")
  in
  let want_profile = List.mem "--profile" args in
  let args = List.filter (fun a -> a <> "--profile") args in
  let jobs =
    match jobs_arg with
    | None -> Pool.default_jobs ()
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> n
        | Some _ | None -> failwith "--jobs expects a positive integer")
  in
  let targets = List.filter (fun a -> a <> "--quick") args in
  let targets = if targets = [] then [ "all" ] else targets in
  let wants t = List.mem t targets || List.mem "all" targets in
  Printf.printf
    "Skil reproduction benchmarks (simulated Parsytec MC, T800 mesh)%s [jobs %d]\n\n"
    (if quick then " [quick]" else "")
    jobs;
  let t1_memo = ref None in
  let table1 () =
    match !t1_memo with
    | Some r -> r
    | None ->
        let r = Experiments.table1 ~quick ~jobs () in
        t1_memo := Some r;
        r
  in
  let t2_memo = ref None in
  let table2 () =
    match !t2_memo with
    | Some r -> r
    | None ->
        let r = Experiments.table2 ~quick ~jobs () in
        t2_memo := Some r;
        r
  in
  if wants "table1" then Report.print_table1 ~jobs ~quick ();
  if wants "table2" then Report.print_table2 (table2 ()) ~quick;
  if wants "figure1" then Report.print_figure1 (table2 ());
  if wants "claim51" then Report.print_claim51 ~jobs ~quick ();
  if wants "claim52" then Report.print_claim52 ~jobs ~quick ();
  if wants "ablations" then Report.print_ablations ~jobs ~quick ();
  if wants "scaling" then Report.print_scaling ~jobs ~quick ();
  if wants "degradation" then Report.print_degradation ~jobs ~quick ();
  (match csv_dir with
   | Some dir -> Report.write_csvs ~dir (table1 ()) (table2 ())
   | None -> ());
  (* explicit-only: Bechamel spends a fixed time quota per cell, which would
     drown the tables' wall-clock in any speedup measurement of [all] *)
  if wants "collectives" then Report.print_collectives ~jobs ();
  if wants "optimize" then print_optimize (optimize_cells ());
  (* explicit-only for the same reason as bechamel below, plus the table
     is wall-clock and would break the jobs-N determinism diff of [all] *)
  if List.mem "pdes" targets then print_pdes (pdes_cells ());
  if List.mem "native" targets then print_native (native_cells ());
  if List.mem "skild" targets then print_skild (skild_cells ());
  if List.mem "bechamel" targets then
    run_bechamel ~quick ~jobs ~json:json_file ~check:check_file ~threshold ();
  (* tracing is opt-in and re-runs its own cell, so the timed table cells
     above always execute with recording disabled *)
  (if trace_out <> None || want_profile then begin
     let n, (w, h), r = Experiments.traced_gauss_cell ~quick () in
     let nprocs = w * h in
     Printf.printf "== traced cell: gauss n=%d on %dx%d (%.4f s simulated) ==\n"
       n w h r.Machine.time;
     (match trace_out with
      | Some file ->
          let oc = open_out file in
          output_string oc (Profile.chrome_json r.Machine.trace ~nprocs);
          close_out oc;
          Printf.printf
            "chrome trace written to %s (open in chrome://tracing or \
             ui.perfetto.dev)\n"
            file
      | None -> ());
     if want_profile then
       Format.printf "%a@." Profile.pp
         (Profile.of_trace r.Machine.trace ~nprocs ~makespan:r.Machine.time);
     print_newline ()
   end);
  Pool.shutdown ()
