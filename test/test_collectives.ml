let run ~procs f =
  Machine.run ~topology:(Topology.mesh ~width:procs ~height:1) f

let sizes = [ 1; 2; 3; 4; 5; 7; 8; 13; 16 ]

let test_bcast () =
  List.iter
    (fun p ->
      for root = 0 to min 2 (p - 1) do
        let r =
          run ~procs:p (fun ctx ->
              let v = if Machine.self ctx = root then 4242 else -1 in
              Collectives.bcast ctx ~tag:0 ~root ~bytes:4 v)
        in
        Array.iteri
          (fun i v ->
            Alcotest.(check int)
              (Printf.sprintf "p=%d root=%d rank=%d" p root i)
              4242 v)
          r.Machine.values
      done)
    sizes

let test_reduce_sum () =
  List.iter
    (fun p ->
      let r =
        run ~procs:p (fun ctx ->
            Collectives.reduce ctx ~tag:0 ~root:0 ~bytes:4 ( + )
              (Machine.self ctx + 1))
      in
      Alcotest.(check int)
        (Printf.sprintf "sum p=%d" p)
        (p * (p + 1) / 2)
        r.Machine.values.(0))
    sizes

let test_allreduce_max () =
  List.iter
    (fun p ->
      let r =
        run ~procs:p (fun ctx ->
            Collectives.allreduce ctx ~tag:0 ~bytes:4 max
              ((Machine.self ctx * 37) mod 11))
      in
      let expected = Array.fold_left max min_int r.Machine.values in
      Array.iter
        (fun v -> Alcotest.(check int) "all equal max" expected v)
        r.Machine.values)
    sizes

let test_allreduce_nonroot_value () =
  let r =
    run ~procs:5 (fun ctx ->
        Collectives.allreduce ctx ~tag:0 ~bytes:4 ( + ) (Machine.self ctx))
  in
  Array.iter (fun v -> Alcotest.(check int) "sum 0..4" 10 v) r.Machine.values

let test_barrier_aligns_clocks () =
  let r =
    run ~procs:4 (fun ctx ->
        (* rank 3 is slow; after the barrier nobody's clock may be behind
           the time rank 3 entered it *)
        if Machine.self ctx = 3 then Machine.compute ctx 5.0;
        Collectives.barrier ctx ~tag:0;
        Machine.clock ctx)
  in
  Array.iter
    (fun c -> Alcotest.(check bool) "clock past barrier" true (c >= 5.0))
    r.Machine.values

let test_scan () =
  List.iter
    (fun p ->
      let r =
        run ~procs:p (fun ctx ->
            Collectives.scan ctx ~tag:0 ~bytes:4 ( + ) (Machine.self ctx + 1))
      in
      Array.iteri
        (fun i v ->
          Alcotest.(check int)
            (Printf.sprintf "prefix p=%d i=%d" p i)
            ((i + 1) * (i + 2) / 2)
            v)
        r.Machine.values)
    sizes

let test_gather () =
  let r =
    run ~procs:6 (fun ctx ->
        Collectives.gather_to ctx ~tag:0 ~root:2 ~bytes:4
          (Machine.self ctx * Machine.self ctx))
  in
  Array.iteri
    (fun i v ->
      match (i, v) with
      | 2, Some arr ->
          Alcotest.(check (array int))
            "gathered"
            [| 0; 1; 4; 9; 16; 25 |]
            arr
      | 2, None -> Alcotest.fail "root got nothing"
      | _, Some _ -> Alcotest.fail "non-root got a result"
      | _, None -> ())
    r.Machine.values

let test_ring_shift () =
  let r =
    run ~procs:5 (fun ctx ->
        let topo = Machine.topology ctx in
        let me = Machine.self ctx in
        Collectives.ring_shift ctx ~tag:0 ~bytes:4
          ~dest:(Topology.ring_next topo me)
          ~src:(Topology.ring_prev topo me)
          me)
  in
  Alcotest.(check (array int)) "rotated" [| 4; 0; 1; 2; 3 |] r.Machine.values

let test_reduce_stages_logarithmic () =
  (* 16 processors: a binomial reduce takes 4 message stages, so the root's
     finishing clock must be far below what a linear gather would cost. *)
  let r =
    run ~procs:16 (fun ctx ->
        let _ =
          Collectives.reduce ctx ~tag:0 ~root:0 ~bytes:4 ( + ) 1
        in
        Machine.clock ctx)
  in
  let per_stage = 2e-3 in
  Alcotest.(check bool)
    "log stages" true
    (r.Machine.values.(0) < 5.0 *. per_stage)

(* ------------------------------------------------------------------ *)
(* Algorithm library: every mode must return the values the seed's      *)
(* binomial trees return, bit-identically (floats included — the        *)
(* value plane combines deposits in the legacy bracket order, so even   *)
(* non-associative rounding cannot diverge).                            *)

(* every selectable mode except Legacy itself *)
let modes =
  List.filter_map
    (fun s ->
      match Coll_alg.mode_of_string s with
      | Ok Coll_alg.Legacy -> None
      | Ok m -> Some (s, m)
      | Error e -> failwith e)
    Coll_alg.mode_names

(* one run exercising every collective; reduce is masked to the root
   because only its value is meaningful there *)
let exercise ctx =
  let me = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let topo = Machine.topology ctx in
  let x = float_of_int ((me * 37) mod 19) +. (1.0 /. 3.0) in
  let b = Collectives.bcast ctx ~tag:0 ~root:(p / 2) ~bytes:64 x in
  let root = p - 1 in
  let r = Collectives.reduce ctx ~tag:1 ~root ~bytes:256 ( +. ) x in
  let r = if me = root then r else 0.0 in
  let ar = Collectives.allreduce ctx ~tag:2 ~bytes:2048 ( +. ) (x *. 1.5) in
  let sc = Collectives.scan ctx ~tag:3 ~bytes:32 ( +. ) x in
  let g = Collectives.gather_to ctx ~tag:4 ~root:0 ~bytes:128 (me, x) in
  let ag = Collectives.allgather ctx ~tag:5 ~bytes:512 (x, me) in
  let at =
    Collectives.alltoall ctx ~tag:6 ~bytes:64
      (Array.init p (fun j -> (me * p) + j))
  in
  Collectives.barrier ctx ~tag:7;
  let rs =
    Collectives.ring_shift ctx ~tag:8 ~bytes:16
      ~dest:(Topology.ring_next topo me)
      ~src:(Topology.ring_prev topo me)
      me
  in
  (b, r, ar, sc, g, ag, at, rs)

let topologies =
  List.map (fun p -> (Printf.sprintf "mesh%dx1" p, Topology.mesh ~width:p ~height:1)) sizes
  @ [
      ("mesh4x4", Topology.mesh ~width:4 ~height:4);
      ("torus4x4", Topology.torus2d ~width:4 ~height:4 ());
      ("ring7", Topology.ring ~nprocs:7);
    ]

let test_modes_match_legacy () =
  List.iter
    (fun (tname, topology) ->
      let reference = (Machine.run ~topology exercise).Machine.values in
      List.iter
        (fun (mname, collectives) ->
          let got = (Machine.run ~collectives ~topology exercise).Machine.values in
          Alcotest.(check bool)
            (Printf.sprintf "%s = legacy on %s" mname tname)
            true (got = reference))
        modes)
    topologies

(* the same identity under an adversarial network: drops, duplicates and
   latency spikes with the reliable transport recovering — values must
   still match the seed's fault-free trees, whatever the algorithm *)
let prop_modes_match_legacy_under_faults (topology, seed) =
  let faults =
    {
      (Fault.none ~seed) with
      Fault.link =
        {
          Fault.no_link_faults with
          Fault.drop = 0.08;
          Fault.dup = 0.05;
          Fault.delay = 0.1;
          Fault.delay_factor = 4.0;
        };
    }
  in
  let reference = (Machine.run ~topology exercise).Machine.values in
  List.for_all
    (fun (_, collectives) ->
      (Machine.run ~collectives ~faults ~reliable:true ~topology exercise)
        .Machine.values = reference)
    (("tree", Coll_alg.Legacy) :: modes)

let gen_faulty_topology =
  let open QCheck2.Gen in
  let gen_topo =
    oneof
      [
        (int_range 1 16 >|= fun p -> Topology.mesh ~width:p ~height:1);
        ( pair (int_range 1 4) (int_range 1 4) >|= fun (w, h) ->
          Topology.mesh ~width:w ~height:h );
        ( pair (int_range 2 4) (int_range 2 4) >|= fun (w, h) ->
          Topology.torus2d ~width:w ~height:h () );
        (int_range 2 13 >|= fun p -> Topology.ring ~nprocs:p);
      ]
  in
  pair gen_topo (int_range 0 1000)

(* ------------------------------------------------------------------ *)
(* Charged operations: the new algorithms must not only return the     *)
(* right values — they must charge the message counts and clocks their *)
(* patterns imply.                                                     *)

let run16 ?collectives f =
  Machine.run ?collectives ~topology:(Topology.mesh ~width:4 ~height:4) f

let test_dissemination_barrier_charges () =
  let barrier ctx = Collectives.barrier ctx ~tag:0 in
  let diss = run16 ~collectives:(Coll_alg.Force Coll_alg.Dissemination) barrier in
  let legacy = run16 barrier in
  (* p * ceil(log2 p) pairwise messages at p = 16 *)
  Alcotest.(check int) "dissemination msgs" (16 * 4)
    (Stats.total_msgs diss.Machine.stats);
  (* reduce-then-broadcast costs 2 (p - 1) messages over twice the depth *)
  Alcotest.(check int) "legacy msgs" 30 (Stats.total_msgs legacy.Machine.stats);
  Alcotest.(check bool) "dissemination is faster" true
    (diss.Machine.time < legacy.Machine.time)

let test_binomial_scan_charges () =
  let scan ctx =
    Collectives.scan ctx ~tag:0 ~bytes:512 ( + ) (Machine.self ctx + 1)
  in
  let tree = run16 ~collectives:(Coll_alg.Force Coll_alg.Tree) scan in
  let linear = run16 ~collectives:(Coll_alg.Force Coll_alg.Linear) scan in
  (* Hillis-Steele round k sends p - 2^k messages: 15 + 14 + 12 + 8 *)
  Alcotest.(check int) "binomial scan msgs" 49
    (Stats.total_msgs tree.Machine.stats);
  Alcotest.(check int) "linear scan msgs" 15
    (Stats.total_msgs linear.Machine.stats);
  Alcotest.(check bool) "binomial scan is faster" true
    (tree.Machine.time < linear.Machine.time);
  Alcotest.(check bool) "same prefixes" true
    (tree.Machine.values = linear.Machine.values)

let test_collective_stats_counted () =
  let body ctx =
    let v = Collectives.allreduce ctx ~tag:0 ~bytes:8192 ( + ) 1 in
    ignore (Collectives.bcast ctx ~tag:1 ~root:0 ~bytes:4096 v)
  in
  let legacy = run16 body in
  let auto = run16 ~collectives:Coll_alg.Auto body in
  (* legacy paths predate the counters and stay byte-identical to the seed *)
  Alcotest.(check int) "legacy counts nothing" 0
    (Stats.total_coll_calls legacy.Machine.stats);
  Alcotest.(check int) "auto counts both collectives" 32
    (Stats.total_coll_calls auto.Machine.stats);
  Alcotest.(check bool) "payload bytes counted" true
    (Stats.total_coll_bytes auto.Machine.stats >= 16 * (8192 + 4096));
  let labels = List.map fst (Stats.coll_alg_totals auto.Machine.stats) in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "label %s is kind[alg]" l)
        true
        (String.contains l '[' && String.contains l ']'))
    labels

let qt ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let suite =
  [
    ( "collectives",
      [
        Alcotest.test_case "bcast" `Quick test_bcast;
        Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
        Alcotest.test_case "allreduce max" `Quick test_allreduce_max;
        Alcotest.test_case "allreduce sum" `Quick test_allreduce_nonroot_value;
        Alcotest.test_case "barrier" `Quick test_barrier_aligns_clocks;
        Alcotest.test_case "scan" `Quick test_scan;
        Alcotest.test_case "gather" `Quick test_gather;
        Alcotest.test_case "ring shift" `Quick test_ring_shift;
        Alcotest.test_case "reduce is logarithmic" `Quick
          test_reduce_stages_logarithmic;
        Alcotest.test_case "every algorithm matches legacy values" `Quick
          test_modes_match_legacy;
        Alcotest.test_case "dissemination barrier charged ops" `Quick
          test_dissemination_barrier_charges;
        Alcotest.test_case "binomial scan charged ops" `Quick
          test_binomial_scan_charges;
        Alcotest.test_case "collective stats counted" `Quick
          test_collective_stats_counted;
        qt "algorithms match legacy under faults + reliable"
          gen_faulty_topology prop_modes_match_legacy_under_faults;
      ] );
  ]
