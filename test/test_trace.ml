(* The skil_obs layer: structured message events, skeleton/collective spans,
   the Profile aggregation, and the zero-cost-when-disabled claim (tracing
   never changes simulated clocks or stats). *)

let qt ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mesh w h = Topology.mesh ~width:w ~height:h

let gauss ?(trace = true) ~n ~w ~h () =
  let matrix = Workload.gauss_matrix ~seed:3 ~n in
  Machine.run ~trace ~topology:(mesh w h) (fun ctx ->
      Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))

(* ---------------- message events ---------------- *)

let test_message_fields () =
  let r =
    Machine.run ~trace:true ~topology:(mesh 2 1) (fun ctx ->
        if Machine.self ctx = 0 then begin
          Machine.compute ctx 1.0;
          Machine.send ctx ~dest:1 ~tag:7 ~bytes:64 ()
        end
        else Machine.recv ctx ~src:0 ~tag:7)
  in
  match Trace.messages r.Machine.trace with
  | [ m ] ->
      Alcotest.(check int) "src" 0 m.Trace.src;
      Alcotest.(check int) "dst" 1 m.Trace.dst;
      Alcotest.(check int) "tag" 7 m.Trace.tag;
      Alcotest.(check int) "bytes" 64 m.Trace.bytes;
      Alcotest.(check int) "hops" 1 m.Trace.hops;
      Alcotest.(check bool) "sent after the compute" true (m.Trace.sent >= 1.0);
      Alcotest.(check bool) "wire takes time" true
        (m.Trace.arrival > m.Trace.sent);
      Alcotest.(check bool) "consumed at or after arrival" true
        (m.Trace.received >= m.Trace.arrival);
      Alcotest.(check bool) "queue delay non-negative" true
        (Trace.queue_delay m >= 0.0)
  | ms -> Alcotest.failf "expected exactly 1 message, got %d" (List.length ms)

let test_queue_delay_observable () =
  (* the receiver computes past the arrival, so the message sits queued *)
  let r =
    Machine.run ~trace:true ~topology:(mesh 2 1) (fun ctx ->
        if Machine.self ctx = 0 then Machine.send ctx ~dest:1 ~tag:1 ~bytes:4 ()
        else begin
          Machine.compute ctx 5.0;
          Machine.recv ctx ~src:0 ~tag:1
        end)
  in
  match Trace.messages r.Machine.trace with
  | [ m ] ->
      Alcotest.(check bool)
        (Printf.sprintf "sat queued (delay %.3f)" (Trace.queue_delay m))
        true
        (Trace.queue_delay m > 1.0)
  | _ -> Alcotest.fail "expected exactly 1 message"

(* ---------------- spans ---------------- *)

let test_spans_recorded () =
  let r =
    Machine.run ~trace:true ~topology:(mesh 2 1) (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 8 |] ~distr:Darray.Default (fun ix ->
              ix.(0))
        in
        ignore (Skeletons.fold ctx ~conv:(fun v _ -> v) ( + ) a : int);
        Skeletons.destroy ctx a)
  in
  let spans = Trace.spans r.Machine.trace in
  let has cat name =
    List.exists
      (fun s -> s.Trace.cat = cat && s.Trace.name = name)
      spans
  in
  Alcotest.(check bool) "array_create span" true (has Trace.Skeleton "array_create");
  Alcotest.(check bool) "array_fold span" true (has Trace.Skeleton "array_fold");
  Alcotest.(check bool) "array_destroy span" true
    (has Trace.Skeleton "array_destroy");
  Alcotest.(check bool) "reduce collective span" true
    (has Trace.Collective "reduce");
  Alcotest.(check bool) "bcast collective span" true
    (has Trace.Collective "bcast");
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s closed and ordered" s.Trace.name)
        true
        (s.Trace.sstop >= s.Trace.sstart))
    spans;
  (* the element-ops of create/fold land inside their spans *)
  Alcotest.(check bool) "some span charged ops" true
    (List.exists
       (fun s -> s.Trace.ops_kernel + s.Trace.ops_mapped + s.Trace.ops_scalar > 0)
       spans)

let test_collective_nested_in_skeleton () =
  let r = gauss ~n:12 ~w:2 ~h:1 () in
  let spans = Trace.spans r.Machine.trace in
  let ok =
    List.for_all
      (fun (c : Trace.span) ->
        c.Trace.cat <> Trace.Collective
        || List.exists
             (fun (s : Trace.span) ->
               s.Trace.cat = Trace.Skeleton
               && s.Trace.sproc = c.Trace.sproc
               && s.Trace.sstart <= c.Trace.sstart
               && s.Trace.sstop >= c.Trace.sstop)
             spans)
      spans
  in
  Alcotest.(check bool) "every collective sits inside a skeleton span" true ok

(* ---------------- zero cost when disabled ---------------- *)

let test_tracing_does_not_change_clocks () =
  let on = gauss ~trace:true ~n:16 ~w:2 ~h:2 () in
  let off = gauss ~trace:false ~n:16 ~w:2 ~h:2 () in
  Alcotest.(check (float 0.0)) "same makespan" off.Machine.time on.Machine.time;
  Alcotest.(check int) "same msgs"
    (Stats.total_msgs off.Machine.stats)
    (Stats.total_msgs on.Machine.stats);
  Alcotest.(check int) "same bytes"
    (Stats.total_bytes off.Machine.stats)
    (Stats.total_bytes on.Machine.stats);
  for p = 0 to 3 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "p%d same compute" p)
      (Stats.proc off.Machine.stats p).Stats.compute_time
      (Stats.proc on.Machine.stats p).Stats.compute_time
  done;
  Alcotest.(check int) "untraced run records nothing" 0
    (List.length (Trace.events off.Machine.trace)
    + List.length (Trace.messages off.Machine.trace)
    + List.length (Trace.spans off.Machine.trace))

(* ---------------- Profile ---------------- *)

let test_profile_matches_stats () =
  let r = gauss ~n:16 ~w:2 ~h:2 () in
  let nprocs = 4 in
  let p =
    Profile.of_trace r.Machine.trace ~nprocs ~makespan:r.Machine.time
  in
  for i = 0 to nprocs - 1 do
    let st = Stats.proc r.Machine.stats i in
    let pp = p.Profile.procs.(i) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "p%d compute" i)
      st.Stats.compute_time pp.Profile.compute;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "p%d wait" i)
      st.Stats.comm_wait pp.Profile.wait;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "p%d overhead" i)
      st.Stats.overhead_time pp.Profile.overhead;
    Alcotest.(check int)
      (Printf.sprintf "p%d msgs sent" i)
      st.Stats.msgs_sent pp.Profile.sent_msgs;
    Alcotest.(check int)
      (Printf.sprintf "p%d bytes sent" i)
      st.Stats.bytes_sent pp.Profile.sent_bytes
  done;
  (* the comm matrix accounts for every sent byte *)
  let matrix_bytes =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0 p.Profile.comm_matrix
  in
  Alcotest.(check int) "comm matrix total" (Stats.total_bytes r.Machine.stats)
    matrix_bytes

let test_critical_path_bounded () =
  let r = gauss ~n:16 ~w:2 ~h:2 () in
  let p = Profile.of_trace r.Machine.trace ~nprocs:4 ~makespan:r.Machine.time in
  Alcotest.(check bool)
    (Printf.sprintf "critical path %.6f in (0, makespan %.6f]"
       p.Profile.critical_path r.Machine.time)
    true
    (p.Profile.critical_path > 0.0
    && p.Profile.critical_path <= r.Machine.time +. 1e-9);
  let f = Profile.critical_path_fraction p in
  Alcotest.(check bool) "fraction in (0,1]" true (f > 0.0 && f <= 1.0 +. 1e-9)

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let test_profile_report_renders () =
  let r = gauss ~n:12 ~w:2 ~h:1 () in
  let p = Profile.of_trace r.Machine.trace ~nprocs:2 ~makespan:r.Machine.time in
  let s = Format.asprintf "%a" Profile.pp p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true
        (string_contains ~needle s))
    [ "critical path"; "per-processor"; "communication matrix"; "array_map" ]

let test_chrome_json_shape () =
  let r = gauss ~n:12 ~w:2 ~h:1 () in
  let s = Profile.chrome_json r.Machine.trace ~nprocs:2 in
  let contains needle = string_contains ~needle s in
  Alcotest.(check bool) "non-empty" true (String.length s > 1000);
  Alcotest.(check bool) "traceEvents key" true (contains "\"traceEvents\"");
  Alcotest.(check bool) "thread metadata" true (contains "thread_name");
  Alcotest.(check bool) "complete events" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "flow start" true (contains "\"ph\":\"s\"");
  Alcotest.(check bool) "flow end" true (contains "\"ph\":\"f\"");
  (* object opened and closed, quotes balanced: a cheap well-formedness
     check that catches unterminated strings and truncation *)
  Alcotest.(check char) "opens object" '{' s.[0];
  let unescaped_quotes = ref 0 in
  String.iteri
    (fun i c ->
      if c = '"' && (i = 0 || s.[i - 1] <> '\\') then incr unescaped_quotes)
    s;
  Alcotest.(check int) "quotes balanced" 0 (!unescaped_quotes mod 2)

(* ---------------- qcheck invariants ---------------- *)

open QCheck2.Gen

let gen_run =
  triple (int_range 1 4) (int_range 4 20) (int_range 0 1000)

let traced_run (procs, n, seed) =
  let matrix = Workload.gauss_matrix ~seed ~n in
  Machine.run ~trace:true ~topology:(mesh procs 1) (fun ctx ->
      Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))

let prop_events_within_makespan setup =
  let r = traced_run setup in
  List.for_all
    (fun (e : Trace.event) ->
      e.Trace.duration >= 0.0
      && e.Trace.start >= 0.0
      && e.Trace.start +. e.Trace.duration <= r.Machine.time +. 1e-9)
    (Trace.events r.Machine.trace)
  && List.for_all
       (fun (m : Trace.message) ->
         m.Trace.sent >= 0.0 && m.Trace.sent <= r.Machine.time +. 1e-9)
       (Trace.messages r.Machine.trace)

let prop_same_kind_intervals_disjoint ((procs, _, _) as setup) =
  let r = traced_run setup in
  let ok = ref true in
  List.iter
    (fun kind ->
      for p = 0 to procs - 1 do
        let mine =
          List.filter
            (fun (e : Trace.event) -> e.Trace.proc = p && e.Trace.kind = kind)
            (Trace.events r.Machine.trace)
          |> List.sort (fun a b -> compare a.Trace.start b.Trace.start)
        in
        let rec check = function
          | a :: (b :: _ as rest) ->
              if b.Trace.start < a.Trace.start +. a.Trace.duration -. 1e-12
              then ok := false;
              check rest
          | _ -> ()
        in
        check mine
      done)
    [ Trace.Compute; Trace.Wait; Trace.Overhead ];
  !ok

let prop_stats_equal_trace_sums ((procs, _, _) as setup) =
  let r = traced_run setup in
  let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
  let ok = ref true in
  for p = 0 to procs - 1 do
    let sum kind =
      List.fold_left
        (fun acc (e : Trace.event) ->
          if e.Trace.proc = p && e.Trace.kind = kind then
            acc +. e.Trace.duration
          else acc)
        0.0 (Trace.events r.Machine.trace)
    in
    let st = Stats.proc r.Machine.stats p in
    if not (close (sum Trace.Compute) st.Stats.compute_time) then ok := false;
    if not (close (sum Trace.Wait) st.Stats.comm_wait) then ok := false;
    if not (close (sum Trace.Overhead) st.Stats.overhead_time) then ok := false;
    let sent =
      List.filter (fun (m : Trace.message) -> m.Trace.src = p)
        (Trace.messages r.Machine.trace)
    in
    if List.length sent <> st.Stats.msgs_sent then ok := false;
    if List.fold_left (fun a (m : Trace.message) -> a + m.Trace.bytes) 0 sent
       <> st.Stats.bytes_sent
    then ok := false
  done;
  !ok

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "message fields" `Quick test_message_fields;
        Alcotest.test_case "queue delay" `Quick test_queue_delay_observable;
        Alcotest.test_case "spans recorded" `Quick test_spans_recorded;
        Alcotest.test_case "collectives nest" `Quick
          test_collective_nested_in_skeleton;
        Alcotest.test_case "zero cost when disabled" `Quick
          test_tracing_does_not_change_clocks;
        Alcotest.test_case "profile matches stats" `Quick
          test_profile_matches_stats;
        Alcotest.test_case "critical path bounded" `Quick
          test_critical_path_bounded;
        Alcotest.test_case "profile report" `Quick test_profile_report_renders;
        Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
        qt ~count:25 "events within makespan" gen_run
          prop_events_within_makespan;
        qt ~count:25 "same-kind intervals disjoint" gen_run
          prop_same_kind_intervals_disjoint;
        qt ~count:25 "stats equal trace sums" gen_run
          prop_stats_equal_trace_sums;
      ] );
  ]
