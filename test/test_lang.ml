(* The mini-Skil language: lexer, parser, type system, interpreter,
   translation by instantiation, SPMD execution and the C back end. *)

(* substring containment without extra libraries *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let toks src =
  List.map (fun t -> t.Token.tok) (Lexer.tokenize src)

(* ---------------- lexer ---------------- *)

let test_lexer_basic () =
  Alcotest.(check bool) "ints/floats" true
    (toks "42 3.5 0.5e2"
     = [ Token.INT 42; Token.FLOAT 3.5; Token.FLOAT 50.0; Token.EOF ]);
  Alcotest.(check bool) "tyvar" true
    (toks "$t $abc" = [ Token.TYVAR "t"; Token.TYVAR "abc"; Token.EOF ]);
  Alcotest.(check bool) "keywords vs idents" true
    (toks "if iffy"
     = [ Token.KW "if"; Token.IDENT "iffy"; Token.EOF ])

let test_lexer_sections () =
  Alcotest.(check bool) "(+)" true
    (toks "(+)" = [ Token.OPSECTION "+"; Token.EOF ]);
  Alcotest.(check bool) "( * )" true
    (toks "( * )" = [ Token.OPSECTION "*"; Token.EOF ]);
  Alcotest.(check bool) "(<=)" true
    (toks "(<=)" = [ Token.OPSECTION "<="; Token.EOF ]);
  Alcotest.(check bool) "not a section" true
    (toks "(a + b)"
     = [ Token.PUNCT "("; Token.IDENT "a"; Token.PUNCT "+"; Token.IDENT "b";
         Token.PUNCT ")"; Token.EOF ]);
  Alcotest.(check bool) "unary minus not a section" true
    (toks "(-x)"
     = [ Token.PUNCT "("; Token.PUNCT "-"; Token.IDENT "x"; Token.PUNCT ")";
         Token.EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "both styles" true
    (toks "1 /* mid */ 2 // line\n3"
     = [ Token.INT 1; Token.INT 2; Token.INT 3; Token.EOF ])

let test_lexer_strings_chars () =
  Alcotest.(check bool) "escapes" true
    (toks {|"a\nb" 'x'|} = [ Token.STRING "a\nb"; Token.CHAR 'x'; Token.EOF ])

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try ignore (Lexer.tokenize "\"abc"); false with Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated comment" true
    (try ignore (Lexer.tokenize "/* abc"); false with Lexer.Error _ -> true);
  Alcotest.(check bool) "bad char" true
    (try ignore (Lexer.tokenize "@"); false with Lexer.Error _ -> true);
  Alcotest.(check bool) "preprocessor lines skipped" true
    (toks "#include <x.h>\n1" = [ Token.INT 1; Token.EOF ])

(* ---------------- parser ---------------- *)

let test_parser_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 == 7 && 1" in
  (match e.Ast.desc with
   | Ast.Binop ("&&", { Ast.desc = Ast.Binop ("==", _, _); _ }, _) -> ()
   | _ -> Alcotest.fail "precedence shape");
  let e = Parser.parse_expr "a - b - c" in
  match e.Ast.desc with
  | Ast.Binop ("-", { Ast.desc = Ast.Binop ("-", _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "left associativity"

let test_parser_postfix () =
  let e = Parser.parse_expr "a->next->elem" in
  (match e.Ast.desc with
   | Ast.Arrow ({ Ast.desc = Ast.Arrow _; _ }, "elem") -> ()
   | _ -> Alcotest.fail "arrow chain");
  let e = Parser.parse_expr "f(1)(2)" in
  match e.Ast.desc with
  | Ast.Call ({ Ast.desc = Ast.Call _; _ }, _) -> ()
  | _ -> Alcotest.fail "curried call"

let test_parser_array_literal () =
  let e = Parser.parse_expr "{n, n+1}" in
  match e.Ast.desc with
  | Ast.ArrayLit [ _; _ ] -> ()
  | _ -> Alcotest.fail "array literal"

let test_parser_program_shapes () =
  let p =
    Parser.parse
      {|
        struct _pair { $a fst; $b snd; };
        typedef struct _pair<$a,$b> * pair<$a,$b>;
        pardata stream<$t>;
        int twice(int f (int), int x) { return f(f(x)); }
        float g(float x);
      |}
  in
  match p with
  | [ Ast.TStruct s; Ast.TTypedef td; Ast.TPardata pd; Ast.TFunc f;
      Ast.TFunc proto ] ->
      Alcotest.(check (list string)) "struct params inferred" [ "a"; "b" ]
        s.Ast.s_params;
      Alcotest.(check string) "typedef name" "pair" td.Ast.td_name;
      Alcotest.(check string) "pardata" "stream" pd.Ast.pd_name;
      (match (List.hd f.Ast.f_params).Ast.p_type with
       | Ast.TFun ([ Ast.TInt ], Ast.TInt) -> ()
       | _ -> Alcotest.fail "functional parameter type");
      Alcotest.(check bool) "prototype" true (proto.Ast.f_body = None)
  | _ -> Alcotest.fail "top-level shapes"

let test_parser_compound_assignment () =
  let e = Parser.parse_expr "x += 2" in
  (match e.Ast.desc with
   | Ast.Assign ({ Ast.desc = Ast.Var "x"; _ },
                 { Ast.desc = Ast.Binop ("+", _, _); _ }) -> ()
   | _ -> Alcotest.fail "+= desugars to assignment");
  let e = Parser.parse_expr "x *= y + 1" in
  match e.Ast.desc with
  | Ast.Assign (_, { Ast.desc = Ast.Binop ("*", _, _); _ }) -> ()
  | _ -> Alcotest.fail "*= desugars"

let test_parser_statements () =
  let p =
    Parser.parse
      {|
        int f(int n) {
          int acc = 0;
          for (int i = 0; i < n; i++) {
            if (i % 2 == 0) continue;
            acc = acc + i;
            while (0) break;
          }
          return acc;
        }
      |}
  in
  Alcotest.(check int) "parsed" 1 (List.length p)

let test_parser_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (try
           ignore (Parser.parse src);
           false
         with Parser.Error _ | Lexer.Error _ -> true))
    [ "int f( { }"; "int f() { return }"; "int f() { x = ; }";
      "struct S { int; };" ]

(* ---------------- typecheck ---------------- *)

let check_ok src =
  let p = Parser.parse src in
  ignore (Typecheck.check p)

let check_fails src =
  let p = Parser.parse src in
  try
    ignore (Typecheck.check p);
    false
  with Typecheck.Type_error _ -> true

let test_typecheck_accepts () =
  check_ok
    {|
      $a identity($a x) { return x; }
      int main() { return identity(41) + 1; }
    |};
  check_ok
    {|
      $b apply($b f ($a), $a x) { return f(x); }
      int inc(int x) { return x + 1; }
      int main() { return apply(inc, 1); }
    |};
  check_ok
    {|
      int main() {
        array<float> a;
        a = array_create(1, {4}, {0}, {-1}, sqrt_of, DISTR_DEFAULT);
        return 0;
      }
      float sqrt_of(Index ix) { return sqrt(itof(ix[0])); }
    |}

let test_typecheck_polymorphic_currying () =
  (* partial application yields the remaining function type *)
  check_ok
    {|
      int add3(int a, int b, int c) { return a + b + c; }
      int call(int f (int), int x) { return f(x); }
      int main() { return call(add3(1, 2), 4); }
    |}

let test_typecheck_rejects () =
  Alcotest.(check bool) "int vs float" true
    (check_fails "int main() { return 1.5; }");
  Alcotest.(check bool) "unbound" true
    (check_fails "int main() { return nope; }");
  Alcotest.(check bool) "arity" true
    (check_fails
       "int f(int x) { return x; } int main() { return f(1, 2); }");
  Alcotest.(check bool) "bad field" true
    (check_fails
       "struct _p { int x; }; int main() { struct _p p; return p.y; }");
  Alcotest.(check bool) "condition not scalar" true
    (check_fails
       {|int main() { array<int> a; if (a) return 1; return 0; }|});
  Alcotest.(check bool) "operator misuse" true
    (check_fails "int main() { return 1 + \"x\"; }")

let test_typecheck_pardata_restrictions () =
  (* "Distributed data structures may not be nested, in particular the type
     arguments of a pardata construct cannot be instantiated with other
     pardatas" (section 2.3) *)
  Alcotest.(check bool) "nested arrays rejected" true
    (check_fails
       {|int main() { array<array<int>> a; return 0; }|});
  Alcotest.(check bool) "pardata inside struct rejected" true
    (check_fails
       {|struct _box { array<int> a; };
         int main() { struct _box b; return 0; }|});
  (* a bare pardata as a polymorphic instantiation is fine *)
  check_ok
    {|
      $a identity($a x) { return x; }
      int zero(Index ix) { return 0; }
      int main() {
        array<int> a;
        a = array_create(1, {4}, {0}, {-1}, zero, DISTR_DEFAULT);
        a = identity(a);
        return 0;
      }
    |}

let test_typecheck_records_instantiation () =
  let p =
    Parser.parse
      {|
        $a pick($a x, $a y) { return x; }
        float main() { return pick(1.5, 2.5); }
      |}
  in
  let env = Typecheck.check p in
  ignore env;
  let found = ref None in
  List.iter
    (function
      | Ast.TFunc { Ast.f_name = "main"; f_body = Some body; _ } ->
          let rec scan_expr (e : Ast.expr) =
            (match e.Ast.desc with
             | Ast.Var "pick" -> found := Some e.Ast.inst
             | _ -> ());
            match e.Ast.desc with
            | Ast.Call (f, args) ->
                scan_expr f;
                List.iter scan_expr args
            | _ -> ()
          in
          List.iter
            (function Ast.SReturn (Some e) -> scan_expr e | _ -> ())
            body
      | _ -> ())
    p;
  match !found with
  | Some [ (_, Ast.TFloat) ] -> ()
  | _ -> Alcotest.fail "expected pick instantiated at float"

(* ---------------- interpreter ---------------- *)

let run_main ?(entry = "main") ?(args = []) src =
  let p = Parser.parse src in
  let env = Typecheck.check p in
  let st = Interp.make ~tyenv:env p in
  let v = Interp.call st entry args in
  (v, Interp.output st)

let test_interp_compound_assignment () =
  let v, _ =
    run_main
      {|
        int main() {
          int x = 10;
          x += 5; x *= 2; x -= 6; x /= 4; x %= 4;
          return x;
        }
      |}
  in
  (* 10+5=15, *2=30, -6=24, /4=6, %4=2 *)
  Alcotest.(check bool) "compound ops" true (v = Value.VInt 2)

let test_interp_arith_control () =
  let v, _ =
    run_main
      {|
        int main() {
          int acc = 0;
          for (int i = 0; i < 10; i++) {
            if (i % 3 == 0) continue;
            acc = acc + i;
            if (acc > 20) break;
          }
          return acc;
        }
      |}
  in
  (* i: 1,2 (acc 3), 4,5 (12), 7 (19), 8 (27 -> break) *)
  Alcotest.(check bool) "loop result" true (v = Value.VInt 27)

let test_interp_structs_pointers () =
  let v, _ =
    run_main
      {|
        struct _box { int v; };
        int main() {
          struct _box b;
          struct _box *p;
          b.v = 1;
          p = new(b);
          b.v = 2;        /* the new() made a copy: *p keeps 1 */
          return p->v * 10 + b.v;
        }
      |}
  in
  Alcotest.(check bool) "value semantics" true (v = Value.VInt 12)

let test_interp_currying () =
  let v, _ =
    run_main
      {|
        int add3(int a, int b, int c) { return a + b + c; }
        int apply1(int f (int), int x) { return f(x); }
        int main() { return apply1(add3(10, 20), 3); }
      |}
  in
  Alcotest.(check bool) "partial application" true (v = Value.VInt 33)

let test_interp_operator_sections () =
  let v, _ =
    run_main
      {|
        $c fold2($c f ($c, $c), $c a, $c b) { return f(a, b); }
        int main() { return fold2((+), 30, fold2((*), 2, 6)); }
      |}
  in
  Alcotest.(check bool) "sections" true (v = Value.VInt 42)

let test_interp_prints () =
  let _, out =
    run_main
      {|
        void main() {
          print_string("x=");
          print_int(3);
          print_char('!');
          print_float(2.5);
        }
      |}
  in
  Alcotest.(check string) "output" "x=3!2.5" out

let test_interp_runtime_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("raises: " ^ src) true
        (try
           ignore (run_main src);
           false
         with Value.Skil_runtime_error _ -> true))
    [
      "int main() { return 1 / 0; }";
      {|struct _b { int v; }; int main() { struct _b *p = NULL; return p->v; }|};
      {|int main() { error("boom"); return 0; }|};
      {|int main() { array<int> a; a = array_create(1, {3}, {0}, {-1}, z, DISTR_DEFAULT); return 0; } int z(Index ix) { return 0; }|};
    ]

(* ---------------- instantiation ---------------- *)

let instantiate src ~entry =
  let p = Parser.parse src in
  let env = Typecheck.check p in
  Instantiate.program env p ~entries:[ entry ]

let outputs_match ?(entry = "main") ?(args = []) src =
  let p = Parser.parse src in
  let env = Typecheck.check p in
  let st = Interp.make ~tyenv:env p in
  let v1 = Interp.call st entry args in
  let o1 = Interp.output st in
  let fo = Instantiate.program env p ~entries:[ entry ] in
  Alcotest.(check bool) "first order" true (Instantiate.is_first_order fo);
  let env2 = Typecheck.check fo in
  let st2 = Interp.make ~tyenv:env2 fo in
  let v2 = Interp.call st2 entry args in
  let o2 = Interp.output st2 in
  Alcotest.(check bool) "same value" true (v1 = v2);
  Alcotest.(check string) "same output" o1 o2

let quicksort_src =
  {|
    struct _list { $t elem; struct _list<$t> *next; };
    typedef struct _list<$t> * list<$t>;
    list<$a> nil() { return NULL; }
    list<$a> cons($a x, list<$a> xs) {
      struct _list<$a> cell;
      cell.elem = x; cell.next = xs;
      return new(cell);
    }
    int is_empty(list<$a> xs) { return xs == NULL; }
    list<$a> append(list<$a> xs, list<$a> ys) {
      if (is_empty(xs)) return ys;
      return cons(xs->elem, append(xs->next, ys));
    }
    $b dc(int is_trivial ($a), $b solve ($a), list<$a> split ($a),
          $b join (list<$b>), $a problem) {
      if (is_trivial(problem)) return solve(problem);
      else return join(map(dc(is_trivial, solve, split, join),
                           split(problem)));
    }
    list<$b> map($b f ($a), list<$a> xs) {
      if (is_empty(xs)) return nil();
      return cons(f(xs->elem), map(f, xs->next));
    }
    int is_simple(list<int> xs) { return is_empty(xs) || is_empty(xs->next); }
    list<int> ident(list<int> xs) { return xs; }
    list<list<int>> divide(list<int> xs) {
      int pivot = xs->elem;
      list<int> small = nil();
      list<int> big = nil();
      list<int> rest = xs->next;
      while (!is_empty(rest)) {
        if (rest->elem < pivot) small = cons(rest->elem, small);
        else big = cons(rest->elem, big);
        rest = rest->next;
      }
      return cons(small, cons(cons(pivot, nil()), cons(big, nil())));
    }
    list<int> conc(list<list<int>> parts) {
      if (is_empty(parts)) return nil();
      return append(parts->elem, conc(parts->next));
    }
    void print_list(list<int> xs) {
      while (!is_empty(xs)) { print_int(xs->elem); print_string(" "); xs = xs->next; }
    }
    void main() {
      print_list(dc(is_simple, ident, divide, conc,
                    cons(3, cons(1, cons(4, cons(1, cons(5, nil())))))));
    }
  |}

let test_instantiate_preserves_quicksort () = outputs_match quicksort_src

let test_instantiate_first_order_dc () =
  let fo = instantiate quicksort_src ~entry:"main" in
  Alcotest.(check bool) "is first order" true (Instantiate.is_first_order fo);
  (* the recursive HOF dc must have exactly one specialization *)
  let dcs =
    List.filter_map
      (function
        | Ast.TFunc f
          when String.length f.Ast.f_name >= 3
               && String.sub f.Ast.f_name 0 3 = "dc_" ->
            Some f
        | _ -> None)
      fo
  in
  Alcotest.(check int) "one dc instance" 1 (List.length dcs);
  (* and that instance takes only the problem (all four functionals inlined) *)
  Alcotest.(check int) "dc arity" 1
    (List.length (List.hd dcs).Ast.f_params)

let test_instantiate_monomorphizes_by_type () =
  let fo =
    instantiate ~entry:"main"
      {|
        $a pick($a x, $a y) { return x; }
        int main() {
          float f = pick(1.5, 2.5);
          return pick(1, 2) + ftoi(f);
        }
      |}
  in
  let picks =
    List.filter_map
      (function
        | Ast.TFunc f
          when String.length f.Ast.f_name >= 5
               && String.sub f.Ast.f_name 0 5 = "pick_" ->
            Some f.Ast.f_ret
        | _ -> None)
      fo
  in
  Alcotest.(check int) "two instances" 2 (List.length picks);
  Alcotest.(check bool) "int and float" true
    (List.mem Ast.TInt picks && List.mem Ast.TFloat picks)

let test_instantiate_lifts_partial_data () =
  outputs_match
    {|
      int apply1(int f (int), int x) { return f(x); }
      int addmul(int a, int b, int x) { return a * x + b; }
      int main() { return apply1(addmul(3, 4), 10); }
    |};
  let fo =
    instantiate ~entry:"main"
      {|
        int apply1(int f (int), int x) { return f(x); }
        int addmul(int a, int b, int x) { return a * x + b; }
        int main() { return apply1(addmul(3, 4), 10); }
      |}
  in
  let apply1 =
    List.find_map
      (function
        | Ast.TFunc f when f.Ast.f_name <> "main" && f.Ast.f_name <> "addmul"
          ->
            Some f
        | _ -> None)
      fo
  in
  match apply1 with
  | Some f ->
      (* f's parameter was replaced by the two lifted ints plus x *)
      Alcotest.(check int) "lifted params" 3 (List.length f.Ast.f_params)
  | None -> Alcotest.fail "no apply1 instance"

let test_instantiate_operator_sections () =
  outputs_match
    {|
      int fold2(int f (int, int), int a, int b) { return f(a, b); }
      int main() { return fold2((+), 1, 2) * fold2((*), 3, 4); }
    |}

let test_instantiate_distinct_specs_per_funarg () =
  (* the same HOF used with two different functional arguments must yield
     two specializations, and with the same argument only one *)
  let fo =
    instantiate ~entry:"main"
      {|
        int apply1(int f (int), int x) { return f(x); }
        int inc(int x) { return x + 1; }
        int dec(int x) { return x - 1; }
        int main() {
          return apply1(inc, 1) + apply1(dec, 10) + apply1(inc, 100);
        }
      |}
  in
  let apply1s =
    List.filter
      (function
        | Ast.TFunc f ->
            String.length f.Ast.f_name >= 7
            && String.sub f.Ast.f_name 0 7 = "apply1_"
        | _ -> false)
      fo
  in
  Alcotest.(check int) "two instances" 2 (List.length apply1s)

let test_instantiate_operator_lift_types () =
  (* a partially applied multiplication on ints and on floats gives
     differently typed lifted parameters *)
  let fo =
    instantiate ~entry:"main"
      {|
        $a apply1($a f ($a), $a x) { return f(x); }
        int main() {
          float y = apply1((*)(2.0), 3.0);
          return apply1((*)(2), 3) + ftoi(y);
        }
      |}
  in
  let lifted_types =
    List.filter_map
      (function
        | Ast.TFunc f
          when String.length f.Ast.f_name >= 7
               && String.sub f.Ast.f_name 0 7 = "apply1_" -> (
            match f.Ast.f_params with
            | { Ast.p_type; _ } :: _ -> Some p_type
            | [] -> None)
        | _ -> None)
      fo
  in
  Alcotest.(check bool) "int and float lifted params" true
    (List.mem Ast.TInt lifted_types && List.mem Ast.TFloat lifted_types)

let test_nested_break_inner_only () =
  let v, _ =
    run_main
      {|
        int main() {
          int total = 0;
          for (int i = 0; i < 3; i++) {
            int j = 0;
            while (1) {
              j++;
              if (j == 2) break;
            }
            total += j;
          }
          return total;
        }
      |}
  in
  Alcotest.(check bool) "break exits inner loop only" true (v = Value.VInt 6)

let test_instantiate_repassed_lift_types () =
  (* a partial application with float lifts passed through TWO levels of
     HOFs must keep its lifted parameter typed float *)
  let fo =
    instantiate ~entry:"main"
      {|
        float apply1(float f (float), float x) { return f(x); }
        float outer(float g (float), float x) { return apply1(g, x); }
        float scale(float k, float x) { return k * x; }
        int main() { return ftoi(outer(scale(2.5), 4.0)); }
      |}
  in
  let ok = ref false in
  List.iter
    (function
      | Ast.TFunc f
        when String.length f.Ast.f_name >= 6
             && String.sub f.Ast.f_name 0 6 = "outer_" -> (
          match f.Ast.f_params with
          | { Ast.p_type = Ast.TFloat; p_name } :: _
            when String.length p_name > 5 -> ok := true
          | _ -> ())
      | _ -> ())
    fo;
  Alcotest.(check bool) "float lift survives re-passing" true !ok;
  (* and the whole thing still computes correctly *)
  outputs_match
    {|
      float apply1(float f (float), float x) { return f(x); }
      float outer(float g (float), float x) { return apply1(g, x); }
      float scale(float k, float x) { return k * x; }
      int main() { return ftoi(outer(scale(2.5), 4.0)); }
    |}

let test_instantiate_rejects_computed_function () =
  let src =
    {|
      int apply1(int f (int), int x) { return f(x); }
      int inc(int x) { return x + 1; }
      int dec(int x) { return x - 1; }
      int main(int c) {
        return apply1(c ? inc : dec, 1);
      }
    |}
  in
  let p = Parser.parse src in
  let env = Typecheck.check p in
  Alcotest.(check bool) "unsupported" true
    (try
       ignore (Instantiate.program env p ~entries:[ "main" ]);
       false
     with Instantiate.Unsupported _ -> true)

(* ---------------- SPMD execution ---------------- *)

let shpaths_src =
  {|
    int init_f(Index ix) {
      if (ix[0] == ix[1]) return 0;
      return 1 + (ix[0] * 7 + ix[1] * 13) % 9;
    }
    int zero(Index ix) { return 0; }
    int inf_elem(Index ix) { return int_max; }
    void shpaths(int n) {
      array<int> a; array<int> b; array<int> c;
      a = array_create(2, {n,n}, {0,0}, {-1,-1}, init_f, DISTR_TORUS2D);
      b = array_create(2, {n,n}, {0,0}, {-1,-1}, zero, DISTR_TORUS2D);
      c = array_create(2, {n,n}, {0,0}, {-1,-1}, int_max_f, DISTR_TORUS2D);
      for (int i = 0; i < log2(n); i++) {
        array_copy(a, b);
        array_gen_mult(a, b, min, (+), c);
        array_copy(c, a);
      }
      if (procId == 0) {
        for (int j = 0; j < n / 2; j++) {
          print_int(array_get_elem(c, {0, j}));
          print_string(" ");
        }
      }
      array_destroy(a); array_destroy(b); array_destroy(c);
    }
    int int_max_f(Index ix) { return int_max; }
  |}

let spmd_output ?instantiate ~q src ~entry ~args =
  let r =
    Spmd.run_source ?instantiate
      ~topology:(Topology.torus2d ~width:q ~height:q ())
      src ~entry ~args
  in
  (r.Machine.values.(0)).Spmd.printed

let test_spmd_shpaths_matches_reference () =
  let n = 8 in
  let weight ix =
    if ix.(0) = ix.(1) then 0 else 1 + (((ix.(0) * 7) + (ix.(1) * 13)) mod 9)
  in
  let fw = Shortest_paths.floyd_warshall ~n ~weight in
  let expected =
    String.concat "" (List.init (n / 2) (fun j -> string_of_int fw.(j) ^ " "))
  in
  List.iter
    (fun q ->
      Alcotest.(check string)
        (Printf.sprintf "direct q=%d" q)
        expected
        (spmd_output ~instantiate:false ~q shpaths_src ~entry:"shpaths"
           ~args:[ Value.VInt n ]);
      Alcotest.(check string)
        (Printf.sprintf "instantiated q=%d" q)
        expected
        (spmd_output ~instantiate:true ~q shpaths_src ~entry:"shpaths"
           ~args:[ Value.VInt n ]))
    [ 1; 2 ]

let test_spmd_above_thresh () =
  let src =
    {|
      int above_thresh(float thresh, float elem, Index ix) {
        return elem >= thresh;
      }
      float init_a(Index ix) { return itof(ix[0]) / 4.0; }
      int zero_i(Index ix) { return 0; }
      void main(int n) {
        array<float> a; array<int> b;
        float t = 1.0;
        a = array_create(1, {n}, {0}, {-1}, init_a, DISTR_DEFAULT);
        b = array_create(1, {n}, {0}, {-1}, zero_i, DISTR_DEFAULT);
        array_map(above_thresh(t), a, b);
        if (procId == 0) {
          Bounds bds = array_part_bounds(b);
          for (int i = 0; i <= bds->upperBd[0]; i++) {
            print_int(array_get_elem(b, {i}));
          }
        }
      }
    |}
  in
  let r =
    Spmd.run_source ~topology:(Topology.mesh ~width:2 ~height:1) src
      ~entry:"main" ~args:[ Value.VInt 8 ]
  in
  (* elements 0/4,1/4,...,7/4; >= 1.0 from index 4 on; rank 0 holds 0..3 *)
  Alcotest.(check string) "thresholds" "0000"
    (r.Machine.values.(0)).Spmd.printed

let test_spmd_timing_nonzero () =
  let r =
    Spmd.run_source ~topology:(Topology.torus2d ~width:2 ~height:2 ())
      shpaths_src ~entry:"shpaths" ~args:[ Value.VInt 8 ]
  in
  Alcotest.(check bool) "simulated time advanced" true (r.Machine.time > 0.0)

(* ---------------- C back end ---------------- *)

let test_emit_c_paper_example () =
  let src =
    {|
      int above_thresh(float thresh, float elem, Index ix) {
        return elem >= thresh;
      }
      float init_a(Index ix) { return itof(ix[0]); }
      int zero_i(Index ix) { return 0; }
      void main(int n) {
        array<float> a; array<int> b;
        float t = 1.0;
        a = array_create(1, {n}, {0}, {-1}, init_a, DISTR_DEFAULT);
        b = array_create(1, {n}, {0}, {-1}, zero_i, DISTR_DEFAULT);
        array_map(above_thresh(t), a, b);
      }
    |}
  in
  let p = Parser.parse src in
  let env = Typecheck.check p in
  let fo = Instantiate.program env p ~entries:[ "main" ] in
  let c = Emit_c.program fo in
  let contains needle =
    Alcotest.(check bool) ("emits " ^ needle) true (contains_sub c needle)
  in
  contains "floatarray";
  contains "intarray";
  contains "array_map_1 (t, a, b)";
  contains "int above_thresh (float thresh, float elem, Index ix)"

let test_emit_c_struct_instances () =
  let fo = instantiate quicksort_src ~entry:"main" in
  let c = Emit_c.program fo in
  Alcotest.(check bool) "struct instance" true
    (contains_sub c "struct _list_int")

let test_runtime_header () =
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("header has " ^ needle) true
        (contains_sub Emit_c.runtime_header needle))
    [
      "SKIL_RUNTIME_H"; "array_gen_mult"; "array_broadcast_part";
      "DISTR_TORUS2D"; "Bounds"; "procId";
    ]

let test_mangle_type () =
  Alcotest.(check string) "array<float>" "floatarray"
    (Emit_c.mangle_type (Ast.TNamed ("array", [ Ast.TFloat ])));
  Alcotest.(check string) "ptr" "int *" (Emit_c.mangle_type (Ast.TPtr Ast.TInt));
  Alcotest.(check string) "struct" "struct _list_int"
    (Emit_c.mangle_type (Ast.TNamed ("struct _list", [ Ast.TInt ])))

(* ---------------- standalone C ---------------- *)

(* Programs the standalone emitter cannot close into a self-contained
   sequential binary are rejected up front, not miscompiled. *)
let test_standalone_rejects () =
  let reject name ~entry src =
    let p = Parser.parse src in
    let env = Typecheck.check p in
    let fo = Instantiate.program env p ~entries:[ entry ] in
    match Emit_c.standalone fo ~entry ~args:[ 4 ] with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  reject "entry named main" ~entry:"main"
    {| void main(int n) { print_int(n); } |};
  reject "mixed array element types" ~entry:"go"
    {|
      float init_a(Index ix) { return itof(ix[0]); }
      int zero_i(Index ix) { return 0; }
      void go(int n) {
        array<float> a; array<int> b;
        a = array_create(1, {n}, {0}, {-1}, init_a, DISTR_DEFAULT);
        b = array_create(1, {n}, {0}, {-1}, zero_i, DISTR_DEFAULT);
      }
    |}

(* The standalone emitter's contract, end to end: the C it prints for the
   compilable examples builds with the host cc and its stdout byte-matches
   the simulator at 1x1 (the run-par framing).  Skipped quietly when no C
   compiler is on PATH. *)
let standalone_targets =
  [
    ("shpaths.skil", "shpaths", 8);
    ("jacobi.skil", "jacobi", 16);
    ("matmul.skil", "matmul", 8);
  ]

let test_standalone_cc () =
  if Sys.command "cc --version > /dev/null 2>&1" <> 0 then
    Printf.eprintf "standalone cc test skipped: no cc on PATH\n"
  else
    List.iter
      (fun (file, entry, n) ->
        let src = Test_engines.source file in
        let p = Parser.parse src in
        let env = Typecheck.check p in
        let fo = Instantiate.program env p ~entries:[ entry ] in
        let c = Emit_c.standalone fo ~entry ~args:[ n ] in
        let r =
          Spmd.run_source
            ~topology:(Topology.mesh ~width:1 ~height:1)
            src ~entry
            ~args:[ Value.VInt n ]
        in
        let want = Buffer.create 256 in
        Array.iteri
          (fun i (o : Spmd.outcome) ->
            if o.Spmd.printed <> "" then
              Buffer.add_string want
                (Printf.sprintf "[proc %d] %s\n" i o.Spmd.printed))
          r.Machine.values;
        let cfile = Filename.temp_file "skil_standalone" ".c" in
        let exe = Filename.temp_file "skil_standalone" ".exe" in
        let out = Filename.temp_file "skil_standalone" ".out" in
        Fun.protect
          ~finally:(fun () -> List.iter Sys.remove [ cfile; exe; out ])
          (fun () ->
            let oc = open_out cfile in
            output_string oc c;
            close_out oc;
            Alcotest.(check int)
              (file ^ " compiles") 0
              (Sys.command
                 (Printf.sprintf "cc -o %s %s -lm > /dev/null 2>&1"
                    (Filename.quote exe) (Filename.quote cfile)));
            Alcotest.(check int)
              (file ^ " runs") 0
              (Sys.command
                 (Printf.sprintf "%s > %s" (Filename.quote exe)
                    (Filename.quote out)));
            Alcotest.(check string) (file ^ " output")
              (Buffer.contents want)
              (Test_engines.read out)))
      standalone_targets

let suite =
  [
    ( "lang lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basic;
        Alcotest.test_case "operator sections" `Quick test_lexer_sections;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "strings/chars" `Quick test_lexer_strings_chars;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
      ] );
    ( "lang parser",
      [
        Alcotest.test_case "precedence" `Quick test_parser_precedence;
        Alcotest.test_case "postfix" `Quick test_parser_postfix;
        Alcotest.test_case "array literal" `Quick test_parser_array_literal;
        Alcotest.test_case "top-level" `Quick test_parser_program_shapes;
        Alcotest.test_case "statements" `Quick test_parser_statements;
        Alcotest.test_case "compound assignment" `Quick
          test_parser_compound_assignment;
        Alcotest.test_case "errors" `Quick test_parser_errors;
      ] );
    ( "lang typecheck",
      [
        Alcotest.test_case "accepts" `Quick test_typecheck_accepts;
        Alcotest.test_case "currying" `Quick test_typecheck_polymorphic_currying;
        Alcotest.test_case "rejects" `Quick test_typecheck_rejects;
        Alcotest.test_case "pardata restrictions" `Quick
          test_typecheck_pardata_restrictions;
        Alcotest.test_case "records instantiation" `Quick
          test_typecheck_records_instantiation;
      ] );
    ( "lang interp",
      [
        Alcotest.test_case "control flow" `Quick test_interp_arith_control;
        Alcotest.test_case "compound assignment" `Quick
          test_interp_compound_assignment;
        Alcotest.test_case "structs/pointers" `Quick
          test_interp_structs_pointers;
        Alcotest.test_case "currying" `Quick test_interp_currying;
        Alcotest.test_case "operator sections" `Quick
          test_interp_operator_sections;
        Alcotest.test_case "printing" `Quick test_interp_prints;
        Alcotest.test_case "runtime errors" `Quick test_interp_runtime_errors;
        Alcotest.test_case "nested break" `Quick test_nested_break_inner_only;
      ] );
    ( "lang instantiate",
      [
        Alcotest.test_case "quicksort preserved" `Quick
          test_instantiate_preserves_quicksort;
        Alcotest.test_case "d&c collapses" `Quick
          test_instantiate_first_order_dc;
        Alcotest.test_case "monomorphization" `Quick
          test_instantiate_monomorphizes_by_type;
        Alcotest.test_case "lifting" `Quick test_instantiate_lifts_partial_data;
        Alcotest.test_case "operators" `Quick
          test_instantiate_operator_sections;
        Alcotest.test_case "distinct specs" `Quick
          test_instantiate_distinct_specs_per_funarg;
        Alcotest.test_case "operator lift types" `Quick
          test_instantiate_operator_lift_types;
        Alcotest.test_case "re-passed lift types" `Quick
          test_instantiate_repassed_lift_types;
        Alcotest.test_case "rejects computed functions" `Quick
          test_instantiate_rejects_computed_function;
      ] );
    ( "lang spmd",
      [
        Alcotest.test_case "shpaths source" `Quick
          test_spmd_shpaths_matches_reference;
        Alcotest.test_case "above_thresh" `Quick test_spmd_above_thresh;
        Alcotest.test_case "timing" `Quick test_spmd_timing_nonzero;
      ] );
    ( "lang emit C",
      [
        Alcotest.test_case "paper's array_map_1" `Quick
          test_emit_c_paper_example;
        Alcotest.test_case "struct instances" `Quick
          test_emit_c_struct_instances;
        Alcotest.test_case "runtime header" `Quick test_runtime_header;
        Alcotest.test_case "type mangling" `Quick test_mangle_type;
        Alcotest.test_case "standalone rejects" `Quick
          test_standalone_rejects;
        Alcotest.test_case "standalone cc round-trip" `Quick
          test_standalone_cc;
      ] );
  ]
