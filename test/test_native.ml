(* Tests for the native execution backend (Machine.run_native / --engine
   native): the simulator is the oracle for values and printed output, the
   raw Machine API is stressed directly for the parts the corpus cannot
   pin — recv_any exactly-once consumption, capacity-1 rings at full
   backpressure, and stall detection. *)

(* ---------------- corpus: native vs simulator ---------------- *)

(* Printed output, per-rank return values and the deterministic message
   counters must match the simulator exactly; times, traces and the
   wait/compute stats are wall-clock under native and are NOT compared. *)
let check_values name rs rn =
  let nprocs = Array.length rs.Machine.values in
  Alcotest.(check int)
    (name ^ " nprocs") nprocs
    (Array.length rn.Machine.values);
  for i = 0 to nprocs - 1 do
    let os = rs.Machine.values.(i) and on = rn.Machine.values.(i) in
    Alcotest.(check string)
      (Printf.sprintf "%s printed[%d]" name i)
      os.Spmd.printed on.Spmd.printed;
    Alcotest.(check string)
      (Printf.sprintf "%s value[%d]" name i)
      (Value.describe os.Spmd.value)
      (Value.describe on.Spmd.value)
  done;
  Array.iteri
    (fun i ps ->
      let pn = Stats.proc rn.Machine.stats i in
      let g fld a b =
        Alcotest.(check int) (Printf.sprintf "%s %s[%d]" name fld i) a b
      in
      g "msgs" ps.Stats.msgs_sent pn.Stats.msgs_sent;
      g "bytes" ps.Stats.bytes_sent pn.Stats.bytes_sent;
      g "hop_bytes" ps.Stats.hop_bytes pn.Stats.hop_bytes;
      g "skeleton_calls" ps.Stats.skeleton_calls pn.Stats.skeleton_calls)
    rs.Machine.stats.Stats.procs

let domain_counts = [ 1; 2; 4 ]

let test_corpus_native () =
  List.iter
    (fun (file, entry, args, topo) ->
      let src = Test_engines.source file in
      let topology = Test_engines.topology topo in
      let rs = Spmd.run_source ~engine:`Compiled ~topology src ~entry ~args in
      List.iter
        (fun d ->
          let rn =
            Spmd.run_source ~engine:`Native ~native_domains:d ~topology src
              ~entry ~args
          in
          check_values (Printf.sprintf "%s d=%d" file d) rs rn)
        domain_counts)
    Test_engines.corpus

(* ---------------- random programs: native vs simulator ---------------- *)

let qcheck_native =
  Test_specialize.qt ~count:30 "native matches simulator (random programs)"
    Test_specialize.gen_program (fun src ->
      let topology = Topology.mesh ~width:2 ~height:2 in
      let rs =
        Spmd.run_source ~engine:`Compiled ~topology src ~entry:"main"
          ~args:[]
      in
      List.for_all
        (fun d ->
          let rn =
            Spmd.run_source ~engine:`Native ~native_domains:d ~topology src
              ~entry:"main" ~args:[]
          in
          Array.for_all2
            (fun (os : Spmd.outcome) (on : Spmd.outcome) ->
              let ok =
                os.Spmd.printed = on.Spmd.printed
                && Value.describe os.Spmd.value = Value.describe on.Spmd.value
              in
              if not ok then
                QCheck2.Test.fail_reportf
                  "native (domains=%d) diverged from simulator:@.sim \
                   printed %S value %s@.native printed %S value %s"
                  d os.Spmd.printed
                  (Value.describe os.Spmd.value)
                  on.Spmd.printed
                  (Value.describe on.Spmd.value);
              ok)
            rs.Machine.values rn.Machine.values)
        domain_counts)

(* ---------------- recv_any farm: exactly-once consumption -------------- *)

(* A raw master/worker farm over the native machine: rank 0 hands one task
   at a time to each idle worker and collects results with recv_any.  Every
   sent task must come back exactly once, and each result must name the
   worker that actually sent it. *)
let test_farm_exactly_once () =
  let ntasks = 200 in
  let topology = Topology.mesh ~width:4 ~height:1 in
  let r =
    Machine.run_native ~topology (fun ctx ->
        let me = Machine.self ctx in
        let p = Machine.nprocs ctx in
        let task_tag = 1 and result_tag = 2 in
        if me = 0 then begin
          let next = ref 0 in
          let outstanding = ref 0 in
          let got = ref [] in
          let feed w =
            if !next < ntasks then begin
              Machine.send ctx ~dest:w ~tag:task_tag ~bytes:8 (Some !next);
              incr next;
              incr outstanding
            end
            else Machine.send ctx ~dest:w ~tag:task_tag ~bytes:1 None
          in
          for w = 1 to p - 1 do
            feed w
          done;
          while !outstanding > 0 do
            let src, ((task, worker) : int * int) =
              Machine.recv_any ctx ~tag:result_tag
            in
            got := (task, worker, src) :: !got;
            decr outstanding;
            feed src
          done;
          !got
        end
        else begin
          let rec serve () =
            match (Machine.recv ctx ~src:0 ~tag:task_tag : int option) with
            | Some task ->
                Machine.send ctx ~dest:0 ~tag:result_tag ~bytes:16 (task, me);
                serve ()
            | None -> ()
          in
          serve ();
          []
        end)
  in
  let got = r.Machine.values.(0) in
  Alcotest.(check int) "every task answered" ntasks (List.length got);
  List.iter
    (fun (_, worker, src) ->
      Alcotest.(check int) "result names its sender" src worker)
    got;
  let tasks = List.sort compare (List.map (fun (t, _, _) -> t) got) in
  Alcotest.(check (list int))
    "each task consumed exactly once"
    (List.init ntasks Fun.id)
    tasks

(* ---------------- capacity-1 rings: no deadlock under backpressure ----- *)

(* Every rank fires a burst of messages at its right neighbour BEFORE
   receiving anything, through rings that hold a single message: progress
   then depends entirely on the driver draining full rings into mailboxes
   and re-waking parked senders.  Runs at several domain counts so both the
   same-group and the cross-group parking paths are exercised. *)
let test_capacity_one_backpressure () =
  let k = 32 in
  let topology = Topology.mesh ~width:4 ~height:1 in
  List.iter
    (fun d ->
      let r =
        Machine.run_native ~chan_cap:1 ~domains:d ~topology (fun ctx ->
            let me = Machine.self ctx in
            let p = Machine.nprocs ctx in
            let right = (me + 1) mod p and left = (me + p - 1) mod p in
            for j = 0 to k - 1 do
              Machine.send ctx ~dest:right ~tag:7 ~bytes:8 ((me * 1000) + j)
            done;
            let sum = ref 0 in
            for _ = 1 to k do
              sum := !sum + (Machine.recv ctx ~src:left ~tag:7 : int)
            done;
            !sum)
      in
      Array.iteri
        (fun me sum ->
          let left = (me + 3) mod 4 in
          Alcotest.(check int)
            (Printf.sprintf "d=%d rank %d sum" d me)
            ((k * left * 1000) + (k * (k - 1) / 2))
            sum)
        r.Machine.values)
    domain_counts

(* ---------------- stall detection ---------------- *)

(* A receive no send can ever satisfy must raise Machine.Stalled (with the
   parked rank in the report), not hang the domains. *)
let test_stall_detected () =
  let topology = Topology.mesh ~width:2 ~height:1 in
  match
    Machine.run_native ~topology (fun ctx ->
        if Machine.self ctx = 0 then
          ignore (Machine.recv ctx ~src:1 ~tag:99 : int))
  with
  | _ -> Alcotest.fail "expected Machine.Stalled"
  | exception Machine.Stalled blocked ->
      Alcotest.(check bool)
        "rank 0 reported" true
        (List.exists (fun (p, _) -> p = 0) blocked)

let suite =
  [
    ( "native",
      [
        Alcotest.test_case "corpus native vs simulator" `Quick
          test_corpus_native;
        qcheck_native;
        Alcotest.test_case "farm recv_any exactly-once" `Quick
          test_farm_exactly_once;
        Alcotest.test_case "capacity-1 backpressure" `Quick
          test_capacity_one_backpressure;
        Alcotest.test_case "stall detected" `Quick test_stall_detected;
      ] );
  ]
