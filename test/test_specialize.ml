(* Property: payload specialisation is unobservable.  Random monomorphic
   Skil programs — an int or float array initialised, mapped with a
   partially-applied element function, folded and printed — must behave
   bit-identically under the reference interpreter, the compiled engine
   with payload specialisation and the compiled engine with --no-specialize:
   same printed output per processor, same return values, same simulated
   makespan and same structured trace. *)

let qt ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:(fun s -> s) gen prop)

open QCheck2.Gen

type ty = I | F

(* Literals: small ints, quarter-step floats.  No division or modulo so
   every generated program is total; negative literals are parenthesised
   to survive positions like "a - -3". *)
let lit = function
  | I -> int_range (-9) 9 >|= fun n -> Printf.sprintf "(%d)" n
  | F ->
      int_range (-40) 40 >|= fun n ->
      Printf.sprintf "(%.2f)" (float_of_int n /. 4.0)

(* Depth-bounded expression over the given atoms, arithmetic and the
   min/max builtins (the specialiser has dedicated paths for both). *)
let rec expr ty depth atoms =
  if depth = 0 then oneof [ oneofl atoms; lit ty ]
  else
    frequency
      [
        (2, oneofl atoms);
        (1, lit ty);
        ( 3,
          oneofl [ "+"; "-"; "*" ] >>= fun op ->
          expr ty (depth - 1) atoms >>= fun a ->
          expr ty (depth - 1) atoms >|= fun b ->
          Printf.sprintf "(%s %s %s)" a op b );
        ( 2,
          oneofl [ "min"; "max" ] >>= fun f ->
          expr ty (depth - 1) atoms >>= fun a ->
          expr ty (depth - 1) atoms >|= fun b ->
          Printf.sprintf "%s(%s, %s)" f a b );
      ]

let gen_program =
  oneofl [ I; F ] >>= fun ty ->
  int_range 1 2 >>= fun dim ->
  int_range 2 6 >>= fun n0 ->
  int_range 2 5 >>= fun n1 ->
  let tname = match ty with I -> "int" | F -> "float" in
  let ix d = match ty with
    | I -> Printf.sprintf "ix[%d]" d
    | F -> Printf.sprintf "itof(ix[%d])" d
  in
  let ix_atoms = if dim = 2 then [ ix 0; ix 1 ] else [ ix 0 ] in
  expr ty 2 ix_atoms >>= fun init_e ->
  expr ty 2 ([ "c"; "elem" ] @ ix_atoms) >>= fun map_e ->
  expr ty 1 [ "elem" ] >>= fun conv_e ->
  oneofl [ "a + b"; "min(a, b)"; "max(a, b)" ] >>= fun merge_e ->
  lit ty >|= fun cval ->
  let size =
    if dim = 2 then Printf.sprintf "{%d, %d}" n0 n1
    else Printf.sprintf "{%d}" n0
  in
  let zeros = if dim = 2 then "{0, 0}" else "{0}" in
  let negs = if dim = 2 then "{-1, -1}" else "{-1}" in
  Printf.sprintf
    {|
%s init(Index ix) { return %s; }
%s f(%s c, %s elem, Index ix) { return %s; }
%s conv(%s elem, Index ix) { return %s; }
%s merge(%s a, %s b) { return %s; }
void main() {
  array<%s> a;
  array<%s> b;
  a = array_create(%d, %s, %s, %s, init, DISTR_DEFAULT);
  b = array_create(%d, %s, %s, %s, init, DISTR_DEFAULT);
  array_map(f(%s), a, b);
  %s r = array_fold(conv, merge, b);
  print_%s(r);
  array_destroy(a);
  array_destroy(b);
}
|}
    tname init_e tname tname tname map_e tname tname conv_e tname tname
    tname merge_e tname tname dim size zeros negs dim size zeros negs cval
    tname tname

let nprocs = 4

let observe src ~engine ~specialize =
  let r =
    Spmd.run_source ~engine ~specialize ~trace:true
      ~topology:(Topology.mesh ~width:2 ~height:2)
      src ~entry:"main" ~args:[]
  in
  ( Array.map (fun o -> o.Spmd.printed) r.Machine.values,
    Array.map (fun o -> Value.describe o.Spmd.value) r.Machine.values,
    r.Machine.time,
    Profile.chrome_json r.Machine.trace ~nprocs )

let prop_specialisation_unobservable src =
  let a = observe src ~engine:`Ast ~specialize:true in
  let s = observe src ~engine:`Compiled ~specialize:true in
  let n = observe src ~engine:`Compiled ~specialize:false in
  a = s && a = n

let suite =
  [
    ( "specialize",
      [
        qt "random monomorphic programs: ast = spec = no-spec" gen_program
          prop_specialisation_unobservable;
      ] );
  ]
