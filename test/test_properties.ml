(* Property-based tests (qcheck, registered as alcotest cases). *)

let qt ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

open QCheck2.Gen

(* ---------------- index / distribution ---------------- *)

let gen_dims = int_range 1 2

let gen_dist =
  gen_dims >>= fun dim ->
  list_repeat dim (int_range 1 12) >>= fun gsize ->
  list_repeat dim (int_range 1 4) >>= fun pgrid ->
  (if dim = 2 then
     oneof
       [
         return Distribution.Block;
         return Distribution.Cyclic;
         int_range 1 3 >|= fun k -> Distribution.Block_cyclic k;
       ]
   else return Distribution.Block)
  >|= fun scheme ->
  let pgrid =
    match scheme with
    | Distribution.Block -> pgrid
    | _ -> [ List.hd pgrid; 1 ]
  in
  Distribution.create ~gsize:(Array.of_list gsize)
    ~pgrid:(Array.of_list pgrid) scheme

let prop_distribution_partitions d =
  (* local counts sum to the volume, and every index is owned by a region
     that contains it *)
  let gsize = Distribution.gsize d in
  let p = Distribution.nprocs d in
  let total = ref 0 in
  for rank = 0 to p - 1 do
    total := !total + Distribution.local_count d ~rank
  done;
  let ok = ref (!total = Index.volume gsize) in
  let b = { Index.lower = Array.map (fun _ -> 0) gsize; upper = gsize } in
  Index.iter b (fun ix ->
      let o = Distribution.owner d ix in
      if not (Distribution.region_mem (Distribution.region d ~rank:o) ix) then
        ok := false);
  !ok

let prop_region_offsets_bijective d =
  let p = Distribution.nprocs d in
  let ok = ref true in
  for rank = 0 to p - 1 do
    let reg = Distribution.region d ~rank in
    let n = Distribution.region_count reg in
    let seen = Array.make n false in
    Distribution.region_iter reg (fun ix ->
        let off = Distribution.region_offset reg ix in
        if off < 0 || off >= n || seen.(off) then ok := false
        else seen.(off) <- true);
    if not (Array.for_all Fun.id seen) then ok := false
  done;
  !ok

let gen_bounds =
  gen_dims >>= fun dim ->
  list_repeat dim (pair (int_range (-5) 5) (int_range 0 6)) >|= fun spans ->
  {
    Index.lower = Array.of_list (List.map fst spans);
    upper = Array.of_list (List.map (fun (lo, ext) -> lo + ext) spans);
  }

let prop_index_iter_matches_offsets b =
  let pos = ref 0 in
  let ok = ref true in
  Index.iter b (fun ix ->
      if Index.local_offset b ix <> !pos then ok := false;
      incr pos);
  !ok && !pos = Index.volume (Index.extent b)

(* ---------------- machine-level properties ---------------- *)

let gen_procs = int_range 1 7

let run_line ~procs f =
  Machine.run ~topology:(Topology.mesh ~width:procs ~height:1) f

let prop_allreduce_sum (procs, values) =
  let values = Array.of_list values in
  if Array.length values < procs then true
  else begin
    let r =
      run_line ~procs (fun ctx ->
          Collectives.allreduce ctx ~tag:0 ~bytes:4 ( + )
            values.(Machine.self ctx))
    in
    let expected = ref 0 in
    for i = 0 to procs - 1 do
      expected := !expected + values.(i)
    done;
    Array.for_all (fun v -> v = !expected) r.Machine.values
  end

let prop_scan_prefix (procs, values) =
  let values = Array.of_list values in
  if Array.length values < procs then true
  else begin
    let r =
      run_line ~procs (fun ctx ->
          Collectives.scan ctx ~tag:0 ~bytes:4 ( + ) values.(Machine.self ctx))
    in
    let ok = ref true in
    let acc = ref 0 in
    Array.iteri
      (fun i got ->
        acc := !acc + values.(i);
        if got <> !acc then ok := false)
      r.Machine.values;
    !ok
  end

(* ---------------- skeleton laws ---------------- *)

let gen_array_setup =
  pair gen_procs (int_range 1 30) >>= fun (procs, n) ->
  int_range 0 1000 >|= fun seed -> (procs, n, seed)

let elems ~n ~seed = Array.init n (fun i -> Workload.hash2 ~seed i 0 mod 100)

let with_array ~procs ~n ~seed f =
  (run_line ~procs (fun ctx ->
       let a =
         Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default (fun ix ->
             (elems ~n ~seed).(ix.(0)))
       in
       f ctx a))
    .Machine.values

let prop_map_composition (procs, n, seed) =
  let f v = (2 * v) + 1 and g v = v * v in
  let r =
    run_line ~procs (fun ctx ->
        let mk init =
          Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default init
        in
        let a = mk (fun ix -> (elems ~n ~seed).(ix.(0))) in
        let b = mk (fun _ -> 0) in
        let c = mk (fun _ -> 0) in
        (* b := map (f o g) a;  c := map f (map g a) *)
        Skeletons.map ctx (fun v _ -> f (g v)) a b;
        Skeletons.map ctx (fun v _ -> g v) a a;
        Skeletons.map ctx (fun v _ -> f v) a c;
        (b, c))
  in
  let b, c = r.Machine.values.(0) in
  Darray.to_flat b = Darray.to_flat c

let prop_fold_sum_fixed (procs, n, seed) =
  let r =
    with_array ~procs ~n ~seed (fun ctx a ->
        Skeletons.fold ctx ~conv:(fun v _ -> v) ( + ) a)
  in
  let expected = Array.fold_left ( + ) 0 (elems ~n ~seed) in
  Array.for_all (fun v -> v = expected) r

let prop_copy_then_fold_agrees (procs, n, seed) =
  let r =
    run_line ~procs (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default (fun ix ->
              (elems ~n ~seed).(ix.(0)))
        in
        let b =
          Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default (fun _ ->
              0)
        in
        Skeletons.copy ctx a b;
        Skeletons.fold ctx ~conv:(fun v _ -> v) max b)
  in
  let expected = Array.fold_left max min_int (elems ~n ~seed) in
  Array.for_all (fun v -> v = expected) r.Machine.values

let gen_permutation =
  pair gen_procs (int_range 1 15) >>= fun (procs, n) ->
  int_range 0 1000 >|= fun seed ->
  (* Fisher-Yates driven by the hash *)
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Workload.hash2 ~seed i 7 mod (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  (procs, n, perm)

let prop_permute_rows (procs, n, perm) =
  let r =
    run_line ~procs (fun ctx ->
        let mk init =
          Skeletons.create ctx ~gsize:[| n; 2 |] ~distr:Darray.Default init
        in
        let a = mk (fun ix -> (10 * ix.(0)) + ix.(1)) in
        let b = mk (fun _ -> -1) in
        Skeletons.permute_rows ctx a (fun r -> perm.(r)) b;
        b)
  in
  let flat = Darray.to_flat r.Machine.values.(0) in
  let ok = ref true in
  for row = 0 to n - 1 do
    for col = 0 to 1 do
      if flat.((perm.(row) * 2) + col) <> (10 * row) + col then ok := false
    done
  done;
  !ok

let gen_permutation_scheme =
  (* the permute_rows receive loop assumes every sender's rows arrive in
     ascending source-row order; this must hold for every distribution
     scheme, not just Block *)
  gen_permutation >>= fun (procs, n, perm) ->
  oneof
    [
      return Distribution.Block;
      return Distribution.Cyclic;
      int_range 1 3 >|= fun k -> Distribution.Block_cyclic k;
    ]
  >|= fun scheme -> (procs, n, perm, scheme)

let prop_permute_rows_any_scheme (procs, n, perm, scheme) =
  let r =
    run_line ~procs (fun ctx ->
        let mk init =
          Skeletons.create ctx ~scheme ~gsize:[| n; 3 |] ~distr:Darray.Default
            init
        in
        let a = mk (fun ix -> (10 * ix.(0)) + ix.(1)) in
        let b = mk (fun _ -> -1) in
        Skeletons.permute_rows ctx a (fun r -> perm.(r)) b;
        b)
  in
  let b = r.Machine.values.(0) in
  let ok = ref true in
  for row = 0 to n - 1 do
    for col = 0 to 2 do
      if Darray.peek b [| perm.(row); col |] <> (10 * row) + col then
        ok := false
    done
  done;
  !ok

let gen_gen_mult =
  pair (int_range 1 3) (int_range 1 4) >>= fun (q, mult) ->
  int_range 0 1000 >|= fun seed -> (q, q * mult, seed)

let prop_gen_mult_reference (q, n, seed) =
  let av ix = Workload.hash2 ~seed ix.(0) ix.(1) mod 5 in
  let bv ix = Workload.hash2 ~seed:(seed + 1) ix.(0) ix.(1) mod 5 in
  let r =
    Machine.run ~topology:(Topology.torus2d ~width:q ~height:q ()) (fun ctx ->
        let mk init =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d init
        in
        let a = mk av in
        let b = mk bv in
        let c = mk (fun _ -> 0) in
        Skeletons.gen_mult ctx ~add:( + ) ~mul:( * ) a b c;
        c)
  in
  let flat = Darray.to_flat r.Machine.values.(0) in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0 in
      for k = 0 to n - 1 do
        s := !s + (av [| i; k |] * bv [| k; j |])
      done;
      if flat.((i * n) + j) <> !s then ok := false
    done
  done;
  !ok

(* ---------------- app invariants ---------------- *)

let prop_shortest_paths_triangle (q, n0, seed) =
  let n = Shortest_paths.adjusted_n ~n:(max q n0) ~q in
  let weight = Workload.graph_weight ~seed ~n ~max_weight:20 in
  let r =
    Machine.run ~topology:(Topology.torus2d ~width:q ~height:q ()) (fun ctx ->
        Shortest_paths.distances ctx ~n ~weight)
  in
  let d = r.Machine.values.(0) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if d.((i * n) + i) <> 0 then ok := false;
    for j = 0 to n - 1 do
      if d.((i * n) + j) > weight [| i; j |] then ok := false;
      for k = 0 to n - 1 do
        if d.((i * n) + j) > d.((i * n) + k) + d.((k * n) + j) then ok := false
      done
    done
  done;
  !ok

let prop_gauss_residual (procs, n0, seed) =
  let n = max procs (min 24 (n0 + procs)) in
  let matrix = Workload.gauss_matrix ~seed ~n in
  let r = run_line ~procs (fun ctx -> Gauss.solve ctx ~n ~matrix) in
  Gauss.residual ~n ~matrix r.Machine.values.(0) < 1e-8

(* ---------------- extensions ---------------- *)

let prop_stencil_matches_dense (procs, n0, seed) =
  (* map_halo with radius 1 equals the same stencil computed on the host *)
  let n = max (2 * procs) (4 + (n0 mod 10)) and m = 5 in
  let init ix = Workload.hash2 ~seed ix.(0) ix.(1) mod 50 in
  let r =
    run_line ~procs (fun ctx ->
        let mk g =
          Skeletons.create ctx ~gsize:[| n; m |] ~distr:Darray.Default g
        in
        let a = mk init in
        let b = mk (fun _ -> 0) in
        let f ~get v ix =
          let row = ix.(0) and c = ix.(1) in
          if row = 0 || row = n - 1 then v
          else get (row - 1) c + get (row + 1) c
        in
        Stencil.map_halo ctx ~radius:1 ~f a b;
        b)
  in
  let flat = Darray.to_flat r.Machine.values.(0) in
  let ok = ref true in
  for row = 0 to n - 1 do
    for c = 0 to m - 1 do
      let expected =
        if row = 0 || row = n - 1 then init [| row; c |]
        else init [| row - 1; c |] + init [| row + 1; c |]
      in
      if flat.((row * m) + c) <> expected then ok := false
    done
  done;
  !ok

let prop_par_io_roundtrip (procs, n0, seed) =
  let n = 1 + (n0 mod 20) in
  let init ix = Workload.hash2 ~seed ix.(0) 3 mod 1000 in
  let r =
    run_line ~procs (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default init
        in
        let f = Par_io.write_array ctx ~stripes:(1 + (seed mod procs)) a in
        let b =
          Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default (fun _ ->
              -1)
        in
        Par_io.read_array ctx f b;
        b)
  in
  Darray.to_flat r.Machine.values.(0) = Array.init n (fun i -> init [| i |])

let prop_dc_mergesort (procs, len, seed) =
  let input =
    List.init (len mod 25) (fun i -> Workload.hash2 ~seed i 1 mod 100)
  in
  let rec merge a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys -> if x <= y then x :: merge xs b else y :: merge a ys
  in
  let r =
    run_line ~procs (fun ctx ->
        Task_skel.divide_conquer ctx
          ~problem_bytes:(fun l -> 4 * List.length l)
          ~solution_bytes:(fun l -> 4 * List.length l)
          ~is_trivial:(fun l -> List.length l <= 1)
          ~solve:Fun.id
          ~divide:(fun l ->
            let rec split k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> split (k - 1) (x :: acc) rest
            in
            split (List.length l / 2) [] l)
          ~combine:merge
          (if Machine.self ctx = 0 then Some input else None))
  in
  (if input = [] then r.Machine.values.(0) = Some [] || r.Machine.values.(0) = Some []
   else true)
  && r.Machine.values.(0) = Some (List.sort compare input)

let prop_simulation_deterministic (procs, n0, seed) =
  (* identical runs produce identical makespans, values and stats *)
  let n = max procs (4 + (n0 mod 12)) in
  let weight = Workload.graph_weight ~seed ~n ~max_weight:9 in
  let go () =
    let q = 1 + (procs mod 3) in
    let r =
      Machine.run ~topology:(Topology.torus2d ~width:q ~height:q ())
        (fun ctx ->
          Shortest_paths.distances ctx
            ~n:(Shortest_paths.adjusted_n ~n ~q)
            ~weight)
    in
    (r.Machine.time, r.Machine.values.(0), Stats.total_msgs r.Machine.stats)
  in
  go () = go ()

(* ---------------- parser/printer roundtrip ---------------- *)

let gen_pure_expr =
  let rec go depth =
    if depth = 0 then
      oneof
        [
          (int_range 0 99 >|= fun n -> Ast.mk (Ast.Int n));
          oneofl [ "a"; "b"; "x" ] >|= (fun v -> Ast.mk (Ast.Var v));
        ]
    else
      oneof
        [
          (int_range 0 99 >|= fun n -> Ast.mk (Ast.Int n));
          (oneofl [ "a"; "b"; "x" ] >|= fun v -> Ast.mk (Ast.Var v));
          ( pair (oneofl [ "+"; "-"; "*" ])
              (pair (go (depth - 1)) (go (depth - 1)))
          >|= fun (op, (l, r)) -> Ast.mk (Ast.Binop (op, l, r)) );
          (go (depth - 1) >|= fun e -> Ast.mk (Ast.Unop ("-", e)));
          ( pair (go (depth - 1)) (pair (go (depth - 1)) (go (depth - 1)))
          >|= fun (c, (t, f)) -> Ast.mk (Ast.Cond (c, t, f)) );
        ]
  in
  int_range 0 4 >>= go

let rec expr_equal (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.desc, b.Ast.desc) with
  | Ast.Int x, Ast.Int y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Binop (o1, a1, b1), Ast.Binop (o2, a2, b2) ->
      o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Ast.Unop (o1, a1), Ast.Unop (o2, a2) -> o1 = o2 && expr_equal a1 a2
  | Ast.Cond (c1, t1, f1), Ast.Cond (c2, t2, f2) ->
      expr_equal c1 c2 && expr_equal t1 t2 && expr_equal f1 f2
  | _ -> false

let prop_parse_print_roundtrip e =
  (* Emit_c prints fully parenthesized, so parsing its output must give the
     same tree back *)
  let prog =
    [
      Ast.TFunc
        {
          Ast.f_ret = Ast.TInt;
          f_name = "probe";
          f_params =
            List.map
              (fun v -> { Ast.p_type = Ast.TInt; p_name = v })
              [ "a"; "b"; "x" ];
          f_body = Some [ Ast.SReturn (Some e) ];
        };
    ]
  in
  let printed = Emit_c.program prog in
  match Parser.parse printed with
  | [ Ast.TFunc { Ast.f_body = Some [ Ast.SReturn (Some e') ]; _ } ] ->
      expr_equal e e'
  | _ -> false
  | exception _ -> false

(* ---------------- instantiation preserves semantics ---------------- *)

let gen_hof_program =
  (* random arithmetic body for g(a, b, x); main partially applies g *)
  pair gen_pure_expr (pair (int_range 0 50) (pair (int_range 0 50) (int_range 0 50)))

let prop_instantiation_preserves (body, (va, (vb, vx))) =
  let prog =
    [
      Ast.TFunc
        {
          Ast.f_ret = Ast.TInt;
          f_name = "g";
          f_params =
            List.map
              (fun v -> { Ast.p_type = Ast.TInt; p_name = v })
              [ "a"; "b"; "x" ];
          f_body = Some [ Ast.SReturn (Some body) ];
        };
      Ast.TFunc
        {
          Ast.f_ret = Ast.TInt;
          f_name = "apply1";
          f_params =
            [
              { Ast.p_type = Ast.TFun ([ Ast.TInt ], Ast.TInt); p_name = "f" };
              { Ast.p_type = Ast.TInt; p_name = "x" };
            ];
          f_body =
            Some
              [
                Ast.SReturn
                  (Some
                     (Ast.mk
                        (Ast.Call
                           ( Ast.mk (Ast.Var "f"),
                             [ Ast.mk (Ast.Var "x") ] ))));
              ];
        };
      Ast.TFunc
        {
          Ast.f_ret = Ast.TInt;
          f_name = "main";
          f_params = [];
          f_body =
            Some
              [
                Ast.SReturn
                  (Some
                     (Ast.mk
                        (Ast.Call
                           ( Ast.mk (Ast.Var "apply1"),
                             [
                               Ast.mk
                                 (Ast.Call
                                    ( Ast.mk (Ast.Var "g"),
                                      [
                                        Ast.mk (Ast.Int va);
                                        Ast.mk (Ast.Int vb);
                                      ] ));
                               Ast.mk (Ast.Int vx);
                             ] ))));
              ];
        };
    ]
  in
  try
    let env = Typecheck.check prog in
    let st = Interp.make ~tyenv:env prog in
    let v1 = Interp.call st "main" [] in
    let fo = Instantiate.program env prog ~entries:[ "main" ] in
    let env2 = Typecheck.check fo in
    let st2 = Interp.make ~tyenv:env2 fo in
    let v2 = Interp.call st2 "main" [] in
    Instantiate.is_first_order fo && v1 = v2
  with Value.Skil_runtime_error _ ->
    (* e.g. division is absent from the generator, so this should not
       happen; treat any runtime error as a property failure *)
    false

let suite =
  [
    ( "properties",
      [
        qt "distribution partitions cover exactly" gen_dist
          prop_distribution_partitions;
        qt "region offsets bijective" gen_dist prop_region_offsets_bijective;
        qt "index iter matches offsets" gen_bounds
          prop_index_iter_matches_offsets;
        qt "allreduce sum"
          (pair gen_procs (list_size (return 8) (int_range (-50) 50)))
          prop_allreduce_sum;
        qt "scan prefix sums"
          (pair gen_procs (list_size (return 8) (int_range (-50) 50)))
          prop_scan_prefix;
        qt ~count:60 "map composition law" gen_array_setup
          prop_map_composition;
        qt ~count:60 "fold sum" gen_array_setup prop_fold_sum_fixed;
        qt ~count:60 "copy preserves fold" gen_array_setup
          prop_copy_then_fold_agrees;
        qt ~count:60 "permute rows" gen_permutation prop_permute_rows;
        qt ~count:60 "permute rows under cyclic schemes"
          gen_permutation_scheme prop_permute_rows_any_scheme;
        qt ~count:30 "gen_mult matches reference" gen_gen_mult
          prop_gen_mult_reference;
        qt ~count:10 "shortest paths triangle inequality"
          (triple (int_range 1 3) (int_range 2 10) (int_range 0 1000))
          prop_shortest_paths_triangle;
        qt ~count:20 "gauss residual small"
          (triple (int_range 1 4) (int_range 1 16) (int_range 0 1000))
          prop_gauss_residual;
        qt ~count:40 "stencil matches dense" gen_array_setup
          prop_stencil_matches_dense;
        qt ~count:40 "parallel io roundtrip" gen_array_setup
          prop_par_io_roundtrip;
        qt ~count:40 "d&c mergesort" gen_array_setup prop_dc_mergesort;
        qt ~count:20 "simulation deterministic" gen_array_setup
          prop_simulation_deterministic;
        qt ~count:100 "parse/print roundtrip" gen_pure_expr
          prop_parse_print_roundtrip;
        qt ~count:60 "instantiation preserves semantics" gen_hof_program
          prop_instantiation_preserves;
      ] );
  ]
