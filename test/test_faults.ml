(* Fault injection (skil_faults): plan parsing, splittable-PRNG
   determinism, the Reliable transport, stall/crash recovery, and the
   bit-replayability of fault runs. *)

let feq = Alcotest.(check (float 1e-9))

let drop_plan ?(seed = 1) rate =
  {
    (Fault.none ~seed) with
    Fault.link = { Fault.no_link_faults with Fault.drop = rate };
  }

(* ---------------- plan parsing ---------------- *)

let test_parse_full () =
  match
    Fault.parse
      "drop=0.1,dup=0.05,corrupt=0.02,delay=0.1x8,stall=2@0.01+0.005,\
       crash=1@0.02,reboot=0.004,seed=7"
  with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok p ->
      feq "drop" 0.1 p.Fault.link.Fault.drop;
      feq "dup" 0.05 p.Fault.link.Fault.dup;
      feq "corrupt" 0.02 p.Fault.link.Fault.corrupt;
      feq "delay" 0.1 p.Fault.link.Fault.delay;
      feq "delay factor" 8.0 p.Fault.link.Fault.delay_factor;
      Alcotest.(check int) "seed" 7 p.Fault.seed;
      feq "reboot" 0.004 p.Fault.reboot;
      (match p.Fault.stalls with
       | [ (2, s) ] ->
           feq "stall at" 0.01 s.Fault.stall_at;
           feq "stall for" 0.005 s.Fault.stall_for
       | _ -> Alcotest.fail "expected one stall on proc 2");
      (match p.Fault.crashes with
       | [ (1, t) ] -> feq "crash time" 0.02 t
       | _ -> Alcotest.fail "expected one crash on proc 1");
      (* crashes scheduled => checkpointing defaults on *)
      Alcotest.(check bool) "ckpt defaults on" true p.Fault.checkpoint

let test_parse_checkpoint_policy () =
  (match Fault.parse "drop=0.2" with
   | Ok p -> Alcotest.(check bool) "no crash, no ckpt" false p.Fault.checkpoint
   | Error m -> Alcotest.failf "parse failed: %s" m);
  match Fault.parse "crash=1@0.02,ckpt=off" with
  | Ok p -> Alcotest.(check bool) "ckpt=off wins" false p.Fault.checkpoint
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_parse_errors () =
  let bad s =
    match Fault.parse s with
    | Ok _ -> Alcotest.failf "parse %S should fail" s
    | Error _ -> ()
  in
  bad "bogus";
  bad "drop=x";
  bad "drop=-0.5";
  bad "stall=2@oops";
  bad "crash=1"

(* ---------------- PRNG ---------------- *)

let test_uniform_deterministic () =
  let k = [| 3; 1; 2; 7; 5; 0 |] in
  let u1 = Fault.uniform ~seed:42 ~key:k in
  let u2 = Fault.uniform ~seed:42 ~key:k in
  feq "same key, same draw" u1 u2;
  Alcotest.(check bool) "in [0,1)" true (u1 >= 0.0 && u1 < 1.0);
  let u3 = Fault.uniform ~seed:42 ~key:[| 3; 1; 2; 7; 6; 0 |] in
  Alcotest.(check bool) "different key, different draw" true (u1 <> u3);
  let u4 = Fault.uniform ~seed:43 ~key:k in
  Alcotest.(check bool) "different seed, different draw" true (u1 <> u4)

let test_decision_extremes () =
  let always = drop_plan 1.0 in
  let never = Fault.none ~seed:1 in
  for seq = 0 to 9 do
    let d = Fault.decision always ~src:0 ~dst:1 ~tag:3 ~seq ~attempt:0 in
    Alcotest.(check bool) "drop=1 always drops" true d.Fault.d_drop;
    let c = Fault.decision never ~src:0 ~dst:1 ~tag:3 ~seq ~attempt:0 in
    Alcotest.(check bool) "clean plan never injects" true (c = Fault.clean)
  done

(* ---------------- machine-level workloads ---------------- *)

(* three rounds of a ring exchange: deterministic (src, tag) receives, so
   reliable-mode values must equal fault-free values at any drop rate *)
let ring_prog ctx =
  let me = Machine.self ctx and p = Machine.nprocs ctx in
  let right = (me + 1) mod p and left = (me + p - 1) mod p in
  let acc = ref (me + 1) in
  for round = 1 to 3 do
    Machine.send ctx ~dest:right ~tag:round ~bytes:8 !acc;
    let v : int = Machine.recv ctx ~src:left ~tag:round in
    acc := !acc + (v * round)
  done;
  !acc

let run_ring ?faults ?reliable ~procs () =
  Machine.run ?faults ?reliable
    ~topology:(Topology.mesh ~width:procs ~height:1)
    ring_prog

let test_reliable_matches_fault_free () =
  let clean = run_ring ~procs:4 () in
  List.iter
    (fun rate ->
      let faulty = run_ring ~faults:(drop_plan rate) ~reliable:true ~procs:4 () in
      Alcotest.(check (array int))
        (Printf.sprintf "values at drop=%.2f" rate)
        clean.Machine.values faulty.Machine.values;
      Alcotest.(check bool)
        (Printf.sprintf "time degrades at drop=%.2f" rate)
        true
        (faulty.Machine.time >= clean.Machine.time))
    [ 0.05; 0.2; 0.5; 0.9 ]

let test_reliable_counters () =
  let r = run_ring ~faults:(drop_plan 0.5) ~reliable:true ~procs:4 () in
  Alcotest.(check bool) "dropped > 0" true (Stats.total_dropped r.Machine.stats > 0);
  Alcotest.(check bool) "retried > 0" true (Stats.total_retried r.Machine.stats > 0);
  Alcotest.(check bool) "acks > 0" true (Stats.total_acks r.Machine.stats > 0)

let test_fault_free_counters_zero () =
  let r = run_ring ~procs:4 () in
  Alcotest.(check int) "dropped" 0 (Stats.total_dropped r.Machine.stats);
  Alcotest.(check int) "retried" 0 (Stats.total_retried r.Machine.stats);
  Alcotest.(check int) "acks" 0 (Stats.total_acks r.Machine.stats);
  Alcotest.(check int) "recoveries" 0 (Stats.total_recoveries r.Machine.stats);
  feq "stall time" 0.0 (Stats.total_stall r.Machine.stats)

let test_raw_drop_stalls () =
  (* without the reliable transport a dropped message starves its receiver:
     the machine must convert the silent deadlock into a diagnostic *)
  match
    Machine.run ~faults:(drop_plan 1.0)
      ~topology:(Topology.mesh ~width:2 ~height:1)
      (fun ctx ->
        if Machine.self ctx = 0 then
          Machine.send ctx ~dest:1 ~tag:9 ~bytes:8 42
        else ignore (Machine.recv ctx ~src:0 ~tag:9 : int))
  with
  | _ -> Alcotest.fail "expected Machine.Stalled"
  | exception Machine.Stalled blocked ->
      (match List.assoc_opt 1 blocked with
       | Some why ->
           let contains s sub =
             let n = String.length s and m = String.length sub in
             let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
             m = 0 || go 0
           in
           Alcotest.(check bool) "names the starving recv" true
             (contains why "recv from p0" && contains why "tag 9")
       | None -> Alcotest.fail "proc 1 missing from Stalled payload")

let test_duplicates_deduped () =
  let clean = run_ring ~procs:3 () in
  let dup_plan =
    {
      (Fault.none ~seed:5) with
      Fault.link = { Fault.no_link_faults with Fault.dup = 1.0 };
    }
  in
  let r = run_ring ~faults:dup_plan ~reliable:true ~procs:3 () in
  Alcotest.(check (array int)) "values despite duplicates"
    clean.Machine.values r.Machine.values

let test_stall_charged () =
  let prog ctx = Machine.compute ctx 0.01 in
  let clean = Machine.run ~topology:(Topology.mesh ~width:1 ~height:1) prog in
  let plan =
    {
      (Fault.none ~seed:1) with
      Fault.stalls = [ (0, { Fault.stall_at = 0.0; Fault.stall_for = 0.005 }) ];
    }
  in
  let r = Machine.run ~faults:plan ~topology:(Topology.mesh ~width:1 ~height:1) prog in
  feq "stall extends makespan" (clean.Machine.time +. 0.005) r.Machine.time;
  feq "stall accounted" 0.005 (Stats.total_stall r.Machine.stats)

let test_crash_recovery () =
  let prog ctx =
    let r = ref 0 in
    Machine.protect ctx ~bytes:8
      ~snapshot:(fun () -> !r)
      ~restore:(fun v -> r := v)
      (fun () ->
        Machine.compute ctx 0.01;
        r := !r + 1);
    !r
  in
  let plan =
    { (Fault.none ~seed:1) with Fault.crashes = [ (0, 1e-4) ]; Fault.reboot = 0.002 }
  in
  let clean = Machine.run ~topology:(Topology.mesh ~width:1 ~height:1) prog in
  let r = Machine.run ~faults:plan ~topology:(Topology.mesh ~width:1 ~height:1) prog in
  Alcotest.(check int) "value survives the crash" clean.Machine.values.(0)
    r.Machine.values.(0);
  Alcotest.(check int) "one recovery" 1 (Stats.total_recoveries r.Machine.stats);
  Alcotest.(check bool) "reboot + re-execution charged" true
    (r.Machine.time > clean.Machine.time +. 0.002)

let test_skeleton_crash_recovery () =
  (* a crash mid-skeleton restores the checkpointed partition and
     re-executes: the collective still returns the fault-free result *)
  let n = 16 in
  let prog ctx =
    let a =
      Skeletons.create ctx ~gsize:[| n |] ~distr:Darray.Default (fun ix ->
          ix.(0))
    in
    Skeletons.map ctx (fun v _ -> (2 * v) + 1) a a;
    let s = Skeletons.fold ctx ~conv:(fun v _ -> v) ( + ) a in
    Skeletons.destroy ctx a;
    s
  in
  let plan =
    {
      (Fault.none ~seed:1) with
      Fault.crashes = [ (1, 1e-6) ];
      Fault.reboot = 0.001;
      Fault.checkpoint = true;
    }
  in
  let topo = Topology.mesh ~width:2 ~height:1 in
  let clean = Machine.run ~topology:topo prog in
  let r = Machine.run ~faults:plan ~topology:topo prog in
  Alcotest.(check (array int)) "fold result survives the crash"
    clean.Machine.values r.Machine.values;
  Alcotest.(check bool) "recovered at least once" true
    (Stats.total_recoveries r.Machine.stats >= 1)

let test_replay_bit_identical () =
  let plan =
    match Fault.parse "drop=0.3,dup=0.1,corrupt=0.05,delay=0.2x4,seed=9" with
    | Ok p -> p
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  let go () =
    let r =
      Machine.run ~faults:plan ~reliable:true ~trace:true
        ~topology:(Topology.mesh ~width:3 ~height:1)
        ring_prog
    in
    ( r.Machine.values,
      r.Machine.time,
      Stats.total_dropped r.Machine.stats,
      Stats.total_retried r.Machine.stats,
      Profile.chrome_json r.Machine.trace ~nprocs:3 )
  in
  let v1, t1, d1, rt1, j1 = go () in
  let v2, t2, d2, rt2, j2 = go () in
  Alcotest.(check (array int)) "values replay" v1 v2;
  feq "makespan replays" t1 t2;
  Alcotest.(check int) "drops replay" d1 d2;
  Alcotest.(check int) "retries replay" rt1 rt2;
  Alcotest.(check string) "chrome trace replays byte-for-byte" j1 j2

(* ---------------- corpus-level: .skil program under faults ---------- *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let source name =
  let candidates =
    [
      "../examples/skil/" ^ name;
      "examples/skil/" ^ name;
      "../../../examples/skil/" ^ name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> read p
  | None -> Alcotest.failf "cannot find %s" name

let test_skil_program_under_faults () =
  let src = source "gauss.skil" in
  let topo = Topology.mesh ~width:2 ~height:2 in
  let go ?faults ?reliable () =
    let r =
      Spmd.run_source ?faults ?reliable ~topology:topo src ~entry:"gauss"
        ~args:[ Value.VInt 8 ]
    in
    Array.map (fun o -> o.Spmd.printed) r.Machine.values
  in
  let clean = go () in
  let faulty = go ~faults:(drop_plan ~seed:3 0.2) ~reliable:true () in
  Alcotest.(check (array string)) "gauss.skil output under 20% loss"
    clean faulty

(* ---------------- qcheck: reliable delivery is value-transparent ----- *)

let qt ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_fault_setup =
  let open QCheck2.Gen in
  int_range 2 5 >>= fun procs ->
  int_range 0 20 >>= fun droppct ->
  int_range 0 10 >>= fun duppct ->
  int_range 0 10 >>= fun corruptpct ->
  int_range 1 1000 >|= fun seed -> (procs, droppct, duppct, corruptpct, seed)

let prop_reliable_value_transparent (procs, droppct, duppct, corruptpct, seed) =
  let plan =
    {
      (Fault.none ~seed) with
      Fault.link =
        {
          Fault.no_link_faults with
          Fault.drop = float_of_int droppct /. 100.0;
          Fault.dup = float_of_int duppct /. 100.0;
          Fault.corrupt = float_of_int corruptpct /. 100.0;
        };
    }
  in
  let clean = run_ring ~procs () in
  let faulty = run_ring ~faults:plan ~reliable:true ~procs () in
  clean.Machine.values = faulty.Machine.values

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "parse full spec" `Quick test_parse_full;
        Alcotest.test_case "parse checkpoint policy" `Quick
          test_parse_checkpoint_policy;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "uniform deterministic" `Quick
          test_uniform_deterministic;
        Alcotest.test_case "decision extremes" `Quick test_decision_extremes;
        Alcotest.test_case "reliable matches fault-free" `Quick
          test_reliable_matches_fault_free;
        Alcotest.test_case "reliable counters" `Quick test_reliable_counters;
        Alcotest.test_case "fault-free counters zero" `Quick
          test_fault_free_counters_zero;
        Alcotest.test_case "raw drop stalls with diagnostic" `Quick
          test_raw_drop_stalls;
        Alcotest.test_case "duplicates deduped" `Quick test_duplicates_deduped;
        Alcotest.test_case "stall charged" `Quick test_stall_charged;
        Alcotest.test_case "crash recovery (protect)" `Quick
          test_crash_recovery;
        Alcotest.test_case "crash recovery (skeleton checkpoint)" `Quick
          test_skeleton_crash_recovery;
        Alcotest.test_case "replay bit-identical" `Quick
          test_replay_bit_identical;
        Alcotest.test_case "gauss.skil under faults" `Quick
          test_skil_program_under_faults;
        qt "reliable transport is value-transparent" gen_fault_setup
          prop_reliable_value_transparent;
      ] );
  ]
