(* The experiment harness's determinism contract: dispatching cells through
   the domain pool must not change any result — only wall-clock time.  Runner
   outputs are compared structurally, which for float fields means
   bit-identical makespans. *)

let qt ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_table1_jobs_invariant () =
  let seq = Experiments.table1 ~quick:true ~jobs:1 () in
  let par = Experiments.table1 ~quick:true ~jobs:4 () in
  Alcotest.(check bool) "table1 rows identical for jobs 1 vs 4" true (seq = par)

let test_table2_jobs_invariant () =
  let seq = Experiments.table2 ~quick:true ~jobs:1 () in
  let par = Experiments.table2 ~quick:true ~jobs:4 () in
  Alcotest.(check bool) "table2 rows identical for jobs 1 vs 4" true (seq = par)

let test_exception_propagates () =
  (* the exception of the lowest-index failing element is re-raised, whatever
     domain ran it and however many elements fail *)
  Alcotest.check_raises "lowest-index failure wins" (Failure "5") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x >= 0 then raise (Failure (string_of_int x)) else x)
           [ 5; -1; 3 ]))

let test_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "single" [ 7 ]
    (Pool.map ~jobs:4 (fun x -> x + 1) [ 6 ])

let gen_map_case =
  let open QCheck2.Gen in
  pair (int_range 1 8) (small_list int)

let prop_map_order (jobs, xs) =
  let f x = (x * 31) + 7 in
  Pool.map ~jobs f xs = List.map f xs

let prop_run_order (jobs, xs) =
  let thunks = List.map (fun x -> fun () -> x * x) xs in
  Pool.run ~jobs thunks = List.map (fun x -> x * x) xs

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "table1 cell: jobs-invariant" `Quick
          test_table1_jobs_invariant;
        Alcotest.test_case "table2 cell: jobs-invariant" `Quick
          test_table2_jobs_invariant;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagates;
        Alcotest.test_case "empty and singleton" `Quick test_empty_and_single;
        qt "map preserves order" gen_map_case prop_map_order;
        qt "run preserves order" gen_map_case prop_run_order;
        Alcotest.test_case "shutdown" `Quick (fun () -> Pool.shutdown ());
      ] );
  ]
