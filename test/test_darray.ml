let mk ?(scheme = Distribution.Block) gsize pgrid init =
  let dist = Distribution.create ~gsize ~pgrid scheme in
  Darray.make ~gsize ~dist ~distr:Darray.Default
    ~elem_bytes:Calibration.elem_bytes init

let test_init_values () =
  let a = mk [| 6; 4 |] [| 3; 1 |] (fun ix -> (10 * ix.(0)) + ix.(1)) in
  for i = 0 to 5 do
    for j = 0 to 3 do
      Alcotest.(check int) "peek" ((10 * i) + j) (Darray.peek a [| i; j |])
    done
  done

let test_init_index_copies () =
  (* the index passed to init is a scratch buffer (no allocation per
     element): retaining it requires an explicit copy *)
  let kept = ref [] in
  let _ =
    mk [| 4 |] [| 2 |] (fun ix ->
        kept := Array.copy ix :: !kept;
        0)
  in
  let sorted = List.sort compare (List.map (fun ix -> ix.(0)) !kept) in
  Alcotest.(check (list int)) "all indices seen" [ 0; 1; 2; 3 ] sorted

let test_get_set_local () =
  let a = mk [| 8 |] [| 4 |] (fun ix -> ix.(0)) in
  Darray.set a ~rank:2 [| 5 |] 55;
  Alcotest.(check int) "set/get" 55 (Darray.get a ~rank:2 [| 5 |])

let test_local_access_violation () =
  let a = mk [| 8 |] [| 4 |] (fun ix -> ix.(0)) in
  (match Darray.get a ~rank:0 [| 5 |] with
   | _ -> Alcotest.fail "expected violation"
   | exception Darray.Local_access_violation { rank = 0; index = [| 5 |] } ->
       ()
   | exception Darray.Local_access_violation _ ->
       Alcotest.fail "wrong violation payload");
  match Darray.set a ~rank:3 [| 0 |] 9 with
  | () -> Alcotest.fail "expected violation"
  | exception Darray.Local_access_violation _ -> ()

let test_bounds () =
  let a = mk [| 10; 3 |] [| 2; 1 |] (fun _ -> 0) in
  let b = Darray.bounds a ~rank:1 in
  Alcotest.(check (array int)) "lower" [| 5; 0 |] b.Index.lower;
  Alcotest.(check (array int)) "upper" [| 10; 3 |] b.Index.upper

let test_bounds_cyclic_rejected () =
  let a = mk ~scheme:Distribution.Cyclic [| 6; 2 |] [| 2; 1 |] (fun _ -> 0) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Darray.bounds a ~rank:0);
       false
     with Invalid_argument _ -> true)

let test_use_after_destroy () =
  let a = mk [| 4 |] [| 2 |] (fun ix -> ix.(0)) in
  Darray.mark_destroyed a;
  Alcotest.check_raises "peek" Darray.Use_after_destroy (fun () ->
      ignore (Darray.peek a [| 0 |]))

let test_to_flat () =
  let a = mk [| 3; 3 |] [| 3; 1 |] (fun ix -> (3 * ix.(0)) + ix.(1)) in
  Alcotest.(check (array int))
    "row major"
    (Array.init 9 Fun.id)
    (Darray.to_flat a)

let test_to_flat_torus_layout () =
  let gsize = [| 4; 4 |] in
  let dist = Distribution.create ~gsize ~pgrid:[| 2; 2 |] Distribution.Block in
  let a =
    Darray.make ~gsize ~dist ~distr:Darray.Torus2d ~elem_bytes:4 (fun ix ->
        (4 * ix.(0)) + ix.(1))
  in
  Alcotest.(check (array int))
    "row major across blocks"
    (Array.init 16 Fun.id)
    (Darray.to_flat a)

let test_row () =
  let a = mk [| 4; 3 |] [| 2; 1 |] (fun ix -> (10 * ix.(0)) + ix.(1)) in
  Alcotest.(check (array int)) "row 2" [| 20; 21; 22 |] (Darray.row a 2)

let test_row_cyclic () =
  let a =
    mk ~scheme:Distribution.Cyclic [| 5; 2 |] [| 2; 1 |] (fun ix ->
        (10 * ix.(0)) + ix.(1))
  in
  Alcotest.(check (array int)) "row 3" [| 30; 31 |] (Darray.row a 3)

(* to_flat/row are blit-based (one Array.blit per contiguous run); pin
   their output to the element-at-a-time reference the old implementation
   used, across every scheme and some non-dividing / column-split /
   higher-dimensional layouts *)
let peek_flat a =
  let n = Index.volume (Darray.gsize a) in
  if n = 0 then [||]
  else begin
    let gsize = Darray.gsize a in
    let b =
      { Index.lower = Array.make (Darray.dim a) 0; upper = Array.copy gsize }
    in
    let out = Array.make n 0 in
    let pos = ref 0 in
    Index.iter b (fun ix ->
        out.(!pos) <- Darray.peek a ix;
        incr pos);
    out
  end

let test_to_flat_matches_reference () =
  let layouts =
    [
      (Distribution.Block, [| 6; 4 |], [| 3; 1 |]);
      (Distribution.Block, [| 7; 5 |], [| 2; 2 |]);
      (* column split: a global row spans several partitions *)
      (Distribution.Block, [| 4; 9 |], [| 1; 4 |]);
      (Distribution.Block, [| 8 |], [| 3 |]);
      (Distribution.Block, [| 3; 4; 5 |], [| 2; 1; 2 |]);
      (Distribution.Cyclic, [| 9; 3 |], [| 4; 1 |]);
      (Distribution.Block_cyclic 2, [| 11; 3 |], [| 3; 1 |]);
    ]
  in
  List.iter
    (fun (scheme, gsize, pgrid) ->
      let seq = ref 0 in
      let a =
        mk ~scheme gsize pgrid (fun _ ->
            incr seq;
            !seq * 7)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "flat %s" (String.concat "x"
           (Array.to_list (Array.map string_of_int gsize))))
        (peek_flat a) (Darray.to_flat a))
    layouts

let test_row_matches_reference () =
  let layouts =
    [
      (Distribution.Block, [| 6; 4 |], [| 3; 1 |]);
      (Distribution.Block, [| 4; 9 |], [| 1; 4 |]);
      (Distribution.Block, [| 7; 5 |], [| 2; 2 |]);
      (Distribution.Cyclic, [| 9; 3 |], [| 4; 1 |]);
      (Distribution.Block_cyclic 2, [| 11; 3 |], [| 3; 1 |]);
    ]
  in
  List.iter
    (fun (scheme, gsize, pgrid) ->
      let a = mk ~scheme gsize pgrid (fun ix -> (100 * ix.(0)) + ix.(1)) in
      for r = 0 to gsize.(0) - 1 do
        Alcotest.(check (array int))
          (Printf.sprintf "row %d" r)
          (Array.init gsize.(1) (fun c -> Darray.peek a [| r; c |]))
          (Darray.row a r)
      done)
    layouts

let test_row_out_of_range () =
  let a = mk [| 4; 3 |] [| 2; 1 |] (fun _ -> 0) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "raises" true
        (try
           ignore (Darray.row a r);
           false
         with Invalid_argument _ -> true))
    [ -1; 4 ]

let test_owner_matches_distribution () =
  let a = mk [| 9; 9 |] [| 3; 3 |] (fun _ -> 0) in
  let b =
    { Index.lower = [| 0; 0 |]; upper = [| 9; 9 |] }
  in
  Index.iter b (fun ix ->
      let o = Darray.owner a ix in
      Alcotest.(check int) "get via owner" 0 (Darray.get a ~rank:o ix))

let suite =
  [
    ( "darray",
      [
        Alcotest.test_case "init values" `Quick test_init_values;
        Alcotest.test_case "init index copies" `Quick test_init_index_copies;
        Alcotest.test_case "get/set local" `Quick test_get_set_local;
        Alcotest.test_case "locality enforced" `Quick
          test_local_access_violation;
        Alcotest.test_case "bounds" `Quick test_bounds;
        Alcotest.test_case "cyclic bounds rejected" `Quick
          test_bounds_cyclic_rejected;
        Alcotest.test_case "use after destroy" `Quick test_use_after_destroy;
        Alcotest.test_case "to_flat" `Quick test_to_flat;
        Alcotest.test_case "to_flat torus" `Quick test_to_flat_torus_layout;
        Alcotest.test_case "row" `Quick test_row;
        Alcotest.test_case "row cyclic" `Quick test_row_cyclic;
        Alcotest.test_case "to_flat matches reference" `Quick
          test_to_flat_matches_reference;
        Alcotest.test_case "row matches reference" `Quick
          test_row_matches_reference;
        Alcotest.test_case "row out of range" `Quick test_row_out_of_range;
        Alcotest.test_case "owner" `Quick test_owner_matches_distribution;
      ] );
  ]
