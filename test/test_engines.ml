(* Differential tests between the two execution engines: the compiled
   engine (Compile, translation to closures) must be bit-identical to the
   reference tree-walking interpreter — same printed output per processor,
   same return values, same simulated makespan, same Stats counters, same
   structured trace. *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let examples_dir () =
  List.find_opt Sys.file_exists
    [ "../examples/skil"; "examples/skil"; "../../../examples/skil" ]

let source name =
  match examples_dir () with
  | Some d -> read (Filename.concat d name)
  | None -> Alcotest.failf "cannot find examples/skil"

(* entry point, arguments and topology for every shipped example *)
let corpus =
  [
    ("quicksort.skil", "main", [], `Mesh (2, 2));
    ("shpaths.skil", "shpaths", [ Value.VInt 8 ], `Torus (2, 2));
    ("gauss.skil", "gauss", [ Value.VInt 8 ], `Mesh (2, 1));
    ("matmul.skil", "matmul", [ Value.VInt 8 ], `Torus (2, 2));
    ("threshold.skil", "main", [ Value.VInt 8 ], `Mesh (2, 1));
    ("jacobi.skil", "jacobi", [ Value.VInt 16 ], `Mesh (2, 2));
  ]

let topology = function
  | `Mesh (w, h) -> Topology.mesh ~width:w ~height:h
  | `Torus (w, h) -> Topology.torus2d ~width:w ~height:h ()

let exact = Alcotest.float 0.0

let check_identical name ra rc =
  let nprocs = Array.length ra.Machine.values in
  Alcotest.(check int)
    (name ^ " nprocs") nprocs
    (Array.length rc.Machine.values);
  for i = 0 to nprocs - 1 do
    let oa = ra.Machine.values.(i) and oc = rc.Machine.values.(i) in
    Alcotest.(check string)
      (Printf.sprintf "%s printed[%d]" name i)
      oa.Spmd.printed oc.Spmd.printed;
    Alcotest.(check string)
      (Printf.sprintf "%s value[%d]" name i)
      (Value.describe oa.Spmd.value)
      (Value.describe oc.Spmd.value)
  done;
  Alcotest.check exact (name ^ " makespan") ra.Machine.time rc.Machine.time;
  let sa = ra.Machine.stats and sc = rc.Machine.stats in
  Alcotest.check exact
    (name ^ " stats makespan")
    sa.Stats.makespan sc.Stats.makespan;
  Array.iteri
    (fun i pa ->
      let pc = Stats.proc sc i in
      let f fld a b =
        Alcotest.check exact (Printf.sprintf "%s %s[%d]" name fld i) a b
      in
      let g fld a b =
        Alcotest.(check int) (Printf.sprintf "%s %s[%d]" name fld i) a b
      in
      f "compute" pa.Stats.compute_time pc.Stats.compute_time;
      f "wait" pa.Stats.comm_wait pc.Stats.comm_wait;
      f "overhead" pa.Stats.overhead_time pc.Stats.overhead_time;
      g "msgs" pa.Stats.msgs_sent pc.Stats.msgs_sent;
      g "bytes" pa.Stats.bytes_sent pc.Stats.bytes_sent;
      g "hop_bytes" pa.Stats.hop_bytes pc.Stats.hop_bytes;
      g "skeleton_calls" pa.Stats.skeleton_calls pc.Stats.skeleton_calls)
    sa.Stats.procs;
  Alcotest.(check string)
    (name ^ " trace")
    (Profile.chrome_json ra.Machine.trace ~nprocs)
    (Profile.chrome_json rc.Machine.trace ~nprocs)

(* three-way: the reference interpreter, the compiled engine with payload
   specialisation (the default), and the compiled engine with every array
   element kept boxed (--no-specialize) must all agree bit-for-bit *)
let run_both ?cost ?(instantiate = true) ~topology src ~entry ~args name =
  let go ?(specialize = true) engine =
    Spmd.run_source ?cost ~instantiate ~engine ~specialize ~trace:true
      ~topology src ~entry ~args
  in
  let ra = go `Ast in
  check_identical name ra (go `Compiled);
  check_identical (name ^ " (no-specialize)") ra
    (go ~specialize:false `Compiled)

let test_corpus_equivalence () =
  List.iter
    (fun (file, entry, args, topo) ->
      let src = source file in
      run_both ~topology:(topology topo) src ~entry ~args file;
      (* the higher-order source, without translation by instantiation *)
      run_both ~instantiate:false ~topology:(topology topo) src ~entry ~args
        (file ^ " (no-instantiate)"))
    corpus

(* every shipped example must be covered by the differential harness *)
let test_corpus_is_exhaustive () =
  match examples_dir () with
  | None -> Alcotest.fail "cannot find examples/skil"
  | Some d ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".skil" then
            Alcotest.(check bool)
              (f ^ " has an engine-equivalence entry")
              true
              (List.exists (fun (n, _, _, _) -> n = f) corpus))
        (Sys.readdir d)

let test_cost_profiles_equivalence () =
  let src = source "gauss.skil" in
  List.iter
    (fun profile ->
      run_both
        ~cost:(Cost_model.make profile)
        ~topology:(Topology.mesh ~width:2 ~height:1)
        src ~entry:"gauss" ~args:[ Value.VInt 8 ]
        ("gauss " ^ profile.Cost_model.profile_name))
    [ Cost_model.parix_c; Cost_model.dpfl ]

(* ---------------- satellite regressions ---------------- *)

let test_pointer_comparison_semantics () =
  let p = Value.VPtr (ref (Value.VInt 1)) in
  let q = Value.VPtr (ref (Value.VInt 1)) in
  (* equality is physical; NULL only equals NULL *)
  Alcotest.(check bool) "p == p" true (Interp.equal_values p p);
  Alcotest.(check bool) "p == q" false (Interp.equal_values p q);
  Alcotest.(check bool) "NULL == NULL" true
    (Interp.equal_values Value.VNull Value.VNull);
  Alcotest.(check bool) "p == NULL" false (Interp.equal_values p Value.VNull);
  Alcotest.(check bool) "binop !=" true
    (Interp.binop "!=" p q = Value.VInt 1);
  (* ordered comparison of pointers is a runtime error, not an arbitrary
     answer (the old code returned 1 for both p < q and q < p) *)
  List.iter
    (fun op ->
      List.iter
        (fun (a, b) ->
          match Interp.binop op a b with
          | v ->
              Alcotest.failf "%s on pointers answered %s" op
                (Value.describe v)
          | exception Value.Skil_runtime_error _ -> ())
        [ (p, q); (p, Value.VNull); (Value.VNull, q) ])
    [ "<"; ">"; "<="; ">=" ]

let add3_src =
  {|
    int add3(int a, int b, int c) { return a + b + c; }
    int main() { return 0; }
  |}

let engines_of src =
  let program = Parser.parse src in
  let tyenv = Typecheck.check program in
  let st = Interp.make ~tyenv program in
  let compiled = Compile.program ~tyenv program in
  (st, compiled)

let test_over_application () =
  let st, compiled = engines_of add3_src in
  let f = Value.VFun { Value.fv_target = `User "add3"; fv_applied = [] } in
  let via_interp =
    Interp.apply st (Interp.apply st f [ Value.VInt 1 ])
      [ Value.VInt 2; Value.VInt 3 ]
  in
  let via_compiled =
    Compile.apply compiled st
      (Compile.apply compiled st f [ Value.VInt 1 ])
      [ Value.VInt 2; Value.VInt 3 ]
  in
  Alcotest.(check bool) "interp" true (via_interp = Value.VInt 6);
  Alcotest.(check bool) "compiled" true (via_compiled = Value.VInt 6);
  (* surplus arguments past a non-function result are an error in both *)
  List.iter
    (fun apply ->
      match apply f [ Value.VInt 1; Value.VInt 2; Value.VInt 3;
                      Value.VInt 4 ] with
      | v -> Alcotest.failf "over-application answered %s" (Value.describe v)
      | exception Value.Skil_runtime_error _ -> ())
    [ Interp.apply st; Compile.apply compiled st ]

let test_split_at () =
  Alcotest.(check (pair (list int) (list int)))
    "middle" ([ 1; 2 ], [ 3; 4 ]) (Interp.split_at 2 [ 1; 2; 3; 4 ]);
  Alcotest.(check (pair (list int) (list int)))
    "all" ([ 1; 2 ], []) (Interp.split_at 5 [ 1; 2 ]);
  Alcotest.(check (pair (list int) (list int)))
    "none" ([], [ 1 ]) (Interp.split_at 0 [ 1 ])

let suite =
  [
    ( "engines",
      [
        Alcotest.test_case "corpus both engines" `Quick
          test_corpus_equivalence;
        Alcotest.test_case "corpus exhaustive" `Quick
          test_corpus_is_exhaustive;
        Alcotest.test_case "cost profiles both engines" `Quick
          test_cost_profiles_equivalence;
        Alcotest.test_case "pointer comparison" `Quick
          test_pointer_comparison_semantics;
        Alcotest.test_case "over-application" `Quick test_over_application;
        Alcotest.test_case "split_at" `Quick test_split_at;
      ] );
  ]
