(* The skeleton-fusion optimizer (Optimize, --optimize fuse) must be
   unobservable in values: for every program the fused run prints the
   same bytes and returns the same values as the unoptimized one, on
   both engines, while charging no more (and on the apps with fusable
   pipelines strictly fewer) simulated operations.  --optimize none must
   remain byte-identical to a build without the pass: same output, same
   makespan, same Stats, same chrome trace.

   Also here: the frontend bugfix sweep regressions — purity analysis
   refusing to fuse an impure argument function, and line/column
   positions on lexer, parser and typechecker diagnostics. *)

let qt ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:(fun s -> s) gen prop)

let run ?(engine = `Compiled) ~optimize (file, entry, args, topo) =
  Spmd.run_source ~engine ~optimize ~trace:true
    ~topology:(Test_engines.topology topo)
    (Test_engines.source file) ~entry ~args

(* total charged operations across all profile spans *)
let ops_total r =
  let nprocs = Array.length r.Machine.values in
  let p =
    Profile.of_trace r.Machine.trace ~nprocs ~makespan:r.Machine.time
  in
  List.fold_left
    (fun acc s ->
      acc + s.Profile.ops_kernel + s.Profile.ops_mapped + s.Profile.ops_scalar)
    0 p.Profile.spans

let check_values name ra rb =
  let nprocs = Array.length ra.Machine.values in
  Alcotest.(check int)
    (name ^ " nprocs") nprocs
    (Array.length rb.Machine.values);
  for i = 0 to nprocs - 1 do
    let oa = ra.Machine.values.(i) and ob = rb.Machine.values.(i) in
    Alcotest.(check string)
      (Printf.sprintf "%s printed[%d]" name i)
      oa.Spmd.printed ob.Spmd.printed;
    Alcotest.(check string)
      (Printf.sprintf "%s value[%d]" name i)
      (Value.describe oa.Spmd.value)
      (Value.describe ob.Spmd.value)
  done

(* apps where ISSUE requires the fused run to charge strictly fewer ops *)
let must_improve = [ "gauss.skil"; "matmul.skil"; "jacobi.skil" ]

(* Three ways over the whole corpus: reference interpreter, compiled
   engine, compiled engine with fusion.  none = byte-identical
   (including the chrome trace); fuse = value-identical on both engines
   and never charged more. *)
let test_corpus_three_way () =
  List.iter
    (fun ((file, _, _, _) as c) ->
      let ast = run ~engine:`Ast ~optimize:`None c in
      let comp = run ~optimize:`None c in
      (* check_identical compares printed/value/makespan/Stats and does a
         byte-diff of the chrome-trace JSON *)
      Test_engines.check_identical (file ^ " none") ast comp;
      let fuse = run ~optimize:`Fuse c in
      check_values (file ^ " fuse vs none") ast fuse;
      (* the fused program itself must still be engine-identical *)
      Test_engines.check_identical
        (file ^ " fuse engines")
        (run ~engine:`Ast ~optimize:`Fuse c)
        fuse;
      let o_none = ops_total comp and o_fuse = ops_total fuse in
      if o_fuse > o_none then
        Alcotest.failf "%s: fuse charged %d ops, none charged %d" file o_fuse
          o_none;
      if List.mem file must_improve && o_fuse >= o_none then
        Alcotest.failf "%s: fuse must charge strictly fewer ops (%d vs %d)"
          file o_fuse o_none)
    Test_engines.corpus

(* ---------------- random programs: fusion is unobservable ------------- *)

open QCheck2.Gen

(* Random monomorphic skeleton programs with nested map chains (both the
   in-place c = b shape and through a dead intermediate), a counted loop
   around a map, and a map feeding a fold — the shapes the optimizer
   rewrites — plus constant and index-dependent initialisers so the
   create-const folding sometimes fires and sometimes must not. *)
let gen_fusable =
  oneofl [ Test_specialize.I; Test_specialize.F ] >>= fun ty ->
  let tname = match ty with Test_specialize.I -> "int" | _ -> "float" in
  int_range 4 8 >>= fun n ->
  int_range 1 3 >>= fun iters ->
  bool >>= fun const_init ->
  bool >>= fun inplace ->
  let ix0 = match ty with
    | Test_specialize.I -> "ix[0]"
    | _ -> "itof(ix[0])"
  in
  Test_specialize.expr ty 2 [ ix0 ] >>= fun init_e ->
  Test_specialize.lit ty >>= fun const_e ->
  Test_specialize.expr ty 2 [ "c"; "elem"; ix0 ] >>= fun f_e ->
  Test_specialize.expr ty 2 [ "elem" ] >>= fun g_e ->
  Test_specialize.expr ty 1 [ "elem" ] >>= fun conv_e ->
  oneofl [ "a + b"; "min(a, b)"; "max(a, b)" ] >>= fun merge_e ->
  Test_specialize.lit ty >|= fun cval ->
  let init_body = if const_init then const_e else init_e in
  let chain =
    if inplace then
      (* map o map fused in place: no liveness argument needed *)
      Printf.sprintf
        "    array_map(f(%s), a, b);\n    array_map(g, b, b);" cval
    else
      (* through t, which dies right after: fused once t is provably dead *)
      Printf.sprintf
        "    array_map(f(%s), a, t);\n    array_map(g, t, b);" cval
  in
  Printf.sprintf
    {|
%s init(Index ix) { return %s; }
%s f(%s c, %s elem, Index ix) { return %s; }
%s g(%s elem, Index ix) { return %s; }
%s conv(%s elem, Index ix) { return %s; }
%s merge(%s a, %s b) { return %s; }
void main() {
  array<%s> a;
  array<%s> b;
  array<%s> t;
  a = array_create(1, {%d}, {0}, {-1}, init, DISTR_DEFAULT);
  b = array_create(1, {%d}, {0}, {-1}, init, DISTR_DEFAULT);
  t = array_create(1, {%d}, {0}, {-1}, init, DISTR_DEFAULT);
  for (int it = 0; it < (%d + 1); it++) {
%s
  }
  array<%s> fr = array_create(1, {%d}, {0}, {-1}, init, DISTR_DEFAULT);
  array_map(g, b, fr);
  %s r = array_fold(conv, merge, fr);
  print_%s(r);
  array_destroy(fr);
  array_destroy(t);
  array_destroy(b);
  array_destroy(a);
}
|}
    tname init_body tname tname tname f_e tname tname g_e tname tname
    conv_e tname tname tname merge_e tname tname tname n n n iters chain
    tname n tname tname

let observe src ~engine ~optimize =
  let r =
    Spmd.run_source ~engine ~optimize ~trace:true
      ~topology:(Topology.mesh ~width:2 ~height:2)
      src ~entry:"main" ~args:[]
  in
  ( Array.map (fun o -> o.Spmd.printed) r.Machine.values,
    Array.map (fun o -> Value.describe o.Spmd.value) r.Machine.values )

let prop_fusion_unobservable src =
  let a = observe src ~engine:`Ast ~optimize:`None in
  let f = observe src ~engine:`Compiled ~optimize:`Fuse in
  let fa = observe src ~engine:`Ast ~optimize:`Fuse in
  a = f && a = fa

(* the specialize generator's flat programs must also survive fusion *)
let prop_specialize_corpus_unobservable src =
  let a = observe src ~engine:`Ast ~optimize:`None in
  let f = observe src ~engine:`Compiled ~optimize:`Fuse in
  a = f

(* ---------------- purity: impure argument functions refuse ------------ *)

(* bump mutates state captured through its lifted pointer parameter, so
   fusing it with the following map would change how many times the cell
   is bumped per element.  The effect analysis must classify it Impure
   and leave the pipeline alone: fuse is byte-identical to none and the
   optimizer synthesizes no functions. *)
let impure_src =
  {|
float bump(float * acc, float v, Index ix) {
  *acc = *acc + v;
  return v + *acc;
}
float twice(float v, Index ix) { return v + v; }
float conv(float v, Index ix) { return v; }
float addf(float a, float b) { return a + b; }
float init(Index ix) { return itof(ix[0]); }
void main() {
  array<float> a;
  float * acc = new(0.0);
  a = array_create(1, {8}, {0}, {-1}, init, DISTR_DEFAULT);
  array_map(bump(acc), a, a);
  array_map(twice, a, a);
  print_float(array_fold(conv, addf, a));
  print_float(*acc);
  array_destroy(a);
}
|}

let test_impure_refuses () =
  let run ~optimize =
    Spmd.run_source ~optimize ~trace:true
      ~topology:(Topology.mesh ~width:2 ~height:2)
      impure_src ~entry:"main" ~args:[]
  in
  (* byte-identical including makespan, stats and trace: nothing fired *)
  Test_engines.check_identical "impure fuse = none" (run ~optimize:`None)
    (run ~optimize:`Fuse);
  (* and structurally: the optimizer returns the program unchanged *)
  let prog = Parser.parse impure_src in
  let env = Typecheck.check prog in
  let inst = Instantiate.program env prog ~entries:[ "main" ] in
  let env = Typecheck.check inst in
  let opt = Optimize.program ~env inst in
  Alcotest.(check int)
    "no functions synthesized" (List.length inst) (List.length opt)

(* a pure pipeline of the same shape does fuse (sanity for the above).
   The outer function uses its element exactly once, so composition
   cannot duplicate work. *)
let pure_src =
  {|
float scale(float w, float v, Index ix) { return w * v; }
float shift(float v, Index ix) { return v + 1.0; }
float conv(float v, Index ix) { return v; }
float addf(float a, float b) { return a + b; }
float init(Index ix) { return itof(ix[0]); }
void main() {
  array<float> a;
  a = array_create(1, {8}, {0}, {-1}, init, DISTR_DEFAULT);
  array_map(scale(0.5), a, a);
  array_map(shift, a, a);
  print_float(array_fold(conv, addf, a));
  array_destroy(a);
}
|}

let test_pure_fuses () =
  let prog = Parser.parse pure_src in
  let env = Typecheck.check prog in
  let inst = Instantiate.program env prog ~entries:[ "main" ] in
  let env = Typecheck.check inst in
  let opt = Optimize.program ~env inst in
  Alcotest.(check bool)
    "fused functions synthesized" true
    (List.length opt > List.length inst)

(* ---------------- diagnostics carry line and column ------------------- *)

let test_diagnostic_positions () =
  (* parser: initialiser missing its expression *)
  (match Parser.parse "int main() {\n  int x = ;\n  return 0;\n}\n" with
  | _ -> Alcotest.fail "parsed a malformed initialiser"
  | exception Parser.Error { line; col; _ } ->
      Alcotest.(check (pair int int)) "parse pos" (2, 11) (line, col));
  (* lexer: a character outside the language *)
  (match
     Parser.parse
       "float f(Index ix) { return 1.0; }\nvoid main() {\n  int y = 3 @ 4;\n}\n"
   with
  | _ -> Alcotest.fail "lexed '@'"
  | exception Lexer.Error { line; col; _ } ->
      Alcotest.(check (pair int int)) "lex pos" (3, 13) (line, col));
  (* typechecker: unbound identifier *)
  (match
     Typecheck.check
       (Parser.parse
          "int main() {\n  int x = 1;\n  return undefined_name + x;\n}\n")
   with
  | _ -> Alcotest.fail "typechecked an unbound identifier"
  | exception Typecheck.Type_error { line; col; _ } ->
      Alcotest.(check (pair int int)) "type pos" (3, 10) (line, col));
  (* parser: unclosed block at end of input *)
  match Parser.parse "void main() {\n  int x = 1;\n" with
  | _ -> Alcotest.fail "parsed an unclosed block"
  | exception Parser.Error { line; col; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "eof pos %d:%d is positioned" line col)
        true
        (line >= 2 && col >= 1)

(* --optimize fuse without the instantiation pass is a clear error, not a
   silent fallback: the optimizer only understands first-order sites *)
let test_fuse_requires_instantiate () =
  match
    Spmd.run_source ~instantiate:false ~optimize:`Fuse
      ~topology:(Topology.mesh ~width:2 ~height:1)
      pure_src ~entry:"main" ~args:[]
  with
  | _ -> Alcotest.fail "ran fuse without instantiation"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "optimize",
      [
        Alcotest.test_case "corpus three-way, ops never worse" `Quick
          test_corpus_three_way;
        qt "random fusable programs: fuse unobservable" gen_fusable
          prop_fusion_unobservable;
        qt ~count:30 "specialize generator programs: fuse unobservable"
          Test_specialize.gen_program prop_specialize_corpus_unobservable;
        Alcotest.test_case "impure argument function refuses" `Quick
          test_impure_refuses;
        Alcotest.test_case "pure pipeline fuses" `Quick test_pure_fuses;
        Alcotest.test_case "diagnostics carry line:col" `Quick
          test_diagnostic_positions;
        Alcotest.test_case "fuse requires instantiation" `Quick
          test_fuse_requires_instantiate;
      ] );
  ]
