(* The skild service contract, tested in-process through a loopback
   client: crash isolation (no job input kills the service), exactly-once
   replies, run-par byte-equivalence (including through the compiled-
   program cache — a QCheck property over random programs), deadline
   expiry, queue-full shedding, mid-job disconnect, graceful drain, and
   the wire protocol's round-trips. *)

let qt ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:(fun s -> s) gen prop)

(* ------------------------------------------------------------------ *)
(* Loopback harness: a Service plus one attached client whose replies
   land in a polled queue.  Every test builds a fresh harness and shuts
   it down, so services never leak Pool sources into later suites. *)

type harness = {
  svc : Service.t;
  cl : Service.client;
  mx : Mutex.t;
  inbox : string Queue.t;
}

let harness ?(config = Service.default_config) () =
  let mx = Mutex.create () in
  let inbox = Queue.create () in
  let svc = Service.create ~config () in
  let write line =
    Mutex.lock mx;
    Queue.add line inbox;
    Mutex.unlock mx
  in
  let cl = Service.attach svc ~write in
  { svc; cl; mx; inbox }

let recv ?(timeout = 60.) h =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    Mutex.lock h.mx;
    let r = if Queue.is_empty h.inbox then None else Some (Queue.pop h.inbox) in
    Mutex.unlock h.mx;
    match r with
    | Some line -> line
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "no reply within timeout";
        Thread.delay 0.002;
        go ()
  in
  go ()

let reply h =
  match Proto.parse_reply (recv h) with
  | Ok r -> r
  | Error m -> Alcotest.failf "unparseable reply: %s" m

let submit ?(spec = Jobspec.default) h source =
  Service.submit h.svc h.cl ~spec ~source

(* (id, cache_hit, value, output) of an OK reply *)
let expect_ok h =
  match reply h with
  | Proto.Ok_reply { id; cache_hit; value; output; _ } ->
      (id, cache_hit, value, output)
  | Proto.Err_reply { cls; msg; _ } ->
      Alcotest.failf "expected OK, got ERR class=%s: %s" (Errclass.name cls)
        msg

(* (id, msg) of an ERR reply whose class must be [want] *)
let expect_err h want =
  match reply h with
  | Proto.Err_reply { id; cls; msg } ->
      Alcotest.(check string)
        "error class" (Errclass.name want) (Errclass.name cls);
      (id, msg)
  | Proto.Ok_reply { id; _ } ->
      Alcotest.failf "expected ERR class=%s, got OK id=%s" (Errclass.name want)
        id

(* ------------------------------------------------------------------ *)
(* Job corpus (mirrors bin/skilbench.ml)                               *)

let par_src =
  "int conv(int v, Index ix) { return v; }\n\
   int sq(int v, Index ix) { return v * v; }\n\
   int addi(int a, int b) { return a + b; }\n\
   int init(Index ix) { return ix[0] + 1; }\n\
   int main() {\n\
  \  array<int> a;\n\
  \  a = array_create(1, {64}, {0}, {-1}, init, DISTR_DEFAULT);\n\
  \  array_map(sq, a, a);\n\
  \  print_int(array_fold(conv, addi, a));\n\
  \  array_destroy(a);\n\
  \  return 0;\n\
   }\n"

let loop_src =
  "int main(int n) {\n\
  \  int i;\n\
  \  int s;\n\
  \  s = 0;\n\
  \  for (i = 0; i < n; i = i + 1) { s = s + i % 7; }\n\
  \  return s;\n\
   }\n"

let type_err_src = "int main() { return \"not an int\"; }\n"

(* What the service's OK reply must carry for [spec]/[source], computed by
   a direct in-process run — the run-par equivalence oracle. *)
let direct_run (spec : Jobspec.t) source =
  let r =
    Spmd.run_source ~engine:spec.Jobspec.engine ~specialize:spec.specialize
      ~instantiate:spec.instantiate ~optimize:spec.optimize
      ~collectives:spec.collectives
      ~cost:(Cost_model.make spec.profile)
      ~topology:(Jobspec.topology spec) source ~entry:spec.entry
      ~args:(List.map (fun n -> Value.VInt n) spec.args)
  in
  let b = Buffer.create 256 in
  Array.iteri
    (fun i (o : Spmd.outcome) ->
      if o.Spmd.printed <> "" then
        Buffer.add_string b (Printf.sprintf "[proc %d] %s\n" i o.Spmd.printed))
    r.Machine.values;
  (Value.describe r.Machine.values.(0).Spmd.value, Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)

let test_runpar_equivalence () =
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      let spec = { Jobspec.default with Jobspec.id = "eq" } in
      submit ~spec h par_src;
      let id, hit, got_value, got_output = expect_ok h in
      let value, output = direct_run spec par_src in
      Alcotest.(check string) "id echoed" "eq" id;
      Alcotest.(check bool) "first run is a cache miss" false hit;
      Alcotest.(check string) "value" value got_value;
      Alcotest.(check string) "output byte-identical" output got_output)

let gen_cache_program =
  (* small total programs: int fold over a mapped array, randomised in
     size and arithmetic — every one must survive the cache round-trip *)
  let open QCheck2.Gen in
  int_range 2 9 >>= fun n ->
  int_range 1 5 >>= fun c ->
  oneofl [ "+"; "*" ] >>= fun op ->
  oneofl [ "a + b"; "min(a, b)"; "max(a, b)" ] >|= fun merge ->
  Printf.sprintf
    "int conv(int v, Index ix) { return v; }\n\
     int f(int v, Index ix) { return (v %s %d); }\n\
     int merge(int a, int b) { return %s; }\n\
     int init(Index ix) { return ix[0] + 1; }\n\
     int main() {\n\
    \  array<int> a;\n\
    \  a = array_create(1, {%d}, {0}, {-1}, init, DISTR_DEFAULT);\n\
    \  array_map(f, a, a);\n\
    \  print_int(array_fold(conv, merge, a));\n\
    \  array_destroy(a);\n\
    \  return 0;\n\
     }\n"
    op c merge n

let prop_cache_hit_identical src =
  (* a cache-hit run is byte-identical to the fresh compile-and-run of
     the same job, and both match a direct in-process run *)
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      submit ~spec:{ Jobspec.default with Jobspec.id = "cold" } h src;
      let _, cold_hit, cold_value, cold_output = expect_ok h in
      submit ~spec:{ Jobspec.default with Jobspec.id = "hot" } h src;
      let _, hot_hit, hot_value, hot_output = expect_ok h in
      let value, output = direct_run Jobspec.default src in
      (not cold_hit) && hot_hit
      && cold_value = value
      && hot_value = value
      && cold_output = output
      && hot_output = output)

let test_error_classes_and_diagnostics () =
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      (* the client-chosen file name prefixes the position verbatim *)
      submit
        ~spec:{ Jobspec.default with Jobspec.id = "t"; file = "myjob.skil" }
        h type_err_src;
      let _, msg = expect_err h Errclass.Type_err in
      if not (String.length msg > 11 && String.sub msg 0 11 = "myjob.skil:")
      then Alcotest.failf "diagnostic lost its file:line:col prefix: %s" msg;
      submit ~spec:{ Jobspec.default with Jobspec.id = "s" } h
        "int main( { return 0; }\n";
      ignore (expect_err h Errclass.Syntax);
      submit
        ~spec:{ Jobspec.default with Jobspec.id = "r"; width = 1; height = 1 }
        h "int main() { return 1 / 0; }\n";
      ignore (expect_err h Errclass.Runtime);
      (* and the service is still alive for real work after all of that *)
      submit ~spec:{ Jobspec.default with Jobspec.id = "ok" } h par_src;
      ignore (expect_ok h))

let test_stall_classified () =
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      submit
        ~spec:
          { Jobspec.default with Jobspec.id = "st"; faults = Some "drop=1.0" }
        h par_src;
      ignore (expect_err h Errclass.Stall))

let test_deadline_expiry_then_liveness () =
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      submit
        ~spec:
          {
            Jobspec.default with
            Jobspec.id = "doom";
            args = [ 1000000000 ];
            width = 1;
            height = 1;
            deadline_ms = Some 30;
          }
        h loop_src;
      let doom_id, _ = expect_err h Errclass.Deadline in
      Alcotest.(check string) "doomed id" "doom" doom_id;
      (* the worker the doomed job occupied is free again *)
      submit ~spec:{ Jobspec.default with Jobspec.id = "after" } h par_src;
      let after_id, _, _, _ = expect_ok h in
      Alcotest.(check string) "alive after reap" "after" after_id;
      let s = Service.stats h.svc in
      Alcotest.(check bool) "watchdog reaped it" true (s.Service.reaped >= 1))

let test_queue_full_shed_exactly_once () =
  let config =
    { Service.default_config with Service.workers = 1; queue_cap = 2 }
  in
  let h = harness ~config () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      (* one job that hogs the worker until its deadline, two that fill
         the queue, and a tail that must be shed at the door *)
      let n = 10 in
      submit
        ~spec:
          {
            Jobspec.default with
            Jobspec.id = "hog";
            args = [ 1000000000 ];
            width = 1;
            height = 1;
            deadline_ms = Some 300;
          }
        h loop_src;
      for i = 1 to n - 1 do
        submit
          ~spec:{ Jobspec.default with Jobspec.id = Printf.sprintf "j%d" i }
          h par_src
      done;
      let seen = Hashtbl.create 16 in
      let shed = ref 0 and ok = ref 0 and deadline = ref 0 in
      for _ = 1 to n do
        (match reply h with
        | Proto.Ok_reply { id; _ } ->
            incr ok;
            Hashtbl.replace seen id (1 + Option.value ~default:0 (Hashtbl.find_opt seen id))
        | Proto.Err_reply { id; cls; _ } ->
            (match cls with
            | Errclass.Overload -> incr shed
            | Errclass.Deadline -> incr deadline
            | c -> Alcotest.failf "unexpected class %s" (Errclass.name c));
            Hashtbl.replace seen id (1 + Option.value ~default:0 (Hashtbl.find_opt seen id)))
      done;
      Alcotest.(check int) "every submission answered once" n
        (Hashtbl.length seen);
      Hashtbl.iter
        (fun id k ->
          if k <> 1 then Alcotest.failf "id %s answered %d times" id k)
        seen;
      Alcotest.(check bool) "overload shedding happened" true (!shed >= 1);
      Alcotest.(check bool) "the hog hit its deadline" true (!deadline = 1);
      Alcotest.(check int) "the rest ran to OK" (n - 1 - !shed) !ok)

let test_disconnect_mid_job () =
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      submit
        ~spec:
          {
            Jobspec.default with
            Jobspec.id = "gone";
            args = [ 1000000000 ];
            width = 1;
            height = 1;
          }
        h loop_src;
      (* let it start, then vanish *)
      Thread.delay 0.05;
      Service.detach h.svc h.cl;
      Service.drain h.svc;
      let s = Service.stats h.svc in
      Alcotest.(check int) "accepted" 1 s.Service.accepted;
      Alcotest.(check int) "answered (into the void)" 1
        (s.Service.ok + s.Service.err);
      Alcotest.(check int) "reply was undeliverable" 1 s.Service.dropped;
      Alcotest.(check int) "nothing left running" 0 s.Service.running_now)

let test_drain_answers_then_rejects () =
  let h = harness () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      submit ~spec:{ Jobspec.default with Jobspec.id = "a" } h par_src;
      submit ~spec:{ Jobspec.default with Jobspec.id = "b" } h par_src;
      Service.drain h.svc;
      (* both accepted jobs were answered before drain returned *)
      ignore (expect_ok h);
      ignore (expect_ok h);
      submit ~spec:{ Jobspec.default with Jobspec.id = "late" } h par_src;
      let late_id, _ = expect_err h Errclass.Draining in
      Alcotest.(check string) "late id" "late" late_id;
      let s = Service.stats h.svc in
      Alcotest.(check int) "drain leaves nothing queued" 0 s.Service.queued_now;
      Alcotest.(check int) "drain leaves nothing running" 0
        s.Service.running_now;
      Alcotest.(check int) "drain leaves nothing delayed" 0
        s.Service.delayed_now)

let test_oversized_rejected () =
  let config = { Service.default_config with Service.max_src_bytes = 64 } in
  let h = harness ~config () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      submit ~spec:{ Jobspec.default with Jobspec.id = "big" } h
        (String.make 65 'x');
      let big_id, _ = expect_err h Errclass.Badreq in
      Alcotest.(check string) "oversized id" "big" big_id;
      (* a fitting job still goes through *)
      submit
        ~spec:
          { Jobspec.default with Jobspec.id = "fits"; width = 1; height = 1 }
        h "int main() { return 7; }\n";
      ignore (expect_ok h))

let test_native_token_contention () =
  (* with a single native token, concurrent native jobs must still all be
     answered OK — excess ones back off and retry rather than failing *)
  let config = { Service.default_config with Service.max_native = 1 } in
  let h = harness ~config () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown h.svc)
    (fun () ->
      for i = 1 to 3 do
        submit
          ~spec:
            {
              Jobspec.default with
              Jobspec.id = Printf.sprintf "n%d" i;
              engine = `Native;
            }
          h par_src
      done;
      for _ = 1 to 3 do
        ignore (expect_ok h)
      done;
      let s = Service.stats h.svc in
      Alcotest.(check int) "all answered" 3 (s.Service.ok + s.Service.err))

(* ------------------------------------------------------------------ *)
(* Wire protocol round-trips                                           *)

let gen_bytes = QCheck2.Gen.(string_size ~gen:char (int_range 0 64))

let prop_escape_roundtrip s = Proto.unescape (Proto.escape s) = Ok s

let test_reply_roundtrip () =
  let check r =
    match Proto.parse_reply (Proto.render_reply r) with
    | Ok r' when r = r' -> ()
    | Ok _ -> Alcotest.failf "reply round-trip changed %s" (Proto.render_reply r)
    | Error m -> Alcotest.failf "reply round-trip failed: %s" m
  in
  check
    (Proto.Ok_reply
       {
         id = "a b%c";
         cache_hit = true;
         engine = "compiled";
         ms = 1.25;
         value = "int 42";
         output = "[proc 0] 1\n[proc 1] 2\n";
       });
  check
    (Proto.Err_reply
       {
         id = "-";
         cls = Errclass.Stall;
         msg = "myjob.skil:3:1: stalled: 4 procs blocked\nproc 0: recv";
       })

let suite =
  [
    ( "service",
      [
        Alcotest.test_case "OK reply matches a direct run-par" `Quick
          test_runpar_equivalence;
        qt ~count:15 "cache-hit run byte-identical to fresh compile-and-run"
          gen_cache_program prop_cache_hit_identical;
        Alcotest.test_case "error classes + verbatim diagnostics" `Quick
          test_error_classes_and_diagnostics;
        Alcotest.test_case "total message loss classified as stall" `Quick
          test_stall_classified;
        Alcotest.test_case "deadline expiry, then the service lives on" `Quick
          test_deadline_expiry_then_liveness;
        Alcotest.test_case "queue-full shedding, every job answered once"
          `Quick test_queue_full_shed_exactly_once;
        Alcotest.test_case "client disconnect mid-job" `Quick
          test_disconnect_mid_job;
        Alcotest.test_case "drain answers the accepted, rejects the late"
          `Quick test_drain_answers_then_rejects;
        Alcotest.test_case "oversized source rejected at the door" `Quick
          test_oversized_rejected;
        Alcotest.test_case "native-token contention retries to OK" `Quick
          test_native_token_contention;
        qt ~count:200 "percent-escape round-trips all byte strings" gen_bytes
          prop_escape_roundtrip;
        Alcotest.test_case "reply lines round-trip" `Quick test_reply_roundtrip;
      ] );
  ]
