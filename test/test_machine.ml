let run ?cost ~procs f =
  Machine.run ?cost ~topology:(Topology.mesh ~width:procs ~height:1) f

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_scheduler_basic () =
  let s = Scheduler.create () in
  let log = ref [] in
  let note x = log := x :: !log in
  ignore (Scheduler.spawn s (fun () -> note "a"));
  ignore (Scheduler.spawn s (fun () -> note "b"));
  Scheduler.run s;
  Alcotest.(check (list string)) "fifo order" [ "a"; "b" ] (List.rev !log)

let test_scheduler_block_wake () =
  let s = Scheduler.create () in
  let log = ref [] in
  let note x = log := x :: !log in
  let id0 = ref (-1) in
  id0 :=
    Scheduler.spawn s (fun () ->
        note "start0";
        Scheduler.block s;
        note "resumed0");
  ignore
    (Scheduler.spawn s (fun () ->
         note "start1";
         Scheduler.wake s !id0;
         note "end1"));
  Scheduler.run s;
  Alcotest.(check (list string))
    "interleaving"
    [ "start0"; "start1"; "end1"; "resumed0" ]
    (List.rev !log)

(* The Ready-fiber invariant documented on [Scheduler.wake]: a fiber in
   [Ready] state is already queued (spawn enqueues atomically), so waking
   it again must be a no-op — a duplicate queue entry would dispatch the
   fiber's body twice. *)
let test_scheduler_wake_ready_runs_once () =
  let s = Scheduler.create () in
  let runs = ref 0 in
  let target = Scheduler.spawn s (fun () -> incr runs) in
  ignore (Scheduler.spawn s (fun () -> Scheduler.wake s target));
  (* the waker is spawned after the target but the queue is FIFO, so the
     wake call happens only after the target already ran; exercise the
     pre-run case too by waking from outside the scheduler *)
  Scheduler.wake s target;
  Scheduler.wake s target;
  Scheduler.run s;
  Alcotest.(check int) "body ran exactly once" 1 !runs

(* Waking a fiber that already terminated is dropped, not an error, and
   must not dispatch anything again. *)
let test_scheduler_wake_finished_noop () =
  let s = Scheduler.create () in
  let runs = ref 0 in
  let target = Scheduler.spawn s (fun () -> incr runs) in
  ignore
    (Scheduler.spawn s (fun () ->
         (* target is Finished by the time this fiber runs *)
         Scheduler.wake s target;
         Scheduler.wake s target));
  Scheduler.run s;
  Alcotest.(check int) "no re-dispatch" 1 !runs

(* Double-waking a suspended fiber: the first wake enqueues and flips
   nothing; once resumed and finished, the stale second entry finds the
   fiber [Finished] (or already [Running]) and is skipped by [run]. *)
let test_scheduler_double_wake_suspended () =
  let s = Scheduler.create () in
  let resumes = ref 0 in
  let id0 = ref (-1) in
  id0 :=
    Scheduler.spawn s (fun () ->
        Scheduler.block s;
        incr resumes);
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.wake s !id0;
         Scheduler.wake s !id0));
  Scheduler.run s;
  Alcotest.(check int) "resumed exactly once" 1 !resumes

let test_scheduler_deadlock () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> Scheduler.block s));
  ignore (Scheduler.spawn s (fun () -> ()));
  match Scheduler.run s with
  | () -> Alcotest.fail "expected deadlock"
  | exception Scheduler.Deadlock [ (0, None) ] -> ()
  | exception Scheduler.Deadlock ids ->
      Alcotest.failf "wrong blocked set (%d ids)" (List.length ids)

let test_scheduler_deadlock_describer () =
  let s = Scheduler.create () in
  Scheduler.set_describer s (fun id -> Some (Printf.sprintf "fiber %d stuck" id));
  ignore (Scheduler.spawn s (fun () -> Scheduler.block s));
  match Scheduler.run s with
  | () -> Alcotest.fail "expected deadlock"
  | exception Scheduler.Deadlock [ (0, Some "fiber 0 stuck") ] -> ()
  | exception Scheduler.Deadlock _ ->
      Alcotest.fail "describer output not carried in Deadlock payload"

let test_spmd_identity () =
  let r = run ~procs:4 (fun ctx -> Machine.self ctx * 10) in
  Alcotest.(check (array int)) "values" [| 0; 10; 20; 30 |] r.Machine.values;
  Alcotest.(check (float 1e-9)) "no time passed" 0.0 r.Machine.time

let test_message_roundtrip () =
  let r =
    run ~procs:2 (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            Machine.send ctx ~dest:1 ~tag:7 ~bytes:100 (42, "hello");
            0
        | _ ->
            let x, s = Machine.recv ctx ~src:0 ~tag:7 in
            if s = "hello" then x else -1)
  in
  Alcotest.(check (array int)) "payload intact" [| 0; 42 |] r.Machine.values

let test_recv_before_send () =
  (* Receiver runs first (rank 0 spawned first) and must suspend. *)
  let r =
    run ~procs:2 (fun ctx ->
        match Machine.self ctx with
        | 0 -> Machine.recv ctx ~src:1 ~tag:1
        | _ ->
            Machine.send ctx ~dest:0 ~tag:1 ~bytes:4 99;
            0)
  in
  Alcotest.(check (array int)) "values" [| 99; 0 |] r.Machine.values

let test_fifo_per_tag () =
  let r =
    run ~procs:2 (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            List.iter
              (fun v -> Machine.send ctx ~dest:1 ~tag:3 ~bytes:4 v)
              [ 1; 2; 3 ];
            0
        | _ ->
            let a : int = Machine.recv ctx ~src:0 ~tag:3 in
            let b : int = Machine.recv ctx ~src:0 ~tag:3 in
            let c : int = Machine.recv ctx ~src:0 ~tag:3 in
            (100 * a) + (10 * b) + c)
  in
  Alcotest.(check int) "fifo" 123 r.Machine.values.(1)

let test_tags_distinguish () =
  let r =
    run ~procs:2 (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            Machine.send ctx ~dest:1 ~tag:1 ~bytes:4 10;
            Machine.send ctx ~dest:1 ~tag:2 ~bytes:4 20;
            0
        | _ ->
            (* receive in the opposite order of sending *)
            let b : int = Machine.recv ctx ~src:0 ~tag:2 in
            let a : int = Machine.recv ctx ~src:0 ~tag:1 in
            (10 * a) + b)
  in
  Alcotest.(check int) "tags" 120 r.Machine.values.(1)

let test_deadlock_detection () =
  (* mutual recv: both fibers park; the machine must turn the scheduler's
     deadlock into a [Stalled] diagnostic naming each blocked (src, tag) *)
  match
    run ~procs:2 (fun ctx ->
        let other = 1 - Machine.self ctx in
        let (_ : int) = Machine.recv ctx ~src:other ~tag:0 in
        ())
  with
  | _ -> Alcotest.fail "expected Machine.Stalled"
  | exception Machine.Stalled blocked ->
      Alcotest.(check (list int)) "blocked ids" [ 0; 1 ] (List.map fst blocked);
      List.iteri
        (fun i (_, d) ->
          let expect = Printf.sprintf "recv from p%d, tag 0" (1 - i) in
          if not (contains d expect) then
            Alcotest.failf "diagnostic %S does not mention %S" d expect)
        blocked;
      let report = Machine.stall_diagnostic blocked in
      if not (contains report "p0") then
        Alcotest.failf "report %S does not mention p0" report

let test_clock_advance () =
  let r =
    run ~procs:1 (fun ctx ->
        Machine.compute ctx 1.5;
        Machine.compute ctx 0.5;
        Machine.clock ctx)
  in
  Alcotest.(check (float 1e-9)) "clock" 2.0 r.Machine.values.(0);
  Alcotest.(check (float 1e-9)) "makespan" 2.0 r.Machine.time

let test_charge_profile_factor () =
  let cost = Cost_model.make Cost_model.dpfl in
  let r =
    Machine.run ~cost ~topology:(Topology.mesh ~width:1 ~height:1) (fun ctx ->
        Machine.charge ctx Cost_model.Kernel ~ops:1000 ~base:1e-3;
        Machine.clock ctx)
  in
  Alcotest.(check (float 1e-6))
    "dpfl kernel factor" (1000.0 *. 1e-3 *. 7.8) r.Machine.values.(0)

let test_message_timing () =
  (* One message, 1 hop, 1000 bytes: receiver's clock must be exactly
     send_overhead + latency + per_hop + 1000*per_byte + recv_overhead. *)
  let p = Cost_model.transputer in
  let r =
    run ~procs:2 (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            Machine.send ctx ~dest:1 ~tag:0 ~bytes:1000 ();
            Machine.clock ctx
        | _ ->
            let () = Machine.recv ctx ~src:0 ~tag:0 in
            Machine.clock ctx)
  in
  let expected_recv =
    p.Cost_model.send_overhead +. p.Cost_model.msg_latency
    +. p.Cost_model.per_hop
    +. (1000.0 *. p.Cost_model.per_byte)
    +. p.Cost_model.recv_overhead
  in
  Alcotest.(check (float 1e-9))
    "async sender only pays overhead" p.Cost_model.send_overhead
    r.Machine.values.(0);
  Alcotest.(check (float 1e-9)) "receiver clock" expected_recv
    r.Machine.values.(1)

let test_sync_sender_blocks () =
  let cost = Cost_model.make Cost_model.parix_c_old in
  let p = cost.Cost_model.params in
  let cf = Cost_model.parix_c_old.Cost_model.comm_factor in
  let r =
    Machine.run ~cost ~topology:(Topology.mesh ~width:2 ~height:1) (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            Machine.send ctx ~dest:1 ~tag:0 ~bytes:1000 ();
            Machine.clock ctx
        | _ ->
            let () = Machine.recv ctx ~src:0 ~tag:0 in
            0.0)
  in
  let expected =
    cf
    *. (p.Cost_model.send_overhead +. p.Cost_model.msg_latency
        +. p.Cost_model.per_hop
        +. (1000.0 *. p.Cost_model.per_byte))
  in
  Alcotest.(check (float 1e-9))
    "sync sender waits for delivery" expected r.Machine.values.(0)

let test_recv_waits_for_arrival () =
  let p = Cost_model.transputer in
  let r =
    run ~procs:2 (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            Machine.send ctx ~dest:1 ~tag:0 ~bytes:0 ();
            0.0
        | _ ->
            (* Receiver is already busy past the arrival time: no wait. *)
            Machine.compute ctx 1.0;
            let () = Machine.recv ctx ~src:0 ~tag:0 in
            Machine.clock ctx)
  in
  Alcotest.(check (float 1e-9))
    "no wait when late" (1.0 +. p.Cost_model.recv_overhead)
    r.Machine.values.(1)

let test_self_send () =
  let r =
    run ~procs:1 (fun ctx ->
        Machine.send ctx ~dest:0 ~tag:5 ~bytes:4 7;
        (Machine.recv ctx ~src:0 ~tag:5 : int))
  in
  Alcotest.(check int) "self send" 7 r.Machine.values.(0)

let test_collective_shares_value () =
  let r =
    run ~procs:4 (fun ctx ->
        let v = Machine.collective ctx (fun () -> ref 0) in
        incr v;
        (* all four processors must have incremented the same cell *)
        !v)
  in
  Alcotest.(check int) "last increment sees all" 4 r.Machine.values.(3)

let test_tags_unique () =
  let r =
    run ~procs:3 (fun ctx ->
        let a = Machine.tags ctx 2 in
        let b = Machine.tags ctx 1 in
        (a, b))
  in
  Array.iter
    (fun (a, b) ->
      Alcotest.(check int) "consecutive" a (b - 2);
      Alcotest.(check int) "same everywhere" (fst r.Machine.values.(0)) a)
    r.Machine.values

let test_trace_records_intervals () =
  let r =
    Machine.run ~trace:true ~topology:(Topology.mesh ~width:2 ~height:1)
      (fun ctx ->
        if Machine.self ctx = 0 then begin
          Machine.compute ctx 2.0;
          Machine.send ctx ~dest:1 ~tag:0 ~bytes:0 ()
        end
        else Machine.recv ctx ~src:0 ~tag:0)
  in
  let events = Trace.events r.Machine.trace in
  Alcotest.(check bool) "has compute event" true
    (List.exists
       (fun e -> e.Trace.proc = 0 && e.Trace.kind = Trace.Compute
                 && e.Trace.duration = 2.0)
       events);
  Alcotest.(check bool) "receiver waited" true
    (List.exists
       (fun e -> e.Trace.proc = 1 && e.Trace.kind = Trace.Wait
                 && e.Trace.duration > 1.9)
       events);
  Alcotest.(check (float 0.05)) "proc 0 fully busy" 1.0
    (Trace.busy_fraction r.Machine.trace ~proc:0 ~makespan:2.0);
  let tl =
    Trace.timeline r.Machine.trace ~nprocs:2 ~makespan:r.Machine.time
  in
  Alcotest.(check bool) "timeline rows" true
    (List.length (String.split_on_char '\n' tl) >= 3)

let test_trace_disabled_is_empty () =
  let r =
    Machine.run ~topology:(Topology.mesh ~width:1 ~height:1) (fun ctx ->
        Machine.compute ctx 1.0)
  in
  Alcotest.(check int) "no events" 0
    (List.length (Trace.events r.Machine.trace))

let test_recv_any_earliest_arrival () =
  (* two messages with the same tag from different sources: recv_any must
     take the one that arrived first (fewer hops = earlier) *)
  let r =
    Machine.run ~topology:(Topology.mesh ~width:4 ~height:1) (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            let s1, (v1 : int) = Machine.recv_any ctx ~tag:9 in
            let s2, (v2 : int) = Machine.recv_any ctx ~tag:9 in
            Machine.compute ctx 0.0;
            [ (s1, v1); (s2, v2) ]
        | 1 ->
            Machine.send ctx ~dest:0 ~tag:9 ~bytes:4 111;
            []
        | 3 ->
            (* 3 hops away: same send time, later arrival *)
            Machine.send ctx ~dest:0 ~tag:9 ~bytes:4 333;
            []
        | _ -> [])
  in
  Alcotest.(check (list (pair int int)))
    "nearest first"
    [ (1, 111); (3, 333) ]
    r.Machine.values.(0)

let test_recv_any_blocks_until_send () =
  let r =
    Machine.run ~topology:(Topology.mesh ~width:2 ~height:1) (fun ctx ->
        match Machine.self ctx with
        | 0 -> fst (Machine.recv_any ctx ~tag:4)
        | _ ->
            Machine.compute ctx 1.0;
            Machine.send ctx ~dest:0 ~tag:4 ~bytes:0 ();
            -1)
  in
  Alcotest.(check int) "received from 1" 1 r.Machine.values.(0)

let test_rendezvous_send_blocks_any_profile () =
  (* the default profile is async, but ~rendezvous:true must still block *)
  let r =
    Machine.run ~topology:(Topology.mesh ~width:2 ~height:1) (fun ctx ->
        match Machine.self ctx with
        | 0 ->
            Machine.send ctx ~rendezvous:true ~dest:1 ~tag:0 ~bytes:10000 ();
            Machine.clock ctx
        | _ ->
            let () = Machine.recv ctx ~src:0 ~tag:0 in
            0.0)
  in
  let p = Cost_model.transputer in
  Alcotest.(check bool) "sender waited for the transfer" true
    (r.Machine.values.(0) > 10000.0 *. p.Cost_model.per_byte)

let test_send_bad_dest_rejected () =
  Alcotest.(check bool) "out of range" true
    (try
       ignore
         (Machine.run ~topology:(Topology.mesh ~width:2 ~height:1)
            (fun ctx -> Machine.send ctx ~dest:7 ~tag:0 ~bytes:0 ()));
       false
     with Invalid_argument _ -> true)

let test_stats_counts () =
  let r =
    run ~procs:2 (fun ctx ->
        if Machine.self ctx = 0 then begin
          Machine.send ctx ~dest:1 ~tag:0 ~bytes:123 ();
          Machine.send ctx ~dest:1 ~tag:0 ~bytes:77 ()
        end
        else begin
          let () = Machine.recv ctx ~src:0 ~tag:0 in
          let () = Machine.recv ctx ~src:0 ~tag:0 in
          ()
        end)
  in
  Alcotest.(check int) "msgs" 2 (Stats.total_msgs r.Machine.stats);
  Alcotest.(check int) "bytes" 200 (Stats.total_bytes r.Machine.stats)

let suite =
  [
    ( "scheduler",
      [
        Alcotest.test_case "spawn order" `Quick test_scheduler_basic;
        Alcotest.test_case "block/wake" `Quick test_scheduler_block_wake;
        Alcotest.test_case "wake ready runs once" `Quick
          test_scheduler_wake_ready_runs_once;
        Alcotest.test_case "wake finished noop" `Quick
          test_scheduler_wake_finished_noop;
        Alcotest.test_case "double wake suspended" `Quick
          test_scheduler_double_wake_suspended;
        Alcotest.test_case "deadlock" `Quick test_scheduler_deadlock;
        Alcotest.test_case "deadlock describer" `Quick
          test_scheduler_deadlock_describer;
      ] );
    ( "machine",
      [
        Alcotest.test_case "spmd identity" `Quick test_spmd_identity;
        Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
        Alcotest.test_case "recv before send" `Quick test_recv_before_send;
        Alcotest.test_case "fifo per tag" `Quick test_fifo_per_tag;
        Alcotest.test_case "tags distinguish" `Quick test_tags_distinguish;
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "clock advance" `Quick test_clock_advance;
        Alcotest.test_case "profile factor" `Quick test_charge_profile_factor;
        Alcotest.test_case "message timing" `Quick test_message_timing;
        Alcotest.test_case "sync sender blocks" `Quick test_sync_sender_blocks;
        Alcotest.test_case "late receiver" `Quick test_recv_waits_for_arrival;
        Alcotest.test_case "self send" `Quick test_self_send;
        Alcotest.test_case "collective" `Quick test_collective_shares_value;
        Alcotest.test_case "tags" `Quick test_tags_unique;
        Alcotest.test_case "stats" `Quick test_stats_counts;
        Alcotest.test_case "recv_any earliest" `Quick
          test_recv_any_earliest_arrival;
        Alcotest.test_case "recv_any blocks" `Quick
          test_recv_any_blocks_until_send;
        Alcotest.test_case "rendezvous send" `Quick
          test_rendezvous_send_blocks_any_profile;
        Alcotest.test_case "bad dest" `Quick test_send_bad_dest_rejected;
        Alcotest.test_case "trace intervals" `Quick
          test_trace_records_intervals;
        Alcotest.test_case "trace disabled" `Quick
          test_trace_disabled_is_empty;
      ] );
  ]
