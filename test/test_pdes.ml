(* Sharded simulation (--sim-domains) is unobservable: for any program,
   topology and fault plan, running the machine as N parallel logical
   processes must be bit-identical to the sequential scheduler — same
   printed output, same return values, same makespan, same Stats and the
   same Chrome trace, for every N.  Random programs ride on
   [Test_specialize.gen_program]; the bundled corpus and the recv_any-using
   farm skeleton are pinned explicitly. *)

let qt ?(count = 40) name ~print gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print gen prop)

(* Everything observable about one run.  Traces are compared as rendered
   Chrome JSON: any reordering or renumbering shows up as a byte diff. *)
let observe ?faults ?(reliable = false) ~topology ~sim_domains src ~entry
    ~args =
  match
    Spmd.run_source ?faults ~reliable ~sim_domains ~trace:true ~topology src
      ~entry ~args
  with
  | r ->
      let nprocs = Topology.nprocs topology in
      Ok
        ( Array.map (fun o -> o.Spmd.printed) r.Machine.values,
          Array.map (fun o -> Value.describe o.Spmd.value) r.Machine.values,
          r.Machine.time,
          Format.asprintf "%a" Stats.pp_summary r.Machine.stats,
          Profile.chrome_json r.Machine.trace ~nprocs )
  | exception Machine.Stalled blocked -> Error (Machine.stall_diagnostic blocked)

let shard_counts = [ 2; 3; 4 ]

let agrees ?faults ?reliable ~topology src ~entry ~args =
  let base = observe ?faults ?reliable ~topology ~sim_domains:1 src ~entry ~args in
  List.for_all
    (fun n ->
      observe ?faults ?reliable ~topology ~sim_domains:n src ~entry ~args
      = base)
    shard_counts

(* ---------------- property: random programs x topologies x faults ----- *)

let gen_case =
  let open QCheck2.Gen in
  Test_specialize.gen_program >>= fun src ->
  oneofl [ `Mesh22; `Mesh41; `Torus22 ] >>= fun topo ->
  oneofl [ `None; `Reliable 1; `Reliable 7; `Raw 3 ] >|= fun faults ->
  (src, topo, faults)

let print_case (src, topo, faults) =
  Printf.sprintf "topology=%s faults=%s\n%s"
    (match topo with
    | `Mesh22 -> "mesh2x2"
    | `Mesh41 -> "mesh4x1"
    | `Torus22 -> "torus2x2")
    (match faults with
    | `None -> "none"
    | `Reliable seed -> Printf.sprintf "reliable(seed=%d)" seed
    | `Raw seed -> Printf.sprintf "raw-delay(seed=%d)" seed)
    src

let topology_of = function
  | `Mesh22 -> Topology.mesh ~width:2 ~height:2
  | `Mesh41 -> Topology.mesh ~width:4 ~height:1
  | `Torus22 -> Topology.torus2d ~width:2 ~height:2 ()

let plan_of ~seed spec =
  match Fault.parse ~seed spec with
  | Ok p -> p
  | Error msg -> Alcotest.failf "fault spec: %s" msg

let prop_sharding_unobservable (src, topo, faults) =
  let topology = topology_of topo in
  match faults with
  | `None -> agrees ~topology src ~entry:"main" ~args:[]
  | `Reliable seed ->
      (* drops force retransmission timing, dup/delay perturb arrivals *)
      let faults = plan_of ~seed "drop=0.15,dup=0.05,delay=0.1x4" in
      agrees ~faults ~reliable:true ~topology src ~entry:"main" ~args:[]
  | `Raw seed ->
      (* delay-only raw plan: nothing is lost, so no stalls — but arrival
         times shift, stressing the lookahead bound's delay_factor term *)
      let faults = plan_of ~seed "delay=0.2x6" in
      agrees ~faults ~topology src ~entry:"main" ~args:[]

(* ---------------- corpus: three-way byte diff at N in {1,2,4} --------- *)

let corpus =
  [
    ("gauss.skil", "gauss", [ Value.VInt 16 ], `Mesh (2, 2));
    ("shpaths.skil", "shpaths", [ Value.VInt 16 ], `Mesh (2, 2));
    ("matmul.skil", "matmul", [ Value.VInt 8 ], `Torus (2, 2));
    ("threshold.skil", "main", [ Value.VInt 8 ], `Mesh (2, 1));
    ("quicksort.skil", "main", [], `Mesh (2, 2));
    ("jacobi.skil", "jacobi", [ Value.VInt 16 ], `Mesh (2, 2));
  ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let source name =
  let candidates =
    [
      "../examples/skil/" ^ name;
      "examples/skil/" ^ name;
      "../../../examples/skil/" ^ name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> read_file p
  | None -> Alcotest.failf "cannot find %s" name

let test_corpus_sharding () =
  List.iter
    (fun (file, entry, args, topo) ->
      let topology =
        match topo with
        | `Mesh (w, h) -> Topology.mesh ~width:w ~height:h
        | `Torus (w, h) -> Topology.torus2d ~width:w ~height:h ()
      in
      let src = source file in
      let at n = observe ~topology ~sim_domains:n src ~entry ~args in
      let base = at 1 in
      (match base with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: sequential run stalled: %s" file msg);
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: sim-domains %d = sequential" file n)
            true
            (at n = base))
        [ 2; 4 ])
    corpus

(* ---------------- farm: the recv_any path ----------------------------- *)

(* Task_skel.farm is the one user of recv_any — the only
   source-nondeterministic primitive, and the only place the sharded
   engine's lookahead-commit/park/grant machinery decides anything.  Uneven
   task costs make worker completion order differ from rank order, so a
   wrong commit shows up as reordered results or a different makespan. *)
let farm_outcome ~sim_domains =
  let tasks = 50 :: List.init 30 (fun i -> i mod 7) in
  let r =
    Machine.run ~sim_domains ~topology:(Topology.mesh ~width:5 ~height:1)
      (fun ctx ->
        Task_skel.farm ctx
          ~task_bytes:(fun _ -> 8)
          ~result_bytes:(fun _ -> 8)
          ~worker:(fun cost ->
            Machine.compute ctx (float_of_int cost *. 1e-3);
            cost * cost)
          (if Machine.self ctx = 0 then Some tasks else None))
  in
  (r.Machine.values, r.Machine.time)

let test_farm_sharding () =
  let base = farm_outcome ~sim_domains:1 in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "farm: sim-domains %d = sequential" n)
        true
        (farm_outcome ~sim_domains:n = base))
    [ 2; 4; 5 ]

let suite =
  [
    ( "pdes",
      [
        qt ~count:40 "random programs: sharded = sequential" gen_case
          ~print:print_case prop_sharding_unobservable;
        Alcotest.test_case "corpus byte-identical at sim-domains {1,2,4}"
          `Slow test_corpus_sharding;
        Alcotest.test_case "farm (recv_any) identical at sim-domains {1,2,4,5}"
          `Quick test_farm_sharding;
      ] );
  ]
