let () =
  Alcotest.run "skil"
    (Test_index.suite @ Test_topology.suite @ Test_machine.suite
   @ Test_trace.suite @ Test_faults.suite
   @ Test_collectives.suite @ Test_distribution.suite @ Test_darray.suite
   @ Test_skeletons.suite @ Test_extensions.suite @ Test_apps.suite
   @ Test_dc_apps.suite @ Test_baselines.suite @ Test_lang.suite
   @ Test_skil_programs.suite @ Test_engines.suite @ Test_specialize.suite
   @ Test_optimize.suite @ Test_pdes.suite
   @ Test_harness.suite @ Test_pool.suite
   @ Test_properties.suite @ Test_native.suite @ Test_service.suite)
