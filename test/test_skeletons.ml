(* Semantics of the section-3 skeletons, exercised on several machine shapes
   including non-dividing partition sizes. *)

let run_on ~width ~height ?(kind = Topology.Default) f =
  (Machine.run ~topology:(Topology.create ~width ~height kind) f)
    .Machine.values

let run1 ~width ~height ?kind f = (run_on ~width ~height ?kind f).(0)

(* Run an SPMD program that returns a distributed array and flatten it only
   after every fiber has finished (reading partitions mid-run would race
   with processors that have not executed their local part yet). *)
let flat1 ~width ~height ?(kind = Topology.Default) f =
  let r = Machine.run ~topology:(Topology.create ~width ~height kind) f in
  Darray.to_flat r.Machine.values.(0)

let shapes = [ (1, 1); (2, 1); (3, 1); (4, 1); (5, 1) ]

let test_create_init () =
  List.iter
    (fun (w, h) ->
      let flat =
        run1 ~width:w ~height:h (fun ctx ->
            let a =
              Skeletons.create ctx ~gsize:[| 7; 3 |] ~distr:Darray.Default
                (fun ix -> (10 * ix.(0)) + ix.(1))
            in
            Darray.to_flat a)
      in
      Alcotest.(check int) "size" 21 (Array.length flat);
      Alcotest.(check int) "elem (2,1)" 21 flat.((2 * 3) + 1))
    shapes

let test_map_square () =
  List.iter
    (fun (w, h) ->
      let flat =
        flat1 ~width:w ~height:h (fun ctx ->
            let a =
              Skeletons.create ctx ~gsize:[| 10 |] ~distr:Darray.Default
                (fun ix -> ix.(0))
            in
            let b =
              Skeletons.create ctx ~gsize:[| 10 |] ~distr:Darray.Default
                (fun _ -> 0)
            in
            Skeletons.map ctx (fun v _ -> v * v) a b;
            b)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "squares on %dx%d" w h)
        (Array.init 10 (fun i -> i * i))
        flat)
    shapes

let test_map_in_situ () =
  let flat =
    flat1 ~width:3 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 8 |] ~distr:Darray.Default (fun ix ->
              ix.(0))
        in
        Skeletons.map ctx (fun v _ -> v + 100) a a;
        a)
  in
  Alcotest.(check (array int)) "in situ" (Array.init 8 (fun i -> i + 100)) flat

let test_map_uses_index () =
  let flat =
    flat1 ~width:2 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 3; 3 |] ~distr:Darray.Default
            (fun _ -> 0)
        in
        Skeletons.map ctx (fun _ ix -> (10 * ix.(0)) + ix.(1)) a a;
        a)
  in
  Alcotest.(check (array int))
    "indices" [| 0; 1; 2; 10; 11; 12; 20; 21; 22 |] flat

let test_map_into_changes_type () =
  (* the paper's above_thresh example: float array -> int array *)
  let flat =
    flat1 ~width:2 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 6 |] ~distr:Darray.Default (fun ix ->
              float_of_int ix.(0) /. 2.0)
        in
        let b =
          Skeletons.create ctx ~gsize:[| 6 |] ~distr:Darray.Default (fun _ ->
              0)
        in
        Skeletons.map_into ctx (fun v _ -> if v >= 1.0 then 1 else 0) a b;
        b)
  in
  Alcotest.(check (array int)) "threshold" [| 0; 0; 1; 1; 1; 1 |] flat

let test_fold_sum () =
  List.iter
    (fun (w, h) ->
      let values =
        run_on ~width:w ~height:h (fun ctx ->
            let a =
              Skeletons.create ctx ~gsize:[| 11 |] ~distr:Darray.Default
                (fun ix -> ix.(0))
            in
            Skeletons.fold ctx ~conv:(fun v _ -> v) ( + ) a)
      in
      Array.iter
        (fun v ->
          Alcotest.(check int)
            (Printf.sprintf "fold on %dx%d known everywhere" w h)
            55 v)
        values)
    shapes

let test_fold_conv_and_index () =
  (* max_abs_in_col-style fold: maximum over column 1 only *)
  let v =
    run1 ~width:3 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 5; 3 |] ~distr:Darray.Default
            (fun ix -> (ix.(0) * 10) + ix.(1))
        in
        Skeletons.fold ctx
          ~conv:(fun v ix -> if ix.(1) = 1 then v else min_int)
          max a)
  in
  Alcotest.(check int) "max of column 1" 41 v

let test_fold_empty_partitions () =
  (* more processors than rows: some partitions are empty *)
  let v =
    run1 ~width:5 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 3; 2 |] ~distr:Darray.Default
            (fun ix -> ix.(0) + ix.(1))
        in
        Skeletons.fold ctx ~conv:(fun v _ -> v) ( + ) a)
  in
  Alcotest.(check int) "sum with empty parts" 9 v

let test_copy () =
  let flat =
    flat1 ~width:4 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 9 |] ~distr:Darray.Default (fun ix ->
              ix.(0) * 7)
        in
        let b =
          Skeletons.create ctx ~gsize:[| 9 |] ~distr:Darray.Default (fun _ ->
              -1)
        in
        Skeletons.copy ctx a b;
        b)
  in
  Alcotest.(check (array int)) "copied" (Array.init 9 (fun i -> i * 7)) flat

let test_broadcast_part () =
  (* p x m array, one row per processor (the paper's piv array): partition 2
     overwrites everybody *)
  let flat =
    flat1 ~width:4 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 4; 3 |] ~distr:Darray.Default
            (fun ix -> (100 * ix.(0)) + ix.(1))
        in
        Skeletons.broadcast_part ctx a [| 2; 0 |];
        a)
  in
  Alcotest.(check (array int))
    "all rows equal row 2"
    [| 200; 201; 202; 200; 201; 202; 200; 201; 202; 200; 201; 202 |]
    flat

let test_permute_rows_swap () =
  List.iter
    (fun (w, h) ->
      let flat =
        flat1 ~width:w ~height:h (fun ctx ->
            let a =
              Skeletons.create ctx ~gsize:[| 6; 2 |] ~distr:Darray.Default
                (fun ix -> (10 * ix.(0)) + ix.(1))
            in
            let b =
              Skeletons.create ctx ~gsize:[| 6; 2 |] ~distr:Darray.Default
                (fun _ -> -1)
            in
            let switch_rows i j r = if r = i then j else if r = j then i else r in
            Skeletons.permute_rows ctx a (switch_rows 1 4) b;
            b)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "swap rows on %dx%d" w h)
        [| 0; 1; 40; 41; 20; 21; 30; 31; 10; 11; 50; 51 |]
        flat)
    shapes

let test_permute_rows_rotation () =
  let flat =
    flat1 ~width:3 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 5; 1 |] ~distr:Darray.Default
            (fun ix -> ix.(0))
        in
        let b =
          Skeletons.create ctx ~gsize:[| 5; 1 |] ~distr:Darray.Default
            (fun _ -> -1)
        in
        Skeletons.permute_rows ctx a (fun r -> (r + 2) mod 5) b;
        b)
  in
  Alcotest.(check (array int)) "rotation" [| 3; 4; 0; 1; 2 |] flat

let test_permute_rows_rejects_non_bijection () =
  let result =
    run1 ~width:2 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 4; 1 |] ~distr:Darray.Default
            (fun ix -> ix.(0))
        in
        let b =
          Skeletons.create ctx ~gsize:[| 4; 1 |] ~distr:Darray.Default
            (fun _ -> 0)
        in
        try
          Skeletons.permute_rows ctx a (fun _ -> 0) b;
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "runtime error" true result

let test_gen_mult_classical () =
  (* 6x6 on 1x1, 2x2 and 3x3 torus grids against a host-side reference *)
  let n = 6 in
  let av ix = ((ix.(0) + 1) * (ix.(1) + 2)) mod 7 in
  let bv ix = ((2 * ix.(0)) + (3 * ix.(1))) mod 5 in
  let reference =
    Array.init (n * n) (fun off ->
        let i = off / n and j = off mod n in
        let s = ref 0 in
        for k = 0 to n - 1 do
          s := !s + (av [| i; k |] * bv [| k; j |])
        done;
        !s)
  in
  List.iter
    (fun q ->
      let flat =
        flat1 ~width:q ~height:q ~kind:Topology.Torus2d (fun ctx ->
            let a =
              Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d av
            in
            let b =
              Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d bv
            in
            let c =
              Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d
                (fun _ -> 0)
            in
            Skeletons.gen_mult ctx ~add:( + ) ~mul:( * ) a b c;
            c)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "matmul on %dx%d torus" q q)
        reference flat)
    [ 1; 2; 3 ]

let test_gen_mult_preserves_inputs () =
  let n = 4 in
  let flat =
    flat1 ~width:2 ~height:2 ~kind:Topology.Torus2d (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d
            (fun ix -> (n * ix.(0)) + ix.(1))
        in
        let b =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d
            (fun ix -> ix.(0) - ix.(1))
        in
        let c =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d
            (fun _ -> 0)
        in
        Skeletons.gen_mult ctx ~add:( + ) ~mul:( * ) a b c;
        a)
  in
  Alcotest.(check (array int))
    "a unchanged"
    (Array.init (n * n) Fun.id)
    flat

let test_gen_mult_minplus_accumulates () =
  (* c starts at "infinity"; gen_mult with (min, +) must fold into it *)
  let n = 4 in
  let inf = 1000000 in
  let av ix = if ix.(0) = ix.(1) then 0 else ((ix.(0) + ix.(1)) mod 3) + 1 in
  let reference =
    Array.init (n * n) (fun off ->
        let i = off / n and j = off mod n in
        let best = ref inf in
        for k = 0 to n - 1 do
          best := min !best (av [| i; k |] + av [| k; j |])
        done;
        !best)
  in
  let flat =
    flat1 ~width:2 ~height:2 ~kind:Topology.Torus2d (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d av
        in
        let b =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d av
        in
        let c =
          Skeletons.create ctx ~gsize:[| n; n |] ~distr:Darray.Torus2d
            (fun _ -> inf)
        in
        Skeletons.gen_mult ctx ~add:min ~mul:( + ) a b c;
        c)
  in
  Alcotest.(check (array int)) "min-plus square" reference flat

let test_gen_mult_rejects_aliasing () =
  let caught =
    run1 ~width:2 ~height:2 ~kind:Topology.Torus2d (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 4; 4 |] ~distr:Darray.Torus2d
            (fun _ -> 1)
        in
        let c =
          Skeletons.create ctx ~gsize:[| 4; 4 |] ~distr:Darray.Torus2d
            (fun _ -> 0)
        in
        try
          Skeletons.gen_mult ctx ~add:( + ) ~mul:( * ) a a c;
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "aliasing rejected" true caught

let test_gen_mult_requires_square_grid () =
  let caught =
    run1 ~width:4 ~height:2 (fun ctx ->
        let mk init =
          Skeletons.create ctx ~gsize:[| 8; 8 |] ~distr:Darray.Default init
        in
        let a = mk (fun _ -> 1) in
        let b = mk (fun _ -> 1) in
        let c = mk (fun _ -> 0) in
        try
          Skeletons.gen_mult ctx ~add:( + ) ~mul:( * ) a b c;
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "non-square grid rejected" true caught

let test_gen_mult_requires_dividing_side () =
  let caught =
    run1 ~width:2 ~height:2 ~kind:Topology.Torus2d (fun ctx ->
        let mk init =
          Skeletons.create ctx ~gsize:[| 5; 5 |] ~distr:Darray.Torus2d init
        in
        let a = mk (fun _ -> 1) in
        let b = mk (fun _ -> 1) in
        let c = mk (fun _ -> 0) in
        try
          Skeletons.gen_mult ctx ~add:( + ) ~mul:( * ) a b c;
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "non-dividing size rejected" true caught

let test_part_bounds_and_elems () =
  let ok =
    run_on ~width:2 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 4; 2 |] ~distr:Darray.Default
            (fun ix -> ix.(0))
        in
        let b = Skeletons.part_bounds ctx a in
        let me = Machine.self ctx in
        let expect_lo = if me = 0 then 0 else 2 in
        let v = Skeletons.get_elem ctx a [| expect_lo; 0 |] in
        Skeletons.put_elem ctx a [| expect_lo; 1 |] 99;
        b.Index.lower.(0) = expect_lo
        && v = expect_lo
        && Skeletons.get_elem ctx a [| expect_lo; 1 |] = 99)
  in
  Array.iter (fun v -> Alcotest.(check bool) "bounds/elems" true v) ok

let test_get_elem_nonlocal_rejected () =
  let caught =
    run1 ~width:2 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 4 |] ~distr:Darray.Default (fun ix ->
              ix.(0))
        in
        let remote = if Machine.self ctx = 0 then [| 3 |] else [| 0 |] in
        try
          ignore (Skeletons.get_elem ctx a remote);
          false
        with Darray.Local_access_violation _ -> true)
  in
  Alcotest.(check bool) "locality enforced" true caught

let test_destroy_collective () =
  (* Deallocation takes effect once the LAST processor calls destroy: an
     early processor must not invalidate partitions its peers still use. *)
  let r =
    Machine.run ~topology:(Topology.mesh ~width:3 ~height:1) (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 6 |] ~distr:Darray.Default (fun ix ->
              ix.(0))
        in
        let v =
          if Machine.self ctx = 2 then begin
            (* ranks 0 and 1 have already called destroy by the time rank 2
               runs (FIFO scheduling), yet the array must still be alive *)
            Collectives.barrier ctx ~tag:0;
            Skeletons.get_elem ctx a [| 4 |]
          end
          else begin
            Skeletons.destroy ctx a;
            Collectives.barrier ctx ~tag:0;
            -1
          end
        in
        if Machine.self ctx = 2 then Skeletons.destroy ctx a;
        (a, v))
  in
  let a, _ = r.Machine.values.(0) in
  Alcotest.(check int) "slow reader sees data" 4 (snd r.Machine.values.(2));
  Alcotest.check_raises "dead after the last destroy" Darray.Use_after_destroy
    (fun () -> ignore (Darray.peek a [| 0 |]))

let test_to_flat_collective () =
  let values =
    run_on ~width:3 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 7 |] ~distr:Darray.Default (fun ix ->
              ix.(0) * 2)
        in
        Skeletons.to_flat ctx a)
  in
  Array.iter
    (fun flat ->
      Alcotest.(check (array int))
        "every proc gets the gather"
        (Array.init 7 (fun i -> i * 2))
        flat)
    values

let test_to_flat_private_copies () =
  (* regression: to_flat used to hand every processor the same array (the
     broadcast payload travels by reference in the simulator), so mutating
     one processor's result corrupted all the others *)
  let values =
    run_on ~width:3 ~height:1 (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 6 |] ~distr:Darray.Default (fun ix ->
              ix.(0))
        in
        let flat = Skeletons.to_flat ctx a in
        (* the root overwrites its copy after the collective returns *)
        if Machine.self ctx = 0 then flat.(0) <- 999;
        flat)
  in
  Alcotest.(check int) "rank 0 sees its write" 999 values.(0).(0);
  Alcotest.(check int) "rank 1 unaffected" 0 values.(1).(0);
  Alcotest.(check int) "rank 2 unaffected" 0 values.(2).(0);
  Alcotest.(check bool) "distinct arrays" true (values.(1) != values.(2))

let fold_bytes_sent ?acc_bytes ?acc_bytes_of () =
  let r =
    Machine.run ~topology:(Topology.mesh ~width:4 ~height:1) (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| 16 |] ~distr:Darray.Default (fun ix ->
              ix.(0))
        in
        let m =
          Skeletons.fold ctx ?acc_bytes ?acc_bytes_of
            ~conv:(fun v ix -> (v, ix.(0)))
            (fun a b -> if fst a >= fst b then a else b)
            a
        in
        Skeletons.destroy ctx a;
        m)
  in
  Array.iter
    (fun v -> Alcotest.(check (pair int int)) "argmax" (15, 15) v)
    r.Machine.values;
  Stats.total_bytes r.Machine.stats

let test_fold_acc_bytes_charged () =
  (* conv changes the wire size: the documented default mis-charges at the
     element size, an explicit [acc_bytes] (or a measuring [acc_bytes_of])
     must account for the larger reduction messages *)
  let default_bytes = fold_bytes_sent () in
  let explicit = fold_bytes_sent ~acc_bytes:(2 * Calibration.elem_bytes) () in
  let measured =
    fold_bytes_sent ~acc_bytes_of:(fun _ -> 2 * Calibration.elem_bytes) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "explicit acc_bytes sends more (%d > %d)" explicit
       default_bytes)
    true (explicit > default_bytes);
  Alcotest.(check int) "acc_bytes_of agrees with acc_bytes" explicit measured

let test_map_charges_mapped_rate () =
  (* identical program, DPFL vs C profile: times must differ by the mapped
     factor ratio on a communication-free map *)
  let time profile =
    let cost = Cost_model.make profile in
    (Machine.run ~cost ~topology:(Topology.mesh ~width:2 ~height:1)
       (fun ctx ->
         let a =
           Skeletons.create ctx ~cost:0.0 ~gsize:[| 1000 |]
             ~distr:Darray.Default (fun _ -> 1.0)
         in
         Skeletons.map ctx ~cost:1e-6 (fun v _ -> v +. 1.0) a a))
      .Machine.time
  in
  let tc = time Cost_model.parix_c and td = time Cost_model.dpfl in
  let ratio = td /. tc in
  Alcotest.(check bool)
    (Printf.sprintf "dpfl/c map ratio ~16 (got %.2f)" ratio)
    true
    (ratio > 8.0 && ratio < 20.0)

let suite =
  [
    ( "skeletons",
      [
        Alcotest.test_case "create" `Quick test_create_init;
        Alcotest.test_case "map" `Quick test_map_square;
        Alcotest.test_case "map in situ" `Quick test_map_in_situ;
        Alcotest.test_case "map index" `Quick test_map_uses_index;
        Alcotest.test_case "map_into" `Quick test_map_into_changes_type;
        Alcotest.test_case "fold sum" `Quick test_fold_sum;
        Alcotest.test_case "fold conv/index" `Quick test_fold_conv_and_index;
        Alcotest.test_case "fold empty parts" `Quick
          test_fold_empty_partitions;
        Alcotest.test_case "copy" `Quick test_copy;
        Alcotest.test_case "broadcast_part" `Quick test_broadcast_part;
        Alcotest.test_case "permute swap" `Quick test_permute_rows_swap;
        Alcotest.test_case "permute rotation" `Quick
          test_permute_rows_rotation;
        Alcotest.test_case "permute non-bijection" `Quick
          test_permute_rows_rejects_non_bijection;
        Alcotest.test_case "gen_mult classical" `Quick test_gen_mult_classical;
        Alcotest.test_case "gen_mult preserves inputs" `Quick
          test_gen_mult_preserves_inputs;
        Alcotest.test_case "gen_mult min-plus" `Quick
          test_gen_mult_minplus_accumulates;
        Alcotest.test_case "gen_mult aliasing" `Quick
          test_gen_mult_rejects_aliasing;
        Alcotest.test_case "gen_mult grid checked" `Quick
          test_gen_mult_requires_square_grid;
        Alcotest.test_case "gen_mult divisibility" `Quick
          test_gen_mult_requires_dividing_side;
        Alcotest.test_case "bounds and elems" `Quick test_part_bounds_and_elems;
        Alcotest.test_case "nonlocal get rejected" `Quick
          test_get_elem_nonlocal_rejected;
        Alcotest.test_case "destroy" `Quick test_destroy_collective;
        Alcotest.test_case "to_flat" `Quick test_to_flat_collective;
        Alcotest.test_case "to_flat private copies" `Quick
          test_to_flat_private_copies;
        Alcotest.test_case "fold acc_bytes" `Quick test_fold_acc_bytes_charged;
        Alcotest.test_case "mapped rate" `Quick test_map_charges_mapped_rate;
      ] );
  ]
