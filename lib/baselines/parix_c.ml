let elem_bytes = Calibration.elem_bytes

let square_grid ctx =
  match Topology.square_side (Machine.topology ctx) with
  | Some q -> q
  | None -> invalid_arg "Parix_c: needs a square processor grid"

let grid_pos ctx =
  let x, y = Topology.grid_coords (Machine.topology ctx) (Machine.self ctx) in
  (y, x) (* block row, block column *)

let rank_at ctx ~row ~col =
  Topology.rank_of_grid (Machine.topology ctx) (col, row)

(* Cannon's rotations over plain local blocks; the working set rotates by
   reference so the caller's block contents are never mutated (only [cblock]
   accumulates).  Returns unit; [cblock] holds the result block. *)
let cannon ctx ~q ~bs ~cost ~add ~mul ablock bblock cblock =
  let bi, bj = grid_pos ctx in
  let at r c = rank_at ctx ~row:(((r mod q) + q) mod q) ~col:(((c mod q) + q) mod q) in
  let block_bytes = bs * bs * elem_bytes in
  let tag_a = Machine.tags ctx 2 in
  let tag_b = tag_a + 1 in
  let exchange tag ~dest ~src block =
    if dest = Machine.self ctx && src = Machine.self ctx then block
    else if Machine.coll_legacy ctx then
      Machine.sendrecv ctx ~dest ~src ~tag ~bytes:block_bytes block
    else Collectives.ring_shift ctx ~tag ~bytes:block_bytes ~dest ~src block
  in
  let a = ref ablock and b = ref bblock in
  a := exchange tag_a ~dest:(at bi (bj - bi)) ~src:(at bi (bj + bi)) !a;
  b := exchange tag_b ~dest:(at (bi - bj) bj) ~src:(at (bi + bj) bj) !b;
  let multiply () =
    let ad = !a and bd = !b in
    for i = 0 to bs - 1 do
      for k = 0 to bs - 1 do
        let aik = ad.((i * bs) + k) in
        for j = 0 to bs - 1 do
          let off = (i * bs) + j in
          cblock.(off) <- add cblock.(off) (mul aik bd.((k * bs) + j))
        done
      done
    done;
    Machine.charge ctx Cost_model.Kernel ~ops:(bs * bs * bs) ~base:cost
  in
  for step = 1 to q do
    if step < q then begin
      Machine.send ctx ~dest:(at bi (bj - 1)) ~tag:tag_a ~bytes:block_bytes !a;
      Machine.send ctx ~dest:(at (bi - 1) bj) ~tag:tag_b ~bytes:block_bytes !b;
      multiply ();
      a := Machine.recv ctx ~src:(at bi (bj + 1)) ~tag:tag_a;
      b := Machine.recv ctx ~src:(at (bi + 1) bj) ~tag:tag_b
    end
    else multiply ()
  done;
  if q > 1 then begin
    ignore
      (exchange tag_a ~dest:(at bi (bi + bj - 1)) ~src:(at bi (bj - bi + 1)) !a);
    ignore
      (exchange tag_b ~dest:(at (bi + bj - 1) bj) ~src:(at (bi - bj + 1) bj) !b)
  end

let init_block ctx ~n ~q ~cost f =
  let bs = n / q in
  let bi, bj = grid_pos ctx in
  let block =
    Array.init (bs * bs) (fun off ->
        f [| (bi * bs) + (off / bs); (bj * bs) + (off mod bs) |])
  in
  Machine.charge ctx Cost_model.Kernel ~ops:(bs * bs) ~base:cost;
  block

let assemble_blocks ctx ~n ~bs seed blocks =
  let out = Array.make (n * n) seed in
  Array.iteri
    (fun rank bl ->
      let x, y = Topology.grid_coords (Machine.topology ctx) rank in
      let bi = y and bj = x in
      for i = 0 to bs - 1 do
        for j = 0 to bs - 1 do
          out.((((bi * bs) + i) * n) + (bj * bs) + j) <- bl.((i * bs) + j)
        done
      done)
    blocks;
  out

let gather_blocks ctx ~n ~q block =
  let bs = n / q in
  let tag = Machine.tags ctx 1 in
  if Machine.coll_legacy ctx then begin
    let gathered =
      Collectives.gather_to ctx ~tag ~root:0 ~bytes:(bs * bs * elem_bytes)
        block
    in
    let full =
      match gathered with
      | None -> [||]
      | Some blocks -> assemble_blocks ctx ~n ~bs block.(0) blocks
    in
    Collectives.bcast ctx ~tag ~root:0 ~bytes:(n * n * elem_bytes) full
  end
  else
    (* one all-gather of the q*q blocks; every rank assembles locally *)
    assemble_blocks ctx ~n ~bs block.(0)
      (Collectives.allgather ctx ~tag ~bytes:(bs * bs * elem_bytes) block)

let shortest_paths ctx ~n ~weight =
  let q = square_grid ctx in
  if n mod q <> 0 then
    invalid_arg "Parix_c.shortest_paths: grid side must divide n";
  let bs = n / q in
  let inf = Shortest_paths.infinity_weight in
  let a = ref (init_block ctx ~n ~q ~cost:Calibration.fold_conv_op weight) in
  let c = Array.make (bs * bs) inf in
  let saturating_add x y =
    let s = x + y in
    if s > inf then inf else s
  in
  let rounds =
    let rec go k pow = if pow >= n then k else go (k + 1) (2 * pow) in
    go 0 1
  in
  for _ = 1 to rounds do
    let b = Array.copy !a in
    Machine.charge_copy ctx ~bytes:(bs * bs * elem_bytes);
    cannon ctx ~q ~bs ~cost:Calibration.minplus_op ~add:min
      ~mul:saturating_add !a b c;
    a := Array.copy c;
    Machine.charge_copy ctx ~bytes:(bs * bs * elem_bytes)
  done;
  !a

let shortest_paths_global ctx ~n ~weight =
  let q = square_grid ctx in
  gather_blocks ctx ~n ~q (shortest_paths ctx ~n ~weight)

let matmul ctx ~n ~a ~b =
  let q = square_grid ctx in
  if n mod q <> 0 then invalid_arg "Parix_c.matmul: grid side must divide n";
  let bs = n / q in
  let ab = init_block ctx ~n ~q ~cost:Calibration.fold_conv_op a in
  let bb = init_block ctx ~n ~q ~cost:Calibration.fold_conv_op b in
  let cb = Array.make (bs * bs) 0.0 in
  cannon ctx ~q ~bs ~cost:Calibration.float_madd_op ~add:( +. ) ~mul:( *. )
    ab bb cb;
  cb

let matmul_global ctx ~n ~a ~b =
  let q = square_grid ctx in
  gather_blocks ctx ~n ~q (matmul ctx ~n ~a ~b)

(* Row-block Gauss-Jordan.  The pivot row is normalized by its owner and
   travels along a binomial tree; every processor then updates its whole
   rows — branch-free full-row sweeps, which is both how the flat C loop
   reads and arithmetically equivalent (columns left of the pivot multiply
   by zeros of the normalized pivot row). *)
let gauss ?(pivoting = false) ctx ~n ~matrix =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  if n < p then invalid_arg "Parix_c.gauss: needs n >= number of processors";
  let m = n + 1 in
  let r0 = me * n / p and r1 = (me + 1) * n / p in
  let nloc = r1 - r0 in
  let owner_of gi = ((p * (gi + 1)) - 1) / n in
  let a =
    Array.init (nloc * m) (fun off -> matrix [| r0 + (off / m); off mod m |])
  in
  Machine.charge ctx Cost_model.Kernel ~ops:(nloc * m)
    ~base:Calibration.fold_conv_op;
  let tag = Machine.tags ctx 3 in
  let tag_swap = tag + 1 and tag_piv = tag + 2 in
  let row_bytes = m * elem_bytes in
  for k = 0 to n - 1 do
    if pivoting then begin
      (* distributed max |a_ik|, i >= k *)
      let best = ref (0.0, -1) in
      for i = 0 to nloc - 1 do
        let gi = r0 + i in
        if gi >= k then begin
          let v = Float.abs a.((i * m) + k) in
          if v > fst !best then best := (v, gi)
        end
      done;
      Machine.charge ctx Cost_model.Kernel ~ops:nloc
        ~base:Calibration.fold_conv_op;
      let bv, br =
        Collectives.allreduce ctx ~tag ~bytes:8
          (fun x y -> if fst y > fst x then y else x)
          !best
      in
      if bv = 0.0 then raise Gauss.Singular;
      if br <> k then begin
        (* exchange rows k and br *)
        let ok = owner_of k and ob = owner_of br in
        let local_row gi = gi - r0 in
        if ok = ob then begin
          if me = ok then begin
            let lk = local_row k * m and lb = local_row br * m in
            for j = 0 to m - 1 do
              let t = a.(lk + j) in
              a.(lk + j) <- a.(lb + j);
              a.(lb + j) <- t
            done;
            Machine.charge_copy ctx ~bytes:(2 * row_bytes)
          end
        end
        else if me = ok || me = ob then begin
          let mine = if me = ok then local_row k else local_row br in
          let peer = if me = ok then ob else ok in
          let out = Array.sub a (mine * m) m in
          let incoming : float array =
            Machine.sendrecv ctx ~dest:peer ~src:peer ~tag:tag_swap
              ~bytes:row_bytes out
          in
          Array.blit incoming 0 a (mine * m) m
        end
      end
    end;
    let ko = owner_of k in
    let pivrow =
      if me = ko then begin
        let lk = (k - r0) * m in
        let pivot = a.(lk + k) in
        let row = Array.init m (fun j -> a.(lk + j) /. pivot) in
        Machine.charge ctx Cost_model.Kernel ~ops:m
          ~base:Calibration.gauss_elem_op;
        row
      end
      else [||]
    in
    let pivrow =
      Collectives.bcast ctx ~tag:tag_piv ~root:ko ~bytes:row_bytes pivrow
    in
    for i = 0 to nloc - 1 do
      if r0 + i <> k then begin
        let base = i * m in
        let factor = a.(base + k) in
        for j = 0 to m - 1 do
          a.(base + j) <- a.(base + j) -. (factor *. pivrow.(j))
        done
      end
    done;
    Machine.charge ctx Cost_model.Kernel ~ops:(nloc * m)
      ~base:Calibration.gauss_elem_op
  done;
  let local_x = Array.init nloc (fun i -> a.((i * m) + n) /. a.((i * m) + r0 + i)) in
  Machine.charge ctx Cost_model.Kernel ~ops:nloc
    ~base:Calibration.gauss_elem_op;
  (* assemble the solution vector everywhere *)
  let assemble pieces =
    let out = Array.make n 0.0 in
    Array.iter
      (fun (start, xs) -> Array.blit xs 0 out start (Array.length xs))
      pieces;
    out
  in
  if Machine.coll_legacy ctx then begin
    let gathered =
      Collectives.gather_to ctx ~tag ~root:0 ~bytes:(nloc * elem_bytes)
        (r0, local_x)
    in
    let x = match gathered with None -> [||] | Some pieces -> assemble pieces in
    Collectives.bcast ctx ~tag ~root:0 ~bytes:(n * elem_bytes) x
  end
  else
    assemble
      (Collectives.allgather ctx ~tag ~bytes:(nloc * elem_bytes) (r0, local_x))
