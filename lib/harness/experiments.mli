(** Runners that regenerate every table and figure of the paper's evaluation
    (section 5).  All times are simulated seconds on the modeled Parsytec MC;
    [quick] shrinks problem sizes for tests and smoke runs.

    Every cell of every table is an independent deterministic simulation, so
    the runners dispatch cells through {!Pool}: [jobs] (default 1) caps the
    number of domains used.  Whatever [jobs] is, results are bit-identical —
    only wall-clock time changes. *)

val sim_domains : int ref
(** Shard count handed to every cell's [Machine.run] (repro's
    [--sim-domains]; default 1).  Bit-identical results for any value;
    shards borrow the same {!Pool} crew the cell batches use. *)

(** {1 Table 1 — shortest paths} *)

type sp_row = {
  sqrtp : int;  (** network is sqrtp x sqrtp *)
  sp_n : int;  (** node count after rounding up to a multiple of sqrtp *)
  sp_skil : float;
  sp_dpfl : float option;  (** measured only at sqrtp in {2,4,6,8} *)
  sp_parix_old : float option;
}

val table1 : ?quick:bool -> ?jobs:int -> unit -> sp_row list

val paper_table1 : (int * float option * float * float option) list
(** [(sqrtp, dpfl, skil, old_c)] as published. *)

(** {1 Table 2 / Figure 1 — Gaussian elimination} *)

type gauss_cell = {
  g_n : int;
  g_skil : float;
  g_dpfl : float option;
  g_parix : float;
}

type gauss_row = { grid : int * int; cells : gauss_cell list }

val table2 : ?quick:bool -> ?jobs:int -> unit -> gauss_row list

val traced_gauss_cell :
  ?quick:bool -> unit -> int * (int * int) * unit Machine.result
(** [(n, grid, result)] of one representative Table-2 Gauss cell re-run with
    structured tracing enabled — the cell behind the [--trace-out] /
    [--profile] flags of [bench/main.exe] and [repro.exe].  Tracing never
    changes simulated clocks, so [result.time] matches the untraced table
    cell exactly. *)

val paper_table2 : ((int * int) * (int * float * float option * float) list) list
(** [(grid, [(n, skil, dpfl_over_skil, skil_over_c)])] as published. *)

val figure1 : gauss_row list -> Series.t list * Series.t list
(** Left plot (speedups Skil vs DPFL) and right plot (slow-downs Skil vs C),
    one series per matrix size, x = processor count — derived from the
    Table 2 runs exactly as in the paper. *)

(** {1 Section 5 prose claims} *)

type claim51_row = { m_n : int; m_skil : float; m_parix : float }

val claim51 : ?quick:bool -> ?jobs:int -> unit -> claim51_row list
(** Equally-optimized comparison: classical matrix multiplication, Skil's
    [array_gen_mult] vs hand-written Cannon in C ("around 20% slower"). *)

type claim52_row = {
  c2_grid : int * int;
  c2_n : int;
  c2_partial : float;
  c2_full : float;
}

val claim52 : ?quick:bool -> ?jobs:int -> unit -> claim52_row list
(** Complete Gauss (pivot search + exchange) vs the Table 2 variant
    ("about twice as long"). *)

(** {1 Strong scaling (ours)} *)

type scaling_row = {
  sc_procs : int;
  sc_time : float;
  sc_speedup : float;  (** vs the single-processor run *)
  sc_efficiency : float;
}

val scaling : ?quick:bool -> ?jobs:int -> unit -> scaling_row list
(** Fixed-size shortest paths across growing square tori — the classic
    strong-scaling view the paper's tables imply but never plot. *)

(** {1 Fault injection & degradation (ours)} *)

type degradation_row = {
  dg_app : string;  (** "gauss 2x2" / "shpaths 2x2" *)
  dg_drop : float;  (** injected per-copy message-loss probability *)
  dg_time : float;  (** simulated makespan under the reliable transport *)
  dg_overhead : float;  (** [dg_time / fault-free time - 1] *)
  dg_dropped : int;  (** message copies lost by the injected network *)
  dg_retried : int;  (** retransmissions charged by the reliable transport *)
}

val degradation : ?quick:bool -> ?jobs:int -> unit -> degradation_row list
(** Graceful degradation under message loss: the corpus workloads (Gauss on
    a mesh, shortest paths on a torus) run under the {!Machine.run}
    [Reliable] transport at drop rates 0 / 0.05 / 0.1 / 0.2.  The 0-rate
    cell is the plain fault-free run (no plan installed), so the overhead
    column reads straight off it.  Values returned by every cell are the
    fault-free values — only the simulated clock degrades. *)

(** {1 Ablations of the design choices} *)

type ablation = {
  ab_name : string;
  ab_baseline : string;
  ab_time_baseline : float;
  ab_variant : string;
  ab_time_variant : float;
}

val ablations : ?quick:bool -> ?jobs:int -> unit -> ablation list

(** {1 Collective algorithm crossovers (ours)} *)

type coll_cell = {
  cc_kind : string;  (** "bcast" / "allreduce" / "allgather" / "scan" / "barrier" *)
  cc_topo : string;  (** "mesh4x4" / "mesh8x8" / "torus4x4" *)
  cc_p : int;
  cc_bytes : int;
  cc_algs : (string * float) list;  (** makespan under each forced algorithm *)
  cc_auto : float;  (** makespan under [Auto] selection *)
  cc_chosen : string;  (** the algorithm [Auto] picked *)
}

type coll_app_row = {
  ca_app : string;
  ca_legacy : float;  (** makespan under the seed's binomial trees *)
  ca_auto : float;  (** makespan under [Auto] selection *)
}

val collectives_crossover :
  ?jobs:int -> unit -> coll_cell list * coll_app_row list
(** Map the collective-algorithm cost surfaces: one collective per run,
    each (kind, topology, bytes) grid point simulated once per candidate
    algorithm plus once under [Auto] — the data behind the selection
    layer's crossovers (e.g. tree -> pipelined broadcast as payloads grow).
    The second list compares two full applications end-to-end, legacy
    trees vs [Auto].  Cells are deterministic simulated makespans and do
    not shrink under any quick/quota setting. *)

(** {1 Shared helpers} *)

val time_of :
  ?collectives:Coll_alg.mode ->
  Cost_model.profile ->
  Topology.t ->
  (Machine.ctx -> 'a) ->
  float
(** Makespan of one SPMD run under a language profile.  [collectives]
    (default [Legacy]) is handed to {!Machine.run}. *)
