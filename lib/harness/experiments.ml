let seed = 1996

(* Shard count for the simulated machine inside every cell (repro's
   --sim-domains).  Results are bit-identical for any value (see
   [Machine.run]); shards borrow workers from the same [Pool] crew the
   cell batches use, so cells x shards can never oversubscribe the host. *)
let sim_domains = ref 1

let time_of ?collectives profile topology f =
  (Machine.run ?collectives ~sim_domains:!sim_domains
     ~cost:(Cost_model.make profile) ~topology f)
    .Machine.time

(* Every table/figure/claim below is regenerated from a batch of
   *independent* simulation cells: each thunk runs one self-contained
   [Machine.run] (no mutable state is shared between cells — topologies are
   immutable and workloads are pure hashes), so batches can be dispatched to
   a multicore pool.  Results come back in submission order, making the
   output bit-identical whatever [jobs] is. *)
let run_cells ~jobs thunks = Array.of_list (Pool.run ~jobs thunks)

(* ------------------------------------------------------------------ *)
(* Table 1: shortest paths on sqrtp x sqrtp tori, n ~ 200              *)

type sp_row = {
  sqrtp : int;
  sp_n : int;
  sp_skil : float;
  sp_dpfl : float option;
  sp_parix_old : float option;
}

let paper_table1 =
  [
    (2, Some 1524.22, 234.29, Some 259.49);
    (3, None, 107.69, None);
    (4, Some 387.23, 60.78, Some 65.79);
    (5, None, 39.56, None);
    (6, Some 185.13, 29.70, Some 31.53);
    (7, None, 21.83, None);
    (8, Some 98.76, 16.34, Some 16.92);
  ]

let sp_run ctx ~n =
  let weight = Workload.graph_weight ~seed ~n ~max_weight:100 in
  let a = Shortest_paths.run ctx ~n ~weight in
  Skeletons.destroy ctx a

let table1 ?(quick = false) ?(jobs = 1) () =
  let base_n = if quick then 36 else 200 in
  let sqrtps = if quick then [ 2; 3; 4 ] else [ 2; 3; 4; 5; 6; 7; 8 ] in
  let comparison_points = if quick then [ 2; 4 ] else [ 2; 4; 6; 8 ] in
  let rows =
    List.map
      (fun q ->
        let n = Shortest_paths.adjusted_n ~n:base_n ~q in
        (q, n, List.mem q comparison_points))
      sqrtps
  in
  let thunks =
    List.concat_map
      (fun (q, n, measured) ->
        let torus = Topology.torus2d ~width:q ~height:q () in
        let naive =
          Topology.torus2d ~embedding_optimized:false ~width:q ~height:q ()
        in
        [
          (fun () ->
            Some (time_of Cost_model.skil torus (fun ctx -> sp_run ctx ~n)));
          (fun () ->
            if measured then
              Some (time_of Cost_model.dpfl torus (fun ctx -> sp_run ctx ~n))
            else None);
          (fun () ->
            if measured then
              Some
                (time_of Cost_model.parix_c_old naive (fun ctx ->
                     ignore
                       (Parix_c.shortest_paths ctx ~n
                          ~weight:
                            (Workload.graph_weight ~seed ~n ~max_weight:100))))
            else None);
        ])
      rows
  in
  let res = run_cells ~jobs thunks in
  List.mapi
    (fun i (q, n, _) ->
      {
        sqrtp = q;
        sp_n = n;
        sp_skil = Option.get res.(3 * i);
        sp_dpfl = res.((3 * i) + 1);
        sp_parix_old = res.((3 * i) + 2);
      })
    rows

(* ------------------------------------------------------------------ *)
(* Table 2: Gaussian elimination without pivot search                  *)

type gauss_cell = {
  g_n : int;
  g_skil : float;
  g_dpfl : float option;
  g_parix : float;
}

type gauss_row = { grid : int * int; cells : gauss_cell list }

let paper_table2 =
  [
    ( (2, 2),
      [
        (64, 2.06, Some 6.17, 2.40);
        (128, 14.77, Some 6.52, 2.51);
        (256, 113.29, Some 6.65, 2.60);
        (384, 377.62, Some 6.69, 2.64);
      ] );
    ( (4, 4),
      [
        (64, 0.91, Some 4.82, 1.57);
        (128, 4.83, Some 5.73, 1.73);
        (256, 32.06, Some 6.22, 2.02);
        (384, 102.16, Some 6.40, 2.20);
        (512, 236.13, Some 6.48, 2.31);
        (640, 453.86, None, 2.38);
      ] );
    ( (8, 4),
      [
        (64, 0.85, Some 3.87, 1.25);
        (128, 3.49, Some 4.88, 1.24);
        (256, 19.42, Some 5.62, 1.45);
        (384, 58.03, Some 5.96, 1.65);
        (512, 129.89, Some 6.12, 1.78);
        (640, 244.77, Some 6.24, 1.90);
      ] );
    ( (8, 8),
      [
        (64, 0.85, Some 3.48, 1.04);
        (128, 2.94, Some 4.17, 0.94);
        (256, 13.57, Some 4.78, 1.03);
        (384, 37.03, Some 5.21, 1.15);
        (512, 78.71, Some 5.47, 1.26);
        (640, 143.28, Some 5.68, 1.37);
      ] );
  ]

let gauss_run ctx ~n =
  let matrix = Workload.gauss_matrix ~seed ~n in
  let b = Gauss.run ctx ~n ~matrix in
  Skeletons.destroy ctx b

(* One representative Table-2 cell re-run with structured tracing on: the
   unit behind --trace-out/--profile in bench/main.exe and repro.exe.
   Tracing never alters simulated clocks, so the returned makespan equals
   the table's corresponding (untraced) cell. *)
let traced_gauss_cell ?(quick = false) () =
  let n = if quick then 32 else 64 in
  let w, h = (2, 2) in
  ( n,
    (w, h),
    Machine.run ~trace:true ~sim_domains:!sim_domains
      ~cost:(Cost_model.make Cost_model.skil)
      ~topology:(Topology.mesh ~width:w ~height:h)
      (fun ctx -> gauss_run ctx ~n) )

(* The paper's measurement grid: the 2x2 network stops at n = 384 ("larger
   problem sizes could only be fitted into larger networks" — two n x (n+1)
   float arrays per 4 processors exceed 1 MB/node beyond that), and no DPFL
   figure is reported for (4x4, n = 640). *)
let full_cells =
  [
    ((2, 2), [ 64; 128; 256; 384 ]);
    ((4, 4), [ 64; 128; 256; 384; 512; 640 ]);
    ((8, 4), [ 64; 128; 256; 384; 512; 640 ]);
    ((8, 8), [ 64; 128; 256; 384; 512; 640 ]);
  ]

let dpfl_measured (w, h) n = not ((w, h) = (4, 4) && n = 640)

let quick_cells = [ ((2, 2), [ 32; 64 ]); ((4, 2), [ 32; 64 ]) ]

let table2 ?(quick = false) ?(jobs = 1) () =
  let grid_spec = if quick then quick_cells else full_cells in
  let flat_cells =
    List.concat_map
      (fun ((w, h), ns) -> List.map (fun n -> ((w, h), n)) ns)
      grid_spec
  in
  let thunks =
    List.concat_map
      (fun ((w, h), n) ->
        let topo = Topology.mesh ~width:w ~height:h in
        [
          (fun () ->
            Some (time_of Cost_model.skil topo (fun ctx -> gauss_run ctx ~n)));
          (fun () ->
            if dpfl_measured (w, h) n then
              Some (time_of Cost_model.dpfl topo (fun ctx -> gauss_run ctx ~n))
            else None);
          (fun () ->
            Some
              (time_of Cost_model.parix_c topo (fun ctx ->
                   ignore
                     (Parix_c.gauss ctx ~n
                        ~matrix:(Workload.gauss_matrix ~seed ~n)))));
        ])
      flat_cells
  in
  let res = run_cells ~jobs thunks in
  let celli = ref 0 in
  List.map
    (fun (grid, ns) ->
      let cells =
        List.map
          (fun n ->
            let i = !celli in
            incr celli;
            {
              g_n = n;
              g_skil = Option.get res.(3 * i);
              g_dpfl = res.((3 * i) + 1);
              g_parix = Option.get res.((3 * i) + 2);
            })
          ns
      in
      { grid; cells })
    grid_spec

let figure1 rows =
  let ns =
    List.sort_uniq compare
      (List.concat_map (fun r -> List.map (fun c -> c.g_n) r.cells) rows)
  in
  let series_for f =
    List.filter_map
      (fun n ->
        let points =
          List.filter_map
            (fun r ->
              let w, h = r.grid in
              let p = float_of_int (w * h) in
              match List.find_opt (fun c -> c.g_n = n) r.cells with
              | Some c -> Option.map (fun y -> (p, y)) (f c)
              | None -> None)
            rows
        in
        if points = [] then None
        else Some { Series.label = Printf.sprintf "n = %d" n; points })
      ns
  in
  let speedups =
    series_for (fun c -> Option.map (fun d -> d /. c.g_skil) c.g_dpfl)
  in
  let slowdowns = series_for (fun c -> Some (c.g_skil /. c.g_parix)) in
  (speedups, slowdowns)

(* ------------------------------------------------------------------ *)
(* Claim 5.1: equally optimized matmul, Skil vs C                      *)

type claim51_row = { m_n : int; m_skil : float; m_parix : float }

let claim51 ?(quick = false) ?(jobs = 1) () =
  let cases =
    if quick then [ (2, 32) ] else [ (4, 128); (4, 256); (8, 256); (8, 512) ]
  in
  let thunks =
    List.concat_map
      (fun (q, n) ->
        let torus = Topology.torus2d ~width:q ~height:q () in
        let af = Workload.float_matrix ~seed
        and bf = Workload.float_matrix ~seed:(seed + 9) in
        [
          (fun () ->
            time_of Cost_model.skil torus (fun ctx ->
                Skeletons.destroy ctx (Matmul.run ctx ~n ~a:af ~b:bf)));
          (fun () ->
            time_of Cost_model.parix_c torus (fun ctx ->
                ignore (Parix_c.matmul ctx ~n ~a:af ~b:bf)));
        ])
      cases
  in
  let res = run_cells ~jobs thunks in
  List.mapi
    (fun i (_q, n) ->
      { m_n = n; m_skil = res.(2 * i); m_parix = res.((2 * i) + 1) })
    cases

(* ------------------------------------------------------------------ *)
(* Claim 5.2: complete Gauss vs the no-pivot-search version            *)

type claim52_row = {
  c2_grid : int * int;
  c2_n : int;
  c2_partial : float;
  c2_full : float;
}

let claim52 ?(quick = false) ?(jobs = 1) () =
  let cases =
    if quick then [ ((2, 2), 32) ]
    else [ ((4, 4), 128); ((4, 4), 256); ((8, 4), 256); ((8, 8), 384) ]
  in
  let thunks =
    List.concat_map
      (fun ((w, h), n) ->
        let topo = Topology.mesh ~width:w ~height:h in
        let matrix = Workload.gauss_matrix_wild ~seed ~n in
        let run pivoting ctx =
          Skeletons.destroy ctx (Gauss.run ~pivoting ctx ~n ~matrix)
        in
        [
          (fun () -> time_of Cost_model.skil topo (run Gauss.No_pivot_search));
          (fun () -> time_of Cost_model.skil topo (run Gauss.Partial));
        ])
      cases
  in
  let res = run_cells ~jobs thunks in
  List.mapi
    (fun i ((w, h), n) ->
      {
        c2_grid = (w, h);
        c2_n = n;
        c2_partial = res.(2 * i);
        c2_full = res.((2 * i) + 1);
      })
    cases

(* ------------------------------------------------------------------ *)
(* Strong scaling                                                      *)

type scaling_row = {
  sc_procs : int;
  sc_time : float;
  sc_speedup : float;
  sc_efficiency : float;
}

let scaling ?(quick = false) ?(jobs = 1) () =
  let n = if quick then 32 else 128 in
  let weight = Workload.graph_weight ~seed ~n ~max_weight:100 in
  let qs = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let thunks =
    List.map
      (fun q ->
        let torus = Topology.torus2d ~width:q ~height:q () in
        fun () ->
          time_of Cost_model.skil torus (fun ctx ->
              Skeletons.destroy ctx (Shortest_paths.run ctx ~n ~weight)))
      qs
  in
  let res = run_cells ~jobs thunks in
  let base = res.(0) (* qs always starts at q = 1 *) in
  List.mapi
    (fun i q ->
      let t = res.(i) in
      let p = q * q in
      {
        sc_procs = p;
        sc_time = t;
        sc_speedup = base /. t;
        sc_efficiency = base /. t /. float_of_int p;
      })
    qs

(* ------------------------------------------------------------------ *)
(* Fault-injection degradation: reliable transport under message loss  *)

type degradation_row = {
  dg_app : string;
  dg_drop : float;
  dg_time : float;
  dg_overhead : float;
  dg_dropped : int;
  dg_retried : int;
}

let drop_rates = [ 0.0; 0.05; 0.1; 0.2 ]

let degradation ?(quick = false) ?(jobs = 1) () =
  let gauss_n = if quick then 32 else 64 in
  let sp_n = if quick then 16 else 48 in
  let sp_weight = Workload.graph_weight ~seed ~n:sp_n ~max_weight:100 in
  let mesh = Topology.mesh ~width:2 ~height:2 in
  let torus = Topology.torus2d ~width:2 ~height:2 () in
  let apps =
    [
      ( "gauss 2x2",
        mesh,
        fun ctx -> gauss_run ctx ~n:gauss_n );
      ( "shpaths 2x2",
        torus,
        fun ctx ->
          Skeletons.destroy ctx (Shortest_paths.run ctx ~n:sp_n ~weight:sp_weight)
      );
    ]
  in
  let cell topo f rate () =
    let faults =
      if rate = 0.0 then None
      else
        Some
          {
            (Fault.none ~seed:1) with
            Fault.link = { Fault.no_link_faults with Fault.drop = rate };
          }
    in
    let r =
      Machine.run ?faults ~reliable:(rate > 0.0) ~sim_domains:!sim_domains
        ~cost:(Cost_model.make Cost_model.skil)
        ~topology:topo f
    in
    ( r.Machine.time,
      Stats.total_dropped r.Machine.stats,
      Stats.total_retried r.Machine.stats )
  in
  let thunks =
    List.concat_map
      (fun (_, topo, f) -> List.map (cell topo f) drop_rates)
      apps
  in
  let res = run_cells ~jobs thunks in
  let nrates = List.length drop_rates in
  List.concat
    (List.mapi
       (fun ai (name, _, _) ->
         let base, _, _ = res.(ai * nrates) in
         List.mapi
           (fun ri rate ->
             let t, dropped, retried = res.((ai * nrates) + ri) in
             {
               dg_app = name;
               dg_drop = rate;
               dg_time = t;
               dg_overhead = (t /. base) -. 1.0;
               dg_dropped = dropped;
               dg_retried = retried;
             })
           drop_rates)
       apps)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

type ablation = {
  ab_name : string;
  ab_baseline : string;
  ab_time_baseline : float;
  ab_variant : string;
  ab_time_variant : float;
}

let ablations ?(quick = false) ?(jobs = 1) () =
  (* communication-sensitive configuration: small partitions on a larger
     grid, so topology distance and overlap actually show up *)
  let q = if quick then 4 else 8 in
  let n = if quick then 16 else 64 in
  let weight = Workload.graph_weight ~seed ~n ~max_weight:100 in
  let torus = Topology.torus2d ~width:q ~height:q () in
  let sp profile topo () =
    time_of profile topo (fun ctx ->
        Skeletons.destroy ctx (Shortest_paths.run ctx ~n ~weight))
  in
  let sync_skil = { Cost_model.skil with Cost_model.sync_comm = true } in
  let gauss_n = if quick then 32 else 128 in
  let mesh = Topology.mesh ~width:q ~height:(if quick then 2 else 4) in
  let gauss_time profile () =
    time_of profile mesh (fun ctx -> gauss_run ctx ~n:gauss_n)
  in
  (* A Gauss-like triangular sweep (iteration k touches only rows >= k):
     with the paper's block distribution the live rows concentrate on the
     last processors, while the future-work cyclic layout keeps every sweep
     balanced.  Real elimination work is charged per live local row. *)
  let triangular scheme () =
    let nt = if quick then 48 else 192 in
    let m = nt + 1 in
    time_of Cost_model.skil mesh (fun ctx ->
        let a =
          Skeletons.create ctx ~scheme ~gsize:[| nt; m |]
            ~distr:Darray.Default (fun _ -> 0.0)
        in
        let me = Machine.self ctx in
        let tag = Machine.tags ctx 1 in
        let reg = (Darray.part a ~rank:me).Darray.region in
        for k = 0 to nt - 1 do
          let live = ref 0 in
          Distribution.region_iter reg (fun ix ->
              if ix.(1) = 0 && ix.(0) >= k then incr live);
          Machine.charge ctx Cost_model.Mapped ~ops:(!live * m)
            ~base:Calibration.gauss_elem_op;
          (* the pivot broadcast synchronizes every iteration *)
          Collectives.barrier ctx ~tag
        done;
        Skeletons.destroy ctx a)
  in
  let res =
    run_cells ~jobs
      [
        triangular Distribution.Cyclic;
        triangular Distribution.Block;
        sp Cost_model.skil torus;
        sp sync_skil torus;
        gauss_time Cost_model.skil;
        gauss_time Cost_model.dpfl;
      ]
  in
  [
    {
      ab_name = "cyclic distribution (triangular sweep)";
      ab_baseline = "block-cyclic rows (extension)";
      ab_time_baseline = res.(0);
      ab_variant = "block rows (paper)";
      ab_time_variant = res.(1);
    };
    {
      ab_name = "communication overlap (shpaths)";
      ab_baseline = "asynchronous sends";
      ab_time_baseline = res.(2);
      ab_variant = "synchronous sends";
      ab_time_variant = res.(3);
    };
    {
      ab_name = "translation by instantiation (gauss)";
      ab_baseline = "instantiated (Skil)";
      ab_time_baseline = res.(4);
      ab_variant = "closure-based (DPFL model)";
      ab_time_variant = res.(5);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Collective algorithm crossovers (ours)                              *)

type coll_cell = {
  cc_kind : string;
  cc_topo : string;
  cc_p : int;
  cc_bytes : int;
  cc_algs : (string * float) list;
  cc_auto : float;
  cc_chosen : string;
}

type coll_app_row = { ca_app : string; ca_legacy : float; ca_auto : float }

(* One collective per run: tiny deterministic simulations whose makespans
   map the (algorithm, payload) cost surfaces the selection layer predicts
   over.  Independent of --quick on purpose — CI re-checks the recorded
   values under the quick quota, and a quota must not change them. *)
let coll_body kind ~bytes ctx =
  let tag = Machine.tags ctx 1 in
  match kind with
  | `Bcast -> ignore (Collectives.bcast ctx ~tag ~root:0 ~bytes 0)
  | `Allreduce ->
      ignore (Collectives.allreduce ctx ~tag ~bytes ( + ) (Machine.self ctx))
  | `Allgather ->
      ignore (Collectives.allgather ctx ~tag ~bytes (Machine.self ctx))
  | `Scan ->
      ignore (Collectives.scan ctx ~tag ~bytes ( + ) (Machine.self ctx))
  | `Barrier -> Collectives.barrier ctx ~tag

(* "kind[alg]" -> "alg" (the Stats label of the single collective run) *)
let chosen_of stats =
  match Stats.coll_alg_totals stats with
  | (label, _) :: _ -> (
      match (String.index_opt label '[', String.index_opt label ']') with
      | Some l, Some r when r > l + 1 -> String.sub label (l + 1) (r - l - 1)
      | _ -> label)
  | [] -> "?"

let coll_grid =
  let sizes = [ 256; 1024; 4096; 16384; 65536 ] in
  [
    ("bcast", `Bcast, "mesh4x4", `Mesh44,
     [ ("tree", Coll_alg.Tree); ("pipeline", Coll_alg.Pipeline);
       ("vandegeijn", Coll_alg.Vandegeijn) ], sizes);
    ("bcast", `Bcast, "mesh8x8", `Mesh88,
     [ ("tree", Coll_alg.Tree); ("pipeline", Coll_alg.Pipeline);
       ("vandegeijn", Coll_alg.Vandegeijn) ], sizes);
    ("allreduce", `Allreduce, "torus4x4", `Torus44,
     [ ("tree", Coll_alg.Tree); ("recdouble", Coll_alg.Recdouble);
       ("ring", Coll_alg.Ring) ], sizes);
    ("allreduce", `Allreduce, "mesh8x8", `Mesh88,
     [ ("tree", Coll_alg.Tree); ("recdouble", Coll_alg.Recdouble);
       ("ring", Coll_alg.Ring) ], sizes);
    ("allgather", `Allgather, "mesh4x4", `Mesh44,
     [ ("recdouble", Coll_alg.Recdouble); ("ring", Coll_alg.Ring) ],
     [ 64; 1024; 8192 ]);
    ("scan", `Scan, "mesh4x4", `Mesh44,
     [ ("tree", Coll_alg.Tree); ("linear", Coll_alg.Linear) ], [ 8; 4096 ]);
    ("barrier", `Barrier, "mesh8x8", `Mesh88,
     [ ("tree", Coll_alg.Tree); ("dissemination", Coll_alg.Dissemination) ],
     [ 0 ]);
  ]

let collectives_crossover ?(jobs = 1) () =
  let topo_of = function
    | `Mesh44 -> Topology.mesh ~width:4 ~height:4
    | `Mesh88 -> Topology.mesh ~width:8 ~height:8
    | `Torus44 -> Topology.torus2d ~width:4 ~height:4 ()
  in
  let cost = Cost_model.make Cost_model.skil in
  let cells =
    List.concat_map
      (fun (kname, kind, tname, topo_tag, algs, sizes) ->
        let topology = topo_of topo_tag in
        List.map
          (fun bytes ->
            let thunks =
              List.map
                (fun (_, a) () ->
                  ( (Machine.run ~collectives:(Coll_alg.Force a) ~cost
                       ~sim_domains:!sim_domains ~topology
                       (coll_body kind ~bytes))
                      .Machine.time,
                    "" ))
                algs
              @ [
                  (fun () ->
                    let r =
                      Machine.run ~collectives:Coll_alg.Auto ~cost
                        ~sim_domains:!sim_domains ~topology
                        (coll_body kind ~bytes)
                    in
                    (r.Machine.time, chosen_of r.Machine.stats));
                ]
            in
            let res = run_cells ~jobs thunks in
            let nalg = List.length algs in
            {
              cc_kind = kname;
              cc_topo = tname;
              cc_p = Topology.nprocs topology;
              cc_bytes = bytes;
              cc_algs =
                List.mapi (fun i (n, _) -> (n, fst res.(i))) algs;
              cc_auto = fst res.(nalg);
              cc_chosen = snd res.(nalg);
            })
          sizes)
      coll_grid
  in
  (* end-to-end: the paper's applications, legacy trees vs auto-selected
     algorithms.  Plain gauss is communication-matched (its pivot-row
     broadcasts sit below every crossover, so auto picks the trees and
     ties); pivoting gauss hits the small-allreduce recdouble win every
     iteration; Cannon's gathered result hits the allgather-vs-
     gather+broadcast win on a 32 KiB payload. *)
  let mesh44 = Topology.mesh ~width:4 ~height:4 in
  let torus44 = Topology.torus2d ~width:4 ~height:4 () in
  let gauss ctx =
    let n = 64 in
    Skeletons.destroy ctx
      (Gauss.run ctx ~n ~matrix:(Workload.gauss_matrix ~seed ~n))
  in
  let gauss_pivot ctx =
    let n = 64 in
    Skeletons.destroy ctx
      (Gauss.run ~pivoting:Gauss.Partial ctx ~n
         ~matrix:(Workload.gauss_matrix_wild ~seed ~n))
  in
  let matmul_global ctx =
    let n = 64 in
    let a = Workload.float_matrix ~seed
    and b = Workload.float_matrix ~seed:(seed + 9) in
    ignore (Parix_c.matmul_global ctx ~n ~a ~b)
  in
  let apps =
    [
      ("gauss-mesh4x4-n64", mesh44, Cost_model.skil, gauss);
      ("gauss-pivot-mesh4x4-n64", mesh44, Cost_model.skil, gauss_pivot);
      ("matmul-global-torus4x4-n64", torus44, Cost_model.parix_c,
       matmul_global);
    ]
  in
  let app_thunks =
    List.concat_map
      (fun (_, topology, profile, f) ->
        [
          (fun () -> (time_of profile topology f, ""));
          (fun () ->
            (time_of ~collectives:Coll_alg.Auto profile topology f, ""));
        ])
      apps
  in
  let app_res = run_cells ~jobs app_thunks in
  let app_rows =
    List.mapi
      (fun i (name, _, _, _) ->
        {
          ca_app = name;
          ca_legacy = fst app_res.(2 * i);
          ca_auto = fst app_res.((2 * i) + 1);
        })
      apps
  in
  (cells, app_rows)
