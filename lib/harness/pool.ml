let default_jobs () = Domain.recommended_domain_count ()

(* One persistent crew of worker domains serving batches of indexed tasks.
   A batch is a closure [run : int -> unit] plus a count; workers (and the
   submitting domain) claim indices under the mutex and execute them outside
   it.  [run] is required to never raise: the submitter wraps user code and
   stores outcomes per index. *)

type crew = {
  size : int; (* worker domains, excluding the caller *)
  mutex : Mutex.t;
  work : Condition.t; (* new batch available / shutdown *)
  idle : Condition.t; (* batch fully drained *)
  mutable batch : (int -> unit) option;
  mutable batch_n : int;
  mutable next : int; (* next unclaimed index *)
  mutable active : int; (* claimed but not yet finished *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let crew_finish_item c =
  Mutex.lock c.mutex;
  c.active <- c.active - 1;
  if c.active = 0 && c.next >= c.batch_n then begin
    c.batch <- None;
    Condition.broadcast c.idle
  end;
  Mutex.unlock c.mutex

(* Claim and run items of the current batch until it drains; caller holds the
   mutex on entry and on exit. *)
let crew_drain c =
  let continue_ = ref true in
  while !continue_ do
    match c.batch with
    | Some run when c.next < c.batch_n ->
        let i = c.next in
        c.next <- c.next + 1;
        c.active <- c.active + 1;
        Mutex.unlock c.mutex;
        run i;
        crew_finish_item c;
        Mutex.lock c.mutex
    | Some _ | None -> continue_ := false
  done

let worker c () =
  Mutex.lock c.mutex;
  let rec loop () =
    crew_drain c;
    if not c.stop then begin
      Condition.wait c.work c.mutex;
      loop ()
    end
  in
  loop ();
  Mutex.unlock c.mutex

let spawn_crew size =
  let c =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      batch_n = 0;
      next = 0;
      active = 0;
      stop = false;
      domains = [];
    }
  in
  c.domains <- List.init size (fun _ -> Domain.spawn (worker c));
  c

let crew_submit c run n =
  Mutex.lock c.mutex;
  assert (c.batch = None);
  c.batch <- Some run;
  c.batch_n <- n;
  c.next <- 0;
  c.active <- 0;
  Condition.broadcast c.work;
  (* the submitting domain works too, then waits for stragglers *)
  crew_drain c;
  while c.batch <> None do
    Condition.wait c.idle c.mutex
  done;
  Mutex.unlock c.mutex

let crew_shutdown c =
  Mutex.lock c.mutex;
  c.stop <- true;
  Condition.broadcast c.work;
  Mutex.unlock c.mutex;
  List.iter Domain.join c.domains;
  c.domains <- []

(* The cached crew, resized lazily when a different [jobs] is requested.
   Guarded by a host-level mutex: batches themselves are submitted one at a
   time (the harness is sequential between tables), but tests may exercise
   map from several places. *)
let cached : crew option ref = ref None
let cached_mutex = Mutex.create ()

let with_crew ~workers f =
  Mutex.lock cached_mutex;
  let c =
    match !cached with
    | Some c when c.size = workers -> c
    | Some c ->
        crew_shutdown c;
        let c = spawn_crew workers in
        cached := Some c;
        c
    | None ->
        let c = spawn_crew workers in
        cached := Some c;
        c
  in
  Fun.protect ~finally:(fun () -> Mutex.unlock cached_mutex) (fun () -> f c)

let shutdown () =
  Mutex.lock cached_mutex;
  (match !cached with Some c -> crew_shutdown c | None -> ());
  cached := None;
  Mutex.unlock cached_mutex

type 'b outcome =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let collect outcomes =
  (* first failure in submission order wins, as in a sequential run *)
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Pending -> ())
    outcomes;
  Array.to_list
    (Array.map
       (function Done v -> v | Pending | Raised _ -> assert false)
       outcomes)

let map ?(jobs = default_jobs ()) f xs =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match xs with
  | [] -> []
  | xs when jobs = 1 || List.compare_length_with xs 1 <= 0 -> List.map f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let outcomes = Array.make n Pending in
      let run i =
        outcomes.(i) <-
          (match f items.(i) with
          | v -> Done v
          | exception e -> Raised (e, Printexc.get_raw_backtrace ()))
      in
      let workers = min (jobs - 1) (n - 1) in
      with_crew ~workers (fun c -> crew_submit c run n);
      collect outcomes

let run ?jobs thunks = map ?jobs (fun f -> f ()) thunks
