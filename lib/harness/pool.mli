(** Fixed-size multicore work pool for independent simulation cells.

    Every experiment in the reproduction pipeline is a set of *independent*
    deterministic simulations ({!Machine.run} shares no mutable state between
    calls), so they can be farmed out to OCaml 5 domains freely: the results
    are bit-identical to a sequential run, only the wall clock changes.

    The pool is a plain [Domain] + [Mutex]/[Condition] work queue — no
    external dependencies.  Worker domains persist across batches, so the
    spawn cost is paid once per process, not once per table. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the whole machine. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    domains (the calling domain participates, so [jobs = 1] runs plain
    sequential code on the current domain and spawns nothing).  Results are
    returned in submission order regardless of completion order.

    If one or more applications raise, the exception of the *lowest-indexed*
    failing element is re-raised (with its backtrace) after the whole batch
    has drained — the same exception a sequential [List.map] would surface
    first, so behaviour is independent of [jobs]. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks] = [map ~jobs (fun f -> f ()) thunks]. *)

val shutdown : unit -> unit
(** Join the cached worker domains (idempotent).  Subsequent calls to {!map}
    respawn them on demand; mainly for tests and clean process exit. *)
