(* Rendering of the reproduced tables and figures (shared by bench/main
   and bin/repro). *)

let fmt = Table.fmt_time
let ratio = Table.fmt_ratio
let opt = Table.fmt_opt

(* ------------------------------------------------------------------ *)

let print_table1 ?(jobs = 1) ~quick () =
  print_endline "== Table 1: shortest paths in graphs (n ~ 200) ==";
  if quick then
    print_endline "   (quick mode: n ~ 36, sqrt p in {2,3,4} — shapes only)";
  let rows = Experiments.table1 ~quick ~jobs () in
  let paper q =
    List.find_opt (fun (q', _, _, _) -> q' = q) Experiments.paper_table1
  in
  let body =
    List.map
      (fun r ->
        let q = r.Experiments.sqrtp in
        let dpfl_ratio =
          Option.map (fun d -> d /. r.Experiments.sp_skil) r.Experiments.sp_dpfl
        in
        let oldc_ratio =
          Option.map
            (fun c -> r.Experiments.sp_skil /. c)
            r.Experiments.sp_parix_old
        in
        let p_skil, p_dpfl_ratio, p_oldc_ratio =
          match paper q with
          | Some (_, dpfl, skil, oldc) when not quick ->
              ( fmt skil,
                opt (fun d -> ratio (d /. skil)) dpfl,
                opt (fun c -> ratio (skil /. c)) oldc )
          | _ -> ("-", "-", "-")
        in
        [
          string_of_int q ^ "x" ^ string_of_int q;
          string_of_int r.Experiments.sp_n;
          fmt r.Experiments.sp_skil;
          p_skil;
          opt ratio dpfl_ratio;
          p_dpfl_ratio;
          opt ratio oldc_ratio;
          p_oldc_ratio;
        ])
      rows
  in
  print_string
    (Table.render
       ~headers:
         [
           "procs"; "n"; "Skil(s)"; "[paper]"; "DPFL/Skil"; "[paper]";
           "Skil/oldC"; "[paper]";
         ]
       body);
  print_newline ()

(* ------------------------------------------------------------------ *)

let paper_gauss_cell grid n =
  match List.assoc_opt grid Experiments.paper_table2 with
  | None -> None
  | Some cells -> List.find_opt (fun (n', _, _, _) -> n' = n) cells

let print_table2_rows rows ~quick =
  List.iter
    (fun row ->
      let w, h = row.Experiments.grid in
      Printf.printf "-- network %dx%d (%d processors) --\n" w h (w * h);
      let body =
        List.map
          (fun c ->
            let skil = c.Experiments.g_skil in
            let dpfl_ratio =
              Option.map (fun d -> d /. skil) c.Experiments.g_dpfl
            in
            let p =
              if quick then None else paper_gauss_cell (w, h) c.Experiments.g_n
            in
            [
              string_of_int c.Experiments.g_n;
              fmt skil;
              opt (fun (_, s, _, _) -> fmt s) p;
              opt ratio dpfl_ratio;
              opt (fun (_, _, d, _) -> opt ratio d) p;
              ratio (skil /. c.Experiments.g_parix);
              opt (fun (_, _, _, r) -> ratio r) p;
            ])
          row.Experiments.cells
      in
      print_string
        (Table.render
           ~headers:
             [
               "n"; "Skil(s)"; "[paper]"; "DPFL/Skil"; "[paper]"; "Skil/C";
               "[paper]";
             ]
           body))
    rows

let print_table2 rows ~quick =
  print_endline "== Table 2: Gaussian elimination (no pivot search) ==";
  if quick then print_endline "   (quick mode: reduced sizes — shapes only)";
  print_table2_rows rows ~quick;
  print_newline ()

let print_figure1 rows =
  print_endline
    "== Figure 1: Skil vs DPFL (left) and Skil vs Parix-C (right) ==";
  let speedups, slowdowns = Experiments.figure1 rows in
  print_string
    (Series.plot ~title:"Figure 1 (left): relative speed-ups Skil vs DPFL"
       ~xlabel:"processors" ~ylabel:"speed-up" speedups);
  print_newline ();
  print_string
    (Series.plot ~title:"Figure 1 (right): relative slow-downs Skil vs C"
       ~xlabel:"processors" ~ylabel:"slow-down" slowdowns);
  print_newline ();
  print_endline "-- figure data (csv) --";
  print_endline "(left)";
  print_string (Series.to_csv speedups);
  print_endline "(right)";
  print_string (Series.to_csv slowdowns);
  print_newline ()

(* ------------------------------------------------------------------ *)

let print_claim51 ?(jobs = 1) ~quick () =
  print_endline
    "== Claim (section 5.1): equally optimized matmul, Skil vs Parix-C ==";
  print_endline
    "   paper: \"Skil times around 20% slower than direct C times\"";
  let rows = Experiments.claim51 ~quick ~jobs () in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.Experiments.m_n;
          fmt r.Experiments.m_skil;
          fmt r.Experiments.m_parix;
          ratio (r.Experiments.m_skil /. r.Experiments.m_parix);
        ])
      rows
  in
  print_string
    (Table.render ~headers:[ "n"; "Skil(s)"; "C(s)"; "Skil/C" ] body);
  print_newline ()

let print_claim52 ?(jobs = 1) ~quick () =
  print_endline
    "== Claim (section 5.2): complete gauss vs no-pivot-search version ==";
  print_endline "   paper: \"run-times about twice as long\"";
  let rows = Experiments.claim52 ~quick ~jobs () in
  let body =
    List.map
      (fun r ->
        let w, h = r.Experiments.c2_grid in
        [
          Printf.sprintf "%dx%d" w h;
          string_of_int r.Experiments.c2_n;
          fmt r.Experiments.c2_partial;
          fmt r.Experiments.c2_full;
          ratio (r.Experiments.c2_full /. r.Experiments.c2_partial);
        ])
      rows
  in
  print_string
    (Table.render
       ~headers:[ "procs"; "n"; "partial(s)"; "full(s)"; "full/partial" ]
       body);
  print_newline ()

let print_ablations ?(jobs = 1) ~quick () =
  print_endline "== Ablations: design choices called out in the paper ==";
  let rows = Experiments.ablations ~quick ~jobs () in
  let body =
    List.map
      (fun a ->
        [
          a.Experiments.ab_name;
          a.Experiments.ab_baseline;
          fmt a.Experiments.ab_time_baseline;
          a.Experiments.ab_variant;
          fmt a.Experiments.ab_time_variant;
          ratio
            (a.Experiments.ab_time_variant /. a.Experiments.ab_time_baseline);
        ])
      rows
  in
  print_string
    (Table.render
       ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Left ]
       ~headers:
         [ "ablation"; "baseline"; "metric"; "variant"; "metric"; "ratio" ]
       body);
  print_newline ()


let print_degradation ?(jobs = 1) ~quick () =
  print_endline
    "== Degradation under message loss (ours): reliable transport ==";
  print_endline
    "   (values are the fault-free values at every drop rate; only the\n\
    \    simulated clock degrades)";
  let rows = Experiments.degradation ~quick ~jobs () in
  let body =
    List.map
      (fun r ->
        [
          r.Experiments.dg_app;
          Printf.sprintf "%.2f" r.Experiments.dg_drop;
          fmt r.Experiments.dg_time;
          Printf.sprintf "+%.1f%%" (100.0 *. r.Experiments.dg_overhead);
          string_of_int r.Experiments.dg_dropped;
          string_of_int r.Experiments.dg_retried;
        ])
      rows
  in
  print_string
    (Table.render
       ~aligns:[ Table.Left ]
       ~headers:[ "app"; "drop"; "time(s)"; "overhead"; "dropped"; "retried" ]
       body);
  print_newline ()

let print_scaling ?(jobs = 1) ~quick () =
  print_endline "== Strong scaling (ours): shortest paths, fixed n ==";
  let rows = Experiments.scaling ~quick ~jobs () in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.Experiments.sc_procs;
          fmt r.Experiments.sc_time;
          ratio r.Experiments.sc_speedup;
          Printf.sprintf "%.0f%%" (100.0 *. r.Experiments.sc_efficiency);
        ])
      rows
  in
  print_string
    (Table.render ~headers:[ "procs"; "time(s)"; "speedup"; "efficiency" ]
       body);
  print_newline ()

(* machine-readable exports of the reproduced evaluation *)
let print_collectives ?(jobs = 1) () =
  print_endline "== Collective algorithm crossovers (ours) ==";
  print_endline
    "   (deterministic simulated makespans of one collective per run;\n\
    \    auto picks per call from the topology/size cost model)";
  let cells, apps = Experiments.collectives_crossover ~jobs () in
  let ms t = Printf.sprintf "%.3f" (t *. 1e3) in
  let body =
    List.map
      (fun c ->
        let best_name, best_t =
          List.fold_left
            (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
            ("", infinity) c.Experiments.cc_algs
        in
        [
          c.Experiments.cc_kind;
          c.Experiments.cc_topo;
          string_of_int c.Experiments.cc_p;
          string_of_int c.Experiments.cc_bytes;
          String.concat "  "
            (List.map
               (fun (n, t) -> Printf.sprintf "%s %s" n (ms t))
               c.Experiments.cc_algs);
          Printf.sprintf "%s %s" best_name (ms best_t);
          ms c.Experiments.cc_auto;
          c.Experiments.cc_chosen;
        ])
      cells
  in
  print_string
    (Table.render
       ~aligns:[ Table.Left; Table.Left ]
       ~headers:
         [ "kind"; "topo"; "p"; "bytes"; "per-algorithm (ms)"; "best"; "auto (ms)"; "chosen" ]
       body);
  print_newline ();
  let app_body =
    List.map
      (fun r ->
        [
          r.Experiments.ca_app;
          fmt r.Experiments.ca_legacy;
          fmt r.Experiments.ca_auto;
          ratio (r.Experiments.ca_legacy /. r.Experiments.ca_auto);
        ])
      apps
  in
  print_string
    (Table.render
       ~aligns:[ Table.Left ]
       ~headers:[ "application"; "legacy trees(s)"; "auto(s)"; "speedup" ]
       app_body);
  print_newline ()

let write_csvs ~dir t1 t2 =
  let file name render =
    let oc = open_out (Filename.concat dir name) in
    output_string oc render;
    close_out oc
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sqrtp,n,skil_s,dpfl_s,parix_old_s\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.4f,%s,%s\n" r.Experiments.sqrtp
           r.Experiments.sp_n r.Experiments.sp_skil
           (opt (Printf.sprintf "%.4f") r.Experiments.sp_dpfl)
           (opt (Printf.sprintf "%.4f") r.Experiments.sp_parix_old)))
    t1;
  file "table1.csv" (Buffer.contents buf);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "grid_w,grid_h,n,skil_s,dpfl_s,parix_s\n";
  List.iter
    (fun row ->
      let w, h = row.Experiments.grid in
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%d,%.4f,%s,%.4f\n" w h
               c.Experiments.g_n c.Experiments.g_skil
               (opt (Printf.sprintf "%.4f") c.Experiments.g_dpfl)
               c.Experiments.g_parix))
        row.Experiments.cells)
    t2;
  file "table2.csv" (Buffer.contents buf);
  let speedups, slowdowns = Experiments.figure1 t2 in
  file "figure1_left.csv" (Series.to_csv speedups);
  file "figure1_right.csv" (Series.to_csv slowdowns);
  Printf.printf "csv files written to %s\n\n" dir
