(** Polymorphic type checking for Skil (paper section 2.2).

    Functions are polymorphic in their [$t] variables; call sites instantiate
    them with fresh unification variables, and partial application is typed
    by currying ("the application of an n-ary function as a successive
    application of unary functions").  Checking also {e annotates} the AST in
    place: every [Var] node that references a polymorphic function gets its
    resolved instantiation recorded in [inst], which is what the
    translation-by-instantiation pass consumes. *)

exception Type_error of { line : int; col : int; message : string }
(** [line]/[col] point at the first token of the offending expression;
    both are [0] when the check has no source anchor. *)

type scheme = {
  sch_vars : string list;  (** the $-variables, rigid inside the body *)
  sch_params : Ast.typ list;
  sch_ret : Ast.typ;
}

type env

val check : Ast.program -> env
(** Check a whole program.  @raise Type_error on the first error. *)

val check_expr_in : env -> Ast.expr -> Ast.typ
(** Type an isolated expression against the global environment (tests). *)

val function_scheme : env -> string -> scheme option
(** User-defined or builtin function/constant. *)

val struct_def : env -> string -> Ast.struct_def option
val is_pardata : env -> string -> bool

val expand : env -> Ast.typ -> Ast.typ
(** Resolve typedefs and follow unification links (one level). *)

val zonk : env -> Ast.typ -> Ast.typ
(** Fully resolve a type, erasing solved unification variables. *)

val builtins : (string * scheme) list
(** The skeleton interface of paper section 3 plus a small C runtime
    (print functions, min/max, NULL, the DISTR_* constants, ...). *)

val builtin_scheme : string -> scheme option
(** O(1) lookup into {!builtins} (hashtable built once — the execution
    engines hit this on every unbound identifier and curried apply). *)

val is_builtin : string -> bool

val builtin_arity : string -> int option
(** Number of parameters of a builtin, when [name] is one. *)
