(* Skeleton-fusion optimizer.  Runs on the *instantiated* program, after
   [Typecheck.check] has refilled the [inst] annotations and before either
   execution engine sees the AST (the C emitter never sees its output —
   [bin/skilc.ml] rejects [--optimize fuse] for emit-c).

   Rewrites, each proven value-preserving (same printed output, same final
   values) and each strictly reducing charged element-ops on programs where
   it fires:

   - map/map fusion            map(f,a,b); map(g,b,b)    => map(g.f, a, b)
                               map(f,a,b); map(g,b,c)    => map(g.f, a, c)
                               (second form only when b is a dead
                               intermediate: created, written once, read
                               once, destroyed)
   - map-into-fold fusion      map(f,a,b); ..fold(c,m,b) => ..fold(c.f,m,a)
   - dead array_copy removal   copy(s,d) when d is never read afterwards
   - dead create/destroy       an array only ever created and destroyed
   - constant-initialiser      create(.., f, ..) where f returns a literal
     folding                   => array_create_const(.., literal, ..)
   - loop-invariant hoisting   array_broadcast_part at the head of a loop
                               whose argument array the loop never writes;
                               pure multi-node loop-bound expressions
                               (there is no source-level to_flat gather, so
                               the paper's gather-hoisting case is vacuous
                               here — documented in EXPERIMENTS.md)

   Soundness leans on the typechecker/instantiation invariants: argument
   functions at skeleton call sites are first-order ([Var f] or
   [Call (Var f, lifts)]), [Value.copy] semantics mean a callee can only
   affect its caller through pointers or distributed arrays, and
   [Skeletons.map] raises on layout mismatch, so a fused map/fold observes
   the exact same index sequence as the two passes it replaces.  Every
   rewrite requires the functions it touches to be [Pure] under the effect
   analysis below; closures that mutate captured state (through a pointer
   parameter) or touch arrays are never fused. *)

type effect_ = Pure | Read_only | Impure

let eff_rank = function Pure -> 0 | Read_only -> 1 | Impure -> 2
let eff_join a b = if eff_rank a >= eff_rank b then a else b

type ctx = {
  env : Typecheck.env;
  funcs : (string, Ast.func) Hashtbl.t;  (* user functions, incl. fused *)
  eff : (string, effect_) Hashtbl.t;
  used : (string, unit) Hashtbl.t;  (* every identifier in the program *)
  mutable fresh : int;
  mutable new_funcs : Ast.func list;  (* fused functions, reverse order *)
  mutable changed : bool;
  clean : bool;  (* no user shadowing of the array_* builtins *)
}

(* ---------------- generic expression utilities ---------------- *)

let rec iter_expr f (e : Ast.expr) =
  f e;
  match e.Ast.desc with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.Var _
  | Ast.OpSection _ ->
      ()
  | Ast.Call (h, args) -> List.iter (iter_expr f) (h :: args)
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Idx (a, b) ->
      iter_expr f a;
      iter_expr f b
  | Ast.Unop (_, a) | Ast.Field (a, _) | Ast.Arrow (a, _) | Ast.Deref a
  | Ast.New a ->
      iter_expr f a
  | Ast.ArrayLit es -> List.iter (iter_expr f) es
  | Ast.Cond (a, b, c) ->
      iter_expr f a;
      iter_expr f b;
      iter_expr f c

let rec iter_stmt fe fs (s : Ast.stmt) =
  fs s;
  match s with
  | Ast.SExpr e -> iter_expr fe e
  | Ast.SDecl (_, _, init) -> Option.iter (iter_expr fe) init
  | Ast.SIf (c, a, b) ->
      iter_expr fe c;
      List.iter (iter_stmt fe fs) a;
      List.iter (iter_stmt fe fs) b
  | Ast.SWhile (c, b) ->
      iter_expr fe c;
      List.iter (iter_stmt fe fs) b
  | Ast.SFor (i, c, st, b) ->
      Option.iter (iter_stmt fe fs) i;
      Option.iter (iter_expr fe) c;
      Option.iter (iter_expr fe) st;
      List.iter (iter_stmt fe fs) b
  | Ast.SReturn e -> Option.iter (iter_expr fe) e
  | Ast.SBreak | Ast.SContinue -> ()
  | Ast.SBlock b -> List.iter (iter_stmt fe fs) b

(* Occurrences of [x]: as a [Var] node, or as a declared name. *)
let mentions_stmts x stmts =
  let n = ref 0 in
  let fe (e : Ast.expr) =
    match e.Ast.desc with Ast.Var y when y = x -> incr n | _ -> ()
  in
  let fs = function Ast.SDecl (_, y, _) when y = x -> incr n | _ -> () in
  List.iter (iter_stmt fe fs) stmts;
  !n

let mentions_stmt x s = mentions_stmts x [ s ]

(* Substitute [Var] nodes by name, rebuilding every node (the [inst] field
   is mutable, so sharing nodes between functions would let one re-check
   clobber another).  Replacements are inserted as fresh copies and are not
   themselves traversed. *)
let rec subst_expr sub (e : Ast.expr) : Ast.expr =
  let mk d = Ast.mk ~line:e.Ast.line ~col:e.Ast.col d in
  match e.Ast.desc with
  | Ast.Var x -> (
      match List.assoc_opt x sub with
      | Some r -> subst_expr [] r
      | None -> mk (Ast.Var x))
  | (Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.OpSection _) as d
    ->
      mk d
  | Ast.Call (h, args) ->
      mk (Ast.Call (subst_expr sub h, List.map (subst_expr sub) args))
  | Ast.Binop (op, a, b) ->
      mk (Ast.Binop (op, subst_expr sub a, subst_expr sub b))
  | Ast.Unop (op, a) -> mk (Ast.Unop (op, subst_expr sub a))
  | Ast.Assign (a, b) -> mk (Ast.Assign (subst_expr sub a, subst_expr sub b))
  | Ast.Idx (a, b) -> mk (Ast.Idx (subst_expr sub a, subst_expr sub b))
  | Ast.Field (a, f) -> mk (Ast.Field (subst_expr sub a, f))
  | Ast.Arrow (a, f) -> mk (Ast.Arrow (subst_expr sub a, f))
  | Ast.Deref a -> mk (Ast.Deref (subst_expr sub a))
  | Ast.ArrayLit es -> mk (Ast.ArrayLit (List.map (subst_expr sub) es))
  | Ast.Cond (a, b, c) ->
      mk (Ast.Cond (subst_expr sub a, subst_expr sub b, subst_expr sub c))
  | Ast.New a -> mk (Ast.New (subst_expr sub a))

let copy_expr e = subst_expr [] e

(* (always, guarded) occurrence counts of [x] in [e]: [always] counts
   occurrences on paths evaluated exactly once per evaluation of [e],
   [guarded] everything under a conditional ([Cond] arms, short-circuit
   right operands). *)
let rec var_counts x (e : Ast.expr) =
  let ( ++ ) (a, g) (a', g') = (a + a', g + g') in
  let all l = List.fold_left (fun acc e -> acc ++ var_counts x e) (0, 0) l in
  match e.Ast.desc with
  | Ast.Var y -> if y = x then (1, 0) else (0, 0)
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.OpSection _ ->
      (0, 0)
  | Ast.Cond (c, a, b) ->
      let ca, cg = var_counts x c in
      let aa, ag = var_counts x a in
      let ba, bg = var_counts x b in
      (ca, cg + aa + ag + ba + bg)
  | Ast.Binop (("&&" | "||"), a, b) ->
      let aa, ag = var_counts x a in
      let ba, bg = var_counts x b in
      (aa, ag + ba + bg)
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Idx (a, b) -> all [ a; b ]
  | Ast.Unop (_, a) | Ast.Field (a, _) | Ast.Arrow (a, _) | Ast.Deref a
  | Ast.New a ->
      var_counts x a
  | Ast.Call (h, args) -> all (h :: args)
  | Ast.ArrayLit es -> all es

let node_count e =
  let n = ref 0 in
  iter_expr (fun _ -> incr n) e;
  !n

let is_leaf (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var _ | Ast.Int _ | Ast.Float _ | Ast.Chr _ -> true
  | _ -> false

(* ---------------- effect analysis ---------------- *)

let builtin_effect = function
  | "array_get_elem" | "array_part_bounds" -> Read_only
  | "min" | "max" | "abs" | "fabs" | "sqrt" | "log2" | "itof" | "ftoi"
  | "int_max" | "procId" | "nProcs" | "NULL" | "DISTR_DEFAULT" | "DISTR_RING"
  | "DISTR_TORUS2D" ->
      Pure
  | _ -> Impure (* array_* skeletons, print_*, error, anything unknown *)

let func_effect ctx f =
  match Hashtbl.find_opt ctx.eff f with Some e -> e | None -> Impure

let rec expr_effect ctx (e : Ast.expr) =
  let all l =
    List.fold_left (fun acc e -> eff_join acc (expr_effect ctx e)) Pure l
  in
  match e.Ast.desc with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.OpSection _ -> Pure
  | Ast.Var x ->
      (* a bare reference to a user function is a closure escaping the
         analysis — conservative *)
      if Hashtbl.mem ctx.funcs x then Impure else Pure
  | Ast.Call (h, args) -> (
      let ae = all args in
      match h.Ast.desc with
      | Ast.Var f when Hashtbl.mem ctx.funcs f ->
          eff_join ae (func_effect ctx f)
      | Ast.Var f when Typecheck.is_builtin f ->
          eff_join ae (builtin_effect f)
      | Ast.OpSection _ -> ae
      | _ -> Impure)
  | Ast.Assign (lv, r) ->
      let rec lv_eff (l : Ast.expr) =
        match l.Ast.desc with
        | Ast.Var _ -> Pure (* locals are private: [Value.copy] on invoke *)
        | Ast.Idx (b, i) -> eff_join (lv_eff b) (expr_effect ctx i)
        | Ast.Field (b, _) -> lv_eff b
        | _ -> Impure (* writes through Deref/Arrow reach shared state *)
      in
      eff_join (lv_eff lv) (expr_effect ctx r)
  | Ast.Deref a | Ast.Arrow (a, _) ->
      (* reads through a pointer (or of Bounds fields) observe state the
         caller can alias — enough to disqualify fusion's Pure requirement
         without being a write *)
      eff_join Read_only (expr_effect ctx a)
  | Ast.New a -> eff_join Impure (expr_effect ctx a)
  | Ast.Binop (_, a, b) | Ast.Idx (a, b) -> all [ a; b ]
  | Ast.Unop (_, a) | Ast.Field (a, _) -> expr_effect ctx a
  | Ast.ArrayLit es -> all es
  | Ast.Cond (a, b, c) -> all [ a; b; c ]

let stmts_effect ctx stmts =
  let acc = ref Pure in
  let fe e =
    match e with
    (* iter_expr visits children itself; only join at each node *)
    | _ -> acc := eff_join !acc (expr_effect ctx e)
  in
  (* joining at every node revisits children, but the lattice join is
     idempotent so the result is the same — keep it simple *)
  List.iter (iter_stmt (fun e -> fe e) (fun _ -> ())) stmts;
  !acc

let compute_effects ctx =
  Hashtbl.reset ctx.eff;
  Hashtbl.iter (fun n _ -> Hashtbl.replace ctx.eff n Pure) ctx.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun n (f : Ast.func) ->
        let e =
          match f.Ast.f_body with
          | None -> Impure
          | Some body -> stmts_effect ctx body
        in
        if eff_rank e > eff_rank (func_effect ctx n) then begin
          Hashtbl.replace ctx.eff n e;
          changed := true
        end)
      ctx.funcs
  done

(* ---------------- best-effort monomorphic typing ---------------- *)

(* Just enough typing to answer "is this expression a scalar int/float, and
   which?" for hoisted declarations.  Returns [None] whenever unsure; every
   caller treats [None] as "don't rewrite". *)

let rec subst_typ sub (t : Ast.typ) =
  match t with
  | Ast.TVar v -> ( match List.assoc_opt v sub with Some t -> t | None -> t)
  | Ast.TNamed (n, args) -> Ast.TNamed (n, List.map (subst_typ sub) args)
  | Ast.TPtr t -> Ast.TPtr (subst_typ sub t)
  | Ast.TFun (args, r) ->
      Ast.TFun (List.map (subst_typ sub) args, subst_typ sub r)
  | t -> t

let rec type_of ctx locals (e : Ast.expr) : Ast.typ option =
  let expand t = Some (Typecheck.expand ctx.env t) in
  match e.Ast.desc with
  | Ast.Int _ -> Some Ast.TInt
  | Ast.Float _ -> Some Ast.TFloat
  | Ast.Chr _ -> Some Ast.TChar
  | Ast.Str _ -> Some Ast.TString
  | Ast.ArrayLit _ -> Some Ast.TIndex
  | Ast.Var x -> (
      match List.assoc_opt x locals with
      | Some t -> expand t
      | None -> (
          match x with
          | "int_max" | "procId" | "nProcs" | "DISTR_DEFAULT" | "DISTR_RING"
          | "DISTR_TORUS2D" ->
              Some Ast.TInt
          | _ -> None))
  | Ast.Binop (("==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||"), _, _)
    ->
      Some Ast.TInt
  | Ast.Binop ("%", _, _) -> Some Ast.TInt
  | Ast.Binop (_, a, b) -> (
      match type_of ctx locals a with
      | Some _ as t -> t
      | None -> type_of ctx locals b)
  | Ast.Unop ("!", _) -> Some Ast.TInt
  | Ast.Unop (_, a) -> type_of ctx locals a
  | Ast.Idx (_, _) -> Some Ast.TInt (* Index subscription *)
  | Ast.Assign (l, _) -> type_of ctx locals l
  | Ast.Cond (_, a, b) -> (
      match type_of ctx locals a with
      | Some _ as t -> t
      | None -> type_of ctx locals b)
  | Ast.Deref p -> (
      match type_of ctx locals p with
      | Some (Ast.TPtr t) -> expand t
      | _ -> None)
  | Ast.New _ -> None
  | Ast.OpSection _ -> None
  | Ast.Field (b, f) | Ast.Arrow (b, f) -> (
      match type_of ctx locals b with
      | Some Ast.TBounds -> Some Ast.TIndex (* lowerBd / upperBd *)
      | Some (Ast.TNamed (sname, targs)) | Some (Ast.TPtr (Ast.TNamed (sname, targs)))
        -> (
          match Typecheck.struct_def ctx.env sname with
          | Some sd when List.length sd.Ast.s_params = List.length targs -> (
              let sub = List.combine sd.Ast.s_params targs in
              match
                List.find_opt (fun (_, fn) -> fn = f) sd.Ast.s_fields
              with
              | Some (ft, _) -> expand (subst_typ sub ft)
              | None -> None)
          | _ -> None)
      | _ -> None)
  | Ast.Call (h, args) -> (
      match h.Ast.desc with
      | Ast.Var f -> (
          let scheme =
            if Hashtbl.mem ctx.funcs f then
              Typecheck.function_scheme ctx.env f
            else Typecheck.builtin_scheme f
          in
          match scheme with
          | Some sch when List.length sch.Typecheck.sch_params
                          = List.length args -> (
              match sch.Typecheck.sch_vars with
              | [] -> expand sch.Typecheck.sch_ret
              | vars when List.length h.Ast.inst = List.length vars ->
                  (* the pre-optimizer typecheck left the instantiation on
                     the head Var *)
                  expand (subst_typ h.Ast.inst sch.Typecheck.sch_ret)
              | _ -> None)
          | _ -> None)
      | _ -> None)

(* Hoistable = evaluating it any number of times, at any point where the
   same variables are in scope with the same values, yields the same value
   and no effect.  Stricter than [expr_effect = Pure]: additionally bans
   every pointer read, allowing Arrow only on Bounds *values* (which are
   caller-private), so name-based invariance checks are sound. *)
let rec hoistable ctx locals (e : Ast.expr) =
  let all = List.for_all (hoistable ctx locals) in
  match e.Ast.desc with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ -> true
  | Ast.Var x -> not (Hashtbl.mem ctx.funcs x)
  | Ast.Binop (_, a, b) | Ast.Idx (a, b) -> all [ a; b ]
  | Ast.Unop (_, a) -> hoistable ctx locals a
  | Ast.Cond (a, b, c) -> all [ a; b; c ]
  | Ast.Field (b, _) -> hoistable ctx locals b
  | Ast.Arrow (b, _) ->
      type_of ctx locals b = Some Ast.TBounds && hoistable ctx locals b
  | Ast.Call (h, args) -> (
      all args
      &&
      match h.Ast.desc with
      | Ast.Var f when Hashtbl.mem ctx.funcs f -> func_effect ctx f = Pure
      | Ast.Var f when Typecheck.is_builtin f -> builtin_effect f = Pure
      | _ -> false)
  | Ast.ArrayLit es -> List.for_all (hoistable ctx locals) es
  | Ast.OpSection _ | Ast.Assign _ | Ast.Deref _ | Ast.New _ -> false

(* Variable names assigned (or declared) anywhere in a statement — the
   kill-set for invariance.  Roots of Deref/Arrow lvalues are included for
   completeness, but hoistable expressions never read through pointers, so
   pointer writes cannot invalidate them. *)
let assigned_names stmts =
  let tbl = Hashtbl.create 8 in
  let rec root (l : Ast.expr) =
    match l.Ast.desc with
    | Ast.Var x -> Some x
    | Ast.Idx (b, _) | Ast.Field (b, _) | Ast.Arrow (b, _) | Ast.Deref b ->
        root b
    | _ -> None
  in
  let fe (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Assign (lv, _) -> Option.iter (fun x -> Hashtbl.replace tbl x ()) (root lv)
    | _ -> ()
  in
  let fs = function
    | Ast.SDecl (_, x, _) -> Hashtbl.replace tbl x ()
    | _ -> ()
  in
  List.iter (iter_stmt fe fs) stmts;
  tbl

let invariant_under killed e =
  let ok = ref true in
  iter_expr
    (fun (e : Ast.expr) ->
      match e.Ast.desc with
      | Ast.Var x when Hashtbl.mem killed x -> ok := false
      | _ -> ())
    e;
  !ok

(* ---------------- gensym ---------------- *)

let fresh_name ctx base =
  let rec go () =
    let n = ctx.fresh in
    ctx.fresh <- n + 1;
    let nm = Printf.sprintf "__%s%d" base n in
    if Hashtbl.mem ctx.used nm || Typecheck.is_builtin nm then go ()
    else begin
      Hashtbl.replace ctx.used nm ();
      nm
    end
  in
  go ()

(* ---------------- constant-initialiser folding ---------------- *)

(* array_create whose initialiser function ignores its Index argument and
   returns a literal becomes array_create_const: one skeleton with the same
   Mapped charge but zero per-element interpreter work. *)
let const_return ctx (f : Ast.func) : Ast.expr option =
  let literal (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Int _ | Ast.Float _ | Ast.Chr _ | Ast.Str _ -> true
    | Ast.Unop ("-", { desc = Ast.Int _ | Ast.Float _; _ }) -> true
    | Ast.Var "int_max" -> not (Hashtbl.mem ctx.funcs "int_max")
    | _ -> false
  in
  match f.Ast.f_body with
  | Some [ Ast.SReturn (Some e) ] when literal e -> Some e
  | _ -> None

let fold_const_creates ctx (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Call
      ( ({ desc = Ast.Var "array_create"; _ } as head),
        [ dim; size; bs; lb; { desc = Ast.Var fname; _ }; distr ] )
    when ctx.clean -> (
      match Hashtbl.find_opt ctx.funcs fname with
      | Some f when List.length f.Ast.f_params = 1 -> (
          match const_return ctx f with
          | Some lit ->
              e.Ast.desc <-
                Ast.Call
                  ( Ast.mk ~line:head.Ast.line ~col:head.Ast.col
                      (Ast.Var "array_create_const"),
                    [ dim; size; bs; lb; copy_expr lit; distr ] );
              ctx.changed <- true
          | None -> ())
      | _ -> ())
  | _ -> ()

(* ---------------- fusion ---------------- *)

(* A skeleton argument function at a call site, post-instantiation: either
   [Var f] or [Call (Var f, lifts)] with the lifts being plain data. *)
type arg_fn = {
  af_func : Ast.func;
  af_lifts : Ast.expr list;  (* original call-site nodes *)
}

let single_return (f : Ast.func) =
  match f.Ast.f_body with
  | Some [ Ast.SReturn (Some e) ] -> Some e
  | Some [ Ast.SBlock [ Ast.SReturn (Some e) ] ] -> Some e
  | _ -> None

(* Accept [e] as a fusable (elem, Index) -> ret argument function: a Pure
   user function whose body is a single return, fully applied but for the
   two element parameters, with pure lift arguments (they will be evaluated
   at a merged call site, so their values must not depend on the skeleton
   pass being deleted). *)
let arg_fn ctx (e : Ast.expr) : arg_fn option =
  let resolve name lifts =
    match Hashtbl.find_opt ctx.funcs name with
    | Some f
      when List.length f.Ast.f_params = List.length lifts + 2
           && func_effect ctx name = Pure
           && single_return f <> None
           && List.for_all (fun l -> expr_effect ctx l = Pure) lifts ->
        Some { af_func = f; af_lifts = lifts }
    | _ -> None
  in
  match e.Ast.desc with
  | Ast.Var f -> resolve f []
  | Ast.Call ({ desc = Ast.Var f; _ }, lifts) -> resolve f lifts
  | _ -> None

(* Build the composition outer . inner as a fresh top-level function
   [\lifts_i \lifts_o v ix. e_outer[elem_o := e_inner[elem_i := v]]] and
   return (function, call-site expression).  Only when the outer body uses
   its element parameter exactly once on an unconditionally-evaluated path
   (the inner body is then evaluated exactly as often as before), or the
   inner body is a leaf (re-evaluation is free and cannot raise). *)
let fuse_arg_fns ctx (inner : arg_fn) (outer : arg_fn) :
    (Ast.func * Ast.expr) option =
  let e_in = Option.get (single_return inner.af_func) in
  let e_out = Option.get (single_return outer.af_func) in
  let split_params (f : Ast.func) =
    let ps = f.Ast.f_params in
    let n = List.length ps in
    let lifts = List.filteri (fun i _ -> i < n - 2) ps in
    let elem = List.nth ps (n - 2) and ix = List.nth ps (n - 1) in
    (lifts, elem, ix)
  in
  let i_lifts, i_elem, i_ix = split_params inner.af_func in
  let o_lifts, o_elem, o_ix = split_params outer.af_func in
  let always, guarded = var_counts o_elem.Ast.p_name e_out in
  if
    not
      ((always = 1 && guarded = 0)
      || (is_leaf e_in && always + guarded >= 1))
  then None
  else begin
    let fp (p : Ast.param) base =
      { Ast.p_type = p.Ast.p_type; p_name = fresh_name ctx base }
    in
    let il = List.map (fun p -> fp p "l") i_lifts in
    let ol = List.map (fun p -> fp p "l") o_lifts in
    let velem = fp i_elem "v" and vix = { Ast.p_type = Ast.TIndex;
                                          p_name = fresh_name ctx "ix" } in
    let vars ps = List.map (fun (p : Ast.param) ->
        Ast.mk (Ast.Var p.Ast.p_name)) ps in
    let sub_of names repls =
      List.map2 (fun (p : Ast.param) r -> (p.Ast.p_name, r)) names repls
    in
    let e_in' =
      subst_expr
        (sub_of i_lifts (vars il)
        @ [ (i_elem.Ast.p_name, Ast.mk (Ast.Var velem.Ast.p_name));
            (i_ix.Ast.p_name, Ast.mk (Ast.Var vix.Ast.p_name)) ])
        e_in
    in
    let e_out' =
      subst_expr
        (sub_of o_lifts (vars ol)
        @ [ (o_elem.Ast.p_name, e_in');
            (o_ix.Ast.p_name, Ast.mk (Ast.Var vix.Ast.p_name)) ])
        e_out
    in
    let name = fresh_name ctx "fused" in
    let f =
      {
        Ast.f_ret = outer.af_func.Ast.f_ret;
        f_name = name;
        f_params = il @ ol @ [ velem; vix ];
        f_body = Some [ Ast.SReturn (Some e_out') ];
      }
    in
    Hashtbl.replace ctx.funcs name f;
    (* pure by construction: built from two Pure bodies and pure lifts *)
    Hashtbl.replace ctx.eff name Pure;
    ctx.new_funcs <- f :: ctx.new_funcs;
    let lifts = inner.af_lifts @ outer.af_lifts in
    let call =
      if lifts = [] then Ast.mk (Ast.Var name)
      else Ast.mk (Ast.Call (Ast.mk (Ast.Var name), lifts))
    in
    Some (f, call)
  end

(* How a local array is defined/destroyed inside one function body. *)
let array_profile fbody x =
  let creates = ref [] and destroys = ref 0 and bare_decls = ref 0 in
  let fs s =
    match s with
    | Ast.SDecl (_, y, None) when y = x -> incr bare_decls
    | Ast.SDecl
        ( _,
          y,
          Some { desc = Ast.Call ({ desc = Ast.Var cn; _ }, _); _ } )
      when y = x && (cn = "array_create" || cn = "array_create_const") ->
        creates := (s, 1) :: !creates (* the decl mentions x once *)
    | Ast.SExpr
        {
          desc =
            Ast.Assign
              ( { desc = Ast.Var y; _ },
                { desc = Ast.Call ({ desc = Ast.Var cn; _ }, _); _ } );
          _;
        }
      when y = x && (cn = "array_create" || cn = "array_create_const") ->
        creates := (s, 1) :: !creates
    | Ast.SExpr
        {
          desc =
            Ast.Call
              ( { desc = Ast.Var "array_destroy"; _ },
                [ { desc = Ast.Var y; _ } ] );
          _;
        }
      when y = x ->
        incr destroys
    | _ -> ()
  in
  List.iter (iter_stmt (fun _ -> ()) fs) fbody;
  (!creates, !destroys, !bare_decls)

(* [x] is a dead intermediate if its only mentions in the whole body are one
   create (plus its bare declaration, for the decl-then-assign style), its
   destroys, and the [extra] mentions the caller is about to rewrite away. *)
let dead_intermediate fbody x ~extra =
  match array_profile fbody x with
  | [ (_, decl_mentions) ], destroys, bare ->
      mentions_stmts x fbody = decl_mentions + bare + destroys + extra
  | _ -> false

let mk_map_call fe src dst =
  Ast.SExpr
    (Ast.mk (Ast.Call (Ast.mk (Ast.Var "array_map"), [ fe; src; dst ])))

(* Rewrite one adjacent statement pair; [fbody] is the enclosing function
   body (for liveness).  Returns the replacement for [s1; s2]. *)
let try_fuse_pair ctx fbody s1 s2 : Ast.stmt list option =
  if not ctx.clean then None
  else
    match (s1, s2) with
    (* map(f, a, b); map(g, b, c) *)
    | ( Ast.SExpr
          {
            desc =
              Ast.Call
                ( { desc = Ast.Var "array_map"; _ },
                  [ fe; ae; ({ desc = Ast.Var b; _ } as _be) ] );
            _;
          },
        Ast.SExpr
          {
            desc =
              Ast.Call
                ( { desc = Ast.Var "array_map"; _ },
                  [ ge; { desc = Ast.Var b2; _ }; ce ] );
            _;
          } )
      when b2 = b
           && (match ce.Ast.desc with
              | Ast.Var c when c = b -> true (* in-place second map *)
              | Ast.Var _ ->
                  (* b is consumed here and nowhere else *)
                  dead_intermediate fbody b
                    ~extra:(mentions_stmt b s1 + mentions_stmt b s2)
              | _ -> false) -> (
        match (arg_fn ctx fe, arg_fn ctx ge) with
        | Some inner, Some outer -> (
            match fuse_arg_fns ctx inner outer with
            | Some (_, call) ->
                ctx.changed <- true;
                Some [ mk_map_call call ae ce ]
            | None -> None)
        | _ -> None)
    | _ -> None

(* map(f, a, b) followed by a statement whose only skeleton use of [b] is
   array_fold(conv, merge, b): fuse f into conv and fold directly over a. *)
let try_fuse_fold ctx fbody s1 s2 : Ast.stmt list option =
  if not ctx.clean then None
  else
    let rebuild_fold (e : Ast.expr) =
      (* the fold call must be the whole rhs so lift/merge evaluation order
         is preserved *)
      match e.Ast.desc with
      | Ast.Call
          ( ({ desc = Ast.Var "array_fold"; _ } as head),
            [ conv; merge; { desc = Ast.Var b; _ } ] ) ->
          Some (e, head, conv, merge, b)
      | _ -> None
    in
    let site =
      match s2 with
      | Ast.SExpr { desc = Ast.Assign (_, rhs); _ } -> rebuild_fold rhs
      | Ast.SExpr e -> rebuild_fold e
      | Ast.SDecl (_, _, Some e) -> rebuild_fold e
      | Ast.SReturn (Some e) -> rebuild_fold e
      | _ -> None
    in
    match (s1, site) with
    | ( Ast.SExpr
          {
            desc =
              Ast.Call
                ( { desc = Ast.Var "array_map"; _ },
                  [ fe; ae; { desc = Ast.Var b; _ } ] );
            _;
          },
        Some (fold_expr, head, conv, merge, b2) )
      when b2 = b
           && dead_intermediate fbody b
                ~extra:(mentions_stmt b s1 + 1)
           (* merge is evaluated with S1 deleted: restrict it to a function
              value whose (pure) lifts cannot observe the difference *)
           && (match merge.Ast.desc with
              | Ast.Var _ | Ast.OpSection _ -> true
              | Ast.Call ({ desc = Ast.Var _ | Ast.OpSection _; _ }, margs)
                ->
                  List.for_all (fun l -> expr_effect ctx l = Pure) margs
              | _ -> false) -> (
        match (arg_fn ctx fe, arg_fn ctx conv) with
        | Some inner, Some outer -> (
            match fuse_arg_fns ctx inner outer with
            | Some (_, call) ->
                fold_expr.Ast.desc <-
                  Ast.Call (head, [ call; merge; ae ]);
                ctx.changed <- true;
                Some [ s2 ]
            | None -> None)
        | _ -> None)
    | _ -> None

(* array_copy(s, d) where d is only ever created, copied into and
   destroyed: the copy can never be observed. *)
let try_dead_copy ctx fbody s : Ast.stmt list option =
  if not ctx.clean then None
  else
    match s with
    | Ast.SExpr
        {
          desc =
            Ast.Call
              ( { desc = Ast.Var "array_copy"; _ },
                [ { desc = Ast.Var src; _ }; { desc = Ast.Var d; _ } ] );
          _;
        }
      when src <> d -> (
        (* every mention of d outside create/destroy must be a copy target *)
        let copy_targets = ref 0 in
        let fs = function
          | Ast.SExpr
              {
                desc =
                  Ast.Call
                    ( { desc = Ast.Var "array_copy"; _ },
                      [ { desc = Ast.Var s'; _ }; { desc = Ast.Var d'; _ } ]
                    );
                _;
              }
            when d' = d && s' <> d ->
              incr copy_targets
          | _ -> ()
        in
        List.iter (iter_stmt (fun _ -> ()) fs) fbody;
        match array_profile fbody d with
        | [ (_, decl_mentions) ], destroys, bare
          when mentions_stmts d fbody
               = decl_mentions + bare + destroys + !copy_targets ->
            ctx.changed <- true;
            Some []
        | _ -> None)
    | _ -> None

(* ---------------- loop-invariant hoisting ---------------- *)

(* Positions at which a builtin only *reads* the array argument. *)
let read_positions = function
  | "array_get_elem" | "array_part_bounds" | "array_copy"
  | "array_permute_rows" ->
      [ 0 ]
  | "array_map" -> [ 1 ]
  | "array_fold" -> [ 2 ]
  | "array_gen_mult" -> [ 0; 1 ]
  | _ -> []

(* Every occurrence of array [arr] in [stmts] is a read: a read-position
   argument of a skeleton, or an argument to a Pure/Read_only user function
   (which can only call array_get_elem / array_part_bounds on it). *)
let array_read_only ctx arr stmts =
  let reads = ref 0 in
  let fe (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Call ({ desc = Ast.Var f; _ }, args) ->
        let positions =
          if Hashtbl.mem ctx.funcs f then
            if eff_rank (func_effect ctx f) <= eff_rank Read_only then
              List.mapi (fun i _ -> i) args
            else []
          else read_positions f
        in
        List.iteri
          (fun i (a : Ast.expr) ->
            match a.Ast.desc with
            | Ast.Var y when y = arr && List.mem i positions -> incr reads
            | _ -> ())
          args
    | _ -> ()
  in
  List.iter (iter_stmt fe (fun _ -> ())) stmts;
  mentions_stmts arr stmts = !reads

let bcast_pattern = function
  | Ast.SExpr
      {
        desc =
          Ast.Call
            ( { desc = Ast.Var "array_broadcast_part"; _ },
              [ { desc = Ast.Var arr; _ }; ixe ] );
        _;
      } as s ->
      Some (s, arr, ixe)
  | _ -> None

(* A broadcast at the head of a loop body, of an array the loop only reads,
   at a loop-invariant index, moves before the loop (guarded by the loop
   condition so a zero-trip loop still broadcasts zero times).  Re-running
   the broadcast with unchanged contents is a no-op on values, so dropping
   iterations 2..n only removes charged communication. *)
let try_hoist_bcast ctx locals s : Ast.stmt list option =
  if not ctx.clean then None
  else
    let attempt cond rest step_stmts =
      match bcast_pattern (List.hd rest) with
      | Some (bcast, arr, ixe)
        when hoistable ctx locals cond && hoistable ctx locals ixe ->
          let body_rest = List.tl rest @ step_stmts in
          let killed = assigned_names body_rest in
          if
            invariant_under killed ixe
            && (not (Hashtbl.mem killed arr))
            && array_read_only ctx arr body_rest
          then Some (Ast.SIf (copy_expr cond, [ bcast ], []))
          else None
      | _ -> None
    in
    match s with
    | Ast.SWhile (cond, (_ :: _ as body)) -> (
        match attempt cond body [] with
        | Some guard ->
            ctx.changed <- true;
            Some [ guard; Ast.SWhile (cond, List.tl body) ]
        | None -> None)
    | Ast.SFor (init, Some cond, step, (_ :: _ as body)) -> (
        let step_stmts =
          match step with Some e -> [ Ast.SExpr e ] | None -> []
        in
        match attempt cond body step_stmts with
        | Some guard ->
            ctx.changed <- true;
            (* the init moves into an enclosing block so the guard can see
               its declarations; scoping is preserved *)
            let init_stmts = Option.to_list init in
            Some
              [
                Ast.SBlock
                  (init_stmts
                  @ [ guard; Ast.SFor (None, Some cond, step, List.tl body) ]
                  );
              ]
        | None -> None)
    | _ -> None

(* Pure, multi-node, loop-invariant scalar sides of a loop-condition
   comparison are computed once before the loop.  The paper's running
   examples spend per-iteration scalar work on bounds like
   [i <= bds->upperBd[0]] and [j < n / 2]. *)
let try_hoist_bounds ctx locals s : Ast.stmt list option =
  let comparison = function
    | "<" | "<=" | ">" | ">=" | "==" | "!=" -> true
    | _ -> false
  in
  let hoist_side killed side =
    if
      hoistable ctx locals side
      && node_count side >= 2
      && invariant_under killed side
    then
      match type_of ctx locals side with
      | Some ((Ast.TInt | Ast.TFloat) as t) ->
          let x = fresh_name ctx "b" in
          let decl = Ast.SDecl (t, x, Some side) in
          Some (decl, Ast.mk ~line:side.Ast.line ~col:side.Ast.col (Ast.Var x))
      | _ -> None
    else None
  in
  let rewrite killed cond rebuild =
    match cond.Ast.desc with
    | Ast.Binop (op, l, r) when comparison op ->
        let dl = hoist_side killed l and dr = hoist_side killed r in
        if dl = None && dr = None then None
        else begin
          let l' = match dl with Some (_, v) -> v | None -> l in
          let r' = match dr with Some (_, v) -> v | None -> r in
          cond.Ast.desc <- Ast.Binop (op, l', r');
          ctx.changed <- true;
          let decls =
            List.filter_map (Option.map fst) [ dl; dr ]
          in
          Some (decls @ [ rebuild () ])
        end
    | _ -> None
  in
  match s with
  | Ast.SWhile (cond, body) ->
      rewrite (assigned_names body) cond (fun () -> s)
  | Ast.SFor (init, Some cond, step, body) ->
      let step_stmts =
        match step with Some e -> [ Ast.SExpr e ] | None -> []
      in
      let killed =
        assigned_names (Option.to_list init @ step_stmts @ body)
      in
      rewrite killed cond (fun () -> s)
  | _ -> None

(* ---------------- dead create/destroy cleanup ---------------- *)

(* evaluation of [e] as plain data has no effect and can be dropped *)
let droppable_data ctx e = expr_effect ctx e = Pure

let droppable_fn_value ctx (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var f | Ast.Call ({ desc = Ast.Var f; _ }, _) -> (
      (match e.Ast.desc with
      | Ast.Call (_, lifts) -> List.for_all (droppable_data ctx) lifts
      | _ -> true)
      && match Hashtbl.find_opt ctx.funcs f with
         | Some _ -> func_effect ctx f = Pure
         | None -> false)
  | Ast.OpSection _ -> true
  | _ -> false

let removable_create ctx x = function
  | Ast.SDecl
      (_, y, Some { desc = Ast.Call ({ desc = Ast.Var cn; _ }, args); _ })
    when y = x -> (
      match (cn, args) with
      | "array_create", [ dim; size; bs; lb; fe; distr ] ->
          List.for_all (droppable_data ctx) [ dim; size; bs; lb; distr ]
          && droppable_fn_value ctx fe
      | "array_create_const", [ dim; size; bs; lb; cv; distr ] ->
          List.for_all (droppable_data ctx) [ dim; size; bs; lb; cv; distr ]
      | _ -> false)
  | _ -> false

let is_destroy x = function
  | Ast.SExpr
      {
        desc =
          Ast.Call
            ( { desc = Ast.Var "array_destroy"; _ },
              [ { desc = Ast.Var y; _ } ] );
        _;
      } ->
      y = x
  | _ -> false

let rec remove_stmts keep stmts =
  List.filter_map
    (fun s ->
      if not (keep s) then None
      else
        Some
          (match s with
          | Ast.SIf (c, a, b) ->
              Ast.SIf (c, remove_stmts keep a, remove_stmts keep b)
          | Ast.SWhile (c, b) -> Ast.SWhile (c, remove_stmts keep b)
          | Ast.SFor (i, c, st, b) ->
              Ast.SFor (i, c, st, remove_stmts keep b)
          | Ast.SBlock b -> Ast.SBlock (remove_stmts keep b)
          | s -> s))
    stmts

(* Arrays that are only ever created and destroyed (fusion leaves these
   behind) disappear entirely: the create and every destroy go.  Both are
   collectives, but removal is syntactic so all processors still agree. *)
let cleanup_dead_arrays ctx body =
  if not ctx.clean then body
  else begin
    let candidates = ref [] in
    let fs s =
      match s with
      | Ast.SDecl (_, x, _) when removable_create ctx x s ->
          candidates := (x, s) :: !candidates
      | _ -> ()
    in
    List.iter (iter_stmt (fun _ -> ()) fs) body;
    List.fold_left
      (fun body (x, create_stmt) ->
        let destroys = ref 0 in
        List.iter
          (iter_stmt
             (fun _ -> ())
             (fun s -> if is_destroy x s then incr destroys))
          body;
        (* the decl is the only non-destroy mention? *)
        if mentions_stmts x body = 1 + !destroys then begin
          ctx.changed <- true;
          remove_stmts
            (fun s -> not (s == create_stmt || is_destroy x s))
            body
        end
        else body)
      body !candidates
  end

(* ---------------- driver ---------------- *)

let locals_after s locals =
  match s with Ast.SDecl (t, x, _) -> (x, t) :: locals | _ -> locals

let fold_consts_in ctx e = iter_expr (fold_const_creates ctx) e

let rec opt_stmt ctx fbody locals s : Ast.stmt list =
  match s with
  | Ast.SExpr e ->
      fold_consts_in ctx e;
      [ s ]
  | Ast.SDecl (_, _, init) ->
      Option.iter (fold_consts_in ctx) init;
      [ s ]
  | Ast.SReturn (Some e) ->
      fold_consts_in ctx e;
      [ s ]
  | Ast.SReturn None | Ast.SBreak | Ast.SContinue -> [ s ]
  | Ast.SIf (c, a, b) ->
      fold_consts_in ctx c;
      [
        Ast.SIf
          (c, opt_stmts ctx fbody locals a, opt_stmts ctx fbody locals b);
      ]
  | Ast.SBlock b -> [ Ast.SBlock (opt_stmts ctx fbody locals b) ]
  | Ast.SWhile (cond, body) -> (
      match try_hoist_bcast ctx locals s with
      | Some repl -> repl
      | None -> (
          match try_hoist_bounds ctx locals s with
          | Some repl -> repl
          | None ->
              fold_consts_in ctx cond;
              [ Ast.SWhile (cond, opt_stmts ctx fbody locals body) ]))
  | Ast.SFor (init, cond, step, body) -> (
      match try_hoist_bcast ctx locals s with
      | Some repl -> repl
      | None -> (
          match try_hoist_bounds ctx locals s with
          | Some repl -> repl
          | None ->
              Option.iter
                (fun i -> ignore (opt_stmt ctx fbody locals i))
                init;
              Option.iter (fold_consts_in ctx) cond;
              Option.iter (fold_consts_in ctx) step;
              let locals' =
                match init with
                | Some i -> locals_after i locals
                | None -> locals
              in
              [
                Ast.SFor
                  (init, cond, step, opt_stmts ctx fbody locals' body);
              ]))

and opt_stmts ctx fbody locals = function
  | [] -> []
  | s1 :: (s2 :: rest as tl) -> (
      match try_fuse_pair ctx fbody s1 s2 with
      | Some repl -> opt_stmts ctx fbody locals (repl @ rest)
      | None -> (
          match try_fuse_fold ctx fbody s1 s2 with
          | Some repl -> opt_stmts ctx fbody locals (repl @ rest)
          | None -> (
              match try_dead_copy ctx fbody s1 with
              | Some repl -> opt_stmts ctx fbody locals (repl @ tl)
              | None ->
                  opt_stmt ctx fbody locals s1
                  @ opt_stmts ctx fbody (locals_after s1 locals) tl)))
  | [ s ] -> (
      match try_dead_copy ctx fbody s with
      | Some repl -> repl
      | None -> opt_stmt ctx fbody locals s)

let opt_func ctx (f : Ast.func) =
  match f.Ast.f_body with
  | None -> f
  | Some body ->
      let locals =
        List.map
          (fun (p : Ast.param) -> (p.Ast.p_name, p.Ast.p_type))
          f.Ast.f_params
      in
      let body = opt_stmts ctx body locals body in
      let body = cleanup_dead_arrays ctx body in
      { f with Ast.f_body = Some body }

(* Names whose user-level redefinition turns the skeleton patterns above
   into ordinary calls — one shadow disables every skeleton rewrite. *)
let skeleton_builtins =
  [
    "array_create"; "array_create_const"; "array_destroy"; "array_map";
    "array_fold"; "array_copy"; "array_broadcast_part"; "array_get_elem";
    "array_part_bounds"; "array_put_elem"; "array_permute_rows";
    "array_gen_mult";
  ]

let program ~env (prog : Ast.program) : Ast.program =
  let funcs = Hashtbl.create 64 in
  List.iter
    (function
      | Ast.TFunc f -> Hashtbl.replace funcs f.Ast.f_name f | _ -> ())
    prog;
  let used = Hashtbl.create 256 in
  let use n = Hashtbl.replace used n () in
  List.iter
    (function
      | Ast.TFunc f ->
          use f.Ast.f_name;
          List.iter (fun (p : Ast.param) -> use p.Ast.p_name) f.Ast.f_params;
          Option.iter
            (List.iter
               (iter_stmt
                  (fun (e : Ast.expr) ->
                    match e.Ast.desc with Ast.Var x -> use x | _ -> ())
                  (function Ast.SDecl (_, x, _) -> use x | _ -> ())))
            f.Ast.f_body
      | Ast.TStruct s -> use s.Ast.s_name
      | Ast.TTypedef t -> use t.Ast.td_name
      | Ast.TPardata p -> use p.Ast.pd_name)
    prog;
  let clean =
    List.for_all (fun n -> not (Hashtbl.mem funcs n)) skeleton_builtins
  in
  let ctx =
    {
      env;
      funcs;
      eff = Hashtbl.create 64;
      used;
      fresh = 0;
      new_funcs = [];
      changed = false;
      clean;
    }
  in
  let rec fix n prog =
    ctx.changed <- false;
    compute_effects ctx;
    let prog =
      List.map
        (function
          | Ast.TFunc f ->
              let f' = opt_func ctx f in
              Hashtbl.replace ctx.funcs f.Ast.f_name f';
              Ast.TFunc f'
          | t -> t)
        prog
    in
    let added = List.rev_map (fun f -> Ast.TFunc f) ctx.new_funcs in
    ctx.new_funcs <- [];
    let prog = prog @ added in
    if ctx.changed && n < 10 then fix (n + 1) prog else prog
  in
  fix 0 prog
