(** Compile-to-closures execution engine ("translation by instantiation",
    paper section 4, carried out in process).

    {!program} runs once after typechecking (and normally after
    {!Instantiate.program}) and translates every function body into OCaml
    closures: lexical frame slots instead of assoc-list environments,
    positional struct fields, compile-time-specialized operators, and
    pre-resolved call targets/arities.  The result is shared by all
    simulated processors; per-processor mutable context lives in the
    {!Interp.state} passed at call time.

    The engine charges exactly the same [pending_ops] per expression node
    and flushes at the same points as the reference interpreter, so
    printed output, return values, simulated makespans, Stats and traces
    are bit-identical between the two engines (enforced by
    [test/test_engines.ml]). *)

type t
(** A compiled program: closure code for every function with a body. *)

val program : tyenv:Typecheck.env -> ?specialize:bool -> Ast.program -> t
(** Compile a {e typechecked} program ([tyenv] must come from
    [Typecheck.check] on this exact AST — field-position annotations are
    read off the expression nodes).

    [specialize] (default [true]) additionally intercepts saturated
    skeleton calls whose element type is statically int or double: their
    distributed arrays are stored as flat unboxed [int array]/[float array]
    partitions and their argument functions run as unboxed closures — the
    paper's "translation by instantiation" applied to the data plane.
    Struct/pointer payloads and curried skeleton applications fall back to
    the generic boxed path.  Either way the observable behaviour (output,
    values, makespans, Stats, traces) is bit-identical. *)

val call : t -> Interp.state -> string -> Value.t list -> Value.t
(** Call a compiled function or builtin by name.  [st] must be built over
    the same program ({!Interp.make}); it carries the processor context,
    output buffer and pending-operation counter. *)

val apply : t -> Interp.state -> Value.t -> Value.t list -> Value.t
(** Apply a (possibly curried) function value under the compiled engine. *)
