(* Compile-to-closures execution engine: "translation by instantiation",
   in process.

   Runs after typechecking (and normally after Instantiate.program, whose
   output is first-order).  Each function body is translated ONCE into a
   tree of OCaml closures:

     - variables become integer slots into a [Value.t array] frame instead
       of assoc-list lookups;
     - struct fields resolve to positional indices recorded by the
       typechecker (with a cheap name check and a search fallback);
     - binary operators are specialized at compile time (no string
       dispatch on the hot path);
     - call targets and arities are resolved at compile time: saturated
       calls invoke the target closure directly, and currying machinery is
       only emitted for genuinely partial or dynamic applications.

   Cost-accounting contract: the reference interpreter bumps
   [st.pending_ops] once per expression node evaluated and flushes before
   every statement and every array_* collective.  Compiled code must leave
   the SAME counter value at every flush point, so simulated clocks, Stats
   and traces are bit-identical between engines.  Node counts of call-free,
   branch-free subtrees are pre-summed at compile time ([ops = Some n]) and
   added with one increment; any subtree that may flush mid-evaluation
   (calls) or evaluate children conditionally (&&, ||, ?:) stays dynamic
   and bumps at its interpreter-defined position. *)

open Value

type frame = Value.t array

type ecode = {
  ops : int option;
      (* [Some n]: call-free subtree of n nodes; [run] does NOT bump
         pending_ops — the consumer adds n.  [None]: [run] bumps its own
         nodes internally. *)
  run : Interp.state -> frame -> Value.t;
}

type scode = Interp.state -> frame -> unit

type cfn = {
  c_arity : int;
  (* mutable so recursive / forward references patch through the table;
     read at call time *)
  mutable c_size : int;  (* frame slots of the compiled body *)
  mutable c_ix_safe : bool;
      (* body provably never assigns through an Index subscript, so a
         skeleton element loop may lend it the iteration's scratch index
         without a private copy (see [stmt_writes_index]) *)
  mutable c_run : Interp.state -> frame -> Value.t;
      (* run the body on a caller-built frame (specialised call sites fill
         slots directly, skipping the argument list) *)
  mutable c_invoke : Interp.state -> Value.t list -> Value.t;
}

type t = {
  cfuncs : (string, cfn) Hashtbl.t;
  tyenv : Typecheck.env;
  specialize : bool;
      (* payload specialisation: intercept saturated skeleton calls and run
         them over unboxed int/float partitions (--no-specialize turns the
         compiled engine back into PR 3's generic-payload version) *)
}

type fctx = {
  prog : t;
  scratch : Interp.state;
      (* sequential state over the same program: compile-time evaluation
         of default values and backend-independent constants *)
  mutable nslots : int;
}

let known n run = { ops = Some n; run }
let dyn run = { ops = None; run }

let seal c =
  match c.ops with
  | None -> c.run
  | Some n ->
      fun st f ->
        st.Interp.pending_ops <- st.Interp.pending_ops + n;
        c.run st f

let bump st n = st.Interp.pending_ops <- st.Interp.pending_ops + n

(* One combinator for single-child nodes ([g] must be pure w.r.t. the
   pending counter). *)
let combine1 ce g =
  match ce.ops with
  | Some n -> known (1 + n) (fun st f -> g (ce.run st f))
  | None ->
      let r = seal ce in
      dyn (fun st f ->
          bump st 1;
          g (r st f))

(* Whether a body contains an assignment through an Index subscript
   (ix[i] = ...) — the only operation that mutates an Index array in place.
   Every other boundary copies ([Value.copy] on declarations, assignments,
   parameter passing and returns), so a function whose body is free of
   subscript assignment can be lent a skeleton iteration's scratch index
   without a private copy: it can neither mutate nor retain it. *)
let rec expr_writes_index (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Assign ({ Ast.desc = Ast.Idx _; _ }, _) -> true
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.Var _
  | Ast.OpSection _ ->
      false
  | Ast.Call (f, args) ->
      expr_writes_index f || List.exists expr_writes_index args
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Idx (a, b) ->
      expr_writes_index a || expr_writes_index b
  | Ast.Unop (_, a) | Ast.Field (a, _) | Ast.Arrow (a, _) | Ast.Deref a
  | Ast.New a ->
      expr_writes_index a
  | Ast.ArrayLit es -> List.exists expr_writes_index es
  | Ast.Cond (a, b, c) ->
      expr_writes_index a || expr_writes_index b || expr_writes_index c

let rec stmt_writes_index = function
  | Ast.SExpr e -> expr_writes_index e
  | Ast.SDecl (_, _, init) ->
      Option.fold ~none:false ~some:expr_writes_index init
  | Ast.SIf (c, a, b) ->
      expr_writes_index c
      || List.exists stmt_writes_index a
      || List.exists stmt_writes_index b
  | Ast.SWhile (c, b) ->
      expr_writes_index c || List.exists stmt_writes_index b
  | Ast.SFor (i, c, s, b) ->
      Option.fold ~none:false ~some:stmt_writes_index i
      || Option.fold ~none:false ~some:expr_writes_index c
      || Option.fold ~none:false ~some:expr_writes_index s
      || List.exists stmt_writes_index b
  | Ast.SReturn e -> Option.fold ~none:false ~some:expr_writes_index e
  | Ast.SBreak | Ast.SContinue -> false
  | Ast.SBlock b -> List.exists stmt_writes_index b

(* ---------------- runtime application (currying fallback) -------------- *)

let rec rt_apply prog st v args =
  match v with
  | VFun f -> rt_apply_fun prog st f args
  | v when args = [] -> v
  | v -> rte "cannot apply %s" (describe v)

and rt_apply_fun prog st f args =
  let supplied = f.fv_applied @ args in
  let arity =
    match f.fv_target with
    | `Op _ -> 2
    | `User name -> (
        match Hashtbl.find_opt prog.cfuncs name with
        | Some fn -> fn.c_arity
        | None -> rte "undefined function %s" name)
    | `Builtin name -> (
        match Typecheck.builtin_arity name with
        | Some n -> n
        | None -> rte "unknown builtin %s" name)
  in
  let nsupplied = List.length supplied in
  if nsupplied < arity then VFun { f with fv_applied = supplied }
  else if nsupplied > arity then
    let now, later = Interp.split_at arity supplied in
    rt_apply prog st (rt_invoke prog st f.fv_target now) later
  else rt_invoke prog st f.fv_target supplied

and rt_invoke prog st target args =
  match target with
  | `Op op -> (
      match args with
      | [ a; b ] -> Interp.binop op a b
      | _ -> rte "operator section applied to %d args" (List.length args))
  | `User name -> (
      match Hashtbl.find_opt prog.cfuncs name with
      | None -> rte "undefined function %s" name
      | Some fn -> fn.c_invoke st args)
  | `Builtin name -> Interp.builtin st ~apply:(rt_apply prog st) name args

(* ---------------- operator specialization ---------------- *)

(* Fast paths for the concrete representations; every fallthrough lands in
   the shared Interp implementation so error messages stay identical. *)
let op_fn op : Value.t -> Value.t -> Value.t =
  match op with
  | "+" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (x + y)
        | VFloat x, VFloat y -> VFloat (x +. y)
        | _ -> Interp.arith "+" a b)
  | "-" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (x - y)
        | VFloat x, VFloat y -> VFloat (x -. y)
        | _ -> Interp.arith "-" a b)
  | "*" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (x * y)
        | VFloat x, VFloat y -> VFloat (x *. y)
        | _ -> Interp.arith "*" a b)
  | "/" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y ->
            if y = 0 then rte "division by zero" else VInt (x / y)
        | VFloat x, VFloat y -> VFloat (x /. y)
        | _ -> Interp.arith "/" a b)
  | "%" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y ->
            if y = 0 then rte "modulo by zero" else VInt (x mod y)
        | _ -> Interp.arith "%" a b)
  | "==" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (if x = y then 1 else 0)
        | _ -> VInt (if Interp.equal_values a b then 1 else 0))
  | "!=" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (if x <> y then 1 else 0)
        | _ -> VInt (if Interp.equal_values a b then 0 else 1))
  | "<" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (if x < y then 1 else 0)
        | _ -> VInt (if Interp.compare_values a b < 0 then 1 else 0))
  | ">" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (if x > y then 1 else 0)
        | _ -> VInt (if Interp.compare_values a b > 0 then 1 else 0))
  | "<=" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (if x <= y then 1 else 0)
        | _ -> VInt (if Interp.compare_values a b <= 0 then 1 else 0))
  | ">=" -> (
      fun a b ->
        match (a, b) with
        | VInt x, VInt y -> VInt (if x >= y then 1 else 0)
        | _ -> VInt (if Interp.compare_values a b >= 0 then 1 else 0))
  | op -> fun a b -> Interp.binop op a b

(* Pure scalar builtins, resolved at the call site: the same results and
   the same error text as the corresponding [Interp.builtin] arms, minus
   the argument-list cons and the dispatcher's string match (gauss's pivot
   fold calls fabs once per element).  None of these flush pending work,
   so their node counts pre-sum like any other flush-free subtree. *)
let bad_args name v =
  rte "builtin %s: bad arguments (%s)" name (describe v)

let scalar_builtin_1 = function
  | "abs" ->
      Some (function VInt n -> VInt (abs n) | v -> bad_args "abs" v)
  | "fabs" ->
      Some
        (function VFloat f -> VFloat (Float.abs f) | v -> bad_args "fabs" v)
  | "sqrt" ->
      Some (function VFloat f -> VFloat (sqrt f) | v -> bad_args "sqrt" v)
  | "log2" ->
      Some
        (function
          | VInt n ->
              let rec go k pow = if pow >= n then k else go (k + 1) (2 * pow) in
              VInt (go 0 1)
          | v -> bad_args "log2" v)
  | "itof" ->
      Some
        (function
          | VInt n -> VFloat (float_of_int n) | v -> bad_args "itof" v)
  | "ftoi" ->
      Some
        (function
          | VFloat f -> VInt (int_of_float f) | v -> bad_args "ftoi" v)
  | _ -> None

let scalar_builtin_2 = function
  | "min" ->
      Some (fun a b -> if Interp.compare_values a b <= 0 then a else b)
  | "max" ->
      Some (fun a b -> if Interp.compare_values a b >= 0 then a else b)
  | _ -> None

(* ---------------- payload-specialised skeleton calls ----------------

   The paper's "translation by instantiation" carried into the data plane:
   after typecheck + instantiation every frontend pardata has a statically
   known element type, so a saturated skeleton call over int/double
   elements can run on flat unboxed partitions (Value.DInt/DFloat) with its
   argument functions compiled to unboxed closures — no [Value.t] allocated
   per element.  Interception is decided per call site at compile time
   (from the typechecker's [inst] annotation where the payload choice needs
   it); the resulting handler still re-checks the run-time payload kinds
   and falls back to the generic [Interp.builtin] dispatcher whenever a
   function value or payload defeats it (arrays created through curried
   fallback paths stay generic, struct/pointer elements stay boxed).

   The cost contract is untouched: handlers flush at the same point the
   generic dispatcher flushes, charge through the same [Skeletons] entry
   points with the same op counts and byte sizes, and specialised
   argument-function closures run the very same compiled bodies via
   [c_run] (same pending_ops bumps, same flush points) — only the boxing
   at the call boundary differs.  [test/test_engines.ml] pins makespans,
   Stats and traces bit-identical across engines × specialisation. *)

let box_i n = VInt n
let box_f x = VFloat x

(* A user function saturated by exactly [extra] more arguments, as a target
   for a direct-frame invoker; None sends the caller to the generic path. *)
let user_target prog fv ~extra =
  match fv with
  | VFun { fv_target = `User name; fv_applied } -> (
      match Hashtbl.find_opt prog.cfuncs name with
      | Some fn when List.length fv_applied + extra = fn.c_arity ->
          Some (fn, Array.of_list fv_applied)
      | _ -> None)
  | _ -> None

(* Element function of map/fold-conv: last two parameters are (element,
   Index).  The frame is built directly — applied arguments and boxed
   element mirror [c_invoke]'s per-argument [Value.copy] (scalar boxes are
   fresh, so they need no copy).  The Index argument: the generic path
   hands the callee a private copy of the iteration's scratch index; when
   the body provably never writes through an Index ([c_ix_safe]) the
   scratch is lent directly. *)
let elem_fn2 prog st fv ~box ~unbox =
  match user_target prog fv ~extra:2 with
  | None -> None
  | Some (fn, appl) ->
      let na = Array.length appl in
      let size = fn.c_size and ix_safe = fn.c_ix_safe in
      Some
        (fun v ix ->
          let frame = Array.make size VUnit in
          for i = 0 to na - 1 do
            frame.(i) <- Value.copy appl.(i)
          done;
          frame.(na) <- box v;
          frame.(na + 1) <- VIndex (if ix_safe then ix else Array.copy ix);
          unbox (fn.c_run st frame))

(* Init function of array_create: Index -> element. *)
let elem_fn1 prog st fv ~unbox =
  match user_target prog fv ~extra:1 with
  | None -> None
  | Some (fn, appl) ->
      let na = Array.length appl in
      let size = fn.c_size and ix_safe = fn.c_ix_safe in
      Some
        (fun ix ->
          let frame = Array.make size VUnit in
          for i = 0 to na - 1 do
            frame.(i) <- Value.copy appl.(i)
          done;
          frame.(na) <- VIndex (if ix_safe then ix else Array.copy ix);
          unbox (fn.c_run st frame))

(* Binary combining functions (fold merge, gen_mult add/mul) at unboxed
   int/float.  Operator sections and min/max keep the generic semantics
   exactly (same division-by-zero messages, same tie-breaking: min/max
   answer the LEFT operand on equality). *)
let int_binop prog st fv : (int -> int -> int) option =
  match fv with
  | VFun { fv_target = `Op op; fv_applied = [] } -> (
      match op with
      | "+" -> Some ( + )
      | "-" -> Some ( - )
      | "*" -> Some ( * )
      | "/" ->
          Some (fun a b -> if b = 0 then rte "division by zero" else a / b)
      | "%" ->
          Some (fun a b -> if b = 0 then rte "modulo by zero" else a mod b)
      | _ -> None)
  | VFun { fv_target = `Builtin "min"; fv_applied = [] } ->
      Some (fun a b -> if a <= b then a else b)
  | VFun { fv_target = `Builtin "max"; fv_applied = [] } ->
      Some (fun a b -> if a >= b then a else b)
  | _ -> (
      match user_target prog fv ~extra:2 with
      | None -> None
      | Some (fn, appl) ->
          let na = Array.length appl in
          let size = fn.c_size in
          Some
            (fun a b ->
              let frame = Array.make size VUnit in
              for i = 0 to na - 1 do
                frame.(i) <- Value.copy appl.(i)
              done;
              frame.(na) <- VInt a;
              frame.(na + 1) <- VInt b;
              as_int (fn.c_run st frame)))

let float_binop prog st fv : (float -> float -> float) option =
  match fv with
  | VFun { fv_target = `Op op; fv_applied = [] } -> (
      match op with
      | "+" -> Some ( +. )
      | "-" -> Some ( -. )
      | "*" -> Some ( *. )
      | "/" -> Some ( /. )
      | _ -> None)
  | VFun { fv_target = `Builtin "min"; fv_applied = [] } ->
      Some (fun a b -> if Float.compare a b <= 0 then a else b)
  | VFun { fv_target = `Builtin "max"; fv_applied = [] } ->
      Some (fun a b -> if Float.compare a b >= 0 then a else b)
  | _ -> (
      match user_target prog fv ~extra:2 with
      | None -> None
      | Some (fn, appl) ->
          let na = Array.length appl in
          let size = fn.c_size in
          Some
            (fun a b ->
              let frame = Array.make size VUnit in
              for i = 0 to na - 1 do
                frame.(i) <- Value.copy appl.(i)
              done;
              frame.(na) <- VFloat a;
              frame.(na + 1) <- VFloat b;
              as_float (fn.c_run st frame)))

(* Value-level binary combining function: still boxed, but skips the
   currying machinery (used for struct-accumulator fold merges and
   generic-payload gen_mult). *)
let value_fn2 prog st fv =
  match user_target prog fv ~extra:2 with
  | None -> None
  | Some (fn, appl) ->
      let na = Array.length appl in
      let size = fn.c_size in
      Some
        (fun a b ->
          let frame = Array.make size VUnit in
          for i = 0 to na - 1 do
            frame.(i) <- Value.copy appl.(i)
          done;
          frame.(na) <- Value.copy a;
          frame.(na + 1) <- Value.copy b;
          fn.c_run st frame)

let value_binop prog st fv : (Value.t -> Value.t -> Value.t) option =
  match fv with
  | VFun { fv_target = `Op op; fv_applied = [] } -> Some (op_fn op)
  | VFun { fv_target = `Builtin "min"; fv_applied = [] } ->
      Some (fun a b -> if Interp.compare_values a b <= 0 then a else b)
  | VFun { fv_target = `Builtin "max"; fv_applied = [] } ->
      Some (fun a b -> if Interp.compare_values a b >= 0 then a else b)
  | _ -> value_fn2 prog st fv

(* Compile-time interception of a saturated skeleton call.  Returns a
   handler over the already-evaluated arguments (the call-site wrapper
   flushes pending scalar work first, exactly where the generic dispatcher
   flushes), or None to use the generic dispatcher unconditionally. *)
let specialize_skeleton prog (h : Ast.expr) name :
    (Interp.state -> Value.t list -> Value.t) option =
  let kind v =
    match List.assoc_opt v h.Ast.inst with
    | Some t -> (
        match Typecheck.expand prog.tyenv t with
        | Ast.TInt -> Some `I
        | Ast.TFloat -> Some `F
        | _ -> None)
    | None -> None
  in
  let generic st argv =
    Interp.builtin st ~apply:(rt_apply prog st) name argv
  in
  match name with
  | "array_create" ->
      (* the one call where the payload choice must come from the static
         element type: the init function returns a bare value *)
      Some
        (fun st argv ->
          match argv with
          | [ VInt dim; VIndex size; VIndex _; VIndex _; init; VInt distr ]
            -> (
              let mk : 'e. ('e Darray.t -> darray) -> (Index.t -> 'e) ->
                  Value.t =
               fun wrap f ->
                let ctx = Interp.ctx_of st in
                if Array.length size <> dim then rte "array_create: bad Size";
                VDarray
                  (wrap
                     (Skeletons.create ctx ~gsize:(Array.copy size)
                        ~distr:(Interp.distr_of distr) f))
              in
              match kind "t" with
              | Some `I -> (
                  match elem_fn1 prog st init ~unbox:as_int with
                  | Some f -> mk (fun a -> DInt a) f
                  | None -> generic st argv)
              | Some `F -> (
                  match elem_fn1 prog st init ~unbox:as_float with
                  | Some f -> mk (fun a -> DFloat a) f
                  | None -> generic st argv)
              | None -> (
                  match elem_fn1 prog st init ~unbox:Value.copy with
                  | Some f -> mk (fun a -> DGen a) f
                  | None -> generic st argv))
          | argv -> generic st argv)
  | "array_create_const" ->
      (* constant-element variant (produced by the fusion pass): payload
         choice from the static element type, no initialiser function at
         all *)
      Some
        (fun st argv ->
          match argv with
          | [ VInt dim; VIndex size; VIndex _; VIndex _; cv; VInt distr ] ->
              let mk : 'e. ('e Darray.t -> darray) -> (Index.t -> 'e) ->
                  Value.t =
               fun wrap f ->
                let ctx = Interp.ctx_of st in
                if Array.length size <> dim then
                  rte "array_create_const: bad Size";
                VDarray
                  (wrap
                     (Skeletons.create ctx ~gsize:(Array.copy size)
                        ~distr:(Interp.distr_of distr) f))
              in
              (match kind "t" with
               | Some `I ->
                   let n = as_int cv in
                   mk (fun a -> DInt a) (fun _ -> n)
               | Some `F ->
                   let x = as_float cv in
                   mk (fun a -> DFloat a) (fun _ -> x)
               | None -> mk (fun a -> DGen a) (fun _ -> Value.copy cv))
          | argv -> generic st argv)
  | "array_map" ->
      (* run-time payload kinds fully determine the boxing *)
      Some
        (fun st argv ->
          match argv with
          | [ fv; VDarray src; VDarray dst ] -> (
              let same :
                  'e. ('e -> Index.t -> 'e) option -> 'e Darray.t ->
                  'e Darray.t -> Value.t =
               fun g s d ->
                match g with
                | Some g ->
                    Skeletons.map (Interp.ctx_of st) g s d;
                    VUnit
                | None -> generic st argv
              in
              let into :
                  'a 'b. ('a -> Index.t -> 'b) option -> 'a Darray.t ->
                  'b Darray.t -> Value.t =
               fun g s d ->
                match g with
                | Some g ->
                    Skeletons.map_into (Interp.ctx_of st) g s d;
                    VUnit
                | None -> generic st argv
              in
              let fn2 ~box ~unbox = elem_fn2 prog st fv ~box ~unbox in
              match (src, dst) with
              | DInt s, DInt d -> same (fn2 ~box:box_i ~unbox:as_int) s d
              | DFloat s, DFloat d ->
                  same (fn2 ~box:box_f ~unbox:as_float) s d
              | DGen s, DGen d ->
                  same (fn2 ~box:Value.copy ~unbox:Value.copy) s d
              | DInt s, DFloat d -> into (fn2 ~box:box_i ~unbox:as_float) s d
              | DFloat s, DInt d -> into (fn2 ~box:box_f ~unbox:as_int) s d
              | DGen s, DInt d -> into (fn2 ~box:Value.copy ~unbox:as_int) s d
              | DGen s, DFloat d ->
                  into (fn2 ~box:Value.copy ~unbox:as_float) s d
              | DInt s, DGen d -> into (fn2 ~box:box_i ~unbox:Value.copy) s d
              | DFloat s, DGen d ->
                  into (fn2 ~box:box_f ~unbox:Value.copy) s d)
          | argv -> generic st argv)
  | "array_fold" ->
      let acc_kind = kind "t2" in
      Some
        (fun st argv ->
          match argv with
          | [ conv; fv; VDarray a ] -> (
              (* scalar accumulators fold fully unboxed (acc wire size is 4,
                 matching Value.wire_bytes on VInt/VFloat and the empty-
                 partition elem_bytes fallback); struct accumulators keep a
                 boxed acc but still run conv/merge on direct frames *)
              let go :
                  'e. box:('e -> Value.t) -> 'e Darray.t -> Value.t =
               fun ~box a ->
                let fn2 unbox = elem_fn2 prog st conv ~box ~unbox in
                let scalar =
                  match acc_kind with
                  | Some `I -> (
                      match (fn2 as_int, int_binop prog st fv) with
                      | Some c, Some f -> Some (`IFold (c, f))
                      | _ -> None)
                  | Some `F -> (
                      match (fn2 as_float, float_binop prog st fv) with
                      | Some c, Some f -> Some (`FFold (c, f))
                      | _ -> None)
                  | None -> None
                in
                match scalar with
                | Some (`IFold (c, f)) ->
                    VInt
                      (Skeletons.fold (Interp.ctx_of st)
                         ~acc_bytes_of:(fun _ -> 4)
                         ~conv:c f a)
                | Some (`FFold (c, f)) ->
                    VFloat
                      (Skeletons.fold (Interp.ctx_of st)
                         ~acc_bytes_of:(fun _ -> 4)
                         ~conv:c f a)
                | None -> (
                    match fn2 Value.copy with
                    | Some c ->
                        let g =
                          match value_binop prog st fv with
                          | Some g -> g
                          | None -> fun x y -> rt_apply prog st fv [ x; y ]
                        in
                        Skeletons.fold (Interp.ctx_of st)
                          ~acc_bytes_of:Value.wire_bytes ~conv:c g a
                    | None -> generic st argv)
              in
              match a with
              | DInt a -> go ~box:box_i a
              | DFloat a -> go ~box:box_f a
              | DGen a -> go ~box:Value.copy a)
          | argv -> generic st argv)
  | "array_gen_mult" ->
      Some
        (fun st argv ->
          match argv with
          | [ VDarray a; VDarray b; add; mul; VDarray c ] -> (
              match (a, b, c) with
              | DInt a, DInt b, DInt c -> (
                  match (int_binop prog st add, int_binop prog st mul) with
                  | Some fa, Some fm ->
                      Skeletons.gen_mult (Interp.ctx_of st) ~add:fa ~mul:fm a
                        b c;
                      VUnit
                  | _ -> generic st argv)
              | DFloat a, DFloat b, DFloat c -> (
                  match (float_binop prog st add, float_binop prog st mul)
                  with
                  | Some fa, Some fm ->
                      Skeletons.gen_mult (Interp.ctx_of st) ~add:fa ~mul:fm a
                        b c;
                      VUnit
                  | _ -> generic st argv)
              | DGen a, DGen b, DGen c -> (
                  match (value_binop prog st add, value_binop prog st mul)
                  with
                  | Some fa, Some fm ->
                      Skeletons.gen_mult (Interp.ctx_of st) ~add:fa ~mul:fm a
                        b c;
                      VUnit
                  | _ -> generic st argv)
              | _ -> generic st argv)
          | argv -> generic st argv)
  (* array_get_elem / array_put_elem / array_part_bounds are intercepted
     earlier, at the call site (compile_call), where the argument slots can
     be read without consing a list *)
  | _ -> None

(* ---------------- struct field resolution ---------------- *)

(* Position of [fname] in the struct type the typechecker recorded on this
   Field/Arrow node (the "<struct>" annotation), if any. *)
let field_slot fc (e : Ast.expr) fname =
  match List.assoc_opt "<struct>" e.Ast.inst with
  | Some (Ast.TNamed (n, _)) -> (
      match Typecheck.struct_def fc.prog.tyenv n with
      | Some sd ->
          let rec pos i = function
            | [] -> None
            | (_, fn) :: _ when String.equal fn fname -> Some i
            | _ :: rest -> pos (i + 1) rest
          in
          pos 0 sd.Ast.s_fields
      | None -> None)
  | _ -> None

(* The name check guards against an annotation that went stale (e.g. an AST
   shared across programs); the fallback searches like the interpreter. *)
let field_ref idx fname s =
  match idx with
  | Some i
    when i < Array.length s.s_names && String.equal s.s_names.(i) fname ->
      s.s_vals.(i)
  | _ -> Value.struct_field s fname

let field_get idx fname v =
  match v with
  | VStruct s -> !(field_ref idx fname s)
  | VBounds b -> Interp.bounds_field b fname
  | v -> rte "field access on %s" (describe v)

(* ---------------- expressions ---------------- *)

let fresh_slot fc =
  let s = fc.nslots in
  fc.nslots <- s + 1;
  s

let rec compile_expr fc scope (e : Ast.expr) : ecode =
  match e.Ast.desc with
  | Ast.Int n ->
      let v = VInt n in
      known 1 (fun _ _ -> v)
  | Ast.Float x ->
      let v = VFloat x in
      known 1 (fun _ _ -> v)
  | Ast.Str s ->
      let v = VStr s in
      known 1 (fun _ _ -> v)
  | Ast.Chr c ->
      let v = VChar c in
      known 1 (fun _ _ -> v)
  | Ast.OpSection op ->
      let v = VFun { fv_target = `Op op; fv_applied = [] } in
      known 1 (fun _ _ -> v)
  | Ast.Var x -> (
      match List.assoc_opt x scope with
      | Some slot -> known 1 (fun _ f -> f.(slot))
      | None ->
          if Interp.is_constant x then
            match x with
            | "procId" ->
                known 1 (fun st _ ->
                    match st.Interp.backend with
                    | `Par ctx -> VInt (Machine.self ctx)
                    | `Seq -> VInt 0)
            | "nProcs" ->
                known 1 (fun st _ ->
                    match st.Interp.backend with
                    | `Par ctx -> VInt (Machine.nprocs ctx)
                    | `Seq -> VInt 1)
            | _ ->
                let v = Option.get (Interp.constant fc.scratch x) in
                known 1 (fun _ _ -> v)
          else if Hashtbl.mem fc.prog.cfuncs x then
            let v = VFun { fv_target = `User x; fv_applied = [] } in
            known 1 (fun _ _ -> v)
          else if Typecheck.is_builtin x then
            let v = VFun { fv_target = `Builtin x; fv_applied = [] } in
            known 1 (fun _ _ -> v)
          else known 1 (fun _ _ -> rte "unbound identifier %s" x))
  | Ast.Call (h, args) -> compile_call fc scope h args
  | Ast.Binop ((("&&" | "||") as op), a, b) ->
      let ca = seal (compile_expr fc scope a) in
      let cb = seal (compile_expr fc scope b) in
      if op = "&&" then
        dyn (fun st f ->
            bump st 1;
            if truthy (ca st f) then
              VInt (if truthy (cb st f) then 1 else 0)
            else VInt 0)
      else
        dyn (fun st f ->
            bump st 1;
            if truthy (ca st f) then VInt 1
            else VInt (if truthy (cb st f) then 1 else 0))
  | Ast.Binop (op, a, b) -> (
      let fop = op_fn op in
      let ca = compile_expr fc scope a in
      let cb = compile_expr fc scope b in
      match (ca.ops, cb.ops) with
      | Some na, Some nb ->
          known
            (1 + na + nb)
            (fun st f ->
              let va = ca.run st f in
              let vb = cb.run st f in
              fop va vb)
      | _ ->
          let ra = seal ca and rb = seal cb in
          dyn (fun st f ->
              bump st 1;
              let va = ra st f in
              let vb = rb st f in
              fop va vb))
  | Ast.Unop ("!", a) ->
      combine1 (compile_expr fc scope a) (fun v ->
          VInt (if truthy v then 0 else 1))
  | Ast.Unop ("-", a) ->
      combine1 (compile_expr fc scope a) (fun v ->
          match v with
          | VInt n -> VInt (-n)
          | VFloat x -> VFloat (-.x)
          | v -> rte "cannot negate %s" (describe v))
  | Ast.Unop (op, _) ->
      known 1 (fun _ _ -> rte "unknown unary operator %s" op)
  | Ast.Assign (l, r) ->
      let cr = compile_expr fc scope r in
      compile_assign fc scope l cr
  | Ast.Idx (a, i) -> (
      let ca = compile_expr fc scope a in
      let ci = compile_expr fc scope i in
      let get arr j =
        if j >= 0 && j < Array.length arr then VInt arr.(j)
        else rte "Index access out of range (%d)" j
      in
      match (ca.ops, ci.ops) with
      | Some na, Some ni ->
          known
            (1 + na + ni)
            (fun st f ->
              let arr = as_index (ca.run st f) in
              get arr (as_int (ci.run st f)))
      | _ ->
          let ra = seal ca and ri = seal ci in
          dyn (fun st f ->
              bump st 1;
              let arr = as_index (ra st f) in
              get arr (as_int (ri st f))))
  | Ast.Field (s, fname) ->
      let idx = field_slot fc e fname in
      combine1 (compile_expr fc scope s) (field_get idx fname)
  | Ast.Arrow (p, fname) ->
      let idx = field_slot fc e fname in
      combine1 (compile_expr fc scope p) (fun v ->
          match v with
          | VPtr r -> field_get idx fname !r
          | VBounds b -> Interp.bounds_field b fname
          | VNull -> rte "dereference of NULL"
          | v -> rte "-> applied to %s" (describe v))
  | Ast.Deref p ->
      combine1 (compile_expr fc scope p) (fun v ->
          match v with
          | VPtr r -> !r
          | VNull -> rte "dereference of NULL"
          | v -> rte "dereference of %s" (describe v))
  | Ast.ArrayLit es -> (
      let cs = List.map (compile_expr fc scope) es in
      let fill runs st f =
        let n = Array.length runs in
        let out = Array.make n 0 in
        for i = 0 to n - 1 do
          out.(i) <- as_int (runs.(i) st f)
        done;
        VIndex out
      in
      if List.for_all (fun c -> c.ops <> None) cs then
        let total =
          List.fold_left (fun s c -> s + Option.get c.ops) 1 cs
        in
        let raws = Array.of_list (List.map (fun c -> c.run) cs) in
        known total (fill raws)
      else
        let sealed = Array.of_list (List.map seal cs) in
        dyn (fun st f ->
            bump st 1;
            fill sealed st f))
  | Ast.Cond (c, a, b) ->
      let cc = seal (compile_expr fc scope c) in
      let ca = seal (compile_expr fc scope a) in
      let cb = seal (compile_expr fc scope b) in
      dyn (fun st f ->
          bump st 1;
          if truthy (cc st f) then ca st f else cb st f)
  | Ast.New e ->
      combine1 (compile_expr fc scope e) (fun v ->
          VPtr (ref (Value.copy v)))

(* Calls.  Head bumps: the Call node plus, for a Var/OpSection head
   resolved statically, that head node (= 2).  Argument order mirrors the
   interpreter: head first, then arguments left to right. *)
and compile_call fc scope h args =
  let acs = List.map (compile_expr fc scope) args in
  let nargs = List.length acs in
  let all_known = List.for_all (fun c -> c.ops <> None) acs in
  let args_ops =
    if all_known then
      List.fold_left (fun s c -> s + Option.get c.ops) 0 acs
    else 0
  in
  let sealed = Array.of_list (List.map seal acs) in
  let eval_sealed st f =
    let n = Array.length sealed in
    let rec go i =
      if i = n then []
      else
        let v = sealed.(i) st f in
        v :: go (i + 1)
    in
    go 0
  in
  let raws = Array.of_list (List.map (fun c -> c.run) acs) in
  let eval_raw st f =
    let n = Array.length raws in
    let rec go i =
      if i = n then []
      else
        let v = raws.(i) st f in
        v :: go (i + 1)
    in
    go 0
  in
  (* a partial application allocates a closure value but cannot flush *)
  let partial target =
    if all_known then
      known (2 + args_ops) (fun st f ->
          VFun { fv_target = target; fv_applied = eval_raw st f })
    else
      dyn (fun st f ->
          bump st 2;
          VFun { fv_target = target; fv_applied = eval_sealed st f })
  in
  let over target arity =
    dyn (fun st f ->
        bump st 2;
        let argv = eval_sealed st f in
        let now, later = Interp.split_at arity argv in
        rt_apply fc.prog st (rt_invoke fc.prog st target now) later)
  in
  let direct =
    match h.Ast.desc with
    | Ast.Var x
      when (not (List.mem_assoc x scope)) && not (Interp.is_constant x)
      -> (
        match Hashtbl.find_opt fc.prog.cfuncs x with
        | Some fn -> `User (x, fn)
        | None ->
            if Typecheck.is_builtin x then
              `Builtin (x, Option.get (Typecheck.builtin_arity x))
            else `Unbound x)
    | Ast.OpSection op -> `Opsec op
    | _ -> `General
  in
  match direct with
  | `Unbound x ->
      (* the interpreter bumps Call then the head Var, then raises before
         touching the arguments *)
      dyn (fun st _ ->
          bump st 2;
          rte "unbound identifier %s" x)
  | `User (x, fn) ->
      if nargs = fn.c_arity then
        dyn (fun st f ->
            bump st 2;
            fn.c_invoke st (eval_sealed st f))
      else if nargs < fn.c_arity then partial (`User x)
      else over (`User x) fn.c_arity
  | `Builtin (x, arity) -> (
      if nargs <> arity then
        if nargs < arity then partial (`Builtin x) else over (`Builtin x) arity
      else
        (* Local-access builtins are the per-element hot path of skeleton
           argument functions (gauss reads two elements per eliminate call):
           evaluate the argument slots straight into locals instead of
           consing an argument list, with the same bumps and the same flush
           point as the generic dispatcher.  On a shape mismatch we rebuild
           the list and fall back (the dispatcher re-flushes; that is a
           no-op at pending = 0). *)
        match (x, sealed) with
        | "array_get_elem", [| sa; si |] when fc.prog.specialize ->
            dyn (fun st f ->
                bump st 2;
                let va = sa st f in
                let vi = si st f in
                Interp.flush_scalar st;
                match (va, vi) with
                | VDarray a, VIndex ix ->
                    Interp.get_elem_array (Interp.ctx_of st) a ix
                | _ ->
                    Interp.builtin st ~apply:(rt_apply fc.prog st) x
                      [ va; vi ])
        | "array_put_elem", [| sa; si; sv |] when fc.prog.specialize ->
            dyn (fun st f ->
                bump st 2;
                let va = sa st f in
                let vi = si st f in
                let v = sv st f in
                Interp.flush_scalar st;
                match (va, vi) with
                | VDarray a, VIndex ix ->
                    Interp.put_elem_array (Interp.ctx_of st) a ix v;
                    VUnit
                | _ ->
                    Interp.builtin st ~apply:(rt_apply fc.prog st) x
                      [ va; vi; v ])
        | "array_part_bounds", [| sa |] when fc.prog.specialize ->
            dyn (fun st f ->
                bump st 2;
                let va = sa st f in
                Interp.flush_scalar st;
                match va with
                | VDarray a ->
                    VBounds (Interp.part_bounds_array (Interp.ctx_of st) a)
                | _ ->
                    Interp.builtin st ~apply:(rt_apply fc.prog st) x [ va ])
        | _ -> (
            match (scalar_builtin_1 x, scalar_builtin_2 x, acs) with
            | Some f1, _, [ ca ] -> (
                match ca.ops with
                | Some na -> known (2 + na) (fun st f -> f1 (ca.run st f))
                | None ->
                    let ra = seal ca in
                    dyn (fun st f ->
                        bump st 2;
                        f1 (ra st f)))
            | _, Some f2, [ ca; cb ] -> (
                match (ca.ops, cb.ops) with
                | Some na, Some nb ->
                    known
                      (2 + na + nb)
                      (fun st f ->
                        let va = ca.run st f in
                        let vb = cb.run st f in
                        f2 va vb)
                | _ ->
                    let ra = seal ca and rb = seal cb in
                    dyn (fun st f ->
                        bump st 2;
                        let va = ra st f in
                        let vb = rb st f in
                        f2 va vb))
            | _ -> (
            match
              if fc.prog.specialize then specialize_skeleton fc.prog h x
              else None
            with
            | Some handle ->
                (* same flush point as the generic dispatcher's array_*
                   entry; the handler's own fallback re-flushing is a
                   no-op *)
                dyn (fun st f ->
                    bump st 2;
                    let argv = eval_sealed st f in
                    Interp.flush_scalar st;
                    handle st argv)
            | None ->
                dyn (fun st f ->
                    bump st 2;
                    Interp.builtin st ~apply:(rt_apply fc.prog st) x
                      (eval_sealed st f)))))
  | `Opsec op ->
      if nargs = 2 then (
        let fop = op_fn op in
        match acs with
        | [ ca; cb ] -> (
            match (ca.ops, cb.ops) with
            | Some na, Some nb ->
                known
                  (2 + na + nb)
                  (fun st f ->
                    let va = ca.run st f in
                    let vb = cb.run st f in
                    fop va vb)
            | _ ->
                let ra = seal ca and rb = seal cb in
                dyn (fun st f ->
                    bump st 2;
                    let va = ra st f in
                    let vb = rb st f in
                    fop va vb))
        | _ -> assert false)
      else if nargs < 2 then partial (`Op op)
      else over (`Op op) 2
  | `General ->
      let hc = seal (compile_expr fc scope h) in
      dyn (fun st f ->
          bump st 1;
          let hv = hc st f in
          let argv = eval_sealed st f in
          rt_apply fc.prog st hv argv)

(* Assignment mirrors Interp.assign: the right-hand side is evaluated and
   copied first, then the lvalue components. *)
and compile_assign fc scope (l : Ast.expr) cr =
  match l.Ast.desc with
  | Ast.Var x -> (
      match List.assoc_opt x scope with
      | Some slot -> (
          match cr.ops with
          | Some n ->
              known
                (1 + n)
                (fun st f ->
                  let v = Value.copy (cr.run st f) in
                  f.(slot) <- v;
                  v)
          | None ->
              let rr = seal cr in
              dyn (fun st f ->
                  bump st 1;
                  let v = Value.copy (rr st f) in
                  f.(slot) <- v;
                  v))
      | None ->
          let rr = seal cr in
          dyn (fun st f ->
              bump st 1;
              ignore (Value.copy (rr st f));
              rte "cannot assign to %s" x))
  | Ast.Idx (a, i) -> (
      let ca = compile_expr fc scope a in
      let ci = compile_expr fc scope i in
      let set v arr j =
        if j >= 0 && j < Array.length arr then (
          arr.(j) <- as_int v;
          v)
        else rte "Index assignment out of range (%d)" j
      in
      match (cr.ops, ca.ops, ci.ops) with
      | Some nr, Some na, Some ni ->
          known
            (1 + nr + na + ni)
            (fun st f ->
              let v = Value.copy (cr.run st f) in
              let arr = as_index (ca.run st f) in
              set v arr (as_int (ci.run st f)))
      | _ ->
          let rr = seal cr and ra = seal ca and ri = seal ci in
          dyn (fun st f ->
              bump st 1;
              let v = Value.copy (rr st f) in
              let arr = as_index (ra st f) in
              set v arr (as_int (ri st f))))
  | Ast.Field (s, fname) -> (
      let idx = field_slot fc l fname in
      let cs = compile_expr fc scope s in
      let set v sv =
        match sv with
        | VStruct str ->
            field_ref idx fname str := v;
            v
        | w -> rte "field assignment on %s" (describe w)
      in
      match (cr.ops, cs.ops) with
      | Some nr, Some ns ->
          known
            (1 + nr + ns)
            (fun st f ->
              let v = Value.copy (cr.run st f) in
              set v (cs.run st f))
      | _ ->
          let rr = seal cr and rs = seal cs in
          dyn (fun st f ->
              bump st 1;
              let v = Value.copy (rr st f) in
              set v (rs st f)))
  | Ast.Arrow (p, fname) -> (
      let idx = field_slot fc l fname in
      let cp = compile_expr fc scope p in
      let set v pv =
        match pv with
        | VPtr r -> (
            match !r with
            | VStruct str ->
                field_ref idx fname str := v;
                v
            | w -> rte "-> assignment on %s" (describe w))
        | VNull -> rte "assignment through NULL"
        | w -> rte "-> assignment on %s" (describe w)
      in
      match (cr.ops, cp.ops) with
      | Some nr, Some np ->
          known
            (1 + nr + np)
            (fun st f ->
              let v = Value.copy (cr.run st f) in
              set v (cp.run st f))
      | _ ->
          let rr = seal cr and rp = seal cp in
          dyn (fun st f ->
              bump st 1;
              let v = Value.copy (rr st f) in
              set v (rp st f)))
  | Ast.Deref p -> (
      let cp = compile_expr fc scope p in
      let set v pv =
        match pv with
        | VPtr r ->
            r := v;
            v
        | VNull -> rte "assignment through NULL"
        | w -> rte "assignment through %s" (describe w)
      in
      match (cr.ops, cp.ops) with
      | Some nr, Some np ->
          known
            (1 + nr + np)
            (fun st f ->
              let v = Value.copy (cr.run st f) in
              set v (cp.run st f))
      | _ ->
          let rr = seal cr and rp = seal cp in
          dyn (fun st f ->
              bump st 1;
              let v = Value.copy (rr st f) in
              set v (rp st f)))
  | _ ->
      let rr = seal cr in
      dyn (fun st f ->
          bump st 1;
          ignore (rr st f);
          rte "invalid assignment target")

(* ---------------- statements ---------------- *)

(* Every statement flushes pending scalar work first, exactly like
   Interp.exec; compile_stmt returns the (possibly extended) scope. *)
let rec compile_stmt fc scope s : (string * int) list * scode =
  let scope', raw = compile_stmt_raw fc scope s in
  ( scope',
    fun st f ->
      Interp.flush_scalar st;
      raw st f )

and compile_stmt_raw fc scope = function
  | Ast.SExpr e ->
      let c = seal (compile_expr fc scope e) in
      (scope, fun st f -> ignore (c st f))
  | Ast.SDecl (t, name, init) ->
      let slot = fresh_slot fc in
      let code =
        match init with
        | Some e ->
            let c = seal (compile_expr fc scope e) in
            fun st f -> f.(slot) <- Value.copy (c st f)
        | None ->
            (* the zero value of the type, evaluated once at compile time;
               copy gives each execution fresh struct field cells *)
            let template = Interp.default_value fc.scratch t in
            fun _ f -> f.(slot) <- Value.copy template
      in
      ((name, slot) :: scope, code)
  | Ast.SIf (c, a, b) ->
      let cc = seal (compile_expr fc scope c) in
      let ca = compile_block fc scope a in
      let cb = compile_block fc scope b in
      (scope, fun st f -> if truthy (cc st f) then ca st f else cb st f)
  | Ast.SWhile (c, body) ->
      let cc = seal (compile_expr fc scope c) in
      let cb = compile_block fc scope body in
      ( scope,
        fun st f ->
          try
            while truthy (cc st f) do
              try cb st f with Interp.Continue_exc -> ()
            done
          with Interp.Break_exc -> () )
  | Ast.SFor (init, cond, step, body) ->
      let scope', initc =
        match init with
        | Some s ->
            let sc, c = compile_stmt fc scope s in
            (sc, Some c)
        | None -> (scope, None)
      in
      let cc = Option.map (fun c -> seal (compile_expr fc scope' c)) cond in
      let stepc =
        Option.map (fun e -> seal (compile_expr fc scope' e)) step
      in
      let bodyc = compile_block fc scope' body in
      ( scope,
        fun st f ->
          (match initc with Some c -> c st f | None -> ());
          let check () =
            match cc with Some c -> truthy (c st f) | None -> true
          in
          try
            while check () do
              (try bodyc st f with Interp.Continue_exc -> ());
              match stepc with Some c -> ignore (c st f) | None -> ()
            done
          with Interp.Break_exc -> () )
  | Ast.SReturn None ->
      (scope, fun _ _ -> raise (Interp.Return_exc VUnit))
  | Ast.SReturn (Some e) ->
      let c = seal (compile_expr fc scope e) in
      ( scope,
        fun st f -> raise (Interp.Return_exc (Value.copy (c st f))) )
  | Ast.SBreak -> (scope, fun _ _ -> raise Interp.Break_exc)
  | Ast.SContinue -> (scope, fun _ _ -> raise Interp.Continue_exc)
  | Ast.SBlock b ->
      let cb = compile_block fc scope b in
      (scope, cb)

and compile_block fc scope stmts : scode =
  let _, rev =
    List.fold_left
      (fun (scope, acc) s ->
        let scope', c = compile_stmt fc scope s in
        (scope', c :: acc))
      (scope, []) stmts
  in
  match rev with
  | [] -> fun _ _ -> ()
  | [ c ] -> c
  | rev ->
      let codes = Array.of_list (List.rev rev) in
      let n = Array.length codes in
      fun st f ->
        for i = 0 to n - 1 do
          codes.(i) st f
        done

(* ---------------- program ---------------- *)

let compile_func t scratch (f : Ast.func) =
  let cfn = Hashtbl.find t.cfuncs f.Ast.f_name in
  let fc = { prog = t; scratch; nslots = 0 } in
  let scope = List.mapi (fun i p -> (p.Ast.p_name, i)) f.Ast.f_params in
  fc.nslots <- List.length f.Ast.f_params;
  let fbody = Option.get f.Ast.f_body in
  let body = compile_block fc scope fbody in
  let size = fc.nslots in
  cfn.c_size <- size;
  cfn.c_ix_safe <- not (List.exists stmt_writes_index fbody);
  let run st frame =
    try
      body st frame;
      VUnit
    with Interp.Return_exc v -> v
  in
  cfn.c_run <- run;
  cfn.c_invoke <-
    (fun st args ->
      let frame = Array.make size VUnit in
      let rec fill i = function
        | [] -> ()
        | v :: rest ->
            frame.(i) <- Value.copy v;
            fill (i + 1) rest
      in
      fill 0 args;
      run st frame)

let program ~tyenv ?(specialize = true) (prog_ast : Ast.program) : t =
  let t = { cfuncs = Hashtbl.create 32; tyenv; specialize } in
  let scratch = Interp.make ~tyenv prog_ast in
  let funcs =
    List.filter_map
      (function
        | Ast.TFunc f when f.Ast.f_body <> None -> Some f
        | _ -> None)
      prog_ast
  in
  (* placeholders first so recursive and forward calls resolve *)
  List.iter
    (fun f ->
      let missing _ _ = rte "function %s not yet compiled" f.Ast.f_name in
      Hashtbl.replace t.cfuncs f.Ast.f_name
        {
          c_arity = List.length f.Ast.f_params;
          c_size = 0;
          c_ix_safe = false;
          c_run = missing;
          c_invoke = missing;
        })
    funcs;
  List.iter (compile_func t scratch) funcs;
  t

let apply prog st v args = rt_apply prog st v args

let call prog st name args =
  if Hashtbl.mem prog.cfuncs name then
    rt_apply prog st (VFun { fv_target = `User name; fv_applied = [] }) args
  else if Typecheck.is_builtin name then
    rt_apply prog st
      (VFun { fv_target = `Builtin name; fv_applied = [] })
      args
  else rte "undefined function %s" name
