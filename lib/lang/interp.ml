open Value

type state = {
  funcs : (string, Ast.func) Hashtbl.t;
  tyenv : Typecheck.env;
  backend : [ `Seq | `Par of Machine.ctx ];
  buf : Buffer.t;
  mutable pending_ops : int;
      (* expression nodes evaluated since the last flush; charged as Scalar
         work on the simulated machine at statement granularity *)
}

exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

(* environments are association lists of mutable variable cells *)

let make ?(backend = `Seq) ~tyenv program =
  let funcs = Hashtbl.create 32 in
  List.iter
    (function
      | Ast.TFunc f when f.Ast.f_body <> None ->
          Hashtbl.replace funcs f.Ast.f_name f
      | _ -> ())
    program;
  { funcs; tyenv; backend; buf = Buffer.create 256; pending_ops = 0 }

let output st = Buffer.contents st.buf

let rec default_value st (t : Ast.typ) =
  match Typecheck.expand st.tyenv t with
  | Ast.TInt -> VInt 0
  | Ast.TFloat -> VFloat 0.0
  | Ast.TChar -> VChar '\000'
  | Ast.TString -> VStr ""
  | Ast.TVoid -> VUnit
  | Ast.TIndex -> VIndex [||]
  | Ast.TBounds -> VBounds { Index.lower = [||]; upper = [||] }
  | Ast.TPtr _ -> VNull
  | Ast.TNamed (n, args) -> (
      match Typecheck.struct_def st.tyenv n with
      | Some sd ->
          let subst =
            try List.combine sd.Ast.s_params args with Invalid_argument _ ->
              []
          in
          let fields = Array.of_list sd.Ast.s_fields in
          VStruct
            {
              s_tag = n;
              s_names = Array.map snd fields;
              s_vals =
                Array.map
                  (fun (ft, _) ->
                    let ft =
                      List.fold_left
                        (fun t (v', a) ->
                          if t = Ast.TVar v' then a else t)
                        ft subst
                    in
                    ref (default_value st ft))
                  fields;
            }
      | None -> VUnit)
  | Ast.TVar _ | Ast.TMeta _ | Ast.TFun _ -> VUnit

(* ---------------- arithmetic ---------------- *)

let arith op a b =
  match (op, a, b) with
  | "+", VInt x, VInt y -> VInt (x + y)
  | "-", VInt x, VInt y -> VInt (x - y)
  | "*", VInt x, VInt y -> VInt (x * y)
  | "/", VInt x, VInt y ->
      if y = 0 then rte "division by zero" else VInt (x / y)
  | "%", VInt x, VInt y ->
      if y = 0 then rte "modulo by zero" else VInt (x mod y)
  | "+", VFloat x, VFloat y -> VFloat (x +. y)
  | "-", VFloat x, VFloat y -> VFloat (x -. y)
  | "*", VFloat x, VFloat y -> VFloat (x *. y)
  | "/", VFloat x, VFloat y -> VFloat (x /. y)
  | _ ->
      rte "invalid operands for %s: %s, %s" op (describe a) (describe b)

(* Ordering: defined on scalars only.  Pointers have no stable order (the
   old pointer case answered 1 for both x < y and y < x), so ordered
   comparisons on them are a runtime error; only == and != apply. *)
let compare_values a b =
  match (a, b) with
  | VInt x, VInt y -> compare x y
  | VFloat x, VFloat y -> compare x y
  | VChar x, VChar y -> compare x y
  | VStr x, VStr y -> compare x y
  | (VNull | VPtr _), (VNull | VPtr _) ->
      rte "pointers admit only == and != (no ordering)"
  | _ -> rte "cannot compare %s and %s" (describe a) (describe b)

let equal_values a b =
  match (a, b) with
  | VNull, VNull -> true
  | VNull, VPtr _ | VPtr _, VNull -> false
  | VPtr x, VPtr y -> x == y
  | _ -> compare_values a b = 0

let binop op a b =
  match op with
  | "+" | "-" | "*" | "/" | "%" -> arith op a b
  | "==" -> VInt (if equal_values a b then 1 else 0)
  | "!=" -> VInt (if equal_values a b then 0 else 1)
  | "<" -> VInt (if compare_values a b < 0 then 1 else 0)
  | ">" -> VInt (if compare_values a b > 0 then 1 else 0)
  | "<=" -> VInt (if compare_values a b <= 0 then 1 else 0)
  | ">=" -> VInt (if compare_values a b >= 0 then 1 else 0)
  | _ -> rte "unknown operator %s" op

(* ---------------- shared engine glue ----------------

   Everything from here to the expression evaluator is engine-independent:
   the compiled engine (Compile) runs on the same [state], charges through
   the same [flush_scalar], and dispatches builtins through the same
   [builtin] — which is what keeps simulated clocks, Stats and traces
   bit-identical between engines. *)

let ctx_of st =
  match st.backend with
  | `Par ctx -> ctx
  | `Seq -> rte "skeletons require parallel execution (use Spmd.run)"

let flush_scalar st =
  match st.backend with
  | `Par ctx when st.pending_ops > 0 ->
      Machine.charge_scalar_nodes ctx ~ops:st.pending_ops;
      st.pending_ops <- 0
  | `Par _ | `Seq -> st.pending_ops <- 0

let distr_of = function
  | 0 -> Darray.Default
  | 1 -> Darray.Ring
  | 2 -> Darray.Torus2d
  | d -> rte "unknown distribution code %d" d

(* ---------------- distributed-array payload dispatch ----------------

   The AST engine only ever creates generic (boxed) payloads; the compiled
   engine's specialised call sites create unboxed [DInt]/[DFloat] payloads
   and run the hot element loops itself (Compile).  These dispatchers are
   the single generic fallback shared by both engines: they accept every
   payload kind, boxing elements on the way into the customizing function
   and unboxing results on the way back, so observable behaviour and
   charged costs are identical whatever the representation.  Mixed-kind
   pairs can only arise between a specialised array and one created through
   a curried fallback path; copies convert element-wise, the row/product
   skeletons reject them (create both arrays through saturated calls). *)

let box_i n = VInt n
let box_f x = VFloat x

let map_arrays ctx ~apply f src dst =
  let wrap : 'a 'b. (Value.t -> 'b) -> ('a -> Value.t) -> 'a -> int array -> 'b
      =
   fun unbox box v ix -> unbox (apply f [ box v; VIndex (Array.copy ix) ])
  in
  match (src, dst) with
  | DGen s, DGen d -> Skeletons.map ctx (wrap Value.copy Fun.id) s d
  | DInt s, DInt d -> Skeletons.map ctx (wrap as_int box_i) s d
  | DFloat s, DFloat d -> Skeletons.map ctx (wrap as_float box_f) s d
  | DGen s, DInt d -> Skeletons.map_into ctx (wrap as_int Fun.id) s d
  | DGen s, DFloat d -> Skeletons.map_into ctx (wrap as_float Fun.id) s d
  | DInt s, DGen d -> Skeletons.map_into ctx (wrap Value.copy box_i) s d
  | DInt s, DFloat d -> Skeletons.map_into ctx (wrap as_float box_i) s d
  | DFloat s, DGen d -> Skeletons.map_into ctx (wrap Value.copy box_f) s d
  | DFloat s, DInt d -> Skeletons.map_into ctx (wrap as_int box_f) s d

let fold_array ctx ~apply conv f a =
  let g x y = apply f [ x; y ] in
  let wrap box v ix =
    Value.copy (apply conv [ box v; VIndex (Array.copy ix) ])
  in
  (* conv may change the accumulator type (gauss.skil folds floats into
     elemrec structs), so measure the wire size of the partial result
     instead of trusting the array's element size *)
  match a with
  | DGen a ->
      Skeletons.fold ctx ~acc_bytes_of:Value.wire_bytes ~conv:(wrap Fun.id) g a
  | DInt a ->
      Skeletons.fold ctx ~acc_bytes_of:Value.wire_bytes ~conv:(wrap box_i) g a
  | DFloat a ->
      Skeletons.fold ctx ~acc_bytes_of:Value.wire_bytes ~conv:(wrap box_f) g a

let copy_arrays ctx src dst =
  match (src, dst) with
  | DGen s, DGen d -> Skeletons.copy ctx s d
  | DInt s, DInt d -> Skeletons.copy ctx s d
  | DFloat s, DFloat d -> Skeletons.copy ctx s d
  | DGen s, DInt d -> Skeletons.copy_with ctx as_int s d
  | DGen s, DFloat d -> Skeletons.copy_with ctx as_float s d
  | DInt s, DGen d -> Skeletons.copy_with ctx box_i s d
  | DFloat s, DGen d -> Skeletons.copy_with ctx box_f s d
  | DInt _, DFloat _ | DFloat _, DInt _ ->
      rte "array_copy: arrays have different element types"

let destroy_array ctx = function
  | DGen a -> Skeletons.destroy ctx a
  | DInt a -> Skeletons.destroy ctx a
  | DFloat a -> Skeletons.destroy ctx a

let broadcast_array ctx a ix =
  match a with
  | DGen a -> Skeletons.broadcast_part ctx a ix
  | DInt a -> Skeletons.broadcast_part ctx a ix
  | DFloat a -> Skeletons.broadcast_part ctx a ix

let permute_arrays ctx src p dst =
  match (src, dst) with
  | DGen s, DGen d -> Skeletons.permute_rows ctx s p d
  | DInt s, DInt d -> Skeletons.permute_rows ctx s p d
  | DFloat s, DFloat d -> Skeletons.permute_rows ctx s p d
  | _ -> rte "array_permute_rows: arrays use different payload \
              representations"

let gen_mult_arrays ctx ~apply add mul a b c =
  let fadd x y = apply add [ x; y ] in
  let fmul x y = apply mul [ x; y ] in
  match (a, b, c) with
  | DGen a, DGen b, DGen c -> Skeletons.gen_mult ctx ~add:fadd ~mul:fmul a b c
  | DInt a, DInt b, DInt c ->
      Skeletons.gen_mult ctx
        ~add:(fun x y -> as_int (fadd (VInt x) (VInt y)))
        ~mul:(fun x y -> as_int (fmul (VInt x) (VInt y)))
        a b c
  | DFloat a, DFloat b, DFloat c ->
      Skeletons.gen_mult ctx
        ~add:(fun x y -> as_float (fadd (VFloat x) (VFloat y)))
        ~mul:(fun x y -> as_float (fmul (VFloat x) (VFloat y)))
        a b c
  | _ -> rte "array_gen_mult: arrays use different payload representations"

let part_bounds_array ctx = function
  | DGen a -> Skeletons.part_bounds ctx a
  | DInt a -> Skeletons.part_bounds ctx a
  | DFloat a -> Skeletons.part_bounds ctx a

let get_elem_array ctx a ix =
  match a with
  | DGen a -> Skeletons.get_elem ctx a ix
  | DInt a -> VInt (Skeletons.get_elem ctx a ix)
  | DFloat a -> VFloat (Skeletons.get_elem ctx a ix)

let put_elem_array ctx a ix v =
  match a with
  | DGen a -> Skeletons.put_elem ctx a ix (Value.copy v)
  | DInt a -> Skeletons.put_elem ctx a ix (as_int v)
  | DFloat a -> Skeletons.put_elem ctx a ix (as_float v)

let builtin st ~apply name args =
  (* sequential work done so far must hit the clock before any collective *)
  if String.length name > 6 && String.sub name 0 6 = "array_" then
    flush_scalar st;
  match (name, args) with
  | "print_int", [ VInt n ] ->
      Buffer.add_string st.buf (string_of_int n);
      VUnit
  | "print_float", [ VFloat f ] ->
      Buffer.add_string st.buf (Printf.sprintf "%g" f);
      VUnit
  | "print_string", [ VStr s ] ->
      Buffer.add_string st.buf s;
      VUnit
  | "print_char", [ VChar c ] ->
      Buffer.add_char st.buf c;
      VUnit
  | "error", [ VStr s ] -> rte "%s" s
  | "min", [ a; b ] -> if compare_values a b <= 0 then a else b
  | "max", [ a; b ] -> if compare_values a b >= 0 then a else b
  | "abs", [ VInt n ] -> VInt (abs n)
  | "fabs", [ VFloat f ] -> VFloat (Float.abs f)
  | "sqrt", [ VFloat f ] -> VFloat (sqrt f)
  | "log2", [ VInt n ] ->
      let rec go k pow = if pow >= n then k else go (k + 1) (2 * pow) in
      VInt (go 0 1)
  | "itof", [ VInt n ] -> VFloat (float_of_int n)
  | "ftoi", [ VFloat f ] -> VInt (int_of_float f)
  (* skeletons (section 3) *)
  | "array_create", [ VInt dim; VIndex size; VIndex _bs; VIndex _lb; init;
                      VInt distr ] ->
      let ctx = ctx_of st in
      if Array.length size <> dim then rte "array_create: bad Size";
      let f ix = Value.copy (apply init [ VIndex (Array.copy ix) ]) in
      VDarray
        (DGen
           (Skeletons.create ctx ~gsize:(Array.copy size)
              ~distr:(distr_of distr) f))
  | "array_create_const", [ VInt dim; VIndex size; VIndex _bs; VIndex _lb;
                            init; VInt distr ] ->
      (* array_create with a constant element: same skeleton, same Mapped
         charge, but no per-element initialiser function to interpret *)
      let ctx = ctx_of st in
      if Array.length size <> dim then rte "array_create_const: bad Size";
      let f _ix = Value.copy init in
      VDarray
        (DGen
           (Skeletons.create ctx ~gsize:(Array.copy size)
              ~distr:(distr_of distr) f))
  | "array_destroy", [ VDarray a ] ->
      destroy_array (ctx_of st) a;
      VUnit
  | "array_map", [ f; VDarray src; VDarray dst ] ->
      map_arrays (ctx_of st) ~apply f src dst;
      VUnit
  | "array_fold", [ conv; f; VDarray a ] ->
      fold_array (ctx_of st) ~apply conv f a
  | "array_copy", [ VDarray src; VDarray dst ] ->
      copy_arrays (ctx_of st) src dst;
      VUnit
  | "array_broadcast_part", [ VDarray a; VIndex ix ] ->
      broadcast_array (ctx_of st) a ix;
      VUnit
  | "array_permute_rows", [ VDarray src; perm; VDarray dst ] ->
      let p r = as_int (apply perm [ VInt r ]) in
      permute_arrays (ctx_of st) src p dst;
      VUnit
  | "array_gen_mult", [ VDarray a; VDarray b; add; mul; VDarray c ] ->
      gen_mult_arrays (ctx_of st) ~apply add mul a b c;
      VUnit
  | "array_part_bounds", [ VDarray a ] ->
      VBounds (part_bounds_array (ctx_of st) a)
  | "array_get_elem", [ VDarray a; VIndex ix ] ->
      get_elem_array (ctx_of st) a ix
  | "array_put_elem", [ VDarray a; VIndex ix; v ] ->
      put_elem_array (ctx_of st) a ix v;
      VUnit
  | _ ->
      rte "builtin %s: bad arguments (%s)" name
        (String.concat ", " (List.map describe args))

let constant st name =
  match (name, st.backend) with
  (* the paper's "maximal integer value" standing for infinity, scaled so
     that int_max + weight cannot overflow (same choice as Shortest_paths) *)
  | "int_max", _ -> Some (VInt (max_int / 4))
  | "procId", `Par ctx -> Some (VInt (Machine.self ctx))
  | "procId", `Seq -> Some (VInt 0)
  | "nProcs", `Par ctx -> Some (VInt (Machine.nprocs ctx))
  | "nProcs", `Seq -> Some (VInt 1)
  | "NULL", _ -> Some VNull
  | "DISTR_DEFAULT", _ -> Some (VInt 0)
  | "DISTR_RING", _ -> Some (VInt 1)
  | "DISTR_TORUS2D", _ -> Some (VInt 2)
  | _ -> None

let is_constant = function
  | "int_max" | "procId" | "nProcs" | "NULL" | "DISTR_DEFAULT" | "DISTR_RING"
  | "DISTR_TORUS2D" ->
      true
  | _ -> false

(* Split the first [k] elements off [xs] in one linear pass. *)
let split_at k xs =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] xs

(* ---------------- application ---------------- *)

let rec apply st fv_value args =
  match fv_value with
  | VFun f -> apply_fun st f args
  | v when args = [] -> v
  | v -> rte "cannot apply %s" (describe v)

and apply_fun st f args =
    let supplied = f.fv_applied @ args in
    let arity =
      match f.fv_target with
      | `Op _ -> 2
      | `User name -> (
          match Hashtbl.find_opt st.funcs name with
          | Some fn -> List.length fn.Ast.f_params
          | None -> rte "undefined function %s" name)
      | `Builtin name -> (
          match Typecheck.builtin_arity name with
          | Some n -> n
          | None -> rte "unknown builtin %s" name)
    in
    let nsupplied = List.length supplied in
    if nsupplied < arity then VFun { f with fv_applied = supplied }
    else if nsupplied > arity then begin
      (* curried over-application: call with exactly arity, re-apply rest *)
      let now, later = split_at arity supplied in
      apply st (invoke st f.fv_target now) later
    end
    else invoke st f.fv_target supplied

and invoke st target args =
  match target with
  | `Op op -> (
      match args with
      | [ a; b ] -> binop op a b
      | _ -> rte "operator section applied to %d args" (List.length args))
  | `User name -> (
      match Hashtbl.find_opt st.funcs name with
      | None -> rte "undefined function %s" name
      | Some fn ->
          let env =
            List.map2
              (fun p v -> (p.Ast.p_name, ref (copy v)))
              fn.Ast.f_params args
          in
          let body = Option.get fn.Ast.f_body in
          (try
             exec_block st env body;
             VUnit
           with Return_exc v -> v))
  | `Builtin name -> builtin st ~apply:(apply st) name args

(* ---------------- expression evaluation ---------------- *)

and lookup st env name =
  match List.assoc_opt name env with
  | Some r -> !r
  | None -> (
      match constant st name with
      | Some v -> v
      | None ->
          if Hashtbl.mem st.funcs name then
            VFun { fv_target = `User name; fv_applied = [] }
          else if Typecheck.is_builtin name then
            VFun { fv_target = `Builtin name; fv_applied = [] }
          else rte "unbound identifier %s" name)

and eval st env (e : Ast.expr) : Value.t =
  st.pending_ops <- st.pending_ops + 1;
  match e.Ast.desc with
  | Ast.Int n -> VInt n
  | Ast.Float f -> VFloat f
  | Ast.Str s -> VStr s
  | Ast.Chr c -> VChar c
  | Ast.Var x -> lookup st env x
  | Ast.OpSection op -> VFun { fv_target = `Op op; fv_applied = [] }
  | Ast.Call (f, args) ->
      let fv = eval st env f in
      let argv = List.map (eval st env) args in
      apply st fv argv
  | Ast.Binop (("&&" | "||") as op, a, b) ->
      (* short-circuit *)
      let va = truthy (eval st env a) in
      if op = "&&" then
        if va then VInt (if truthy (eval st env b) then 1 else 0) else VInt 0
      else if va then VInt 1
      else VInt (if truthy (eval st env b) then 1 else 0)
  | Ast.Binop (op, a, b) ->
      (* pin left-to-right: OCaml argument order is unspecified, and the
         compiled engine must replay operand effects identically *)
      let va = eval st env a in
      let vb = eval st env b in
      binop op va vb
  | Ast.Unop ("!", a) -> VInt (if truthy (eval st env a) then 0 else 1)
  | Ast.Unop ("-", a) -> (
      match eval st env a with
      | VInt n -> VInt (-n)
      | VFloat f -> VFloat (-.f)
      | v -> rte "cannot negate %s" (describe v))
  | Ast.Unop (op, _) -> rte "unknown unary operator %s" op
  | Ast.Assign (l, r) ->
      let v = Value.copy (eval st env r) in
      assign st env l v;
      v
  | Ast.Idx (a, i) -> (
      let arr = as_index (eval st env a) in
      let i = as_int (eval st env i) in
      match arr with
      | arr when i >= 0 && i < Array.length arr -> VInt arr.(i)
      | _ -> rte "Index access out of range (%d)" i)
  | Ast.Field (s, f) -> field st (eval st env s) f
  | Ast.Arrow (p, f) -> (
      match eval st env p with
      | VPtr r -> field st !r f
      | VBounds b -> bounds_field b f
      | VNull -> rte "dereference of NULL"
      | v -> rte "-> applied to %s" (describe v))
  | Ast.Deref p -> (
      match eval st env p with
      | VPtr r -> !r
      | VNull -> rte "dereference of NULL"
      | v -> rte "dereference of %s" (describe v))
  | Ast.ArrayLit es ->
      VIndex (Array.of_list (List.map (fun e -> as_int (eval st env e)) es))
  | Ast.Cond (c, a, b) ->
      if truthy (eval st env c) then eval st env a else eval st env b
  | Ast.New e -> VPtr (ref (Value.copy (eval st env e)))

and field st v f =
  ignore st;
  match v with
  | VStruct s -> !(Value.struct_field s f)
  | VBounds b -> bounds_field b f
  | v -> rte "field access on %s" (describe v)

and bounds_field b = function
  | "lowerBd" -> VIndex (Array.copy b.Index.lower)
  | "upperBd" ->
      (* the paper's bounds are inclusive; ours are exclusive upper, so the
         visible upperBd is upper-1 per dimension *)
      VIndex (Array.map (fun u -> u - 1) b.Index.upper)
  | f -> rte "Bounds has no field %s" f

and assign st env (l : Ast.expr) v =
  match l.Ast.desc with
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some r -> r := v
      | None -> rte "cannot assign to %s" x)
  | Ast.Idx (a, i) -> (
      let arr = as_index (eval st env a) in
      let i = as_int (eval st env i) in
      if i >= 0 && i < Array.length arr then arr.(i) <- as_int v
      else rte "Index assignment out of range (%d)" i)
  | Ast.Field (s, f) -> (
      match eval st env s with
      | VStruct str -> Value.struct_field str f := v
      | w -> rte "field assignment on %s" (describe w))
  | Ast.Arrow (p, f) -> (
      match eval st env p with
      | VPtr r -> (
          match !r with
          | VStruct str -> Value.struct_field str f := v
          | w -> rte "-> assignment on %s" (describe w))
      | VNull -> rte "assignment through NULL"
      | w -> rte "-> assignment on %s" (describe w))
  | Ast.Deref p -> (
      match eval st env p with
      | VPtr r -> r := v
      | VNull -> rte "assignment through NULL"
      | w -> rte "assignment through %s" (describe w))
  | _ -> rte "invalid assignment target"

(* ---------------- statements ---------------- *)

and exec st env stmt =
  flush_scalar st;
  exec_stmt st env stmt

and exec_stmt st env = function
  | Ast.SExpr e ->
      ignore (eval st env e);
      env
  | Ast.SDecl (t, name, init) ->
      let v =
        match init with
        | Some e -> Value.copy (eval st env e)
        | None -> default_value st t
      in
      (name, ref v) :: env
  | Ast.SIf (c, a, b) ->
      if truthy (eval st env c) then exec_block st env a
      else exec_block st env b;
      env
  | Ast.SWhile (c, body) ->
      (try
         while truthy (eval st env c) do
           try exec_block st env body with Continue_exc -> ()
         done
       with Break_exc -> ());
      env
  | Ast.SFor (init, cond, step, body) ->
      let env' = match init with Some s -> exec st env s | None -> env in
      let check () =
        match cond with Some c -> truthy (eval st env' c) | None -> true
      in
      (try
         while check () do
           (try exec_block st env' body with Continue_exc -> ());
           match step with
           | Some e -> ignore (eval st env' e)
           | None -> ()
         done
       with Break_exc -> ());
      env
  | Ast.SReturn None -> raise (Return_exc VUnit)
  | Ast.SReturn (Some e) -> raise (Return_exc (Value.copy (eval st env e)))
  | Ast.SBreak -> raise Break_exc
  | Ast.SContinue -> raise Continue_exc
  | Ast.SBlock b ->
      exec_block st env b;
      env

and exec_block st env stmts = ignore (List.fold_left (exec st) env stmts)

let call st name args =
  if Hashtbl.mem st.funcs name then
    apply st (VFun { fv_target = `User name; fv_applied = [] }) args
  else if Typecheck.is_builtin name then
    apply st (VFun { fv_target = `Builtin name; fv_applied = [] }) args
  else rte "undefined function %s" name
