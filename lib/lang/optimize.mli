(** Skeleton-fusion optimizer.

    Rewrites the {e instantiated, typechecked} program before it reaches the
    execution engines: map/map and map-into-fold fusion, dead array_copy and
    dead create/destroy elimination, constant-initialiser folding into
    [array_create_const], and hoisting of loop-invariant
    [array_broadcast_part] calls and pure loop-bound expressions.  Every
    rewrite fires only when the effect analysis proves the functions it
    touches pure and the intermediate arrays unaliased; the result is
    value-identical to the input program (same printed output, same final
    values) with strictly fewer charged element operations wherever a
    rewrite fires.

    The caller must re-run {!Typecheck.check} on the result: synthesized
    fused functions and hoisted declarations carry no [inst] annotations
    until then. *)

val program : env:Typecheck.env -> Ast.program -> Ast.program
(** [program ~env p] returns the optimized program; [env] is the
    environment produced by checking [p].  [p] itself is not reused (every
    rewritten expression is rebuilt), but annotation fields of unchanged
    subtrees are shared. *)
