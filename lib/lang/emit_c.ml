let runtime_header =
  String.concat "\n"
    [
      "/* skil_runtime.h — interface of the precompiled parallel runtime";
      "   (message-passing implementations of the section 3 skeletons,";
      "   built on Parix virtual topologies).  Generic skeletons are";
      "   instantiated per element type by the Skil compiler; the";
      "   array_*_<n> instances emitted alongside a program are produced";
      "   from these templates. */";
      "#ifndef SKIL_RUNTIME_H";
      "#define SKIL_RUNTIME_H";
      "";
      "typedef int *Index;   /* one value per array dimension */";
      "typedef struct { Index lowerBd; Index upperBd; } *Bounds;";
      "";
      "#define DISTR_DEFAULT 0";
      "#define DISTR_RING    1";
      "#define DISTR_TORUS2D 2";
      "";
      "/* per-element-type instances are generated; the generic templates";
      "   have the following shapes (T, T1, T2 stand for element types): */";
      "/* Tarray array_create (int dim, Index size, Index blocksize,";
      "                        Index lowerbd, T init_elem (Index),";
      "                        int distr);                              */";
      "/* void   array_destroy (Tarray a);                              */";
      "/* void   array_map (T2 map_f (T1, Index), T1array from,";
      "                     T2array to);                                */";
      "/* T2     array_fold (T2 conv_f (T1, Index),";
      "                      T2 fold_f (T2, T2), T1array a);            */";
      "/* void   array_copy (Tarray from, Tarray to);                   */";
      "/* void   array_broadcast_part (Tarray a, Index ix);             */";
      "/* void   array_permute_rows (Tarray from, int perm_f (int),";
      "                              Tarray to);                        */";
      "/* void   array_gen_mult (Tarray a, Tarray b, T gen_add (T, T),";
      "                          T gen_mult (T, T), Tarray c);          */";
      "/* Bounds array_part_bounds (Tarray a);                          */";
      "/* T      array_get_elem (Tarray a, Index ix);                   */";
      "/* void   array_put_elem (Tarray a, Index ix, T newval);         */";
      "";
      "extern int procId;   /* this processor's rank */";
      "extern int nProcs;   /* number of processors  */";
      "";
      "void print_int (int n);";
      "void print_float (float f);";
      "void print_string (char *s);";
      "void print_char (char c);";
      "void error (char *message);";
      "void *skil_new (/* value */);   /* boxing allocator behind new() */";
      "";
      "#endif /* SKIL_RUNTIME_H */";
      "";
    ]

let skeleton_names =
  [
    "array_create"; "array_destroy"; "array_map"; "array_fold"; "array_copy";
    "array_broadcast_part"; "array_permute_rows"; "array_gen_mult";
  ]

(* ---------------- type mangling ---------------- *)

let rec flat = function
  | Ast.TInt -> "int"
  | Ast.TFloat -> "float"
  | Ast.TChar -> "char"
  | Ast.TVoid -> "void"
  | Ast.TString -> "string"
  | Ast.TIndex -> "Index"
  | Ast.TBounds -> "Bounds"
  | Ast.TPtr t -> flat t ^ "p"
  | Ast.TVar v -> "T" ^ v
  | Ast.TMeta _ -> "int"
  | Ast.TFun _ -> "fn"
  | Ast.TNamed (n, []) -> strip n
  | Ast.TNamed (n, args) ->
      strip n ^ "_" ^ String.concat "_" (List.map flat args)

and strip n =
  match String.index_opt n ' ' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

let rec mangle_type = function
  | Ast.TInt -> "int"
  | Ast.TFloat -> "float"
  | Ast.TChar -> "char"
  | Ast.TVoid -> "void"
  | Ast.TString -> "char *"
  | Ast.TIndex -> "Index"
  | Ast.TBounds -> "Bounds"
  | Ast.TPtr t -> mangle_type t ^ " *"
  | Ast.TVar v -> "/*$" ^ v ^ "*/void *"
  | Ast.TMeta _ -> "int"
  | Ast.TFun (_, _) -> "void *"
  | Ast.TNamed ("array", [ t ]) -> flat t ^ "array"
  | Ast.TNamed (n, []) -> n
  | Ast.TNamed (n, args) when String.length n > 7 && String.sub n 0 7 = "struct "
    ->
      "struct " ^ strip n ^ "_" ^ String.concat "_" (List.map flat args)
  | Ast.TNamed (n, args) -> n ^ "_" ^ String.concat "_" (List.map flat args)

(* ---------------- type-instance collection ---------------- *)

let rec collect_types acc t =
  match t with
  | Ast.TNamed (_, args) as t ->
      let acc = if List.mem t acc then acc else acc @ [ t ] in
      List.fold_left collect_types acc args
  | Ast.TPtr t -> collect_types acc t
  | Ast.TFun (args, ret) ->
      collect_types (List.fold_left collect_types acc args) ret
  | _ -> acc

let rec stmt_types acc = function
  | Ast.SDecl (t, _, _) -> collect_types acc t
  | Ast.SIf (_, a, b) ->
      List.fold_left stmt_types (List.fold_left stmt_types acc a) b
  | Ast.SWhile (_, b) -> List.fold_left stmt_types acc b
  | Ast.SFor (i, _, _, b) ->
      let acc = match i with Some s -> stmt_types acc s | None -> acc in
      List.fold_left stmt_types acc b
  | Ast.SBlock b -> List.fold_left stmt_types acc b
  | Ast.SExpr _ | Ast.SReturn _ | Ast.SBreak | Ast.SContinue -> acc

let used_named_types program =
  List.fold_left
    (fun acc top ->
      match top with
      | Ast.TFunc f ->
          let acc = collect_types acc f.Ast.f_ret in
          let acc =
            List.fold_left
              (fun acc p -> collect_types acc p.Ast.p_type)
              acc f.Ast.f_params
          in
          (match f.Ast.f_body with
           | Some body -> List.fold_left stmt_types acc body
           | None -> acc)
      | _ -> acc)
    [] program

(* ---------------- standalone dialect ---------------- *)

(* C rendering for the standalone single-processor mode ({!standalone}):
   Skil [int] is 63-bit in the simulator, so it widens to a 64-bit C
   integer; Skil [float] literals and arithmetic are OCaml doubles, so it
   maps to [double] (the printed %g output then byte-matches).  Everything
   else follows {!mangle_type}. *)
let rec stype = function
  | Ast.TInt -> "skil_int"
  | Ast.TFloat -> "double"
  | Ast.TChar -> "char"
  | Ast.TVoid -> "void"
  | Ast.TString -> "const char *"
  | Ast.TIndex -> "Index"
  | Ast.TBounds -> "Bounds"
  | Ast.TPtr t -> stype t ^ " *"
  | Ast.TVar _ | Ast.TMeta _ -> "skil_int"
  | Ast.TFun (_, _) -> "void *"
  | Ast.TNamed ("array", [ t ]) -> flat t ^ "array"
  | Ast.TNamed (n, []) -> n
  | Ast.TNamed (n, args) when String.length n > 7 && String.sub n 0 7 = "struct "
    ->
      "struct " ^ strip n ^ "_" ^ String.concat "_" (List.map flat args)
  | Ast.TNamed (n, args) -> n ^ "_" ^ String.concat "_" (List.map flat args)

(* ---------------- expressions ---------------- *)

(* Structured record of one numbered skeleton instance, kept only in
   standalone mode where the instance *bodies* must be generated too. *)
type sfun =
  | SOp of string (* operator section, e.g. "+" *)
  | SFn of string * int (* callee and number of lifted arguments *)

type sinst = {
  si_name : string; (* array_map_1 *)
  si_skel : string; (* array_map *)
  si_funs : (int * sfun) list; (* functional argument positions *)
}

type smode = {
  mutable sinsts : sinst list;
  mutable sgeneric : string list; (* skeletons called with bare functions *)
}

type ectx = {
  buf : Buffer.t;
  mutable instances : (string * string) list; (* comment, signature line *)
  mutable counter : int;
  smode : smode option; (* Some: standalone dialect *)
}

let ctype ec t = match ec.smode with Some _ -> stype t | None -> mangle_type t

let float_literal f =
  let s = Printf.sprintf "%g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let rec expr ec (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int n -> string_of_int n
  | Ast.Float f -> float_literal f
  | Ast.Str s -> Printf.sprintf "%S" s
  | Ast.Chr c -> Printf.sprintf "%C" c
  | Ast.Var x -> x
  | Ast.OpSection op -> Printf.sprintf "(%s)" op
  | Ast.Call (f, args) -> call ec f args
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr ec a) op (expr ec b)
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" op (expr ec a)
  | Ast.Assign (l, r) -> Printf.sprintf "%s = %s" (expr ec l) (expr ec r)
  | Ast.Idx (a, i) -> Printf.sprintf "%s[%s]" (expr ec a) (expr ec i)
  | Ast.Field (a, f) -> Printf.sprintf "%s.%s" (expr ec a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (expr ec a) f
  | Ast.Deref a -> Printf.sprintf "(*%s)" (expr ec a)
  | Ast.ArrayLit es -> (
      let body = String.concat "," (List.map (expr ec) es) in
      (* Skil array literals only ever build Index values; as C function
         arguments they must be compound literals, which the historical
         translation leaves to the reader but a compilable program needs *)
      match ec.smode with
      | Some _ -> "(skil_int[]){" ^ body ^ "}"
      | None -> "{" ^ body ^ "}")
  | Ast.Cond (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr ec c) (expr ec a) (expr ec b)
  | Ast.New a -> Printf.sprintf "skil_new(%s)" (expr ec a)

(* Which argument positions of each skeleton are functional. *)
and functional_positions = function
  | "array_create" -> [ 4 ]
  | "array_map" -> [ 0 ]
  | "array_fold" -> [ 0; 1 ]
  | "array_permute_rows" -> [ 1 ]
  | "array_gen_mult" -> [ 2; 3 ]
  | _ -> []

(* A call of a skeleton whose functional arguments carry lifted data (i.e.
   partial applications) or operators becomes a numbered first-order
   instance with the lifted arguments in front — the paper's array_map_1
   example.  Bare function names stay as they are: those "could be simulated
   in C by passing pointers to functions" (section 2.1). *)
and call ec f args =
  match f.Ast.desc with
  | Ast.Var name when List.mem name skeleton_names ->
      let fpos = functional_positions name in
      let funarg i (a : Ast.expr) =
        if not (List.mem i fpos) then None
        else
          match a.Ast.desc with
          | Ast.OpSection op -> Some (Printf.sprintf "(%s)" op, [])
          | Ast.Call ({ Ast.desc = Ast.OpSection op; _ }, lifted) ->
              Some (Printf.sprintf "(%s)" op, lifted)
          | Ast.Call ({ Ast.desc = Ast.Var g; _ }, lifted) -> Some (g, lifted)
          | _ -> None
      in
      let descrs = List.mapi (fun i a -> (a, funarg i a)) args in
      let needs_instance =
        List.exists
          (function _, Some (g, lifted) -> lifted <> [] || g.[0] = '('
                  | _, None -> false)
          descrs
      in
      if not (needs_instance) then begin
        (match ec.smode with
        | Some m -> m.sgeneric <- name :: m.sgeneric
        | None -> ());
        plain_call ec (expr ec f) args
      end
      else begin
        ec.counter <- ec.counter + 1;
        let iname = Printf.sprintf "%s_%d" name ec.counter in
        let lifted_args =
          List.concat_map
            (function _, Some (_, lifted) -> List.map (expr ec) lifted
                    | _, None -> [])
            descrs
        in
        let data_args =
          List.filter_map
            (function _, Some _ -> None | a, None -> Some (expr ec a))
            descrs
        in
        ec.instances <-
          ( iname,
            Printf.sprintf "instance of %s with %s inlined" name
              (String.concat ", "
                 (List.filter_map
                    (function _, Some (g, _) -> Some g | _, None -> None)
                    descrs)) )
          :: ec.instances;
        (match ec.smode with
        | Some m ->
            let si_funs =
              List.concat
                (List.mapi
                   (fun i -> function
                     | _, Some (g, lifted) ->
                         let sf =
                           if g.[0] = '(' then
                             SOp (String.sub g 1 (String.length g - 2))
                           else SFn (g, List.length lifted)
                         in
                         [ (i, sf) ]
                     | _, None -> [])
                   descrs)
            in
            m.sinsts <- { si_name = iname; si_skel = name; si_funs } :: m.sinsts
        | None -> ());
        Printf.sprintf "%s (%s)" iname
          (String.concat ", " (lifted_args @ data_args))
      end
  | _ -> plain_call ec (expr ec f) args

and plain_call ec fstr args =
  Printf.sprintf "%s (%s)" fstr (String.concat ", " (List.map (expr ec) args))

(* ---------------- statements ---------------- *)

let rec stmt ec indent s =
  let pad = String.make indent ' ' in
  match s with
  | Ast.SExpr e -> pad ^ expr ec e ^ ";\n"
  | Ast.SDecl (t, n, init) ->
      pad ^ ctype ec t ^ " " ^ n
      ^ (match init with Some e -> " = " ^ expr ec e | None -> "")
      ^ ";\n"
  | Ast.SIf (c, a, []) ->
      pad ^ "if (" ^ expr ec c ^ ") {\n" ^ block ec (indent + 2) a ^ pad
      ^ "}\n"
  | Ast.SIf (c, a, b) ->
      pad ^ "if (" ^ expr ec c ^ ") {\n" ^ block ec (indent + 2) a ^ pad
      ^ "} else {\n" ^ block ec (indent + 2) b ^ pad ^ "}\n"
  | Ast.SWhile (c, b) ->
      pad ^ "while (" ^ expr ec c ^ ") {\n" ^ block ec (indent + 2) b ^ pad
      ^ "}\n"
  | Ast.SFor (i, c, stp, b) ->
      let istr =
        match i with
        | Some (Ast.SDecl (t, n, Some e)) ->
            ctype ec t ^ " " ^ n ^ " = " ^ expr ec e
        | Some (Ast.SExpr e) -> expr ec e
        | Some _ | None -> ""
      in
      pad ^ "for (" ^ istr ^ "; "
      ^ (match c with Some c -> expr ec c | None -> "")
      ^ "; "
      ^ (match stp with Some s -> expr ec s | None -> "")
      ^ ") {\n" ^ block ec (indent + 2) b ^ pad ^ "}\n"
  | Ast.SReturn None -> pad ^ "return;\n"
  | Ast.SReturn (Some e) -> pad ^ "return " ^ expr ec e ^ ";\n"
  | Ast.SBreak -> pad ^ "break;\n"
  | Ast.SContinue -> pad ^ "continue;\n"
  | Ast.SBlock b -> pad ^ "{\n" ^ block ec (indent + 2) b ^ pad ^ "}\n"

and block ec indent stmts = String.concat "" (List.map (stmt ec indent) stmts)

(* ---------------- program ---------------- *)

let find_struct program name =
  List.find_map
    (function
      | Ast.TStruct s when s.Ast.s_name = name -> Some s
      | _ -> None)
    program

let find_typedef program name =
  List.find_map
    (function
      | Ast.TTypedef td when td.Ast.td_name = name -> Some td
      | _ -> None)
    program

let rec subst_simple s = function
  | Ast.TVar v as t -> (
      match List.assoc_opt v s with Some t' -> t' | None -> t)
  | Ast.TPtr t -> Ast.TPtr (subst_simple s t)
  | Ast.TNamed (n, args) -> Ast.TNamed (n, List.map (subst_simple s) args)
  | Ast.TFun (a, r) -> Ast.TFun (List.map (subst_simple s) a, subst_simple s r)
  | t -> t

let emit_type_instances buf program =
  let used = used_named_types program in
  List.iter
    (fun t ->
      match t with
      | Ast.TNamed ("array", [ elem ]) ->
          Buffer.add_string buf
            (Printf.sprintf
               "typedef struct { /* hidden pardata implementation */ } \
                *%sarray;\n"
               (flat elem))
      | Ast.TNamed (n, args) -> (
          match find_struct program n with
          | Some sd when args <> [] ->
              let s =
                try List.combine sd.Ast.s_params args
                with Invalid_argument _ -> []
              in
              Buffer.add_string buf (mangle_type t ^ " {\n");
              List.iter
                (fun (ft, fname) ->
                  Buffer.add_string buf
                    ("  " ^ mangle_type (subst_simple s ft) ^ " " ^ fname
                   ^ ";\n"))
                sd.Ast.s_fields;
              Buffer.add_string buf "};\n"
          | _ -> (
              match find_typedef program n with
              | Some td when args <> [] ->
                  let s =
                    try List.combine td.Ast.td_params args
                    with Invalid_argument _ -> []
                  in
                  Buffer.add_string buf
                    ("typedef "
                    ^ mangle_type (subst_simple s td.Ast.td_type)
                    ^ " " ^ mangle_type t ^ ";\n")
              | _ -> ()))
      | _ -> ())
    used;
  Buffer.add_char buf '\n'

let program (prog : Ast.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "/* generated by the Skil compiler (translation by instantiation) */\n";
  Buffer.add_string buf "#include \"skil_runtime.h\"\n\n";
  emit_type_instances buf prog;
  let ec = { buf; instances = []; counter = 0; smode = None } in
  let bodies = Buffer.create 4096 in
  List.iter
    (function
      | Ast.TFunc f when f.Ast.f_body <> None ->
          let params =
            String.concat ", "
              (List.map
                 (fun p -> mangle_type p.Ast.p_type ^ " " ^ p.Ast.p_name)
                 f.Ast.f_params)
          in
          Buffer.add_string bodies
            (Printf.sprintf "%s %s (%s) {\n%s}\n\n"
               (mangle_type f.Ast.f_ret) f.Ast.f_name params
               (block ec 2 (Option.get f.Ast.f_body)))
      | _ -> ())
    prog;
  List.iter
    (fun (iname, comment) ->
      Buffer.add_string buf (Printf.sprintf "/* %s: %s */\n" iname comment))
    (List.rev ec.instances);
  Buffer.add_char buf '\n';
  Buffer.add_buffer buf bodies;
  Buffer.contents buf

(* ---------------- standalone single-processor mode ---------------- *)

(* Where {!program} prints the historical translation (skeleton bodies live
   in a precompiled runtime the reader does not see), {!standalone} emits a
   COMPLETE C program: the same instantiated Skil functions, plus a
   sequential (p = 1) implementation of every skeleton and builtin the
   program touches, the generated bodies of the numbered skeleton
   instances, and a [main] driver that runs the entry point and frames its
   output exactly like [skilc run-par --width 1 --height 1] — so compiling
   with [cc] and byte-diffing against the simulator closes the loop on the
   C back end. *)

let find_func prog name =
  List.find_map
    (function
      | Ast.TFunc f when f.Ast.f_name = name -> Some f
      | _ -> None)
    prog

let take k xs = List.filteri (fun i _ -> i < k) xs

(* every name the program references (function heads and plain variables);
   [new] is recorded as its runtime hook skil_new *)
let rec expr_names acc (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var x -> if List.mem x acc then acc else x :: acc
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.OpSection _ -> acc
  | Ast.Call (f, args) -> List.fold_left expr_names (expr_names acc f) args
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Idx (a, b) ->
      expr_names (expr_names acc a) b
  | Ast.Unop (_, a) | Ast.Field (a, _) | Ast.Arrow (a, _) | Ast.Deref a ->
      expr_names acc a
  | Ast.New a ->
      expr_names (if List.mem "skil_new" acc then acc else "skil_new" :: acc) a
  | Ast.ArrayLit es -> List.fold_left expr_names acc es
  | Ast.Cond (a, b, c) -> expr_names (expr_names (expr_names acc a) b) c

let rec stmt_names acc = function
  | Ast.SExpr e | Ast.SReturn (Some e) | Ast.SDecl (_, _, Some e) ->
      expr_names acc e
  | Ast.SDecl (_, _, None) | Ast.SReturn None | Ast.SBreak | Ast.SContinue ->
      acc
  | Ast.SIf (c, a, b) ->
      List.fold_left stmt_names
        (List.fold_left stmt_names (expr_names acc c) a)
        b
  | Ast.SWhile (c, b) -> List.fold_left stmt_names (expr_names acc c) b
  | Ast.SFor (i, c, s, b) ->
      let acc = match i with Some s -> stmt_names acc s | None -> acc in
      let acc = match c with Some e -> expr_names acc e | None -> acc in
      let acc = match s with Some e -> expr_names acc e | None -> acc in
      List.fold_left stmt_names acc b
  | Ast.SBlock b -> List.fold_left stmt_names acc b

let program_names prog =
  List.fold_left
    (fun acc -> function
      | Ast.TFunc { Ast.f_body = Some body; _ } ->
          List.fold_left stmt_names acc body
      | _ -> acc)
    [] prog

(* one functional slot of a skeleton instance: the C expression applying it
   to [actuals], with lifted arguments passed through instance parameters *)
let sapply pos sf actuals =
  match sf with
  | SFn (g, k) ->
      let lifted = List.init k (fun i -> Printf.sprintf "skil_l%d_%d" pos i) in
      Printf.sprintf "%s (%s)" g (String.concat ", " (lifted @ actuals))
  | SOp op -> (
      match actuals with
      | [ a; b ] -> Printf.sprintf "(%s %s %s)" a op b
      | [ a ] -> Printf.sprintf "(%s%s)" op a
      | _ -> invalid_arg "Emit_c.standalone: operator arity")

(* the lifted parameters an instance receives, typed from the callee's own
   (first-order, monomorphic) signature *)
let lifted_params prog (pos, sf) =
  match sf with
  | SOp _ -> []
  | SFn (_, 0) -> []
  | SFn (g, k) -> (
      match find_func prog g with
      | Some f ->
          List.mapi
            (fun i p ->
              Printf.sprintf "%s skil_l%d_%d" (stype p.Ast.p_type) pos i)
            (take k f.Ast.f_params)
      | None ->
          invalid_arg
            (Printf.sprintf
               "Emit_c.standalone: cannot lift arguments of builtin %s" g))

(* Emit one skeleton definition — a numbered instance, or (with
   [si_funs = []] and the skeleton's own name) the generic version taking
   function pointers.  The sequential semantics mirror the simulator at
   p = 1: row-major element order (last dimension fastest), left fold,
   accumulating generalized matrix product, inclusive upperBd. *)
let semit_skel buf prog ~celt ~carr { si_name; si_skel; si_funs } =
  let fnptr2 name = Printf.sprintf "%s (*%s) (%s, %s)" celt name celt celt in
  let data_specs =
    match si_skel with
    | "array_create" ->
        [
          (0, "dim", "skil_int dim");
          (1, "size", "Index size");
          (2, "blocksize", "Index blocksize");
          (3, "lowerbd", "Index lowerbd");
          (4, "init", Printf.sprintf "%s (*init) (Index)" celt);
          (5, "distr", "skil_int distr");
        ]
    | "array_map" ->
        [
          (0, "f", Printf.sprintf "%s (*f) (%s, Index)" celt celt);
          (1, "from", carr ^ " from");
          (2, "to", carr ^ " to");
        ]
    | "array_fold" ->
        [
          (0, "conv", Printf.sprintf "%s (*conv) (%s, Index)" celt celt);
          (1, "f", fnptr2 "f");
          (2, "a", carr ^ " a");
        ]
    | "array_gen_mult" ->
        [
          (0, "a", carr ^ " a");
          (1, "b", carr ^ " b");
          (2, "add", fnptr2 "add");
          (3, "mul", fnptr2 "mul");
          (4, "c", carr ^ " c");
        ]
    | "array_permute_rows" ->
        [
          (0, "from", carr ^ " from");
          (1, "perm", "skil_int (*perm) (skil_int)");
          (2, "to", carr ^ " to");
        ]
    | s -> invalid_arg ("Emit_c.standalone: no instance template for " ^ s)
  in
  let params =
    List.concat_map (lifted_params prog) si_funs
    @ List.filter_map
        (fun (pos, _, decl) ->
          if List.mem_assoc pos si_funs then None else Some decl)
        data_specs
  in
  let use pos actuals =
    match List.assoc_opt pos si_funs with
    | Some sf -> sapply pos sf actuals
    | None ->
        let _, name, _ = List.find (fun (p, _, _) -> p = pos) data_specs in
        Printf.sprintf "%s (%s)" name (String.concat ", " actuals)
  in
  let ret = match si_skel with
    | "array_create" -> carr
    | "array_fold" -> celt
    | _ -> "void"
  in
  Buffer.add_string buf
    (Printf.sprintf "static %s %s (%s) {\n" ret si_name
       (String.concat ", " params));
  (match si_skel with
  | "array_create" ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %s a = skil_array_alloc (dim, size);\n\
            \  skil_int ix[4];\n\
            \  (void) blocksize; (void) lowerbd; (void) distr;\n\
            \  for (skil_int k = 0; k < a->count; k++) {\n\
            \    skil_index_of (a, k, ix);\n\
            \    a->data[k] = %s;\n\
            \  }\n\
            \  return a;\n"
           carr
           (use 4 [ "ix" ]))
  | "array_map" ->
      Buffer.add_string buf
        (Printf.sprintf
           "  skil_int ix[4];\n\
            \  for (skil_int k = 0; k < from->count; k++) {\n\
            \    skil_index_of (from, k, ix);\n\
            \    to->data[k] = %s;\n\
            \  }\n"
           (use 0 [ "from->data[k]"; "ix" ]))
  | "array_fold" ->
      Buffer.add_string buf
        (Printf.sprintf
           "  skil_int ix[4];\n\
            \  %s acc = 0;\n\
            \  int first = 1;\n\
            \  for (skil_int k = 0; k < a->count; k++) {\n\
            \    skil_index_of (a, k, ix);\n\
            \    %s v = %s;\n\
            \    acc = first ? v : %s;\n\
            \    first = 0;\n\
            \  }\n\
            \  return acc;\n"
           celt celt
           (use 0 [ "a->data[k]"; "ix" ])
           (use 1 [ "acc"; "v" ]))
  | "array_gen_mult" ->
      Buffer.add_string buf
        (Printf.sprintf
           "  skil_int n = a->size[0];\n\
            \  for (skil_int i = 0; i < n; i++)\n\
            \    for (skil_int k = 0; k < n; k++) {\n\
            \      %s aik = a->data[i * n + k];\n\
            \      for (skil_int j = 0; j < n; j++)\n\
            \        c->data[i * n + j] = %s;\n\
            \    }\n"
           celt
           (use 2
              [ "c->data[i * n + j]"; use 3 [ "aik"; "b->data[k * n + j]" ] ]))
  | "array_permute_rows" ->
      Buffer.add_string buf
        (Printf.sprintf
           "  skil_int n = from->size[0];\n\
            \  skil_int w = from->size[1];\n\
            \  for (skil_int r = 0; r < n; r++)\n\
            \    for (skil_int j = 0; j < w; j++)\n\
            \      to->data[%s * w + j] = from->data[r * w + j];\n"
           (use 1 [ "r" ]))
  | _ -> assert false);
  Buffer.add_string buf "}\n\n"

let semit_type_instances buf program =
  List.iter
    (fun t ->
      match t with
      | Ast.TNamed ("array", [ _ ]) -> () (* the embedded runtime's typedef *)
      | Ast.TNamed (n, args) -> (
          match find_struct program n with
          | Some sd when args <> [] ->
              let s =
                try List.combine sd.Ast.s_params args
                with Invalid_argument _ -> []
              in
              Buffer.add_string buf (stype t ^ " {\n");
              List.iter
                (fun (ft, fname) ->
                  Buffer.add_string buf
                    ("  " ^ stype (subst_simple s ft) ^ " " ^ fname ^ ";\n"))
                sd.Ast.s_fields;
              Buffer.add_string buf "};\n"
          | _ -> (
              match find_typedef program n with
              | Some td when args <> [] ->
                  let s =
                    try List.combine td.Ast.td_params args
                    with Invalid_argument _ -> []
                  in
                  Buffer.add_string buf
                    ("typedef "
                    ^ stype (subst_simple s td.Ast.td_type)
                    ^ " " ^ stype t ^ ";\n")
              | _ -> ()))
      | _ -> ())
    (used_named_types program)

let standalone (prog : Ast.program) ~entry ~args =
  if entry = "main" || find_func prog "main" <> None then
    invalid_arg
      "Emit_c.standalone: the program defines main, which collides with the \
       generated C driver (rename the entry function)";
  let names = program_names prog in
  let used n = List.mem n names in
  if used "skil_new" then
    invalid_arg "Emit_c.standalone: new() is not supported in standalone mode";
  let elems =
    List.sort_uniq compare
      (List.filter_map
         (function Ast.TNamed ("array", [ e ]) -> Some e | _ -> None)
         (used_named_types prog))
  in
  let elem =
    match elems with
    | [] -> Ast.TInt
    | [ e ] -> e
    | _ ->
        invalid_arg
          "Emit_c.standalone: arrays of more than one element type (the \
           embedded runtime is monomorphic)"
  in
  (match elem with
  | Ast.TInt | Ast.TFloat -> ()
  | _ ->
      invalid_arg
        "Emit_c.standalone: only int and float array elements are supported");
  let celt = stype elem in
  let carr = flat elem ^ "array" in
  (* walk the bodies first: instances and generic-skeleton usage drive what
     the embedded runtime must contain *)
  let m = { sinsts = []; sgeneric = [] } in
  let ec =
    { buf = Buffer.create 256; instances = []; counter = 0; smode = Some m }
  in
  let bodies = Buffer.create 4096 in
  let protos = Buffer.create 512 in
  List.iter
    (function
      | Ast.TFunc f when f.Ast.f_body <> None ->
          let params =
            String.concat ", "
              (List.map
                 (fun p -> stype p.Ast.p_type ^ " " ^ p.Ast.p_name)
                 f.Ast.f_params)
          in
          let head =
            Printf.sprintf "%s %s (%s)" (stype f.Ast.f_ret) f.Ast.f_name params
          in
          Buffer.add_string protos (Printf.sprintf "static %s;\n" head);
          Buffer.add_string bodies
            (Printf.sprintf "%s {\n%s}\n\n" head
               (block ec 2 (Option.get f.Ast.f_body)))
      | _ -> ())
    prog;
  let buf = Buffer.create 8192 in
  let out s = Buffer.add_string buf s in
  out
    "/* generated by the Skil compiler — standalone single-processor build\n\
    \   (sequential skeleton runtime embedded; output matches\n\
    \   skilc run-par --width 1 --height 1) */\n";
  out "#include <stdio.h>\n#include <stdlib.h>\n";
  if used "sqrt" || used "fabs" then out "#include <math.h>\n";
  out "\n";
  out "typedef long long skil_int; /* Skil int is wider than 32 bits */\n";
  out "typedef skil_int *Index;\n";
  out "typedef struct { Index lowerBd; Index upperBd; } *Bounds;\n\n";
  out "#define DISTR_DEFAULT 0\n#define DISTR_RING 1\n#define DISTR_TORUS2D 2\n";
  out "#define procId ((skil_int) 0)\n#define nProcs ((skil_int) 1)\n";
  if used "int_max" then
    (* the simulator's max_int / 4, chosen so int_max + weight cannot
       overflow (shortest paths' infinity) *)
    out "#define int_max 1152921504606846975LL\n";
  if used "abs" then out "#define abs skil_abs\n";
  if used "log2" then out "#define log2 skil_log2\n";
  out "\n";
  out "static int skil_printed = 0;\n";
  let any_print =
    used "print_int" || used "print_float" || used "print_string"
    || used "print_char"
  in
  if any_print then
    out
      "static void skil_mark (void) {\n\
      \  if (!skil_printed) { fputs (\"[proc 0] \", stdout); skil_printed = \
       1; }\n\
       }\n";
  if used "print_int" then
    out
      "static void print_int (skil_int n) { skil_mark (); printf (\"%lld\", \
       n); }\n";
  if used "print_float" then
    out
      "static void print_float (double f) { skil_mark (); printf (\"%g\", f); \
       }\n";
  if used "print_string" then
    out
      "static void print_string (const char *s) { skil_mark (); fputs (s, \
       stdout); }\n";
  if used "print_char" then
    out "static void print_char (char c) { skil_mark (); putchar (c); }\n";
  if used "error" then
    out
      "static void error (const char *m) { fprintf (stderr, \"skil: %s\\n\", \
       m); exit (1); }\n";
  if used "min" then
    out
      (Printf.sprintf "static %s min (%s a, %s b) { return a <= b ? a : b; }\n"
         celt celt celt);
  if used "max" then
    out
      (Printf.sprintf "static %s max (%s a, %s b) { return a >= b ? a : b; }\n"
         celt celt celt);
  if used "abs" then
    out "static skil_int skil_abs (skil_int n) { return n < 0 ? -n : n; }\n";
  if used "log2" then
    out
      "static skil_int skil_log2 (skil_int n) { /* ceiling log2, log2(1) = 0 \
       */\n\
      \  skil_int k = 0, pow = 1;\n\
      \  while (pow < n) { k++; pow *= 2; }\n\
      \  return k;\n\
       }\n";
  if used "itof" then
    out "static double itof (skil_int n) { return (double) n; }\n";
  if used "ftoi" then
    out "static skil_int ftoi (double f) { return (skil_int) f; }\n";
  out "\n";
  let any_array =
    elems <> []
    && List.exists (fun n -> String.length n > 6 && String.sub n 0 6 = "array_")
         names
  in
  if any_array then begin
    out
      (Printf.sprintf
         "/* the runtime's hidden pardata implementation at p = 1: the whole\n\
         \   array is the local partition, stored row-major (last dimension\n\
         \   fastest), exactly the simulator's element order */\n\
          struct skil_array { skil_int dim; skil_int size[4]; skil_int \
          count; %s *data; };\n\
          typedef struct skil_array *%s;\n\n"
         celt carr);
    out
      (Printf.sprintf
         "static %s skil_array_alloc (skil_int dim, Index size) {\n\
         \  %s a = malloc (sizeof *a);\n\
         \  a->dim = dim;\n\
         \  a->count = 1;\n\
         \  for (skil_int d = 0; d < dim; d++) { a->size[d] = size[d]; \
          a->count *= size[d]; }\n\
         \  a->data = malloc ((size_t) (a->count ? a->count : 1) * sizeof \
          *a->data);\n\
         \  return a;\n\
          }\n"
         carr carr);
    out
      (Printf.sprintf
         "static skil_int skil_offset (%s a, Index ix) {\n\
         \  skil_int off = 0;\n\
         \  for (skil_int d = 0; d < a->dim; d++) off = off * a->size[d] + \
          ix[d];\n\
         \  return off;\n\
          }\n"
         carr);
    out
      (Printf.sprintf
         "static void skil_index_of (%s a, skil_int k, Index ix) {\n\
         \  for (skil_int d = a->dim - 1; d >= 0; d--) { ix[d] = k %% \
          a->size[d]; k /= a->size[d]; }\n\
          }\n\n"
         carr);
    if used "array_destroy" then
      out
        (Printf.sprintf
           "static void array_destroy (%s a) { free (a->data); free (a); }\n"
           carr);
    if used "array_copy" then
      out
        (Printf.sprintf
           "static void array_copy (%s from, %s to) {\n\
           \  for (skil_int k = 0; k < from->count; k++) to->data[k] = \
            from->data[k];\n\
            }\n"
           carr carr);
    if used "array_broadcast_part" then
      out
        (Printf.sprintf
           "static void array_broadcast_part (%s a, Index ix) {\n\
           \  (void) a; (void) ix; /* single processor: the owner is us */\n\
            }\n"
           carr);
    if used "array_part_bounds" then
      out
        (Printf.sprintf
           "static Bounds array_part_bounds (%s a) {\n\
           \  Bounds b = malloc (sizeof *b);\n\
           \  b->lowerBd = calloc ((size_t) a->dim, sizeof (skil_int));\n\
           \  b->upperBd = malloc ((size_t) a->dim * sizeof (skil_int));\n\
           \  for (skil_int d = 0; d < a->dim; d++) b->upperBd[d] = \
            a->size[d] - 1; /* inclusive */\n\
           \  return b;\n\
            }\n"
           carr);
    if used "array_get_elem" then
      out
        (Printf.sprintf
           "static %s array_get_elem (%s a, Index ix) { return \
            a->data[skil_offset (a, ix)]; }\n"
           celt carr);
    if used "array_put_elem" then
      out
        (Printf.sprintf
           "static void array_put_elem (%s a, Index ix, %s v) { \
            a->data[skil_offset (a, ix)] = v; }\n"
           celt carr);
    out "\n";
    (* generic (function-pointer) versions, only where a call passes bare
       function names; instanced call sites get their own bodies below *)
    List.iter
      (fun skel ->
        if List.mem skel m.sgeneric then
          semit_skel buf prog ~celt ~carr
            { si_name = skel; si_skel = skel; si_funs = [] })
      [
        "array_create"; "array_map"; "array_fold"; "array_gen_mult";
        "array_permute_rows";
      ]
  end;
  semit_type_instances buf prog;
  Buffer.add_buffer buf protos;
  out "\n";
  List.iter (semit_skel buf prog ~celt ~carr) (List.rev m.sinsts);
  Buffer.add_buffer buf bodies;
  out
    (Printf.sprintf
       "int main (void) {\n\
       \  %s (%s);\n\
       \  if (skil_printed) putchar ('\\n');\n\
       \  return 0;\n\
        }\n"
       entry
       (String.concat ", " (List.map string_of_int args)));
  Buffer.contents buf
