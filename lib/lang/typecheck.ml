exception Type_error of { line : int; col : int; message : string }

type scheme = {
  sch_vars : string list;
  sch_params : Ast.typ list;
  sch_ret : Ast.typ;
}

type env = {
  funcs : (string, scheme) Hashtbl.t;
  structs : (string, Ast.struct_def) Hashtbl.t;
  typedefs : (string, Ast.typedef) Hashtbl.t;
  mutable pardatas : string list;
}

(* Errors carry a (line, col) pair threaded from the offending expression;
   (0, 0) marks checks with no source anchor (e.g. an uninitialised
   declaration). *)
let err (line, col) fmt =
  Printf.ksprintf (fun message -> raise (Type_error { line; col; message })) fmt

let epos (e : Ast.expr) = (e.Ast.line, e.Ast.col)
let no_pos = (0, 0)

(* ---------------- unification ---------------- *)

let meta_counter = ref 0

let fresh_meta () =
  incr meta_counter;
  Ast.TMeta (ref (Ast.Unbound !meta_counter))

let rec repr = function
  | Ast.TMeta ({ contents = Ast.Link t } as r) ->
      let t' = repr t in
      r := Ast.Link t';
      t'
  | t -> t

(* Expand typedefs (not structs or pardatas) at the head of a type. *)
let rec expand env t =
  match repr t with
  | Ast.TNamed (n, args) as t -> (
      match Hashtbl.find_opt env.typedefs n with
      | Some td ->
          if List.length td.Ast.td_params <> List.length args then t
          else
            let subst = List.combine td.Ast.td_params args in
            expand env (substitute subst td.Ast.td_type)
      | None -> t)
  | t -> t

and substitute subst = function
  | Ast.TVar v as t -> (
      match List.assoc_opt v subst with Some t' -> t' | None -> t)
  | Ast.TPtr t -> Ast.TPtr (substitute subst t)
  | Ast.TNamed (n, args) -> Ast.TNamed (n, List.map (substitute subst) args)
  | Ast.TFun (args, ret) ->
      Ast.TFun (List.map (substitute subst) args, substitute subst ret)
  | (Ast.TInt | Ast.TFloat | Ast.TChar | Ast.TVoid | Ast.TString | Ast.TIndex
    | Ast.TBounds | Ast.TMeta _) as t ->
      t

let rec occurs r = function
  | Ast.TMeta r' when r == r' -> true
  | Ast.TMeta { contents = Ast.Link t } -> occurs r t
  | Ast.TPtr t -> occurs r t
  | Ast.TNamed (_, args) -> List.exists (occurs r) args
  | Ast.TFun (args, ret) -> List.exists (occurs r) args || occurs r ret
  | _ -> false

let rec unify env line t1 t2 =
  let t1 = expand env t1 and t2 = expand env t2 in
  match (t1, t2) with
  | Ast.TMeta r1, Ast.TMeta r2 when r1 == r2 -> ()
  | Ast.TMeta r, t | t, Ast.TMeta r ->
      if occurs r t then err line "cyclic type";
      r := Ast.Link t
  | Ast.TInt, Ast.TInt
  | Ast.TFloat, Ast.TFloat
  | Ast.TChar, Ast.TChar
  | Ast.TVoid, Ast.TVoid
  | Ast.TString, Ast.TString
  | Ast.TIndex, Ast.TIndex
  | Ast.TBounds, Ast.TBounds ->
      ()
  | Ast.TVar a, Ast.TVar b when a = b -> ()
  | Ast.TPtr a, Ast.TPtr b -> unify env line a b
  | Ast.TNamed (n1, a1), Ast.TNamed (n2, a2)
    when n1 = n2 && List.length a1 = List.length a2 ->
      List.iter2 (unify env line) a1 a2
  | Ast.TFun (p1, r1), Ast.TFun (p2, r2) when List.length p1 = List.length p2
    ->
      List.iter2 (unify env line) p1 p2;
      unify env line r1 r2
  | _ ->
      err line "type mismatch: %s vs %s" (Ast.type_to_string t1)
        (Ast.type_to_string t2)

let rec zonk env t =
  match expand env t with
  | Ast.TMeta { contents = Ast.Link t } -> zonk env t
  | Ast.TPtr t -> Ast.TPtr (zonk env t)
  | Ast.TNamed (n, args) -> Ast.TNamed (n, List.map (zonk env) args)
  | Ast.TFun (args, ret) ->
      Ast.TFun (List.map (zonk env) args, zonk env ret)
  | t -> t

(* The paper's pardata restrictions (sections 2.2-2.3): distributed data
   structures may not be nested, and type variables inside other data types
   may not be instantiated with pardata types.  After zonking, this means a
   pardata name may appear only at the outermost level of a type. *)
let rec check_pardata_placement env line ~inside t =
  match zonk env t with
  | Ast.TNamed (n, args) ->
      let is_pd = List.mem n env.pardatas in
      if is_pd && inside then
        err line
          "distributed data structures may not be nested or stored inside            other data types (%s)"
          n;
      List.iter (check_pardata_placement env line ~inside:true) args
  | Ast.TPtr t | Ast.TFun ([], t) ->
      check_pardata_placement env line ~inside:true t
  | Ast.TFun (args, ret) ->
      List.iter (check_pardata_placement env line ~inside) args;
      check_pardata_placement env line ~inside ret
  | _ -> ()


(* ---------------- builtins ---------------- *)

let arr t = Ast.TNamed ("array", [ t ])
let v s = Ast.TVar s

let builtins =
  let f params ret = { sch_vars = []; sch_params = params; sch_ret = ret } in
  let pf vars params ret =
    { sch_vars = vars; sch_params = params; sch_ret = ret }
  in
  [
    (* section 3 skeletons *)
    ( "array_create",
      pf [ "t" ]
        [
          Ast.TInt; Ast.TIndex; Ast.TIndex; Ast.TIndex;
          Ast.TFun ([ Ast.TIndex ], v "t"); Ast.TInt;
        ]
        (arr (v "t")) );
    (* like array_create but with a ready element value instead of an
       initialiser function: every element is a copy of the given value.
       The fusion pass rewrites constant-initialiser array_create calls to
       this (no per-element function application to charge); it is also a
       legal source-level builtin. *)
    ( "array_create_const",
      pf [ "t" ]
        [ Ast.TInt; Ast.TIndex; Ast.TIndex; Ast.TIndex; v "t"; Ast.TInt ]
        (arr (v "t")) );
    ("array_destroy", pf [ "t" ] [ arr (v "t") ] Ast.TVoid);
    ( "array_map",
      pf [ "t1"; "t2" ]
        [
          Ast.TFun ([ v "t1"; Ast.TIndex ], v "t2");
          arr (v "t1"); arr (v "t2");
        ]
        Ast.TVoid );
    ( "array_fold",
      pf [ "t1"; "t2" ]
        [
          Ast.TFun ([ v "t1"; Ast.TIndex ], v "t2");
          Ast.TFun ([ v "t2"; v "t2" ], v "t2");
          arr (v "t1");
        ]
        (v "t2") );
    ("array_copy", pf [ "t" ] [ arr (v "t"); arr (v "t") ] Ast.TVoid);
    ( "array_broadcast_part",
      pf [ "t" ] [ arr (v "t"); Ast.TIndex ] Ast.TVoid );
    ( "array_permute_rows",
      pf [ "t" ]
        [ arr (v "t"); Ast.TFun ([ Ast.TInt ], Ast.TInt); arr (v "t") ]
        Ast.TVoid );
    ( "array_gen_mult",
      pf [ "t" ]
        [
          arr (v "t"); arr (v "t");
          Ast.TFun ([ v "t"; v "t" ], v "t");
          Ast.TFun ([ v "t"; v "t" ], v "t");
          arr (v "t");
        ]
        Ast.TVoid );
    ("array_part_bounds", pf [ "t" ] [ arr (v "t") ] Ast.TBounds);
    ("array_get_elem", pf [ "t" ] [ arr (v "t"); Ast.TIndex ] (v "t"));
    ( "array_put_elem",
      pf [ "t" ] [ arr (v "t"); Ast.TIndex; v "t" ] Ast.TVoid );
    (* small C runtime *)
    ("print_int", f [ Ast.TInt ] Ast.TVoid);
    ("print_float", f [ Ast.TFloat ] Ast.TVoid);
    ("print_string", f [ Ast.TString ] Ast.TVoid);
    ("print_char", f [ Ast.TChar ] Ast.TVoid);
    ("error", f [ Ast.TString ] Ast.TVoid);
    ("min", pf [ "a" ] [ v "a"; v "a" ] (v "a"));
    ("max", pf [ "a" ] [ v "a"; v "a" ] (v "a"));
    ("abs", f [ Ast.TInt ] Ast.TInt);
    ("fabs", f [ Ast.TFloat ] Ast.TFloat);
    ("sqrt", f [ Ast.TFloat ] Ast.TFloat);
    ("log2", f [ Ast.TInt ] Ast.TInt);
    ("itof", f [ Ast.TInt ] Ast.TFloat);
    ("ftoi", f [ Ast.TFloat ] Ast.TInt);
    ("int_max", f [] Ast.TInt);
    ("procId", f [] Ast.TInt);
    ("nProcs", f [] Ast.TInt);
    ("NULL", pf [ "a" ] [] (Ast.TPtr (v "a")));
    ("DISTR_DEFAULT", f [] Ast.TInt);
    ("DISTR_RING", f [] Ast.TInt);
    ("DISTR_TORUS2D", f [] Ast.TInt);
  ]

(* Hashtable view of [builtins]: the execution engines resolve builtin names
   and arities on every unbound-identifier lookup and every curried
   application, so give them O(1) instead of a list scan. *)
let builtins_tbl =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, sch) -> Hashtbl.replace tbl name sch) builtins;
  tbl

let builtin_scheme name = Hashtbl.find_opt builtins_tbl name
let is_builtin name = Hashtbl.mem builtins_tbl name

let builtin_arity name =
  match Hashtbl.find_opt builtins_tbl name with
  | Some sch -> Some (List.length sch.sch_params)
  | None -> None

(* ---------------- environment construction ---------------- *)

let collect env program =
  List.iter
    (fun top ->
      match top with
      | Ast.TStruct s ->
          (* pardata may not be stored inside other data structures *)
          List.iter
            (fun (ft, _) -> check_pardata_placement env no_pos ~inside:true ft)
            s.Ast.s_fields;
          Hashtbl.replace env.structs s.Ast.s_name s
      | Ast.TTypedef td -> Hashtbl.replace env.typedefs td.Ast.td_name td
      | Ast.TPardata pd -> env.pardatas <- pd.Ast.pd_name :: env.pardatas
      | Ast.TFunc fn ->
          let vars =
            List.fold_left
              (fun acc p -> Parser.tyvars_of acc p.Ast.p_type)
              (Parser.tyvars_of [] fn.Ast.f_ret)
              fn.Ast.f_params
          in
          Hashtbl.replace env.funcs fn.Ast.f_name
            {
              sch_vars = vars;
              sch_params = List.map (fun p -> p.Ast.p_type) fn.Ast.f_params;
              sch_ret = fn.Ast.f_ret;
            })
    program

(* ---------------- expression checking ---------------- *)

type ctx = {
  env : env;
  mutable locals : (string * Ast.typ) list;
  ret : Ast.typ;
}

let instantiate_scheme sch =
  let subst = List.map (fun var -> (var, fresh_meta ())) sch.sch_vars in
  ( subst,
    List.map (substitute subst) sch.sch_params,
    substitute subst sch.sch_ret )

let operator_scheme op =
  match op with
  | "+" | "-" | "*" | "/" ->
      let a = fresh_meta () in
      ([ a; a ], a)
  | "%" -> ([ Ast.TInt; Ast.TInt ], Ast.TInt)
  | "==" | "!=" | "<" | ">" | "<=" | ">=" ->
      let a = fresh_meta () in
      ([ a; a ], Ast.TInt)
  | "&&" | "||" -> ([ Ast.TInt; Ast.TInt ], Ast.TInt)
  | _ -> invalid_arg ("operator_scheme: " ^ op)

(* Record the resolved aggregate type of a field access on the node itself
   (under the "<struct>" key, which cannot collide with a $-variable): the
   compiled engine reads it to turn field names into positional indices
   without redoing inference.  Idempotent across repeated checks. *)
let record_field_struct ctx (e : Ast.expr) t =
  match expand ctx.env t with
  | Ast.TNamed _ as st ->
      e.Ast.inst <- ("<struct>", st) :: List.remove_assoc "<struct>" e.Ast.inst
  | _ -> ()

let rec field_type ctx line t field =
  match expand ctx.env t with
  | Ast.TBounds ->
      if field = "lowerBd" || field = "upperBd" then Ast.TIndex
      else err line "Bounds has fields lowerBd and upperBd, not %s" field
  | Ast.TNamed (n, args) -> (
      match Hashtbl.find_opt ctx.env.structs n with
      | None -> err line "%s is not a structure type" n
      | Some s -> (
          if List.length s.Ast.s_params <> List.length args then
            err line "wrong number of type arguments for %s" n;
          let subst = List.combine s.Ast.s_params args in
          match
            List.find_opt (fun (_, fname) -> fname = field) s.Ast.s_fields
          with
          | Some (ft, _) -> substitute subst ft
          | None -> err line "structure %s has no field %s" n field))
  | t -> err line "%s has no fields" (Ast.type_to_string t)

and check_expr ctx (e : Ast.expr) : Ast.typ =
  let line = epos e in
  match e.Ast.desc with
  | Ast.Int _ -> Ast.TInt
  | Ast.Float _ -> Ast.TFloat
  | Ast.Str _ -> Ast.TString
  | Ast.Chr _ -> Ast.TChar
  | Ast.Var x -> (
      match List.assoc_opt x ctx.locals with
      | Some t -> t
      | None -> (
          match Hashtbl.find_opt ctx.env.funcs x with
          | Some sch ->
              let subst, params, ret = instantiate_scheme sch in
              e.Ast.inst <- subst;
              if params = [] then ret else Ast.TFun (params, ret)
          | None -> err line "unbound identifier %s" x))
  | Ast.OpSection op ->
      let params, ret = operator_scheme op in
      (* record the operand type so instantiation can type lifted operands *)
      (match params with p :: _ -> e.Ast.inst <- [ ("op", p) ] | [] -> ());
      Ast.TFun (params, ret)
  | Ast.Call (f, args) ->
      let tf = check_expr ctx f in
      let targs = List.map (check_expr ctx) args in
      apply ctx line tf targs
  | Ast.Binop (op, a, b) ->
      let params, ret = operator_scheme op in
      (match params with
       | [ pa; pb ] ->
           unify ctx.env line (check_expr ctx a) pa;
           unify ctx.env line (check_expr ctx b) pb
       | _ -> assert false);
      ret
  | Ast.Unop ("!", a) ->
      unify ctx.env line (check_expr ctx a) Ast.TInt;
      Ast.TInt
  | Ast.Unop ("-", a) ->
      let t = check_expr ctx a in
      (match expand ctx.env t with
       | Ast.TInt | Ast.TFloat | Ast.TMeta _ -> ()
       | t -> err line "cannot negate %s" (Ast.type_to_string t));
      t
  | Ast.Unop (op, _) -> err line "unknown operator %s" op
  | Ast.Assign (l, r) ->
      check_lvalue ctx l;
      let tl = check_expr ctx l in
      let tr = check_expr ctx r in
      unify ctx.env line tl tr;
      tl
  | Ast.Idx (a, i) ->
      unify ctx.env line (check_expr ctx a) Ast.TIndex;
      unify ctx.env line (check_expr ctx i) Ast.TInt;
      Ast.TInt
  | Ast.Field (s, f) ->
      let ts = check_expr ctx s in
      record_field_struct ctx e ts;
      field_type ctx line ts f
  | Ast.Arrow (p, f) -> (
      let t = expand ctx.env (check_expr ctx p) in
      match t with
      | Ast.TPtr t ->
          record_field_struct ctx e t;
          field_type ctx line t f
      | Ast.TBounds -> field_type ctx line Ast.TBounds f
      | t -> err line "-> applied to non-pointer %s" (Ast.type_to_string t))
  | Ast.Deref p -> (
      match expand ctx.env (check_expr ctx p) with
      | Ast.TPtr t -> t
      | Ast.TMeta _ as t ->
          let cell = fresh_meta () in
          unify ctx.env line t (Ast.TPtr cell);
          cell
      | t -> err line "dereference of non-pointer %s" (Ast.type_to_string t))
  | Ast.ArrayLit es ->
      List.iter (fun e -> unify ctx.env line (check_expr ctx e) Ast.TInt) es;
      Ast.TIndex
  | Ast.Cond (c, a, b) ->
      unify ctx.env line (check_expr ctx c) Ast.TInt;
      let ta = check_expr ctx a in
      unify ctx.env line ta (check_expr ctx b);
      ta
  | Ast.New e -> Ast.TPtr (check_expr ctx e)

and check_lvalue ctx (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var x ->
      if List.assoc_opt x ctx.locals = None then
        err (epos e) "cannot assign to %s" x
  | Ast.Idx _ | Ast.Field _ | Ast.Arrow _ | Ast.Deref _ -> ()
  | _ -> err (epos e) "not an lvalue"

(* Curried application: consume as many parameters as there are arguments,
   possibly unrolling nested function results, and return the remainder. *)
and apply ctx line tf targs =
  match targs with
  | [] -> tf
  | targ :: rest -> (
      match expand ctx.env tf with
      | Ast.TFun (p :: ps, ret) ->
          unify ctx.env line targ p;
          let remainder = if ps = [] then ret else Ast.TFun (ps, ret) in
          apply ctx line remainder rest
      | Ast.TFun ([], ret) -> apply ctx line ret targs
      | Ast.TMeta _ as t ->
          let ret = fresh_meta () in
          unify ctx.env line t (Ast.TFun ([ targ ], ret));
          apply ctx line ret rest
      | t -> err line "%s is not a function" (Ast.type_to_string t))

(* ---------------- statements ---------------- *)

let rec check_stmt ctx = function
  | Ast.SExpr e -> ignore (check_expr ctx e)
  | Ast.SDecl (t, name, init) ->
      (* anchor declaration errors on the initialiser when there is one;
         the bare declaration has no token of its own in the AST *)
      let p = match init with Some e -> epos e | None -> no_pos in
      check_pardata_placement ctx.env p ~inside:false t;
      (match init with
       | Some e -> unify ctx.env (epos e) (check_expr ctx e) t
       | None -> ());
      ctx.locals <- (name, t) :: ctx.locals
  | Ast.SIf (c, a, b) ->
      unify ctx.env (epos c) (check_expr ctx c) Ast.TInt;
      check_block ctx a;
      check_block ctx b
  | Ast.SWhile (c, b) ->
      unify ctx.env (epos c) (check_expr ctx c) Ast.TInt;
      check_block ctx b
  | Ast.SFor (init, cond, step, body) ->
      let saved = ctx.locals in
      Option.iter (check_stmt ctx) init;
      Option.iter
        (fun c -> unify ctx.env (epos c) (check_expr ctx c) Ast.TInt)
        cond;
      Option.iter (fun e -> ignore (check_expr ctx e)) step;
      check_block ctx body;
      ctx.locals <- saved
  | Ast.SReturn None ->
      unify ctx.env no_pos ctx.ret Ast.TVoid
  | Ast.SReturn (Some e) ->
      unify ctx.env (epos e) (check_expr ctx e) ctx.ret
  | Ast.SBreak | Ast.SContinue -> ()
  | Ast.SBlock b -> check_block ctx b

and check_block ctx stmts =
  let saved = ctx.locals in
  List.iter (check_stmt ctx) stmts;
  ctx.locals <- saved

(* Resolve recorded instantiations once a function body is fully checked. *)
let rec zonk_expr env (e : Ast.expr) =
  e.Ast.inst <- List.map (fun (v', t) -> (v', zonk env t)) e.Ast.inst;
  (* a bare pardata instantiation (e.g. passing an array to a generic
     function) is fine; a pardata nested inside a constructed type is not *)
  List.iter
    (fun (_, t) -> check_pardata_placement env (epos e) ~inside:false t)
    e.Ast.inst;
  match e.Ast.desc with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ | Ast.Var _
  | Ast.OpSection _ ->
      ()
  | Ast.Call (f, args) ->
      zonk_expr env f;
      List.iter (zonk_expr env) args
  | Ast.Binop (_, a, b) | Ast.Assign (a, b) | Ast.Idx (a, b) ->
      zonk_expr env a;
      zonk_expr env b
  | Ast.Unop (_, a) | Ast.Field (a, _) | Ast.Arrow (a, _) | Ast.Deref a
  | Ast.New a ->
      zonk_expr env a
  | Ast.ArrayLit es -> List.iter (zonk_expr env) es
  | Ast.Cond (a, b, c) ->
      zonk_expr env a;
      zonk_expr env b;
      zonk_expr env c

let rec zonk_stmt env = function
  | Ast.SExpr e -> zonk_expr env e
  | Ast.SDecl (_, _, init) -> Option.iter (zonk_expr env) init
  | Ast.SIf (c, a, b) ->
      zonk_expr env c;
      List.iter (zonk_stmt env) a;
      List.iter (zonk_stmt env) b
  | Ast.SWhile (c, b) ->
      zonk_expr env c;
      List.iter (zonk_stmt env) b
  | Ast.SFor (i, c, s, b) ->
      Option.iter (zonk_stmt env) i;
      Option.iter (zonk_expr env) c;
      Option.iter (zonk_expr env) s;
      List.iter (zonk_stmt env) b
  | Ast.SReturn e -> Option.iter (zonk_expr env) e
  | Ast.SBreak | Ast.SContinue -> ()
  | Ast.SBlock b -> List.iter (zonk_stmt env) b

(* ---------------- entry points ---------------- *)

let check_function env fn =
  match fn.Ast.f_body with
  | None -> ()
  | Some body ->
      let ctx =
        {
          env;
          locals =
            List.map (fun p -> (p.Ast.p_name, p.Ast.p_type)) fn.Ast.f_params;
          ret = fn.Ast.f_ret;
        }
      in
      check_block ctx body;
      List.iter (zonk_stmt env) body

let fresh_env () =
  let env =
    {
      funcs = Hashtbl.create 64;
      structs = Hashtbl.create 16;
      typedefs = Hashtbl.create 16;
      pardatas = [ "array" ];
    }
  in
  List.iter (fun (name, sch) -> Hashtbl.replace env.funcs name sch) builtins;
  env

let check program =
  let env = fresh_env () in
  collect env program;
  List.iter
    (function Ast.TFunc fn -> check_function env fn | _ -> ())
    program;
  env

let check_expr_in env e =
  let ctx = { env; locals = []; ret = Ast.TVoid } in
  let t = check_expr ctx e in
  zonk_expr env e;
  zonk env t

let function_scheme env name = Hashtbl.find_opt env.funcs name
let struct_def env name = Hashtbl.find_opt env.structs name
let is_pardata env name = List.mem name env.pardatas
