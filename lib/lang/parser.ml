exception Error of { line : int; col : int; message : string }

type state = {
  toks : Token.located array;
  mutable pos : int;
  mutable typenames : string list;
      (* names introduced by typedef/struct/pardata, plus builtins; needed to
         tell declarations from expression statements, as in every C parser *)
}

let builtin_typenames = [ "Index"; "Bounds"; "array" ]

let cur st = st.toks.(st.pos)
let tok st = (cur st).Token.tok

let error st message =
  let { Token.line; col; _ } = cur st in
  raise (Error { line; col; message })

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st t =
  if tok st = t then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" (Token.describe t)
         (Token.describe (tok st)))

let expect_punct st s = expect st (Token.PUNCT s)

let ident st =
  match tok st with
  | Token.IDENT s ->
      advance st;
      s
  | _ -> error st "expected identifier"

(* Source positions: every expression is stamped with the position of its
   *first* token, captured before its children are parsed.  (The previous
   scheme stamped nodes with the current token *after* parsing, i.e. the
   token following the construct — off by a whole line for any multi-line
   expression.) *)
let pos st =
  let t = cur st in
  (t.Token.line, t.Token.col)

let mk_at (line, col) desc = Ast.mk ~line ~col desc

(* ---------------- types ---------------- *)

let is_type_start st =
  match tok st with
  | Token.KW ("int" | "float" | "double" | "char" | "void" | "unsigned"
             | "struct") ->
      true
  | Token.TYVAR _ -> true
  | Token.IDENT s -> List.mem s st.typenames
  | _ -> false

let rec parse_type st =
  let base =
    match tok st with
    | Token.KW "unsigned" ->
        advance st;
        (match tok st with
         | Token.KW ("int" | "char") -> advance st
         | _ -> ());
        Ast.TInt
    | Token.KW "int" ->
        advance st;
        Ast.TInt
    | Token.KW ("float" | "double") ->
        advance st;
        Ast.TFloat
    | Token.KW "char" ->
        advance st;
        Ast.TChar
    | Token.KW "void" ->
        advance st;
        Ast.TVoid
    | Token.TYVAR v ->
        advance st;
        Ast.TVar v
    | Token.KW "struct" ->
        advance st;
        let name = "struct " ^ ident st in
        let args = parse_type_args st in
        Ast.TNamed (name, args)
    | Token.IDENT "Index" ->
        advance st;
        Ast.TIndex
    | Token.IDENT "Bounds" ->
        advance st;
        Ast.TBounds
    | Token.IDENT s when List.mem s st.typenames ->
        advance st;
        let args = parse_type_args st in
        Ast.TNamed (s, args)
    | _ -> error st "expected a type"
  in
  let rec stars t =
    if tok st = Token.PUNCT "*" then begin
      advance st;
      stars (Ast.TPtr t)
    end
    else t
  in
  stars base

and parse_type_args st =
  if tok st = Token.PUNCT "<" then begin
    advance st;
    let rec go acc =
      let t = parse_type st in
      match tok st with
      | Token.PUNCT "," ->
          advance st;
          go (t :: acc)
      | Token.PUNCT ">" ->
          advance st;
          List.rev (t :: acc)
      | _ -> error st "expected ',' or '>' in type arguments"
    in
    go []
  end
  else []

let parse_type_params st =
  (* <$t, $u> after a struct/typedef/pardata name *)
  if tok st = Token.PUNCT "<" then begin
    advance st;
    let rec go acc =
      match tok st with
      | Token.TYVAR v -> (
          advance st;
          match tok st with
          | Token.PUNCT "," ->
              advance st;
              go (v :: acc)
          | Token.PUNCT ">" ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or '>' in type parameters")
      | _ -> error st "expected a type variable"
    in
    go []
  end
  else []

(* ---------------- expressions ---------------- *)

let rec parse_expr_st st = parse_assign st

and parse_assign st =
  let p = pos st in
  let lhs = parse_cond st in
  match tok st with
  | Token.PUNCT "=" ->
      advance st;
      let rhs = parse_assign st in
      mk_at p (Ast.Assign (lhs, rhs))
  | Token.PUNCT (("+=" | "-=" | "*=" | "/=" | "%=") as op) ->
      (* compound assignment desugars to the plain operator *)
      advance st;
      let rhs = parse_assign st in
      mk_at p
        (Ast.Assign (lhs, mk_at p (Ast.Binop (String.sub op 0 1, lhs, rhs))))
  | _ -> lhs

and parse_cond st =
  let p = pos st in
  let c = parse_binop st 0 in
  if tok st = Token.PUNCT "?" then begin
    advance st;
    let a = parse_assign st in
    expect_punct st ":";
    let b = parse_cond st in
    mk_at p (Ast.Cond (c, a, b))
  end
  else c

and binop_levels =
  [|
    [ "||" ];
    [ "&&" ];
    [ "=="; "!=" ];
    [ "<"; ">"; "<="; ">=" ];
    [ "+"; "-" ];
    [ "*"; "/"; "%" ];
  |]

and parse_binop st level =
  if level >= Array.length binop_levels then parse_unary st
  else begin
    let start = pos st in
    let lhs = ref (parse_binop st (level + 1)) in
    let continue_ = ref true in
    while !continue_ do
      match tok st with
      | Token.PUNCT p when List.mem p binop_levels.(level) ->
          advance st;
          let rhs = parse_binop st (level + 1) in
          lhs := mk_at start (Ast.Binop (p, !lhs, rhs))
      | _ -> continue_ := false
    done;
    !lhs
  end

and parse_unary st =
  let p = pos st in
  match tok st with
  | Token.PUNCT "!" ->
      advance st;
      mk_at p (Ast.Unop ("!", parse_unary st))
  | Token.PUNCT "-" ->
      advance st;
      mk_at p (Ast.Unop ("-", parse_unary st))
  | Token.PUNCT "*" ->
      advance st;
      mk_at p (Ast.Deref (parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let start = pos st in
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match tok st with
    | Token.PUNCT "(" ->
        advance st;
        let args = parse_args st in
        e := mk_at start (Ast.Call (!e, args))
    | Token.PUNCT "[" ->
        advance st;
        let i = parse_expr_st st in
        expect_punct st "]";
        e := mk_at start (Ast.Idx (!e, i))
    | Token.PUNCT "." ->
        advance st;
        e := mk_at start (Ast.Field (!e, ident st))
    | Token.PUNCT "->" ->
        advance st;
        e := mk_at start (Ast.Arrow (!e, ident st))
    | Token.PUNCT "++" ->
        advance st;
        let one = mk_at start (Ast.Int 1) in
        e :=
          mk_at start
            (Ast.Assign (!e, mk_at start (Ast.Binop ("+", !e, one))))
    | Token.PUNCT "--" ->
        advance st;
        let one = mk_at start (Ast.Int 1) in
        e :=
          mk_at start
            (Ast.Assign (!e, mk_at start (Ast.Binop ("-", !e, one))))
    | _ -> continue_ := false
  done;
  !e

and parse_args st =
  if tok st = Token.PUNCT ")" then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let a = parse_assign st in
      match tok st with
      | Token.PUNCT "," ->
          advance st;
          go (a :: acc)
      | Token.PUNCT ")" ->
          advance st;
          List.rev (a :: acc)
      | _ -> error st "expected ',' or ')' in arguments"
    in
    go []
  end

and parse_primary st =
  let p = pos st in
  match tok st with
  | Token.INT n ->
      advance st;
      mk_at p (Ast.Int n)
  | Token.FLOAT f ->
      advance st;
      mk_at p (Ast.Float f)
  | Token.STRING s ->
      advance st;
      mk_at p (Ast.Str s)
  | Token.CHAR c ->
      advance st;
      mk_at p (Ast.Chr c)
  | Token.OPSECTION op ->
      advance st;
      mk_at p (Ast.OpSection op)
  | Token.IDENT name ->
      advance st;
      mk_at p (Ast.Var name)
  | Token.KW "new" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr_st st in
      expect_punct st ")";
      mk_at p (Ast.New e)
  | Token.PUNCT "(" ->
      advance st;
      let e = parse_expr_st st in
      expect_punct st ")";
      e
  | Token.PUNCT "{" ->
      advance st;
      let rec go acc =
        let e = parse_assign st in
        match tok st with
        | Token.PUNCT "," ->
            advance st;
            go (e :: acc)
        | Token.PUNCT "}" ->
            advance st;
            List.rev (e :: acc)
        | _ -> error st "expected ',' or '}' in array literal"
      in
      mk_at p (Ast.ArrayLit (go []))
  | _ -> error st ("unexpected token " ^ Token.describe (tok st))

(* ---------------- statements ---------------- *)

let rec parse_stmt st =
  match tok st with
  | Token.PUNCT ";" ->
      advance st;
      Ast.SBlock []
  | Token.PUNCT "{" -> Ast.SBlock (parse_block st)
  | Token.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr_st st in
      expect_punct st ")";
      let then_ = parse_stmt_as_block st in
      let else_ =
        if tok st = Token.KW "else" then begin
          advance st;
          parse_stmt_as_block st
        end
        else []
      in
      Ast.SIf (c, then_, else_)
  | Token.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr_st st in
      expect_punct st ")";
      Ast.SWhile (c, parse_stmt_as_block st)
  | Token.KW "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if tok st = Token.PUNCT ";" then begin
          advance st;
          None
        end
        else begin
          let s = parse_simple_stmt st in
          expect_punct st ";";
          Some s
        end
      in
      let cond =
        if tok st = Token.PUNCT ";" then None else Some (parse_expr_st st)
      in
      expect_punct st ";";
      let step =
        if tok st = Token.PUNCT ")" then None else Some (parse_expr_st st)
      in
      expect_punct st ")";
      Ast.SFor (init, cond, step, parse_stmt_as_block st)
  | Token.KW "return" ->
      advance st;
      let e =
        if tok st = Token.PUNCT ";" then None else Some (parse_expr_st st)
      in
      expect_punct st ";";
      Ast.SReturn e
  | Token.KW "break" ->
      advance st;
      expect_punct st ";";
      Ast.SBreak
  | Token.KW "continue" ->
      advance st;
      expect_punct st ";";
      Ast.SContinue
  | _ ->
      let s = parse_simple_stmt st in
      expect_punct st ";";
      s

and parse_simple_stmt st =
  if is_type_start st then begin
    let t = parse_type st in
    let name = ident st in
    let init =
      if tok st = Token.PUNCT "=" then begin
        advance st;
        Some (parse_expr_st st)
      end
      else None
    in
    Ast.SDecl (t, name, init)
  end
  else Ast.SExpr (parse_expr_st st)

and parse_stmt_as_block st =
  match parse_stmt st with Ast.SBlock b -> b | s -> [ s ]

and parse_block st =
  expect_punct st "{";
  let rec go acc =
    if tok st = Token.PUNCT "}" then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---------------- top level ---------------- *)

let parse_param st =
  let t = parse_type st in
  let name = ident st in
  if tok st = Token.PUNCT "(" then begin
    (* function-typed parameter: int is_trivial ($a) *)
    advance st;
    let rec go acc =
      if tok st = Token.PUNCT ")" then begin
        advance st;
        List.rev acc
      end
      else begin
        let at = parse_type st in
        (* parameter names inside functional types are allowed and ignored *)
        (match tok st with Token.IDENT _ -> advance st | _ -> ());
        match tok st with
        | Token.PUNCT "," ->
            advance st;
            go (at :: acc)
        | Token.PUNCT ")" ->
            advance st;
            List.rev (at :: acc)
        | _ -> error st "expected ',' or ')' in functional parameter"
      end
    in
    let args = go [] in
    { Ast.p_type = Ast.TFun (args, t); p_name = name }
  end
  else { Ast.p_type = t; p_name = name }

let parse_params st =
  expect_punct st "(";
  if tok st = Token.PUNCT ")" then begin
    advance st;
    []
  end
  else if tok st = Token.KW "void" && st.toks.(st.pos + 1).Token.tok = Token.PUNCT ")"
  then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let p = parse_param st in
      match tok st with
      | Token.PUNCT "," ->
          advance st;
          go (p :: acc)
      | Token.PUNCT ")" ->
          advance st;
          List.rev (p :: acc)
      | _ -> error st "expected ',' or ')' in parameters"
    in
    go []
  end

(* Collect $t variables appearing free in field types, in order (the paper
   writes struct _list {$t elem; ...} without an explicit parameter list). *)
let rec tyvars_of acc = function
  | Ast.TVar v -> if List.mem v acc then acc else acc @ [ v ]
  | Ast.TPtr t -> tyvars_of acc t
  | Ast.TNamed (_, args) -> List.fold_left tyvars_of acc args
  | Ast.TFun (args, ret) -> tyvars_of (List.fold_left tyvars_of acc args) ret
  | Ast.TInt | Ast.TFloat | Ast.TChar | Ast.TVoid | Ast.TString | Ast.TIndex
  | Ast.TBounds | Ast.TMeta _ ->
      acc

let parse_struct st =
  expect st (Token.KW "struct");
  let name = "struct " ^ ident st in
  let params = parse_type_params st in
  expect_punct st "{";
  let rec fields acc =
    if tok st = Token.PUNCT "}" then begin
      advance st;
      List.rev acc
    end
    else begin
      let t = parse_type st in
      let fname = ident st in
      expect_punct st ";";
      fields ((t, fname) :: acc)
    end
  in
  let fs = fields [] in
  expect_punct st ";";
  let params =
    if params <> [] then params
    else List.fold_left (fun acc (t, _) -> tyvars_of acc t) [] fs
  in
  st.typenames <- name :: st.typenames;
  { Ast.s_name = name; s_params = params; s_fields = fs }

(* Distinguish `struct s {...};` / `struct s<$t> {...};` (a definition) from
   `struct s<...> f(...)` (a return type) by scanning past the optional
   type-parameter list. *)
let struct_def_ahead st =
  match (tok st, st.toks.(st.pos + 1).Token.tok) with
  | Token.KW "struct", Token.IDENT _ -> (
      match st.toks.(st.pos + 2).Token.tok with
      | Token.PUNCT "{" -> true
      | Token.PUNCT "<" ->
          let rec scan i depth =
            match st.toks.(i).Token.tok with
            | Token.PUNCT "<" -> scan (i + 1) (depth + 1)
            | Token.PUNCT ">" ->
                if depth = 1 then
                  st.toks.(i + 1).Token.tok = Token.PUNCT "{"
                else scan (i + 1) (depth - 1)
            | Token.EOF -> false
            | _ -> scan (i + 1) depth
          in
          scan (st.pos + 2) 0
      | _ -> false)
  | _ -> false

let parse_top st =
  match tok st with
  | Token.KW "struct" when struct_def_ahead st ->
      Ast.TStruct (parse_struct st)
  | Token.KW "typedef" ->
      advance st;
      let t = parse_type st in
      let name = ident st in
      let params = parse_type_params st in
      let params = if params <> [] then params else tyvars_of [] t in
      expect_punct st ";";
      st.typenames <- name :: st.typenames;
      Ast.TTypedef { Ast.td_name = name; td_params = params; td_type = t }
  | Token.KW "pardata" ->
      advance st;
      let name = ident st in
      let params = parse_type_params st in
      (* an optional hidden implementation type may follow; skip it *)
      if tok st <> Token.PUNCT ";" then ignore (parse_type st);
      expect_punct st ";";
      st.typenames <- name :: st.typenames;
      Ast.TPardata { Ast.pd_name = name; pd_params = params }
  | _ ->
      let ret = parse_type st in
      let name = ident st in
      let params = parse_params st in
      if tok st = Token.PUNCT ";" then begin
        advance st;
        Ast.TFunc { Ast.f_ret = ret; f_name = name; f_params = params;
                    f_body = None }
      end
      else
        Ast.TFunc
          { Ast.f_ret = ret; f_name = name; f_params = params;
            f_body = Some (parse_block st) }

let make_state src =
  {
    toks = Array.of_list (Lexer.tokenize src);
    pos = 0;
    typenames = builtin_typenames;
  }

let parse src =
  let st = make_state src in
  let rec go acc =
    if tok st = Token.EOF then List.rev acc else go (parse_top st :: acc)
  in
  go []

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_st st in
  if tok st <> Token.EOF then error st "trailing input after expression";
  e
