(** Back-end: pretty-print an instantiated (first-order, monomorphic) Skil
    program as the message-passing C the paper's compiler would hand to the
    C back end.

    Polymorphic named types are mangled to monomorphic C names
    ([array<float>] becomes [floatarray], [struct _list<int>] becomes
    [struct _list_int], ...), the struct/typedef instances used by the
    program are emitted first, and each call of a skeleton with functional
    arguments is rewritten to a numbered instance with its lifted arguments
    in front — the paper's [array_map (above_thresh (t), A, B)] to
    [array_map_1 (t, A, B)] transformation.  The skeleton instance bodies
    themselves live in the runtime library, as in the paper. *)

val program : Ast.program -> string

val standalone : Ast.program -> entry:string -> args:int list -> string
(** A {e complete} single-processor C program for the same instantiated
    input: the translated Skil functions of {!program}, plus a sequential
    (p = 1) implementation of every skeleton and builtin the program uses,
    generated bodies for the numbered skeleton instances (lifted arguments
    become leading parameters), and a [main] driver calling [entry] on the
    integer [args].  Skil [int] widens to a 64-bit C integer and [float]
    to [double], array literals become compound literals, and the driver
    frames output as ["[proc 0] ..."] — so the compiled binary's stdout
    byte-matches [skilc run-par --width 1 --height 1] for every
    deterministic program the mode accepts.  Raises [Invalid_argument] for
    programs it cannot close: a function named [main], [new ()], arrays of
    more than one element type, or non-scalar array elements. *)

val mangle_type : Ast.typ -> string
(** C rendering of a monomorphic type. *)

val runtime_header : string
(** The [skil_runtime.h] every emitted program includes: the Parix-backed
    skeleton interface of section 3 (as the paper puts it, the skeletons
    "contain the parallel code, e.g. based on message-passing" and are
    linked in precompiled form). *)
