(** Execute Skil programs on the simulated distributed machine.

    Every processor runs the same program (SPMD), and the skeleton
    builtins of section 3 execute as collectives on the machine — this is
    the full pipeline of the paper: Skil source in, parallel behaviour and
    simulated runtimes out. *)

type outcome = { value : Value.t; printed : string }

type engine = [ `Ast | `Compiled | `Native ]
(** [`Ast] walks the typed tree with the reference interpreter;
    [`Compiled] (the default) first translates every function body into
    OCaml closures ({!Compile}).  The two engines produce bit-identical
    printed output, return values, simulated makespans, Stats and traces;
    the compiled one is just faster in wall-clock terms.

    [`Native] reuses the compiled engine's closures (and unboxed
    partitions) but executes the ranks with real parallelism on OCaml
    domains ({!Machine.run_native}): no simulated clock, wall-clock [time],
    message counts in [stats], empty trace.  Values and printed output
    match the simulator for every deterministic-order program (the whole
    [examples/skil] corpus); only [recv_any] winners may differ, as on a
    real machine.  Incompatible with [faults]/[reliable]/[trace]/
    [sim_domains > 1] — [run] raises [Invalid_argument]. *)

type optimize = [ `None | `Fuse ]
(** [`None] (the default) leaves the instantiated program untouched —
    output, makespans, Stats and traces stay byte-identical to a build
    without the optimizer.  [`Fuse] runs {!Optimize.program} after
    instantiation: value-identical results (same printed output, same
    return value) with strictly fewer charged element-ops and a smaller
    makespan wherever a rewrite fires.  Requires [instantiate = true];
    {!run} raises [Invalid_argument] otherwise. *)

type prepared
(** A program carried through the whole translation pipeline — typecheck,
    instantiation, optimization ([`Fuse]), closure compilation — but not
    yet bound to a topology or machine options.  Compilation is
    topology-independent, so one handle serves any number of runs: the
    service layer's compiled-program cache stores these ("compile once,
    run many").  Immutable after construction and safe to share across
    domains. *)

val prepare :
  ?instantiate:bool ->
  ?engine:engine ->
  ?specialize:bool ->
  ?optimize:optimize ->
  Ast.program ->
  entry:string ->
  prepared
(** Translate [program] for [engine] (default [`Compiled]) down to a
    reusable handle.  Raises the usual frontend exceptions
    ({!Typecheck.Type_error}, {!Instantiate.Unsupported},
    [Invalid_argument]) — all translation-time failures happen here, so a
    cached handle can only fail at run time. *)

val prepare_source :
  ?instantiate:bool ->
  ?engine:engine ->
  ?specialize:bool ->
  ?optimize:optimize ->
  string ->
  entry:string ->
  prepared
(** Parse + {!prepare}; additionally raises {!Lexer.Error} /
    {!Parser.Error} with [file:line:col]-ready positions. *)

val entry_name : prepared -> string

val engine_of : prepared -> engine

val run_prepared :
  ?cost:Cost_model.t ->
  ?trace:bool ->
  ?faults:Fault.plan ->
  ?reliable:bool ->
  ?collectives:Coll_alg.mode ->
  ?sim_domains:int ->
  ?chan_cap:int ->
  ?native_domains:int ->
  ?cancel:(unit -> bool) ->
  topology:Topology.t ->
  prepared ->
  args:Value.t list ->
  outcome Machine.result
(** Execute a prepared handle on [topology].  [run p ~entry ~args ...] is
    exactly [run_prepared (prepare p ~entry) ~args ...], so a cache-hit
    run is byte-identical to a fresh compile-and-run by construction
    (pinned by a QCheck property in [test/test_service.ml]).  [cancel] is
    the cooperative cancellation hook of {!Machine.run} /
    {!Machine.run_native}; when it fires the run raises
    {!Machine.Cancelled}. *)

val run :
  ?cost:Cost_model.t ->
  ?trace:bool ->
  ?faults:Fault.plan ->
  ?reliable:bool ->
  ?collectives:Coll_alg.mode ->
  ?sim_domains:int ->
  ?chan_cap:int ->
  ?native_domains:int ->
  ?cancel:(unit -> bool) ->
  ?instantiate:bool ->
  ?engine:engine ->
  ?specialize:bool ->
  ?optimize:optimize ->
  topology:Topology.t ->
  Ast.program ->
  entry:string ->
  args:Value.t list ->
  outcome Machine.result
(** Type-check is assumed done (pass the program through {!Typecheck.check}
    first via {!run_source} or explicitly).  When [instantiate] is true
    (default), the program is first translated by instantiation, exactly as
    the Skil compiler would, and the first-order result is executed.
    [specialize] (default true, [`Compiled] only) stores int/double array
    payloads unboxed and runs monomorphic argument functions as unboxed
    closures — results are bit-identical either way (see
    {!Compile.program}).  [trace] records structured events for {!Profile}
    (default false).  [printed] collects the calling processor's print_*
    output.

    [faults] / [reliable] are handed straight to {!Machine.run}: a
    deterministic fault plan injected under the skeleton runtime, and the
    reliable transport that lets every deterministic-order program (the
    whole [examples/skil] corpus) return its fault-free values under
    message loss.  Without them, behaviour is bit-identical to a build
    without fault injection.

    [collectives] (default [Legacy]) picks the collective-algorithm mode
    (see {!Machine.run}): [Legacy] keeps the seed's binomial trees and is
    byte-identical to historical output; [Auto] selects per call from the
    cost model; [Force _] pins one algorithm.

    [sim_domains] (default 1) shards the simulated machine across OCaml
    domains — results are bit-identical for every value (see
    {!Machine.run}); only host wall-clock time changes.

    [native_domains] and [chan_cap] apply only to the [`Native] engine:
    the rank-blocking group count and the per-link ring capacity handed to
    {!Machine.run_native}. *)

val run_source :
  ?cost:Cost_model.t ->
  ?trace:bool ->
  ?faults:Fault.plan ->
  ?reliable:bool ->
  ?collectives:Coll_alg.mode ->
  ?sim_domains:int ->
  ?chan_cap:int ->
  ?native_domains:int ->
  ?cancel:(unit -> bool) ->
  ?instantiate:bool ->
  ?engine:engine ->
  ?specialize:bool ->
  ?optimize:optimize ->
  topology:Topology.t ->
  string ->
  entry:string ->
  args:Value.t list ->
  outcome Machine.result
(** Parse + type-check + {!run}.  Frontend failures surface as
    {!Lexer.Error} / {!Parser.Error} / {!Typecheck.Type_error} /
    {!Instantiate.Unsupported}, each carrying the [line]/[col] of the
    offending token — {!Errclass.of_exn} (lib/service) renders them as
    [file:line:col: kind: message], the exact diagnostics `skilc` prints,
    so service error replies carry positions verbatim. *)
