(** Reference tree-walking evaluator for Skil (paper section 2.3 semantics).

    This is the {e specification} engine: it walks the typed AST directly,
    supporting the full language incl. higher-order functions, currying,
    partial application and operator sections — so it can execute both
    source programs and the first-order output of the instantiation pass.
    The production engine ({!Compile}) translates each function body once
    into OCaml closures and must agree with this interpreter bit-for-bit —
    on printed output, return values, and simulated clocks.  To make that
    tractable the two engines share one {!state}, one charging hook
    ({!flush_scalar}) and one builtin/skeleton dispatcher ({!builtin});
    only expression/statement traversal differs.

    Sequential-work accounting: every expression node evaluated bumps
    [pending_ops]; {!flush_scalar} converts the pending count into simulated
    Scalar seconds before each statement and before any skeleton call.

    The skeleton builtins of paper section 3 need a simulated machine
    context; they are available when the state is created with [`Par ctx]
    (see {!Spmd}) and raise {!Value.Skil_runtime_error} in sequential
    mode. *)

type state = {
  funcs : (string, Ast.func) Hashtbl.t;  (** user functions with bodies *)
  tyenv : Typecheck.env;
  backend : [ `Seq | `Par of Machine.ctx ];
  buf : Buffer.t;  (** accumulated print_* output of this processor *)
  mutable pending_ops : int;
      (** expression nodes since the last {!flush_scalar} *)
}

exception Return_exc of Value.t
exception Break_exc
exception Continue_exc

val make :
  ?backend:[ `Seq | `Par of Machine.ctx ] ->
  tyenv:Typecheck.env ->
  Ast.program ->
  state

val call : state -> string -> Value.t list -> Value.t
(** Invoke a program function (or builtin) by name.  Partial application
    returns a function value. *)

val apply : state -> Value.t -> Value.t list -> Value.t
(** Apply a function value (used by skeleton callbacks), C-curry style:
    missing arguments yield a closure, surplus arguments re-apply the
    result. *)

val output : state -> string
(** Everything printed through the print_* builtins so far. *)

val default_value : state -> Ast.typ -> Value.t
(** The C zero value of a type (what uninitialized locals start as). *)

(** {1 Shared engine glue}

    Used by {!Compile}; keeping a single implementation of charging,
    builtins and operators is what makes the engines' simulated clocks and
    Stats bit-identical. *)

val flush_scalar : state -> unit
(** Charge [pending_ops] expression nodes as Scalar work on the simulated
    machine (no-op cost-wise under [`Seq]) and reset the counter. *)

val ctx_of : state -> Machine.ctx
(** The simulated machine context of a [`Par] state.
    @raise Value.Skil_runtime_error under [`Seq]. *)

val distr_of : int -> Darray.distr
(** Decode a [DISTR_*] constant into a distribution scheme. *)

(** Payload-kind dispatchers over {!Value.darray}: one generic fallback
    shared by both engines for local array access (the compiled engine's
    specialised call sites use them to skip the string-keyed [builtin]
    dispatch).  Boxing/unboxing at the boundary keeps behaviour identical
    whatever the payload representation. *)

val get_elem_array : Machine.ctx -> Value.darray -> Index.t -> Value.t
val put_elem_array : Machine.ctx -> Value.darray -> Index.t -> Value.t -> unit
val part_bounds_array : Machine.ctx -> Value.darray -> Index.bounds

val builtin :
  state ->
  apply:(Value.t -> Value.t list -> Value.t) ->
  string ->
  Value.t list ->
  Value.t
(** Dispatch a builtin or skeleton call.  [apply] invokes functional
    arguments (the customizing functions of section 3 skeletons) and is
    supplied by the calling engine.  Flushes pending scalar work before any
    [array_*] collective. *)

val constant : state -> string -> Value.t option
(** Predefined constants: [procId], [nProcs], [int_max], [NULL], the
    [DISTR_*] codes.  Resolved before user functions and builtins. *)

val is_constant : string -> bool
(** Whether {!constant} would answer for this name (engine-independent). *)

val binop : string -> Value.t -> Value.t -> Value.t
(** Binary operator by name (no short-circuit forms). *)

val arith : string -> Value.t -> Value.t -> Value.t

val compare_values : Value.t -> Value.t -> int
(** Ordering on scalars.  @raise Value.Skil_runtime_error on pointers,
    which admit only equality. *)

val equal_values : Value.t -> Value.t -> bool
(** Structural equality on scalars, physical equality on pointers. *)

val bounds_field : Index.bounds -> string -> Value.t

val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at k xs] splits off the first [k] elements in one pass. *)
