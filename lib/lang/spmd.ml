type outcome = { value : Value.t; printed : string }
type engine = [ `Ast | `Compiled | `Native ]
type optimize = [ `None | `Fuse ]

let run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
    ?chan_cap ?native_domains ?(instantiate = true)
    ?(engine = `Compiled) ?(specialize = true) ?(optimize = `None) ~topology
    program ~entry ~args =
  let tyenv = Typecheck.check program in
  let program, tyenv =
    if instantiate then begin
      let inst = Instantiate.program tyenv program ~entries:[ entry ] in
      (inst, Typecheck.check inst)
    end
    else (program, tyenv)
  in
  let program, tyenv =
    match optimize with
    | `None -> (program, tyenv)
    | `Fuse ->
        if not instantiate then
          invalid_arg
            "Spmd.run: --optimize fuse requires the instantiation pass \
             (the optimizer relies on first-order skeleton call sites)";
        (* re-check so the synthesized fused functions and hoisted
           declarations carry inst/struct annotations for the engines *)
        let opt = Optimize.program ~env:tyenv program in
        (opt, Typecheck.check opt)
  in
  match engine with
  | `Ast ->
      Machine.run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
        ~topology (fun ctx ->
          let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
          let value = Interp.call st entry args in
          { value; printed = Interp.output st })
  | `Compiled ->
      (* translate once; the closure code is shared by all processors,
         per-processor state is handed in at call time *)
      let compiled = Compile.program ~tyenv ~specialize program in
      Machine.run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
        ~topology (fun ctx ->
          let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
          let value = Compile.call compiled st entry args in
          { value; printed = Interp.output st })
  | `Native ->
      (* the compiled engine's closures, executed with real parallelism on
         the Native backend — simulator-only options make no sense here *)
      if faults <> None then
        invalid_arg "Spmd.run: the native engine cannot inject faults";
      if reliable = Some true then
        invalid_arg
          "Spmd.run: the native engine has no Reliable transport (delivery \
           is shared memory)";
      if trace = Some true then
        invalid_arg "Spmd.run: the native engine records no trace";
      (match sim_domains with
      | Some d when d > 1 ->
          invalid_arg
            "Spmd.run: --sim-domains shards the simulator; use \
             native_domains with the native engine"
      | _ -> ());
      let compiled = Compile.program ~tyenv ~specialize program in
      Machine.run_native ?cost ?collectives ?chan_cap
        ?domains:native_domains ~topology (fun ctx ->
          let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
          let value = Compile.call compiled st entry args in
          { value; printed = Interp.output st })

let run_source ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
    ?chan_cap ?native_domains ?instantiate ?engine ?specialize ?optimize
    ~topology source ~entry ~args =
  run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains ?chan_cap
    ?native_domains ?instantiate ?engine ?specialize ?optimize ~topology
    (Parser.parse source) ~entry ~args
