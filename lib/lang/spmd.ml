type outcome = { value : Value.t; printed : string }
type engine = [ `Ast | `Compiled | `Native ]
type optimize = [ `None | `Fuse ]

(* A program carried through the whole translation pipeline — typecheck,
   instantiation, optimization, closure compilation — but not yet bound to
   a topology or machine options.  [Compile.program] is topology-independent
   (per-processor state is handed in at call time), so one handle serves
   any number of runs on any number of machines: this is what the service
   layer's compiled-program cache stores.  Everything inside is immutable
   after construction and safe to share across domains (compilation is
   eager — no lazy cells to force concurrently). *)
type prepared = {
  pprogram : Ast.program; (* post-instantiation/optimization *)
  ptyenv : Typecheck.env;
  pentry : string;
  pengine : engine;
  pcompiled : Compile.t option; (* Some iff pengine <> `Ast *)
}

let prepare ?(instantiate = true) ?(engine = `Compiled) ?(specialize = true)
    ?(optimize = `None) program ~entry =
  let tyenv = Typecheck.check program in
  let program, tyenv =
    if instantiate then begin
      let inst = Instantiate.program tyenv program ~entries:[ entry ] in
      (inst, Typecheck.check inst)
    end
    else (program, tyenv)
  in
  let program, tyenv =
    match optimize with
    | `None -> (program, tyenv)
    | `Fuse ->
        if not instantiate then
          invalid_arg
            "Spmd.prepare: --optimize fuse requires the instantiation pass \
             (the optimizer relies on first-order skeleton call sites)";
        (* re-check so the synthesized fused functions and hoisted
           declarations carry inst/struct annotations for the engines *)
        let opt = Optimize.program ~env:tyenv program in
        (opt, Typecheck.check opt)
  in
  let pcompiled =
    match engine with
    | `Ast -> None
    | `Compiled | `Native ->
        (* translate once; the closure code is shared by all processors
           (and, via the service cache, by all future runs) *)
        Some (Compile.program ~tyenv ~specialize program)
  in
  { pprogram = program; ptyenv = tyenv; pentry = entry; pengine = engine;
    pcompiled }

let prepare_source ?instantiate ?engine ?specialize ?optimize source ~entry =
  prepare ?instantiate ?engine ?specialize ?optimize (Parser.parse source)
    ~entry

let entry_name p = p.pentry
let engine_of p = p.pengine

let run_prepared ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
    ?chan_cap ?native_domains ?cancel ~topology p ~args =
  let { pprogram = program; ptyenv = tyenv; pentry = entry; _ } = p in
  let compiled () =
    match p.pcompiled with
    | Some c -> c
    | None -> assert false (* by construction: pengine <> `Ast *)
  in
  match p.pengine with
  | `Ast ->
      Machine.run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
        ?cancel ~topology (fun ctx ->
          let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
          let value = Interp.call st entry args in
          { value; printed = Interp.output st })
  | `Compiled ->
      let compiled = compiled () in
      Machine.run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
        ?cancel ~topology (fun ctx ->
          let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
          let value = Compile.call compiled st entry args in
          { value; printed = Interp.output st })
  | `Native ->
      (* the compiled engine's closures, executed with real parallelism on
         the Native backend — simulator-only options make no sense here *)
      if faults <> None then
        invalid_arg "Spmd.run: the native engine cannot inject faults";
      if reliable = Some true then
        invalid_arg
          "Spmd.run: the native engine has no Reliable transport (delivery \
           is shared memory)";
      if trace = Some true then
        invalid_arg "Spmd.run: the native engine records no trace";
      (match sim_domains with
      | Some d when d > 1 ->
          invalid_arg
            "Spmd.run: --sim-domains shards the simulator; use \
             native_domains with the native engine"
      | _ -> ());
      let compiled = compiled () in
      Machine.run_native ?cost ?collectives ?chan_cap
        ?domains:native_domains ?cancel ~topology (fun ctx ->
          let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
          let value = Compile.call compiled st entry args in
          { value; printed = Interp.output st })

let run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains ?chan_cap
    ?native_domains ?cancel ?instantiate ?engine ?specialize ?optimize
    ~topology program ~entry ~args =
  run_prepared ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
    ?chan_cap ?native_domains ?cancel ~topology
    (prepare ?instantiate ?engine ?specialize ?optimize program ~entry)
    ~args

let run_source ?cost ?trace ?faults ?reliable ?collectives ?sim_domains
    ?chan_cap ?native_domains ?cancel ?instantiate ?engine ?specialize
    ?optimize ~topology source ~entry ~args =
  run ?cost ?trace ?faults ?reliable ?collectives ?sim_domains ?chan_cap
    ?native_domains ?cancel ?instantiate ?engine ?specialize ?optimize
    ~topology (Parser.parse source) ~entry ~args
