type outcome = { value : Value.t; printed : string }

let run ?cost ?trace ?(instantiate = true) ~topology program ~entry ~args =
  let tyenv = Typecheck.check program in
  let program, tyenv =
    if instantiate then begin
      let inst = Instantiate.program tyenv program ~entries:[ entry ] in
      (inst, Typecheck.check inst)
    end
    else (program, tyenv)
  in
  Machine.run ?cost ?trace ~topology (fun ctx ->
      let st = Interp.make ~backend:(`Par ctx) ~tyenv program in
      let value = Interp.call st entry args in
      { value; printed = Interp.output st })

let run_source ?cost ?trace ?instantiate ~topology source ~entry ~args =
  run ?cost ?trace ?instantiate ~topology (Parser.parse source) ~entry ~args
