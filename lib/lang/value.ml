(* Runtime values of the Skil interpreter.  Structs have C value semantics
   (copied on assignment/parameter passing); Index literals behave as small
   value arrays; pointers are mutable cells created by new(). *)

type t =
  | VUnit
  | VInt of int
  | VFloat of float
  | VStr of string
  | VChar of char
  | VIndex of int array
  | VBounds of Index.bounds
  | VNull
  | VPtr of t ref
  | VStruct of vstruct
  | VFun of vfun
  | VDarray of darray

(* Distributed-array payloads.  After typecheck + instantiation the element
   type of every frontend pardata is statically known, so the compiled
   engine's specialised call sites store int/double elements unboxed in
   flat [int array]/[float array] partitions — the paper's "translation by
   instantiation" carried into the data plane.  [DGen] keeps boxed [t]
   elements: it is the representation for struct/pointer payloads, for
   arrays created through curried fallback paths, and for everything the
   reference interpreter creates. *)
and darray =
  | DGen of t Darray.t
  | DInt of int Darray.t
  | DFloat of float Darray.t

(* Fields live at fixed positions (declaration order of the struct_def);
   [s_names] is shared between all values of the same struct type, so the
   per-value payload is just the tag and the field cells.  The compiled
   engine resolves field names to positions at compile time; the reference
   interpreter searches [s_names]. *)
and vstruct = { s_tag : string; s_names : string array; s_vals : t ref array }

and vfun = {
  fv_target : [ `User of string | `Builtin of string | `Op of string ];
  fv_applied : t list; (* arguments supplied so far (currying) *)
}

exception Skil_runtime_error of string

let rte fmt = Printf.ksprintf (fun m -> raise (Skil_runtime_error m)) fmt

(* C value semantics: copy structs (recursively) and Index arrays. *)
let rec copy = function
  | VStruct s ->
      VStruct
        { s with s_vals = Array.map (fun r -> ref (copy !r)) s.s_vals }
  | VIndex a -> VIndex (Array.copy a)
  | ( VUnit | VInt _ | VFloat _ | VStr _ | VChar _ | VBounds _ | VNull
    | VPtr _ | VFun _ | VDarray _ ) as v ->
      v

(* Wire size of a value in the paper's 1996 C representation: 4-byte ints
   and floats, 1-byte chars, structs as the sum of their fields (matching
   Gauss's elemrec = 12 bytes).  Used to charge collectives whose payload
   type is only known at run time (array_fold's accumulator). *)
let rec wire_bytes = function
  | VUnit | VNull -> 0
  | VInt _ | VFloat _ -> 4
  | VChar _ -> 1
  | VStr s -> String.length s
  | VIndex a -> 4 * Array.length a
  | VBounds b -> 8 * Array.length b.Index.lower
  | VPtr r -> wire_bytes !r
  | VStruct s ->
      Array.fold_left (fun acc r -> acc + wire_bytes !r) 0 s.s_vals
  | VFun _ | VDarray _ -> 4 (* handles; never meaningfully serialized *)

let describe = function
  | VUnit -> "void"
  | VInt n -> string_of_int n
  | VFloat f -> Printf.sprintf "%g" f
  | VStr s -> Printf.sprintf "%S" s
  | VChar c -> Printf.sprintf "%C" c
  | VIndex a ->
      "{"
      ^ String.concat "," (Array.to_list (Array.map string_of_int a))
      ^ "}"
  | VBounds b -> Format.asprintf "%a" Index.pp_bounds b
  | VNull -> "NULL"
  | VPtr _ -> "<pointer>"
  | VStruct s -> "<" ^ s.s_tag ^ ">"
  | VFun f ->
      let name =
        match f.fv_target with
        | `User n | `Builtin n -> n
        | `Op op -> "(" ^ op ^ ")"
      in
      Printf.sprintf "<fun %s/%d>" name (List.length f.fv_applied)
  | VDarray _ -> "<array>"

let truthy = function
  | VInt 0 | VNull -> false
  | VInt _ | VPtr _ -> true
  | VFloat f -> f <> 0.0
  | VChar c -> c <> '\000'
  | v -> rte "condition is not a scalar (%s)" (describe v)

let as_int = function
  | VInt n -> n
  | VChar c -> Char.code c
  | v -> rte "expected an int, got %s" (describe v)

let as_float = function
  | VFloat f -> f
  | v -> rte "expected a float, got %s" (describe v)

let as_index = function
  | VIndex a -> a
  | v -> rte "expected an Index, got %s" (describe v)

let as_darray = function
  | VDarray a -> a
  | v -> rte "expected a distributed array, got %s" (describe v)

let as_fun = function
  | VFun f -> f
  | v -> rte "expected a function, got %s" (describe v)

(* Position of [name] in a struct's field vector, or -1. *)
let field_index s name =
  let n = Array.length s.s_names in
  let rec go i =
    if i >= n then -1
    else if String.equal s.s_names.(i) name then i
    else go (i + 1)
  in
  go 0

let struct_field s name =
  let i = field_index s name in
  if i < 0 then rte "structure %s has no field %s" s.s_tag name
  else s.s_vals.(i)
