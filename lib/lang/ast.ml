(* Abstract syntax of Skil: a C subset with type variables, higher-order
   function parameters, partial application, operator sections and pardata
   declarations (paper section 2). *)

type typ =
  | TInt
  | TFloat
  | TChar
  | TVoid
  | TString
  | TVar of string  (* $t: rigid in definitions, instantiated at calls *)
  | TNamed of string * typ list  (* typedef / struct / pardata applications *)
  | TPtr of typ
  | TFun of typ list * typ  (* function-typed parameters *)
  | TIndex  (* the builtin Index / classical int array type *)
  | TBounds  (* result of array_part_bounds *)
  | TMeta of meta ref  (* unification variables (typechecker-internal) *)

and meta = Unbound of int | Link of typ

type expr = {
  mutable desc : desc;  (* mutable so the optimizer can rewrite in place *)
  line : int;
  col : int;  (* position of the node's first token; 0 when synthesized *)
  mutable inst : (string * typ) list;
}
(* [inst] is filled by the typechecker on Call/Var nodes that reference a
   polymorphic function: the types its $-variables were instantiated with.
   The instantiation pass consumes it. *)

and desc =
  | Int of int
  | Float of float
  | Str of string
  | Chr of char
  | Var of string
  | OpSection of string
  | Call of expr * expr list
  | Binop of string * expr * expr
  | Unop of string * expr
  | Assign of expr * expr
  | Idx of expr * expr
  | Field of expr * string
  | Arrow of expr * string
  | Deref of expr
  | ArrayLit of expr list
  | Cond of expr * expr * expr
  | New of expr

type stmt =
  | SExpr of expr
  | SDecl of typ * string * expr option
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SFor of stmt option * expr option * expr option * stmt list
  | SReturn of expr option
  | SBreak
  | SContinue
  | SBlock of stmt list

type param = { p_type : typ; p_name : string }

type func = {
  f_ret : typ;
  f_name : string;
  f_params : param list;
  f_body : stmt list option; (* None for prototypes *)
}

type struct_def = {
  s_name : string;
  s_params : string list;
  s_fields : (typ * string) list;
}

type typedef = { td_name : string; td_params : string list; td_type : typ }
type pardata_def = { pd_name : string; pd_params : string list }

type top =
  | TFunc of func
  | TStruct of struct_def
  | TTypedef of typedef
  | TPardata of pardata_def

type program = top list

let mk ?(line = 0) ?(col = 0) desc = { desc; line; col; inst = [] }

let rec type_to_string = function
  | TInt -> "int"
  | TFloat -> "float"
  | TChar -> "char"
  | TVoid -> "void"
  | TString -> "string"
  | TVar v -> "$" ^ v
  | TNamed (n, []) -> n
  | TNamed (n, args) ->
      n ^ "<" ^ String.concat "," (List.map type_to_string args) ^ ">"
  | TPtr t -> type_to_string t ^ " *"
  | TFun (args, ret) ->
      type_to_string ret ^ " (" ^ String.concat ", "
        (List.map type_to_string args) ^ ")"
  | TIndex -> "Index"
  | TBounds -> "Bounds"
  | TMeta { contents = Link t } -> type_to_string t
  | TMeta { contents = Unbound n } -> Printf.sprintf "'_%d" n

(* Structural fold over the types inside a statement list (used by the
   instantiation pass to rewrite declarations). *)
let rec map_stmt_types f = function
  | SExpr e -> SExpr e
  | SDecl (t, n, e) -> SDecl (f t, n, e)
  | SIf (c, a, b) ->
      SIf (c, List.map (map_stmt_types f) a, List.map (map_stmt_types f) b)
  | SWhile (c, b) -> SWhile (c, List.map (map_stmt_types f) b)
  | SFor (i, c, s, b) ->
      SFor
        ( Option.map (map_stmt_types f) i,
          c,
          s,
          List.map (map_stmt_types f) b )
  | SReturn e -> SReturn e
  | SBreak -> SBreak
  | SContinue -> SContinue
  | SBlock b -> SBlock (List.map (map_stmt_types f) b)
