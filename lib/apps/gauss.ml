type pivoting = No_pivot_search | Partial

exception Singular

type elemrec = { value : float; row : int; col : int }

let elemrec_bytes = 12 (* 4-byte float + two 4-byte ints, as in 1996 *)

(* The paper's switch_rows argument function for array_permute_rows. *)
let switch_rows i j r = if r = i then j else if r = j then i else r

let run ?(pivoting = No_pivot_search) ctx ~n ~matrix =
  let p = Machine.nprocs ctx in
  if n < p then invalid_arg "Gauss.run: needs n >= number of processors";
  let m = n + 1 in
  let create init =
    Skeletons.create ctx ~cost:Calibration.fold_conv_op ~gsize:[| n; m |]
      ~distr:Darray.Default init
  in
  let a = create matrix in
  let b = create (fun _ -> 0.0) in
  (* p x (n+1): one row per processor, so broadcasting the pivot row reduces
     to broadcasting a partition (paper section 4.2) *)
  let piv =
    Skeletons.create ctx ~cost:Calibration.fold_conv_op ~gsize:[| p; m |]
      ~distr:Darray.Default (fun _ -> 0.0)
  in
  let me = Machine.self ctx in
  for k = 0 to n - 1 do
    (match pivoting with
     | Partial ->
         (* array_fold with make_elemrec / max_abs_in_col k *)
         let zero = { value = 0.0; row = -1; col = k } in
         let make_elemrec v ix =
           if ix.(1) = k && ix.(0) >= k then { value = v; row = ix.(0); col = k }
           else zero
         in
         let max_abs_in_col e1 e2 =
           if Float.abs e2.value > Float.abs e1.value then e2 else e1
         in
         let e =
           Skeletons.fold ctx ~cost:Calibration.fold_conv_op
             ~acc_bytes:elemrec_bytes ~conv:make_elemrec max_abs_in_col a
         in
         if e.value = 0.0 then raise Singular;
         if e.row <> k then
           Skeletons.permute_rows ctx a (switch_rows e.row k) b
         else Skeletons.copy ctx a b
     | No_pivot_search -> Skeletons.copy ctx a b);
    (* copy_pivot, partially applied to the array b and the row number k:
       the owner of row k stores the normalized pivot row in its piv
       partition, everybody else keeps the old value.  The ownership test,
       the pivot element and the index boxes are all invariant across the
       map's elements, so they live outside the closure (the row-only
       Default distribution guarantees row k's owner holds every column). *)
    let copy_pivot =
      let bds = Skeletons.part_bounds ctx b in
      if bds.Index.lower.(0) <= k && k < bds.Index.upper.(0) then begin
        let pivot = Skeletons.get_elem ctx b [| k; k |] in
        let bk = [| k; 0 |] in
        fun _ ix ->
          bk.(1) <- ix.(1);
          Skeletons.get_elem ctx b bk /. pivot
      end
      else fun v _ -> v
    in
    Skeletons.map ctx ~cost:Calibration.gauss_elem_op copy_pivot piv piv;
    Skeletons.broadcast_part ctx piv [| Darray.owner a [| k; 0 |]; 0 |];
    (* eliminate, partially applied to k, b and piv.  The multiplier
       b[i,k] only changes when the map's row-major iteration enters a new
       row, so it is fetched once per row, not once per element. *)
    let bik = [| 0; k |] and pvix = [| me; 0 |] in
    let mult_row = ref (-1) and mult = ref 0.0 in
    let eliminate v ix =
      if ix.(0) = k || ix.(1) < k then v
      else begin
        if ix.(0) <> !mult_row then begin
          mult_row := ix.(0);
          bik.(0) <- ix.(0);
          mult := Skeletons.get_elem ctx b bik
        end;
        pvix.(1) <- ix.(1);
        v -. (!mult *. Skeletons.get_elem ctx piv pvix)
      end
    in
    Skeletons.map ctx ~cost:Calibration.gauss_elem_op eliminate b a
  done;
  (* pivot elements were never normalized to 1: divide the result column *)
  let dix = [| 0; 0 |] in
  let normalize v ix =
    if ix.(1) = n then begin
      dix.(0) <- ix.(0);
      dix.(1) <- ix.(0);
      v /. Skeletons.get_elem ctx a dix
    end
    else v
  in
  Skeletons.map ctx ~cost:Calibration.gauss_elem_op normalize a b;
  Skeletons.destroy ctx piv;
  Skeletons.destroy ctx a;
  b

let solve ?pivoting ctx ~n ~matrix =
  let b = run ?pivoting ctx ~n ~matrix in
  let flat = Skeletons.to_flat ctx b in
  Skeletons.destroy ctx b;
  Array.init n (fun i -> flat.((i * (n + 1)) + n))

let reference_solve ~n ~matrix =
  let m = n + 1 in
  let a = Array.init (n * m) (fun off -> matrix [| off / m; off mod m |]) in
  for k = 0 to n - 1 do
    (* partial pivoting *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.((i * m) + k) > Float.abs a.((!best * m) + k) then
        best := i
    done;
    if a.((!best * m) + k) = 0.0 then raise Singular;
    if !best <> k then
      for j = 0 to m - 1 do
        let t = a.((k * m) + j) in
        a.((k * m) + j) <- a.((!best * m) + j);
        a.((!best * m) + j) <- t
      done;
    let pivot = a.((k * m) + k) in
    for i = 0 to n - 1 do
      if i <> k then begin
        let factor = a.((i * m) + k) /. pivot in
        for j = k to m - 1 do
          a.((i * m) + j) <- a.((i * m) + j) -. (factor *. a.((k * m) + j))
        done
      end
    done
  done;
  Array.init n (fun i -> a.((i * m) + n) /. a.((i * m) + i))

let residual ~n ~matrix x =
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for j = 0 to n - 1 do
      s := !s +. (matrix [| i; j |] *. x.(j))
    done;
    worst := Float.max !worst (Float.abs (!s -. matrix [| i; n |]))
  done;
  !worst
