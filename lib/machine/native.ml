(* Native execution backend: Skil ranks on real OCaml 5 domains.

   Where [Machine.run] *simulates* a distributed machine (per-processor
   clocks advanced by the cost model, fibers interleaved deterministically),
   this engine *is* one: ranks are grouped into contiguous blocks, each
   block's fibers run on whichever domain currently drives the block, and
   messages travel through shared memory at hardware speed.  There is no
   simulated clock and no cost charging on the hot path — a run reports
   wall-clock time plus the usual [Stats] message counters, and the
   simulator remains the makespan oracle.

   Transport.  Every (src, dst) pair owns a bounded single-producer/
   single-consumer ring buffer.  The producer publishes a slot with a plain
   write followed by an [Atomic.set] of the tail (release); the consumer
   acquires the tail before reading the slot, which is exactly the OCaml 5
   memory-model publication idiom — the payload's own memory is published
   by the same edge.  Only the destination block's driver (one domain at a
   time, enforced by the block status word) pops a ring, draining messages
   into per-(src, tag) FIFO buckets private to the receiving rank, so an
   exact [recv] is a Kahn-network read: deterministic whatever the domain
   interleaving.  [recv_any] is the one nondeterministic primitive: it
   takes the queued message with the smallest (wall-clock arrival, source
   rank, per-link sequence) key, mirroring the simulator's
   earliest-arrival-then-lowest-source rule but on real time.

   Scheduling.  Blocks are claimed and driven exactly like PDES shards
   ([Machine.run_sharded]): a status word (idle / ready / running /
   running+repost / done) makes wake-ups race-free, the calling domain
   always drives, and {!Pool} crew workers claim ready blocks through a
   registered work source — the native engine never spawns domains of its
   own.  A drive runs the block's fibers until they all park, delivers
   pending messages, wakes any fiber whose wait is now satisfiable, and
   releases the block.  When every block is idle at once the coordinator
   re-examines all parked waits under the queue lock; a wait no message can
   ever satisfy raises {!Stalled}, like the simulator's quiescence check.

   Full rings.  A sender finding its ring full parks (fiber-level, the
   domain keeps driving siblings) until the consumer pops; sends to a rank
   whose program body already returned are dropped, matching the
   sequential machine's messages-left-queued-unread semantics. *)

type msg = {
  tag : int;
  src : int;
  seq : int; (* per-(src, dst) link sequence, for the recv_any order *)
  arrival : float; (* wall-clock enqueue stamp *)
  payload : Obj.t;
}

(* SPSC bounded ring; [cap] is a power of two.  [head] is advanced only by
   the consumer, [tail] only by the producer. *)
type ring = {
  rcap : int;
  slots : msg option array;
  head : int Atomic.t;
  tail : int Atomic.t;
}

let ring_create cap =
  let rec pow2 k = if k >= cap then k else pow2 (2 * k) in
  let rcap = pow2 1 in
  {
    rcap;
    slots = Array.make rcap None;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let ring_try_push r m =
  let t = Atomic.get r.tail in
  if t - Atomic.get r.head >= r.rcap then false
  else begin
    r.slots.(t land (r.rcap - 1)) <- Some m;
    Atomic.set r.tail (t + 1);
    true
  end

let ring_pop r =
  let h = Atomic.get r.head in
  if h >= Atomic.get r.tail then None
  else begin
    let i = h land (r.rcap - 1) in
    let m = r.slots.(i) in
    r.slots.(i) <- None;
    Atomic.set r.head (h + 1);
    m
  end

let ring_has_space r = Atomic.get r.tail - Atomic.get r.head < r.rcap
let ring_is_empty r = Atomic.get r.head >= Atomic.get r.tail

type waitn =
  | Nexact of int * int (* recv ~src ~tag *)
  | Nany of int (* recv_any ~tag *)
  | Nspace of int (* send parked on a full ring to dest *)

type rank = {
  id : int;
  mailbox : (int * int, msg Queue.t) Hashtbl.t;
      (* (src, tag) buckets; touched only by the domain driving the block *)
  nstats : Stats.proc;
  mutable nwaiting : waitn option;
  mutable nfid : int;
  mutable nfinished : bool; (* program body returned (monotone) *)
  mutable ncoll : int; (* collective call sites reached *)
}

(* Block statuses: 0 idle, 1 ready (queued), 2 running, 3 running with a
   wake-up pending (re-drive before release), 4 done. *)
type group = {
  gid : int;
  gsched : Scheduler.t;
  members : rank array;
  gstatus : int Atomic.t;
}

type coord = {
  qmx : Mutex.t;
  qcv : Condition.t;
  readyq : int Queue.t;
  mutable ndone : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

type t = {
  ntopo : Topology.t;
  ncost : Cost_model.t;
  nranks : int;
  ranks : rank array;
  rings : ring array array; (* rings.(dst).(src) *)
  seqs : int array array; (* seqs.(src).(dst), touched only by src *)
  groups : group array;
  group_of : int array;
  coordn : coord;
  coll_mx : Mutex.t;
  coll_tbl : (int, Obj.t * int ref) Hashtbl.t;
  mutable next_tag : int; (* guarded by coll_mx *)
  space_waiters : int Atomic.t; (* senders parked on a full ring *)
  abort : bool Atomic.t;
  have_workers : bool;
  ncancel : unit -> bool;
  ncancel_on : bool; (* a cancel callback was given; keeps the fault-free
                        hot path at one dead branch per poll site *)
  nmode : Coll_alg.mode;
  nlegacy : bool;
  nnet : Coll_alg.net option;
  t0 : float;
}

type ctx = { nt : t; r : rank; g : group }

type 'r nresult = { nvalues : 'r array; wall : float; nstats : Stats.t }

exception Stalled of (int * string) list
exception Cancelled

let now () = Unix.gettimeofday ()

(* Cooperative cancellation: polled at every block drive, at every park/
   retry loop of the communication primitives, and (through
   {!poll_cancel}) at the language engines' per-statement flush.  The
   raise escapes the fiber (or the driver) into [exec_group]'s failure
   path, so the whole run winds down exactly like any program
   exception. *)
let check_cancel nt = if nt.ncancel_on && nt.ncancel () then raise Cancelled
let poll_cancel ctx = check_cancel ctx.nt

(* ------------------------------------------------------------------ *)
(* Context accessors (the Machine dispatch layer's native arms)        *)

let self ctx = ctx.r.id
let nprocs ctx = ctx.nt.nranks
let topology ctx = ctx.nt.ntopo
let cost ctx = ctx.nt.ncost
let profile ctx = ctx.nt.ncost.Cost_model.profile
let clock ctx = now () -. ctx.nt.t0
let coll_mode ctx = ctx.nt.nmode
let coll_legacy ctx = ctx.nt.nlegacy

let coll_net ctx =
  match ctx.nt.nnet with
  | Some n -> n
  | None -> invalid_arg "Machine.coll_net: Legacy collectives mode"

let record_collective ctx ~name ~bytes =
  Stats.count_collective ctx.r.nstats ~name ~bytes

let charge_skeleton_call ctx =
  ctx.r.nstats.Stats.skeleton_calls <- ctx.r.nstats.Stats.skeleton_calls + 1

(* ------------------------------------------------------------------ *)
(* Wake-up plumbing                                                    *)

let enqueue_ready nt g =
  let c = nt.coordn in
  Mutex.lock c.qmx;
  Queue.add g.gid c.readyq;
  Condition.broadcast c.qcv;
  Mutex.unlock c.qmx;
  if nt.have_workers then Pool.kick ()

(* Mark [g] as having deliverable work: queue it if idle, flag a re-drive
   if running.  Ready/done blocks need nothing. *)
let rec wake_group nt g =
  match Atomic.get g.gstatus with
  | 0 ->
      if Atomic.compare_and_set g.gstatus 0 1 then enqueue_ready nt g
      else wake_group nt g
  | 2 -> if not (Atomic.compare_and_set g.gstatus 2 3) then wake_group nt g
  | _ -> () (* 1 ready, 3 already flagged, 4 done *)

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)

let mailbox_push (r : rank) m =
  let key = (m.src, m.tag) in
  let q =
    match Hashtbl.find_opt r.mailbox key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add r.mailbox key q;
        q
  in
  Queue.add m q

(* Pop everything addressed to [r] out of its rings into the per-(src, tag)
   buckets.  Runs only on the domain currently driving [r]'s block.  Ranks
   whose body already returned still drain (discarding) so parked senders
   are freed.  Returns true when at least one message moved. *)
let drain nt (r : rank) =
  let moved = ref false in
  let row = nt.rings.(r.id) in
  for src = 0 to nt.nranks - 1 do
    let rg = row.(src) in
    if not (ring_is_empty rg) then begin
      let popped = ref false in
      let rec go () =
        match ring_pop rg with
        | Some m ->
            popped := true;
            if not r.nfinished then mailbox_push r m;
            go ()
        | None -> ()
      in
      go ();
      if !popped then begin
        moved := true;
        (* freed ring space: if any sender is parked on a full ring, let its
           block re-check (cheap check keeps the common case signal-free) *)
        if Atomic.get nt.space_waiters > 0 then
          wake_group nt nt.groups.(nt.group_of.(src))
      end
    end
  done;
  !moved

let bucket_nonempty (r : rank) key =
  match Hashtbl.find_opt r.mailbox key with
  | Some q -> not (Queue.is_empty q)
  | None -> false

let satisfiable nt (r : rank) = function
  | Nexact (src, tag) -> bucket_nonempty r (src, tag)
  | Nany tag ->
      let rec go src =
        src < nt.nranks
        && (bucket_nonempty r (src, tag) || go (src + 1))
      in
      go 0
  | Nspace dest ->
      nt.ranks.(dest).nfinished || ring_has_space nt.rings.(dest).(r.id)

let describe_wait (r : rank) =
  match r.nwaiting with
  | Some (Nexact (s, t)) ->
      Printf.sprintf "waiting on recv from p%d, tag %d (native)" s t
  | Some (Nany t) ->
      Printf.sprintf "waiting on recv from any source, tag %d (native)" t
  | Some (Nspace d) ->
      Printf.sprintf "waiting for channel space to p%d (native)" d
  | None -> "blocked (native)"

(* ------------------------------------------------------------------ *)
(* Point-to-point primitives (called from inside fibers)               *)

let comm_wait_block ctx =
  let t = now () in
  Scheduler.block ctx.g.gsched;
  ctx.r.nstats.Stats.comm_wait <-
    ctx.r.nstats.Stats.comm_wait +. (now () -. t)

let send ctx ?rendezvous:_ ~dest ~tag ~bytes v =
  let nt = ctx.nt in
  let r = ctx.r in
  if dest < 0 || dest >= nt.nranks then
    invalid_arg "Machine.send: destination out of range";
  let st = r.nstats in
  st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
  st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
  st.Stats.hop_bytes <-
    st.Stats.hop_bytes + (bytes * Topology.hops nt.ntopo r.id dest);
  let seq = nt.seqs.(r.id).(dest) in
  nt.seqs.(r.id).(dest) <- seq + 1;
  let m = { tag; src = r.id; seq; arrival = now (); payload = Obj.repr v } in
  if dest = r.id then mailbox_push r m (* self-send: we are the consumer *)
  else begin
    let dst = nt.ranks.(dest) in
    let rg = nt.rings.(dest).(r.id) in
    let cross = nt.group_of.(dest) <> ctx.g.gid in
    let rec put () =
      if dst.nfinished then () (* dropped, like the simulator's unread queue *)
      else if ring_try_push rg m then begin
        if cross then wake_group nt nt.groups.(nt.group_of.(dest))
      end
      else begin
        (* Full ring: publish the space wait, then retry once — a consumer
           pop strictly after the failed retry must see the published
           counter (atomics are SC), so the wake-up cannot be lost. *)
        r.nwaiting <- Some (Nspace dest);
        Atomic.incr nt.space_waiters;
        if ring_try_push rg m then begin
          Atomic.decr nt.space_waiters;
          r.nwaiting <- None;
          if cross then wake_group nt nt.groups.(nt.group_of.(dest))
        end
        else begin
          comm_wait_block ctx;
          Atomic.decr nt.space_waiters;
          r.nwaiting <- None;
          check_cancel nt;
          put ()
        end
      end
    in
    put ()
  end

let mailbox_take (r : rank) key =
  match Hashtbl.find_opt r.mailbox key with
  | Some q when not (Queue.is_empty q) -> Some (Queue.take q)
  | Some _ | None -> None

let recv ctx ~src ~tag =
  let nt = ctx.nt in
  let r = ctx.r in
  if src < 0 || src >= nt.nranks then
    invalid_arg "Machine.recv: source out of range";
  let key = (src, tag) in
  let rec obtain () =
    match mailbox_take r key with
    | Some m -> m
    | None ->
        ignore (drain nt r : bool);
        (match mailbox_take r key with
        | Some m -> m
        | None ->
            r.nwaiting <- Some (Nexact (src, tag));
            comm_wait_block ctx;
            check_cancel nt;
            obtain ())
  in
  let m = obtain () in
  r.nwaiting <- None;
  Obj.obj m.payload

(* Earliest (arrival, src, seq) over the heads of all [tag] buckets; each
   bucket is per-link FIFO so its head already carries the smallest seq. *)
let best_any nt (r : rank) ~tag =
  let best = ref None in
  for src = 0 to nt.nranks - 1 do
    match Hashtbl.find_opt r.mailbox (src, tag) with
    | Some q when not (Queue.is_empty q) ->
        let m = Queue.peek q in
        (match !best with
        | Some (b, _) when b.arrival <= m.arrival -> ()
        | _ -> best := Some (m, q))
    | Some _ | None -> ()
  done;
  !best

let recv_any ctx ~tag =
  let nt = ctx.nt in
  let r = ctx.r in
  let rec obtain () =
    ignore (drain nt r : bool);
    match best_any nt r ~tag with
    | Some (_, q) -> Queue.take q
    | None ->
        r.nwaiting <- Some (Nany tag);
        comm_wait_block ctx;
        check_cancel nt;
        obtain ()
  in
  let m = obtain () in
  r.nwaiting <- None;
  (m.src, Obj.obj m.payload)

let sendrecv ctx ~dest ~src ~tag ~bytes v =
  send ctx ~dest ~tag ~bytes v;
  recv ctx ~src ~tag

(* ------------------------------------------------------------------ *)
(* Collective call sites                                               *)

(* Same deposit-table protocol as the simulator: the first rank to reach
   call site [idx] computes the value, the other [nranks - 1] pick it up.
   [f] is rank-independent and communication-free by the collective
   contract, so running it under the lock is safe. *)
let collective ctx f =
  let nt = ctx.nt in
  let idx = ctx.r.ncoll in
  ctx.r.ncoll <- idx + 1;
  if nt.nranks = 1 then f ()
  else begin
    Mutex.lock nt.coll_mx;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock nt.coll_mx)
      (fun () ->
        match Hashtbl.find_opt nt.coll_tbl idx with
        | Some (v, remaining) ->
            decr remaining;
            if !remaining = 0 then Hashtbl.remove nt.coll_tbl idx;
            Obj.obj v
        | None ->
            let v = f () in
            Hashtbl.add nt.coll_tbl idx (Obj.repr v, ref (nt.nranks - 1));
            v)
  end

let tags ctx n =
  collective ctx (fun () ->
      let t = ctx.nt.next_tag in
      ctx.nt.next_tag <- ctx.nt.next_tag + n;
      t)

(* ------------------------------------------------------------------ *)
(* Block driver                                                        *)

(* Deliver pending messages to [g]'s members and wake every fiber whose
   wait is now satisfiable.  Returns true when at least one fiber woke. *)
let try_unblock nt g =
  let progress = ref false in
  Array.iter
    (fun (r : rank) ->
      ignore (drain nt r : bool);
      if not r.nfinished then
        match r.nwaiting with
        | Some w when satisfiable nt r w ->
            r.nwaiting <- None;
            Scheduler.wake g.gsched r.nfid;
            progress := true
        | Some _ | None -> ())
    g.members;
  !progress

(* Run one claimed block (status 2) until its fibers all park with nothing
   deliverable, or all finish.  The release CAS 2 -> 0 fails exactly when a
   wake-up arrived mid-drive (status 3): re-drive instead of releasing, so
   that wake-up is never lost. *)
let rec drive_group nt gid =
  let g = nt.groups.(gid) in
  let c = nt.coordn in
  check_cancel nt;
  Scheduler.run_until_idle g.gsched;
  if Atomic.get nt.abort then begin
    Atomic.set g.gstatus 0;
    Mutex.lock c.qmx;
    Condition.broadcast c.qcv;
    Mutex.unlock c.qmx
  end
  else if Scheduler.all_finished g.gsched then begin
    Atomic.set g.gstatus 4;
    Mutex.lock c.qmx;
    c.ndone <- c.ndone + 1;
    Condition.broadcast c.qcv;
    Mutex.unlock c.qmx
  end
  else if try_unblock nt g then drive_group nt gid
  else if Atomic.compare_and_set g.gstatus 2 0 then begin
    (* idle: tell the coordinator so it can run the stall check *)
    Mutex.lock c.qmx;
    Condition.broadcast c.qcv;
    Mutex.unlock c.qmx
  end
  else begin
    Atomic.set g.gstatus 2; (* was 3: a wake-up raced in *)
    drive_group nt gid
  end

let exec_group nt gid =
  try drive_group nt gid
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    let c = nt.coordn in
    Atomic.set nt.abort true;
    Atomic.set nt.groups.(gid).gstatus 4;
    Mutex.lock c.qmx;
    if c.failure = None then c.failure <- Some (e, bt);
    c.ndone <- c.ndone + 1;
    Condition.broadcast c.qcv;
    Mutex.unlock c.qmx;
    if nt.have_workers then Pool.kick ()

let claim nt =
  let c = nt.coordn in
  Mutex.lock c.qmx;
  let r =
    if c.failure <> None then None
    else
      match Queue.take_opt c.readyq with
      | Some gid ->
          Atomic.set nt.groups.(gid).gstatus 2;
          Some gid
      | None -> None
  in
  Mutex.unlock c.qmx;
  r

(* All blocks idle or done, ready queue empty, called with [qmx] held — no
   fiber is running anywhere, so no message is in flight and every rank's
   buckets are quiescent (the owning block's release CAS published them).
   Re-queue any block with a satisfiable wait (a sender parked on a ring
   whose receiver has since finished is the realistic case); if none
   exists the program is stalled for good. *)
let resolve_idle nt =
  let c = nt.coordn in
  let requeued = ref false in
  Array.iter
    (fun g ->
      if Atomic.get g.gstatus = 0 then begin
        let wants =
          Array.exists
            (fun (r : rank) ->
              (not r.nfinished)
              &&
              match r.nwaiting with
              | Some w -> satisfiable nt r w
              | None -> false)
            g.members
        in
        if wants && Atomic.compare_and_set g.gstatus 0 1 then begin
          Queue.add g.gid c.readyq;
          requeued := true
        end
      end)
    nt.groups;
  if !requeued then begin
    Condition.broadcast c.qcv;
    if nt.have_workers then Pool.kick ()
  end
  else begin
    let blocked =
      Array.to_list nt.ranks
      |> List.filter_map (fun (r : rank) ->
             if r.nfinished then None else Some (r.id, describe_wait r))
    in
    c.failure <- Some (Stalled blocked, Printexc.get_callstack 0);
    Atomic.set nt.abort true;
    Condition.broadcast c.qcv;
    if nt.have_workers then Pool.kick ()
  end

(* [qmx] held.  True quiescence: nothing queued, nothing running. *)
let maybe_resolve nt =
  let c = nt.coordn in
  if
    Queue.is_empty c.readyq
    && c.ndone < Array.length nt.groups
    && c.failure = None
    && Array.for_all
         (fun g ->
           let s = Atomic.get g.gstatus in
           s = 0 || s = 4)
         nt.groups
  then resolve_idle nt

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)

let run ?(cost = Cost_model.default) ?(collectives = Coll_alg.Legacy)
    ?(chan_cap = 256) ?domains ?cancel ~topology f =
  let n = Topology.nprocs topology in
  if chan_cap < 1 then invalid_arg "Native.run: chan_cap must be >= 1";
  let ngroups =
    match domains with
    | None -> n
    | Some d ->
        if d < 1 then invalid_arg "Native.run: domains must be >= 1"
        else min d n
  in
  (* Pool crew reuse (never spawn our own domains); the clamp inside
     [ensure_workers] warns once when ranks oversubscribe the host.  The
     logical block count is always honoured — blocks are short-lived work
     items, so more blocks than workers just queue, exactly like PDES
     shards. *)
  let workers = if ngroups > 1 then Pool.ensure_workers (ngroups - 1) else 0 in
  let params = cost.Cost_model.params in
  let cf = cost.Cost_model.profile.Cost_model.comm_factor in
  let ranks =
    Array.init n (fun id ->
        {
          id;
          mailbox = Hashtbl.create 16;
          nstats = Stats.fresh_proc ();
          nwaiting = None;
          nfid = 0;
          nfinished = false;
          ncoll = 0;
        })
  in
  let rings =
    Array.init n (fun _dst -> Array.init n (fun _src -> ring_create chan_cap))
  in
  let group_of = Array.make n 0 in
  let base = n / ngroups and rem = n mod ngroups in
  let lo = ref 0 in
  let groups =
    Array.init ngroups (fun gid ->
        let size = base + if gid < rem then 1 else 0 in
        let l = !lo in
        lo := l + size;
        for id = l to l + size - 1 do
          group_of.(id) <- gid
        done;
        {
          gid;
          gsched = Scheduler.create ();
          members = Array.sub ranks l size;
          gstatus = Atomic.make 1 (* ready: queued below *);
        })
  in
  let nt =
    {
      ntopo = topology;
      ncost = cost;
      nranks = n;
      ranks;
      rings;
      seqs = Array.init n (fun _ -> Array.make n 0);
      groups;
      group_of;
      coordn =
        {
          qmx = Mutex.create ();
          qcv = Condition.create ();
          readyq = Queue.create ();
          ndone = 0;
          failure = None;
        };
      coll_mx = Mutex.create ();
      coll_tbl = Hashtbl.create 16;
      next_tag = 0;
      space_waiters = Atomic.make 0;
      abort = Atomic.make false;
      have_workers = workers > 0;
      ncancel = (match cancel with Some f -> f | None -> fun () -> false);
      ncancel_on = cancel <> None;
      nmode = collectives;
      nlegacy = (collectives = Coll_alg.Legacy);
      nnet =
        (if collectives = Coll_alg.Legacy then None
         else
           Some
             (Coll_alg.net_of topology
                ~latency:(cf *. params.Cost_model.msg_latency)
                ~per_hop:(cf *. params.Cost_model.per_hop)
                ~per_byte:(cf *. params.Cost_model.per_byte)
                ~send_ovh:(cf *. params.Cost_model.send_overhead)
                ~recv_ovh:(cf *. params.Cost_model.recv_overhead)));
      t0 = now ();
    }
  in
  let values = Array.make n None in
  Array.iter
    (fun (r : rank) ->
      let g = groups.(group_of.(r.id)) in
      r.nfid <-
        Scheduler.spawn g.gsched (fun () ->
            values.(r.id) <- Some (f { nt; r; g });
            r.nfinished <- true))
    ranks;
  Array.iter
    (fun g ->
      Scheduler.set_describer g.gsched (fun fid ->
          match
            Array.find_opt (fun (r : rank) -> r.nfid = fid) g.members
          with
          | Some r -> Some (describe_wait r)
          | None -> None))
    groups;
  let c = nt.coordn in
  Array.iter (fun g -> Queue.add g.gid c.readyq) groups;
  let source =
    if workers > 0 then
      Some
        (Pool.register_source ~poll:(fun () ->
             match claim nt with
             | Some gid -> Some (fun () -> exec_group nt gid)
             | None -> None))
    else None
  in
  let rec drive () =
    match claim nt with
    | Some gid ->
        exec_group nt gid;
        drive ()
    | None ->
        Mutex.lock c.qmx;
        let done_ = c.ndone >= ngroups || c.failure <> None in
        if not done_ then begin
          maybe_resolve nt;
          let done2 = c.ndone >= ngroups || c.failure <> None in
          if (not done2) && Queue.is_empty c.readyq then
            Condition.wait c.qcv c.qmx
        end;
        Mutex.unlock c.qmx;
        if not done_ then drive ()
  in
  drive ();
  (* On abort, workers may still be inside a drive; wait for every block to
     reach a resting state before reading cross-domain results. *)
  Mutex.lock c.qmx;
  let rec settle () =
    if
      Array.exists
        (fun g ->
          let s = Atomic.get g.gstatus in
          s = 2 || s = 3)
        nt.groups
    then begin
      Condition.wait c.qcv c.qmx;
      settle ()
    end
  in
  settle ();
  Mutex.unlock c.qmx;
  (match source with Some s -> Pool.unregister_source s | None -> ());
  let wall = now () -. nt.t0 in
  (match c.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let stats =
    {
      Stats.procs = Array.map (fun (r : rank) -> r.nstats) ranks;
      makespan = wall;
    }
  in
  let nvalues =
    Array.map
      (function Some v -> v | None -> failwith "Native.run: missing result")
      values
  in
  { nvalues; wall; nstats = stats }
