(** Cooperative fiber scheduler built on OCaml 5 effect handlers.

    Each simulated processor runs as one fiber.  Fibers run uninterrupted
    until they perform {!block}, which suspends them until another fiber (or
    the spawner) calls {!wake}.  Execution is deterministic: fibers are
    resumed in FIFO order of becoming runnable. *)

type t

exception Deadlock of (int * string option) list
(** Raised by {!run} when no fiber is runnable but some are still blocked;
    carries, for each blocked fiber, its id and — when a describer was
    registered — a human-readable account of what it is waiting on (for the
    machine layer: the [(src, tag)] of the pending receive). *)

val create : unit -> t

val set_describer : t -> (int -> string option) -> unit
(** Register a callback mapping a blocked fiber id to a description of what
    it waits on.  Consulted only when building a {!Deadlock} — never on the
    block/wake hot path, so it may be arbitrarily informative. *)

val spawn : t -> (unit -> unit) -> int
(** Register a fiber; it becomes runnable immediately.  Returns its id
    (consecutive from 0).  Must be called before {!run}. *)

val block : t -> unit
(** Suspend the calling fiber.  Only valid from inside a fiber. *)

val wake : t -> int -> unit
(** Make a blocked fiber runnable.  No-op if the fiber is not blocked (it
    will observe whatever condition it checks before blocking again). *)

val current : t -> int
(** Id of the fiber currently executing.  Only valid from inside a fiber. *)

val run : t -> unit
(** Run all fibers to completion.
    @raise Deadlock if blocked fibers remain with nothing runnable.
    Exceptions escaping a fiber propagate out of [run]. *)

val run_until_idle : t -> unit
(** Run fibers until the runnable queue is empty, then return — blocked
    fibers are left suspended, not reported as a deadlock.  Used by PDES
    shards, which go idle while waiting on other shards' messages and are
    re-run after a cross-shard wake; exceptions escaping a fiber propagate.
    Suspended continuations may be resumed from a different domain than the
    one that captured them (one shard, one domain at a time). *)

val all_finished : t -> bool
(** All spawned fibers have run to completion. *)
