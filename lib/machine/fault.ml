(* Deterministic fault plans for the simulated machine.

   Every probabilistic decision is a pure function of
   (seed, src, dst, tag, seq, attempt, category-salt): the plan carries no
   generator state, so any consumer may ask about any message in any order
   and always receive the same answer.  That is what makes fault runs
   exactly replayable and lets the reliable transport "look ahead" at the
   fate of future retransmission attempts without perturbing other draws. *)

type link_faults = {
  drop : float;
  dup : float;
  corrupt : float;
  delay : float;
  delay_factor : float;
}

type stall = { stall_at : float; stall_for : float }

type plan = {
  seed : int;
  link : link_faults;
  stalls : (int * stall) list;
  crashes : (int * float) list;
  reboot : float;
  checkpoint : bool;
}

type decision = {
  d_drop : bool;
  d_dup : bool;
  d_corrupt : bool;
  d_delay_factor : float;
}

let no_link_faults =
  { drop = 0.0; dup = 0.0; corrupt = 0.0; delay = 0.0; delay_factor = 1.0 }

let clean =
  { d_drop = false; d_dup = false; d_corrupt = false; d_delay_factor = 1.0 }

let none ~seed =
  {
    seed;
    link = no_link_faults;
    stalls = [];
    crashes = [];
    reboot = 4e-3;
    checkpoint = false;
  }

(* --- splittable counter-based PRNG ------------------------------------- *)

(* splitmix64 finalizer: a strong 64-bit mixing function.  We fold the key
   components into a state with the golden-ratio increment (as splitmix64's
   own stream step does) and finalize once per component, which decorrelates
   keys differing in a single field. *)

let golden = 0x9E3779B97F4A7C15L

let mix64 (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_key ~seed ~key =
  let st = ref (mix64 (Int64.add (Int64.of_int seed) golden)) in
  Array.iter
    (fun k ->
      st := Int64.add !st golden;
      st := mix64 (Int64.logxor !st (Int64.of_int k)))
    key;
  !st

(* top 53 bits -> uniform float in [0, 1) *)
let uniform ~seed ~key =
  let h = hash_key ~seed ~key in
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* category salts keep the four draws for one message independent *)
let salt_drop = 0x01
let salt_dup = 0x02
let salt_corrupt = 0x03
let salt_delay = 0x04

let draw plan ~salt ~src ~dst ~tag ~seq ~attempt =
  uniform ~seed:plan.seed ~key:[| salt; src; dst; tag; seq; attempt |]

let decision plan ~src ~dst ~tag ~seq ~attempt =
  let l = plan.link in
  let d_drop =
    l.drop > 0.0 && draw plan ~salt:salt_drop ~src ~dst ~tag ~seq ~attempt < l.drop
  in
  let d_dup =
    (not d_drop) && l.dup > 0.0
    && draw plan ~salt:salt_dup ~src ~dst ~tag ~seq ~attempt < l.dup
  in
  let d_corrupt =
    (not d_drop) && l.corrupt > 0.0
    && draw plan ~salt:salt_corrupt ~src ~dst ~tag ~seq ~attempt < l.corrupt
  in
  let d_delay_factor =
    if
      l.delay > 0.0
      && draw plan ~salt:salt_delay ~src ~dst ~tag ~seq ~attempt < l.delay
    then l.delay_factor
    else 1.0
  in
  { d_drop; d_dup; d_corrupt; d_delay_factor }

(* --- spec parsing ------------------------------------------------------- *)

let parse_float what s =
  match float_of_string_opt s with
  | Some f when f >= 0.0 -> Ok f
  | _ -> Error (Printf.sprintf "invalid %s %S (want a non-negative number)" what s)

let parse_prob what s =
  match parse_float what s with
  | Ok f when f <= 1.0 -> Ok f
  | Ok _ -> Error (Printf.sprintf "invalid %s %S (want a probability in [0,1])" what s)
  | Error _ as e -> e

let parse_int what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "invalid %s %S (want a non-negative integer)" what s)

(* "P@T" -> (proc, time); "P@T+D" -> (proc, time, dur) via k *)
let parse_at what s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "invalid %s %S (want PROC@TIME...)" what s)
  | Some i ->
      let p = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      Result.bind (parse_int (what ^ " processor") p) (fun proc ->
          Ok (proc, rest))

let ( let* ) = Result.bind

let parse ?(seed = 1) spec =
  let fields =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] ->
        (* checkpoint defaults on exactly when crashes are scheduled, unless
           the spec said otherwise *)
        let acc =
          match acc with
          | p, None -> { p with checkpoint = p.crashes <> [] }
          | p, Some ck -> { p with checkpoint = ck }
        in
        Ok { acc with stalls = List.rev acc.stalls; crashes = List.rev acc.crashes }
    | field :: rest -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "invalid fault field %S (want key=value)" field)
        | Some i ->
            let key = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            let plan, ck = acc in
            let* acc =
              match key with
              | "drop" ->
                  let* f = parse_prob "drop" v in
                  Ok ({ plan with link = { plan.link with drop = f } }, ck)
              | "dup" ->
                  let* f = parse_prob "dup" v in
                  Ok ({ plan with link = { plan.link with dup = f } }, ck)
              | "corrupt" ->
                  let* f = parse_prob "corrupt" v in
                  Ok ({ plan with link = { plan.link with corrupt = f } }, ck)
              | "delay" -> (
                  match String.index_opt v 'x' with
                  | None ->
                      let* f = parse_prob "delay" v in
                      Ok ({ plan with link = { plan.link with delay = f } }, ck)
                  | Some j ->
                      let p = String.sub v 0 j in
                      let fac = String.sub v (j + 1) (String.length v - j - 1) in
                      let* p = parse_prob "delay probability" p in
                      let* fac = parse_float "delay factor" fac in
                      Ok
                        ( {
                            plan with
                            link =
                              { plan.link with delay = p; delay_factor = fac };
                          },
                          ck ))
              | "stall" ->
                  let* proc, rest = parse_at "stall" v in
                  let* at, dur =
                    match String.index_opt rest '+' with
                    | None ->
                        Error
                          (Printf.sprintf
                             "invalid stall %S (want PROC@TIME+DURATION)" v)
                    | Some j ->
                        let t = String.sub rest 0 j in
                        let d =
                          String.sub rest (j + 1) (String.length rest - j - 1)
                        in
                        let* t = parse_float "stall time" t in
                        let* d = parse_float "stall duration" d in
                        Ok (t, d)
                  in
                  Ok
                    ( {
                        plan with
                        stalls =
                          (proc, { stall_at = at; stall_for = dur })
                          :: plan.stalls;
                      },
                      ck )
              | "crash" ->
                  let* proc, rest = parse_at "crash" v in
                  let* t = parse_float "crash time" rest in
                  Ok ({ plan with crashes = (proc, t) :: plan.crashes }, ck)
              | "reboot" ->
                  let* f = parse_float "reboot" v in
                  Ok ({ plan with reboot = f }, ck)
              | "seed" ->
                  let* n = parse_int "seed" v in
                  Ok ({ plan with seed = n }, ck)
              | "ckpt" | "checkpoint" -> (
                  match v with
                  | "on" | "true" | "1" -> Ok (plan, Some true)
                  | "off" | "false" | "0" -> Ok (plan, Some false)
                  | _ ->
                      Error
                        (Printf.sprintf "invalid ckpt %S (want on|off)" v))
              | _ -> Error (Printf.sprintf "unknown fault field %S" key)
            in
            go acc rest)
  in
  go (none ~seed, None) fields

let describe p =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_string b ", ";
      Buffer.add_string b s) fmt
  in
  let l = p.link in
  if l.drop > 0.0 then add "drop=%g" l.drop;
  if l.dup > 0.0 then add "dup=%g" l.dup;
  if l.corrupt > 0.0 then add "corrupt=%g" l.corrupt;
  if l.delay > 0.0 then add "delay=%gx%g" l.delay l.delay_factor;
  List.iter
    (fun (proc, s) -> add "stall=%d@%g+%g" proc s.stall_at s.stall_for)
    p.stalls;
  List.iter (fun (proc, t) -> add "crash=%d@%g" proc t) p.crashes;
  if p.crashes <> [] then add "reboot=%g" p.reboot;
  add "ckpt=%s" (if p.checkpoint then "on" else "off");
  add "seed=%d" p.seed;
  Buffer.contents b
