(** Multicore work pool: the single owner of worker domains.

    Every experiment in the reproduction pipeline is a set of *independent*
    deterministic simulations ({!Machine.run} shares no mutable state between
    calls), so they can be farmed out to OCaml 5 domains freely: the results
    are bit-identical to a sequential run, only the wall clock changes.

    The pool is a plain [Domain] + [Mutex]/[Condition] crew serving pollable
    {e work sources} — no external dependencies.  Worker domains persist and
    only grow, so the spawn cost is paid once per process.  Besides the
    {!map}/{!run} batches of the harness, a PDES-sharded {!Machine.run}
    registers a source whose items are ready simulation shards: shards
    borrow crew workers instead of spawning domains of their own, and the
    crew never exceeds [recommended_domain_count () - 1] workers, so
    [--jobs] × [--sim-domains] oversubscription is structurally impossible
    (the product is clamped to the crew, with a one-time warning, and excess
    work just queues).

    The native backend ({!Machine.run_native}) borrows the crew the same
    way.  Its [n] ranks are blocked into [g = min (domains, n)] contiguous
    groups by the shared rank-blocking rule — group sizes are
    [base = n / g] with the first [n mod g] groups one rank larger, so rank
    [i] always lives next to its neighbours — and each ready group is one
    short-lived work item.  Only the worker count is ever clamped (again
    with the one-time warning when ranks exceed the crew); the logical
    group count is honoured, excess groups simply queue, and the calling
    domain always drives, so native runs complete even on a single-core
    host. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the whole machine. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    domains (the calling domain participates, so [jobs = 1] runs plain
    sequential code on the current domain and spawns nothing).  Results are
    returned in submission order regardless of completion order.

    If one or more applications raise, the exception of the *lowest-indexed*
    failing element is re-raised (with its backtrace) after the whole batch
    has drained — the same exception a sequential [List.map] would surface
    first, so behaviour is independent of [jobs]. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks] = [map ~jobs (fun f -> f ()) thunks]. *)

val shutdown : unit -> unit
(** Join the worker domains (idempotent).  Subsequent calls to {!map} or
    {!ensure_workers} respawn them on demand; mainly for tests and clean
    process exit. *)

(** {1 Work sources} — how PDES shards (and [map] batches) borrow workers *)

type source

val register_source : poll:(unit -> (unit -> unit) option) -> source
(** Add a work source.  [poll] is called from worker domains (and from
    domains waiting inside {!map}) without any pool lock held; it must be
    thread-safe and return [Some thunk] to hand out one unit of work, [None]
    when it currently has nothing.  Sources are polled newest-first. *)

val unregister_source : source -> unit

val kick : unit -> unit
(** Wake sleeping workers so they re-poll the sources; call after a source
    that previously returned [None] gains work. *)

val ensure_workers : int -> int
(** Grow the crew to at least [n] worker domains, clamped to
    [recommended_domain_count () - 1] (one-time warning when the clamp
    bites).  Returns the crew size actually available — 0 means the calling
    domain is alone and must drive its source itself. *)

val worker_count : unit -> int
(** Current crew size. *)

val drive : stop:(unit -> bool) -> unit
(** Serve the registered sources from the calling thread until [stop]
    returns true: poll newest-first, run claimed thunks, park on the crew's
    condition variable when idle.  The single-core fallback for long-lived
    services — when {!ensure_workers} returns 0, a plain thread calling
    [drive] plays the crew's part (concurrently under the runtime lock, not
    in parallel, which is all a one-core host can offer anyway).  After
    making [stop] return true, call {!kick} so a parked driver re-checks
    it. *)
