(** Collective operations built from point-to-point messages.

    Two code paths, dispatched on the machine's {!Coll_alg.mode}:

    - [Legacy] (the default): the seed's binomial-tree implementations, as
      in the paper's [array_fold] ("performed along the edges of a virtual
      tree topology ... broadcasted from the root along the tree edges to
      all other processors").  Runs are byte-identical to the historical
      binary.

    - [Auto] / [Force _]: a library of algorithms (pipelined broadcast,
      van de Geijn scatter+allgather, recursive doubling, chunked rings,
      Bruck allgather, pairwise exchange, dissemination barrier, binomial
      scan), one picked per call by {!Coll_alg.select} from the machine's
      topology, processor count and payload size.  Simulated time is
      charged by running the chosen message pattern with honest byte
      counts; values are combined out-of-band with one canonical
      bracketing, so every algorithm returns bit-identical values.

    Every collective must be called by all processors of the machine with
    the same [tag] and compatible arguments.  [bytes] is the simulated wire
    size of one payload. *)

val bcast : Machine.ctx -> tag:int -> root:int -> bytes:int -> 'a -> 'a
(** Broadcast of [root]'s value; every processor returns it.  The value
    argument of non-root processors is ignored. *)

val reduce :
  Machine.ctx ->
  tag:int ->
  root:int ->
  bytes:int ->
  ('a -> 'a -> 'a) ->
  'a ->
  'a
(** Reduction; only [root]'s return value is meaningful.  [f] should be
    associative and commutative (the paper makes the same demand of
    [array_fold]'s folding function). *)

val allreduce :
  Machine.ctx -> tag:int -> bytes:int -> ('a -> 'a -> 'a) -> 'a -> 'a
(** Combine every processor's value; every processor returns the result. *)

val barrier : Machine.ctx -> tag:int -> unit
(** All processors synchronize. *)

val scan :
  Machine.ctx -> tag:int -> bytes:int -> ('a -> 'a -> 'a) -> 'a -> 'a
(** Inclusive prefix combine in rank order: processor [i] returns
    [f v0 (f v1 (... vi))] (bracketed as a left fold).  Used by the
    block-cyclic redistribution extension. *)

val gather_to : Machine.ctx -> tag:int -> root:int -> bytes:int -> 'a -> 'a array option
(** Every processor contributes one value; [root] returns [Some arr] with
    [arr.(i)] from processor [i], others return [None]. *)

val allgather : Machine.ctx -> tag:int -> bytes:int -> 'a -> 'a array
(** Every processor contributes one value of wire size [bytes] and returns
    a fresh array with [arr.(i)] from processor [i]. *)

val alltoall : Machine.ctx -> tag:int -> bytes:int -> 'a array -> 'a array
(** Personalized exchange: [vs.(j)] goes to processor [j]; returns a fresh
    array whose element [i] came from processor [i]'s [vs].  [vs] must have
    one element per processor.  [bytes] is the wire size of one element. *)

val ring_shift :
  Machine.ctx -> tag:int -> bytes:int -> dest:int -> src:int -> 'a -> 'a
(** Simultaneous shift: send the value to [dest], return the one received
    from [src].  Used for Gentleman's partition rotations. *)
