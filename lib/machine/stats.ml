type proc = {
  mutable compute_time : float;
  mutable comm_wait : float;
  mutable overhead_time : float;
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable hop_bytes : int;
  mutable skeleton_calls : int;
  (* fault/reliability counters — all zero in fault-free runs, and
     [pp_summary] only mentions them when nonzero, so golden comparisons of
     fault-free output stay byte-identical *)
  mutable msgs_dropped : int;
  mutable msgs_retried : int;
  mutable acks_sent : int;
  mutable recoveries : int;
  mutable stall_time : float;
  (* collective counters — recorded only by the algorithm-selecting
     collectives (non-Legacy modes), so Legacy runs print exactly the
     historical summary line *)
  mutable coll_calls : int;
  mutable coll_bytes : int;
  mutable coll_algs : (string * int) list; (* "bcast[pipeline]" -> calls *)
}

type t = { procs : proc array; mutable makespan : float }

let fresh_proc () =
  {
    compute_time = 0.0;
    comm_wait = 0.0;
    overhead_time = 0.0;
    msgs_sent = 0;
    bytes_sent = 0;
    hop_bytes = 0;
    skeleton_calls = 0;
    msgs_dropped = 0;
    msgs_retried = 0;
    acks_sent = 0;
    recoveries = 0;
    stall_time = 0.0;
    coll_calls = 0;
    coll_bytes = 0;
    coll_algs = [];
  }

let count_collective p ~name ~bytes =
  p.coll_calls <- p.coll_calls + 1;
  p.coll_bytes <- p.coll_bytes + bytes;
  let rec bump = function
    | [] -> [ (name, 1) ]
    | (n, c) :: rest when n = name -> (n, c + 1) :: rest
    | entry :: rest -> entry :: bump rest
  in
  p.coll_algs <- bump p.coll_algs

let create n = { procs = Array.init n (fun _ -> fresh_proc ()); makespan = 0.0 }
let proc t i = t.procs.(i)

let sum_by f t = Array.fold_left (fun acc p -> acc + f p) 0 t.procs
let total_msgs t = sum_by (fun p -> p.msgs_sent) t
let total_bytes t = sum_by (fun p -> p.bytes_sent) t
let total_dropped t = sum_by (fun p -> p.msgs_dropped) t
let total_retried t = sum_by (fun p -> p.msgs_retried) t
let total_acks t = sum_by (fun p -> p.acks_sent) t
let total_recoveries t = sum_by (fun p -> p.recoveries) t

let total_stall t =
  Array.fold_left (fun acc p -> acc +. p.stall_time) 0.0 t.procs

let total_coll_calls t = sum_by (fun p -> p.coll_calls) t
let total_coll_bytes t = sum_by (fun p -> p.coll_bytes) t

(* Aggregate per-(kind, algorithm) call counts across processors, sorted by
   label so the summary line is deterministic. *)
let coll_alg_totals t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      List.iter
        (fun (name, c) ->
          Hashtbl.replace tbl name
            (c + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
        p.coll_algs)
    t.procs;
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) tbl []
  |> List.sort compare

let max_compute t =
  Array.fold_left (fun acc p -> Float.max acc p.compute_time) 0.0 t.procs

let avg_comm_wait t =
  let s = Array.fold_left (fun acc p -> acc +. p.comm_wait) 0.0 t.procs in
  s /. float_of_int (Array.length t.procs)

let pp_summary ppf t =
  Format.fprintf ppf
    "makespan %.4f s, max compute %.4f s, avg wait %.4f s, %d msgs, %d bytes"
    t.makespan (max_compute t) (avg_comm_wait t) (total_msgs t)
    (total_bytes t);
  (* fault-free runs print exactly the historical line *)
  let dropped = total_dropped t
  and retried = total_retried t
  and acks = total_acks t
  and recov = total_recoveries t
  and stall = total_stall t in
  if dropped > 0 || retried > 0 || acks > 0 || recov > 0 || stall > 0.0 then
    Format.fprintf ppf
      " | faults: %d dropped, %d retried, %d acks, %d recoveries, %.4f s stalled"
      dropped retried acks recov stall;
  (* likewise printed only when the algorithm-selecting collectives ran *)
  let coll = total_coll_calls t in
  if coll > 0 then begin
    Format.fprintf ppf " | collectives: %d calls, %d payload bytes" coll
      (total_coll_bytes t);
    match coll_alg_totals t with
    | [] -> ()
    | algs ->
        Format.fprintf ppf " (%s)"
          (String.concat ", "
             (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) algs))
  end
