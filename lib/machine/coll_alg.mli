(** Cost-model-driven selection of collective algorithms.

    A pure predictor maps (topology, p, bytes) to an estimated completion
    time per candidate algorithm, using the same latency / per-hop /
    per-byte coefficients the simulator charges; {!select} is the argmin.
    Because it is deterministic in inputs every processor shares, all ranks
    of an SPMD run pick the same algorithm without communicating. *)

type algorithm =
  | Tree  (** binomial tree — the seed's pattern *)
  | Pipeline  (** segmented ring-pipelined broadcast *)
  | Vandegeijn  (** scatter + ring allgather broadcast *)
  | Recdouble  (** recursive doubling (Bruck for allgather) *)
  | Ring  (** chunked ring pipeline *)
  | Pairwise  (** pairwise exchange all-to-all *)
  | Dissemination  (** dissemination barrier *)
  | Linear  (** the seed's linear scan/gather patterns *)

type kind =
  | Bcast
  | Reduce
  | Allreduce
  | Allgather
  | Alltoall
  | Barrier
  | Scan
  | Gather

type mode =
  | Legacy
      (** the seed's binomial-tree code paths, bit-identical output — the
          default everywhere, selected as ["tree"] on the CLI *)
  | Auto  (** pick per call from the cost model *)
  | Force of algorithm  (** force where applicable, else fall back to Auto *)

val alg_name : algorithm -> string
val kind_name : kind -> string

val mode_of_string : string -> (mode, string) result
val mode_to_string : mode -> string
val mode_names : string list

type net = {
  p : int;
  alpha : float;  (** send_overhead + recv_overhead + msg_latency *)
  ovh2 : float;  (** send_overhead + recv_overhead *)
  recv_ovh : float;
  per_hop : float;
  per_byte : float;
  hop_next : float;  (** mean hops rank -> rank+1 (ring-edge average) *)
  hop_pow2 : int array;  (** max hops rank -> rank + 2^k, k < ceil(log2 p) *)
  diam : int;
}

val net_of :
  Topology.t ->
  latency:float ->
  per_hop:float ->
  per_byte:float ->
  send_ovh:float ->
  recv_ovh:float ->
  net

val candidates : kind -> algorithm list

val pipeline_plan : net -> bytes:int -> int * int
(** [(segments, segment_bytes)] for the pipelined broadcast; shared by the
    predictor and the implementation. *)

val predict : net -> kind -> bytes:int -> algorithm -> float
(** Estimated completion time; [infinity] for a non-candidate pairing. *)

val select : net -> kind -> bytes:int -> algorithm

val force : net -> kind -> bytes:int -> algorithm -> algorithm
(** The forced algorithm when it is a candidate for [kind], else
    [select]'s choice. *)
