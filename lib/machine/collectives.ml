(* Binomial-tree collectives over virtual ranks, valid for any number of
   processors.  vrank = (rank - root + p) mod p, so the tree is rooted at
   [root].  All message matching is FIFO per (source, tag); since SPMD
   programs issue collectives in the same order everywhere, reusing a tag
   across successive collectives is safe. *)

let vrank_of ctx root rank =
  let p = Machine.nprocs ctx in
  ((rank - root) mod p + p) mod p

let rank_of ctx root vrank = (vrank + root) mod Machine.nprocs ctx

(* Trace span around a collective body: zero simulated cost, records which
   collective this processor's sends/recvs/waits belong to. *)
let spanned ctx name f = Machine.with_span ctx ~cat:Trace.Collective name f

let reduce ctx ~tag ~root ~bytes f v =
  spanned ctx "reduce" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let acc = ref v in
  let offset = ref 1 in
  let participating = ref true in
  while !participating && !offset < p do
    let span = 2 * !offset in
    if me mod span = !offset then begin
      (* tree edges are rendezvous links: the child is busy until the
         parent has the partial result *)
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me - !offset))
        ~tag ~bytes !acc;
      participating := false
    end
    else if me mod span = 0 && me + !offset < p then begin
      let w = Machine.recv ctx ~src:(rank_of ctx root (me + !offset)) ~tag in
      acc := f !acc w
    end;
    offset := 2 * !offset
  done;
  !acc

let bcast ctx ~tag ~root ~bytes v =
  spanned ctx "bcast" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let highest = ref 1 in
  while !highest < p do
    highest := 2 * !highest
  done;
  let value = ref v in
  let offset = ref (!highest / 2) in
  while !offset >= 1 do
    let span = 2 * !offset in
    if me mod span = 0 && me + !offset < p then
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me + !offset))
        ~tag ~bytes !value
    else if me mod span = !offset then
      value := Machine.recv ctx ~src:(rank_of ctx root (me - !offset)) ~tag;
    offset := !offset / 2
  done;
  !value

let allreduce ctx ~tag ~bytes f v =
  let combined = reduce ctx ~tag ~root:0 ~bytes f v in
  bcast ctx ~tag ~root:0 ~bytes combined

let barrier ctx ~tag =
  ignore (allreduce ctx ~tag ~bytes:0 (fun () () -> ()) ())

let scan ctx ~tag ~bytes f v =
  spanned ctx "scan" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  let acc =
    if me = 0 then v
    else
      let prefix = Machine.recv ctx ~src:(me - 1) ~tag in
      f prefix v
  in
  if me < p - 1 then Machine.send ctx ~dest:(me + 1) ~tag ~bytes acc;
  acc

let gather_to ctx ~tag ~root ~bytes v =
  spanned ctx "gather" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  if me = root then begin
    let out = Array.make p v in
    for src = 0 to p - 1 do
      if src <> root then out.(src) <- Machine.recv ctx ~src ~tag
    done;
    Some out
  end
  else begin
    Machine.send ctx ~dest:root ~tag ~bytes v;
    None
  end

let ring_shift ctx ~tag ~bytes ~dest ~src v =
  if dest = Machine.self ctx && src = Machine.self ctx then v
  else
    spanned ctx "ring_shift" @@ fun () ->
    Machine.sendrecv ctx ~dest ~src ~tag ~bytes v
