(* Collective operations in two flavours, dispatched on the machine's
   [Coll_alg.mode]:

   - Legacy: the seed's binomial-tree implementations, kept verbatim below —
     [--collectives tree] runs are byte-identical to the historical binary
     (values, clocks, Stats, traces).

   - Algorithm-selecting (Auto / Force): a library of message patterns
     (pipelined broadcast, van de Geijn scatter+allgather, recursive
     doubling, chunked rings, Bruck allgather, pairwise exchange,
     dissemination barrier, binomial scan), one picked per call by
     [Coll_alg.select] from (topology, p, bytes).

   The selecting flavour splits the timing plane from the value plane:
   the chosen message pattern runs with dummy payloads but honest byte
   counts — that is where simulated time is charged — while values travel
   out-of-band through one [Machine.collective] deposit cell per call, and
   every rank combines the deposits with the same canonical bracketing
   (the seed's binomial order for reductions, a left fold for scans).
   Consequences: every algorithm returns bit-identical values (floating
   point included), and a pattern may only complete on a rank once that
   rank causally depends on every deposit it reads — true for all patterns
   below by construction.  All message matching is FIFO per (source, tag);
   since SPMD programs issue collectives in the same order everywhere,
   reusing a tag across successive collectives remains safe. *)

let vrank_of ctx root rank =
  let p = Machine.nprocs ctx in
  ((rank - root) mod p + p) mod p

let rank_of ctx root vrank = (vrank + root) mod Machine.nprocs ctx

(* Trace span around a collective body: zero simulated cost, records which
   collective this processor's sends/recvs/waits belong to. *)
let spanned ctx name f = Machine.with_span ctx ~cat:Trace.Collective name f

(* ------------------------------------------------------------------ *)
(* Legacy implementations — the seed's code, unchanged                  *)

let legacy_reduce ctx ~tag ~root ~bytes f v =
  spanned ctx "reduce" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let acc = ref v in
  let offset = ref 1 in
  let participating = ref true in
  while !participating && !offset < p do
    let span = 2 * !offset in
    if me mod span = !offset then begin
      (* tree edges are rendezvous links: the child is busy until the
         parent has the partial result *)
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me - !offset))
        ~tag ~bytes !acc;
      participating := false
    end
    else if me mod span = 0 && me + !offset < p then begin
      let w = Machine.recv ctx ~src:(rank_of ctx root (me + !offset)) ~tag in
      acc := f !acc w
    end;
    offset := 2 * !offset
  done;
  !acc

let legacy_bcast ctx ~tag ~root ~bytes v =
  spanned ctx "bcast" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let highest = ref 1 in
  while !highest < p do
    highest := 2 * !highest
  done;
  let value = ref v in
  let offset = ref (!highest / 2) in
  while !offset >= 1 do
    let span = 2 * !offset in
    if me mod span = 0 && me + !offset < p then
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me + !offset))
        ~tag ~bytes !value
    else if me mod span = !offset then
      value := Machine.recv ctx ~src:(rank_of ctx root (me - !offset)) ~tag;
    offset := !offset / 2
  done;
  !value

let legacy_allreduce ctx ~tag ~bytes f v =
  let combined = legacy_reduce ctx ~tag ~root:0 ~bytes f v in
  legacy_bcast ctx ~tag ~root:0 ~bytes combined

let legacy_barrier ctx ~tag =
  ignore (legacy_allreduce ctx ~tag ~bytes:0 (fun () () -> ()) ())

let legacy_scan ctx ~tag ~bytes f v =
  spanned ctx "scan" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  let acc =
    if me = 0 then v
    else
      let prefix = Machine.recv ctx ~src:(me - 1) ~tag in
      f prefix v
  in
  if me < p - 1 then Machine.send ctx ~dest:(me + 1) ~tag ~bytes acc;
  acc

let legacy_gather_to ctx ~tag ~root ~bytes v =
  spanned ctx "gather" @@ fun () ->
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  if me = root then begin
    let out = Array.make p v in
    for src = 0 to p - 1 do
      if src <> root then out.(src) <- Machine.recv ctx ~src ~tag
    done;
    Some out
  end
  else begin
    Machine.send ctx ~dest:root ~tag ~bytes v;
    None
  end

(* ------------------------------------------------------------------ *)
(* Value plane: canonical combines over the per-call deposit cell       *)

type 'a cell = { sel_bytes : int; slots : 'a option array }

(* One shared cell per collective call site.  [sel_bytes] — the first
   arriver's byte count — is what selection runs on, so ranks whose local
   byte estimates differ (array_fold's measured accumulators) still pick
   the same algorithm. *)
let cell_for ctx ~bytes =
  Machine.collective ctx (fun () ->
      { sel_bytes = bytes; slots = Array.make (Machine.nprocs ctx) None })

let slot cell i =
  match cell.slots.(i) with
  | Some v -> v
  | None ->
      (* unreachable: every pattern below completes on a rank only after it
         causally depends on all the deposits that rank reads *)
      invalid_arg "Collectives: missing deposit (protocol error)"

(* The seed's binomial-tree reduction order over vrank-indexed deposits:
   at round [offset], vrank j (j mod 2*offset = 0) absorbs vrank j+offset
   with the receiver on the left — exactly [legacy_reduce]'s [f !acc w].
   Same expression tree, hence bit-identical results (floats included). *)
let tree_combine f (vals : 'a array) =
  let p = Array.length vals in
  let acc = Array.copy vals in
  let offset = ref 1 in
  while !offset < p do
    let span = 2 * !offset in
    let i = ref 0 in
    while !i < p do
      if !i + !offset < p then acc.(!i) <- f acc.(!i) acc.(!i + !offset);
      i := !i + span
    done;
    offset := span
  done;
  acc.(0)

(* ------------------------------------------------------------------ *)
(* Timing plane: message patterns with dummy payloads, honest bytes     *)

let recv_unit ctx ~src ~tag = (Machine.recv ctx ~src ~tag : unit)

(* The seed's binomial patterns, payload-free (same sends, same rendezvous
   discipline, same clocks as the legacy bodies). *)
let tree_reduce_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let offset = ref 1 in
  let participating = ref true in
  while !participating && !offset < p do
    let span = 2 * !offset in
    if me mod span = !offset then begin
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me - !offset))
        ~tag ~bytes ();
      participating := false
    end
    else if me mod span = 0 && me + !offset < p then
      recv_unit ctx ~src:(rank_of ctx root (me + !offset)) ~tag;
    offset := 2 * !offset
  done

let tree_bcast_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let highest = ref 1 in
  while !highest < p do
    highest := 2 * !highest
  done;
  let offset = ref (!highest / 2) in
  while !offset >= 1 do
    let span = 2 * !offset in
    if me mod span = 0 && me + !offset < p then
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me + !offset))
        ~tag ~bytes ()
    else if me mod span = !offset then
      recv_unit ctx ~src:(rank_of ctx root (me - !offset)) ~tag;
    offset := !offset / 2
  done

(* Segmented broadcast down the rank ring (vrank space, so it is rooted
   anywhere): the root streams segments to vrank 1, every interior rank
   forwards each segment as it lands.  Asynchronous sends let segment k+1
   overlap the downstream transit of segment k. *)
let pipeline_bcast_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  if p > 1 then begin
    let me = vrank_of ctx root (Machine.self ctx) in
    let nseg, seg = Coll_alg.pipeline_plan (Machine.coll_net ctx) ~bytes in
    let seg_bytes k =
      if k < nseg - 1 then seg else bytes - ((nseg - 1) * seg)
    in
    if me = 0 then
      for k = 0 to nseg - 1 do
        Machine.send ctx ~dest:(rank_of ctx root 1) ~tag ~bytes:(seg_bytes k)
          ()
      done
    else
      for k = 0 to nseg - 1 do
        recv_unit ctx ~src:(rank_of ctx root (me - 1)) ~tag;
        if me < p - 1 then
          Machine.send ctx
            ~dest:(rank_of ctx root (me + 1))
            ~tag ~bytes:(seg_bytes k) ()
      done
  end

(* van de Geijn broadcast: recursive-halving scatter (the root's first send
   hands half the payload across the largest vrank jump), then a ring
   allgather circulates the p chunks. *)
let vandegeijn_bcast_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  if p > 1 then begin
    let me = vrank_of ctx root (Machine.self ctx) in
    let chunk = max 1 ((bytes + p - 1) / p) in
    let rec scatter lo hi =
      (* invariant: me is in [lo, hi) and lo holds the range's data *)
      if hi - lo > 1 then begin
        let mid = lo + ((hi - lo + 1) / 2) in
        let right_bytes = chunk * (hi - mid) in
        if me = lo then
          Machine.send ctx ~dest:(rank_of ctx root mid) ~tag
            ~bytes:right_bytes ()
        else if me = mid then recv_unit ctx ~src:(rank_of ctx root lo) ~tag;
        if me < mid then scatter lo mid else scatter mid hi
      end
    in
    scatter 0 p;
    for _ = 1 to p - 1 do
      Machine.send ctx
        ~dest:(rank_of ctx root ((me + 1) mod p))
        ~tag ~bytes:chunk ();
      recv_unit ctx ~src:(rank_of ctx root ((me + p - 1) mod p)) ~tag
    done
  end

(* Chunked ring steps: each step pushes one chunk to the next rank and
   pulls one from the previous.  (p-1) steps make every rank causally
   dependent on every other; allreduce runs 2(p-1) (reduce-scatter then
   allgather). *)
let ring_steps_pattern ctx ~tag ~steps ~bytes =
  let p = Machine.nprocs ctx in
  if p > 1 then begin
    let me = Machine.self ctx in
    let nxt = (me + 1) mod p and prv = (me + p - 1) mod p in
    for _ = 1 to steps do
      Machine.send ctx ~dest:nxt ~tag ~bytes ();
      recv_unit ctx ~src:prv ~tag
    done
  end

(* Ring reduce: reduce-scatter around the ring, then every rank ships its
   finished chunk straight to the root, which drains them in rank order. *)
let ring_reduce_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  if p > 1 then begin
    let chunk = max 1 ((bytes + p - 1) / p) in
    ring_steps_pattern ctx ~tag ~steps:(p - 1) ~bytes:chunk;
    let me = Machine.self ctx in
    if me <> root then Machine.send ctx ~dest:root ~tag ~bytes:chunk ()
    else
      for src = 0 to p - 1 do
        if src <> root then recv_unit ctx ~src ~tag
      done
  end

(* Recursive-doubling allreduce.  Non-power-of-two p: the first 2r ranks
   (r = p - 2^floor(log2 p)) pair up — odds fold into evens before the
   core rounds and read the result back after them. *)
let recdouble_pattern ctx ~tag ~bytes =
  let p = Machine.nprocs ctx in
  if p > 1 then begin
    let me = Machine.self ctx in
    let pow = ref 1 in
    while 2 * !pow <= p do
      pow := 2 * !pow
    done;
    let r = p - !pow in
    if me < 2 * r && me mod 2 = 1 then begin
      Machine.send ctx ~dest:(me - 1) ~tag ~bytes ();
      recv_unit ctx ~src:(me - 1) ~tag
    end
    else begin
      if me < 2 * r then recv_unit ctx ~src:(me + 1) ~tag;
      let cr = if me < 2 * r then me / 2 else me - r in
      let unmap cr = if cr < r then 2 * cr else cr + r in
      let k = ref 1 in
      while !k < !pow do
        let peer = unmap (cr lxor !k) in
        Machine.send ctx ~dest:peer ~tag ~bytes ();
        recv_unit ctx ~src:peer ~tag;
        k := 2 * !k
      done;
      if me < 2 * r then Machine.send ctx ~dest:(me + 1) ~tag ~bytes ()
    end
  end

(* Bruck allgather: round k ships min(2^k, p - 2^k) items 2^k ranks away;
   ceil(log2 p) rounds reach everyone for any p. *)
let bruck_allgather_pattern ctx ~tag ~bytes =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  let k = ref 1 in
  while !k < p do
    let blocks = min !k (p - !k) in
    Machine.send ctx
      ~dest:((me + p - !k) mod p)
      ~tag ~bytes:(blocks * bytes) ();
    recv_unit ctx ~src:((me + !k) mod p) ~tag;
    k := 2 * !k
  done

(* Dissemination barrier: round k signals me+2^k and waits on me-2^k;
   after ceil(log2 p) rounds every rank transitively depends on all. *)
let dissemination_pattern ctx ~tag =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  let k = ref 1 in
  while !k < p do
    Machine.send ctx ~dest:((me + !k) mod p) ~tag ~bytes:0 ();
    recv_unit ctx ~src:((me + p - !k) mod p) ~tag;
    k := 2 * !k
  done

(* Binomial (Hillis-Steele) scan: round k forwards to me+2^k, waits on
   me-2^k — ceil(log2 p) rounds instead of the linear chain's p-1. *)
let binomial_scan_pattern ctx ~tag ~bytes =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  let k = ref 1 in
  while !k < p do
    if me + !k < p then Machine.send ctx ~dest:(me + !k) ~tag ~bytes ();
    if me - !k >= 0 then recv_unit ctx ~src:(me - !k) ~tag;
    k := 2 * !k
  done

let linear_scan_pattern ctx ~tag ~bytes =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  if me > 0 then recv_unit ctx ~src:(me - 1) ~tag;
  if me < p - 1 then Machine.send ctx ~dest:(me + 1) ~tag ~bytes ()

let linear_gather_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  if me = root then
    for src = 0 to p - 1 do
      if src <> root then recv_unit ctx ~src ~tag
    done
  else Machine.send ctx ~dest:root ~tag ~bytes ()

(* Binomial gather: the reduce tree with payloads growing by subtree size
   (a sender at round [offset] has absorbed min(offset, p - vrank) items). *)
let tree_gather_pattern ctx ~tag ~root ~bytes =
  let p = Machine.nprocs ctx in
  let me = vrank_of ctx root (Machine.self ctx) in
  let offset = ref 1 in
  let participating = ref true in
  while !participating && !offset < p do
    let span = 2 * !offset in
    if me mod span = !offset then begin
      let sub = min !offset (p - me) in
      Machine.send ctx ~rendezvous:true
        ~dest:(rank_of ctx root (me - !offset))
        ~tag ~bytes:(sub * bytes) ();
      participating := false
    end
    else if me mod span = 0 && me + !offset < p then
      recv_unit ctx ~src:(rank_of ctx root (me + !offset)) ~tag;
    offset := 2 * !offset
  done

(* ------------------------------------------------------------------ *)
(* Algorithm-selecting front ends                                       *)

let choose ctx kind ~sel_bytes =
  let net = Machine.coll_net ctx in
  match Machine.coll_mode ctx with
  | Coll_alg.Auto -> Coll_alg.select net kind ~bytes:sel_bytes
  | Coll_alg.Force a -> Coll_alg.force net kind ~bytes:sel_bytes a
  | Coll_alg.Legacy -> invalid_arg "Collectives.choose: Legacy mode"

(* Label, stats, span: every selecting-mode collective runs inside a span
   named "kind[algorithm]" (visible in --profile and Chrome traces) and
   bumps the Stats collective counters. *)
let selected ctx kind alg ~bytes f =
  let name = Coll_alg.kind_name kind ^ "[" ^ Coll_alg.alg_name alg ^ "]" in
  Machine.record_collective ctx ~name ~bytes;
  spanned ctx name f

let sel_bcast ctx ~tag ~root ~bytes v =
  let me = Machine.self ctx in
  let cell = cell_for ctx ~bytes in
  if me = root then cell.slots.(0) <- Some v;
  let b = cell.sel_bytes in
  let alg = choose ctx Coll_alg.Bcast ~sel_bytes:b in
  selected ctx Coll_alg.Bcast alg ~bytes:b @@ fun () ->
  (match alg with
   | Coll_alg.Pipeline -> pipeline_bcast_pattern ctx ~tag ~root ~bytes:b
   | Coll_alg.Vandegeijn -> vandegeijn_bcast_pattern ctx ~tag ~root ~bytes:b
   | _ -> tree_bcast_pattern ctx ~tag ~root ~bytes:b);
  slot cell 0

let deposits cell = Array.init (Array.length cell.slots) (slot cell)

let sel_reduce ctx ~tag ~root ~bytes f v =
  let me = Machine.self ctx in
  let cell = cell_for ctx ~bytes in
  cell.slots.(vrank_of ctx root me) <- Some v;
  let b = cell.sel_bytes in
  let alg = choose ctx Coll_alg.Reduce ~sel_bytes:b in
  selected ctx Coll_alg.Reduce alg ~bytes:b @@ fun () ->
  (match alg with
   | Coll_alg.Ring -> ring_reduce_pattern ctx ~tag ~root ~bytes:b
   | _ -> tree_reduce_pattern ctx ~tag ~root ~bytes:b);
  (* only the root's return value is meaningful, as in the legacy tree *)
  if me = root then tree_combine f (deposits cell) else v

let sel_allreduce ctx ~tag ~bytes f v =
  let me = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let cell = cell_for ctx ~bytes in
  cell.slots.(me) <- Some v;
  let b = cell.sel_bytes in
  let alg = choose ctx Coll_alg.Allreduce ~sel_bytes:b in
  selected ctx Coll_alg.Allreduce alg ~bytes:b @@ fun () ->
  (match alg with
   | Coll_alg.Recdouble -> recdouble_pattern ctx ~tag ~bytes:b
   | Coll_alg.Ring ->
       ring_steps_pattern ctx ~tag ~steps:(2 * (p - 1))
         ~bytes:(max 1 ((b + p - 1) / p))
   | _ ->
       tree_reduce_pattern ctx ~tag ~root:0 ~bytes:b;
       tree_bcast_pattern ctx ~tag ~root:0 ~bytes:b);
  tree_combine f (deposits cell)

let sel_barrier ctx ~tag =
  let alg = choose ctx Coll_alg.Barrier ~sel_bytes:0 in
  selected ctx Coll_alg.Barrier alg ~bytes:0 @@ fun () ->
  match alg with
  | Coll_alg.Dissemination -> dissemination_pattern ctx ~tag
  | _ ->
      tree_reduce_pattern ctx ~tag ~root:0 ~bytes:0;
      tree_bcast_pattern ctx ~tag ~root:0 ~bytes:0

let sel_scan ctx ~tag ~bytes f v =
  let me = Machine.self ctx in
  let cell = cell_for ctx ~bytes in
  cell.slots.(me) <- Some v;
  let b = cell.sel_bytes in
  let alg = choose ctx Coll_alg.Scan ~sel_bytes:b in
  selected ctx Coll_alg.Scan alg ~bytes:b @@ fun () ->
  (match alg with
   | Coll_alg.Linear -> linear_scan_pattern ctx ~tag ~bytes:b
   | _ -> binomial_scan_pattern ctx ~tag ~bytes:b);
  (* the legacy chain's left-fold bracketing: f (.. (f v0 v1) ..) vme *)
  let acc = ref (slot cell 0) in
  for i = 1 to me do
    acc := f !acc (slot cell i)
  done;
  !acc

let sel_gather ctx ~tag ~root ~bytes v =
  let me = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let cell = cell_for ctx ~bytes in
  cell.slots.(me) <- Some v;
  let b = cell.sel_bytes in
  let alg = choose ctx Coll_alg.Gather ~sel_bytes:b in
  selected ctx Coll_alg.Gather alg ~bytes:b @@ fun () ->
  (match alg with
   | Coll_alg.Tree -> tree_gather_pattern ctx ~tag ~root ~bytes:b
   | _ -> linear_gather_pattern ctx ~tag ~root ~bytes:b);
  if me = root then Some (Array.init p (slot cell)) else None

let sel_allgather ctx ~tag ~bytes v =
  let me = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let cell = cell_for ctx ~bytes in
  cell.slots.(me) <- Some v;
  let b = cell.sel_bytes in
  let alg = choose ctx Coll_alg.Allgather ~sel_bytes:b in
  selected ctx Coll_alg.Allgather alg ~bytes:b @@ fun () ->
  (match alg with
   | Coll_alg.Ring -> ring_steps_pattern ctx ~tag ~steps:(p - 1) ~bytes:b
   | _ -> bruck_allgather_pattern ctx ~tag ~bytes:b);
  Array.init p (slot cell)

(* ------------------------------------------------------------------ *)
(* Public API                                                           *)

let bcast ctx ~tag ~root ~bytes v =
  if Machine.coll_legacy ctx then legacy_bcast ctx ~tag ~root ~bytes v
  else sel_bcast ctx ~tag ~root ~bytes v

let reduce ctx ~tag ~root ~bytes f v =
  if Machine.coll_legacy ctx then legacy_reduce ctx ~tag ~root ~bytes f v
  else sel_reduce ctx ~tag ~root ~bytes f v

let allreduce ctx ~tag ~bytes f v =
  if Machine.coll_legacy ctx then legacy_allreduce ctx ~tag ~bytes f v
  else sel_allreduce ctx ~tag ~bytes f v

let barrier ctx ~tag =
  if Machine.coll_legacy ctx then legacy_barrier ctx ~tag
  else sel_barrier ctx ~tag

let scan ctx ~tag ~bytes f v =
  if Machine.coll_legacy ctx then legacy_scan ctx ~tag ~bytes f v
  else sel_scan ctx ~tag ~bytes f v

let gather_to ctx ~tag ~root ~bytes v =
  if Machine.coll_legacy ctx then legacy_gather_to ctx ~tag ~root ~bytes v
  else sel_gather ctx ~tag ~root ~bytes v

let allgather ctx ~tag ~bytes v =
  if Machine.coll_legacy ctx then begin
    (* composition of the legacy primitives; each rank still returns a
       private array (messages travel by reference in the simulator) *)
    let p = Machine.nprocs ctx in
    let arr =
      match legacy_gather_to ctx ~tag ~root:0 ~bytes v with
      | Some a -> a
      | None -> [||]
    in
    Array.copy (legacy_bcast ctx ~tag ~root:0 ~bytes:(p * bytes) arr)
  end
  else sel_allgather ctx ~tag ~bytes v

let alltoall ctx ~tag ~bytes vs =
  let p = Machine.nprocs ctx in
  let me = Machine.self ctx in
  if Array.length vs <> p then
    invalid_arg "Collectives.alltoall: need one value per processor";
  (* point-to-point payloads need no out-of-band value plane: the pairwise
     schedule carries the real values in both modes (and is the legacy
     behaviour, since the seed had no all-to-all) *)
  let body () =
    let out = Array.make p vs.(me) in
    for step = 1 to p - 1 do
      let dest = (me + step) mod p and src = (me + p - step) mod p in
      out.(src) <-
        Machine.sendrecv ctx ~dest ~src ~tag ~bytes vs.(dest)
    done;
    out
  in
  if Machine.coll_legacy ctx then
    if p = 1 then Array.copy vs else spanned ctx "alltoall" body
  else begin
    let alg = choose ctx Coll_alg.Alltoall ~sel_bytes:bytes in
    selected ctx Coll_alg.Alltoall alg ~bytes body
  end

let ring_shift ctx ~tag ~bytes ~dest ~src v =
  if dest = Machine.self ctx && src = Machine.self ctx then v
  else if Machine.coll_legacy ctx then
    spanned ctx "ring_shift" @@ fun () ->
    Machine.sendrecv ctx ~dest ~src ~tag ~bytes v
  else begin
    Machine.record_collective ctx ~name:"ring_shift[pairwise]" ~bytes;
    spanned ctx "ring_shift[pairwise]" @@ fun () ->
    Machine.sendrecv ctx ~dest ~src ~tag ~bytes v
  end
