type delivery = Clean | Corrupted | Duplicate

type message = {
  arrival : float;
  payload : Obj.t;
  tmsg : Trace.message option; (* trace record, completed on delivery *)
  seq : int; (* per-(src,dst) sequence number; 0 on the fault-free path *)
  delivery : delivery;
}

type waiting = Exact of int * int | Any_source of int

(* Per-source channel: a small tag-bucketed vector of FIFO queues.  At any
   moment only a handful of tags are live between a pair of processors, so a
   linear scan beats a hashtable — and avoids allocating a boxed (src, tag)
   key per message, which dominated the send/recv hot path. *)
type chan = {
  mutable tags : int array;
  mutable queues : message Queue.t array;
  mutable nbuckets : int;
}

type proc = {
  id : int;
  mutable clock : float;
  channels : chan array; (* indexed by source rank *)
  mutable waiting : waiting option;
  mutable coll_count : int; (* collective call sites reached so far *)
  mutable span_stack : Trace.span list; (* open trace spans, innermost first *)
  stats : Stats.proc;
  (* fault state — allocated/nonempty only when a plan or reliable mode is
     active, untouched on the fault-free path *)
  next_seq : int array; (* per-destination sequence counters; [||] when off *)
  seen : (int * int, unit) Hashtbl.t; (* (src, seq) dedup under Reliable *)
  mutable pending_stalls : Fault.stall list; (* sorted by stall_at *)
  mutable pending_crashes : float list; (* sorted crash times *)
  (* PDES shard placement; sequential runs keep shard 0 / fid = id *)
  mutable shard : int;
  mutable fid : int; (* fiber id within the owning shard's scheduler *)
  mutable finished_p : bool; (* program body returned (monotone flag) *)
  mutable any_grant : bool; (* recv_any unblocked by the global-idle grant *)
  mutable lookahead_row : float array;
      (* per-source lower bound on message transit into this processor
         (the per-link lookahead), built lazily on first recv_any *)
}

(* ------------------------------------------------------------------ *)
(* Conservative PDES sharding (--sim-domains).

   The simulated processors are partitioned into contiguous-rank shards,
   each with its own fiber scheduler.  Because [recv] names its source and
   per-(src, tag) streams are FIFO, the simulation is a Kahn network: every
   exact receive is deterministic whatever the shard interleaving, so shards
   run their fibers freely and only block on actual data dependencies — the
   conservative-PDES safety condition degenerates to dataflow blocking,
   which strictly dominates time-window synchronisation.  Cross-shard sends
   are posted to the destination shard's mailbox (the mutex hand-off is also
   the happens-before edge that publishes payload memory); per-link
   lookahead from the cost model's latency and the topology's hop distances
   is only needed by [recv_any], the one source-nondeterministic primitive.
   Simulated clocks are per-processor state computed from message arrival
   times, never from wall time, so results are bit-identical for every
   shard count. *)

type post = { pdst : proc; psrc : int; ptag : int; pmsg : message }

type shard = {
  sid : int;
  sched : Scheduler.t;
  smembers : proc array; (* the contiguous rank block owned by this shard *)
  inbox_mutex : Mutex.t;
  mutable inbox : post list; (* reversed; guarded by inbox_mutex *)
  mutable sdone : bool;
      (* guarded by inbox_mutex: posts to a finished shard are dropped, as
         the sequential machine leaves such messages queued unread *)
  mutable lb : float;
      (* published lower bound on every member clock, refreshed at idle
         transitions; read racily by other shards' recv_any (monotone, so a
         stale value is a sound lower bound) *)
}

(* Shard statuses (guarded by [cmutex]): 0 idle, 1 ready (queued for a
   worker), 2 running, 3 done. *)
type coord = {
  cmutex : Mutex.t;
  ccond : Condition.t;
  ready : int Queue.t;
  status : int array;
  mutable live : int; (* shards not yet done *)
  mutable running : int;
  in_flight : int Atomic.t; (* posted but not yet drained cross-shard msgs *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

type par = {
  nshards : int;
  shard_of : int array;
  shards : shard array;
  coord : coord;
  cmx : Mutex.t; (* collective deposit table + tag allocation *)
}

type t = {
  topology : Topology.t;
  cost : Cost_model.t;
  procs : proc array;
  sched : Scheduler.t;
  collectives : (int, Obj.t * int ref) Hashtbl.t;
  mutable next_tag : int;
  trace : Trace.t;
  trace_on : bool; (* cached Trace.enabled: skips the call (and the float
                      boxing of its arguments) on every clock advance *)
  (* communication coefficients with the profile's comm_factor pre-applied,
     hoisted out of the per-message path *)
  c_send_overhead : float;
  c_recv_overhead : float;
  c_latency : float;
  c_per_hop : float;
  c_per_byte : float;
  sync_comm : bool;
  c_scalar_factor : float;
      (* the profile's Scalar factor, hoisted out of the per-statement
         flush path of the language engines *)
  (* fault-injection state, all gated behind the cached booleans below so the
     fault-free hot path pays one dead branch per send/recv/compute *)
  fplan : Fault.plan; (* Fault.none when no plan was given *)
  faults_on : bool; (* a plan was given *)
  reliable : bool; (* Reliable transport mode *)
  rto_fixed : float; (* retransmission timeout, bytes-independent part *)
  (* collective-algorithm selection (Coll_alg): Legacy keeps the seed's
     binomial-tree code paths untouched; the net summary is only built for
     the algorithm-selecting modes *)
  coll_mode : Coll_alg.mode;
  coll_legacy : bool; (* cached [coll_mode = Legacy] *)
  coll_net : Coll_alg.net option; (* Some iff not coll_legacy *)
  par : par option; (* Some iff sim_domains > 1 and nprocs > 1 *)
  cancel : unit -> bool;
  cancel_on : bool; (* a cancel callback was given; cancel-free runs pay
                       one dead branch per clock advance *)
  min_delay_factor : float;
      (* smallest multiplier a fault plan can apply to a message's transit
         time; scales the lookahead bound so it stays sound under
         [link.delay] spikes (factor < 1 would otherwise shorten transit
         below the fault-free bound) *)
}

type sctx = { m : t; p : proc }

(* The public context is either a simulator context or a native-execution
   one (ranks on real domains, see {!Native}); every context-taking
   function below is shadowed by a two-way dispatch at the end of the
   file, so the skeleton/collective/language layers stay engine-agnostic. *)
type ctx = Sim of sctx | Native of Native.ctx

type 'r result = {
  values : 'r array;
  time : float;
  stats : Stats.t;
  trace : Trace.t;
}

exception Stalled of (int * string) list

(* One exception for both engines, so callers catch a single constructor
   whatever the backend. *)
exception Cancelled = Native.Cancelled

let stall_diagnostic blocked =
  let b = Buffer.create 128 in
  Buffer.add_string b
    "machine stalled: no processor is runnable, but these are blocked:\n";
  List.iter
    (fun (id, d) -> Buffer.add_string b (Printf.sprintf "  p%-3d %s\n" id d))
    blocked;
  Buffer.add_string b
    "(a dropped message under --faults without --reliable, or a genuine \
     program deadlock)";
  Buffer.contents b

let self ctx = ctx.p.id
let nprocs ctx = Array.length ctx.m.procs
let topology ctx = ctx.m.topology
let cost ctx = ctx.m.cost
let profile ctx = ctx.m.cost.Cost_model.profile
let clock ctx = ctx.p.clock
let checkpoint_default ctx = ctx.m.faults_on && ctx.m.fplan.Fault.checkpoint
let coll_mode ctx = ctx.m.coll_mode
let coll_legacy ctx = ctx.m.coll_legacy

let coll_net ctx =
  match ctx.m.coll_net with
  | Some n -> n
  | None -> invalid_arg "Machine.coll_net: Legacy collectives mode"

let record_collective ctx ~name ~bytes =
  Stats.count_collective ctx.p.stats ~name ~bytes

(* An injected transient stall freezes the processor at its first
   clock-advancing action at or after the scheduled time.  Checked (behind
   [faults_on]) at the top of [compute] and [overhead]; receive waits are
   already idle time, so stalling there would be unobservable. *)
let rec apply_stalls ctx =
  match ctx.p.pending_stalls with
  | s :: rest when s.Fault.stall_at <= ctx.p.clock ->
      ctx.p.pending_stalls <- rest;
      if ctx.m.trace_on then begin
        Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
          ~duration:s.Fault.stall_for Trace.Stall;
        Trace.record_fault ctx.m.trace ~kind:Trace.Fstall ~proc:ctx.p.id
          ~time:ctx.p.clock ()
      end;
      ctx.p.clock <- ctx.p.clock +. s.Fault.stall_for;
      ctx.p.stats.Stats.stall_time <-
        ctx.p.stats.Stats.stall_time +. s.Fault.stall_for;
      apply_stalls ctx
  | _ -> ()

(* Cooperative cancellation: every simulated-clock advance funnels through
   [compute] or [overhead] (the language engines flush per statement, the
   communication path charges overheads), so polling here keeps any
   running Skil program cancellable without touching the skeleton layer.
   Receivers parked forever are already surfaced by [Stalled]. *)
let check_cancel (m : t) = if m.cancel_on && m.cancel () then raise Cancelled

let compute ctx seconds =
  assert (seconds >= 0.0);
  if ctx.m.cancel_on then check_cancel ctx.m;
  if ctx.m.faults_on then apply_stalls ctx;
  if ctx.m.trace_on then
    Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
      ~duration:seconds Trace.Compute;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.compute_time <- ctx.p.stats.Stats.compute_time +. seconds

let charge ctx cls ~ops ~base =
  if ops > 0 then begin
    if ctx.m.trace_on then
      (match ctx.p.span_stack with
       | s :: _ -> Trace.span_add_ops s cls ops
       | [] -> ());
    compute ctx (float_of_int ops *. base *. Cost_model.factor (profile ctx) cls)
  end

(* Fast path for the Skil engines' per-statement scalar flush: same math as
   [charge ctx Scalar ~ops ~base:Calibration.scalar_node_op] (same operand
   order, so simulated clocks stay bit-identical), with the factor lookup
   hoisted to machine construction. *)
let charge_scalar_nodes ctx ~ops =
  if ops > 0 then begin
    if ctx.m.trace_on then
      (match ctx.p.span_stack with
       | s :: _ -> Trace.span_add_ops s Cost_model.Scalar ops
       | [] -> ());
    compute ctx
      (float_of_int ops *. Calibration.scalar_node_op
      *. ctx.m.c_scalar_factor)
  end

let overhead ctx seconds =
  if ctx.m.cancel_on then check_cancel ctx.m;
  if ctx.m.faults_on then apply_stalls ctx;
  if ctx.m.trace_on then
    Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
      ~duration:seconds Trace.Overhead;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.overhead_time <-
    ctx.p.stats.Stats.overhead_time +. seconds

let charge_skeleton_call ctx =
  ctx.p.stats.Stats.skeleton_calls <- ctx.p.stats.Stats.skeleton_calls + 1;
  overhead ctx (profile ctx).Cost_model.skeleton_call

let charge_copy ctx ~bytes =
  compute ctx (float_of_int bytes *. Calibration.copy_per_byte)

(* Checkpoint-protected region: fail-stop crash recovery.

   [f] must be a local, communication-free computation whose effects are
   confined to state captured by [snapshot]/[restore] (the skeleton layer
   wraps the per-partition loops of map/fold/gen_mult).  When the plan
   schedules a crash on this processor, the first protected region whose end
   clock reaches the crash time loses its work: the snapshot is restored
   (both copies charged through the cost model), the reboot penalty is
   charged, and the region re-executes.  With no crash pending the region
   runs with zero overhead — fault-free runs never snapshot. *)
let protect ctx ~bytes ~snapshot ~restore f =
  let m = ctx.m in
  if (not m.faults_on) || ctx.p.pending_crashes = [] then f ()
  else begin
    let snap = snapshot () in
    charge_copy ctx ~bytes;
    let rec attempt () =
      let r = f () in
      match ctx.p.pending_crashes with
      | tc :: rest when tc <= ctx.p.clock ->
          ctx.p.pending_crashes <- rest;
          if m.trace_on then
            Trace.record_fault m.trace ~kind:Trace.Fcrash ~proc:ctx.p.id
              ~time:ctx.p.clock ();
          ctx.p.stats.Stats.recoveries <- ctx.p.stats.Stats.recoveries + 1;
          overhead ctx m.fplan.Fault.reboot;
          restore snap;
          charge_copy ctx ~bytes;
          attempt ()
      | _ -> r
    in
    attempt ()
  end

(* Span brackets: zero simulated cost, recorded only when tracing. *)

let span_begin ctx ~cat name =
  if ctx.m.trace_on then
    ctx.p.span_stack <-
      Trace.span_begin ctx.m.trace ~proc:ctx.p.id ~cat ~name
        ~start:ctx.p.clock
      :: ctx.p.span_stack

let span_end ctx =
  if ctx.m.trace_on then
    match ctx.p.span_stack with
    | s :: rest ->
        Trace.span_end s ~stop:ctx.p.clock;
        ctx.p.span_stack <- rest
    | [] -> ()

let with_span ctx ~cat name f =
  span_begin ctx ~cat name;
  let r = f () in
  span_end ctx;
  r

(* ------------------------------------------------------------------ *)
(* Channel buckets                                                     *)

let chan_create () = { tags = [||]; queues = [||]; nbuckets = 0 }

(* Queue holding messages for [tag], or None.  An empty queue is
   indistinguishable from an absent one to receivers. *)
let chan_find c tag =
  let rec go i =
    if i >= c.nbuckets then None
    else if c.tags.(i) = tag then Some c.queues.(i)
    else go (i + 1)
  in
  go 0

(* Queue to enqueue into for [tag]: reuse the bucket already carrying the
   tag, else repurpose a drained bucket (tags only grow, so an empty queue's
   old tag can never see traffic again from this source in FIFO order —
   and even if it did, an empty bucket behaves exactly like a missing one),
   else append a fresh bucket. *)
let chan_enqueue_queue c tag =
  let rec go i free =
    if i >= c.nbuckets then
      match free with
      | Some j ->
          c.tags.(j) <- tag;
          c.queues.(j)
      | None ->
          if c.nbuckets = Array.length c.tags then begin
            let cap = max 4 (2 * c.nbuckets) in
            let tags = Array.make cap 0 in
            Array.blit c.tags 0 tags 0 c.nbuckets;
            let queues =
              Array.init cap (fun k ->
                  if k < c.nbuckets then c.queues.(k) else Queue.create ())
            in
            c.tags <- tags;
            c.queues <- queues
          end;
          let j = c.nbuckets in
          c.nbuckets <- j + 1;
          c.tags.(j) <- tag;
          c.queues.(j)
    else if c.tags.(i) = tag then c.queues.(i)
    else if free = None && Queue.is_empty c.queues.(i) then go (i + 1) (Some i)
    else go (i + 1) free
  in
  go 0 None

(* ------------------------------------------------------------------ *)

(* Scheduler owning [p]'s fiber.  Sequential machines keep every fiber on
   [m.sched]; sharded ones give each shard its own. *)
let sched_of m (p : proc) =
  match m.par with
  | None -> m.sched
  | Some par -> par.shards.(p.shard).sched

(* Only ever called for a [target] on the *caller's own* shard (or in a
   sequential machine): cross-shard deliveries go through [post_cross] and
   are woken by the destination shard when it drains its inbox. *)
let wake_if_waiting m target ~src ~tag =
  match target.waiting with
  | Some (Exact (s, t)) when s = src && t = tag ->
      target.waiting <- None;
      Scheduler.wake (sched_of m target) target.fid
  | Some (Any_source t) when t = tag ->
      target.waiting <- None;
      Scheduler.wake (sched_of m target) target.fid
  | Some _ | None -> ()

(* Hand a message to another shard's mailbox and mark that shard ready.
   The inbox mutex acquire/release pair is the happens-before edge that
   publishes the payload (and the sender-side trace record) to the domain
   that will drain it.  [in_flight] is bumped before the shard is marked
   ready so the quiescence test can never observe "all idle, nothing
   queued" while a message is between mailboxes. *)
let post_cross par ~target ~src ~tag msg =
  let sh = par.shards.(par.shard_of.(target.id)) in
  Mutex.lock sh.inbox_mutex;
  if sh.sdone then
    (* the receiver ran to completion: the sequential machine would leave
       this message queued unread, so dropping it is value-equivalent *)
    Mutex.unlock sh.inbox_mutex
  else begin
    Atomic.incr par.coord.in_flight;
    sh.inbox <- { pdst = target; psrc = src; ptag = tag; pmsg = msg } :: sh.inbox;
    Mutex.unlock sh.inbox_mutex;
    let c = par.coord in
    Mutex.lock c.cmutex;
    if c.status.(sh.sid) = 0 then begin
      c.status.(sh.sid) <- 1;
      Queue.add sh.sid c.ready;
      Condition.broadcast c.ccond
    end;
    Mutex.unlock c.cmutex;
    if Pool.worker_count () > 0 then Pool.kick ()
  end

(* Shard (Some par) of the destination when it lives on a different shard
   than the sender; None on every same-shard or sequential send. *)
let cross_shard m (sender : proc) ~dest =
  match m.par with
  | Some par when par.shard_of.(dest) <> sender.shard -> Some par
  | _ -> None

(* Faulty/reliable send — the cold sibling of [send] below.  Timing here may
   legitimately differ from the plain path (that is the point), but the FIFO
   enqueue discipline is identical: per-(src, tag) queues are consumed in
   enqueue order regardless of arrival times, so retransmission delays never
   reorder message matching and a [Reliable] run computes fault-free values.

   Reliable transport is resolved at send time ("virtual retransmission"):
   because every fault decision is a pure function of
   (seed, src, dst, tag, seq, attempt), the sender can walk the attempt
   sequence — attempt [k] is posted after the capped exponential backoff
   sum of attempts [0..k-1], each retransmission charging send overhead and
   wire bytes — until the first attempt that is neither dropped nor
   corruption-flagged, and enqueue one clean copy with that attempt's
   arrival time.  A hard cap of [max_attempts] forces eventual delivery so
   termination never depends on the plan (an adversarial plan otherwise
   could drop every attempt). *)
let max_attempts = 64

let pow2_backoff ~rto ~cap k =
  (* min(cap, rto * 2^k) without float exponentiation *)
  let rec go v i = if i >= k then v else if v >= cap then cap else go (v *. 2.0) (i + 1) in
  Float.min cap (go rto 0)

let send_faulty ctx ~rendezvous ~dest ~tag ~bytes v =
  let m = ctx.m in
  let plan = m.fplan in
  overhead ctx m.c_send_overhead;
  let src = ctx.p.id in
  let hops = Topology.hops m.topology src dest in
  let transit =
    m.c_latency
    +. (float_of_int hops *. m.c_per_hop)
    +. (float_of_int bytes *. m.c_per_byte)
  in
  let seq = ctx.p.next_seq.(dest) in
  ctx.p.next_seq.(dest) <- seq + 1;
  let target = m.procs.(dest) in
  let st = ctx.p.stats in
  st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
  st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
  st.Stats.hop_bytes <- st.Stats.hop_bytes + (bytes * hops);
  let xpar = cross_shard m ctx.p ~dest in
  let enqueue ~arrival ~delivery =
    let tmsg =
      if m.trace_on then
        Trace.record_send m.trace ~src ~dst:dest ~tag ~bytes ~hops
          ~sent:ctx.p.clock ~arrival
      else None
    in
    let msg = { arrival; payload = Obj.repr v; tmsg; seq; delivery } in
    match xpar with
    | None -> Queue.add msg (chan_enqueue_queue target.channels.(src) tag)
    | Some par -> post_cross par ~target ~src ~tag msg
  in
  let wake () =
    match xpar with
    | None -> wake_if_waiting m target ~src ~tag
    | Some _ -> ()
  in
  let record_fault kind =
    if m.trace_on then
      Trace.record_fault m.trace ~kind ~proc:src ~peer:dest ~tag
        ~time:ctx.p.clock ()
  in
  let sender_wait ~arrival =
    if rendezvous || m.sync_comm then begin
      let wait = Float.max 0.0 (arrival -. ctx.p.clock) in
      if m.trace_on then
        Trace.record m.trace ~proc:src ~start:ctx.p.clock ~duration:wait
          Trace.Wait;
      ctx.p.clock <- Float.max ctx.p.clock arrival;
      st.Stats.comm_wait <- st.Stats.comm_wait +. wait
    end
  in
  if m.reliable then begin
    let rto = m.rto_fixed +. (2.0 *. float_of_int bytes *. m.c_per_byte) in
    let cap = 16.0 *. rto in
    let t0 = ctx.p.clock in
    let rec attempt k offset =
      if k >= max_attempts - 1 then (offset, Fault.clean)
      else
        let d =
          if m.faults_on then
            Fault.decision plan ~src ~dst:dest ~tag ~seq ~attempt:k
          else Fault.clean
        in
        if d.Fault.d_drop || d.Fault.d_corrupt then begin
          (* this copy never reaches the receiver intact: the sender times
             out waiting for the ack and retransmits after a backoff *)
          record_fault
            (if d.Fault.d_drop then Trace.Fdrop else Trace.Fcorrupt);
          if d.Fault.d_drop then
            st.Stats.msgs_dropped <- st.Stats.msgs_dropped + 1;
          st.Stats.msgs_retried <- st.Stats.msgs_retried + 1;
          st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
          record_fault Trace.Fretry;
          overhead ctx m.c_send_overhead;
          attempt (k + 1) (offset +. pow2_backoff ~rto ~cap k)
        end
        else (offset, d)
    in
    let offset, d = attempt 0 0.0 in
    if d.Fault.d_delay_factor <> 1.0 then record_fault Trace.Fdelay;
    let arrival = t0 +. offset +. (transit *. d.Fault.d_delay_factor) in
    enqueue ~arrival ~delivery:Clean;
    if d.Fault.d_dup then begin
      record_fault Trace.Fdup;
      enqueue ~arrival ~delivery:Duplicate
    end;
    sender_wait ~arrival;
    wake ()
  end
  else begin
    (* raw faulty mode: the network's misbehaviour reaches the program *)
    let d = Fault.decision plan ~src ~dst:dest ~tag ~seq ~attempt:0 in
    if d.Fault.d_drop then begin
      st.Stats.msgs_dropped <- st.Stats.msgs_dropped + 1;
      record_fault Trace.Fdrop;
      (* the sender cannot tell: under a rendezvous/synchronous link it
         still waits the nominal transit as if delivery had happened; the
         receiver blocks forever and the run surfaces as [Stalled] *)
      sender_wait ~arrival:(ctx.p.clock +. transit)
    end
    else begin
      if d.Fault.d_delay_factor <> 1.0 then record_fault Trace.Fdelay;
      let arrival = ctx.p.clock +. (transit *. d.Fault.d_delay_factor) in
      let delivery =
        if d.Fault.d_corrupt then begin
          record_fault Trace.Fcorrupt;
          Corrupted
        end
        else Clean
      in
      enqueue ~arrival ~delivery;
      if d.Fault.d_dup then begin
        record_fault Trace.Fdup;
        enqueue ~arrival ~delivery:Duplicate
      end;
      sender_wait ~arrival;
      wake ()
    end
  end

let send ctx ?(rendezvous = false) ~dest ~tag ~bytes v =
  let m = ctx.m in
  if dest < 0 || dest >= Array.length m.procs then
    invalid_arg "Machine.send: destination out of range";
  if m.faults_on || m.reliable then
    send_faulty ctx ~rendezvous ~dest ~tag ~bytes v
  else begin
    overhead ctx m.c_send_overhead;
    let hops = Topology.hops m.topology ctx.p.id dest in
    let arrival =
      ctx.p.clock +. m.c_latency
      +. (float_of_int hops *. m.c_per_hop)
      +. (float_of_int bytes *. m.c_per_byte)
    in
    let target = m.procs.(dest) in
    let tmsg =
      if m.trace_on then
        Trace.record_send m.trace ~src:ctx.p.id ~dst:dest ~tag ~bytes ~hops
          ~sent:ctx.p.clock ~arrival
      else None
    in
    let msg = { arrival; payload = Obj.repr v; tmsg; seq = 0; delivery = Clean } in
    let xpar = cross_shard m ctx.p ~dest in
    (match xpar with
     | None ->
         Queue.add msg (chan_enqueue_queue target.channels.(ctx.p.id) tag)
     | Some par -> post_cross par ~target ~src:ctx.p.id ~tag msg);
    let st = ctx.p.stats in
    st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
    st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
    st.Stats.hop_bytes <- st.Stats.hop_bytes + (bytes * hops);
    if rendezvous || m.sync_comm then begin
      (* Rendezvous-style link: the sender is busy until delivery, so no
         communication/computation overlap is possible. *)
      let wait = Float.max 0.0 (arrival -. ctx.p.clock) in
      if m.trace_on then
        Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
          Trace.Wait;
      ctx.p.clock <- arrival;
      st.Stats.comm_wait <- st.Stats.comm_wait +. wait
    end;
    match xpar with
    | None -> wake_if_waiting m target ~src:ctx.p.id ~tag
    | Some _ -> ()
  end

let finish_recv ctx msg =
  let m = ctx.m in
  let wait = Float.max 0.0 (msg.arrival -. ctx.p.clock) in
  if m.trace_on then
    Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
      Trace.Wait;
  ctx.p.clock <- Float.max ctx.p.clock msg.arrival;
  ctx.p.stats.Stats.comm_wait <- ctx.p.stats.Stats.comm_wait +. wait;
  overhead ctx m.c_recv_overhead;
  match msg.tmsg with
  | Some tm -> Trace.mark_received tm ~time:ctx.p.clock
  | None -> ()

(* Receiver-side dedup under [Reliable]: the transport discards a copy whose
   (src, seq) was already accepted.  Returns true when the copy must be
   skipped.  Discarding is free in simulated time (a NIC-level drop); the
   accepted copy pays the ack below. *)
let dedup_discard ctx ~src msg =
  let key = (src, msg.seq) in
  if Hashtbl.mem ctx.p.seen key then true
  else begin
    Hashtbl.add ctx.p.seen key ();
    false
  end

(* The accepted message is acknowledged: the ack transmission costs the
   receiver one send overhead (ack receipt at the sender is folded into the
   virtual-retransmission timeout model). *)
let charge_ack ctx =
  overhead ctx ctx.m.c_send_overhead;
  ctx.p.stats.Stats.acks_sent <- ctx.p.stats.Stats.acks_sent + 1

let recv ctx ~src ~tag =
  let m = ctx.m in
  if src < 0 || src >= Array.length m.procs then
    invalid_arg "Machine.recv: source out of range";
  let c = ctx.p.channels.(src) in
  let rec obtain () =
    match chan_find c tag with
    | Some q when not (Queue.is_empty q) ->
        let msg = Queue.take q in
        if m.reliable && dedup_discard ctx ~src msg then obtain () else msg
    | Some _ | None ->
        ctx.p.waiting <- Some (Exact (src, tag));
        Scheduler.block m.sched;
        obtain ()
  in
  let msg = obtain () in
  ctx.p.waiting <- None;
  finish_recv ctx msg;
  if m.reliable then charge_ack ctx;
  Obj.obj msg.payload

(* Per-link lookahead: a lower bound on the transit time of any *future*
   message from [src] into this processor.  Transit is
   latency + hops * per_hop + bytes * per_byte, all terms non-negative, so
   dropping the bytes term gives a sound bound; a fault plan's delay spikes
   multiply transit by [d_delay_factor], hence the [min_delay_factor]
   scaling (reliable-mode backoffs only ever push arrivals later). *)
let lookahead_row ctx =
  let p = ctx.p in
  if p.lookahead_row == [||] then begin
    let m = ctx.m in
    p.lookahead_row <-
      Array.init
        (Array.length m.procs)
        (fun src ->
          (m.c_latency
          +. (float_of_int (Topology.hops m.topology src p.id) *. m.c_per_hop))
          *. m.min_delay_factor)
  end;
  p.lookahead_row

(* Conservative-commit test for [recv_any]: may the head candidate with
   arrival time [arrival] be accepted now?  Yes iff no processor can still
   produce a message for us that arrives at or before [arrival]: for every
   other unfinished processor [o], lb(o) + L(o -> me) must exceed [arrival]
   *strictly*, where lb(o) is a lower bound on o's clock — its actual clock
   in the sequential engine and for shard-mates, the owning shard's
   published idle bound otherwise (stale reads only lower it, which is
   conservative).  Under sharding, a message posted to our mailbox but not
   yet drained could also beat [arrival], so the mailbox is checked too.
   Strictness makes the winner independent of which bounds we happened to
   observe: a message that could tie on arrival never invalidates the
   commit, because a tie is exactly what the strict test rejects —
   commits only happen when the present head beats every possible future
   outright, so sequential and sharded runs (any shard count) pick the
   same winner. *)
let recv_any_safe ctx ~tag ~arrival =
  let m = ctx.m in
  let p = ctx.p in
  let row = lookahead_row ctx in
  let n = Array.length m.procs in
  let ok = ref true in
  let o = ref 0 in
  while !ok && !o < n do
    let q = m.procs.(!o) in
    if !o <> p.id && not q.finished_p then begin
      let lb =
        match m.par with
        | None -> q.clock
        | Some par ->
            if q.shard = p.shard then q.clock else par.shards.(q.shard).lb
      in
      if not (lb +. row.(!o) > arrival) then ok := false
    end;
    incr o
  done;
  !ok
  &&
  match m.par with
  | None -> true
  | Some par ->
      let sh = par.shards.(p.shard) in
      Mutex.lock sh.inbox_mutex;
      let pending =
        List.exists (fun po -> po.pdst == p && po.ptag = tag) sh.inbox
      in
      Mutex.unlock sh.inbox_mutex;
      not pending

let recv_any ctx ~tag =
  let m = ctx.m in
  (* deterministic choice: earliest arrival, then lowest source rank (the
     ascending scan with a strict comparison implements the tie-break) *)
  let best () =
    let channels = ctx.p.channels in
    let best_src = ref (-1) and best_q = ref None and best_arrival = ref 0.0 in
    for src = 0 to Array.length channels - 1 do
      match chan_find channels.(src) tag with
      | Some q when not (Queue.is_empty q) ->
          let msg = Queue.peek q in
          if !best_src < 0 || msg.arrival < !best_arrival then begin
            best_src := src;
            best_q := Some q;
            best_arrival := msg.arrival
          end
      | Some _ | None -> ()
    done;
    match !best_q with Some q -> Some (!best_src, q) | None -> None
  in
  (* Commit the head candidate only when the lookahead test proves no
     earlier message can still appear; otherwise park until either a new
     arrival wakes us or — at global idle, when nothing anywhere can run
     and (under sharding) no message is in flight — the machine grants the
     lowest-ranked parked receiver with a candidate ([any_grant]).  The
     grant can only fire when the candidate set is final, so both paths
     pick the same deterministic winner in the sequential engine and for
     every shard count. *)
  let rec obtain () =
    match best () with
    | Some (src, q)
      when ctx.p.any_grant
           || recv_any_safe ctx ~tag ~arrival:(Queue.peek q).arrival ->
        ctx.p.any_grant <- false;
        let msg = Queue.take q in
        if m.reliable && dedup_discard ctx ~src msg then obtain ()
        else (src, msg)
    | Some _ | None ->
        ctx.p.waiting <- Some (Any_source tag);
        Scheduler.block (sched_of m ctx.p);
        obtain ()
  in
  let src, msg = obtain () in
  ctx.p.waiting <- None;
  finish_recv ctx msg;
  if m.reliable then charge_ack ctx;
  (src, Obj.obj msg.payload)

let sendrecv ctx ~dest ~src ~tag ~bytes v =
  send ctx ~dest ~tag ~bytes v;
  recv ctx ~src ~tag

let collective_locked m idx f =
  match Hashtbl.find_opt m.collectives idx with
  | Some (v, remaining) ->
      decr remaining;
      if !remaining = 0 then Hashtbl.remove m.collectives idx;
      Obj.obj v
  | None ->
      let v = f () in
      let consumers = Array.length m.procs - 1 in
      if consumers > 0 then
        Hashtbl.add m.collectives idx (Obj.repr v, ref consumers);
      v

let collective ctx f =
  let m = ctx.m in
  let idx = ctx.p.coll_count in
  ctx.p.coll_count <- idx + 1;
  match m.par with
  | None -> collective_locked m idx f
  | Some par ->
      (* the deposit table (and [next_tag], mutated by [tags]'s thunk) is
         shared across shards; [f] must be rank-independent by the
         collective contract, so running it under the lock is safe *)
      Mutex.lock par.cmx;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock par.cmx)
        (fun () -> collective_locked m idx f)

let tags ctx n =
  collective ctx (fun () ->
      let t = ctx.m.next_tag in
      ctx.m.next_tag <- ctx.m.next_tag + n;
      t)

let describe_blocked (p : proc) =
  match p.waiting with
  | Some (Exact (s, t)) ->
      Printf.sprintf "waiting on recv from p%d, tag %d (clock %.6f s)" s t
        p.clock
  | Some (Any_source t) ->
      Printf.sprintf "waiting on recv from any source, tag %d (clock %.6f s)"
        t p.clock
  | None -> Printf.sprintf "blocked (clock %.6f s)" p.clock

(* ------------------------------------------------------------------ *)
(* Shard driver                                                        *)

(* Refresh the shard's published clock lower bound.  Called only by the
   domain currently running the shard, just before it goes idle or done;
   the minimum member clock is non-decreasing between idles, so racy
   readers see a monotone (hence sound) bound. *)
let publish_lb sh =
  sh.lb <-
    Array.fold_left
      (fun acc (p : proc) ->
        if p.finished_p then acc else Float.min acc p.clock)
      infinity sh.smembers

(* Move posted messages into the destination processors' channel queues and
   wake receivers.  Runs on the domain that owns the shard right now, so
   the queue mutations are single-threaded. *)
let drain_shard m par sh =
  Mutex.lock sh.inbox_mutex;
  let posts = sh.inbox in
  sh.inbox <- [];
  Mutex.unlock sh.inbox_mutex;
  match posts with
  | [] -> ()
  | posts ->
      let posts = List.rev posts in
      ignore
        (Atomic.fetch_and_add par.coord.in_flight (-List.length posts) : int);
      List.iter
        (fun po ->
          Queue.add po.pmsg
            (chan_enqueue_queue po.pdst.channels.(po.psrc) po.ptag);
          wake_if_waiting m po.pdst ~src:po.psrc ~tag:po.ptag)
        posts

let has_msg (p : proc) tag =
  let n = Array.length p.channels in
  let rec go src =
    src < n
    &&
    match chan_find p.channels.(src) tag with
    | Some q when not (Queue.is_empty q) -> true
    | Some _ | None -> go (src + 1)
  in
  go 0

(* Global idle: nothing can run, so the candidate set of every parked
   [recv_any] is final.  Grant the lowest-ranked parked receiver that has a
   deliverable message — the same winner the eager lookahead commit would
   have picked had it been able to prove safety — and return it; [None]
   means the machine is stalled for good.  Shared by the sequential
   engine's deadlock recovery and the shard coordinator's quiescence. *)
let grant_any m =
  let n = Array.length m.procs in
  let rec go r =
    if r >= n then None
    else
      let p = m.procs.(r) in
      match p.waiting with
      | Some (Any_source tag) when has_msg p tag ->
          p.any_grant <- true;
          p.waiting <- None;
          Scheduler.wake (sched_of m p) p.fid;
          Some p
      | _ -> go (r + 1)
  in
  go 0

(* Every shard idle, nothing queued, no message between mailboxes: grant
   one parked [recv_any] and mark its shard ready, or record the stall.
   Called with [cmutex] held. *)
let resolve_quiescence m par =
  let c = par.coord in
  match grant_any m with
  | Some p ->
      c.status.(p.shard) <- 1;
      Queue.add p.shard c.ready;
      if Pool.worker_count () > 0 then Pool.kick ()
  | None ->
      let blocked =
        Array.to_list m.procs
        |> List.filter_map (fun (p : proc) ->
               if p.finished_p then None
               else Some (p.id, describe_blocked p))
      in
      c.failure <- Some (Stalled blocked, Printexc.get_callstack 0)

(* [cmutex] held.  [in_flight] is read last: a poster increments it before
   its shard could possibly go idle (the poster *is* a running shard), so
   "running = 0 and ready empty and in_flight = 0" really means no work
   exists anywhere. *)
let maybe_quiesce m par =
  let c = par.coord in
  if
    c.running = 0
    && Queue.is_empty c.ready
    && c.live > 0
    && Atomic.get c.in_flight = 0
    && c.failure = None
  then resolve_quiescence m par

(* Run one claimed shard (status 2) until it finishes or goes idle.  The
   idle transition publishes status 0 *before* re-checking the inbox so a
   racing poster either sees idle (and marks us ready) or its post is seen
   by the re-check — no lost wakeups. *)
let rec run_shard m par sid =
  let sh = par.shards.(sid) in
  let c = par.coord in
  drain_shard m par sh;
  Scheduler.run_until_idle sh.sched;
  if Scheduler.all_finished sh.sched then begin
    Mutex.lock sh.inbox_mutex;
    sh.sdone <- true;
    let leftover = List.length sh.inbox in
    sh.inbox <- [];
    Mutex.unlock sh.inbox_mutex;
    if leftover > 0 then
      ignore (Atomic.fetch_and_add c.in_flight (-leftover) : int);
    sh.lb <- infinity;
    Mutex.lock c.cmutex;
    c.status.(sid) <- 3;
    c.live <- c.live - 1;
    c.running <- c.running - 1;
    maybe_quiesce m par;
    Condition.broadcast c.ccond;
    Mutex.unlock c.cmutex
  end
  else begin
    publish_lb sh;
    Mutex.lock c.cmutex;
    c.status.(sid) <- 0;
    c.running <- c.running - 1;
    Mutex.unlock c.cmutex;
    Mutex.lock sh.inbox_mutex;
    let empty = sh.inbox = [] in
    Mutex.unlock sh.inbox_mutex;
    if not empty then begin
      (* a post landed during the idle transition; if its sender saw us
         still running it did not mark us ready, so re-claim ourselves *)
      Mutex.lock c.cmutex;
      let reclaim = c.status.(sid) = 0 && c.failure = None in
      if reclaim then begin
        c.status.(sid) <- 2;
        c.running <- c.running + 1
      end;
      Mutex.unlock c.cmutex;
      if reclaim then run_shard m par sid
    end
    else begin
      Mutex.lock c.cmutex;
      maybe_quiesce m par;
      Condition.broadcast c.ccond;
      Mutex.unlock c.cmutex
    end
  end

(* Worker/driver entry: run a shard, converting an escaping exception into
   a recorded failure so every domain winds down instead of hanging. *)
let exec_shard m par sid =
  try run_shard m par sid
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    let sh = par.shards.(sid) in
    let c = par.coord in
    Mutex.lock sh.inbox_mutex;
    sh.sdone <- true;
    sh.inbox <- [];
    Mutex.unlock sh.inbox_mutex;
    sh.lb <- infinity;
    Mutex.lock c.cmutex;
    if c.failure = None then c.failure <- Some (e, bt);
    c.status.(sid) <- 3;
    c.live <- c.live - 1;
    c.running <- c.running - 1;
    Condition.broadcast c.ccond;
    Mutex.unlock c.cmutex

(* Drive a sharded machine to completion.  The calling domain always works;
   Pool crew workers (if any) claim ready shards through a registered work
   source.  A shard is a unit of work — its fibers' continuations may hop
   between domains across idle periods, but only one domain runs a given
   shard at a time (the status word enforces it). *)
let run_sharded m par values f =
  (* the topology's hop tables (and the Coll_alg predictor tables built
     from them) are published read-only to every domain; pin the
     no-mutation-after-publication contract *)
  let topo_digest = Topology.digest m.topology in
  let n = Array.length m.procs in
  for id = 0 to n - 1 do
    let p = m.procs.(id) in
    let sid = par.shard_of.(id) in
    p.shard <- sid;
    let ctx = Sim { m; p } in
    p.fid <-
      Scheduler.spawn par.shards.(sid).sched (fun () ->
          values.(id) <- Some (f ctx);
          p.finished_p <- true)
  done;
  let c = par.coord in
  for sid = 0 to par.nshards - 1 do
    Queue.add sid c.ready (* statuses start at 1 (ready) *)
  done;
  let workers = Pool.ensure_workers (par.nshards - 1) in
  let claim () =
    Mutex.lock c.cmutex;
    let r =
      if c.failure <> None then None
      else
        match Queue.take_opt c.ready with
        | Some sid ->
            assert (c.status.(sid) = 1);
            c.status.(sid) <- 2;
            c.running <- c.running + 1;
            Some sid
        | None -> None
    in
    Mutex.unlock c.cmutex;
    r
  in
  let source =
    if workers > 0 then
      Some
        (Pool.register_source ~poll:(fun () ->
             match claim () with
             | Some sid -> Some (fun () -> exec_shard m par sid)
             | None -> None))
    else None
  in
  let rec drive () =
    match claim () with
    | Some sid ->
        exec_shard m par sid;
        drive ()
    | None ->
        Mutex.lock c.cmutex;
        let done_ = c.live = 0 || c.failure <> None in
        if (not done_) && Queue.is_empty c.ready then
          Condition.wait c.ccond c.cmutex;
        Mutex.unlock c.cmutex;
        if not done_ then drive ()
  in
  drive ();
  (match source with Some s -> Pool.unregister_source s | None -> ());
  assert (Topology.digest m.topology = topo_digest);
  (* on clean completion the last done-transition (under cmutex) happened
     before our exit from [drive], so all member state is visible here *)
  match c.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run ?(cost = Cost_model.default) ?(trace = false) ?faults
    ?(reliable = false) ?(collectives = Coll_alg.Legacy) ?(sim_domains = 1)
    ?cancel ~topology f =
  if sim_domains < 1 then
    invalid_arg "Machine.run: sim_domains must be >= 1";
  let n = Topology.nprocs topology in
  let nshards = min sim_domains n in
  let sched = Scheduler.create () in
  let params = cost.Cost_model.params in
  let cf = cost.Cost_model.profile.Cost_model.comm_factor in
  let faults_on = faults <> None in
  let fplan =
    match faults with Some p -> p | None -> Fault.none ~seed:0
  in
  let faulty = faults_on || reliable in
  let c_latency = cf *. params.Cost_model.msg_latency in
  let c_per_hop = cf *. params.Cost_model.per_hop in
  (* retransmission timeout ~ a round trip across the network diameter; the
     per-message bytes term is added at send time *)
  let rto_fixed =
    if reliable then begin
      let diam = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          diam := max !diam (Topology.hops topology i j)
        done
      done;
      2.0 *. (c_latency +. (float_of_int !diam *. c_per_hop))
    end
    else 0.0
  in
  let stalls_for id =
    if not faults_on then []
    else
      List.filter (fun (p, _) -> p = id) fplan.Fault.stalls
      |> List.map snd
      |> List.sort (fun a b -> compare a.Fault.stall_at b.Fault.stall_at)
  in
  let crashes_for id =
    if not faults_on then []
    else
      List.filter (fun (p, _) -> p = id) fplan.Fault.crashes
      |> List.map snd |> List.sort compare
  in
  let procs =
    Array.init n (fun id ->
        {
          id;
          clock = 0.0;
          channels = Array.init n (fun _ -> chan_create ());
          waiting = None;
          coll_count = 0;
          span_stack = [];
          stats = Stats.fresh_proc ();
          next_seq = (if faulty then Array.make n 0 else [||]);
          seen = Hashtbl.create (if reliable then 64 else 1);
          pending_stalls = stalls_for id;
          pending_crashes = crashes_for id;
          shard = 0;
          fid = id;
          finished_p = false;
          any_grant = false;
          lookahead_row = [||];
        })
  in
  let par =
    if nshards <= 1 then None
    else begin
      let shard_of = Array.make n 0 in
      let base = n / nshards and rem = n mod nshards in
      let lo = ref 0 in
      let shards =
        Array.init nshards (fun sid ->
            let size = base + if sid < rem then 1 else 0 in
            let l = !lo in
            lo := l + size;
            for id = l to l + size - 1 do
              shard_of.(id) <- sid
            done;
            {
              sid;
              sched = Scheduler.create ();
              smembers = Array.sub procs l size;
              inbox_mutex = Mutex.create ();
              inbox = [];
              sdone = false;
              lb = 0.0;
            })
      in
      Some
        {
          nshards;
          shard_of;
          shards;
          coord =
            {
              cmutex = Mutex.create ();
              ccond = Condition.create ();
              ready = Queue.create ();
              status = Array.make nshards 1;
              live = nshards;
              running = 0;
              in_flight = Atomic.make 0;
              failure = None;
            };
          cmx = Mutex.create ();
        }
    end
  in
  let m =
    {
      topology;
      cost;
      procs;
      sched;
      collectives = Hashtbl.create 16;
      next_tag = 0;
      trace = Trace.create ~enabled:trace ~nprocs:n;
      trace_on = trace;
      c_send_overhead = cf *. params.Cost_model.send_overhead;
      c_recv_overhead = cf *. params.Cost_model.recv_overhead;
      c_latency;
      c_per_hop;
      c_per_byte = cf *. params.Cost_model.per_byte;
      sync_comm = cost.Cost_model.profile.Cost_model.sync_comm;
      c_scalar_factor =
        Cost_model.factor cost.Cost_model.profile Cost_model.Scalar;
      fplan;
      faults_on;
      reliable;
      rto_fixed;
      coll_mode = collectives;
      coll_legacy = (collectives = Coll_alg.Legacy);
      coll_net =
        (if collectives = Coll_alg.Legacy then None
         else
           Some
             (Coll_alg.net_of topology ~latency:c_latency ~per_hop:c_per_hop
                ~per_byte:(cf *. params.Cost_model.per_byte)
                ~send_ovh:(cf *. params.Cost_model.send_overhead)
                ~recv_ovh:(cf *. params.Cost_model.recv_overhead)));
      par;
      cancel = (match cancel with Some f -> f | None -> fun () -> false);
      cancel_on = cancel <> None;
      min_delay_factor =
        (if faults_on && fplan.Fault.link.Fault.delay > 0.0 then
           Float.min 1.0 fplan.Fault.link.Fault.delay_factor
         else 1.0);
    }
  in
  let stats =
    { Stats.procs = Array.map (fun (p : proc) -> p.stats) m.procs;
      makespan = 0.0 }
  in
  Scheduler.set_describer sched (fun id ->
      if id >= 0 && id < n then Some (describe_blocked m.procs.(id)) else None);
  let values = Array.make n None in
  (match par with
  | None ->
      for id = 0 to n - 1 do
        let p = m.procs.(id) in
        let ctx = Sim { m; p } in
        p.fid <-
          Scheduler.spawn sched (fun () ->
              values.(id) <- Some (f ctx);
              p.finished_p <- true)
      done;
      (* a "deadlock" with a grantable [recv_any] is just global idle: the
         candidate set is final, so grant the winner and keep running *)
      let rec drive () =
        try Scheduler.run sched
        with Scheduler.Deadlock blocked -> (
          match grant_any m with
          | Some _ -> drive ()
          | None ->
              raise
                (Stalled
                   (List.map
                      (fun (id, d) -> (id, Option.value d ~default:"blocked"))
                      blocked)))
      in
      drive ()
  | Some par -> run_sharded m par values f);
  let makespan =
    Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 m.procs
  in
  stats.Stats.makespan <- makespan;
  let values =
    Array.map
      (function Some v -> v | None -> failwith "Machine.run: missing result")
      values
  in
  { values; time = makespan; stats; trace = m.trace }

(* ------------------------------------------------------------------ *)
(* Engine dispatch.

   Everything above this line operates on the simulator context [sctx];
   the shadowing wrappers below accept the public [ctx] and route each
   call to the simulator or to the {!Native} backend.  Cost charging,
   crash protection and trace spans are simulator concepts: under the
   native engine they are no-ops (native runs report wall-clock time and
   message counts, nothing else), except [charge_skeleton_call], which
   still counts the invocation in [Stats]. *)

let self = function Sim c -> self c | Native c -> Native.self c
let nprocs = function Sim c -> nprocs c | Native c -> Native.nprocs c
let topology = function Sim c -> topology c | Native c -> Native.topology c
let cost = function Sim c -> cost c | Native c -> Native.cost c
let profile = function Sim c -> profile c | Native c -> Native.profile c
let clock = function Sim c -> clock c | Native c -> Native.clock c

let checkpoint_default = function
  | Sim c -> checkpoint_default c
  | Native _ -> false

let coll_mode = function Sim c -> coll_mode c | Native c -> Native.coll_mode c

let coll_legacy = function
  | Sim c -> coll_legacy c
  | Native c -> Native.coll_legacy c

let coll_net = function Sim c -> coll_net c | Native c -> Native.coll_net c

let record_collective ctx ~name ~bytes =
  match ctx with
  | Sim c -> record_collective c ~name ~bytes
  | Native c -> Native.record_collective c ~name ~bytes

(* The native arms of the charge family poll cancellation instead of
   charging: they are the per-statement hooks of the language engines, so
   this is what keeps a compute-bound native job reapable by the service
   watchdog. *)
let compute ctx seconds =
  match ctx with Sim c -> compute c seconds | Native c -> Native.poll_cancel c

let charge ctx cls ~ops ~base =
  match ctx with
  | Sim c -> charge c cls ~ops ~base
  | Native c -> Native.poll_cancel c

let charge_scalar_nodes ctx ~ops =
  match ctx with
  | Sim c -> charge_scalar_nodes c ~ops
  | Native c -> Native.poll_cancel c

let charge_skeleton_call = function
  | Sim c -> charge_skeleton_call c
  | Native c -> Native.charge_skeleton_call c

let charge_copy ctx ~bytes =
  match ctx with Sim c -> charge_copy c ~bytes | Native _ -> ()

let protect ctx ~bytes ~snapshot ~restore f =
  match ctx with
  | Sim c -> protect c ~bytes ~snapshot ~restore f
  | Native _ -> f ()

let span_begin ctx ~cat name =
  match ctx with Sim c -> span_begin c ~cat name | Native _ -> ()

let span_end = function Sim c -> span_end c | Native _ -> ()

let with_span ctx ~cat name f =
  match ctx with
  | Sim c -> with_span c ~cat name f
  | Native _ -> f ()

let send ctx ?(rendezvous = false) ~dest ~tag ~bytes v =
  match ctx with
  | Sim c -> send c ~rendezvous ~dest ~tag ~bytes v
  | Native c -> Native.send c ~rendezvous ~dest ~tag ~bytes v

let recv ctx ~src ~tag =
  match ctx with
  | Sim c -> recv c ~src ~tag
  | Native c -> Native.recv c ~src ~tag

let recv_any ctx ~tag =
  match ctx with
  | Sim c -> recv_any c ~tag
  | Native c -> Native.recv_any c ~tag

let sendrecv ctx ~dest ~src ~tag ~bytes v =
  match ctx with
  | Sim c -> sendrecv c ~dest ~src ~tag ~bytes v
  | Native c -> Native.sendrecv c ~dest ~src ~tag ~bytes v

let collective ctx f =
  match ctx with
  | Sim c -> collective c f
  | Native c -> Native.collective c f

let tags ctx n =
  match ctx with Sim c -> tags c n | Native c -> Native.tags c n

(* Run the program on the native backend and convert its result to the
   common shape: [time] is wall-clock seconds, the trace is empty. *)
let run_native ?cost ?collectives ?chan_cap ?domains ?cancel ~topology f =
  let n = Topology.nprocs topology in
  match
    Native.run ?cost ?collectives ?chan_cap ?domains ?cancel ~topology
      (fun c -> f (Native c))
  with
  | r ->
      {
        values = r.Native.nvalues;
        time = r.Native.wall;
        stats = r.Native.nstats;
        trace = Trace.create ~enabled:false ~nprocs:n;
      }
  | exception Native.Stalled blocked -> raise (Stalled blocked)
