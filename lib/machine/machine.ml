type delivery = Clean | Corrupted | Duplicate

type message = {
  arrival : float;
  payload : Obj.t;
  tmsg : Trace.message option; (* trace record, completed on delivery *)
  seq : int; (* per-(src,dst) sequence number; 0 on the fault-free path *)
  delivery : delivery;
}

type waiting = Exact of int * int | Any_source of int

(* Per-source channel: a small tag-bucketed vector of FIFO queues.  At any
   moment only a handful of tags are live between a pair of processors, so a
   linear scan beats a hashtable — and avoids allocating a boxed (src, tag)
   key per message, which dominated the send/recv hot path. *)
type chan = {
  mutable tags : int array;
  mutable queues : message Queue.t array;
  mutable nbuckets : int;
}

type proc = {
  id : int;
  mutable clock : float;
  channels : chan array; (* indexed by source rank *)
  mutable waiting : waiting option;
  mutable coll_count : int; (* collective call sites reached so far *)
  mutable span_stack : Trace.span list; (* open trace spans, innermost first *)
  stats : Stats.proc;
  (* fault state — allocated/nonempty only when a plan or reliable mode is
     active, untouched on the fault-free path *)
  next_seq : int array; (* per-destination sequence counters; [||] when off *)
  seen : (int * int, unit) Hashtbl.t; (* (src, seq) dedup under Reliable *)
  mutable pending_stalls : Fault.stall list; (* sorted by stall_at *)
  mutable pending_crashes : float list; (* sorted crash times *)
}

type t = {
  topology : Topology.t;
  cost : Cost_model.t;
  procs : proc array;
  sched : Scheduler.t;
  collectives : (int, Obj.t * int ref) Hashtbl.t;
  mutable next_tag : int;
  trace : Trace.t;
  trace_on : bool; (* cached Trace.enabled: skips the call (and the float
                      boxing of its arguments) on every clock advance *)
  (* communication coefficients with the profile's comm_factor pre-applied,
     hoisted out of the per-message path *)
  c_send_overhead : float;
  c_recv_overhead : float;
  c_latency : float;
  c_per_hop : float;
  c_per_byte : float;
  sync_comm : bool;
  c_scalar_factor : float;
      (* the profile's Scalar factor, hoisted out of the per-statement
         flush path of the language engines *)
  (* fault-injection state, all gated behind the cached booleans below so the
     fault-free hot path pays one dead branch per send/recv/compute *)
  fplan : Fault.plan; (* Fault.none when no plan was given *)
  faults_on : bool; (* a plan was given *)
  reliable : bool; (* Reliable transport mode *)
  rto_fixed : float; (* retransmission timeout, bytes-independent part *)
  (* collective-algorithm selection (Coll_alg): Legacy keeps the seed's
     binomial-tree code paths untouched; the net summary is only built for
     the algorithm-selecting modes *)
  coll_mode : Coll_alg.mode;
  coll_legacy : bool; (* cached [coll_mode = Legacy] *)
  coll_net : Coll_alg.net option; (* Some iff not coll_legacy *)
}

type ctx = { m : t; p : proc }

type 'r result = {
  values : 'r array;
  time : float;
  stats : Stats.t;
  trace : Trace.t;
}

exception Stalled of (int * string) list

let stall_diagnostic blocked =
  let b = Buffer.create 128 in
  Buffer.add_string b
    "machine stalled: no processor is runnable, but these are blocked:\n";
  List.iter
    (fun (id, d) -> Buffer.add_string b (Printf.sprintf "  p%-3d %s\n" id d))
    blocked;
  Buffer.add_string b
    "(a dropped message under --faults without --reliable, or a genuine \
     program deadlock)";
  Buffer.contents b

let self ctx = ctx.p.id
let nprocs ctx = Array.length ctx.m.procs
let topology ctx = ctx.m.topology
let cost ctx = ctx.m.cost
let profile ctx = ctx.m.cost.Cost_model.profile
let clock ctx = ctx.p.clock
let checkpoint_default ctx = ctx.m.faults_on && ctx.m.fplan.Fault.checkpoint
let coll_mode ctx = ctx.m.coll_mode
let coll_legacy ctx = ctx.m.coll_legacy

let coll_net ctx =
  match ctx.m.coll_net with
  | Some n -> n
  | None -> invalid_arg "Machine.coll_net: Legacy collectives mode"

let record_collective ctx ~name ~bytes =
  Stats.count_collective ctx.p.stats ~name ~bytes

(* An injected transient stall freezes the processor at its first
   clock-advancing action at or after the scheduled time.  Checked (behind
   [faults_on]) at the top of [compute] and [overhead]; receive waits are
   already idle time, so stalling there would be unobservable. *)
let rec apply_stalls ctx =
  match ctx.p.pending_stalls with
  | s :: rest when s.Fault.stall_at <= ctx.p.clock ->
      ctx.p.pending_stalls <- rest;
      if ctx.m.trace_on then begin
        Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
          ~duration:s.Fault.stall_for Trace.Stall;
        Trace.record_fault ctx.m.trace ~kind:Trace.Fstall ~proc:ctx.p.id
          ~time:ctx.p.clock ()
      end;
      ctx.p.clock <- ctx.p.clock +. s.Fault.stall_for;
      ctx.p.stats.Stats.stall_time <-
        ctx.p.stats.Stats.stall_time +. s.Fault.stall_for;
      apply_stalls ctx
  | _ -> ()

let compute ctx seconds =
  assert (seconds >= 0.0);
  if ctx.m.faults_on then apply_stalls ctx;
  if ctx.m.trace_on then
    Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
      ~duration:seconds Trace.Compute;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.compute_time <- ctx.p.stats.Stats.compute_time +. seconds

let charge ctx cls ~ops ~base =
  if ops > 0 then begin
    if ctx.m.trace_on then
      (match ctx.p.span_stack with
       | s :: _ -> Trace.span_add_ops s cls ops
       | [] -> ());
    compute ctx (float_of_int ops *. base *. Cost_model.factor (profile ctx) cls)
  end

(* Fast path for the Skil engines' per-statement scalar flush: same math as
   [charge ctx Scalar ~ops ~base:Calibration.scalar_node_op] (same operand
   order, so simulated clocks stay bit-identical), with the factor lookup
   hoisted to machine construction. *)
let charge_scalar_nodes ctx ~ops =
  if ops > 0 then begin
    if ctx.m.trace_on then
      (match ctx.p.span_stack with
       | s :: _ -> Trace.span_add_ops s Cost_model.Scalar ops
       | [] -> ());
    compute ctx
      (float_of_int ops *. Calibration.scalar_node_op
      *. ctx.m.c_scalar_factor)
  end

let overhead ctx seconds =
  if ctx.m.faults_on then apply_stalls ctx;
  if ctx.m.trace_on then
    Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
      ~duration:seconds Trace.Overhead;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.overhead_time <-
    ctx.p.stats.Stats.overhead_time +. seconds

let charge_skeleton_call ctx =
  ctx.p.stats.Stats.skeleton_calls <- ctx.p.stats.Stats.skeleton_calls + 1;
  overhead ctx (profile ctx).Cost_model.skeleton_call

let charge_copy ctx ~bytes =
  compute ctx (float_of_int bytes *. Calibration.copy_per_byte)

(* Checkpoint-protected region: fail-stop crash recovery.

   [f] must be a local, communication-free computation whose effects are
   confined to state captured by [snapshot]/[restore] (the skeleton layer
   wraps the per-partition loops of map/fold/gen_mult).  When the plan
   schedules a crash on this processor, the first protected region whose end
   clock reaches the crash time loses its work: the snapshot is restored
   (both copies charged through the cost model), the reboot penalty is
   charged, and the region re-executes.  With no crash pending the region
   runs with zero overhead — fault-free runs never snapshot. *)
let protect ctx ~bytes ~snapshot ~restore f =
  let m = ctx.m in
  if (not m.faults_on) || ctx.p.pending_crashes = [] then f ()
  else begin
    let snap = snapshot () in
    charge_copy ctx ~bytes;
    let rec attempt () =
      let r = f () in
      match ctx.p.pending_crashes with
      | tc :: rest when tc <= ctx.p.clock ->
          ctx.p.pending_crashes <- rest;
          if m.trace_on then
            Trace.record_fault m.trace ~kind:Trace.Fcrash ~proc:ctx.p.id
              ~time:ctx.p.clock ();
          ctx.p.stats.Stats.recoveries <- ctx.p.stats.Stats.recoveries + 1;
          overhead ctx m.fplan.Fault.reboot;
          restore snap;
          charge_copy ctx ~bytes;
          attempt ()
      | _ -> r
    in
    attempt ()
  end

(* Span brackets: zero simulated cost, recorded only when tracing. *)

let span_begin ctx ~cat name =
  if ctx.m.trace_on then
    ctx.p.span_stack <-
      Trace.span_begin ctx.m.trace ~proc:ctx.p.id ~cat ~name
        ~start:ctx.p.clock
      :: ctx.p.span_stack

let span_end ctx =
  if ctx.m.trace_on then
    match ctx.p.span_stack with
    | s :: rest ->
        Trace.span_end s ~stop:ctx.p.clock;
        ctx.p.span_stack <- rest
    | [] -> ()

let with_span ctx ~cat name f =
  span_begin ctx ~cat name;
  let r = f () in
  span_end ctx;
  r

(* ------------------------------------------------------------------ *)
(* Channel buckets                                                     *)

let chan_create () = { tags = [||]; queues = [||]; nbuckets = 0 }

(* Queue holding messages for [tag], or None.  An empty queue is
   indistinguishable from an absent one to receivers. *)
let chan_find c tag =
  let rec go i =
    if i >= c.nbuckets then None
    else if c.tags.(i) = tag then Some c.queues.(i)
    else go (i + 1)
  in
  go 0

(* Queue to enqueue into for [tag]: reuse the bucket already carrying the
   tag, else repurpose a drained bucket (tags only grow, so an empty queue's
   old tag can never see traffic again from this source in FIFO order —
   and even if it did, an empty bucket behaves exactly like a missing one),
   else append a fresh bucket. *)
let chan_enqueue_queue c tag =
  let rec go i free =
    if i >= c.nbuckets then
      match free with
      | Some j ->
          c.tags.(j) <- tag;
          c.queues.(j)
      | None ->
          if c.nbuckets = Array.length c.tags then begin
            let cap = max 4 (2 * c.nbuckets) in
            let tags = Array.make cap 0 in
            Array.blit c.tags 0 tags 0 c.nbuckets;
            let queues =
              Array.init cap (fun k ->
                  if k < c.nbuckets then c.queues.(k) else Queue.create ())
            in
            c.tags <- tags;
            c.queues <- queues
          end;
          let j = c.nbuckets in
          c.nbuckets <- j + 1;
          c.tags.(j) <- tag;
          c.queues.(j)
    else if c.tags.(i) = tag then c.queues.(i)
    else if free = None && Queue.is_empty c.queues.(i) then go (i + 1) (Some i)
    else go (i + 1) free
  in
  go 0 None

(* ------------------------------------------------------------------ *)

let wake_if_waiting m target ~src ~tag =
  match target.waiting with
  | Some (Exact (s, t)) when s = src && t = tag ->
      target.waiting <- None;
      Scheduler.wake m.sched target.id
  | Some (Any_source t) when t = tag ->
      target.waiting <- None;
      Scheduler.wake m.sched target.id
  | Some _ | None -> ()

(* Faulty/reliable send — the cold sibling of [send] below.  Timing here may
   legitimately differ from the plain path (that is the point), but the FIFO
   enqueue discipline is identical: per-(src, tag) queues are consumed in
   enqueue order regardless of arrival times, so retransmission delays never
   reorder message matching and a [Reliable] run computes fault-free values.

   Reliable transport is resolved at send time ("virtual retransmission"):
   because every fault decision is a pure function of
   (seed, src, dst, tag, seq, attempt), the sender can walk the attempt
   sequence — attempt [k] is posted after the capped exponential backoff
   sum of attempts [0..k-1], each retransmission charging send overhead and
   wire bytes — until the first attempt that is neither dropped nor
   corruption-flagged, and enqueue one clean copy with that attempt's
   arrival time.  A hard cap of [max_attempts] forces eventual delivery so
   termination never depends on the plan (an adversarial plan otherwise
   could drop every attempt). *)
let max_attempts = 64

let pow2_backoff ~rto ~cap k =
  (* min(cap, rto * 2^k) without float exponentiation *)
  let rec go v i = if i >= k then v else if v >= cap then cap else go (v *. 2.0) (i + 1) in
  Float.min cap (go rto 0)

let send_faulty ctx ~rendezvous ~dest ~tag ~bytes v =
  let m = ctx.m in
  let plan = m.fplan in
  overhead ctx m.c_send_overhead;
  let src = ctx.p.id in
  let hops = Topology.hops m.topology src dest in
  let transit =
    m.c_latency
    +. (float_of_int hops *. m.c_per_hop)
    +. (float_of_int bytes *. m.c_per_byte)
  in
  let seq = ctx.p.next_seq.(dest) in
  ctx.p.next_seq.(dest) <- seq + 1;
  let target = m.procs.(dest) in
  let st = ctx.p.stats in
  st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
  st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
  st.Stats.hop_bytes <- st.Stats.hop_bytes + (bytes * hops);
  let enqueue ~arrival ~delivery =
    let tmsg =
      if m.trace_on then
        Trace.record_send m.trace ~src ~dst:dest ~tag ~bytes ~hops
          ~sent:ctx.p.clock ~arrival
      else None
    in
    Queue.add
      { arrival; payload = Obj.repr v; tmsg; seq; delivery }
      (chan_enqueue_queue target.channels.(src) tag)
  in
  let record_fault kind =
    if m.trace_on then
      Trace.record_fault m.trace ~kind ~proc:src ~peer:dest ~tag
        ~time:ctx.p.clock ()
  in
  let sender_wait ~arrival =
    if rendezvous || m.sync_comm then begin
      let wait = Float.max 0.0 (arrival -. ctx.p.clock) in
      if m.trace_on then
        Trace.record m.trace ~proc:src ~start:ctx.p.clock ~duration:wait
          Trace.Wait;
      ctx.p.clock <- Float.max ctx.p.clock arrival;
      st.Stats.comm_wait <- st.Stats.comm_wait +. wait
    end
  in
  if m.reliable then begin
    let rto = m.rto_fixed +. (2.0 *. float_of_int bytes *. m.c_per_byte) in
    let cap = 16.0 *. rto in
    let t0 = ctx.p.clock in
    let rec attempt k offset =
      if k >= max_attempts - 1 then (offset, Fault.clean)
      else
        let d =
          if m.faults_on then
            Fault.decision plan ~src ~dst:dest ~tag ~seq ~attempt:k
          else Fault.clean
        in
        if d.Fault.d_drop || d.Fault.d_corrupt then begin
          (* this copy never reaches the receiver intact: the sender times
             out waiting for the ack and retransmits after a backoff *)
          record_fault
            (if d.Fault.d_drop then Trace.Fdrop else Trace.Fcorrupt);
          if d.Fault.d_drop then
            st.Stats.msgs_dropped <- st.Stats.msgs_dropped + 1;
          st.Stats.msgs_retried <- st.Stats.msgs_retried + 1;
          st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
          record_fault Trace.Fretry;
          overhead ctx m.c_send_overhead;
          attempt (k + 1) (offset +. pow2_backoff ~rto ~cap k)
        end
        else (offset, d)
    in
    let offset, d = attempt 0 0.0 in
    if d.Fault.d_delay_factor <> 1.0 then record_fault Trace.Fdelay;
    let arrival = t0 +. offset +. (transit *. d.Fault.d_delay_factor) in
    enqueue ~arrival ~delivery:Clean;
    if d.Fault.d_dup then begin
      record_fault Trace.Fdup;
      enqueue ~arrival ~delivery:Duplicate
    end;
    sender_wait ~arrival;
    wake_if_waiting m target ~src ~tag
  end
  else begin
    (* raw faulty mode: the network's misbehaviour reaches the program *)
    let d = Fault.decision plan ~src ~dst:dest ~tag ~seq ~attempt:0 in
    if d.Fault.d_drop then begin
      st.Stats.msgs_dropped <- st.Stats.msgs_dropped + 1;
      record_fault Trace.Fdrop;
      (* the sender cannot tell: under a rendezvous/synchronous link it
         still waits the nominal transit as if delivery had happened; the
         receiver blocks forever and the run surfaces as [Stalled] *)
      sender_wait ~arrival:(ctx.p.clock +. transit)
    end
    else begin
      if d.Fault.d_delay_factor <> 1.0 then record_fault Trace.Fdelay;
      let arrival = ctx.p.clock +. (transit *. d.Fault.d_delay_factor) in
      let delivery =
        if d.Fault.d_corrupt then begin
          record_fault Trace.Fcorrupt;
          Corrupted
        end
        else Clean
      in
      enqueue ~arrival ~delivery;
      if d.Fault.d_dup then begin
        record_fault Trace.Fdup;
        enqueue ~arrival ~delivery:Duplicate
      end;
      sender_wait ~arrival;
      wake_if_waiting m target ~src ~tag
    end
  end

let send ctx ?(rendezvous = false) ~dest ~tag ~bytes v =
  let m = ctx.m in
  if dest < 0 || dest >= Array.length m.procs then
    invalid_arg "Machine.send: destination out of range";
  if m.faults_on || m.reliable then
    send_faulty ctx ~rendezvous ~dest ~tag ~bytes v
  else begin
    overhead ctx m.c_send_overhead;
    let hops = Topology.hops m.topology ctx.p.id dest in
    let arrival =
      ctx.p.clock +. m.c_latency
      +. (float_of_int hops *. m.c_per_hop)
      +. (float_of_int bytes *. m.c_per_byte)
    in
    let target = m.procs.(dest) in
    let tmsg =
      if m.trace_on then
        Trace.record_send m.trace ~src:ctx.p.id ~dst:dest ~tag ~bytes ~hops
          ~sent:ctx.p.clock ~arrival
      else None
    in
    Queue.add
      { arrival; payload = Obj.repr v; tmsg; seq = 0; delivery = Clean }
      (chan_enqueue_queue target.channels.(ctx.p.id) tag);
    let st = ctx.p.stats in
    st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
    st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
    st.Stats.hop_bytes <- st.Stats.hop_bytes + (bytes * hops);
    if rendezvous || m.sync_comm then begin
      (* Rendezvous-style link: the sender is busy until delivery, so no
         communication/computation overlap is possible. *)
      let wait = Float.max 0.0 (arrival -. ctx.p.clock) in
      if m.trace_on then
        Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
          Trace.Wait;
      ctx.p.clock <- arrival;
      st.Stats.comm_wait <- st.Stats.comm_wait +. wait
    end;
    match target.waiting with
    | Some (Exact (s, t)) when s = ctx.p.id && t = tag ->
        target.waiting <- None;
        Scheduler.wake m.sched dest
    | Some (Any_source t) when t = tag ->
        target.waiting <- None;
        Scheduler.wake m.sched dest
    | Some _ | None -> ()
  end

let finish_recv ctx msg =
  let m = ctx.m in
  let wait = Float.max 0.0 (msg.arrival -. ctx.p.clock) in
  if m.trace_on then
    Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
      Trace.Wait;
  ctx.p.clock <- Float.max ctx.p.clock msg.arrival;
  ctx.p.stats.Stats.comm_wait <- ctx.p.stats.Stats.comm_wait +. wait;
  overhead ctx m.c_recv_overhead;
  match msg.tmsg with
  | Some tm -> Trace.mark_received tm ~time:ctx.p.clock
  | None -> ()

(* Receiver-side dedup under [Reliable]: the transport discards a copy whose
   (src, seq) was already accepted.  Returns true when the copy must be
   skipped.  Discarding is free in simulated time (a NIC-level drop); the
   accepted copy pays the ack below. *)
let dedup_discard ctx ~src msg =
  let key = (src, msg.seq) in
  if Hashtbl.mem ctx.p.seen key then true
  else begin
    Hashtbl.add ctx.p.seen key ();
    false
  end

(* The accepted message is acknowledged: the ack transmission costs the
   receiver one send overhead (ack receipt at the sender is folded into the
   virtual-retransmission timeout model). *)
let charge_ack ctx =
  overhead ctx ctx.m.c_send_overhead;
  ctx.p.stats.Stats.acks_sent <- ctx.p.stats.Stats.acks_sent + 1

let recv ctx ~src ~tag =
  let m = ctx.m in
  if src < 0 || src >= Array.length m.procs then
    invalid_arg "Machine.recv: source out of range";
  let c = ctx.p.channels.(src) in
  let rec obtain () =
    match chan_find c tag with
    | Some q when not (Queue.is_empty q) ->
        let msg = Queue.take q in
        if m.reliable && dedup_discard ctx ~src msg then obtain () else msg
    | Some _ | None ->
        ctx.p.waiting <- Some (Exact (src, tag));
        Scheduler.block m.sched;
        obtain ()
  in
  let msg = obtain () in
  ctx.p.waiting <- None;
  finish_recv ctx msg;
  if m.reliable then charge_ack ctx;
  Obj.obj msg.payload

let recv_any ctx ~tag =
  let m = ctx.m in
  (* deterministic choice: earliest arrival, then lowest source rank (the
     ascending scan with a strict comparison implements the tie-break) *)
  let best () =
    let channels = ctx.p.channels in
    let best_src = ref (-1) and best_q = ref None and best_arrival = ref 0.0 in
    for src = 0 to Array.length channels - 1 do
      match chan_find channels.(src) tag with
      | Some q when not (Queue.is_empty q) ->
          let msg = Queue.peek q in
          if !best_src < 0 || msg.arrival < !best_arrival then begin
            best_src := src;
            best_q := Some q;
            best_arrival := msg.arrival
          end
      | Some _ | None -> ()
    done;
    match !best_q with Some q -> Some (!best_src, q) | None -> None
  in
  let rec obtain () =
    match best () with
    | Some (src, q) ->
        let msg = Queue.take q in
        if m.reliable && dedup_discard ctx ~src msg then obtain ()
        else (src, msg)
    | None ->
        ctx.p.waiting <- Some (Any_source tag);
        Scheduler.block m.sched;
        obtain ()
  in
  let src, msg = obtain () in
  ctx.p.waiting <- None;
  finish_recv ctx msg;
  if m.reliable then charge_ack ctx;
  (src, Obj.obj msg.payload)

let sendrecv ctx ~dest ~src ~tag ~bytes v =
  send ctx ~dest ~tag ~bytes v;
  recv ctx ~src ~tag

let collective ctx f =
  let m = ctx.m in
  let idx = ctx.p.coll_count in
  ctx.p.coll_count <- idx + 1;
  match Hashtbl.find_opt m.collectives idx with
  | Some (v, remaining) ->
      decr remaining;
      if !remaining = 0 then Hashtbl.remove m.collectives idx;
      Obj.obj v
  | None ->
      let v = f () in
      let consumers = Array.length m.procs - 1 in
      if consumers > 0 then
        Hashtbl.add m.collectives idx (Obj.repr v, ref consumers);
      v

let tags ctx n =
  collective ctx (fun () ->
      let t = ctx.m.next_tag in
      ctx.m.next_tag <- ctx.m.next_tag + n;
      t)

let describe_blocked (p : proc) =
  match p.waiting with
  | Some (Exact (s, t)) ->
      Printf.sprintf "waiting on recv from p%d, tag %d (clock %.6f s)" s t
        p.clock
  | Some (Any_source t) ->
      Printf.sprintf "waiting on recv from any source, tag %d (clock %.6f s)"
        t p.clock
  | None -> Printf.sprintf "blocked (clock %.6f s)" p.clock

let run ?(cost = Cost_model.default) ?(trace = false) ?faults
    ?(reliable = false) ?(collectives = Coll_alg.Legacy) ~topology f =
  let n = Topology.nprocs topology in
  let sched = Scheduler.create () in
  let params = cost.Cost_model.params in
  let cf = cost.Cost_model.profile.Cost_model.comm_factor in
  let faults_on = faults <> None in
  let fplan =
    match faults with Some p -> p | None -> Fault.none ~seed:0
  in
  let faulty = faults_on || reliable in
  let c_latency = cf *. params.Cost_model.msg_latency in
  let c_per_hop = cf *. params.Cost_model.per_hop in
  (* retransmission timeout ~ a round trip across the network diameter; the
     per-message bytes term is added at send time *)
  let rto_fixed =
    if reliable then begin
      let diam = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          diam := max !diam (Topology.hops topology i j)
        done
      done;
      2.0 *. (c_latency +. (float_of_int !diam *. c_per_hop))
    end
    else 0.0
  in
  let stalls_for id =
    if not faults_on then []
    else
      List.filter (fun (p, _) -> p = id) fplan.Fault.stalls
      |> List.map snd
      |> List.sort (fun a b -> compare a.Fault.stall_at b.Fault.stall_at)
  in
  let crashes_for id =
    if not faults_on then []
    else
      List.filter (fun (p, _) -> p = id) fplan.Fault.crashes
      |> List.map snd |> List.sort compare
  in
  let m =
    {
      topology;
      cost;
      procs =
        Array.init n (fun id ->
            {
              id;
              clock = 0.0;
              channels = Array.init n (fun _ -> chan_create ());
              waiting = None;
              coll_count = 0;
              span_stack = [];
              stats = Stats.fresh_proc ();
              next_seq = (if faulty then Array.make n 0 else [||]);
              seen = Hashtbl.create (if reliable then 64 else 1);
              pending_stalls = stalls_for id;
              pending_crashes = crashes_for id;
            });
      sched;
      collectives = Hashtbl.create 16;
      next_tag = 0;
      trace = Trace.create ~enabled:trace;
      trace_on = trace;
      c_send_overhead = cf *. params.Cost_model.send_overhead;
      c_recv_overhead = cf *. params.Cost_model.recv_overhead;
      c_latency;
      c_per_hop;
      c_per_byte = cf *. params.Cost_model.per_byte;
      sync_comm = cost.Cost_model.profile.Cost_model.sync_comm;
      c_scalar_factor =
        Cost_model.factor cost.Cost_model.profile Cost_model.Scalar;
      fplan;
      faults_on;
      reliable;
      rto_fixed;
      coll_mode = collectives;
      coll_legacy = (collectives = Coll_alg.Legacy);
      coll_net =
        (if collectives = Coll_alg.Legacy then None
         else
           Some
             (Coll_alg.net_of topology ~latency:c_latency ~per_hop:c_per_hop
                ~per_byte:(cf *. params.Cost_model.per_byte)
                ~send_ovh:(cf *. params.Cost_model.send_overhead)
                ~recv_ovh:(cf *. params.Cost_model.recv_overhead)));
    }
  in
  let stats =
    { Stats.procs = Array.map (fun (p : proc) -> p.stats) m.procs;
      makespan = 0.0 }
  in
  Scheduler.set_describer sched (fun id ->
      if id >= 0 && id < n then Some (describe_blocked m.procs.(id)) else None);
  let values = Array.make n None in
  for id = 0 to n - 1 do
    let ctx = { m; p = m.procs.(id) } in
    ignore (Scheduler.spawn sched (fun () -> values.(id) <- Some (f ctx)))
  done;
  (try Scheduler.run sched
   with Scheduler.Deadlock blocked ->
     raise
       (Stalled
          (List.map
             (fun (id, d) -> (id, Option.value d ~default:"blocked"))
             blocked)));
  let makespan =
    Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 m.procs
  in
  stats.Stats.makespan <- makespan;
  let values =
    Array.map
      (function Some v -> v | None -> failwith "Machine.run: missing result")
      values
  in
  { values; time = makespan; stats; trace = m.trace }
