type message = {
  arrival : float;
  payload : Obj.t;
  tmsg : Trace.message option; (* trace record, completed on delivery *)
}

type waiting = Exact of int * int | Any_source of int

(* Per-source channel: a small tag-bucketed vector of FIFO queues.  At any
   moment only a handful of tags are live between a pair of processors, so a
   linear scan beats a hashtable — and avoids allocating a boxed (src, tag)
   key per message, which dominated the send/recv hot path. *)
type chan = {
  mutable tags : int array;
  mutable queues : message Queue.t array;
  mutable nbuckets : int;
}

type proc = {
  id : int;
  mutable clock : float;
  channels : chan array; (* indexed by source rank *)
  mutable waiting : waiting option;
  mutable coll_count : int; (* collective call sites reached so far *)
  mutable span_stack : Trace.span list; (* open trace spans, innermost first *)
  stats : Stats.proc;
}

type t = {
  topology : Topology.t;
  cost : Cost_model.t;
  procs : proc array;
  sched : Scheduler.t;
  collectives : (int, Obj.t * int ref) Hashtbl.t;
  mutable next_tag : int;
  trace : Trace.t;
  trace_on : bool; (* cached Trace.enabled: skips the call (and the float
                      boxing of its arguments) on every clock advance *)
  (* communication coefficients with the profile's comm_factor pre-applied,
     hoisted out of the per-message path *)
  c_send_overhead : float;
  c_recv_overhead : float;
  c_latency : float;
  c_per_hop : float;
  c_per_byte : float;
  sync_comm : bool;
  c_scalar_factor : float;
      (* the profile's Scalar factor, hoisted out of the per-statement
         flush path of the language engines *)
}

type ctx = { m : t; p : proc }

type 'r result = {
  values : 'r array;
  time : float;
  stats : Stats.t;
  trace : Trace.t;
}

let self ctx = ctx.p.id
let nprocs ctx = Array.length ctx.m.procs
let topology ctx = ctx.m.topology
let cost ctx = ctx.m.cost
let profile ctx = ctx.m.cost.Cost_model.profile
let clock ctx = ctx.p.clock

let compute ctx seconds =
  assert (seconds >= 0.0);
  if ctx.m.trace_on then
    Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
      ~duration:seconds Trace.Compute;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.compute_time <- ctx.p.stats.Stats.compute_time +. seconds

let charge ctx cls ~ops ~base =
  if ops > 0 then begin
    if ctx.m.trace_on then
      (match ctx.p.span_stack with
       | s :: _ -> Trace.span_add_ops s cls ops
       | [] -> ());
    compute ctx (float_of_int ops *. base *. Cost_model.factor (profile ctx) cls)
  end

(* Fast path for the Skil engines' per-statement scalar flush: same math as
   [charge ctx Scalar ~ops ~base:Calibration.scalar_node_op] (same operand
   order, so simulated clocks stay bit-identical), with the factor lookup
   hoisted to machine construction. *)
let charge_scalar_nodes ctx ~ops =
  if ops > 0 then begin
    if ctx.m.trace_on then
      (match ctx.p.span_stack with
       | s :: _ -> Trace.span_add_ops s Cost_model.Scalar ops
       | [] -> ());
    compute ctx
      (float_of_int ops *. Calibration.scalar_node_op
      *. ctx.m.c_scalar_factor)
  end

let overhead ctx seconds =
  if ctx.m.trace_on then
    Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
      ~duration:seconds Trace.Overhead;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.overhead_time <-
    ctx.p.stats.Stats.overhead_time +. seconds

let charge_skeleton_call ctx =
  ctx.p.stats.Stats.skeleton_calls <- ctx.p.stats.Stats.skeleton_calls + 1;
  overhead ctx (profile ctx).Cost_model.skeleton_call

let charge_copy ctx ~bytes =
  compute ctx (float_of_int bytes *. Calibration.copy_per_byte)

(* Span brackets: zero simulated cost, recorded only when tracing. *)

let span_begin ctx ~cat name =
  if ctx.m.trace_on then
    ctx.p.span_stack <-
      Trace.span_begin ctx.m.trace ~proc:ctx.p.id ~cat ~name
        ~start:ctx.p.clock
      :: ctx.p.span_stack

let span_end ctx =
  if ctx.m.trace_on then
    match ctx.p.span_stack with
    | s :: rest ->
        Trace.span_end s ~stop:ctx.p.clock;
        ctx.p.span_stack <- rest
    | [] -> ()

let with_span ctx ~cat name f =
  span_begin ctx ~cat name;
  let r = f () in
  span_end ctx;
  r

(* ------------------------------------------------------------------ *)
(* Channel buckets                                                     *)

let chan_create () = { tags = [||]; queues = [||]; nbuckets = 0 }

(* Queue holding messages for [tag], or None.  An empty queue is
   indistinguishable from an absent one to receivers. *)
let chan_find c tag =
  let rec go i =
    if i >= c.nbuckets then None
    else if c.tags.(i) = tag then Some c.queues.(i)
    else go (i + 1)
  in
  go 0

(* Queue to enqueue into for [tag]: reuse the bucket already carrying the
   tag, else repurpose a drained bucket (tags only grow, so an empty queue's
   old tag can never see traffic again from this source in FIFO order —
   and even if it did, an empty bucket behaves exactly like a missing one),
   else append a fresh bucket. *)
let chan_enqueue_queue c tag =
  let rec go i free =
    if i >= c.nbuckets then
      match free with
      | Some j ->
          c.tags.(j) <- tag;
          c.queues.(j)
      | None ->
          if c.nbuckets = Array.length c.tags then begin
            let cap = max 4 (2 * c.nbuckets) in
            let tags = Array.make cap 0 in
            Array.blit c.tags 0 tags 0 c.nbuckets;
            let queues =
              Array.init cap (fun k ->
                  if k < c.nbuckets then c.queues.(k) else Queue.create ())
            in
            c.tags <- tags;
            c.queues <- queues
          end;
          let j = c.nbuckets in
          c.nbuckets <- j + 1;
          c.tags.(j) <- tag;
          c.queues.(j)
    else if c.tags.(i) = tag then c.queues.(i)
    else if free = None && Queue.is_empty c.queues.(i) then go (i + 1) (Some i)
    else go (i + 1) free
  in
  go 0 None

(* ------------------------------------------------------------------ *)

let send ctx ?(rendezvous = false) ~dest ~tag ~bytes v =
  let m = ctx.m in
  if dest < 0 || dest >= Array.length m.procs then
    invalid_arg "Machine.send: destination out of range";
  overhead ctx m.c_send_overhead;
  let hops = Topology.hops m.topology ctx.p.id dest in
  let arrival =
    ctx.p.clock +. m.c_latency
    +. (float_of_int hops *. m.c_per_hop)
    +. (float_of_int bytes *. m.c_per_byte)
  in
  let target = m.procs.(dest) in
  let tmsg =
    if m.trace_on then
      Trace.record_send m.trace ~src:ctx.p.id ~dst:dest ~tag ~bytes ~hops
        ~sent:ctx.p.clock ~arrival
    else None
  in
  Queue.add { arrival; payload = Obj.repr v; tmsg }
    (chan_enqueue_queue target.channels.(ctx.p.id) tag);
  let st = ctx.p.stats in
  st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
  st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
  st.Stats.hop_bytes <- st.Stats.hop_bytes + (bytes * hops);
  if rendezvous || m.sync_comm then begin
    (* Rendezvous-style link: the sender is busy until delivery, so no
       communication/computation overlap is possible. *)
    let wait = Float.max 0.0 (arrival -. ctx.p.clock) in
    if m.trace_on then
      Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
        Trace.Wait;
    ctx.p.clock <- arrival;
    st.Stats.comm_wait <- st.Stats.comm_wait +. wait
  end;
  (match target.waiting with
   | Some (Exact (s, t)) when s = ctx.p.id && t = tag ->
       target.waiting <- None;
       Scheduler.wake m.sched dest
   | Some (Any_source t) when t = tag ->
       target.waiting <- None;
       Scheduler.wake m.sched dest
   | Some _ | None -> ())

let finish_recv ctx msg =
  let m = ctx.m in
  let wait = Float.max 0.0 (msg.arrival -. ctx.p.clock) in
  if m.trace_on then
    Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
      Trace.Wait;
  ctx.p.clock <- Float.max ctx.p.clock msg.arrival;
  ctx.p.stats.Stats.comm_wait <- ctx.p.stats.Stats.comm_wait +. wait;
  overhead ctx m.c_recv_overhead;
  match msg.tmsg with
  | Some tm -> Trace.mark_received tm ~time:ctx.p.clock
  | None -> ()

let recv ctx ~src ~tag =
  let m = ctx.m in
  if src < 0 || src >= Array.length m.procs then
    invalid_arg "Machine.recv: source out of range";
  let c = ctx.p.channels.(src) in
  let rec obtain () =
    match chan_find c tag with
    | Some q when not (Queue.is_empty q) -> Queue.take q
    | Some _ | None ->
        ctx.p.waiting <- Some (Exact (src, tag));
        Scheduler.block m.sched;
        obtain ()
  in
  let msg = obtain () in
  ctx.p.waiting <- None;
  finish_recv ctx msg;
  Obj.obj msg.payload

let recv_any ctx ~tag =
  let m = ctx.m in
  (* deterministic choice: earliest arrival, then lowest source rank (the
     ascending scan with a strict comparison implements the tie-break) *)
  let best () =
    let channels = ctx.p.channels in
    let best_src = ref (-1) and best_q = ref None and best_arrival = ref 0.0 in
    for src = 0 to Array.length channels - 1 do
      match chan_find channels.(src) tag with
      | Some q when not (Queue.is_empty q) ->
          let msg = Queue.peek q in
          if !best_src < 0 || msg.arrival < !best_arrival then begin
            best_src := src;
            best_q := Some q;
            best_arrival := msg.arrival
          end
      | Some _ | None -> ()
    done;
    match !best_q with Some q -> Some (!best_src, q) | None -> None
  in
  let rec obtain () =
    match best () with
    | Some (src, q) -> (src, Queue.take q)
    | None ->
        ctx.p.waiting <- Some (Any_source tag);
        Scheduler.block m.sched;
        obtain ()
  in
  let src, msg = obtain () in
  ctx.p.waiting <- None;
  finish_recv ctx msg;
  (src, Obj.obj msg.payload)

let sendrecv ctx ~dest ~src ~tag ~bytes v =
  send ctx ~dest ~tag ~bytes v;
  recv ctx ~src ~tag

let collective ctx f =
  let m = ctx.m in
  let idx = ctx.p.coll_count in
  ctx.p.coll_count <- idx + 1;
  match Hashtbl.find_opt m.collectives idx with
  | Some (v, remaining) ->
      decr remaining;
      if !remaining = 0 then Hashtbl.remove m.collectives idx;
      Obj.obj v
  | None ->
      let v = f () in
      let consumers = Array.length m.procs - 1 in
      if consumers > 0 then
        Hashtbl.add m.collectives idx (Obj.repr v, ref consumers);
      v

let tags ctx n =
  collective ctx (fun () ->
      let t = ctx.m.next_tag in
      ctx.m.next_tag <- ctx.m.next_tag + n;
      t)

let run ?(cost = Cost_model.default) ?(trace = false) ~topology f =
  let n = Topology.nprocs topology in
  let sched = Scheduler.create () in
  let params = cost.Cost_model.params in
  let cf = cost.Cost_model.profile.Cost_model.comm_factor in
  let m =
    {
      topology;
      cost;
      procs =
        Array.init n (fun id ->
            {
              id;
              clock = 0.0;
              channels = Array.init n (fun _ -> chan_create ());
              waiting = None;
              coll_count = 0;
              span_stack = [];
              stats = Stats.fresh_proc ();
            });
      sched;
      collectives = Hashtbl.create 16;
      next_tag = 0;
      trace = Trace.create ~enabled:trace;
      trace_on = trace;
      c_send_overhead = cf *. params.Cost_model.send_overhead;
      c_recv_overhead = cf *. params.Cost_model.recv_overhead;
      c_latency = cf *. params.Cost_model.msg_latency;
      c_per_hop = cf *. params.Cost_model.per_hop;
      c_per_byte = cf *. params.Cost_model.per_byte;
      sync_comm = cost.Cost_model.profile.Cost_model.sync_comm;
      c_scalar_factor =
        Cost_model.factor cost.Cost_model.profile Cost_model.Scalar;
    }
  in
  let stats =
    { Stats.procs = Array.map (fun (p : proc) -> p.stats) m.procs;
      makespan = 0.0 }
  in
  let values = Array.make n None in
  for id = 0 to n - 1 do
    let ctx = { m; p = m.procs.(id) } in
    ignore (Scheduler.spawn sched (fun () -> values.(id) <- Some (f ctx)))
  done;
  Scheduler.run sched;
  let makespan =
    Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 m.procs
  in
  stats.Stats.makespan <- makespan;
  let values =
    Array.map
      (function Some v -> v | None -> failwith "Machine.run: missing result")
      values
  in
  { values; time = makespan; stats; trace = m.trace }
