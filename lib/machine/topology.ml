type virtual_kind = Default | Ring | Torus2d

type t = {
  width : int;
  height : int;
  kind : virtual_kind;
  optimized : bool;
  position : (int * int) array; (* rank -> physical mesh position *)
  dist : int array; (* rank pair -> hops, row-major n x n (read-only) *)
}

(* Fold a line of [n] logical positions into [n] physical slots such that
   logical neighbours (including the wrap-around n-1 -> 0) end up at most two
   slots apart: 0, 2, 4, ..., back down ..., 5, 3, 1. *)
let folded_line n =
  let slot = Array.make n 0 in
  let half = (n + 1) / 2 in
  for i = 0 to n - 1 do
    if i < half then slot.(i) <- 2 * i else slot.(i) <- (2 * (n - 1 - i)) + 1
  done;
  slot

(* Snake (boustrophedon) order through a width x height mesh: consecutive
   linear positions are mesh-adjacent. *)
let snake_position ~width i =
  let row = i / width in
  let col = i mod width in
  let col = if row mod 2 = 0 then col else width - 1 - col in
  (col, row)

let positions ~width ~height ~kind ~optimized =
  let n = width * height in
  let row_major i = (i mod width, i / width) in
  match (kind, optimized) with
  | Default, _ | _, false -> Array.init n row_major
  | Ring, true ->
      (* Fold the ring into the snake so both the step edges and the
         wrap-around edge stay short. *)
      let slot = folded_line n in
      Array.init n (fun i -> snake_position ~width slot.(i))
  | Torus2d, true ->
      (* Classic folded torus: fold each dimension independently, making
         every torus neighbour (wrap-around included) at most 2 hops away. *)
      let fold_x = folded_line width and fold_y = folded_line height in
      Array.init n (fun i -> (fold_x.(i mod width), fold_y.(i / width)))

(* Pairwise Manhattan distances, precomputed eagerly so [hops] — called on
   every simulated message — is one array read.  Built once at creation and
   never mutated, so a topology value can be shared freely across domains. *)
let distance_table position =
  let n = Array.length position in
  let dist = Array.make (n * n) 0 in
  for a = 0 to n - 1 do
    let xa, ya = position.(a) in
    for b = 0 to n - 1 do
      let xb, yb = position.(b) in
      dist.((a * n) + b) <- abs (xa - xb) + abs (ya - yb)
    done
  done;
  dist

let create ?(embedding_optimized = true) ~width ~height kind =
  if width <= 0 || height <= 0 then
    invalid_arg "Topology.create: non-positive grid dimension";
  let position =
    positions ~width ~height ~kind ~optimized:embedding_optimized
  in
  {
    width;
    height;
    kind;
    optimized = embedding_optimized;
    position;
    dist = distance_table position;
  }

let mesh ~width ~height = create ~width ~height Default

let ring ~nprocs =
  if nprocs <= 0 then invalid_arg "Topology.ring: non-positive size";
  (* Pick the most square mesh that holds nprocs processors exactly. *)
  let rec best w = if nprocs mod w = 0 then w else best (w - 1) in
  let w = best (int_of_float (sqrt (float_of_int nprocs))) in
  create ~width:(nprocs / w) ~height:w Ring

let torus2d ?(embedding_optimized = true) ~width ~height () =
  create ~embedding_optimized ~width ~height Torus2d

let nprocs t = t.width * t.height
let width t = t.width
let height t = t.height
let kind t = t.kind
let embedding_optimized t = t.optimized

let check_rank t r =
  if r < 0 || r >= nprocs t then invalid_arg "Topology: rank out of range"

let grid_coords t rank =
  check_rank t rank;
  (rank mod t.width, rank / t.width)

let rank_of_grid t (x, y) =
  let modp a m = ((a mod m) + m) mod m in
  let x = modp x t.width and y = modp y t.height in
  (y * t.width) + x

let mesh_position t rank =
  check_rank t rank;
  t.position.(rank)

let hops t a b =
  check_rank t a;
  check_rank t b;
  t.dist.((a * nprocs t) + b)

let ring_next t rank =
  check_rank t rank;
  (rank + 1) mod nprocs t

let ring_prev t rank =
  check_rank t rank;
  (rank + nprocs t - 1) mod nprocs t

let torus_neighbor t rank dir =
  let x, y = grid_coords t rank in
  let c =
    match dir with
    | `North -> (x, y - 1)
    | `South -> (x, y + 1)
    | `East -> (x + 1, y)
    | `West -> (x - 1, y)
  in
  rank_of_grid t c

let square_side t = if t.width = t.height then Some t.width else None

(* Order-sensitive checksum of the precomputed read-only tables.  A sharded
   [Machine.run] publishes one topology value to every domain and asserts
   the digest is unchanged when the run completes — the tables are memo
   caches on the per-message hot path, so an accidental mutation would
   silently corrupt hop costs (and the PDES lookahead bounds derived from
   them) instead of crashing.  Plain int arithmetic, no truncation (unlike
   [Hashtbl.hash], which stops after a few nodes). *)
let digest t =
  let h = ref (0x9e3779b9 land max_int) in
  let mix v = h := ((!h * 31) + v) land max_int in
  mix t.width;
  mix t.height;
  Array.iter
    (fun (x, y) ->
      mix x;
      mix y)
    t.position;
  Array.iter mix t.dist;
  !h

let pp ppf t =
  let k =
    match t.kind with
    | Default -> "default"
    | Ring -> "ring"
    | Torus2d -> "torus2d"
  in
  Format.fprintf ppf "%dx%d mesh, %s topology%s" t.width t.height k
    (if t.optimized then "" else " (naive embedding)")
