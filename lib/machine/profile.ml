type per_proc = {
  compute : float;
  wait : float;
  overhead : float;
  sent_msgs : int;
  sent_bytes : int;
  recv_msgs : int;
  recv_bytes : int;
}

type per_span = {
  name : string;
  cat : Trace.cat;
  calls : int;
  time : float;
  ops_kernel : int;
  ops_mapped : int;
  ops_scalar : int;
}

type t = {
  nprocs : int;
  makespan : float;
  procs : per_proc array;
  spans : per_span list;
  comm_matrix : int array array;
  critical_path : float;
}

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)

(* Longest chain of work intervals linked by message transits, computed by a
   single time-ordered sweep.  [cp.(p)] is the length of the longest chain
   ending at processor [p]'s current position; a work interval extends it, a
   received message pulls in the sender's chain as of the send plus the wire
   transit.  Ordering within one timestamp matters: a message consumed at
   [t] must be applied before the recv-overhead interval ending at [t]
   (0: Recv), work ending at [t] before a message posted at [t] (2: Send) —
   interval ends and message timestamps are the same clock values
   bit-for-bit, so float equality is exact here. *)
let critical_path ~nprocs trace =
  let msgs = Array.of_list (Trace.messages trace) in
  let cp_at_send = Array.make (Array.length msgs) 0.0 in
  let events = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Compute | Trace.Overhead | Trace.Stall ->
          (* an injected stall occupies the processor just like work does,
             so it lengthens every chain passing through it *)
          events :=
            (e.Trace.start +. e.Trace.duration, 1, e.Trace.proc, e.Trace.duration)
            :: !events
      | Trace.Wait -> ())
    (Trace.events trace);
  Array.iteri
    (fun i (m : Trace.message) ->
      events := (m.Trace.sent, 2, i, 0.0) :: !events;
      if m.Trace.received >= 0.0 then
        events := (m.Trace.received, 0, i, 0.0) :: !events)
    msgs;
  let events = Array.of_list !events in
  Array.sort compare events;
  let cp = Array.make (max 1 nprocs) 0.0 in
  Array.iter
    (fun (_, order, i, dur) ->
      match order with
      | 1 -> if i >= 0 && i < nprocs then cp.(i) <- cp.(i) +. dur
      | 2 ->
          let m = msgs.(i) in
          if m.Trace.src >= 0 && m.Trace.src < nprocs then
            cp_at_send.(i) <- cp.(m.Trace.src)
      | _ ->
          let m = msgs.(i) in
          if m.Trace.dst >= 0 && m.Trace.dst < nprocs then
            cp.(m.Trace.dst) <-
              Float.max
                cp.(m.Trace.dst)
                (cp_at_send.(i) +. (m.Trace.arrival -. m.Trace.sent)))
    events;
  Array.fold_left Float.max 0.0 cp

(* ------------------------------------------------------------------ *)

let of_trace trace ~nprocs ~makespan =
  let zero =
    {
      compute = 0.0;
      wait = 0.0;
      overhead = 0.0;
      sent_msgs = 0;
      sent_bytes = 0;
      recv_msgs = 0;
      recv_bytes = 0;
    }
  in
  let procs = Array.make (max 1 nprocs) zero in
  let on p f = if p >= 0 && p < nprocs then procs.(p) <- f procs.(p) in
  List.iter
    (fun (e : Trace.event) ->
      on e.Trace.proc (fun pp ->
          match e.Trace.kind with
          | Trace.Compute -> { pp with compute = pp.compute +. e.Trace.duration }
          | Trace.Wait | Trace.Stall ->
              (* stalls are lost time, bucketed with waits so the report's
                 columns (and fault-free output) are unchanged *)
              { pp with wait = pp.wait +. e.Trace.duration }
          | Trace.Overhead ->
              { pp with overhead = pp.overhead +. e.Trace.duration }))
    (Trace.events trace);
  let comm = Array.make_matrix (max 1 nprocs) (max 1 nprocs) 0 in
  List.iter
    (fun (m : Trace.message) ->
      on m.Trace.src (fun pp ->
          {
            pp with
            sent_msgs = pp.sent_msgs + 1;
            sent_bytes = pp.sent_bytes + m.Trace.bytes;
          });
      if m.Trace.received >= 0.0 then
        on m.Trace.dst (fun pp ->
            {
              pp with
              recv_msgs = pp.recv_msgs + 1;
              recv_bytes = pp.recv_bytes + m.Trace.bytes;
            });
      if m.Trace.src >= 0 && m.Trace.src < nprocs
         && m.Trace.dst >= 0 && m.Trace.dst < nprocs
      then comm.(m.Trace.src).(m.Trace.dst) <- comm.(m.Trace.src).(m.Trace.dst) + m.Trace.bytes)
    (Trace.messages trace);
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      let stop = if s.Trace.sstop < 0.0 then s.Trace.sstart else s.Trace.sstop in
      let key = (s.Trace.cat, s.Trace.name) in
      let cur =
        match Hashtbl.find_opt tbl key with
        | Some c -> c
        | None ->
            {
              name = s.Trace.name;
              cat = s.Trace.cat;
              calls = 0;
              time = 0.0;
              ops_kernel = 0;
              ops_mapped = 0;
              ops_scalar = 0;
            }
      in
      Hashtbl.replace tbl key
        {
          cur with
          calls = cur.calls + 1;
          time = cur.time +. (stop -. s.Trace.sstart);
          ops_kernel = cur.ops_kernel + s.Trace.ops_kernel;
          ops_mapped = cur.ops_mapped + s.Trace.ops_mapped;
          ops_scalar = cur.ops_scalar + s.Trace.ops_scalar;
        })
    (Trace.spans trace);
  let spans =
    Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
    |> List.sort (fun a b -> compare (b.time, a.name) (a.time, b.name))
  in
  {
    nprocs;
    makespan;
    procs;
    spans;
    comm_matrix = comm;
    critical_path = critical_path ~nprocs trace;
  }

let critical_path_fraction t =
  if t.makespan <= 0.0 then 0.0 else t.critical_path /. t.makespan

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>";
  fprintf ppf "profile: %d processors, makespan %.6f s@," t.nprocs t.makespan;
  fprintf ppf
    "critical path %.6f s (%.1f%% of makespan; the rest is wait/imbalance)@,"
    t.critical_path
    (100.0 *. critical_path_fraction t);
  fprintf ppf "@,per-processor time and traffic:@,";
  fprintf ppf "  %-5s %10s %10s %10s %6s %14s %14s@," "proc" "compute" "wait"
    "overhead" "busy%" "sent msg/bytes" "recv msg/bytes";
  Array.iteri
    (fun i p ->
      let busy =
        if t.makespan > 0.0 then 100.0 *. p.compute /. t.makespan else 0.0
      in
      fprintf ppf "  p%-4d %10.6f %10.6f %10.6f %5.1f%% %6d/%-8d %6d/%-8d@," i
        p.compute p.wait p.overhead busy p.sent_msgs p.sent_bytes p.recv_msgs
        p.recv_bytes)
    t.procs;
  let cat_spans c = List.filter (fun s -> s.cat = c) t.spans in
  let span_table title spans =
    if spans <> [] then begin
      fprintf ppf "@,%s:@," title;
      fprintf ppf "  %-22s %6s %12s %6s %s@," "name" "calls" "time" "make%"
        "ops (kernel/mapped/scalar)";
      List.iter
        (fun s ->
          let pct =
            if t.makespan > 0.0 then
              100.0 *. s.time
              /. (t.makespan *. float_of_int (max 1 t.nprocs))
            else 0.0
          in
          fprintf ppf "  %-22s %6d %12.6f %5.1f%% %d/%d/%d@," s.name s.calls
            s.time pct s.ops_kernel s.ops_mapped s.ops_scalar)
        spans
    end
  in
  span_table "per-skeleton (time summed over processors)"
    (cat_spans Trace.Skeleton);
  span_table "collectives (nested inside skeleton spans)"
    (cat_spans Trace.Collective);
  fprintf ppf "@,communication matrix (bytes, row = source):@,";
  fprintf ppf "  %6s" "";
  Array.iteri (fun j _ -> fprintf ppf " %8s" (sprintf "->p%d" j)) t.comm_matrix;
  fprintf ppf "@,";
  Array.iteri
    (fun i row ->
      fprintf ppf "  p%-5d" i;
      Array.iter (fun b -> fprintf ppf " %8d" b) row;
      fprintf ppf "@,")
    t.comm_matrix;
  fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us seconds = seconds *. 1e6

let chrome_json trace ~nprocs =
  let buf = Buffer.create 65536 in
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n  ";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\n\"traceEvents\": [\n  ";
  for p = 0 to nprocs - 1 do
    emit
      {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"proc %d"}}|}
      p p
  done;
  (* spans first so same-timestamp slices nest outside the intervals *)
  List.iter
    (fun (s : Trace.span) ->
      let stop = if s.Trace.sstop < 0.0 then s.Trace.sstart else s.Trace.sstop in
      let cat =
        match s.Trace.cat with
        | Trace.Skeleton -> "skeleton"
        | Trace.Collective -> "collective"
      in
      emit
        {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"ops_kernel":%d,"ops_mapped":%d,"ops_scalar":%d}}|}
        (json_escape s.Trace.name) cat (us s.Trace.sstart)
        (us (stop -. s.Trace.sstart))
        s.Trace.sproc s.Trace.ops_kernel s.Trace.ops_mapped s.Trace.ops_scalar)
    (Trace.spans trace);
  List.iter
    (fun (e : Trace.event) ->
      let name =
        match e.Trace.kind with
        | Trace.Compute -> "compute"
        | Trace.Wait -> "wait"
        | Trace.Overhead -> "overhead"
        | Trace.Stall -> "stall"
      in
      emit {|{"name":"%s","cat":"interval","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d}|}
        name (us e.Trace.start) (us e.Trace.duration) e.Trace.proc)
    (Trace.events trace);
  List.iter
    (fun (f : Trace.fault_event) ->
      emit
        {|{"name":"fault:%s","cat":"fault","ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{"peer":%d,"tag":%d}}|}
        (Trace.fault_kind_name f.Trace.fkind)
        (us f.Trace.ftime) f.Trace.fproc f.Trace.fpeer f.Trace.ftag)
    (Trace.fault_events trace);
  List.iteri
    (fun i (m : Trace.message) ->
      emit
        {|{"name":"msg tag %d","cat":"message","ph":"s","id":%d,"ts":%.3f,"pid":0,"tid":%d,"args":{"bytes":%d,"hops":%d}}|}
        m.Trace.tag i (us m.Trace.sent) m.Trace.src m.Trace.bytes m.Trace.hops;
      if m.Trace.received >= 0.0 then
        emit
          {|{"name":"msg tag %d","cat":"message","ph":"f","bp":"e","id":%d,"ts":%.3f,"pid":0,"tid":%d,"args":{"queue_delay_us":%.3f}}|}
          m.Trace.tag i (us m.Trace.received) m.Trace.dst
          (us (Trace.queue_delay m)))
    (Trace.messages trace);
  Buffer.add_string buf
    "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"source\": \"skil_obs simulated trace\"}\n}\n";
  Buffer.contents buf
