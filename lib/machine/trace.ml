type kind = Compute | Wait | Overhead | Stall
type event = { proc : int; start : float; duration : float; kind : kind }

type fault_kind = Fdrop | Fdup | Fcorrupt | Fdelay | Fretry | Fstall | Fcrash

type fault_event = {
  fkind : fault_kind;
  fproc : int; (* processor that observed/charged the fault *)
  fpeer : int; (* other endpoint of the link, -1 for stalls/crashes *)
  ftag : int; (* message tag, -1 for stalls/crashes *)
  ftime : float;
}

let fault_kind_name = function
  | Fdrop -> "drop"
  | Fdup -> "dup"
  | Fcorrupt -> "corrupt"
  | Fdelay -> "delay"
  | Fretry -> "retry"
  | Fstall -> "stall"
  | Fcrash -> "crash"

type message = {
  src : int;
  dst : int;
  tag : int;
  bytes : int;
  hops : int;
  sent : float;
  arrival : float;
  mutable received : float; (* negative while in flight *)
}

type cat = Skeleton | Collective

type span = {
  sproc : int;
  cat : cat;
  name : string;
  sstart : float;
  mutable sstop : float; (* negative while open *)
  mutable ops_kernel : int;
  mutable ops_mapped : int;
  mutable ops_scalar : int;
}

(* Buffers are per recording processor so that a PDES run sharded across
   domains records without any cross-domain contention: every append touches
   only the acting processor's own cell.  Readers see the canonical
   processor-major order (proc 0's records first, each in program order) —
   and since each processor's program order is deterministic, the exported
   streams are bit-identical whatever the shard count or domain interleaving
   was.  The last slot is an overflow bucket for out-of-range ids. *)
type t = {
  enabled : bool;
  pevents : event list array; (* per proc, reversed *)
  pmsgs : message list array; (* per sender, reversed (send order) *)
  pspans : span list array; (* per proc, reversed, in begin order *)
  pfaults : fault_event list array; (* per observer, reversed *)
}

let create ~enabled ~nprocs =
  let n = max 1 nprocs + 1 in
  {
    enabled;
    pevents = Array.make n [];
    pmsgs = Array.make n [];
    pspans = Array.make n [];
    pfaults = Array.make n [];
  }

let slot t p = if p >= 0 && p < Array.length t.pevents - 1 then p
               else Array.length t.pevents - 1

let enabled t = t.enabled

let record t ~proc ~start ~duration kind =
  if t.enabled && duration > 0.0 then begin
    let i = slot t proc in
    t.pevents.(i) <- { proc; start; duration; kind } :: t.pevents.(i)
  end

let record_send t ~src ~dst ~tag ~bytes ~hops ~sent ~arrival =
  if not t.enabled then None
  else begin
    let m = { src; dst; tag; bytes; hops; sent; arrival; received = -1.0 } in
    let i = slot t src in
    t.pmsgs.(i) <- m :: t.pmsgs.(i);
    Some m
  end

let mark_received m ~time = m.received <- time

let record_fault t ~kind ~proc ?(peer = -1) ?(tag = -1) ~time () =
  if t.enabled then begin
    let i = slot t proc in
    t.pfaults.(i) <-
      { fkind = kind; fproc = proc; fpeer = peer; ftag = tag; ftime = time }
      :: t.pfaults.(i)
  end

let span_begin t ~proc ~cat ~name ~start =
  let s =
    {
      sproc = proc;
      cat;
      name;
      sstart = start;
      sstop = -1.0;
      ops_kernel = 0;
      ops_mapped = 0;
      ops_scalar = 0;
    }
  in
  if t.enabled then begin
    let i = slot t proc in
    t.pspans.(i) <- s :: t.pspans.(i)
  end;
  s

let span_end s ~stop = s.sstop <- stop

let span_add_ops s cls n =
  match (cls : Cost_model.op_class) with
  | Cost_model.Kernel -> s.ops_kernel <- s.ops_kernel + n
  | Cost_model.Mapped -> s.ops_mapped <- s.ops_mapped + n
  | Cost_model.Scalar -> s.ops_scalar <- s.ops_scalar + n

(* processor-major, each processor's records in program (append) order *)
let merge buckets = Array.fold_right List.rev_append buckets []

let events t = merge t.pevents
let messages t = merge t.pmsgs
let spans t = merge t.pspans
let fault_events t = merge t.pfaults

let queue_delay m =
  if m.received < 0.0 then 0.0 else Float.max 0.0 (m.received -. m.arrival)

let busy_fraction t ~proc ~makespan =
  if makespan <= 0.0 then 0.0
  else
    let i = slot t proc in
    List.fold_left
      (fun acc e ->
        if e.proc = proc && e.kind = Compute then acc +. e.duration else acc)
      0.0 t.pevents.(i)
    /. makespan

let timeline ?(width = 60) t ~nprocs ~makespan =
  if makespan <= 0.0 then "(no simulated time passed)\n"
  else begin
    let all = events t in
    let grid = Array.make_matrix nprocs width ' ' in
    let mark e =
      let c =
        match e.kind with
        | Compute -> '#'
        | Wait -> '.'
        | Overhead -> '+'
        | Stall -> '!'
      in
      let b0 =
        int_of_float (e.start /. makespan *. float_of_int width)
      in
      let b1 =
        int_of_float
          ((e.start +. e.duration) /. makespan *. float_of_int width)
      in
      for b = max 0 b0 to min (width - 1) b1 do
        if e.proc >= 0 && e.proc < nprocs then
          (* computing dominates waiting dominates overhead within a cell *)
          let cur = grid.(e.proc).(b) in
          let rank ch =
            match ch with '!' -> 4 | '#' -> 3 | '.' -> 2 | '+' -> 1 | _ -> 0
          in
          if rank c > rank cur then grid.(e.proc).(b) <- c
      done
    in
    List.iter mark all;
    let buf = Buffer.create (nprocs * (width + 16)) in
    (* mention the stall glyph only when stalls were injected, so fault-free
       timelines stay byte-identical to pre-fault builds *)
    let stalled = List.exists (fun e -> e.kind = Stall) all in
    Buffer.add_string buf
      (Printf.sprintf "timeline over %.4f s  (#=compute  .=wait  +=overhead%s)\n"
         makespan
         (if stalled then "  !=stall" else ""));
    Array.iteri
      (fun p row ->
        Buffer.add_string buf (Printf.sprintf "p%-3d |" p);
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_string buf "|\n")
      grid;
    Buffer.contents buf
  end
