(** Deterministic, seeded fault injection for the simulated machine
    (the [skil_faults] layer).

    A {!plan} describes how the network and the processors misbehave:
    per-message drop / duplication / corruption-flagging probabilities,
    per-link latency spikes, transient processor stalls and fail-stop
    crashes at scheduled {e simulated} times.  Every probabilistic decision
    is drawn from a splittable counter-based PRNG keyed by
    [(seed, src, dst, tag, seq, attempt)], so a run under a given
    [(plan, seed)] is exactly replayable — there is no hidden generator
    state, and two machines consulting the plan in different orders still
    draw identical values for the same message.

    With no plan installed the machine's behaviour (and its wall-clock hot
    path) is bit-identical to a fault-free build; see {!Machine.run}. *)

type link_faults = {
  drop : float;  (** probability a message copy is lost in transit *)
  dup : float;  (** probability a delivered message is duplicated *)
  corrupt : float;
      (** probability a copy arrives corruption-flagged (the payload is
          preserved — the simulator only flags the message; the [Reliable]
          transport treats a flagged copy as lost and retransmits) *)
  delay : float;  (** probability of a latency spike on the link *)
  delay_factor : float;
      (** multiplier applied to the per-message latency when spiked *)
}

type stall = { stall_at : float; stall_for : float }
(** The processor freezes for [stall_for] simulated seconds at the first
    clock-advancing action at or after [stall_at]. *)

type plan = {
  seed : int;
  link : link_faults;
  stalls : (int * stall) list;  (** (processor, stall), any order *)
  crashes : (int * float) list;
      (** fail-stop crashes: (processor, simulated time).  A crash takes
          effect at the end of the first checkpoint-protected region that
          finishes at or after the scheduled time: the region's work is
          discarded, the partition snapshot restored, the reboot penalty
          charged and the region re-executed ({!Machine.protect}).  Crashes
          scheduled on processors that never enter a protected region are
          ignored. *)
  reboot : float;  (** seconds to reboot + restore after a crash *)
  checkpoint : bool;
      (** default checkpoint policy handed to {!Skeletons.create} when the
          caller does not pass one; {!parse} defaults it to [true] exactly
          when the plan schedules crashes *)
}

type decision = {
  d_drop : bool;
  d_dup : bool;
  d_corrupt : bool;
  d_delay_factor : float;  (** 1.0 when the link does not spike *)
}

val no_link_faults : link_faults
val clean : decision

val none : seed:int -> plan
(** A plan that injects nothing (useful as a base for [{ ... with ... }]). *)

val decision :
  plan -> src:int -> dst:int -> tag:int -> seq:int -> attempt:int -> decision
(** The fate of transmission attempt [attempt] of message [seq] on the
    [(src, dst)] link.  Pure: same key, same answer. *)

val uniform : seed:int -> key:int array -> float
(** The underlying splittable draw in [0, 1) — exposed for tests. *)

val parse : ?seed:int -> string -> (plan, string) result
(** Parse a [--faults] spec: comma-separated [key=value] fields.

    {v
    drop=0.1          probability of message loss
    dup=0.05          probability of duplication
    corrupt=0.02      probability of corruption-flagging
    delay=0.1x8       latency spike: probability 0.1, factor 8
    stall=2@0.01+0.005   processor 2 stalls at t=0.01 for 5 ms (repeatable)
    crash=1@0.02      processor 1 fail-stops at t=0.02 (repeatable)
    reboot=0.004      crash reboot penalty in seconds
    ckpt=on|off       override the default checkpoint policy
    seed=N            override the PRNG seed
    v}

    [seed] (default 1) keys the PRNG unless the spec overrides it. *)

val describe : plan -> string
(** One-line human-readable summary of the plan. *)
