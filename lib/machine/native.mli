(** Native execution backend: Skil ranks on real OCaml 5 domains.

    The counterpart of the {!Machine} simulator: ranks are blocked into
    contiguous groups, each group's fibers run on real domains borrowed
    from {!Pool}'s crew, and messages travel through per-link bounded SPSC
    ring buffers in shared memory — no simulated clock, no cost charging.
    Exact receives stay deterministic (each (src, tag) stream is FIFO, a
    Kahn network); {!Machine.recv_any} picks the smallest (wall-clock
    arrival, source rank, link sequence) candidate and is therefore
    timing-dependent, as on a real machine.

    Programs use this module only through {!Machine}'s dispatching context
    ({!Machine.run_native}); the direct API here exists for the dispatch
    layer and for tests. *)

type t
type ctx

type 'r nresult = {
  nvalues : 'r array;  (** per-rank return values *)
  wall : float;  (** wall-clock seconds for the whole run *)
  nstats : Stats.t;  (** message/skeleton counters; makespan = wall *)
}

exception Stalled of (int * string) list
(** No rank can make progress: every live fiber is parked on a receive (or
    on ring space) that no future action can satisfy.  Same payload shape
    as {!Machine.Stalled}. *)

exception Cancelled
(** The run's [cancel] callback returned true at a poll point.  Polled
    cooperatively: at every block drive, at every communication park/retry,
    and at the language engines' per-statement flush (via {!poll_cancel}
    from {!Machine}'s dispatch arms). *)

val run :
  ?cost:Cost_model.t ->
  ?collectives:Coll_alg.mode ->
  ?chan_cap:int ->
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  topology:Topology.t ->
  (ctx -> 'r) ->
  'r nresult
(** Run the SPMD program with real parallelism.  [domains] (default: one
    rank per group) is the number of contiguous-rank groups; the actual
    worker-domain count is clamped by {!Pool.ensure_workers} (the logical
    grouping is always honoured, extra groups queue).  [chan_cap]
    (default 256, rounded up to a power of two) bounds each link's ring;
    senders park fiber-style when a ring is full.  [cost] only seeds the
    collective-selection predictor for non-Legacy [collectives] modes and
    the {!profile} accessor — it never affects execution speed.

    [cancel] (default: never) is polled cooperatively from every driving
    domain and woken fiber; when it returns true the run winds down and
    raises {!Cancelled}.  It may be called from any domain concurrently, so
    it must be thread-safe (an [Atomic.t] read, typically).

    @raise Stalled on deadlock.  @raise Cancelled when [cancel] fires.
    Exceptions raised by the program propagate (first failure wins, as in
    the simulator). *)

(** {1 Context accessors — the native arms of {!Machine}'s dispatch} *)

val self : ctx -> int
val nprocs : ctx -> int
val topology : ctx -> Topology.t
val cost : ctx -> Cost_model.t
val profile : ctx -> Cost_model.profile

val clock : ctx -> float
(** Wall-clock seconds since the run started. *)

val coll_mode : ctx -> Coll_alg.mode
val coll_legacy : ctx -> bool
val coll_net : ctx -> Coll_alg.net
val record_collective : ctx -> name:string -> bytes:int -> unit
val charge_skeleton_call : ctx -> unit

val poll_cancel : ctx -> unit
(** Raise {!Cancelled} if the run's [cancel] callback fires; a single dead
    branch when no callback was installed.  {!Machine}'s per-statement
    charge arms call this so compute-bound Skil programs stay cancellable
    on the native engine. *)

val send :
  ctx -> ?rendezvous:bool -> dest:int -> tag:int -> bytes:int -> 'a -> unit
(** [rendezvous] is accepted for API compatibility and ignored: it only
    shapes simulated time.  Sends to a rank whose program body already
    returned are dropped (the simulator leaves them queued unread). *)

val recv : ctx -> src:int -> tag:int -> 'a
val recv_any : ctx -> tag:int -> int * 'a
val sendrecv : ctx -> dest:int -> src:int -> tag:int -> bytes:int -> 'a -> 'a
val collective : ctx -> (unit -> 'a) -> 'a
val tags : ctx -> int -> int
