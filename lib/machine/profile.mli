(** Aggregation of a structured {!Trace} into performance metrics, plus a
    Chrome [trace_event] JSON exporter.

    This is the analysis half of the [skil_obs] layer: {!Trace} records,
    [Profile] explains.  {!of_trace} turns the raw event stream into

    - per-processor time-by-kind totals and message counts/bytes,
    - per-skeleton (and per-collective) call counts, time and charged ops,
    - the p x p communication matrix (bytes sent from row to column),
    - a critical-path estimate: the longest chain of compute/overhead
      intervals linked by message transits, as a lower bound on the
      makespan of any schedule of the same work.

    {!chrome_json} emits the trace in the Chrome [trace_event] format; load
    the file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}
    (processors appear as threads, skeletons and collectives as nested
    slices, messages as flow arrows). *)

type per_proc = {
  compute : float;
  wait : float;
  overhead : float;
  sent_msgs : int;
  sent_bytes : int;
  recv_msgs : int;
  recv_bytes : int;
}

type per_span = {
  name : string;
  cat : Trace.cat;
  calls : int;
  time : float;  (** summed over all processors *)
  ops_kernel : int;
  ops_mapped : int;
  ops_scalar : int;
}

type t = {
  nprocs : int;
  makespan : float;
  procs : per_proc array;
  spans : per_span list;
      (** by descending [time]; collective spans nest inside skeleton spans,
          so their times overlap the skeletons' *)
  comm_matrix : int array array;  (** [comm_matrix.(src).(dst)] bytes *)
  critical_path : float;  (** seconds; [<= makespan] *)
}

val of_trace : Trace.t -> nprocs:int -> makespan:float -> t

val critical_path_fraction : t -> float
(** [critical_path /. makespan] (0 if no time passed). *)

val pp : Format.formatter -> t -> unit
(** Human-readable report: per-processor table, per-skeleton table,
    communication matrix, critical path. *)

val chrome_json : Trace.t -> nprocs:int -> string
(** The whole trace as Chrome [trace_event] JSON (timestamps in
    microseconds of simulated time). *)
