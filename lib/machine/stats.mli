(** Per-processor and aggregate counters collected during a simulated run. *)

type proc = {
  mutable compute_time : float;  (** seconds of charged sequential work *)
  mutable comm_wait : float;  (** idle time spent waiting for messages *)
  mutable overhead_time : float;  (** send/recv/skeleton software overheads *)
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable hop_bytes : int;  (** sum over messages of [bytes * hops] *)
  mutable skeleton_calls : int;
  mutable msgs_dropped : int;
      (** messages lost by the injected network (charged to the sender) *)
  mutable msgs_retried : int;
      (** retransmission attempts made by the [Reliable] transport *)
  mutable acks_sent : int;
      (** acknowledgements charged at the receiver under [Reliable] *)
  mutable recoveries : int;
      (** checkpoint-restore re-executions after fail-stop crashes *)
  mutable stall_time : float;
      (** seconds lost to injected transient processor stalls *)
  mutable coll_calls : int;
      (** collective operations issued through the algorithm-selecting
          (non-Legacy) code paths *)
  mutable coll_bytes : int;  (** their payload bytes (pre-wire sizes) *)
  mutable coll_algs : (string * int) list;
      (** call count per ["kind[algorithm]"] label *)
}
(** The five fault counters are all zero in fault-free runs, and
    {!pp_summary} omits them when zero — fault-free output is byte-identical
    to builds that predate fault injection. *)

type t = {
  procs : proc array;
  mutable makespan : float;  (** max finishing clock over processors *)
}

val create : int -> t
val fresh_proc : unit -> proc
val proc : t -> int -> proc
val total_msgs : t -> int
val total_bytes : t -> int
val total_dropped : t -> int
val total_retried : t -> int
val total_acks : t -> int
val total_recoveries : t -> int
val total_stall : t -> float
val total_coll_calls : t -> int
val total_coll_bytes : t -> int

val coll_alg_totals : t -> (string * int) list
(** Aggregate call count per ["kind[algorithm]"] label, sorted. *)

val count_collective : proc -> name:string -> bytes:int -> unit
val max_compute : t -> float
val avg_comm_wait : t -> float
val pp_summary : Format.formatter -> t -> unit
