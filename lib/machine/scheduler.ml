type _ Effect.t += Block_current : unit Effect.t

type state =
  | Ready of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type t = {
  mutable fibers : state array;
  mutable nfibers : int;
  runnable : int Queue.t;
  mutable current : int;
  mutable finished : int;
  mutable describe : int -> string option;
      (* consulted only when a deadlock is detected, so describing blocked
         fibers costs nothing on the block/wake hot path *)
}

exception Deadlock of (int * string option) list

let create () =
  {
    fibers = Array.make 8 Finished;
    nfibers = 0;
    runnable = Queue.create ();
    current = -1;
    finished = 0;
    describe = (fun _ -> None);
  }

let set_describer t f = t.describe <- f

let spawn t f =
  if t.nfibers = Array.length t.fibers then begin
    let bigger = Array.make (2 * t.nfibers) Finished in
    Array.blit t.fibers 0 bigger 0 t.nfibers;
    t.fibers <- bigger
  end;
  let id = t.nfibers in
  t.fibers.(id) <- Ready f;
  t.nfibers <- t.nfibers + 1;
  Queue.add id t.runnable;
  id

let block _t = Effect.perform Block_current

(* Invariant: every [Ready] fiber is already in the runnable queue —
   [spawn] is the only transition into [Ready] and it enqueues atomically
   with the state change.  So waking a [Ready] fiber must NOT enqueue it
   again: a duplicate entry would run the fiber's body twice ([run] would
   find it [Ready] both times before the first dispatch flips it to
   [Running]).  [Running] needs no entry (it is executing right now) and a
   wake that races with termination finds [Finished] and is dropped; only
   [Suspended] fibers are resumable.  Pinned by the "wake" cases in
   [test/test_machine.ml]. *)
let wake t id =
  match t.fibers.(id) with
  | Suspended _ -> Queue.add id t.runnable
  | Ready _ | Running | Finished -> ()

let current t =
  if t.current < 0 then invalid_arg "Scheduler.current: not inside a fiber";
  t.current

let handler t id =
  let open Effect.Deep in
  {
    retc =
      (fun () ->
        t.fibers.(id) <- Finished;
        t.finished <- t.finished + 1);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Block_current ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.fibers.(id) <- Suspended k)
        | _ -> None);
  }

let blocked_ids t =
  let acc = ref [] in
  for id = t.nfibers - 1 downto 0 do
    match t.fibers.(id) with
    | Suspended _ -> acc := id :: !acc
    | Ready _ | Running | Finished -> ()
  done;
  !acc

(* Drain the runnable queue and return.  Unlike [run], an empty queue with
   unfinished fibers is not a deadlock here: a PDES shard goes idle whenever
   its fibers all wait on messages from other shards, and is re-run once a
   cross-shard delivery wakes one of them.  Global stall detection is the
   shard coordinator's job (it sees every shard idle at once). *)
let run_until_idle t =
  let continue_ = ref true in
  while !continue_ do
    match Queue.take_opt t.runnable with
    | None -> continue_ := false
    | Some id -> (
        t.current <- id;
        (match t.fibers.(id) with
         | Ready f ->
             t.fibers.(id) <- Running;
             Effect.Deep.match_with f () (handler t id)
         | Suspended k ->
             t.fibers.(id) <- Running;
             Effect.Deep.continue k ()
         | Running -> assert false
         | Finished -> ());
        t.current <- -1)
  done

let all_finished t = t.finished >= t.nfibers

let run t =
  while t.finished < t.nfibers do
    match Queue.take_opt t.runnable with
    | None ->
        raise
          (Deadlock (List.map (fun id -> (id, t.describe id)) (blocked_ids t)))
    | Some id -> (
        t.current <- id;
        (match t.fibers.(id) with
         | Ready f ->
             t.fibers.(id) <- Running;
             Effect.Deep.match_with f () (handler t id)
         | Suspended k ->
             t.fibers.(id) <- Running;
             Effect.Deep.continue k ()
         | Running -> assert false
         | Finished ->
             (* stale queue entry from a wake that raced with termination *)
             ());
        t.current <- -1)
  done
