(** Hardware and virtual topologies of the simulated Parsytec-style machine.

    The hardware is a [width x height] 2-D mesh of processors with XY
    routing.  Processors are identified by ranks [0 .. nprocs-1].  A virtual
    (software) topology in the sense of Parix maps ranks onto mesh positions;
    with [optimized_embedding] the mapping folds rings and tori into the mesh
    so that every virtual neighbour is at most 2 hops away, mirroring Parix's
    optimized virtual topologies.  Without it (the paper's "old C" style)
    ranks are laid out row-major and wrap-around edges route across the whole
    mesh. *)

type virtual_kind =
  | Default  (** identity mapping onto the mesh *)
  | Ring  (** 1-D ring over all processors *)
  | Torus2d  (** 2-D torus over the processor grid *)

type t

val create :
  ?embedding_optimized:bool -> width:int -> height:int -> virtual_kind -> t
(** [create ~width ~height kind] builds a topology over a [width x height]
    mesh.  [embedding_optimized] defaults to [true].
    @raise Invalid_argument if [width <= 0] or [height <= 0]. *)

val mesh : width:int -> height:int -> t
(** Mesh with the [Default] virtual topology. *)

val ring : nprocs:int -> t
(** Ring folded onto a near-square mesh of [nprocs] processors. *)

val torus2d : ?embedding_optimized:bool -> width:int -> height:int -> unit -> t
(** 2-D torus over a [width x height] processor grid. *)

val nprocs : t -> int
val width : t -> int
val height : t -> int
val kind : t -> virtual_kind
val embedding_optimized : t -> bool

val grid_coords : t -> int -> int * int
(** [grid_coords t rank] is the [(column, row)] position of [rank] in the
    logical processor grid (row-major numbering). *)

val rank_of_grid : t -> int * int -> int
(** Inverse of {!grid_coords}; coordinates taken modulo the grid. *)

val mesh_position : t -> int -> int * int
(** Physical mesh position of a rank under the embedding. *)

val hops : t -> int -> int -> int
(** [hops t a b] is the number of mesh links a message from [a] to [b]
    traverses under XY routing of the embedded positions.  [hops t a a = 0]. *)

val ring_next : t -> int -> int
val ring_prev : t -> int -> int

val torus_neighbor : t -> int -> [ `North | `South | `East | `West ] -> int
(** Neighbour in the logical processor grid with wrap-around.  North/South
    move along rows (second coordinate), East/West along columns. *)

val square_side : t -> int option
(** [Some s] iff the processor grid is square with side [s] (needed by
    Gentleman's algorithm). *)

val digest : t -> int
(** Checksum of the precomputed position/hop-distance tables.  A topology
    value is immutable after {!create}, so it (and the {!Coll_alg.net}
    predictor tables derived from it) is shared read-only across the
    domains of a sharded [Machine.run]; the machine asserts the digest is
    unchanged after the run to pin the no-mutation-after-publication
    contract. *)

val pp : Format.formatter -> t -> unit
