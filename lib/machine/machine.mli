(** Deterministic simulator of a distributed-memory message-passing machine
    (the Parsytec MC / Parix substrate of the paper).

    {!run} executes one SPMD program: the same function on every processor,
    each as a cooperative fiber with its own simulated clock.  Point-to-point
    messages are matched by (source, tag) in FIFO order, so a run is fully
    deterministic.  Clocks advance through explicit {!charge} / {!compute}
    calls and through the communication cost model; they never depend on
    host wall-clock time. *)

type t
type ctx

type 'r result = {
  values : 'r array;
  time : float;
  stats : Stats.t;
  trace : Trace.t;
}
(** [values.(i)] is processor [i]'s return value; [time] is the makespan
    (max finishing clock); [trace] is empty unless requested. *)

exception Stalled of (int * string) list
(** The machine made no progress: every live fiber is blocked.  Carries, for
    each blocked processor, a description of the receive it is parked on —
    source, tag and its clock at block time.  Raised instead of a silent
    {!Scheduler.Deadlock} both for genuine program deadlocks and for
    receivers starved by dropped messages under a fault plan without
    [~reliable]. *)

val stall_diagnostic : (int * string) list -> string
(** Render a {!Stalled} payload as a multi-line human-readable report. *)

exception Cancelled
(** The run's [cancel] callback returned true at a cooperative poll point
    (every simulated-clock advance, every native block drive and
    communication park).  The same constructor is raised by both engines
    (it is {!Native.Cancelled} re-exported), so one handler covers any
    backend — the service layer's deadline watchdog relies on this. *)

val run :
  ?cost:Cost_model.t ->
  ?trace:bool ->
  ?faults:Fault.plan ->
  ?reliable:bool ->
  ?collectives:Coll_alg.mode ->
  ?sim_domains:int ->
  ?cancel:(unit -> bool) ->
  topology:Topology.t ->
  (ctx -> 'r) ->
  'r result
(** Run an SPMD program on every processor of [topology].  [trace] (default
    false) records per-processor activity intervals (see {!Trace}).

    [sim_domains] (default 1) shards the simulated processors into up to
    that many contiguous-rank logical processes, run as a conservative
    parallel discrete-event simulation on OCaml domains borrowed from
    {!Pool}'s crew.  Results — values, clocks, makespan, stats, traces —
    are bit-identical to the sequential scheduler for every [sim_domains]:
    exact receives form a Kahn network (deterministic under any
    interleaving) and {!recv_any} commits a candidate only when per-link
    lookahead (latency + hop distance, scaled by the fault plan's smallest
    delay factor) proves no earlier arrival can still appear, parking until
    global quiescence otherwise.  The logical shard count is always
    honoured; only the number of backing worker domains is clamped to the
    host (see {!Pool.ensure_workers}), so determinism tests at
    [sim_domains > 1] are meaningful even on a single-core host.

    {!recv_any} — the only source-nondeterministic primitive — uses one
    rule in both engines: the earliest simulated arrival wins, ties broken
    by source rank then enqueue order, and a candidate is committed only
    once lookahead proves no earlier arrival can still appear.  When no
    candidate is provably final the receiver parks; at global idle the
    lowest-ranked parked receiver is granted its earliest deliverable
    message.  The winner is therefore a pure function of simulated arrival
    times, never of host scheduling — which is exactly what makes the
    shard count unobservable.

    [faults] installs a deterministic {!Fault.plan}: messages may be
    dropped, duplicated, corruption-flagged or delayed, processors may
    transiently stall, and scheduled fail-stop crashes make
    checkpoint-protected regions ({!protect}) lose and re-execute their
    work.  Every decision is a pure function of the plan's seed and the
    message key, so a run is exactly replayable.  With [faults] absent and
    [reliable] false the simulation is bit-identical (values, clocks, stats,
    traces) to builds without fault injection — the fault machinery is a
    dead branch behind cached booleans.

    [reliable] (default false) turns on the [Reliable] transport: sequence
    numbers, receiver-side dedup of duplicated copies, and ack/timeout/retry
    with capped exponential backoff, all charged in simulated time.
    Retransmission is resolved at send time from the plan's pure decisions,
    so delivery — and hence program values for deterministic-order programs
    — always matches the fault-free run; only timing degrades.  (Programs
    using {!recv_any} may observe a different winner when latency spikes
    reorder arrivals.)

    [cancel] (default: never) installs a cooperative cancellation
    callback, polled at every clock advance ({!compute}/{!charge} and the
    communication overheads all funnel through the poll).  When it returns
    true the run raises {!Cancelled}.  It may be invoked from any domain
    under [sim_domains > 1], so it must be thread-safe — an [Atomic.t]
    read, typically.  With [cancel] absent, behaviour (values, clocks,
    stats, traces) is byte-identical to builds without the hook.

    @raise Stalled if the program deadlocks or starves (see above).
    @raise Cancelled when [cancel] fires.
    Exceptions raised by the program propagate.

    [collectives] (default {!Coll_alg.Legacy}) picks the collective-algorithm
    mode for the run: [Legacy] keeps the seed's binomial-tree code paths
    (bit-identical output); [Auto] selects per call from the cost model;
    [Force a] pins algorithm [a] wherever it applies. *)

val run_native :
  ?cost:Cost_model.t ->
  ?collectives:Coll_alg.mode ->
  ?chan_cap:int ->
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  topology:Topology.t ->
  (ctx -> 'r) ->
  'r result
(** Run the SPMD program on the {!Native} backend: ranks blocked into up
    to [domains] contiguous groups (default: one rank per group) executing
    with real parallelism on {!Pool}'s worker domains, messages through
    shared-memory ring buffers of capacity [chan_cap] (default 256), no
    simulated clock.  The result's [time] is wall-clock seconds, [stats]
    carries the usual message/skeleton counters (makespan = wall), and the
    trace is empty.  Exact receives are deterministic (Kahn network);
    {!recv_any} picks the earliest wall-clock arrival and is therefore
    timing-dependent — the simulator remains the oracle for makespans and
    for deterministic [recv_any] winners.  [cost] only seeds the
    collective-selection predictor (non-Legacy [collectives]) and
    {!profile}.  [cancel] is polled cooperatively (block drives,
    communication parks, per-statement charges) and raises {!Cancelled};
    see {!Native.run}.  @raise Stalled on deadlock. *)

(** {1 Processor context} *)

val self : ctx -> int
val nprocs : ctx -> int
val topology : ctx -> Topology.t
val cost : ctx -> Cost_model.t
val profile : ctx -> Cost_model.profile
val clock : ctx -> float

val coll_mode : ctx -> Coll_alg.mode
(** The run's collective-algorithm mode (see [run]'s [collectives]). *)

val coll_legacy : ctx -> bool
(** [coll_mode ctx = Legacy], cached. *)

val coll_net : ctx -> Coll_alg.net
(** The topology/cost summary the selection layer predicts from.  Only
    built for non-Legacy runs; raises [Invalid_argument] under Legacy. *)

val record_collective : ctx -> name:string -> bytes:int -> unit
(** Count one collective call ([name] is the ["kind[algorithm]"] label) in
    this processor's {!Stats.proc}. *)

val compute : ctx -> float -> unit
(** Charge raw seconds of sequential work (no profile factor applied). *)

val charge : ctx -> Cost_model.op_class -> ops:int -> base:float -> unit
(** Charge [ops * base * factor] seconds, where the factor comes from the
    run's language profile and the operation class. *)

val charge_scalar_nodes : ctx -> ops:int -> unit
(** Exactly [charge ctx Scalar ~ops ~base:Calibration.scalar_node_op], with
    the profile factor hoisted to machine construction — the per-statement
    flush hook of the Skil execution engines.  The floating-point operand
    order matches {!charge}, so clocks are bit-identical either way. *)

val charge_skeleton_call : ctx -> unit
(** Charge the profile's fixed per-skeleton-invocation overhead. *)

val charge_copy : ctx -> bytes:int -> unit
(** Charge a contiguous local memory copy of [bytes] bytes. *)

(** {1 Crash protection} *)

val checkpoint_default : ctx -> bool
(** Whether the installed fault plan asks skeletons to checkpoint their
    partitions ([false] when no plan is installed) — the default for
    [Skeletons.create]'s checkpoint policy. *)

val protect :
  ctx ->
  bytes:int ->
  snapshot:(unit -> 'snap) ->
  restore:('snap -> unit) ->
  (unit -> 'a) ->
  'a
(** [protect ctx ~bytes ~snapshot ~restore f] runs the local,
    communication-free region [f] under fail-stop crash protection.  If the
    fault plan schedules a crash on this processor and the region's end
    clock reaches the crash time, the region's work is lost: [restore] puts
    back the snapshot taken on entry, the plan's reboot penalty and the two
    [bytes]-sized copies (checkpoint + restore) are charged, and [f] is
    re-executed.  With no crash pending the region runs at zero cost —
    fault-free runs never snapshot.  [f] must be idempotent given [restore]
    (true for the skeleton layer's partition loops, whose only effects are
    writes to the snapshotted partitions). *)

(** {1 Trace spans}

    Bracket a region of the program as a {!Trace.span} (which skeleton or
    collective the processor is executing).  Zero simulated cost; no-ops
    unless the run was started with [~trace:true].  Spans nest (a collective
    inside a skeleton); element-ops charged through {!charge} are attributed
    to the innermost open span. *)

val span_begin : ctx -> cat:Trace.cat -> string -> unit
val span_end : ctx -> unit

val with_span : ctx -> cat:Trace.cat -> string -> (unit -> 'a) -> 'a
(** [with_span ctx ~cat name f] = [span_begin]; [f ()]; [span_end]. *)

(** {1 Point-to-point communication}

    Payloads travel through an untyped internal representation, exactly like
    MPI buffers: the receiver must expect the type the matching sender put
    in.  The skeleton library guarantees this by always pairing sends and
    receives from the same SPMD call site with the same element type.  [tag]
    disambiguates concurrent exchanges; [bytes] is the simulated wire size
    used for cost accounting. *)

val send : ctx -> ?rendezvous:bool -> dest:int -> tag:int -> bytes:int -> 'a -> unit
(** Asynchronous under async profiles: only local overhead is charged and
    the message arrives at [clock + overhead + latency + hops * per_hop +
    bytes * per_byte].  Under [sync_comm] profiles — or when [rendezvous]
    is set, as on the transputer's synchronous links used by the virtual
    tree topologies — the sender's clock also advances to the arrival time
    (no overlap).  Self-sends are allowed. *)

val recv : ctx -> src:int -> tag:int -> 'a
(** Blocks (in simulation order) until a message from [src] with [tag] is
    available; the local clock advances to at least its arrival time. *)

val recv_any : ctx -> tag:int -> int * 'a
(** Receive from any source (MPI's ANY_SOURCE): deterministic choice of the
    queued message with the earliest arrival time (ties broken by lowest
    source rank).  Returns the source and the payload.  Needed by
    master/worker skeletons ({!Task_skel.farm}). *)

val sendrecv :
  ctx -> dest:int -> src:int -> tag:int -> bytes:int -> 'a -> 'a
(** [send] to [dest] then [recv] from [src] with the same [tag]. *)

(** {1 Collective helpers} *)

val collective : ctx -> (unit -> 'a) -> 'a
(** Evaluate [f] once per {e collective call site} and hand the same value to
    every processor (used to share handles of freshly created distributed
    structures; costs nothing in simulated time).  All processors must reach
    collective call sites in the same order — the usual SPMD discipline. *)

val tags : ctx -> int -> int
(** [tags ctx n] reserves [n] consecutive fresh tag values shared by all
    processors (a collective call). *)
