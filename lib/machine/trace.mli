(** Structured event tracing of simulated runs (the [skil_obs] layer).

    When {!Machine.run} is called with [~trace:true], three kinds of events
    are recorded:

    - {e activity intervals} — every clock-advancing action as an interval
      on the owning processor's timeline: computation, communication waits,
      software overheads;
    - {e message events} — one record per point-to-point message with
      source, destination, tag, payload bytes, hop count, send time, wire
      arrival time and consumption time (so queueing delay is observable);
    - {e spans} — bracketed regions marking which skeleton or collective a
      processor was executing, with the element-ops charged inside, broken
      down by {!Cost_model.op_class}.

    Recording costs nothing in {e simulated} time: a traced run produces
    bit-identical clocks, stats and results to an untraced one.  With
    tracing disabled every recording entry point is a no-op behind a cached
    flag, so the cost model's numbers are unchanged and the wall-clock
    overhead is a dead branch.

    {!Profile} aggregates these events into per-skeleton and per-processor
    metrics and exports Chrome [trace_event] JSON. *)

type kind =
  | Compute
  | Wait  (** blocked on a message that had not arrived yet *)
  | Overhead  (** send/recv software costs, skeleton call overheads *)
  | Stall  (** injected transient processor freeze ({!Fault}) *)

type event = { proc : int; start : float; duration : float; kind : kind }

(** Point events marking injected faults and the transport's reactions —
    only present when a run was given a {!Fault.plan} (or [~reliable:true]),
    so fault-free traces are unchanged. *)

type fault_kind =
  | Fdrop  (** message copy lost in transit *)
  | Fdup  (** duplicated copy delivered *)
  | Fcorrupt  (** copy arrived corruption-flagged *)
  | Fdelay  (** latency spike on a link *)
  | Fretry  (** reliable-transport retransmission *)
  | Fstall  (** transient processor freeze *)
  | Fcrash  (** fail-stop crash + checkpoint recovery *)

type fault_event = {
  fkind : fault_kind;
  fproc : int;  (** processor that observed/charged the fault *)
  fpeer : int;  (** other endpoint of the link, [-1] for stalls/crashes *)
  ftag : int;  (** message tag, [-1] for stalls/crashes *)
  ftime : float;
}

val fault_kind_name : fault_kind -> string

type message = {
  src : int;
  dst : int;
  tag : int;
  bytes : int;
  hops : int;
  sent : float;  (** sender's clock when the message was posted *)
  arrival : float;  (** when the last byte reaches the destination *)
  mutable received : float;
      (** receiver's clock when the message was consumed by a [recv];
          negative while still in flight *)
}

type cat = Skeleton | Collective

type span = {
  sproc : int;
  cat : cat;
  name : string;  (** e.g. ["array_map"], ["bcast"] *)
  sstart : float;
  mutable sstop : float;  (** negative while the span is still open *)
  mutable ops_kernel : int;
  mutable ops_mapped : int;
  mutable ops_scalar : int;
      (** element-ops charged within the span, by {!Cost_model.op_class} *)
}

type t

val create : enabled:bool -> nprocs:int -> t
(** Buffers are kept per recording processor (so a PDES-sharded run appends
    without cross-domain contention) and read back in canonical
    processor-major order, which makes exported traces independent of the
    shard count and domain interleaving. *)

val enabled : t -> bool

(** {1 Recording} — called by [Machine]; no-ops when disabled *)

val record : t -> proc:int -> start:float -> duration:float -> kind -> unit

val record_send :
  t ->
  src:int -> dst:int -> tag:int -> bytes:int -> hops:int ->
  sent:float -> arrival:float ->
  message option
(** Returns the record (to be completed by {!mark_received} on delivery),
    or [None] when disabled. *)

val mark_received : message -> time:float -> unit

val record_fault :
  t -> kind:fault_kind -> proc:int -> ?peer:int -> ?tag:int -> time:float ->
  unit -> unit

val span_begin :
  t -> proc:int -> cat:cat -> name:string -> start:float -> span
val span_end : span -> stop:float -> unit
val span_add_ops : span -> Cost_model.op_class -> int -> unit

(** {1 Reading} *)

val events : t -> event list
(** Processor-major; each processor's events in recording order. *)

val messages : t -> message list
(** Sender-major; each sender's messages in send order. *)

val spans : t -> span list
(** Processor-major; each processor's spans in begin order. *)

val fault_events : t -> fault_event list
(** Observer-major, each in recording order; empty for fault-free runs. *)

val queue_delay : message -> float
(** Seconds the message sat delivered-but-unconsumed at the receiver
    (0 for in-flight messages). *)

val busy_fraction : t -> proc:int -> makespan:float -> float
(** Fraction of the makespan the processor spent computing. *)

val timeline :
  ?width:int -> t -> nprocs:int -> makespan:float -> string
(** ASCII utilization chart, one row per processor: ['#'] computing, ['.']
    waiting, ['+'] overhead, ['!'] stalled by an injected fault, [' '] idle
    — one renderer over the interval events.  The legend mentions the stall
    glyph only when stalls occurred, keeping fault-free charts unchanged. *)
