let default_jobs () = Domain.recommended_domain_count ()

(* One persistent, grow-only crew of worker domains serving *work sources*:
   pollable producers of thunks.  The harness's [map]/[run] register a
   temporary source per batch; a PDES-sharded [Machine.run] registers one
   source per machine whose thunks run ready shards.  Workers loop over the
   registered sources (newest first, so a machine nested inside an
   experiment cell gets priority over sibling cells) and sleep when every
   poll returns [None]; [kick] wakes them after new work appears.

   The crew is the single owner of worker domains in the whole system —
   nothing else spawns domains — and its size never exceeds
   [recommended_domain_count () - 1], so experiment cells (--jobs) times
   simulation shards (--sim-domains) can never oversubscribe the host: the
   product is clamped to the crew and excess work items just queue. *)

type source = { sid : int; poll : unit -> (unit -> unit) option }

type crew = {
  mutex : Mutex.t;
  work : Condition.t;
  mutable gen : int; (* bumped by [kick]; guards against lost wakeups *)
  mutable sources : source list; (* newest first *)
  mutable next_sid : int;
  mutable nworkers : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let crew =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    gen = 0;
    sources = [];
    next_sid = 0;
    nworkers = 0;
    stop = false;
    domains = [];
  }

let kick () =
  Mutex.lock crew.mutex;
  crew.gen <- crew.gen + 1;
  Condition.broadcast crew.work;
  Mutex.unlock crew.mutex

let register_source ~poll =
  Mutex.lock crew.mutex;
  let s = { sid = crew.next_sid; poll } in
  crew.next_sid <- crew.next_sid + 1;
  crew.sources <- s :: crew.sources;
  crew.gen <- crew.gen + 1;
  Condition.broadcast crew.work;
  Mutex.unlock crew.mutex;
  s

let unregister_source s =
  Mutex.lock crew.mutex;
  crew.sources <- List.filter (fun s' -> s'.sid <> s.sid) crew.sources;
  Mutex.unlock crew.mutex

(* Poll the sources in order for one thunk.  Called without the mutex —
   polls must be thread-safe (ours claim work under their own locks). *)
let try_claim sources =
  let rec go = function
    | [] -> None
    | s :: rest -> ( match s.poll () with Some t -> Some t | None -> go rest)
  in
  go sources

let run_thunk t =
  try t ()
  with e ->
    (* sources wrap user code and store outcomes; anything escaping here is
       a harness bug, but killing the worker domain would hang shutdown *)
    Printf.eprintf "pool: worker caught %s\n%!" (Printexc.to_string e)

let worker () =
  let rec loop () =
    Mutex.lock crew.mutex;
    let g = crew.gen and sources = crew.sources in
    Mutex.unlock crew.mutex;
    match try_claim sources with
    | Some t ->
        run_thunk t;
        loop ()
    | None ->
        Mutex.lock crew.mutex;
        if (not crew.stop) && crew.gen = g then
          Condition.wait crew.work crew.mutex;
        let st = crew.stop in
        Mutex.unlock crew.mutex;
        if not st then loop ()
  in
  loop ()

(* Drive the registered sources from the calling thread until [stop]
   returns true — the [worker] loop with an external stop condition
   instead of crew shutdown.  This is how a long-lived service keeps jobs
   moving on a host where [ensure_workers] came back with 0: a plain
   systhread calls [drive] and becomes the crew.  Whoever flips [stop]
   must [kick] afterwards, or the driver may stay parked on the condition
   variable. *)
let drive ~stop =
  let rec loop () =
    if not (stop ()) then begin
      Mutex.lock crew.mutex;
      let g = crew.gen and sources = crew.sources in
      Mutex.unlock crew.mutex;
      (match try_claim sources with
      | Some t -> run_thunk t
      | None ->
          Mutex.lock crew.mutex;
          if (not (stop ())) && crew.gen = g then
            Condition.wait crew.work crew.mutex;
          Mutex.unlock crew.mutex);
      loop ()
    end
  in
  loop ()

let worker_count () =
  Mutex.lock crew.mutex;
  let n = crew.nworkers in
  Mutex.unlock crew.mutex;
  n

let clamp_warned = ref false

(* Grow the crew so at least [n] worker domains exist, clamped to the
   host's capacity (the calling domain always participates, hence the -1).
   Returns the number of workers actually available. *)
let ensure_workers n =
  let cap = max 0 (Domain.recommended_domain_count () - 1) in
  let want = min n cap in
  if n > cap && not !clamp_warned then begin
    clamp_warned := true;
    Printf.eprintf
      "pool: clamping worker domains to %d (host reports %d cores; --jobs x \
       --sim-domains beyond that would oversubscribe)\n%!"
      cap
      (Domain.recommended_domain_count ())
  end;
  Mutex.lock crew.mutex;
  let missing = want - crew.nworkers in
  if missing > 0 then begin
    crew.stop <- false;
    crew.domains <-
      List.init missing (fun _ -> Domain.spawn worker) @ crew.domains;
    crew.nworkers <- crew.nworkers + missing
  end;
  let have = crew.nworkers in
  Mutex.unlock crew.mutex;
  have

let shutdown () =
  Mutex.lock crew.mutex;
  crew.stop <- true;
  Condition.broadcast crew.work;
  let ds = crew.domains in
  crew.domains <- [];
  crew.nworkers <- 0;
  Mutex.unlock crew.mutex;
  List.iter Domain.join ds;
  Mutex.lock crew.mutex;
  crew.stop <- false;
  Mutex.unlock crew.mutex

(* ------------------------------------------------------------------ *)
(* map/run: one temporary source per batch                             *)

type 'b outcome =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let collect outcomes =
  (* first failure in submission order wins, as in a sequential run *)
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Pending -> ())
    outcomes;
  Array.to_list
    (Array.map
       (function Done v -> v | Pending | Raised _ -> assert false)
       outcomes)

let map ?(jobs = default_jobs ()) f xs =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match xs with
  | [] -> []
  | xs when jobs = 1 || List.compare_length_with xs 1 <= 0 -> List.map f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let outcomes = Array.make n Pending in
      let next = Atomic.make 0 in
      let finished = Atomic.make 0 in
      let poll () =
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then None
        else
          Some
            (fun () ->
              outcomes.(i) <-
                (match f items.(i) with
                | v -> Done v
                | exception e -> Raised (e, Printexc.get_raw_backtrace ()));
              if Atomic.fetch_and_add finished 1 = n - 1 then kick ())
      in
      ignore (ensure_workers (min (jobs - 1) (n - 1)) : int);
      let src = register_source ~poll in
      (* the submitting domain works too: first its own batch, then — while
         waiting for stragglers — anything else that is pollable (e.g. the
         shards of a machine a straggler cell is simulating) *)
      let rec drive () =
        match poll () with
        | Some t ->
            t ();
            drive ()
        | None -> ()
      in
      drive ();
      let rec wait_stragglers () =
        if Atomic.get finished < n then begin
          Mutex.lock crew.mutex;
          let g = crew.gen and sources = crew.sources in
          Mutex.unlock crew.mutex;
          (match try_claim sources with
          | Some t -> run_thunk t
          | None ->
              Mutex.lock crew.mutex;
              if Atomic.get finished < n && crew.gen = g then
                Condition.wait crew.work crew.mutex;
              Mutex.unlock crew.mutex);
          wait_stragglers ()
        end
      in
      wait_stragglers ();
      unregister_source src;
      collect outcomes

let run ?jobs thunks = map ?jobs (fun f -> f ()) thunks
