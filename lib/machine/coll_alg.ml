(* Collective-algorithm selection: a closed-form cost predictor per
   (kind, algorithm) built from the same latency/bandwidth coefficients the
   simulator charges, plus per-topology hop statistics.  [select] is a pure
   argmin over the candidate list, so every processor of an SPMD run makes
   the same choice from the same (topology, p, bytes) inputs.

   The predictors mirror the message patterns in Collectives exactly — same
   per-message cost alpha + hops * per_hop + bytes * per_byte, same stage
   counts — so predicted and simulated times track each other closely.  They
   only need to rank algorithms correctly: near a crossover the candidates
   are within a few percent of each other anyway, so a borderline pick is
   harmless. *)

type algorithm =
  | Tree (* binomial tree / recursive halving (the seed's pattern) *)
  | Pipeline (* segmented ring pipeline (bcast) *)
  | Vandegeijn (* binomial scatter + ring allgather (bcast) *)
  | Recdouble (* recursive doubling (allreduce); Bruck for allgather *)
  | Ring (* chunked ring pipeline (reduce / allreduce / allgather) *)
  | Pairwise (* pairwise exchange (alltoall) *)
  | Dissemination (* dissemination barrier *)
  | Linear (* the seed's linear patterns (scan, gather) *)

type kind =
  | Bcast
  | Reduce
  | Allreduce
  | Allgather
  | Alltoall
  | Barrier
  | Scan
  | Gather

type mode = Legacy | Auto | Force of algorithm

let alg_name = function
  | Tree -> "tree"
  | Pipeline -> "pipeline"
  | Vandegeijn -> "vandegeijn"
  | Recdouble -> "recdouble"
  | Ring -> "ring"
  | Pairwise -> "pairwise"
  | Dissemination -> "dissemination"
  | Linear -> "linear"

let kind_name = function
  | Bcast -> "bcast"
  | Reduce -> "reduce"
  | Allreduce -> "allreduce"
  | Allgather -> "allgather"
  | Alltoall -> "alltoall"
  | Barrier -> "barrier"
  | Scan -> "scan"
  | Gather -> "gather"

let mode_names =
  [ "auto"; "tree"; "binomial"; "pipeline"; "vandegeijn"; "recdouble";
    "ring"; "pairwise"; "dissemination"; "linear" ]

(* "tree" is the legacy mode: the seed's exact code paths, byte-identical
   output.  "binomial" forces the same binomial patterns through the new
   framework (same simulated times, but algorithm-labelled spans and
   collective stats). *)
let mode_of_string = function
  | "auto" -> Ok Auto
  | "tree" -> Ok Legacy
  | "binomial" -> Ok (Force Tree)
  | "pipeline" -> Ok (Force Pipeline)
  | "vandegeijn" -> Ok (Force Vandegeijn)
  | "recdouble" -> Ok (Force Recdouble)
  | "ring" -> Ok (Force Ring)
  | "pairwise" -> Ok (Force Pairwise)
  | "dissemination" -> Ok (Force Dissemination)
  | "linear" -> Ok (Force Linear)
  | s ->
      Error
        (Printf.sprintf "unknown collectives mode %s (expected one of %s)" s
           (String.concat ", " mode_names))

let mode_to_string = function
  | Legacy -> "tree"
  | Auto -> "auto"
  | Force a -> alg_name a

(* ------------------------------------------------------------------ *)
(* Network summary: cost coefficients + topology hop statistics        *)

type net = {
  p : int;
  alpha : float; (* send_overhead + recv_overhead + msg_latency *)
  ovh2 : float; (* send_overhead + recv_overhead *)
  recv_ovh : float;
  per_hop : float;
  per_byte : float;
  hop_next : float;
      (* mean hops rank -> rank+1: a ring pattern's dependence chain wraps
         the whole ring, so it pays every edge's hop cost — the mean, not
         the worst edge, is what each step costs on average *)
  hop_pow2 : int array;
      (* hop_pow2.(k) = max hops rank -> rank + 2^k: a binomial round's
         critical path does go through the worst edge of that round *)
  diam : int; (* max hops over all pairs *)
}

let rounds_of p =
  let r = ref 0 and v = ref 1 in
  while !v < p do
    incr r;
    v := 2 * !v
  done;
  !r

let net_of topo ~latency ~per_hop ~per_byte ~send_ovh ~recv_ovh =
  let p = Topology.nprocs topo in
  let max_dist d =
    let m = ref 0 in
    for i = 0 to p - 1 do
      m := max !m (Topology.hops topo i ((i + d) mod p))
    done;
    !m
  in
  let mean_next () =
    let s = ref 0 in
    for i = 0 to p - 1 do
      s := !s + Topology.hops topo i ((i + 1) mod p)
    done;
    float_of_int !s /. float_of_int p
  in
  let diam = ref 0 in
  for i = 0 to p - 1 do
    for j = i + 1 to p - 1 do
      diam := max !diam (Topology.hops topo i j)
    done
  done;
  {
    p;
    alpha = send_ovh +. recv_ovh +. latency;
    ovh2 = send_ovh +. recv_ovh;
    recv_ovh;
    per_hop;
    per_byte;
    hop_next = (if p > 1 then mean_next () else 0.0);
    hop_pow2 = Array.init (rounds_of p) (fun k -> max_dist (1 lsl k));
    diam = !diam;
  }

(* ------------------------------------------------------------------ *)

let candidates = function
  | Bcast -> [ Tree; Pipeline; Vandegeijn ]
  | Reduce -> [ Tree; Ring ]
  | Allreduce -> [ Tree; Recdouble; Ring ]
  | Allgather -> [ Recdouble; Ring ]
  | Alltoall -> [ Pairwise ]
  | Barrier -> [ Dissemination; Tree ]
  | Scan -> [ Tree; Linear ]
  | Gather -> [ Linear; Tree ]

let stagef net h b =
  net.alpha +. (h *. net.per_hop) +. (float_of_int b *. net.per_byte)

let stage net h b = stagef net (float_of_int h) b

(* One binomial-tree traversal: ceil(log2 p) sequential stages, the stage at
   round k jumping a vrank distance of 2^k. *)
let sum_tree net b =
  Array.fold_left (fun acc h -> acc +. stage net h b) 0.0 net.hop_pow2

let chunk_of p b = max 1 ((b + p - 1) / p)

(* Segment count for the pipelined broadcast: balance the fill term
   (p-1) * seg * per_byte against the drain term (S-1) * ovh2, with segments
   no smaller than 32 bytes and at most 64 of them.  Shared by the predictor
   and the implementation so the model stays honest. *)
let pipeline_plan net ~bytes =
  if bytes <= 32 || net.p <= 2 then (1, max bytes 0)
  else begin
    let s_star =
      sqrt
        (float_of_int ((net.p - 1) * bytes) *. net.per_byte /. net.ovh2)
    in
    let s = int_of_float (Float.round s_star) in
    let s = min 64 (max 1 (min s (bytes / 32))) in
    let seg = (bytes + s - 1) / s in
    let s = (bytes + seg - 1) / seg in
    (s, seg)
  end

let is_pow2 p = p land (p - 1) = 0

let predict net kind ~bytes alg =
  let p = net.p in
  if p <= 1 then 0.0
  else
    let b = max bytes 0 in
    match (kind, alg) with
    | (Bcast | Reduce), Tree -> sum_tree net b
    | Allreduce, Tree -> 2.0 *. sum_tree net b
    | Barrier, Tree -> 2.0 *. sum_tree net 0
    | Barrier, Dissemination -> sum_tree net 0
    | Bcast, Pipeline ->
        let s, seg = pipeline_plan net ~bytes:b in
        (float_of_int (p - 1) *. stagef net net.hop_next seg)
        +. (float_of_int (s - 1) *. net.ovh2)
    | Bcast, Vandegeijn ->
        (* recursive-halving scatter (the root's first send carries half the
           payload), then a ring allgather of the p chunks *)
        let c = chunk_of p b in
        let k = Array.length net.hop_pow2 in
        let scatter = ref 0.0 in
        for i = 1 to k do
          scatter :=
            !scatter +. stage net net.hop_pow2.(k - i) (max c (b lsr i))
        done;
        !scatter +. (float_of_int (p - 1) *. stagef net net.hop_next c)
    | Reduce, Ring ->
        (* chunked reduce-scatter around the ring, then every rank ships its
           chunk straight to the root *)
        let c = chunk_of p b in
        (float_of_int (p - 1) *. stagef net net.hop_next c)
        +. stage net net.diam c
        +. (float_of_int (p - 2) *. net.recv_ovh)
    | Allreduce, Recdouble ->
        let kfloor =
          if is_pow2 p then Array.length net.hop_pow2
          else Array.length net.hop_pow2 - 1
        in
        let core = ref 0.0 in
        for k = 0 to kfloor - 1 do
          core := !core +. stage net net.hop_pow2.(k) b
        done;
        !core
        +. (if is_pow2 p then 0.0 else 2.0 *. stagef net net.hop_next b)
    | Allreduce, Ring ->
        let c = chunk_of p b in
        2.0 *. float_of_int (p - 1) *. stagef net net.hop_next c
    | Allgather, Ring -> float_of_int (p - 1) *. stagef net net.hop_next b
    | Allgather, Recdouble ->
        (* Bruck: round k moves min(2^k, p - 2^k) items *)
        let t = ref 0.0 and k = ref 1 in
        let i = ref 0 in
        while !k < p do
          t := !t +. stage net net.hop_pow2.(!i) (min !k (p - !k) * b);
          k := 2 * !k;
          incr i
        done;
        !t
    | Alltoall, Pairwise -> float_of_int (p - 1) *. stage net net.diam b
    | Scan, Tree -> sum_tree net b
    | Scan, Linear -> float_of_int (p - 1) *. stagef net net.hop_next b
    | Gather, Linear ->
        stage net net.diam b +. (float_of_int (p - 2) *. net.recv_ovh)
    | Gather, Tree ->
        let t = ref 0.0 and k = ref 1 in
        let i = ref 0 in
        while !k < p do
          t := !t +. stage net net.hop_pow2.(!i) (min !k (p - !k) * b);
          k := 2 * !k;
          incr i
        done;
        !t
    | _ -> infinity

let select net kind ~bytes =
  match candidates kind with
  | [] -> invalid_arg "Coll_alg.select: no candidates"
  | first :: rest ->
      let best = ref first and best_t = ref (predict net kind ~bytes first) in
      List.iter
        (fun a ->
          let t = predict net kind ~bytes a in
          if t < !best_t then begin
            best := a;
            best_t := t
          end)
        rest;
      !best

(* A forced algorithm applies wherever it is a candidate for the kind;
   elsewhere (forcing [pipeline] says nothing about a reduce) selection
   falls back to the model. *)
let force net kind ~bytes alg =
  if List.mem alg (candidates kind) then alg else select net kind ~bytes
