(** Line-framed wire protocol of the skild daemon.

    Requests: [PING], [STATS], [QUIT], or [JOB key=value ...] followed by
    exactly [src-bytes] raw bytes of Skil source plus one ['\n'].  Replies:
    [PONG], [STATS ...], [OK ...] or [ERR ...] — always exactly one line
    per accepted job.  Values are percent-escaped so header and reply
    lines never contain raw spaces or newlines from payload data. *)

val escape : string -> string
(** Percent-escape: printable ASCII except ['%'] passes through; space,
    control bytes, ['%'] and non-ASCII become [%XX]. *)

val unescape : string -> (string, string) result

val parse_kv : string -> ((string * string) list, string) result
(** Split ["k=v k=v ..."] (values escaped) into an assoc list. *)

val render_kv : (string * string) list -> string

type request =
  | Ping
  | Stats_req
  | Quit
  | Job of (string * string) list
      (** header fields; the source body is framed separately by
          [src-bytes] *)

val parse_request : string -> (request, string) result
val render_job_header : (string * string) list -> string

type reply =
  | Ok_reply of {
      id : string;
      cache_hit : bool;
      engine : string;
      ms : float;  (** service time: compile (on a miss) + run, in ms *)
      value : string;  (** [Value.describe] of processor 0's return value *)
      output : string;
          (** the job's printed output rendered exactly as
              [skilc run-par] prints it (["[proc N] ..."] lines) *)
    }
  | Err_reply of { id : string; cls : Errclass.t; msg : string }

val render_reply : reply -> string
(** One line, no trailing newline. *)

val parse_reply : string -> (reply, string) result
(** Used by the load generator and the tests to assert every reply is
    well-formed. *)
