(* skild's engine room: a crash-isolated, backpressured job executor.

   Layering: {!Proto} frames lines, {!Jobspec} parses headers, this module
   owns every lifecycle decision — admission (bounded queue, explicit
   shedding), execution (jobs claimed from a persistent {!Pool} work
   source, so Skil ranks and service jobs share one domain crew), deadline
   reaping (a watchdog flags, the engines' cooperative cancellation polls
   raise {!Machine.Cancelled}), capped-exponential-backoff retries for
   transient contention (the native-engine admission token), LRU-cached
   compilation ({!Progcache}), and graceful drain.

   Invariants the tests pin:
   - the daemon thread never dies on job input: every exception a job can
     raise is classified by {!Errclass} into exactly one ERR reply;
   - every *accepted* job (enqueued at submit time) is answered exactly
     once — the reply gate is an atomic test-and-set per job — and shed or
     rejected submissions get exactly one ERR at the door;
   - after [drain] returns, no job is queued, delayed or running. *)

type config = {
  workers : int; (* jobs allowed to run concurrently *)
  queue_cap : int; (* bounded admission queue; beyond it, shed *)
  cache_cap : int; (* compiled-program LRU entries *)
  default_deadline_ms : int; (* 0 = no deadline unless the job asks *)
  default_retries : int; (* transient-failure retry budget *)
  retry_base_ms : int; (* backoff = min (cap, base * 2^(attempt-1)) *)
  retry_cap_ms : int;
  max_src_bytes : int; (* oversized sources are rejected at the door *)
  max_native : int; (* concurrent native-engine jobs (domain pressure) *)
  tick_ms : int; (* watchdog period *)
}

let default_config =
  {
    workers = 2;
    queue_cap = 64;
    cache_cap = 128;
    default_deadline_ms = 0;
    default_retries = 2;
    retry_base_ms = 5;
    retry_cap_ms = 200;
    max_src_bytes = 1 lsl 20;
    max_native = 2;
    tick_ms = 2;
  }

type cancel_reason = Rdeadline | Rdisconnect

type client = {
  cid : int;
  cwrite : string -> unit; (* one reply line, no newline; may raise *)
  cmx : Mutex.t; (* serialises writes; guards cdead *)
  mutable cdead : bool;
}

type job = {
  spec : Jobspec.t;
  jsource : string;
  jclient : client;
  jdeadline : float option; (* absolute wall-clock, fixed at admission *)
  jretries : int;
  mutable jattempts : int; (* transient attempts so far *)
  jcancel : cancel_reason option Atomic.t;
  janswered : bool Atomic.t; (* the exactly-once reply gate *)
}

type counters = {
  mutable accepted : int;
  mutable ok : int;
  mutable err : int;
  mutable shed : int; (* overload replies at the door *)
  mutable rejected : int; (* draining/badreq replies at the door *)
  mutable retried : int; (* backoff requeues *)
  mutable reaped : int; (* deadline cancellations flagged *)
  mutable dropped : int; (* replies not deliverable: client dead *)
}

type t = {
  cfg : config;
  mx : Mutex.t;
  cv : Condition.t; (* pending-count changes (drain waits here) *)
  jobq : job Queue.t;
  mutable delayed : (float * job) list; (* (due, job), unordered *)
  mutable running : job list;
  mutable running_now : int;
  mutable native_now : int; (* native-engine admission tokens in use *)
  mutable draining : bool;
  mutable stopped : bool;
  cache : Progcache.t;
  c : counters;
  mutable next_cid : int;
  mutable exec_src : Pool.source option;
  mutable watchdog : Thread.t option;
  mutable fallback : Thread.t option; (* drives Pool sources on 0-crew hosts *)
}

let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mx) f

let pending_locked t =
  Queue.length t.jobq + List.length t.delayed + t.running_now

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

(* Deliver one reply line to [c]; a write failure (client socket gone)
   marks the client dead so later replies stop trying.  Returns whether
   the line was actually delivered. *)
let deliver c line =
  Mutex.lock c.cmx;
  let delivered =
    if c.cdead then false
    else
      match c.cwrite line with
      | () -> true
      | exception _ ->
          c.cdead <- true;
          false
  in
  Mutex.unlock c.cmx;
  delivered

(* Exactly-once reply for an accepted job: first caller wins, every later
   completion path finds the gate closed and does nothing. *)
let answer t j reply =
  if Atomic.compare_and_set j.janswered false true then begin
    let delivered = deliver j.jclient (Proto.render_reply reply) in
    locked t (fun () ->
        (match reply with
        | Proto.Ok_reply _ -> t.c.ok <- t.c.ok + 1
        | Proto.Err_reply _ -> t.c.err <- t.c.err + 1);
        if not delivered then t.c.dropped <- t.c.dropped + 1)
  end

let answer_err t j cls msg =
  answer t j (Proto.Err_reply { id = j.spec.Jobspec.id; cls; msg })

(* Door replies (shed/rejected submissions never become jobs). *)
let refuse t client ~id cls msg =
  let delivered =
    deliver client (Proto.render_reply (Proto.Err_reply { id; cls; msg }))
  in
  locked t (fun () ->
      (match cls with
      | Errclass.Overload -> t.c.shed <- t.c.shed + 1
      | _ -> t.c.rejected <- t.c.rejected + 1);
      if not delivered then t.c.dropped <- t.c.dropped + 1)

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)

let backoff_ms cfg attempt =
  let rec go v k = if k <= 1 || v >= cfg.retry_cap_ms then v else go (2 * v) (k - 1) in
  min cfg.retry_cap_ms (go cfg.retry_base_ms attempt)

let expired j t_now =
  match j.jdeadline with Some d -> t_now > d | None -> false

(* Render the outcome exactly as `skilc run-par` prints it, so clients can
   byte-compare daemon results against direct compiler runs. *)
let render_output (r : Spmd.outcome Machine.result) =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i (o : Spmd.outcome) ->
      if o.Spmd.printed <> "" then
        Buffer.add_string b (Printf.sprintf "[proc %d] %s\n" i o.Spmd.printed))
    r.Machine.values;
  Buffer.contents b

let finish_slot t j ~native_token =
  locked t (fun () ->
      t.running <- List.filter (fun j' -> j' != j) t.running;
      t.running_now <- t.running_now - 1;
      if native_token then t.native_now <- t.native_now - 1;
      Condition.broadcast t.cv);
  (* a queued job may now be admissible *)
  Pool.kick ()

(* Run one claimed job to a reply.  This function must never raise: it is
   the crash-isolation boundary. *)
let run_job t j =
  let spec = j.spec in
  (* flag an expiry the watchdog has not caught yet (e.g. spent its whole
     deadline queued) *)
  if expired j (now ()) then begin
    ignore (Atomic.compare_and_set j.jcancel None (Some Rdeadline) : bool);
    locked t (fun () -> t.c.reaped <- t.c.reaped + 1)
  end;
  match Atomic.get j.jcancel with
  | Some Rdisconnect ->
      answer_err t j Errclass.Disconnect "client disconnected";
      finish_slot t j ~native_token:false
  | Some Rdeadline ->
      answer_err t j Errclass.Deadline
        (Printf.sprintf "deadline of %d ms exceeded before execution"
           (Option.value spec.Jobspec.deadline_ms
              ~default:t.cfg.default_deadline_ms));
      finish_slot t j ~native_token:false
  | None -> (
      (* native-engine admission token: bounded concurrent native jobs
         over the shared domain crew; contention is the transient failure
         the retry/backoff machinery exists for *)
      let token_wanted = spec.Jobspec.engine = `Native in
      let admission =
        locked t (fun () ->
            if not token_wanted then `Go false
            else if t.native_now < t.cfg.max_native then begin
              t.native_now <- t.native_now + 1;
              `Go true
            end
            else begin
              j.jattempts <- j.jattempts + 1;
              if j.jattempts > j.jretries then `Exhausted
              else begin
                (* back off: leave the running set, rejoin the queue when
                   due; capped exponential in the attempt number *)
                let due =
                  now ()
                  +. (float_of_int (backoff_ms t.cfg j.jattempts) /. 1000.)
                in
                t.running <- List.filter (fun j' -> j' != j) t.running;
                t.running_now <- t.running_now - 1;
                t.delayed <- (due, j) :: t.delayed;
                t.c.retried <- t.c.retried + 1;
                Condition.broadcast t.cv;
                `Backoff
              end
            end)
      in
      match admission with
      | `Backoff -> () (* the watchdog re-queues it when due *)
      | `Exhausted ->
          answer_err t j Errclass.Busy
            (Printf.sprintf
               "native engine busy: %d retries exhausted (max %d concurrent \
                native jobs)"
               j.jretries t.cfg.max_native);
          finish_slot t j ~native_token:false
      | `Go native_token ->
          let t0 = now () in
          (try
             let prepared, cache_hit =
               Progcache.find_or_prepare t.cache
                 ~key:(Jobspec.cache_key spec ~source:j.jsource)
                 (fun () ->
                   Spmd.prepare_source ~instantiate:spec.Jobspec.instantiate
                     ~engine:spec.Jobspec.engine
                     ~specialize:spec.Jobspec.specialize
                     ~optimize:spec.Jobspec.optimize j.jsource
                     ~entry:spec.Jobspec.entry)
             in
             match Jobspec.fault_plan spec with
             | Error msg -> answer_err t j Errclass.Invalid ("error: " ^ msg)
             | Ok faults ->
                 let r =
                   Spmd.run_prepared ?faults ~reliable:spec.Jobspec.reliable
                     ~collectives:spec.Jobspec.collectives
                     ~sim_domains:spec.Jobspec.sim_domains
                     ?chan_cap:spec.Jobspec.chan_cap
                     ?native_domains:spec.Jobspec.native_domains
                     ~cancel:(fun () -> Atomic.get j.jcancel <> None)
                     ~cost:(Cost_model.make spec.Jobspec.profile)
                     ~topology:(Jobspec.topology spec) prepared
                     ~args:
                       (List.map (fun n -> Value.VInt n) spec.Jobspec.args)
                 in
                 let ms = (now () -. t0) *. 1000. in
                 answer t j
                   (Proto.Ok_reply
                      {
                        id = spec.Jobspec.id;
                        cache_hit;
                        engine = Jobspec.engine_to_string spec.Jobspec.engine;
                        ms;
                        value =
                          Value.describe r.Machine.values.(0).Spmd.value;
                        output = render_output r;
                      })
           with
          | Machine.Cancelled -> (
              match Atomic.get j.jcancel with
              | Some Rdisconnect ->
                  answer_err t j Errclass.Disconnect
                    "client disconnected mid-job; execution cancelled"
              | Some Rdeadline | None ->
                  answer_err t j Errclass.Deadline
                    (Printf.sprintf
                       "deadline of %d ms exceeded; job cancelled after %.1f \
                        ms"
                       (Option.value spec.Jobspec.deadline_ms
                          ~default:t.cfg.default_deadline_ms)
                       ((now () -. t0) *. 1000.)))
          | e -> (
              match Errclass.of_exn ~file:spec.Jobspec.file e with
              | Some (cls, msg) -> answer_err t j cls msg
              | None ->
                  answer_err t j Errclass.Internal
                    ("uncaught exception: " ^ Printexc.to_string e)));
          finish_slot t j ~native_token)

(* ------------------------------------------------------------------ *)
(* Executor source: how jobs reach the domain crew                     *)

let poll_jobs t () =
  Mutex.lock t.mx;
  let claim =
    if t.running_now < t.cfg.workers && not (Queue.is_empty t.jobq) then begin
      let j = Queue.take t.jobq in
      t.running_now <- t.running_now + 1;
      t.running <- j :: t.running;
      Some j
    end
    else None
  in
  Mutex.unlock t.mx;
  match claim with Some j -> Some (fun () -> run_job t j) | None -> None

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)

let watchdog_pass t =
  let t_now = now () in
  let flag_expired j =
    if expired j t_now && Atomic.get j.jcancel = None then begin
      Atomic.set j.jcancel (Some Rdeadline);
      t.c.reaped <- t.c.reaped + 1
    end
  in
  let due =
    locked t (fun () ->
        List.iter flag_expired t.running;
        Queue.iter flag_expired t.jobq;
        let due, later =
          List.partition (fun (d, _) -> d <= t_now || t.draining) t.delayed
        in
        t.delayed <- later;
        (* re-queue due retries at the front conceptually; order among
           retries does not matter, the queue cap was already paid *)
        List.iter (fun (_, j) -> Queue.add j t.jobq) due;
        if due <> [] then Condition.broadcast t.cv;
        due <> [])
  in
  if due then Pool.kick ()

let watchdog_loop t =
  let tick = float_of_int (max 1 t.cfg.tick_ms) /. 1000. in
  let rec loop () =
    let stop = locked t (fun () -> t.stopped) in
    if not stop then begin
      Thread.delay tick;
      watchdog_pass t;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Service.create: workers must be >= 1";
  if config.queue_cap < 1 then
    invalid_arg "Service.create: queue_cap must be >= 1";
  if config.max_native < 1 then
    invalid_arg "Service.create: max_native must be >= 1";
  let t =
    {
      cfg = config;
      mx = Mutex.create ();
      cv = Condition.create ();
      jobq = Queue.create ();
      delayed = [];
      running = [];
      running_now = 0;
      native_now = 0;
      draining = false;
      stopped = false;
      cache = Progcache.create ~cap:config.cache_cap;
      c =
        {
          accepted = 0;
          ok = 0;
          err = 0;
          shed = 0;
          rejected = 0;
          retried = 0;
          reaped = 0;
          dropped = 0;
        };
      next_cid = 0;
      exec_src = None;
      watchdog = None;
      fallback = None;
    }
  in
  t.exec_src <- Some (Pool.register_source ~poll:(poll_jobs t));
  (* jobs execute on the shared domain crew; when the host has no room for
     worker domains, a plain thread stands in and drives the sources (the
     job's nested machine sources included) *)
  if Pool.ensure_workers config.workers = 0 then
    t.fallback <-
      Some
        (Thread.create
           (fun () -> Pool.drive ~stop:(fun () -> locked t (fun () -> t.stopped)))
           ());
  t.watchdog <- Some (Thread.create watchdog_loop t);
  t

let attach t ~write =
  locked t (fun () ->
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      { cid; cwrite = write; cmx = Mutex.create (); cdead = false })

(* The client went away: stop writing to it and cancel its jobs wherever
   they are.  Queued and delayed jobs keep their slots until a worker picks
   them up and finds the flag — simpler than surgically removing them, and
   the exactly-once accounting stays in one place. *)
let detach t client =
  Mutex.lock client.cmx;
  client.cdead <- true;
  Mutex.unlock client.cmx;
  let flag j =
    if j.jclient == client then
      ignore (Atomic.compare_and_set j.jcancel None (Some Rdisconnect) : bool)
  in
  locked t (fun () ->
      List.iter flag t.running;
      Queue.iter flag t.jobq;
      List.iter (fun (_, j) -> flag j) t.delayed)

let submit t client ~spec ~source =
  let id = spec.Jobspec.id in
  if String.length source > t.cfg.max_src_bytes then
    refuse t client ~id Errclass.Badreq
      (Printf.sprintf "source of %d bytes exceeds the %d-byte limit"
         (String.length source) t.cfg.max_src_bytes)
  else begin
    let verdict =
      locked t (fun () ->
          if t.draining then `Draining
          else if Queue.length t.jobq >= t.cfg.queue_cap then `Full
          else begin
            let deadline_ms =
              match spec.Jobspec.deadline_ms with
              | Some d -> d
              | None -> t.cfg.default_deadline_ms
            in
            let j =
              {
                spec;
                jsource = source;
                jclient = client;
                jdeadline =
                  (if deadline_ms > 0 then
                     Some (now () +. (float_of_int deadline_ms /. 1000.))
                   else None);
                jretries =
                  Option.value spec.Jobspec.retries
                    ~default:t.cfg.default_retries;
                jattempts = 0;
                jcancel = Atomic.make None;
                janswered = Atomic.make false;
              }
            in
            Queue.add j t.jobq;
            t.c.accepted <- t.c.accepted + 1;
            `Accepted
          end)
    in
    match verdict with
    | `Accepted -> Pool.kick ()
    | `Draining ->
        refuse t client ~id Errclass.Draining
          "service is draining; resubmit elsewhere"
    | `Full ->
        refuse t client ~id Errclass.Overload
          (Printf.sprintf "admission queue full (%d jobs); shedding load"
             t.cfg.queue_cap)
  end

(* Stop admitting, zero pending backoffs, and wait until every accepted
   job has been answered.  Idempotent; new submissions during and after
   the drain get ERR draining. *)
(* Wait until no pending job belongs to [client].  A job is always in
   exactly one of jobq/delayed/running (moves happen under [t.mx]), and
   every departure broadcasts [t.cv]. *)
let flush_client t client =
  let pending () =
    let count n j = if j.jclient == client then n + 1 else n in
    Queue.fold count 0 t.jobq
    + List.fold_left (fun n (_, j) -> count n j) 0 t.delayed
    + List.fold_left count 0 t.running
  in
  Mutex.lock t.mx;
  while pending () > 0 do
    Condition.wait t.cv t.mx
  done;
  Mutex.unlock t.mx

let drain t =
  Mutex.lock t.mx;
  t.draining <- true;
  Mutex.unlock t.mx;
  watchdog_pass t (* flush delayed jobs into the queue now *);
  Pool.kick ();
  Mutex.lock t.mx;
  while pending_locked t > 0 do
    Condition.wait t.cv t.mx
  done;
  Mutex.unlock t.mx

let shutdown t =
  drain t;
  Mutex.lock t.mx;
  t.stopped <- true;
  Mutex.unlock t.mx;
  Pool.kick () (* unpark the fallback driver so it sees [stopped] *);
  (match t.watchdog with Some th -> Thread.join th | None -> ());
  (match t.fallback with Some th -> Thread.join th | None -> ());
  t.watchdog <- None;
  t.fallback <- None;
  match t.exec_src with
  | Some s ->
      Pool.unregister_source s;
      t.exec_src <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

type stats = {
  accepted : int;
  ok : int;
  err : int;
  shed : int;
  rejected : int;
  retried : int;
  reaped : int;
  dropped : int;
  cache_hits : int;
  cache_misses : int;
  queued_now : int;
  running_now : int;
  delayed_now : int;
}

let stats t =
  let hits, misses, _ = Progcache.stats t.cache in
  locked t (fun () ->
      {
        accepted = t.c.accepted;
        ok = t.c.ok;
        err = t.c.err;
        shed = t.c.shed;
        rejected = t.c.rejected;
        retried = t.c.retried;
        reaped = t.c.reaped;
        dropped = t.c.dropped;
        cache_hits = hits;
        cache_misses = misses;
        queued_now = Queue.length t.jobq;
        running_now = t.running_now;
        delayed_now = List.length t.delayed;
      })

let stats_line t =
  let s = stats t in
  Printf.sprintf
    "STATS accepted=%d ok=%d err=%d shed=%d rejected=%d retried=%d reaped=%d \
     dropped=%d cache-hits=%d cache-misses=%d queued=%d running=%d delayed=%d"
    s.accepted s.ok s.err s.shed s.rejected s.retried s.reaped s.dropped
    s.cache_hits s.cache_misses s.queued_now s.running_now s.delayed_now

(* ------------------------------------------------------------------ *)
(* Connection loop                                                     *)

(* Serve one client connection over abstract line IO.  [read_line] returns
   [None] at EOF; [read_exact n] returns [None] on a short read.  The loop
   never raises on malformed input — every recognisable request gets a
   reply, and framing resynchronises through the declared [src-bytes]
   whenever possible. *)
let serve t ~read_line ~read_exact ~write =
  let client = attach t ~write in
  let skip_bytes n =
    (* consume and discard a declared source body in bounded chunks *)
    let chunk = 65536 in
    let rec go left =
      left <= 0
      ||
      match read_exact (min left chunk) with
      | Some _ -> go (left - min left chunk)
      | None -> false
    in
    go n
  in
  let bad id msg = refuse t client ~id Errclass.Badreq msg in
  let rec loop () =
    match read_line () with
    | None -> `Eof (* client went away *)
    | Some "" -> loop () (* blank lines between frames are tolerated *)
    | Some line -> (
        match Proto.parse_request line with
        | Error e ->
            bad "-" ("malformed request: " ^ e);
            loop ()
        | Ok Proto.Ping ->
            ignore (deliver client "PONG" : bool);
            loop ()
        | Ok Proto.Quit -> `Quit
        | Ok Proto.Stats_req ->
            ignore (deliver client (stats_line t) : bool);
            loop ()
        | Ok (Proto.Job kvs) -> (
            let id =
              Option.value (List.assoc_opt "id" kvs) ~default:"-"
            in
            match Jobspec.of_kv kvs with
            | Error e ->
                (* resynchronise framing through the declared body length
                   when the field parsed, then report the bad header *)
                let declared =
                  Option.bind (List.assoc_opt "src-bytes" kvs)
                    int_of_string_opt
                in
                let synced =
                  match declared with
                  | Some n when n > 0 -> skip_bytes n && read_line () <> None
                  | _ -> true
                in
                bad id ("bad job header: " ^ e);
                if synced then loop () else `Eof
            | Ok spec ->
                if spec.Jobspec.src_bytes > t.cfg.max_src_bytes then begin
                  let synced =
                    skip_bytes spec.Jobspec.src_bytes && read_line () <> None
                  in
                  bad id
                    (Printf.sprintf
                       "source of %d bytes exceeds the %d-byte limit"
                       spec.Jobspec.src_bytes t.cfg.max_src_bytes);
                  if synced then loop () else `Eof
                end
                else begin
                  match read_exact spec.Jobspec.src_bytes with
                  | None -> `Eof (* EOF mid-source *)
                  | Some source -> (
                      (* the body is followed by exactly one newline *)
                      match read_line () with
                      | None -> `Eof (* EOF before the frame closed *)
                      | Some "" ->
                          submit t client ~spec ~source;
                          loop ()
                      | Some _ ->
                          bad id
                            "source body not followed by a bare newline \
                             (src-bytes mismatch?)";
                          loop ())
                end))
  in
  (match loop () with
  | `Quit ->
      (* QUIT is the clean goodbye: the client wants its answers, so its
         pending jobs are flushed before the detach.  A bare EOF is a
         vanished peer — detach immediately and let disconnect
         cancellation reap whatever it abandoned. *)
      flush_client t client
  | `Eof -> ());
  detach t client
