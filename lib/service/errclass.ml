(* One error classification for the whole stack: `skilc run-par` exit codes
   and `skild` error-reply classes are the same table, so a shell script and
   a service client learn the same thing from a failure.  The renderings
   reuse skilc's historical diagnostic text verbatim (file:line:col
   positions included) — only the classification around them is new. *)

type t =
  | Io (* file/socket trouble: Sys_error *)
  | Invalid (* invalid option combination: Invalid_argument *)
  | Syntax (* lexer/parser diagnostics *)
  | Type_err (* Typecheck.Type_error *)
  | Inst_err (* Instantiate.Unsupported *)
  | Runtime (* Value.Skil_runtime_error *)
  | Stall (* Machine.Stalled: deadlock or starvation *)
  | Deadline (* service: wall-clock deadline exceeded, job reaped *)
  | Overload (* service: admission queue full, job shed *)
  | Draining (* service: shutting down, no new admissions *)
  | Badreq (* service: malformed or oversized request *)
  | Busy (* service: transient-contention retries exhausted *)
  | Disconnect (* service: client went away mid-job *)
  | Internal (* anything unclassified — a bug, but never a crash *)

(* Distinct small integers: process exit codes for skilc (1..7 plus the
   historical 2 for usage errors) and `code=` fields in skild replies.
   Frozen — tests and scripts match on them. *)
let code = function
  | Io -> 1
  | Invalid -> 2
  | Syntax -> 3
  | Type_err -> 4
  | Inst_err -> 5
  | Runtime -> 6
  | Stall -> 7
  | Deadline -> 8
  | Overload -> 9
  | Draining -> 10
  | Badreq -> 11
  | Busy -> 12
  | Disconnect -> 13
  | Internal -> 14

let name = function
  | Io -> "io"
  | Invalid -> "invalid"
  | Syntax -> "syntax"
  | Type_err -> "type"
  | Inst_err -> "instantiate"
  | Runtime -> "runtime"
  | Stall -> "stalled"
  | Deadline -> "deadline"
  | Overload -> "overload"
  | Draining -> "draining"
  | Badreq -> "badreq"
  | Busy -> "busy"
  | Disconnect -> "disconnect"
  | Internal -> "internal"

let of_name = function
  | "io" -> Some Io
  | "invalid" -> Some Invalid
  | "syntax" -> Some Syntax
  | "type" -> Some Type_err
  | "instantiate" -> Some Inst_err
  | "runtime" -> Some Runtime
  | "stalled" -> Some Stall
  | "deadline" -> Some Deadline
  | "overload" -> Some Overload
  | "draining" -> Some Draining
  | "badreq" -> Some Badreq
  | "busy" -> Some Busy
  | "disconnect" -> Some Disconnect
  | "internal" -> Some Internal
  | _ -> None

(* Classify an exception from the compile/run pipeline and render the exact
   diagnostic skilc prints for it.  [file] is the source name in scope (the
   job spec's [file] field in the service), prefixed to positions the
   frontend exceptions carry, so replies hand back `file:line:col:`
   verbatim.  Returns [None] for exceptions that need context this module
   does not have (e.g. {!Machine.Cancelled}, which the service maps to
   [Deadline] or [Disconnect] from the watchdog's recorded reason). *)
let of_exn ?file e =
  let where line col =
    match file with
    | Some p -> Printf.sprintf "%s:%d:%d" p line col
    | None -> Printf.sprintf "%d:%d" line col
  in
  match e with
  | Lexer.Error { line; col; message } ->
      Some (Syntax, Printf.sprintf "%s: lexical error: %s" (where line col) message)
  | Parser.Error { line; col; message } ->
      Some (Syntax, Printf.sprintf "%s: syntax error: %s" (where line col) message)
  | Typecheck.Type_error { line; col; message } ->
      Some (Type_err, Printf.sprintf "%s: type error: %s" (where line col) message)
  | Instantiate.Unsupported { line; message } ->
      Some (Inst_err, Printf.sprintf "%s: not instantiable: %s" (where line 0) message)
  | Value.Skil_runtime_error m -> Some (Runtime, "runtime error: " ^ m)
  | Machine.Stalled blocked -> Some (Stall, Machine.stall_diagnostic blocked)
  | Invalid_argument m -> Some (Invalid, "error: " ^ m)
  | Sys_error m -> Some (Io, m)
  | _ -> None
