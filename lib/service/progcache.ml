(* Compiled-program cache: source-hash -> {!Spmd.prepared}, LRU-evicted.

   "Compile once, run many" is the paper's own economics — skeleton
   instantiation and closure compilation are the expensive, reusable part
   of a job; binding to a topology is cheap.  The service keys handles by
   {!Jobspec.cache_key} (a digest over the source and the translation
   switches), so a client streaming the same program with different
   arguments or machine shapes pays compilation exactly once.

   Concurrency: one mutex guards the table; translation runs *outside* the
   lock (it can take milliseconds and may raise frontend errors), so two
   jobs racing on the same cold key may both compile — benign, the loser's
   handle is dropped and the first insert wins.  Failures are never
   cached: a malformed program re-raises on every submission, which keeps
   error replies honest if the daemon's frontend ever changes. *)

type entry = { value : Spmd.prepared; mutable last_used : int }

type t = {
  mx : Mutex.t;
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int; (* logical clock for LRU ordering *)
  mutable hits : int;
  mutable misses : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Progcache.create: cap must be >= 1";
  {
    mx = Mutex.create ();
    cap;
    tbl = Hashtbl.create (2 * cap);
    tick = 0;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mx) f

(* O(n) scan for the least-recently-used key: [cap] is small (hundreds)
   and eviction only runs on insert, so this never shows on a profile. *)
let evict_excess t =
  while Hashtbl.length t.tbl > t.cap do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, lu) when lu <= e.last_used -> ()
        | _ -> victim := Some (k, e.last_used))
      t.tbl;
    match !victim with
    | Some (k, _) -> Hashtbl.remove t.tbl k
    | None -> assert false (* length > cap >= 1 *)
  done

(* [prepare] is called without the lock when [key] is cold; its exceptions
   propagate uncached.  Returns the handle and whether it was a hit. *)
let find_or_prepare t ~key prepare =
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
            t.tick <- t.tick + 1;
            e.last_used <- t.tick;
            t.hits <- t.hits + 1;
            Some e.value
        | None -> None)
  in
  match cached with
  | Some v -> (v, true)
  | None ->
      let v = prepare () in
      let v =
        locked t (fun () ->
            t.misses <- t.misses + 1;
            match Hashtbl.find_opt t.tbl key with
            | Some e ->
                (* a racing job inserted first; keep the table's copy so
                   every later hit shares one handle *)
                t.tick <- t.tick + 1;
                e.last_used <- t.tick;
                e.value
            | None ->
                t.tick <- t.tick + 1;
                Hashtbl.replace t.tbl key { value = v; last_used = t.tick };
                evict_excess t;
                v)
      in
      (v, false)

let stats t = locked t (fun () -> (t.hits, t.misses, Hashtbl.length t.tbl))
