(** The skild job service: crash-isolated, backpressured execution of Skil
    jobs with deadlines, retries, and graceful drain.

    One {!t} is the whole daemon state: a bounded admission queue, a
    compiled-program LRU cache ({!Progcache}), a persistent {!Pool} work
    source (jobs run on the shared domain crew, exactly where Skil ranks
    and PDES shards run), a watchdog thread that reaps deadline-exceeded
    jobs through the engines' cooperative cancellation, and counters.

    Guarantees (pinned by [test/test_service.ml] and the CI load test):
    every accepted job is answered exactly once; no job input — malformed,
    ill-typed, stalling, crashing, oversized — can kill the service; shed
    and rejected submissions get exactly one [ERR] at the door; after
    {!drain} returns nothing is queued, delayed, or running; job results
    are byte-identical to a direct [skilc run-par] of the same spec. *)

type config = {
  workers : int;  (** jobs allowed to run concurrently (>= 1) *)
  queue_cap : int;  (** bounded admission queue; beyond it, shed (>= 1) *)
  cache_cap : int;  (** compiled-program LRU entries *)
  default_deadline_ms : int;
      (** applied when a job carries no [deadline-ms]; 0 = none *)
  default_retries : int;  (** transient-failure retry budget *)
  retry_base_ms : int;  (** backoff = min (cap, base * 2^(attempt-1)) *)
  retry_cap_ms : int;
  max_src_bytes : int;  (** oversized sources are rejected at the door *)
  max_native : int;  (** concurrent native-engine jobs (>= 1) *)
  tick_ms : int;  (** watchdog period *)
}

val default_config : config
(** 2 workers, queue of 64, cache of 128, no default deadline, 2 retries
    at 5..200 ms backoff, 1 MiB source cap, 2 native tokens, 2 ms tick. *)

type t

val create : ?config:config -> unit -> t
(** Start the service: register the executor source with {!Pool}, grow the
    crew (or start the single-core fallback driver thread when no worker
    domains are available), and start the watchdog.
    Raises [Invalid_argument] on a nonsensical [config]. *)

(** {1 Clients} *)

type client

val attach : t -> write:(string -> unit) -> client
(** Register a reply channel.  [write] delivers one reply line (without
    the trailing newline), may be called from worker domains and the
    watchdog, and is serialised by the service; if it raises, the client
    is marked dead and later replies are counted as dropped instead of
    retried. *)

val detach : t -> client -> unit
(** The client went away: no further writes, and every queued, delayed or
    running job it owns is flagged for disconnect-cancellation.  In-flight
    jobs stop at their next cancellation poll and are answered (into the
    void, counted as dropped) with [ERR class=disconnect] — the
    exactly-once accounting is preserved even for the departed. *)

(** {1 Jobs} *)

val submit : t -> client -> spec:Jobspec.t -> source:string -> unit
(** Admit one job.  Replies immediately with [ERR class=draining] after
    {!drain} began, [ERR class=overload] when the queue is full, or
    [ERR class=badreq] for an oversized source; otherwise the job is
    accepted and will be answered exactly once, asynchronously. *)

val serve :
  t ->
  read_line:(unit -> string option) ->
  read_exact:(int -> string option) ->
  write:(string -> unit) ->
  unit
(** Serve one client connection over abstract line IO ([None] = EOF /
    short read): parse requests ([PING] / [STATS] / [QUIT] / [JOB]
    headers + source bodies), {!submit} jobs, and reply.  Malformed input
    gets [ERR class=badreq] and, whenever the declared [src-bytes]
    permits, the stream is resynchronised rather than dropped.  Returns
    when the client sends [QUIT] or the stream ends.  [QUIT] is the clean
    goodbye: the client's pending jobs are answered before the connection
    detaches, so one-shot sessions ([echo ... | skild --stdio]) get their
    replies; a bare EOF is treated as a vanished peer and its jobs are
    disconnect-cancelled.  Safe to call from many threads with one [t]. *)

(** {1 Lifecycle} *)

val drain : t -> unit
(** Graceful drain: stop admitting (new submissions get
    [ERR class=draining]), flush pending backoff delays, and block until
    every accepted job has been answered.  Idempotent. *)

val shutdown : t -> unit
(** {!drain}, then stop the watchdog and fallback driver and unregister
    the executor source.  The process-wide {!Pool} crew is left running
    for other users. *)

(** {1 Observability} *)

type stats = {
  accepted : int;
  ok : int;
  err : int;
  shed : int;  (** overload replies at the door *)
  rejected : int;  (** draining/badreq replies at the door *)
  retried : int;  (** backoff requeues *)
  reaped : int;  (** deadline cancellations flagged *)
  dropped : int;  (** replies undeliverable: client dead *)
  cache_hits : int;
  cache_misses : int;
  queued_now : int;
  running_now : int;
  delayed_now : int;
}

val stats : t -> stats

val stats_line : t -> string
(** The [STATS ...] reply line. *)
