(* A fully-parsed job specification: everything `skilc run-par` takes on
   the command line, as a value both the CLI and the daemon build through
   the same string parsers — one vocabulary ("compiled", "fuse", "auto",
   "parix-c", ...) whichever door a job comes in. *)

type t = {
  id : string; (* client-chosen reply correlation id *)
  file : string; (* diagnostic source name for file:line:col positions *)
  entry : string;
  args : int list;
  width : int;
  height : int;
  torus : bool;
  engine : Spmd.engine;
  optimize : Spmd.optimize;
  specialize : bool;
  instantiate : bool;
  collectives : Coll_alg.mode;
  profile : Cost_model.profile;
  faults : string option; (* raw spec, parsed per run by [fault_plan] *)
  fault_seed : int;
  reliable : bool;
  sim_domains : int;
  native_domains : int option;
  chan_cap : int option;
  deadline_ms : int option; (* None: the service's default applies *)
  retries : int option; (* transient-failure retries; None: service default *)
  src_bytes : int; (* framing: source length following the JOB header *)
}

let default =
  {
    id = "-";
    file = "<job>";
    entry = "main";
    args = [];
    width = 2;
    height = 2;
    torus = false;
    engine = `Compiled;
    optimize = `None;
    specialize = true;
    instantiate = true;
    collectives = Coll_alg.Legacy;
    profile = Cost_model.skil;
    faults = None;
    fault_seed = 1;
    reliable = false;
    sim_domains = 1;
    native_domains = None;
    chan_cap = None;
    deadline_ms = None;
    retries = None;
    src_bytes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Shared string parsers (skilc's Arg.convs wrap these)                *)

let engine_of_string = function
  | "ast" -> Ok `Ast
  | "compiled" -> Ok `Compiled
  | "native" -> Ok `Native
  | s -> Error ("unknown engine " ^ s)

let engine_to_string = function
  | `Ast -> "ast"
  | `Compiled -> "compiled"
  | `Native -> "native"

let optimize_of_string = function
  | "none" -> Ok `None
  | "fuse" -> Ok `Fuse
  | s -> Error ("unknown optimization level " ^ s)

let optimize_to_string = function `None -> "none" | `Fuse -> "fuse"

let profile_of_string = function
  | "skil" -> Ok Cost_model.skil
  | "parix-c" -> Ok Cost_model.parix_c
  | "parix-c-old" -> Ok Cost_model.parix_c_old
  | "dpfl" -> Ok Cost_model.dpfl
  | s -> Error ("unknown profile " ^ s)

let profile_to_string p = p.Cost_model.profile_name

let bool_of_string = function
  | "1" | "true" | "on" | "yes" -> Ok true
  | "0" | "false" | "off" | "no" -> Ok false
  | s -> Error ("expected a boolean, got " ^ s)

(* ------------------------------------------------------------------ *)
(* Header fields -> spec                                               *)

let int_field k v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %s" k v)

let pos_field k v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> Ok n
  | Some _ -> Error (Printf.sprintf "%s: must be >= 1" k)
  | None -> Error (Printf.sprintf "%s: expected an integer, got %s" k v)

let args_field v =
  if v = "" then Ok []
  else
    let parts = String.split_on_char ',' v in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt (String.trim p) with
          | Some n -> go (n :: acc) rest
          | None -> Error ("args: expected comma-separated integers, got " ^ v))
    in
    go [] parts

(* Apply one [key=value] header field.  Unknown keys are rejected — a
   daemon facing hostile input must not silently ignore what it does not
   understand. *)
let apply spec (k, v) =
  let ( let* ) = Result.bind in
  let lift r f = Result.map f r in
  let err e = Error (Printf.sprintf "%s: %s" k e) in
  match k with
  | "id" -> Ok { spec with id = v }
  | "file" -> Ok { spec with file = v }
  | "entry" -> Ok { spec with entry = v }
  | "args" -> lift (args_field v) (fun args -> { spec with args })
  | "width" -> lift (pos_field k v) (fun width -> { spec with width })
  | "height" -> lift (pos_field k v) (fun height -> { spec with height })
  | "torus" -> (
      match bool_of_string v with
      | Ok torus -> Ok { spec with torus }
      | Error e -> err e)
  | "engine" -> (
      match engine_of_string v with
      | Ok engine -> Ok { spec with engine }
      | Error e -> err e)
  | "optimize" -> (
      match optimize_of_string v with
      | Ok optimize -> Ok { spec with optimize }
      | Error e -> err e)
  | "specialize" -> (
      match bool_of_string v with
      | Ok specialize -> Ok { spec with specialize }
      | Error e -> err e)
  | "instantiate" -> (
      match bool_of_string v with
      | Ok instantiate -> Ok { spec with instantiate }
      | Error e -> err e)
  | "collectives" -> (
      match Coll_alg.mode_of_string v with
      | Ok collectives -> Ok { spec with collectives }
      | Error e -> err e)
  | "profile" -> (
      match profile_of_string v with
      | Ok profile -> Ok { spec with profile }
      | Error e -> err e)
  | "faults" -> Ok { spec with faults = Some v }
  | "fault-seed" ->
      lift (int_field k v) (fun fault_seed -> { spec with fault_seed })
  | "reliable" -> (
      match bool_of_string v with
      | Ok reliable -> Ok { spec with reliable }
      | Error e -> err e)
  | "sim-domains" ->
      lift (pos_field k v) (fun sim_domains -> { spec with sim_domains })
  | "native-domains" ->
      lift (pos_field k v) (fun d -> { spec with native_domains = Some d })
  | "chan-cap" ->
      lift (pos_field k v) (fun c -> { spec with chan_cap = Some c })
  | "deadline-ms" ->
      let* d = pos_field k v in
      Ok { spec with deadline_ms = Some d }
  | "retries" ->
      let* r = int_field k v in
      if r < 0 then err "must be >= 0" else Ok { spec with retries = Some r }
  | "src-bytes" ->
      let* n = int_field k v in
      if n < 0 then err "must be >= 0" else Ok { spec with src_bytes = n }
  | _ -> Error ("unknown field " ^ k)

let of_kv kvs =
  let rec go spec = function
    | [] -> Ok spec
    | kv :: rest -> ( match apply spec kv with
        | Ok spec -> go spec rest
        | Error _ as e -> e)
  in
  go default kvs

(* Round-trip: the header fields a client sends to request [spec].  Only
   non-default fields are emitted (src-bytes always, for framing). *)
let to_kv spec =
  let d = default in
  let add cond k v acc = if cond then (k, v) :: acc else acc in
  []
  |> add (spec.id <> d.id) "id" spec.id
  |> add (spec.file <> d.file) "file" spec.file
  |> add (spec.entry <> d.entry) "entry" spec.entry
  |> add (spec.args <> [])
       "args"
       (String.concat "," (List.map string_of_int spec.args))
  |> add (spec.width <> d.width) "width" (string_of_int spec.width)
  |> add (spec.height <> d.height) "height" (string_of_int spec.height)
  |> add spec.torus "torus" "1"
  |> add (spec.engine <> d.engine) "engine" (engine_to_string spec.engine)
  |> add (spec.optimize <> d.optimize) "optimize"
       (optimize_to_string spec.optimize)
  |> add (not spec.specialize) "specialize" "0"
  |> add (not spec.instantiate) "instantiate" "0"
  |> add
       (spec.collectives <> d.collectives)
       "collectives"
       (Coll_alg.mode_to_string spec.collectives)
  |> add
       (spec.profile.Cost_model.profile_name
       <> d.profile.Cost_model.profile_name)
       "profile" (profile_to_string spec.profile)
  |> add (spec.faults <> None) "faults" (Option.value spec.faults ~default:"")
  |> add (spec.fault_seed <> d.fault_seed) "fault-seed"
       (string_of_int spec.fault_seed)
  |> add spec.reliable "reliable" "1"
  |> add (spec.sim_domains <> d.sim_domains) "sim-domains"
       (string_of_int spec.sim_domains)
  |> add (spec.native_domains <> None) "native-domains"
       (match spec.native_domains with Some d -> string_of_int d | None -> "")
  |> add (spec.chan_cap <> None) "chan-cap"
       (match spec.chan_cap with Some c -> string_of_int c | None -> "")
  |> add (spec.deadline_ms <> None) "deadline-ms"
       (match spec.deadline_ms with Some d -> string_of_int d | None -> "")
  |> add (spec.retries <> None) "retries"
       (match spec.retries with Some r -> string_of_int r | None -> "")
  |> add true "src-bytes" (string_of_int spec.src_bytes)
  |> List.rev

let topology spec =
  if spec.torus then Topology.torus2d ~width:spec.width ~height:spec.height ()
  else Topology.mesh ~width:spec.width ~height:spec.height

let fault_plan spec =
  match spec.faults with
  | None -> Ok None
  | Some raw -> (
      match Fault.parse ~seed:spec.fault_seed raw with
      | Ok plan -> Ok (Some plan)
      | Error msg -> Error ("faults: " ^ msg))

(* The cache key folds in everything that changes the *prepared* handle
   (source, entry, engine, pipeline switches) and nothing that only changes
   a run (topology, faults, deadlines): one compiled program serves every
   machine shape. *)
let cache_key spec ~source =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            source;
            spec.entry;
            engine_to_string spec.engine;
            string_of_bool spec.specialize;
            string_of_bool spec.instantiate;
            optimize_to_string spec.optimize;
          ]))
