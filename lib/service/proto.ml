(* Line-framed wire protocol of the skild daemon.

   Requests (client -> daemon), one line each, '\n'-terminated:

     PING
     STATS
     QUIT
     JOB key=value key=value ...

   A JOB header is followed by exactly [src-bytes] raw bytes of Skil
   source, then one '\n'.  Header values are percent-escaped (see below)
   so a value can carry any byte while the header stays a single
   space-separated line.

   Replies (daemon -> client), one line each:

     PONG
     STATS key=value ...
     OK id=<id> cache=hit|miss engine=<e> ms=<float> value=<esc> output=<esc>
     ERR id=<id> class=<name> code=<int> msg=<esc>

   [output] is the job's printed output rendered exactly as `skilc
   run-par` prints it (the "[proc N] ..." lines), so a client can
   byte-compare service results against direct compiler invocations.

   Escaping: bytes in [0x21, 0x7e] other than '%' pass through; every
   other byte (space, control, '%', non-ASCII) becomes %XX (uppercase
   hex).  Tokens therefore never contain spaces and the line never
   contains raw newlines, whatever the payload. *)

let escape s =
  let plain = ref true in
  String.iter
    (fun c -> if c <= ' ' || c >= '\x7f' || c = '%' then plain := false)
    s;
  if !plain then s
  else begin
    let b = Buffer.create (String.length s + 16) in
    String.iter
      (fun c ->
        if c > ' ' && c < '\x7f' && c <> '%' then Buffer.add_char b c
        else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents b
  end

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] <> '%' then begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
    else if i + 2 >= n then Error "truncated %-escape"
    else
      match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
      | Some code when code >= 0 && code < 256 ->
          Buffer.add_char b (Char.chr code);
          go (i + 3)
      | Some _ | None -> Error "malformed %-escape"
  in
  go 0

(* Split "k=v k=v ..." into an assoc list, unescaping values.  Order is
   preserved; duplicate keys keep both entries (lookup finds the first). *)
let parse_kv s =
  let fields =
    String.split_on_char ' ' s |> List.filter (fun f -> f <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
        match String.index_opt f '=' with
        | None -> Error (Printf.sprintf "field %S is not key=value" f)
        | Some i -> (
            let k = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            if k = "" then Error (Printf.sprintf "field %S has an empty key" f)
            else
              match unescape v with
              | Ok v -> go ((k, v) :: acc) rest
              | Error e -> Error (Printf.sprintf "field %s: %s" k e)))
  in
  go [] fields

let render_kv kvs =
  String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ escape v) kvs)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type request =
  | Ping
  | Stats_req
  | Quit
  | Job of (string * string) list (* header fields; source framed separately *)

let parse_request line =
  if line = "PING" then Ok Ping
  else if line = "STATS" then Ok Stats_req
  else if line = "QUIT" then Ok Quit
  else if line = "JOB" then Ok (Job [])
  else if String.length line > 4 && String.sub line 0 4 = "JOB " then
    match parse_kv (String.sub line 4 (String.length line - 4)) with
    | Ok kvs -> Ok (Job kvs)
    | Error e -> Error e
  else Error "unknown command (expected PING, STATS, QUIT or JOB)"

let render_job_header kvs = "JOB " ^ render_kv kvs

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

type reply =
  | Ok_reply of {
      id : string;
      cache_hit : bool;
      engine : string;
      ms : float; (* service time: compile (on a miss) + run, milliseconds *)
      value : string; (* Value.describe of processor 0's return value *)
      output : string; (* run-par's "[proc N] ..." rendering, verbatim *)
    }
  | Err_reply of { id : string; cls : Errclass.t; msg : string }

let render_reply = function
  | Ok_reply { id; cache_hit; engine; ms; value; output } ->
      Printf.sprintf "OK id=%s cache=%s engine=%s ms=%.3f value=%s output=%s"
        (escape id)
        (if cache_hit then "hit" else "miss")
        engine ms (escape value) (escape output)
  | Err_reply { id; cls; msg } ->
      Printf.sprintf "ERR id=%s class=%s code=%d msg=%s" (escape id)
        (Errclass.name cls) (Errclass.code cls) (escape msg)

let field kvs k =
  match List.assoc_opt k kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" k)

let parse_reply line =
  let tail prefix =
    String.sub line (String.length prefix)
      (String.length line - String.length prefix)
  in
  let with_kvs prefix f =
    match parse_kv (tail prefix) with Ok kvs -> f kvs | Error e -> Error e
  in
  if String.length line > 3 && String.sub line 0 3 = "OK " then
    with_kvs "OK " (fun kvs ->
        let ( let* ) = Result.bind in
        let* id = field kvs "id" in
        let* cache = field kvs "cache" in
        let* engine = field kvs "engine" in
        let* ms = field kvs "ms" in
        let* value = field kvs "value" in
        let* output = field kvs "output" in
        let* cache_hit =
          match cache with
          | "hit" -> Ok true
          | "miss" -> Ok false
          | c -> Error ("bad cache field " ^ c)
        in
        match float_of_string_opt ms with
        | None -> Error ("bad ms field " ^ ms)
        | Some ms -> Ok (Ok_reply { id; cache_hit; engine; ms; value; output }))
  else if String.length line > 4 && String.sub line 0 4 = "ERR " then
    with_kvs "ERR " (fun kvs ->
        let ( let* ) = Result.bind in
        let* id = field kvs "id" in
        let* cls = field kvs "class" in
        let* code = field kvs "code" in
        let* msg = field kvs "msg" in
        match Errclass.of_name cls with
        | None -> Error ("unknown error class " ^ cls)
        | Some cls ->
            if int_of_string_opt code = Some (Errclass.code cls) then
              Ok (Err_reply { id; cls; msg })
            else Error ("code/class mismatch on " ^ code))
  else Error "reply is neither OK nor ERR"
