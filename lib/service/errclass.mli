(** Error classification shared by [skilc] exit codes and [skild] replies.

    One table maps every failure the compile/run pipeline can produce — and
    every failure the service layer adds (deadline, overload, drain,
    malformed request, disconnect) — to a stable name and a distinct small
    code.  [skilc run-par] exits with the code; [skild] replies
    [ERR ... class=<name> code=<code> ...] with the same classification, so
    shell scripts and service clients read failures identically. *)

type t =
  | Io
  | Invalid
  | Syntax
  | Type_err
  | Inst_err
  | Runtime
  | Stall
  | Deadline
  | Overload
  | Draining
  | Badreq
  | Busy
  | Disconnect
  | Internal

val code : t -> int
(** Distinct nonzero code, frozen: io 1, invalid 2 (the historical usage
    exit), syntax 3, type 4, instantiate 5, runtime 6, stalled 7, then the
    service-only classes 8..14. *)

val name : t -> string
val of_name : string -> t option

val of_exn : ?file:string -> exn -> (t * string) option
(** Classify a pipeline exception and render skilc's exact diagnostic for
    it ([file:line:col: kind: message] when the exception carries a
    position — the service hands positions back verbatim this way).
    [None] for exceptions whose class depends on context this module lacks
    ({!Machine.Cancelled} is [Deadline] or [Disconnect] depending on why
    the watchdog fired; anything unknown is the caller's [Internal]). *)
