(** Job specification: everything [skilc run-par] takes on the command
    line, as a parsed value.  The CLI's [Arg.conv]s and the daemon's JOB
    header fields wrap the same string parsers here, so both doors speak
    one vocabulary and reject the same garbage. *)

type t = {
  id : string;  (** client-chosen reply correlation id (default ["-"]) *)
  file : string;
      (** diagnostic source name, prefixed to [file:line:col] positions *)
  entry : string;
  args : int list;
  width : int;
  height : int;
  torus : bool;
  engine : Spmd.engine;
  optimize : Spmd.optimize;
  specialize : bool;
  instantiate : bool;
  collectives : Coll_alg.mode;
  profile : Cost_model.profile;
  faults : string option;
  fault_seed : int;
  reliable : bool;
  sim_domains : int;
  native_domains : int option;
  chan_cap : int option;
  deadline_ms : int option;  (** [None]: the service default applies *)
  retries : int option;  (** transient-failure retry budget *)
  src_bytes : int;  (** framing: source bytes following the JOB header *)
}

val default : t

(** {1 Shared string parsers} — wrapped by skilc's [Arg.conv]s *)

val engine_of_string : string -> (Spmd.engine, string) result
val engine_to_string : Spmd.engine -> string
val optimize_of_string : string -> (Spmd.optimize, string) result
val optimize_to_string : Spmd.optimize -> string
val profile_of_string : string -> (Cost_model.profile, string) result
val profile_to_string : Cost_model.profile -> string
val bool_of_string : string -> (bool, string) result

(** {1 Wire mapping} *)

val of_kv : (string * string) list -> (t, string) result
(** Fold JOB header fields over {!default}.  Unknown keys and malformed
    values are errors — the daemon replies [badreq] rather than guessing. *)

val to_kv : t -> (string * string) list
(** The header fields requesting [t] (non-default fields only; [src-bytes]
    always).  [of_kv (to_kv t) = Ok t]. *)

(** {1 Derived run inputs} *)

val topology : t -> Topology.t

val fault_plan : t -> (Fault.plan option, string) result
(** Parse the raw [faults] spec (if any) with the spec's seed. *)

val cache_key : t -> source:string -> string
(** Digest over source, entry, engine and the pipeline switches — exactly
    the inputs of {!Spmd.prepare}, and nothing run-specific, so one cached
    handle serves every topology/fault/deadline combination. *)
