(** Compiled-program cache: {!Jobspec.cache_key} -> {!Spmd.prepared},
    with LRU eviction.  Thread-safe; translation runs outside the lock
    (racing cold lookups may both compile — the first insert wins) and
    failures are never cached. *)

type t

val create : cap:int -> t
(** [cap >= 1]: the maximum number of cached handles. *)

val find_or_prepare :
  t -> key:string -> (unit -> Spmd.prepared) -> Spmd.prepared * bool
(** Return the cached handle for [key] ([..., true]) or call the thunk,
    insert, and return it ([..., false]).  The thunk's exceptions
    propagate and nothing is cached for that key. *)

val stats : t -> int * int * int
(** [(hits, misses, live_entries)]. *)
