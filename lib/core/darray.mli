(** The paper's [pardata array<$t>]: a distributed array whose implementation
    is hidden behind partitions placed one per processor.

    This module is the pure data layer — partitions, layout arithmetic and
    ownership checks — with no notion of simulated time.  All operations that
    move data or cost time live in {!Skeletons}, mirroring the paper's rule
    that "non-local element accessing is ... possible, however only in a
    coordinated way by means of skeletons". *)

exception Local_access_violation of { rank : int; index : int array }
(** Raised when a processor touches an element outside its own partition
    (the paper specifies these accessors work on local elements only). *)

exception Use_after_destroy

type distr = Default | Ring | Torus2d
(** The [distr] argument of [array_create] — which virtual topology the
    array is mapped onto. *)

type 'a part = { region : Distribution.region; mutable data : 'a array }

type 'a t = private {
  id : int;
  dim : int;
  gsize : Index.size;
  distr : distr;
  dist : Distribution.t;
  parts : 'a part array;
  elem_bytes : int;
  mutable destroyed : bool;
  mutable checkpoint : bool;
      (** skeletons snapshot partitions of this array before their local
          phases so a fail-stop crash can restore and re-execute
          ({!Skeletons.create}'s checkpoint policy; default [false]) *)
}

val make :
  gsize:Index.size ->
  dist:Distribution.t ->
  distr:distr ->
  elem_bytes:int ->
  (Index.t -> 'a) ->
  'a t
(** Allocate all partitions and initialize every element from its global
    index.  Pure host-level allocation; {!Skeletons.create} wraps it in a
    collective and charges simulated time.

    The index array passed to the initializer is a scratch buffer reused
    between calls: copy it if you retain it beyond the call. *)

val set_checkpoint : 'a t -> bool -> unit
(** Set the checkpoint policy flag (the record is private, so the field
    cannot be mutated directly by clients). *)

val dim : 'a t -> int
val gsize : 'a t -> Index.size
val nprocs : 'a t -> int
val elem_bytes : 'a t -> int
val check_alive : 'a t -> unit
val mark_destroyed : 'a t -> unit

val part : 'a t -> rank:int -> 'a part
val local_count : 'a t -> rank:int -> int
val owner : 'a t -> Index.t -> int

val bounds : 'a t -> rank:int -> Index.bounds
(** Partition bounds ([array_part_bounds]).
    @raise Invalid_argument for cyclic layouts, whose partitions are not
    rectangles. *)

val get : 'a t -> rank:int -> Index.t -> 'a
(** Local read ([array_get_elem]).
    @raise Local_access_violation if [rank] does not own the index. *)

val set : 'a t -> rank:int -> Index.t -> 'a -> unit
(** Local write ([array_put_elem]).
    @raise Local_access_violation if [rank] does not own the index. *)

(** {1 Host-level helpers (tests, I/O, debugging — no locality check)} *)

val peek : 'a t -> Index.t -> 'a
val poke : 'a t -> Index.t -> 'a -> unit

val to_flat : 'a t -> 'a array
(** Row-major copy of the whole global array. *)

val flat_of_snapshots : 'a t -> 'a array array -> 'a array
(** [to_flat], but reading partition [r]'s elements from [snapshots.(r)]
    (same local storage order) instead of the live partition — for callers
    holding data captured at an earlier, known-consistent point. *)

val row : 'a t -> int -> 'a array
(** One global row of a 2-D array. *)
