(** The paper's data-parallel skeletons on distributed arrays (section 3).

    Every function here is a {e collective}: all processors of the machine
    must call it at the same program point with the same arguments (SPMD
    discipline).  [ctx] is the calling processor's machine context.

    Cost accounting: per-element work executed through a functional argument
    is charged at the [Mapped] rate of the run's language profile, tight
    inner loops ([gen_mult]) at the [Kernel] rate, and every skeleton call
    pays the profile's fixed invocation overhead.  The [?cost] parameters
    give the C-level seconds of one element visit (see {!Calibration} in
    [skil_machine]); skeleton implementations add their own communication. *)

type ctx = Machine.ctx

val default_elem_cost : float
(** Used when [?cost] is omitted: a generic arithmetic element visit. *)

(** {1 Creation and destruction} *)

val create :
  ctx ->
  ?elem_bytes:int ->
  ?scheme:Distribution.scheme ->
  ?cost:float ->
  ?checkpoint:bool ->
  gsize:Index.size ->
  distr:Darray.distr ->
  (Index.t -> 'a) ->
  'a Darray.t
(** [array_create].  The block sizes and lower bounds are derived from the
    machine topology and [distr], corresponding to the paper's "default"
    values (0 block sizes, -1 lower bounds): [Torus2d] distributes blocks
    over the processor grid, [Default] and [Ring] distribute rows.
    [?scheme] selects the future-work cyclic layouts (Default/Ring only).

    [?checkpoint] (default: {!Machine.checkpoint_default}, i.e. the fault
    plan's policy, [false] without one) makes the mutating skeletons
    ([map]/[map_into], [gen_mult]) snapshot this array's partitions before
    their local phases — and [fold] re-execute its pure local reduction —
    so a scheduled fail-stop crash restores the snapshot, charges the
    reboot penalty, and re-executes the lost work instead of corrupting
    the run ({!Machine.protect}). *)

val destroy : ctx -> 'a Darray.t -> unit
(** [array_destroy].  Collective; the array is unusable afterwards. *)

(** {1 Element access (local only)} *)

val part_bounds : ctx -> 'a Darray.t -> Index.bounds
(** [array_part_bounds] for the calling processor's partition. *)

val get_elem : ctx -> 'a Darray.t -> Index.t -> 'a
(** [array_get_elem].
    @raise Darray.Local_access_violation on non-local indices. *)

val put_elem : ctx -> 'a Darray.t -> Index.t -> 'a -> unit
(** [array_put_elem].
    @raise Darray.Local_access_violation on non-local indices. *)

(** {1 Skeletons} *)

val map :
  ctx -> ?cost:float -> ('a -> Index.t -> 'a) -> 'a Darray.t -> 'a Darray.t -> unit
(** [array_map map_f from to].  [from] and [to] may be the same array, in
    which case the replacement is done in situ (paper semantics).  The two
    arrays must have the same layout.  The index passed to [map_f] is
    transient; copy it if kept.

    Purity contract: the runtime applies [map_f] to each local element
    exactly once, in partition-iteration order, but nothing here checks
    that [map_f] is observation-free.  A [map_f] that mutates captured
    state, performs I/O, or reads [from]/[to] through [get_elem] is legal
    at this layer — each processor sees a deterministic order — but it
    pins the call: {!Optimize} may compose, reorder or eliminate adjacent
    maps only when its effect analysis proves every argument function
    pure, so impure or array-reading kernels must (and do) disable
    fusion. *)

val map_into :
  ctx -> ?cost:float -> ('a -> Index.t -> 'b) -> 'a Darray.t -> 'b Darray.t -> unit
(** [map] between arrays of different element types (necessarily distinct
    arrays).  The purity contract of {!map} applies: the kernel runs once
    per local element, and only provably pure kernels are fusable. *)

val fold :
  ctx ->
  ?cost:float ->
  ?acc_bytes:int ->
  ?acc_bytes_of:('b -> int) ->
  conv:('a -> Index.t -> 'b) ->
  ('b -> 'b -> 'b) ->
  'a Darray.t ->
  'b
(** [array_fold conv_f fold_f a]: convert every element, fold each partition
    locally, combine partition results along a virtual tree topology and
    broadcast the outcome back, so every processor returns the result.
    [fold_f] should be associative and commutative; the order of combination
    is unspecified otherwise.

    [acc_bytes] is the wire size of one ['b], charged for every reduction
    message.  The default is the array's element size ([Darray.elem_bytes]),
    which is only right when [conv_f] preserves the element's wire size —
    when it does not (e.g. folding a float array into a (value, row, col)
    pivot record), pass [acc_bytes] explicitly or the collective is
    mis-charged.  [acc_bytes_of] measures the processor's local partial
    result instead, for callers that only know the accumulator's size at
    run time (the Skil interpreter's dynamically typed values); it takes
    precedence over [acc_bytes] whenever the local partition is non-empty.
    @raise Invalid_argument on empty arrays. *)

val copy : ctx -> 'a Darray.t -> 'a Darray.t -> unit
(** [array_copy from to]: partition-wise contiguous copy (cheap — no
    per-element function calls).  Layouts must match. *)

val copy_with : ctx -> ('a -> 'b) -> 'a Darray.t -> 'b Darray.t -> unit
(** [copy_with ctx conv from to]: {!copy} between arrays whose host
    representations differ, converting each element with [conv].  Charges
    exactly what {!copy} charges — the representation is invisible to the
    simulated machine. *)

val broadcast_part : ctx -> 'a Darray.t -> Index.t -> unit
(** [array_broadcast_part a ix]: the partition containing [ix] overwrites
    every other partition (tree broadcast).  All partitions must have the
    same shape. *)

val permute_rows :
  ctx -> 'a Darray.t -> (int -> int) -> 'a Darray.t -> unit
(** [array_permute_rows from perm_f to] for 2-D arrays: row [r] of [from]
    becomes row [perm_f r] of [to].  [from] and [to] must be distinct with
    identical layouts.
    @raise Invalid_argument (the paper's run-time error) if [perm_f] is not
    a bijection on the row numbers. *)

val gen_mult :
  ctx ->
  ?cost:float ->
  add:('a -> 'a -> 'a) ->
  mul:('a -> 'a -> 'a) ->
  'a Darray.t ->
  'a Darray.t ->
  'a Darray.t ->
  unit
(** [array_gen_mult a b ~add ~mul c]: Gentleman's distributed matrix
    multiplication generalized over [add]/[mul]; partial products are
    accumulated into the existing contents of [c] (the paper's shortest-paths
    program relies on this by pre-initializing [c] with the neutral
    element).  Communication/computation overlap: partition rotations are
    posted before each local block multiplication.

    Requirements (checked): [a], [b], [c] pairwise distinct, square n x n
    arrays block-distributed over a square processor grid whose side divides
    n. *)

(** {1 Convenience} *)

val to_flat : ctx -> 'a Darray.t -> 'a array
(** Gather the whole array on every processor (all-gather; charged).  Every
    processor gets its own private copy — mutating one rank's result never
    affects another's.  Mostly for result output in examples. *)
