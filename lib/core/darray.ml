exception Local_access_violation of { rank : int; index : int array }
exception Use_after_destroy

type distr = Default | Ring | Torus2d
type 'a part = { region : Distribution.region; mutable data : 'a array }

type 'a t = {
  id : int;
  dim : int;
  gsize : Index.size;
  distr : distr;
  dist : Distribution.t;
  parts : 'a part array;
  elem_bytes : int;
  mutable destroyed : bool;
  mutable checkpoint : bool;
}

(* Atomic so arrays can be created from several domains at once (the
   multicore experiment harness runs independent simulations in parallel);
   ids only need to be distinct, not consecutive. *)
let next_id = Atomic.make 0

let make ~gsize ~dist ~distr ~elem_bytes init =
  if Distribution.gsize dist <> gsize then
    invalid_arg "Darray.make: distribution does not match global size";
  let nprocs = Distribution.nprocs dist in
  let parts =
    Array.init nprocs (fun rank ->
        let region = Distribution.region dist ~rank in
        let count = Distribution.region_count region in
        (* single pass in region order so data.(offset) matches
           region_offset; [init] receives the iteration's scratch index,
           avoiding one int array allocation per element *)
        let data = ref [||] in
        let pos = ref 0 in
        Distribution.region_iter region (fun ix ->
            let v = init ix in
            if !pos = 0 then data := Array.make count v;
            !data.(!pos) <- v;
            incr pos);
        { region; data = !data })
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    dim = Array.length gsize;
    gsize;
    distr;
    dist;
    parts;
    elem_bytes;
    destroyed = false;
    checkpoint = false;
  }

let set_checkpoint a flag = a.checkpoint <- flag
let dim a = a.dim
let gsize a = a.gsize
let nprocs a = Array.length a.parts
let elem_bytes a = a.elem_bytes
let check_alive a = if a.destroyed then raise Use_after_destroy
let mark_destroyed a = a.destroyed <- true

let part a ~rank =
  check_alive a;
  a.parts.(rank)

let local_count a ~rank = Distribution.local_count a.dist ~rank
let owner a ix = Distribution.owner a.dist ix

let bounds a ~rank =
  check_alive a;
  match a.parts.(rank).region with
  | Distribution.Rect b -> b
  | Distribution.Rows _ ->
      invalid_arg "Darray.bounds: cyclic partitions are not rectangular"

let get a ~rank ix =
  check_alive a;
  let p = a.parts.(rank) in
  let off = Distribution.region_locate p.region ix in
  if off < 0 then raise (Local_access_violation { rank; index = Array.copy ix });
  p.data.(off)

let set a ~rank ix v =
  check_alive a;
  let p = a.parts.(rank) in
  let off = Distribution.region_locate p.region ix in
  if off < 0 then raise (Local_access_violation { rank; index = Array.copy ix });
  p.data.(off) <- v

let peek a ix =
  check_alive a;
  let rank = owner a ix in
  let p = a.parts.(rank) in
  p.data.(Distribution.region_offset p.region ix)

let poke a ix v =
  check_alive a;
  let rank = owner a ix in
  let p = a.parts.(rank) in
  p.data.(Distribution.region_offset p.region ix) <- v

(* Copy one rectangular partition into the row-major global image: local
   storage is row-major over the rectangle, so it decomposes into runs of
   [extent(last dim)] contiguous elements, one blit per run, with an
   odometer over the leading dimensions supplying each run's global base
   offset.  No per-element ownership lookup. *)
let blit_rect_part gsize (p : 'a part) (b : Index.bounds) out =
  let dim = Array.length b.Index.lower in
  if Array.length p.data > 0 then
    if dim = 0 then out.(0) <- p.data.(0)
    else begin
      let strides = Array.make dim 1 in
      for d = dim - 2 downto 0 do
        strides.(d) <- strides.(d + 1) * gsize.(d + 1)
      done;
      let run = b.Index.upper.(dim - 1) - b.Index.lower.(dim - 1) in
      let ix = Array.copy b.Index.lower in
      let src = ref 0 in
      let more = ref true in
      while !more do
        let base = ref 0 in
        for d = 0 to dim - 1 do
          base := !base + (ix.(d) * strides.(d))
        done;
        Array.blit p.data !src out !base run;
        src := !src + run;
        (* advance the odometer over the leading dimensions *)
        let d = ref (dim - 2) in
        let carry = ref true in
        while !carry && !d >= 0 do
          ix.(!d) <- ix.(!d) + 1;
          if ix.(!d) < b.Index.upper.(!d) then carry := false
          else begin
            ix.(!d) <- b.Index.lower.(!d);
            decr d
          end
        done;
        if !carry then more := false
      done
    end

let seed_elem parts =
  let seed = ref None in
  Array.iter
    (fun p ->
      match !seed with
      | None -> if Array.length p.data > 0 then seed := Some p.data.(0)
      | Some _ -> ())
    parts;
  match !seed with
  | Some v -> v
  | None -> invalid_arg "Darray: no resident element to seed a copy from"

let to_flat a =
  check_alive a;
  let n = Index.volume a.gsize in
  if n = 0 then [||]
  else begin
    let out = Array.make n (seed_elem a.parts) in
    Array.iter
      (fun p ->
        match p.region with
        | Distribution.Rect b -> blit_rect_part a.gsize p b out
        | Distribution.Rows { rows; ncols } ->
            Array.iteri
              (fun i r -> Array.blit p.data (i * ncols) out (r * ncols) ncols)
              rows)
      a.parts;
    out
  end

(* Assemble the row-major global image from caller-supplied per-partition
   data snapshots ([snapshots.(r)] standing in for partition [r]'s live
   storage).  The allgather-based [Skeletons.to_flat] rebuilds from data
   deposited at collective time, which a rank finishing the collective
   early cannot mutate — unlike the live partitions [to_flat] reads. *)
let flat_of_snapshots a snapshots =
  check_alive a;
  let n = Index.volume a.gsize in
  if n = 0 then [||]
  else begin
    let out = Array.make n (seed_elem a.parts) in
    Array.iteri
      (fun r p ->
        let p = { p with data = snapshots.(r) } in
        match p.region with
        | Distribution.Rect b -> blit_rect_part a.gsize p b out
        | Distribution.Rows { rows; ncols } ->
            Array.iteri
              (fun i row ->
                Array.blit p.data (i * ncols) out (row * ncols) ncols)
              rows)
      a.parts;
    out
  end

let row a r =
  check_alive a;
  if a.dim <> 2 then invalid_arg "Darray.row: 2-D arrays only";
  if r < 0 || r >= a.gsize.(0) then invalid_arg "Darray.row: row out of range";
  let ncols = a.gsize.(1) in
  if ncols = 0 then [||]
  else begin
    (* every partition that intersects the row contributes one contiguous
       run of columns; together they tile it *)
    let out = Array.make ncols (seed_elem a.parts) in
    Array.iter
      (fun p ->
        match p.region with
        | Distribution.Rect b ->
            let width = b.Index.upper.(1) - b.Index.lower.(1) in
            if
              width > 0 && r >= b.Index.lower.(0) && r < b.Index.upper.(0)
            then
              Array.blit p.data
                ((r - b.Index.lower.(0)) * width)
                out b.Index.lower.(1) width
        | Distribution.Rows { rows; ncols = nc } -> (
            match Distribution.find_row rows r with
            | Some i -> Array.blit p.data (i * nc) out 0 nc
            | None -> ()))
      a.parts;
    out
  end
