exception Local_access_violation of { rank : int; index : int array }
exception Use_after_destroy

type distr = Default | Ring | Torus2d
type 'a part = { region : Distribution.region; mutable data : 'a array }

type 'a t = {
  id : int;
  dim : int;
  gsize : Index.size;
  distr : distr;
  dist : Distribution.t;
  parts : 'a part array;
  elem_bytes : int;
  mutable destroyed : bool;
}

(* Atomic so arrays can be created from several domains at once (the
   multicore experiment harness runs independent simulations in parallel);
   ids only need to be distinct, not consecutive. *)
let next_id = Atomic.make 0

let make ~gsize ~dist ~distr ~elem_bytes init =
  if Distribution.gsize dist <> gsize then
    invalid_arg "Darray.make: distribution does not match global size";
  let nprocs = Distribution.nprocs dist in
  let parts =
    Array.init nprocs (fun rank ->
        let region = Distribution.region dist ~rank in
        let count = Distribution.region_count region in
        (* single pass in region order so data.(offset) matches
           region_offset; [init] receives the iteration's scratch index,
           avoiding one int array allocation per element *)
        let data = ref [||] in
        let pos = ref 0 in
        Distribution.region_iter region (fun ix ->
            let v = init ix in
            if !pos = 0 then data := Array.make count v;
            !data.(!pos) <- v;
            incr pos);
        { region; data = !data })
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    dim = Array.length gsize;
    gsize;
    distr;
    dist;
    parts;
    elem_bytes;
    destroyed = false;
  }

let dim a = a.dim
let gsize a = a.gsize
let nprocs a = Array.length a.parts
let elem_bytes a = a.elem_bytes
let check_alive a = if a.destroyed then raise Use_after_destroy
let mark_destroyed a = a.destroyed <- true

let part a ~rank =
  check_alive a;
  a.parts.(rank)

let local_count a ~rank = Distribution.local_count a.dist ~rank
let owner a ix = Distribution.owner a.dist ix

let bounds a ~rank =
  check_alive a;
  match a.parts.(rank).region with
  | Distribution.Rect b -> b
  | Distribution.Rows _ ->
      invalid_arg "Darray.bounds: cyclic partitions are not rectangular"

let get a ~rank ix =
  check_alive a;
  let p = a.parts.(rank) in
  let off = Distribution.region_locate p.region ix in
  if off < 0 then raise (Local_access_violation { rank; index = Array.copy ix });
  p.data.(off)

let set a ~rank ix v =
  check_alive a;
  let p = a.parts.(rank) in
  let off = Distribution.region_locate p.region ix in
  if off < 0 then raise (Local_access_violation { rank; index = Array.copy ix });
  p.data.(off) <- v

let peek a ix =
  check_alive a;
  let rank = owner a ix in
  let p = a.parts.(rank) in
  p.data.(Distribution.region_offset p.region ix)

let poke a ix v =
  check_alive a;
  let rank = owner a ix in
  let p = a.parts.(rank) in
  p.data.(Distribution.region_offset p.region ix) <- v

let to_flat a =
  check_alive a;
  let n = Index.volume a.gsize in
  if n = 0 then [||]
  else begin
    let b =
      { Index.lower = Array.make a.dim 0; upper = Array.copy a.gsize }
    in
    let out = ref [||] in
    let pos = ref 0 in
    Index.iter b (fun ix ->
        let v = peek a ix in
        if !pos = 0 then out := Array.make n v;
        !out.(!pos) <- v;
        incr pos);
    !out
  end

let row a r =
  check_alive a;
  if a.dim <> 2 then invalid_arg "Darray.row: 2-D arrays only";
  Array.init a.gsize.(1) (fun c -> peek a [| r; c |])
