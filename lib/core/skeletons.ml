type ctx = Machine.ctx

let default_elem_cost = 10.0e-6

let skeleton ctx = Machine.charge_skeleton_call ctx
let rank ctx = Machine.self ctx

(* Trace span around a skeleton body (zero simulated cost; no-op unless the
   run was started with [~trace:true]).  Element-ops charged inside are
   attributed to the span, and nested collectives appear as child spans. *)
let with_span ctx name f = Machine.with_span ctx ~cat:Trace.Skeleton name f

(* Run a local, communication-free phase that mutates [pd] under fail-stop
   crash protection when the array's checkpoint policy asks for it: the
   partition is snapshotted on entry and restored (and the phase re-executed)
   if the fault plan crashes this processor inside the phase.  Costs nothing
   — not even the snapshot — unless a crash is actually pending
   ({!Machine.protect}). *)
let protect_part ctx (arr : 'a Darray.t) (pd : 'a Darray.part) f =
  if arr.Darray.checkpoint then
    Machine.protect ctx
      ~bytes:(Array.length pd.Darray.data * Darray.elem_bytes arr)
      ~snapshot:(fun () -> Array.copy pd.Darray.data)
      ~restore:(fun s -> Array.blit s 0 pd.Darray.data 0 (Array.length s))
      f
  else f ()

(* Same protection for a pure (read-only) local phase: nothing to snapshot,
   a crash just re-executes the phase after the reboot penalty. *)
let protect_pure ctx (arr : 'a Darray.t) f =
  if arr.Darray.checkpoint then
    Machine.protect ctx ~bytes:0
      ~snapshot:(fun () -> ())
      ~restore:(fun () -> ())
      f
  else f ()

(* ------------------------------------------------------------------ *)
(* Creation / destruction                                              *)

let pgrid_for ctx ~gsize ~(distr : Darray.distr) =
  let topo = Machine.topology ctx in
  let p = Machine.nprocs ctx in
  match (distr, Array.length gsize) with
  | Torus2d, 2 -> [| Topology.height topo; Topology.width topo |]
  | Torus2d, _ ->
      invalid_arg "Skeletons.create: Torus2d distribution needs a 2-D array"
  | (Default | Ring), 1 -> [| p |]
  | (Default | Ring), 2 -> [| p; 1 |]
  | (Default | Ring), _ ->
      invalid_arg "Skeletons.create: only 1-D and 2-D arrays are supported"

let create ctx ?(elem_bytes = Calibration.elem_bytes)
    ?(scheme = Distribution.Block) ?(cost = default_elem_cost) ?checkpoint
    ~gsize ~distr init =
  with_span ctx "array_create" @@ fun () ->
  skeleton ctx;
  let checkpoint =
    match checkpoint with
    | Some c -> c
    | None -> Machine.checkpoint_default ctx
  in
  (match (scheme, distr) with
   | (Distribution.Cyclic | Distribution.Block_cyclic _), Darray.Torus2d ->
       invalid_arg "Skeletons.create: cyclic schemes use row distribution"
   | _ -> ());
  let a =
    Machine.collective ctx (fun () ->
        let pgrid = pgrid_for ctx ~gsize ~distr in
        let dist = Distribution.create ~gsize ~pgrid scheme in
        let a = Darray.make ~gsize ~dist ~distr ~elem_bytes init in
        Darray.set_checkpoint a checkpoint;
        a)
  in
  Machine.charge ctx Cost_model.Mapped
    ~ops:(Darray.local_count a ~rank:(rank ctx))
    ~base:cost;
  a

let destroy ctx a =
  with_span ctx "array_destroy" @@ fun () ->
  (* Deallocation takes effect when the slowest processor reaches it: faster
     processors must not invalidate partitions their peers are still using.
     This processor's share of the countdown is consumed *before* the
     skeleton-call overhead is charged: should anything later in this fiber
     raise, the peers can still drive the counter to zero and reclaim the
     array instead of leaking it forever. *)
  let remaining =
    (* Atomic, not a plain ref: under [sim_domains > 1] the countdown is hit
       from several domains (collective values are shared across shards) *)
    Machine.collective ctx (fun () -> Atomic.make (Machine.nprocs ctx))
  in
  if Atomic.fetch_and_add remaining (-1) = 1 then Darray.mark_destroyed a;
  skeleton ctx

(* ------------------------------------------------------------------ *)
(* Local access                                                        *)

let part_bounds ctx a = Darray.bounds a ~rank:(rank ctx)
let get_elem ctx a ix = Darray.get a ~rank:(rank ctx) ix
let put_elem ctx a ix v = Darray.set a ~rank:(rank ctx) ix v

(* ------------------------------------------------------------------ *)
(* map                                                                 *)

let check_same_layout name a b =
  Darray.check_alive a;
  Darray.check_alive b;
  if not (Distribution.same_layout a.Darray.dist b.Darray.dist) then
    invalid_arg (name ^ ": arrays have different layouts")

let map_general ctx ~cost f (src : 'a Darray.t) (dst : 'b Darray.t) =
  with_span ctx "array_map" @@ fun () ->
  skeleton ctx;
  let me = rank ctx in
  let ps = Darray.part src ~rank:me and pd = Darray.part dst ~rank:me in
  protect_part ctx dst pd @@ fun () ->
  let pos = ref 0 in
  Distribution.region_iter ps.Darray.region (fun ix ->
      pd.Darray.data.(!pos) <- f ps.Darray.data.(!pos) ix;
      incr pos);
  Machine.charge ctx Cost_model.Mapped ~ops:!pos ~base:cost

let map ctx ?(cost = default_elem_cost) f src dst =
  check_same_layout "array_map" src dst;
  map_general ctx ~cost f src dst

let map_into ctx ?(cost = default_elem_cost) f src dst =
  check_same_layout "array_map" src dst;
  if src.Darray.id = dst.Darray.id then
    invalid_arg "array_map: in-situ map cannot change the element type";
  map_general ctx ~cost f src dst

(* ------------------------------------------------------------------ *)
(* fold                                                                *)

let fold ctx ?(cost = default_elem_cost) ?acc_bytes ?acc_bytes_of ~conv f
    (a : 'a Darray.t) =
  Darray.check_alive a;
  with_span ctx "array_fold" @@ fun () ->
  skeleton ctx;
  let me = rank ctx in
  let p = Darray.part a ~rank:me in
  let acc = ref None in
  (* local reduction phase: pure reads, so crash protection needs no
     snapshot — a crashed rank just recomputes its partial result *)
  protect_pure ctx a (fun () ->
      acc := None;
      let pos = ref 0 in
      Distribution.region_iter p.Darray.region (fun ix ->
          let v = conv p.Darray.data.(!pos) ix in
          incr pos;
          acc := Some (match !acc with None -> v | Some w -> f w v));
      Machine.charge ctx Cost_model.Mapped ~ops:!pos ~base:cost);
  (* Wire size of the partial result sent up the reduction tree.  When
     [conv] changes the accumulator type (Gauss's pivot search folds floats
     into elemrec structs), the element size of [a] is wrong — pass
     [acc_bytes], or [acc_bytes_of] when the size is only known at run time
     (the interpreter's dynamically typed values). *)
  let bytes =
    match (acc_bytes_of, !acc) with
    | Some measure, Some v -> measure v
    | Some _, None | None, _ -> (
        match acc_bytes with Some b -> b | None -> Darray.elem_bytes a)
  in
  let tag = Machine.tags ctx 1 in
  let merge x y =
    match (x, y) with
    | Some x, Some y -> Some (f x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  match Collectives.allreduce ctx ~tag ~bytes merge !acc with
  | Some v -> v
  | None -> invalid_arg "array_fold: empty array"

(* ------------------------------------------------------------------ *)
(* copy                                                                *)

let copy ctx (src : 'a Darray.t) (dst : 'a Darray.t) =
  check_same_layout "array_copy" src dst;
  with_span ctx "array_copy" @@ fun () ->
  skeleton ctx;
  let me = rank ctx in
  let ps = Darray.part src ~rank:me and pd = Darray.part dst ~rank:me in
  let n = Array.length ps.Darray.data in
  Array.blit ps.Darray.data 0 pd.Darray.data 0 n;
  Machine.charge_copy ctx ~bytes:(n * Darray.elem_bytes src)

(* Same skeleton as [copy] (same span, same charge) for arrays whose host
   representations differ: [conv] converts each element.  Needed when a
   payload-specialised array (unboxed int/float parts) is copied to or from
   a generic boxed one — the simulated machine sees the exact same copy
   either way. *)
let copy_with ctx conv (src : 'a Darray.t) (dst : 'b Darray.t) =
  check_same_layout "array_copy" src dst;
  with_span ctx "array_copy" @@ fun () ->
  skeleton ctx;
  let me = rank ctx in
  let ps = Darray.part src ~rank:me and pd = Darray.part dst ~rank:me in
  let n = Array.length ps.Darray.data in
  for i = 0 to n - 1 do
    pd.Darray.data.(i) <- conv ps.Darray.data.(i)
  done;
  Machine.charge_copy ctx ~bytes:(n * Darray.elem_bytes src)

(* ------------------------------------------------------------------ *)
(* broadcast_part                                                      *)

let broadcast_part ctx (a : 'a Darray.t) ix =
  Darray.check_alive a;
  with_span ctx "array_broadcast_part" @@ fun () ->
  skeleton ctx;
  let me = rank ctx in
  let root = Darray.owner a ix in
  let p = Darray.part a ~rank:me in
  let count = Array.length p.Darray.data in
  let root_count = Darray.local_count a ~rank:root in
  if count <> root_count then
    invalid_arg "array_broadcast_part: partitions have different shapes";
  let tag = Machine.tags ctx 1 in
  let bytes = count * Darray.elem_bytes a in
  (* The root broadcasts a snapshot: messages travel by reference in the
     simulator, and the root may overwrite its partition before a slow
     receiver has consumed the message. *)
  let outgoing = if me = root then Array.copy p.Darray.data else [||] in
  let received = Collectives.bcast ctx ~tag ~root ~bytes outgoing in
  if me <> root then begin
    Array.blit received 0 p.Darray.data 0 count;
    Machine.charge_copy ctx ~bytes
  end

(* ------------------------------------------------------------------ *)
(* permute_rows                                                        *)

let permutation_inverse n perm =
  let inv = Array.make n (-1) in
  for r = 0 to n - 1 do
    let d = perm r in
    if d < 0 || d >= n || inv.(d) >= 0 then
      invalid_arg
        "array_permute_rows: permutation function is not a bijection";
    inv.(d) <- r
  done;
  inv

(* Rows of a partition in local-storage order, with the column range of the
   partition (identical for source and target since layouts match). *)
let partition_rows (p : 'a Darray.part) =
  match p.Darray.region with
  | Distribution.Rect b ->
      ( Array.init (b.Index.upper.(0) - b.Index.lower.(0)) (fun i ->
            b.Index.lower.(0) + i),
        b.Index.lower.(1),
        b.Index.upper.(1) - b.Index.lower.(1) )
  | Distribution.Rows { rows; ncols } -> (rows, 0, ncols)

let permute_rows ctx (src : 'a Darray.t) perm (dst : 'a Darray.t) =
  check_same_layout "array_permute_rows" src dst;
  if Darray.dim src <> 2 then
    invalid_arg "array_permute_rows: 2-D arrays only";
  if src.Darray.id = dst.Darray.id then
    invalid_arg "array_permute_rows: source and target must be distinct";
  with_span ctx "array_permute_rows" @@ fun () ->
  skeleton ctx;
  let n = (Darray.gsize src).(0) in
  let inv = permutation_inverse n perm in
  Machine.charge ctx Cost_model.Scalar ~ops:n ~base:0.2e-6;
  let me = rank ctx in
  let ps = Darray.part src ~rank:me and pd = Darray.part dst ~rank:me in
  let my_rows, col_lo, width = partition_rows ps in
  let tag = Machine.tags ctx 1 in
  let row_bytes = width * Darray.elem_bytes src in
  (* Outgoing rows, in ascending source-row order. *)
  let pending_local = ref [] in
  Array.iteri
    (fun lpos r ->
      let d = perm r in
      let owner = Darray.owner dst [| d; col_lo |] in
      let segment = Array.sub ps.Darray.data (lpos * width) width in
      if owner = me then pending_local := (d, segment) :: !pending_local
      else Machine.send ctx ~dest:owner ~tag ~bytes:row_bytes segment)
    my_rows;
  (* Local moves (buffered so an overlapping in-place pattern still reads
     pre-permutation data, matching a message-based implementation). *)
  List.iter
    (fun (d, segment) ->
      let off = Distribution.region_offset pd.Darray.region [| d; col_lo |] in
      Array.blit segment 0 pd.Darray.data off width;
      Machine.charge_copy ctx ~bytes:row_bytes)
    !pending_local;
  (* Incoming rows: sorted by (source owner, source row) so the receive
     order matches each sender's FIFO send order. *)
  let dst_rows, _, _ = partition_rows pd in
  let incoming =
    Array.to_list dst_rows
    |> List.filter_map (fun d ->
           let s = inv.(d) in
           let owner = Darray.owner src [| s; col_lo |] in
           if owner = me then None else Some (owner, s, d))
    |> List.sort compare
  in
  List.iter
    (fun (owner, _s, d) ->
      let segment : 'a array = Machine.recv ctx ~src:owner ~tag in
      let off = Distribution.region_offset pd.Darray.region [| d; col_lo |] in
      Array.blit segment 0 pd.Darray.data off width;
      (* landing a received row in the partition is the same memory copy the
         local-move branch already pays — charge it symmetrically *)
      Machine.charge_copy ctx ~bytes:row_bytes)
    incoming

(* ------------------------------------------------------------------ *)
(* gen_mult — Gentleman's algorithm on the torus                       *)

let gen_mult ctx ?(cost = default_elem_cost) ~add ~mul (a : 'a Darray.t)
    (b : 'a Darray.t) (c : 'a Darray.t) =
  check_same_layout "array_gen_mult" a b;
  check_same_layout "array_gen_mult" a c;
  if a.Darray.id = b.Darray.id || a.Darray.id = c.Darray.id
     || b.Darray.id = c.Darray.id
  then invalid_arg "array_gen_mult: the three arrays must be distinct";
  let gs = Darray.gsize a in
  if Darray.dim a <> 2 || gs.(0) <> gs.(1) then
    invalid_arg "array_gen_mult: square matrices only";
  let dist = a.Darray.dist in
  let pg = Distribution.pgrid dist in
  if Array.length pg <> 2 || pg.(0) <> pg.(1) then
    invalid_arg
      "array_gen_mult: needs a square processor grid (Torus2d distribution)";
  let q = pg.(0) in
  let n = gs.(0) in
  if n mod q <> 0 then
    invalid_arg "array_gen_mult: grid side must divide the matrix size";
  with_span ctx "array_gen_mult" @@ fun () ->
  skeleton ctx;
  let bs = n / q in
  let me = rank ctx in
  let coords = Distribution.block_coords dist ~rank:me in
  let bi = coords.(0) and bj = coords.(1) in
  let at_rc r c = Distribution.rank_of_block dist [| r mod q; c mod q |] in
  let block_bytes = bs * bs * Darray.elem_bytes a in
  let tag_a = Machine.tags ctx 2 in
  let tag_b = tag_a + 1 in
  let exchange tag ~dest ~src block =
    if dest = me && src = me then block
    else if Machine.coll_legacy ctx then
      Machine.sendrecv ctx ~dest ~src ~tag ~bytes:block_bytes block
    else
      (* counted and traced as a collective under the selecting modes *)
      Collectives.ring_shift ctx ~tag ~bytes:block_bytes ~dest ~src block
  in
  (* Work on rotating snapshots: messages travel by reference, and a fast
     processor may mutate its partitions (e.g. through a following
     array_copy) while slower peers still read the rotating blocks.  The
     partitions of a and b are never mutated here, so their contents survive
     the call unchanged. *)
  let ablock = ref (Array.copy (Darray.part a ~rank:me).Darray.data) in
  let bblock = ref (Array.copy (Darray.part b ~rank:me).Darray.data) in
  let cdata = (Darray.part c ~rank:me).Darray.data in
  (* Initial skew: row i of A rotates west by i, column j of B north by j. *)
  ablock :=
    exchange tag_a ~dest:(at_rc bi (bj - bi + q)) ~src:(at_rc bi (bj + bi))
      !ablock;
  bblock :=
    exchange tag_b ~dest:(at_rc (bi - bj + q) bj) ~src:(at_rc (bi + bj) bj)
      !bblock;
  let cpart = Darray.part c ~rank:me in
  let multiply () =
    (* each block multiplication is one crash-protected region: the rotating
       a/b blocks are fixed within it, and only [cdata] is mutated *)
    protect_part ctx c cpart @@ fun () ->
    let ad = !ablock and bd = !bblock in
    for i = 0 to bs - 1 do
      for k = 0 to bs - 1 do
        let aik = ad.((i * bs) + k) in
        for j = 0 to bs - 1 do
          let off = (i * bs) + j in
          cdata.(off) <- add cdata.(off) (mul aik bd.((k * bs) + j))
        done
      done
    done;
    Machine.charge ctx Cost_model.Kernel ~ops:(bs * bs * bs) ~base:cost
  in
  for step = 1 to q do
    if step < q then begin
      (* Post the rotations before computing: with asynchronous links the
         transfer overlaps the local multiplication (the "new" C style);
         under a sync_comm profile the sender blocks, which is exactly the
         old style's behaviour. *)
      Machine.send ctx ~dest:(at_rc bi (bj - 1 + q)) ~tag:tag_a
        ~bytes:block_bytes !ablock;
      Machine.send ctx ~dest:(at_rc (bi - 1 + q) bj) ~tag:tag_b
        ~bytes:block_bytes !bblock;
      multiply ();
      ablock := Machine.recv ctx ~src:(at_rc bi (bj + 1)) ~tag:tag_a;
      bblock := Machine.recv ctx ~src:(at_rc (bi + 1) bj) ~tag:tag_b
    end
    else multiply ()
  done;
  (* Un-skew so every partition physically returns home, as the in-place
     transputer implementation must (timing realism; values are already
     correct since a and b were never mutated). *)
  if q > 1 then begin
    ignore
      (exchange tag_a
         ~dest:(at_rc bi (bi + bj + q - 1))
         ~src:(at_rc bi (bj - bi + 1 + q))
         !ablock);
    ignore
      (exchange tag_b
         ~dest:(at_rc (bi + bj + q - 1) bj)
         ~src:(at_rc (bi - bj + 1 + q) bj)
         !bblock)
  end

(* ------------------------------------------------------------------ *)
(* gather                                                              *)

let to_flat ctx (a : 'a Darray.t) =
  Darray.check_alive a;
  with_span ctx "array_to_flat" @@ fun () ->
  skeleton ctx;
  let me = rank ctx in
  let p = Darray.part a ~rank:me in
  let tag = Machine.tags ctx 1 in
  let local_bytes = Array.length p.Darray.data * Darray.elem_bytes a in
  let total_bytes = Index.volume (Darray.gsize a) * Darray.elem_bytes a in
  if Machine.coll_legacy ctx then begin
    ignore
      (Collectives.gather_to ctx ~tag ~root:0 ~bytes:local_bytes
         p.Darray.data);
    let flat =
      if me = 0 then Darray.to_flat a
      else [||] (* placeholder; replaced by the broadcast below *)
    in
    let received =
      Collectives.bcast ctx ~tag ~root:0 ~bytes:total_bytes flat
    in
    (* Every processor returns a private snapshot.  The broadcast travels by
       reference in the simulator, so returning [received] itself would hand
       the *same* OCaml array to every processor — a caller mutating its
       "local" copy would silently mutate all the others (and a root mutating
       its result could still be read by slow receivers).  Landing the
       gathered data in caller-owned memory is the same copy
       [broadcast_part] charges, paid symmetrically on every rank. *)
    Machine.charge_copy ctx ~bytes:total_bytes;
    Array.copy received
  end
  else begin
    (* One all-gather instead of gather + broadcast: every rank deposits a
       snapshot of its partition and rebuilds the global image locally.
       Snapshots (not live partitions) make the assembly immune to a fast
       rank mutating its partition after it finishes the collective. *)
    let parts =
      Collectives.allgather ctx ~tag ~bytes:local_bytes
        (Array.copy p.Darray.data)
    in
    let flat = Darray.flat_of_snapshots a parts in
    Machine.charge_copy ctx ~bytes:total_bytes;
    flat
  end
