let row_block_bounds name (a : 'a Darray.t) rank =
  match (Darray.part a ~rank).Darray.region with
  | Distribution.Rect b when Array.length b.Index.lower = 2 -> b
  | Distribution.Rect _ | Distribution.Rows _ ->
      invalid_arg (name ^ ": needs a 2-D row-block distributed array")

let map_halo ctx ?(cost = Skeletons.default_elem_cost) ~radius ~f
    (src : 'a Darray.t) (dst : 'a Darray.t) =
  if radius < 0 then invalid_arg "Stencil.map_halo: negative radius";
  Darray.check_alive src;
  Darray.check_alive dst;
  if src.Darray.id = dst.Darray.id then
    invalid_arg "Stencil.map_halo: source and target must be distinct";
  if not (Distribution.same_layout src.Darray.dist dst.Darray.dist) then
    invalid_arg "Stencil.map_halo: arrays have different layouts";
  Machine.with_span ctx ~cat:Trace.Skeleton "map_halo" @@ fun () ->
  Machine.charge_skeleton_call ctx;
  let me = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let b = row_block_bounds "Stencil.map_halo" src me in
  let r0 = b.Index.lower.(0) and r1 = b.Index.upper.(0) in
  let ncols = b.Index.upper.(1) - b.Index.lower.(1) in
  let nrows_global = (Darray.gsize src).(0) in
  let data = (Darray.part src ~rank:me).Darray.data in
  if p > 1 && r1 - r0 < radius then
    invalid_arg
      "Stencil.map_halo: every partition needs at least `radius` rows";
  let tag = Machine.tags ctx 2 in
  let tag_up = tag and tag_down = tag + 1 in
  let row_bytes = ncols * Darray.elem_bytes src in
  let halo_rows local_first count =
    Array.sub data (local_first * ncols) (count * ncols)
  in
  (* Post boundary-row exchanges with both neighbours (one message each). *)
  let up_count = min radius (r1 - r0) and down_count = min radius (r1 - r0) in
  if me > 0 && up_count > 0 then
    Machine.send ctx ~dest:(me - 1) ~tag:tag_up
      ~bytes:(up_count * row_bytes)
      (halo_rows 0 up_count);
  if me < p - 1 && down_count > 0 then
    Machine.send ctx ~dest:(me + 1) ~tag:tag_down
      ~bytes:(down_count * row_bytes)
      (halo_rows (r1 - r0 - down_count) down_count);
  let north : 'a array =
    if me > 0 && radius > 0 then Machine.recv ctx ~src:(me - 1) ~tag:tag_down
    else [||]
  in
  let south : 'a array =
    if me < p - 1 && radius > 0 then
      Machine.recv ctx ~src:(me + 1) ~tag:tag_up
    else [||]
  in
  let north_rows = Array.length north / max 1 ncols in
  let get r c =
    if c < 0 || c >= ncols || r < 0 || r >= nrows_global then
      invalid_arg "Stencil.map_halo: access outside the global array"
    else if r >= r0 && r < r1 then data.(((r - r0) * ncols) + c)
    else if r < r0 && r0 - r <= north_rows then
      north.(((r - (r0 - north_rows)) * ncols) + c)
    else if r >= r1 && r - r1 < Array.length south / max 1 ncols then
      south.(((r - r1) * ncols) + c)
    else invalid_arg "Stencil.map_halo: access beyond the halo radius"
  in
  let ddata = (Darray.part dst ~rank:me).Darray.data in
  let ix = [| 0; 0 |] in
  for r = r0 to r1 - 1 do
    ix.(0) <- r;
    for c = 0 to ncols - 1 do
      ix.(1) <- c;
      ddata.(((r - r0) * ncols) + c) <- f ~get data.(((r - r0) * ncols) + c) ix
    done
  done;
  Machine.charge ctx Cost_model.Mapped ~ops:((r1 - r0) * ncols) ~base:cost

let jacobi_step ctx ?cost src dst =
  let n = (Darray.gsize src).(0) and m = (Darray.gsize src).(1) in
  let f ~get v ix =
    let r = ix.(0) and c = ix.(1) in
    if r = 0 || c = 0 || r = n - 1 || c = m - 1 then v
    else
      0.25 *. (get (r - 1) c +. get (r + 1) c +. get r (c - 1) +. get r (c + 1))
  in
  map_halo ctx ?cost ~radius:1 ~f src dst
