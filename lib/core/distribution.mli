(** Mapping of a global index space onto a processor grid.

    The paper's arrays are distributed block-wise; cyclic and block-cyclic
    schemes are the extension named in its future-work section.  Blocks are
    balanced: dimension of size [n] over [q] processors gives processor [c]
    the range [\[c*n/q, (c+1)*n/q)], so non-dividing sizes are handled. *)

type scheme =
  | Block
  | Cyclic  (** dimension 0 only; row [i] on processor [i mod p] *)
  | Block_cyclic of int
      (** dimension 0 only; blocks of [k] rows dealt round-robin *)

type region =
  | Rect of Index.bounds  (** a contiguous block *)
  | Rows of { rows : int array; ncols : int }
      (** a set of whole rows of a 2-D array (cyclic schemes); [rows] is
          sorted ascending *)

type t

val create : gsize:Index.size -> pgrid:int array -> scheme -> t
(** [pgrid] has one entry per dimension; its product is the number of
    processors.  @raise Invalid_argument on dimension mismatch, or if a
    cyclic scheme is combined with a processor grid that splits any
    dimension other than 0. *)

val gsize : t -> Index.size
val pgrid : t -> int array
val scheme : t -> scheme
val nprocs : t -> int

val owner : t -> Index.t -> int
(** Rank owning a global index. *)

val region : t -> rank:int -> region
val local_count : t -> rank:int -> int

val block_coords : t -> rank:int -> int array
(** Position of [rank] in the processor grid (row-major). *)

val rank_of_block : t -> int array -> int

val same_layout : t -> t -> bool

val find_row : int array -> int -> int option
(** Binary search in a sorted row set (the [rows] of a cyclic region):
    position of the row inside the set, or [None] if absent. *)

val region_count : region -> int
val region_mem : region -> Index.t -> bool
val region_offset : region -> Index.t -> int
(** Row-major offset of a global index inside the region's local storage.
    @raise Invalid_argument if not a member. *)

val region_locate : region -> Index.t -> int
(** [region_offset] and [region_mem] fused into a single traversal: the
    offset of the index, or [-1] if it is not a member.  This is the
    per-element access path used by [Darray.get]/[Darray.set]. *)

val region_iter : region -> (Index.t -> unit) -> unit
(** Iterate global indices of the region in local-storage order.  The index
    array passed to the callback is reused; copy it if kept. *)
