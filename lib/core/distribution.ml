type scheme = Block | Cyclic | Block_cyclic of int

type region =
  | Rect of Index.bounds
  | Rows of { rows : int array; ncols : int }

type t = { gsize : Index.size; pgrid : int array; scheme : scheme }

let create ~gsize ~pgrid scheme =
  if Array.length gsize <> Array.length pgrid then
    invalid_arg "Distribution.create: gsize/pgrid dimension mismatch";
  Array.iter
    (fun q -> if q <= 0 then invalid_arg "Distribution.create: empty grid")
    pgrid;
  Array.iter
    (fun n -> if n < 0 then invalid_arg "Distribution.create: negative size")
    gsize;
  (match scheme with
   | Block -> ()
   | Cyclic | Block_cyclic _ ->
       if Array.length gsize <> 2 then
         invalid_arg "Distribution.create: cyclic schemes are 2-D only";
       Array.iteri
         (fun d q ->
           if d > 0 && q <> 1 then
             invalid_arg
               "Distribution.create: cyclic schemes distribute dimension 0 \
                only")
         pgrid;
       (match scheme with
        | Block_cyclic k when k <= 0 ->
            invalid_arg "Distribution.create: non-positive block size"
        | _ -> ()));
  { gsize; pgrid; scheme }

let gsize t = t.gsize
let pgrid t = t.pgrid
let scheme t = t.scheme
let nprocs t = Array.fold_left ( * ) 1 t.pgrid

(* Balanced block arithmetic along one dimension. *)
let block_start n q c = c * n / q
let block_owner n q i = ((q * (i + 1)) - 1) / n

let chunk t = match t.scheme with Block_cyclic k -> k | _ -> 1

let owner t ix =
  if Array.length ix <> Array.length t.gsize then
    invalid_arg "Distribution.owner: dimension mismatch";
  match t.scheme with
  | Block ->
      let rank = ref 0 in
      for d = 0 to Array.length ix - 1 do
        rank := (!rank * t.pgrid.(d)) + block_owner t.gsize.(d) t.pgrid.(d) ix.(d)
      done;
      !rank
  | Cyclic | Block_cyclic _ -> ix.(0) / chunk t mod t.pgrid.(0)

let block_coords t ~rank =
  let dim = Array.length t.pgrid in
  let c = Array.make dim 0 in
  let r = ref rank in
  for d = dim - 1 downto 0 do
    c.(d) <- !r mod t.pgrid.(d);
    r := !r / t.pgrid.(d)
  done;
  c

let rank_of_block t coords =
  let rank = ref 0 in
  for d = 0 to Array.length coords - 1 do
    rank := (!rank * t.pgrid.(d)) + coords.(d)
  done;
  !rank

let cyclic_rows t ~rank =
  let p = t.pgrid.(0) and n = t.gsize.(0) and k = chunk t in
  let acc = ref [] in
  let base = ref (rank * k) in
  while !base < n do
    for i = min n (!base + k) - 1 downto !base do
      acc := i :: !acc
    done;
    base := !base + (p * k)
  done;
  (* blocks were prepended most-recent-first with descending rows inside,
     so sorting yields the ascending order [region_iter] relies on *)
  Array.of_list (List.sort compare !acc)

let region t ~rank =
  match t.scheme with
  | Block ->
      let coords = block_coords t ~rank in
      let dim = Array.length t.gsize in
      let lower =
        Array.init dim (fun d -> block_start t.gsize.(d) t.pgrid.(d) coords.(d))
      in
      let upper =
        Array.init dim (fun d ->
            block_start t.gsize.(d) t.pgrid.(d) (coords.(d) + 1))
      in
      Rect { Index.lower; upper }
  | Cyclic | Block_cyclic _ ->
      Rows { rows = cyclic_rows t ~rank; ncols = t.gsize.(1) }

let region_count = function
  | Rect b -> Index.volume (Index.extent b)
  | Rows { rows; ncols } -> Array.length rows * ncols

let local_count t ~rank = region_count (region t ~rank)

let same_layout a b =
  a.gsize = b.gsize && a.pgrid = b.pgrid && a.scheme = b.scheme

let find_row rows r =
  (* binary search in the sorted row set *)
  let lo = ref 0 and hi = ref (Array.length rows) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if rows.(mid) <= r then lo := mid else hi := mid
  done;
  if Array.length rows > 0 && rows.(!lo) = r then Some !lo else None

let region_mem reg ix =
  match reg with
  | Rect b -> Index.contains b ix
  | Rows { rows; ncols } ->
      Array.length ix = 2
      && ix.(1) >= 0 && ix.(1) < ncols
      && find_row rows ix.(0) <> None

let region_offset reg ix =
  match reg with
  | Rect b -> Index.local_offset b ix
  | Rows { rows; ncols } -> (
      match find_row rows ix.(0) with
      | Some pos when ix.(1) >= 0 && ix.(1) < ncols -> (pos * ncols) + ix.(1)
      | Some _ | None ->
          invalid_arg "Distribution.region_offset: index not in region")

let region_locate reg ix =
  (* membership test and offset computation fused into one traversal: this
     sits under every Darray.get/set on the simulator's per-element path *)
  match reg with
  | Rect b ->
      let dim = Array.length b.lower in
      if Array.length ix <> dim then -1
      else begin
        let off = ref 0 in
        let d = ref 0 in
        while
          !d < dim
          && ix.(!d) >= b.lower.(!d)
          && ix.(!d) < b.upper.(!d)
        do
          off := (!off * (b.upper.(!d) - b.lower.(!d))) + (ix.(!d) - b.lower.(!d));
          incr d
        done;
        if !d = dim then !off else -1
      end
  | Rows { rows; ncols } ->
      if Array.length ix <> 2 || ix.(1) < 0 || ix.(1) >= ncols then -1
      else (
        match find_row rows ix.(0) with
        | Some pos -> (pos * ncols) + ix.(1)
        | None -> -1)

let region_iter reg f =
  match reg with
  | Rect b -> Index.iter b f
  | Rows { rows; ncols } ->
      let ix = [| 0; 0 |] in
      Array.iter
        (fun r ->
          ix.(0) <- r;
          for c = 0 to ncols - 1 do
            ix.(1) <- c;
            f ix
          done)
        rows
