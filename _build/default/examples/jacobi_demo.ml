(* PDE-style stencil computation with overlapping partition borders (ghost
   cells) — the paper's future-work extension for block distributions.
   Heat diffusion on a plate with a hot top edge.

   Run with: dune exec examples/jacobi_demo.exe *)

let () =
  let n = 48 and m = 48 and steps = 200 in
  let topology = Topology.mesh ~width:8 ~height:1 in
  let init ix = if ix.(0) = 0 then 100.0 else 0.0 in
  let r =
    Machine.run ~topology (fun ctx ->
        let mk g = Skeletons.create ctx ~gsize:[| n; m |] ~distr:Darray.Default g in
        let a = mk init in
        let b = mk (fun _ -> 0.0) in
        let cur = ref a and nxt = ref b in
        for _ = 1 to steps do
          Stencil.jacobi_step ctx ~cost:Calibration.gauss_elem_op !cur !nxt;
          let t = !cur in
          cur := !nxt;
          nxt := t
        done;
        (* how warm is the middle row? *)
        let mid =
          Skeletons.fold ctx
            ~conv:(fun v ix -> if ix.(0) = n / 2 then v else 0.0)
            ( +. ) !cur
        in
        (mid /. float_of_int m, !cur))
  in
  let mid_avg, field = r.Machine.values.(0) in
  Printf.printf
    "jacobi heat diffusion %dx%d, %d steps on 8 processors\n" n m steps;
  Printf.printf "average temperature of the middle row: %.4f\n" mid_avg;
  Printf.printf "simulated time: %.4f s (%d halo messages)\n\n" r.Machine.time
    (Stats.total_msgs r.Machine.stats);
  (* temperature profile down the column m/2 *)
  let flat = Darray.to_flat field in
  print_endline "temperature profile (column 24):";
  for row = 0 to (n / 4) - 1 do
    let v = flat.((row * 4 * m) + (m / 2)) in
    let bar = String.make (int_of_float (v /. 2.0)) '#' in
    Printf.printf "row %2d %6.2f %s\n" (row * 4) v bar
  done
