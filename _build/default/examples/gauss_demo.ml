(* The paper's section 4.2 application: Gaussian elimination of an
   n x (n+1) system, with and without the pivot search/exchange.

   Run with: dune exec examples/gauss_demo.exe *)

let () =
  let n = 64 in
  let topo = Topology.mesh ~width:4 ~height:2 in
  Printf.printf "gaussian elimination: n = %d on 8 processors\n\n" n;
  (* a well-conditioned system for the no-pivot-search variant *)
  let matrix = Workload.gauss_matrix ~seed:11 ~n in
  let r = Machine.run ~topology:topo (fun ctx -> Gauss.solve ctx ~n ~matrix) in
  let x = r.Machine.values.(0) in
  Printf.printf "residual |Ax - b| (no pivot search) = %.2e\n"
    (Gauss.residual ~n ~matrix x);
  Printf.printf "simulated time: %.4f s\n\n" r.Machine.time;
  (* a system that genuinely needs row exchanges *)
  let wild = Workload.gauss_matrix_wild ~seed:11 ~n in
  let r2 =
    Machine.run ~topology:topo (fun ctx ->
        Gauss.solve ~pivoting:Gauss.Partial ctx ~n ~matrix:wild)
  in
  Printf.printf "residual (partial pivoting, zero diagonals) = %.2e\n"
    (Gauss.residual ~n ~matrix:wild r2.Machine.values.(0));
  Printf.printf "simulated time: %.4f s" r2.Machine.time;
  Printf.printf " (the paper reports ~2x the plain version)\n\n";
  (* singular systems raise the paper's run-time error *)
  let singular ix =
    let i = if ix.(0) = 3 then 2 else ix.(0) in
    wild [| i; ix.(1) |]
  in
  (try
     ignore
       (Machine.run ~topology:topo (fun ctx ->
            Gauss.solve ~pivoting:Gauss.Partial ctx ~n ~matrix:singular))
   with Gauss.Singular -> print_endline "singular matrix detected, as in the paper");
  (* comparison against the hand-written message-passing C version *)
  let t_skil =
    Experiments.time_of Cost_model.skil topo (fun ctx ->
        Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))
  in
  let t_c =
    Experiments.time_of Cost_model.parix_c topo (fun ctx ->
        ignore (Parix_c.gauss ctx ~n ~matrix))
  in
  Printf.printf "\nSkil %.4f s vs hand-written C %.4f s  (Skil/C = %.2f)\n"
    t_skil t_c (t_skil /. t_c)
