(* Where does the simulated time go?  Trace one communication-bound and one
   compute-bound configuration of the Table 2 workload and draw their
   processor timelines.

   Run with: dune exec examples/trace_timeline.exe *)

let run_traced ~n ~w ~h =
  let matrix = Workload.gauss_matrix ~seed:5 ~n in
  Machine.run ~trace:true ~topology:(Topology.mesh ~width:w ~height:h)
    (fun ctx -> Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))

let show label r =
  Printf.printf "%s\n" label;
  print_string
    (Trace.timeline r.Machine.trace
       ~nprocs:(Array.length r.Machine.values)
       ~makespan:r.Machine.time);
  Array.iteri
    (fun p _ ->
      Printf.printf "p%d busy %.0f%%  " p
        (100.0
        *. Trace.busy_fraction r.Machine.trace ~proc:p
             ~makespan:r.Machine.time))
    r.Machine.values;
  Printf.printf "\n\n"

let () =
  (* compute-bound: a large matrix on few processors *)
  show "gauss n=96 on 2x1 (compute-bound):" (run_traced ~n:96 ~w:2 ~h:1);
  (* communication-bound: a small matrix on many processors *)
  show "gauss n=32 on 8x2 (communication-bound):" (run_traced ~n:32 ~w:8 ~h:2)
