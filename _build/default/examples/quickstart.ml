(* Quickstart: create a distributed array on a simulated 2x2 machine, map a
   function over it, fold a summary — the minimal tour of the skeleton API.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let topology = Topology.mesh ~width:2 ~height:2 in
  let result =
    Machine.run ~topology (fun ctx ->
        (* array_create: every processor initializes its own partition from
           the same pure function of the global index *)
        let a =
          Skeletons.create ctx ~gsize:[| 8; 8 |] ~distr:Darray.Default
            (fun ix -> float_of_int ((ix.(0) * 8) + ix.(1)))
        in
        (* array_map in situ: x := sqrt x *)
        Skeletons.map ctx (fun v _ -> sqrt v) a a;
        (* array_fold: global sum, tree-reduced and broadcast back, so every
           processor knows the result *)
        let total = Skeletons.fold ctx ~conv:(fun v _ -> v) ( +. ) a in
        let mine = Darray.local_count a ~rank:(Machine.self ctx) in
        (total, mine))
  in
  Array.iteri
    (fun rank (total, mine) ->
      Printf.printf "processor %d: %d local elements, global sum %.3f\n" rank
        mine total)
    result.Machine.values;
  Printf.printf "simulated time on the T800 machine: %.6f s\n"
    result.Machine.time;
  Format.printf "%a@." Stats.pp_summary result.Machine.stats
