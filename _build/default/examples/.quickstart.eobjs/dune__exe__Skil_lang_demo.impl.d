examples/skil_lang_demo.ml: Array Ast Emit_c Instantiate Interp List Machine Parser Printf Spmd Sys Topology Typecheck Value
