examples/shortest_paths_demo.mli:
