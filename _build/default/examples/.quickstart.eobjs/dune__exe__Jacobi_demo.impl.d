examples/jacobi_demo.ml: Array Calibration Darray Machine Printf Skeletons Stats Stencil String Topology
