examples/quickstart.mli:
