examples/gauss_demo.ml: Array Cost_model Experiments Gauss Machine Parix_c Printf Skeletons Topology Workload
