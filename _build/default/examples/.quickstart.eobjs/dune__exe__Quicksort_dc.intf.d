examples/quicksort_dc.mli:
