examples/quickstart.ml: Array Darray Format Machine Printf Skeletons Stats Topology
