examples/gauss_demo.mli:
