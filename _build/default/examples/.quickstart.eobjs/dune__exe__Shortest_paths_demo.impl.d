examples/shortest_paths_demo.ml: Array Cost_model Experiments List Machine Parix_c Printf Shortest_paths Skeletons Topology Workload
