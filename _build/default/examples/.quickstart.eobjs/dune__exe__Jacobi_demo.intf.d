examples/jacobi_demo.mli:
