examples/trace_timeline.ml: Array Gauss Machine Printf Skeletons Topology Trace Workload
