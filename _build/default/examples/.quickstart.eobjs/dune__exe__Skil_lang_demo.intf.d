examples/skil_lang_demo.mli:
