examples/image_threshold.ml: Array Darray Machine Par_io Printf Skeletons Topology
