examples/quicksort_dc.ml: Array Cost_model List Machine Printf String Task_skel Topology Workload
