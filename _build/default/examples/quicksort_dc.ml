(* Task parallelism: the paper's introductory divide&conquer pattern, here
   sorting with the distributed d&c skeleton, plus a dynamic processor farm
   chewing through uneven tasks.

   Run with: dune exec examples/quicksort_dc.exe *)

let () =
  let topology = Topology.mesh ~width:4 ~height:2 in
  let input = List.init 64 (fun i -> Workload.hash2 ~seed:3 i 0 mod 1000) in
  let rec merge a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys -> if x <= y then x :: merge xs b else y :: merge a ys
  in
  let r =
    Machine.run ~topology (fun ctx ->
        Task_skel.divide_conquer ctx
          ~problem_bytes:(fun l -> 4 * List.length l)
          ~solution_bytes:(fun l -> 4 * List.length l)
          ~is_trivial:(fun l -> List.length l <= 1)
          ~solve:(fun l ->
            Machine.charge ctx Cost_model.Scalar ~ops:1 ~base:10e-6;
            l)
          ~divide:(fun l ->
            let rec split k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> split (k - 1) (x :: acc) rest
            in
            split (List.length l / 2) [] l)
          ~combine:(fun a b ->
            Machine.charge ctx Cost_model.Scalar
              ~ops:(List.length a + List.length b)
              ~base:10e-6;
            merge a b)
          (if Machine.self ctx = 0 then Some input else None))
  in
  (match r.Machine.values.(0) with
   | Some sorted ->
       Printf.printf "d&c mergesort over 8 processors: sorted %d values %s\n"
         (List.length sorted)
         (if sorted = List.sort compare input then "correctly" else "WRONG");
       Printf.printf "first ten: %s\n"
         (String.concat " "
            (List.filteri (fun i _ -> i < 10) sorted |> List.map string_of_int))
   | None -> assert false);
  Printf.printf "simulated time: %.4f s\n\n" r.Machine.time;
  (* the farm: numerical integration of pi with uneven strip widths *)
  let strips =
    List.init 40 (fun i -> (float_of_int i /. 40.0, float_of_int (i + 1) /. 40.0))
  in
  let rf =
    Machine.run ~topology (fun ctx ->
        Task_skel.farm ctx
          ~task_bytes:(fun _ -> 16)
          ~result_bytes:(fun _ -> 8)
          ~worker:(fun (a, b) ->
            (* integrate 4/(1+x^2) over [a,b] with a cost proportional to
               the (deliberately uneven) step count *)
            let steps = 50 + (int_of_float (a *. 4000.0) mod 400) in
            Machine.charge ctx Cost_model.Scalar ~ops:steps ~base:5e-6;
            let hstep = (b -. a) /. float_of_int steps in
            let s = ref 0.0 in
            for i = 0 to steps - 1 do
              let x = a +. ((float_of_int i +. 0.5) *. hstep) in
              s := !s +. (4.0 /. (1.0 +. (x *. x)) *. hstep)
            done;
            !s)
          (if Machine.self ctx = 0 then Some strips else None))
  in
  (match rf.Machine.values.(0) with
   | Some parts ->
       Printf.printf "farm: pi ~ %.6f over %d dynamic tasks\n"
         (List.fold_left ( +. ) 0.0 parts)
         (List.length parts)
   | None -> assert false);
  Printf.printf "simulated time: %.4f s\n" rf.Machine.time
