(* The full Skil language pipeline on the paper's own programs: parse,
   type-check, translate by instantiation, emit C, and execute on the
   simulated machine.

   Run with: dune exec examples/skil_lang_demo.exe
   (the .skil sources live in examples/skil/; see also bin/skilc.exe) *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let find_source name =
  (* works from the repo root and from _build *)
  let candidates =
    [ "examples/skil/" ^ name; "../../examples/skil/" ^ name;
      "../../../examples/skil/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith ("cannot find " ^ name)

let banner title =
  Printf.printf "\n=== %s ===\n" title

let () =
  (* 1. the d&c quicksort of the paper's introduction, sequentially *)
  banner "quicksort.skil: d&c with partial application";
  let src = read (find_source "quicksort.skil") in
  let program = Parser.parse src in
  let env = Typecheck.check program in
  let st = Interp.make ~tyenv:env program in
  ignore (Interp.call st "main" []);
  Printf.printf "interpreted (higher-order): %s\n" (Interp.output st);
  let fo = Instantiate.program env program ~entries:[ "main" ] in
  Printf.printf "after translation by instantiation: %d functions, first-order: %b\n"
    (List.length (List.filter (function Ast.TFunc _ -> true | _ -> false) fo))
    (Instantiate.is_first_order fo);
  let env2 = Typecheck.check fo in
  let st2 = Interp.make ~tyenv:env2 fo in
  ignore (Interp.call st2 "main" []);
  Printf.printf "interpreted (first-order):  %s\n" (Interp.output st2);
  (* 2. the shortest-paths program of section 4.1 on the simulated machine *)
  banner "shpaths.skil on a simulated 2x2 torus";
  let sp = read (find_source "shpaths.skil") in
  let r =
    Spmd.run_source ~topology:(Topology.torus2d ~width:2 ~height:2 ()) sp
      ~entry:"shpaths" ~args:[ Value.VInt 16 ]
  in
  Printf.printf "%s\n" (r.Machine.values.(0)).Spmd.printed;
  Printf.printf "simulated time: %.4f s\n" r.Machine.time;
  (* 3. the C the compiler back end would emit for the threshold example *)
  banner "threshold.skil: emitted C (note array_map_1 with the lifted t)";
  let th = read (find_source "threshold.skil") in
  let p3 = Parser.parse th in
  let env3 = Typecheck.check p3 in
  print_string (Emit_c.program (Instantiate.program env3 p3 ~entries:[ "main" ]))
