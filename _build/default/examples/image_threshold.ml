(* The paper's section 2.4 motivating example, scaled up into a small image
   pipeline: threshold a synthetic grayscale "image" against a value
   (array_map with a partially applied comparison), then count the
   above-threshold pixels per row band (array_fold) and write the result to
   the simulated parallel disk (the future-work I/O skeleton).

   Run with: dune exec examples/image_threshold.exe *)

let () =
  let h = 64 and w = 64 in
  let topology = Topology.mesh ~width:4 ~height:1 in
  let image ix =
    (* a bright diagonal blob on a dark background *)
    let dy = float_of_int (ix.(0) - 32) and dx = float_of_int (ix.(1) - 32) in
    255.0 *. exp (-.((dx *. dx) +. (dy *. dy)) /. 300.0)
  in
  let threshold = 64.0 in
  let above_thresh thresh elem _ix = if elem >= thresh then 1 else 0 in
  let r =
    Machine.run ~topology (fun ctx ->
        let a =
          Skeletons.create ctx ~gsize:[| h; w |] ~distr:Darray.Default image
        in
        let b =
          Skeletons.create ctx ~gsize:[| h; w |] ~distr:Darray.Default
            (fun _ -> 0)
        in
        (* the paper's call: array_map (above_thresh (t), A, B) *)
        Skeletons.map_into ctx (above_thresh threshold) a b;
        let bright = Skeletons.fold ctx ~conv:(fun v _ -> v) ( + ) b in
        let file = Par_io.write_array ctx b in
        (bright, Par_io.bytes_of file, b))
  in
  let bright, bytes, b = r.Machine.values.(0) in
  Printf.printf "image %dx%d, threshold %.0f: %d bright pixels\n" h w
    threshold bright;
  Printf.printf "mask written to the striped disk (%d bytes)\n" bytes;
  Printf.printf "simulated time: %.4f s\n\n" r.Machine.time;
  (* a small ASCII rendering of the mask *)
  let flat = Darray.to_flat b in
  for row = 0 to (h / 4) - 1 do
    for col = 0 to (w / 2) - 1 do
      print_char (if flat.((row * 4 * w) + (col * 2)) = 1 then '#' else '.')
    done;
    print_newline ()
  done
