(* The paper's section 4.1 application: all-pairs shortest paths by min/plus
   matrix powers, run under all three language models of the evaluation.

   Run with: dune exec examples/shortest_paths_demo.exe *)

let () =
  let q = 4 in
  let n = Shortest_paths.adjusted_n ~n:48 ~q in
  let weight = Workload.graph_weight ~seed:7 ~n ~max_weight:50 in
  let torus = Topology.torus2d ~width:q ~height:q () in
  Printf.printf "shortest paths: %d nodes on a %dx%d torus\n\n" n q q;
  (* correctness: the simulated parallel run equals Floyd-Warshall *)
  let r =
    Machine.run ~topology:torus (fun ctx ->
        Shortest_paths.distances ctx ~n ~weight)
  in
  let d = r.Machine.values.(0) in
  let reference = Shortest_paths.floyd_warshall ~n ~weight in
  Printf.printf "matches Floyd-Warshall: %b\n" (d = reference);
  Printf.printf "distances from node 0: ";
  for j = 0 to 7 do
    Printf.printf "%d " d.(j)
  done;
  Printf.printf "...\n\n";
  (* the three systems of Table 1 *)
  List.iter
    (fun (label, profile, topo, hand_written) ->
      let time =
        if hand_written then
          Experiments.time_of profile topo (fun ctx ->
              ignore (Parix_c.shortest_paths ctx ~n ~weight))
        else
          Experiments.time_of profile topo (fun ctx ->
              Skeletons.destroy ctx (Shortest_paths.run ctx ~n ~weight))
      in
      Printf.printf "%-28s %8.3f simulated seconds\n" label time)
    [
      ("Skil (skeletons)", Cost_model.skil, torus, false);
      ("DPFL (functional model)", Cost_model.dpfl, torus, false);
      ( "Parix-C (old, sync comm)",
        Cost_model.parix_c_old,
        Topology.torus2d ~embedding_optimized:false ~width:q ~height:q (),
        true );
    ]
