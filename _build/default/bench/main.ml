(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 5) on the simulated Parsytec MC, prints them next to
   the published values, and runs one Bechamel micro-benchmark per
   table/figure measuring the wall-clock cost of a representative cell.

   Usage: main.exe [--quick] [--csv DIR]
                   [table1|table2|figure1|claim51|claim52|ablations|
                    scaling|bechamel|all]... *)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: wall-clock cost of regenerating one
   representative cell per table/figure. *)

let bechamel_tests () =
  let open Bechamel in
  let seed = 1996 in
  let torus2 = Topology.torus2d ~width:2 ~height:2 () in
  let mesh2 = Topology.mesh ~width:2 ~height:2 in
  let sp_cell () =
    let n = 32 in
    let weight = Workload.graph_weight ~seed ~n ~max_weight:100 in
    Experiments.time_of Cost_model.skil torus2 (fun ctx ->
        Skeletons.destroy ctx (Shortest_paths.run ctx ~n ~weight))
  in
  let gauss_cell pivoting () =
    let n = 32 in
    let matrix = Workload.gauss_matrix ~seed ~n in
    Experiments.time_of Cost_model.skil mesh2 (fun ctx ->
        Skeletons.destroy ctx (Gauss.run ~pivoting ctx ~n ~matrix))
  in
  let figure_cell () =
    (* one gauss cell under both comparators: the unit of work behind every
       Figure 1 point *)
    let n = 32 in
    let matrix = Workload.gauss_matrix ~seed ~n in
    let s =
      Experiments.time_of Cost_model.skil mesh2 (fun ctx ->
          Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))
    in
    let d =
      Experiments.time_of Cost_model.dpfl mesh2 (fun ctx ->
          Skeletons.destroy ctx (Gauss.run ctx ~n ~matrix))
    in
    d /. s
  in
  let matmul_cell () =
    let n = 32 in
    let a = Workload.float_matrix ~seed
    and b = Workload.float_matrix ~seed:7 in
    Experiments.time_of Cost_model.skil torus2 (fun ctx ->
        Skeletons.destroy ctx (Matmul.run ctx ~n ~a ~b))
  in
  [
    Test.make ~name:"table1_cell(shpaths-2x2-n32)"
      (Staged.stage (fun () -> ignore (sp_cell ())));
    Test.make ~name:"table2_cell(gauss-2x2-n32)"
      (Staged.stage (fun () -> ignore (gauss_cell Gauss.No_pivot_search ())));
    Test.make ~name:"figure1_point(gauss-skil+dpfl)"
      (Staged.stage (fun () -> ignore (figure_cell ())));
    Test.make ~name:"claim51_cell(matmul-2x2-n32)"
      (Staged.stage (fun () -> ignore (matmul_cell ())));
    Test.make ~name:"claim52_cell(gauss-pivoting)"
      (Staged.stage (fun () -> ignore (gauss_cell Gauss.Partial ())));
  ]

let run_bechamel () =
  print_endline "== Bechamel: wall-clock cost of one simulation per cell ==";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols instance raw) with
          | Some [ est ] ->
              Printf.printf "%-40s %10.3f ms/run\n%!" name (est /. 1e6)
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n%!" name
          | exception _ -> Printf.printf "%-40s (analysis failed)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"cells" [ t ]) (bechamel_tests ()));
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec extract_csv = function
    | "--csv" :: dir :: rest -> (Some dir, rest)
    | x :: rest ->
        let d, r = extract_csv rest in
        (d, x :: r)
    | [] -> (None, [])
  in
  let csv_dir, args = extract_csv args in
  let targets = List.filter (fun a -> a <> "--quick") args in
  let targets = if targets = [] then [ "all" ] else targets in
  let wants t = List.mem t targets || List.mem "all" targets in
  let t2_memo = ref None in
  let table2 () =
    match !t2_memo with
    | Some r -> r
    | None ->
        let r = Experiments.table2 ~quick () in
        t2_memo := Some r;
        r
  in
  Printf.printf
    "Skil reproduction benchmarks (simulated Parsytec MC, T800 mesh)%s\n\n"
    (if quick then " [quick]" else "");
  let t1_memo = ref None in
  let table1 () =
    match !t1_memo with
    | Some r -> r
    | None ->
        let r = Experiments.table1 ~quick () in
        t1_memo := Some r;
        r
  in
  if wants "table1" then Report.print_table1 ~quick ();
  if wants "table2" then Report.print_table2 (table2 ()) ~quick;
  if wants "figure1" then Report.print_figure1 (table2 ());
  if wants "claim51" then Report.print_claim51 ~quick ();
  if wants "claim52" then Report.print_claim52 ~quick ();
  if wants "ablations" then Report.print_ablations ~quick ();
  if wants "scaling" then Report.print_scaling ~quick ();
  (match csv_dir with
   | Some dir -> Report.write_csvs ~dir (table1 ()) (table2 ())
   | None -> ());
  if wants "bechamel" then run_bechamel ()
