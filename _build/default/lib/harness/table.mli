(** Plain-text table rendering for the benchmark harness. *)

type align = Left | Right

val render :
  ?aligns:align list -> headers:string list -> string list list -> string
(** Monospaced table with a header rule.  Missing cells render empty;
    [aligns] defaults to [Right] for every column. *)

val fmt_time : float -> string
(** Seconds with the precision the paper's tables use. *)

val fmt_ratio : float -> string
val fmt_opt : ('a -> string) -> 'a option -> string
