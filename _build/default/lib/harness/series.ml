type t = { label : string; points : (float * float) list }

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> None
  | _ ->
      let lo l = List.fold_left Float.min (List.hd l) l in
      let hi l = List.fold_left Float.max (List.hd l) l in
      Some (lo xs, hi xs, Float.min 0.0 (lo ys), hi ys)

let plot ?(width = 60) ?(height = 16) ~title ~xlabel ~ylabel series =
  match bounds series with
  | None -> title ^ "\n(no data)\n"
  | Some (x0, x1, y0, y1) ->
      let xspan = if x1 > x0 then x1 -. x0 else 1.0 in
      let yspan = if y1 > y0 then y1 -. y0 else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si s ->
          let m = markers.(si mod Array.length markers) in
          List.iter
            (fun (x, y) ->
              let cx =
                int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1))
              in
              let cy =
                height - 1
                - int_of_float ((y -. y0) /. yspan *. float_of_int (height - 1))
              in
              if cx >= 0 && cx < width && cy >= 0 && cy < height then
                grid.(cy).(cx) <- m)
            s.points)
        series;
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (title ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "%s: %.2f .. %.2f (top to bottom)\n" ylabel y1 y0);
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "   %s: %.0f .. %.0f\n" xlabel x0 x1);
      List.iteri
        (fun si s ->
          Buffer.add_string buf
            (Printf.sprintf "   %c = %s\n"
               markers.(si mod Array.length markers)
               s.label))
        series;
      Buffer.contents buf

let to_csv series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "series,x,y\n";
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          Buffer.add_string buf (Printf.sprintf "%s,%g,%.4f\n" s.label x y))
        s.points)
    series;
  Buffer.contents buf
