(** Figure reproduction as data series plus a rough ASCII rendering (the
    paper's Figure 1 plots speedups/slow-downs against processor count). *)

type t = { label : string; points : (float * float) list }

val plot :
  ?width:int ->
  ?height:int ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  t list ->
  string
(** Scatter the series into a character grid; each series is drawn with its
    own marker and listed in a legend. *)

val to_csv : t list -> string
(** ["label,x,y"] lines, one per point — the machine-readable form of the
    figure. *)
