lib/harness/report.ml: Buffer Experiments Filename List Option Printf Series Table
