lib/harness/experiments.mli: Cost_model Machine Series Topology
