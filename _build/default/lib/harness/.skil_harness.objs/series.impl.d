lib/harness/series.ml: Array Buffer Float List Printf String
