lib/harness/experiments.ml: Array Calibration Collectives Cost_model Darray Distribution Gauss List Machine Matmul Option Parix_c Printf Series Shortest_paths Skeletons Topology Workload
