lib/harness/series.mli:
