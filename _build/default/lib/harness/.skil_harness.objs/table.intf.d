lib/harness/table.mli:
