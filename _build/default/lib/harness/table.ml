type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~headers rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length headers)
      rows
  in
  let get l i = match List.nth_opt l i with Some s -> s | None -> "" in
  let aligns =
    match aligns with
    | Some a -> Array.init ncols (fun i -> match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> Array.make ncols Right
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      for i = 0 to ncols - 1 do
        widths.(i) <- max widths.(i) (String.length (get row i))
      done)
    (headers :: rows);
  let line row =
    String.concat "  "
      (List.init ncols (fun i -> pad aligns.(i) widths.(i) (get row i)))
  in
  let rule =
    String.concat "--"
      (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (line headers :: rule :: List.map line rows) ^ "\n"

let fmt_time t = Printf.sprintf "%.2f" t
let fmt_ratio r = Printf.sprintf "%.2f" r
let fmt_opt f = function Some v -> f v | None -> "-"
