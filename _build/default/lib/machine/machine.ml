type message = { arrival : float; payload : Obj.t }

type waiting = Exact of int * int | Any_source of int

type proc = {
  id : int;
  mutable clock : float;
  inbox : (int * int, message Queue.t) Hashtbl.t; (* keyed by (src, tag) *)
  mutable waiting : waiting option;
  mutable coll_count : int; (* collective call sites reached so far *)
  stats : Stats.proc;
}

type t = {
  topology : Topology.t;
  cost : Cost_model.t;
  procs : proc array;
  sched : Scheduler.t;
  collectives : (int, Obj.t * int ref) Hashtbl.t;
  mutable next_tag : int;
  trace : Trace.t;
}

type ctx = { m : t; p : proc }

type 'r result = {
  values : 'r array;
  time : float;
  stats : Stats.t;
  trace : Trace.t;
}

let self ctx = ctx.p.id
let nprocs ctx = Array.length ctx.m.procs
let topology ctx = ctx.m.topology
let cost ctx = ctx.m.cost
let profile ctx = ctx.m.cost.Cost_model.profile
let clock ctx = ctx.p.clock

let compute ctx seconds =
  assert (seconds >= 0.0);
  Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
    ~duration:seconds Trace.Compute;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.compute_time <- ctx.p.stats.Stats.compute_time +. seconds

let charge ctx cls ~ops ~base =
  if ops > 0 then
    compute ctx (float_of_int ops *. base *. Cost_model.factor (profile ctx) cls)

let overhead ctx seconds =
  Trace.record ctx.m.trace ~proc:ctx.p.id ~start:ctx.p.clock
    ~duration:seconds Trace.Overhead;
  ctx.p.clock <- ctx.p.clock +. seconds;
  ctx.p.stats.Stats.overhead_time <-
    ctx.p.stats.Stats.overhead_time +. seconds

let charge_skeleton_call ctx =
  ctx.p.stats.Stats.skeleton_calls <- ctx.p.stats.Stats.skeleton_calls + 1;
  overhead ctx (profile ctx).Cost_model.skeleton_call

let charge_copy ctx ~bytes =
  compute ctx (float_of_int bytes *. Calibration.copy_per_byte)

let queue_of inbox key =
  match Hashtbl.find_opt inbox key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add inbox key q;
      q

let send ctx ?(rendezvous = false) ~dest ~tag ~bytes v =
  let m = ctx.m in
  if dest < 0 || dest >= Array.length m.procs then
    invalid_arg "Machine.send: destination out of range";
  let params = m.cost.Cost_model.params in
  let cf = (profile ctx).Cost_model.comm_factor in
  overhead ctx (cf *. params.Cost_model.send_overhead);
  let hops = Topology.hops m.topology ctx.p.id dest in
  let arrival =
    ctx.p.clock
    +. cf
       *. (params.Cost_model.msg_latency
           +. (float_of_int hops *. params.Cost_model.per_hop)
           +. (float_of_int bytes *. params.Cost_model.per_byte))
  in
  let target = m.procs.(dest) in
  Queue.add { arrival; payload = Obj.repr v }
    (queue_of target.inbox (ctx.p.id, tag));
  let st = ctx.p.stats in
  st.Stats.msgs_sent <- st.Stats.msgs_sent + 1;
  st.Stats.bytes_sent <- st.Stats.bytes_sent + bytes;
  st.Stats.hop_bytes <- st.Stats.hop_bytes + (bytes * hops);
  if rendezvous || (profile ctx).Cost_model.sync_comm then begin
    (* Rendezvous-style link: the sender is busy until delivery, so no
       communication/computation overlap is possible. *)
    let wait = Float.max 0.0 (arrival -. ctx.p.clock) in
    Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
      Trace.Wait;
    ctx.p.clock <- arrival;
    st.Stats.comm_wait <- st.Stats.comm_wait +. wait
  end;
  (match target.waiting with
   | Some (Exact (s, t)) when s = ctx.p.id && t = tag ->
       target.waiting <- None;
       Scheduler.wake m.sched dest
   | Some (Any_source t) when t = tag ->
       target.waiting <- None;
       Scheduler.wake m.sched dest
   | Some _ | None -> ())

let recv ctx ~src ~tag =
  let m = ctx.m in
  if src < 0 || src >= Array.length m.procs then
    invalid_arg "Machine.recv: source out of range";
  let key = (src, tag) in
  let rec obtain () =
    match Hashtbl.find_opt ctx.p.inbox key with
    | Some q when not (Queue.is_empty q) -> Queue.take q
    | Some _ | None ->
        let src0, tag0 = key in
        ctx.p.waiting <- Some (Exact (src0, tag0));
        Scheduler.block m.sched;
        obtain ()
  in
  let msg = obtain () in
  ctx.p.waiting <- None;
  let params = m.cost.Cost_model.params in
  let wait = Float.max 0.0 (msg.arrival -. ctx.p.clock) in
  Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
    Trace.Wait;
  ctx.p.clock <- Float.max ctx.p.clock msg.arrival;
  ctx.p.stats.Stats.comm_wait <- ctx.p.stats.Stats.comm_wait +. wait;
  overhead ctx
    ((profile ctx).Cost_model.comm_factor *. params.Cost_model.recv_overhead);
  Obj.obj msg.payload

let recv_any ctx ~tag =
  let m = ctx.m in
  (* deterministic choice: earliest arrival, then lowest source rank *)
  let best () =
    Hashtbl.fold
      (fun (src, t) q acc ->
        if t <> tag || Queue.is_empty q then acc
        else
          let msg = Queue.peek q in
          match acc with
          | Some (bsrc, bmsg)
            when bmsg.arrival < msg.arrival
                 || (bmsg.arrival = msg.arrival && bsrc < src) ->
              acc
          | _ -> Some (src, msg))
      ctx.p.inbox None
  in
  let rec obtain () =
    match best () with
    | Some (src, _) ->
        let q = Hashtbl.find ctx.p.inbox (src, tag) in
        (src, Queue.take q)
    | None ->
        ctx.p.waiting <- Some (Any_source tag);
        Scheduler.block m.sched;
        obtain ()
  in
  let src, msg = obtain () in
  ctx.p.waiting <- None;
  let params = m.cost.Cost_model.params in
  let wait = Float.max 0.0 (msg.arrival -. ctx.p.clock) in
  Trace.record m.trace ~proc:ctx.p.id ~start:ctx.p.clock ~duration:wait
    Trace.Wait;
  ctx.p.clock <- Float.max ctx.p.clock msg.arrival;
  ctx.p.stats.Stats.comm_wait <- ctx.p.stats.Stats.comm_wait +. wait;
  overhead ctx
    ((profile ctx).Cost_model.comm_factor *. params.Cost_model.recv_overhead);
  (src, Obj.obj msg.payload)

let sendrecv ctx ~dest ~src ~tag ~bytes v =
  send ctx ~dest ~tag ~bytes v;
  recv ctx ~src ~tag

let collective ctx f =
  let m = ctx.m in
  let idx = ctx.p.coll_count in
  ctx.p.coll_count <- idx + 1;
  match Hashtbl.find_opt m.collectives idx with
  | Some (v, remaining) ->
      decr remaining;
      if !remaining = 0 then Hashtbl.remove m.collectives idx;
      Obj.obj v
  | None ->
      let v = f () in
      let consumers = Array.length m.procs - 1 in
      if consumers > 0 then
        Hashtbl.add m.collectives idx (Obj.repr v, ref consumers);
      v

let tags ctx n =
  collective ctx (fun () ->
      let t = ctx.m.next_tag in
      ctx.m.next_tag <- ctx.m.next_tag + n;
      t)

let run ?(cost = Cost_model.default) ?(trace = false) ~topology f =
  let n = Topology.nprocs topology in
  let sched = Scheduler.create () in
  let m =
    {
      topology;
      cost;
      procs =
        Array.init n (fun id ->
            {
              id;
              clock = 0.0;
              inbox = Hashtbl.create 16;
              waiting = None;
              coll_count = 0;
              stats = Stats.fresh_proc ();
            });
      sched;
      collectives = Hashtbl.create 16;
      next_tag = 0;
      trace = Trace.create ~enabled:trace;
    }
  in
  let stats =
    { Stats.procs = Array.map (fun (p : proc) -> p.stats) m.procs;
      makespan = 0.0 }
  in
  let values = Array.make n None in
  for id = 0 to n - 1 do
    let ctx = { m; p = m.procs.(id) } in
    ignore (Scheduler.spawn sched (fun () -> values.(id) <- Some (f ctx)))
  done;
  Scheduler.run sched;
  let makespan =
    Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 m.procs
  in
  stats.Stats.makespan <- makespan;
  let values =
    Array.map
      (function Some v -> v | None -> failwith "Machine.run: missing result")
      values
  in
  { values; time = makespan; stats; trace = m.trace }
