(** Optional event tracing of simulated runs.

    When {!Machine.run} is called with [~trace:true], every clock-advancing
    action is recorded as an interval on the owning processor's timeline:
    computation, communication waits, software overheads.  The result is a
    per-processor activity profile — the tool one reaches for to see {e why}
    a configuration of Table 2 is communication-bound. *)

type kind =
  | Compute
  | Wait  (** blocked on a message that had not arrived yet *)
  | Overhead  (** send/recv software costs, skeleton call overheads *)

type event = { proc : int; start : float; duration : float; kind : kind }

type t

val create : enabled:bool -> t
val enabled : t -> bool
val record : t -> proc:int -> start:float -> duration:float -> kind -> unit
val events : t -> event list
(** In recording order. *)

val busy_fraction : t -> proc:int -> makespan:float -> float
(** Fraction of the makespan the processor spent computing. *)

val timeline :
  ?width:int -> t -> nprocs:int -> makespan:float -> string
(** ASCII utilization chart, one row per processor: ['#'] computing, ['.']
    waiting, ['+'] overhead, [' '] idle. *)
