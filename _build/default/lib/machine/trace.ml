type kind = Compute | Wait | Overhead
type event = { proc : int; start : float; duration : float; kind : kind }
type t = { enabled : bool; mutable events : event list (* reversed *) }

let create ~enabled = { enabled; events = [] }
let enabled t = t.enabled

let record t ~proc ~start ~duration kind =
  if t.enabled && duration > 0.0 then
    t.events <- { proc; start; duration; kind } :: t.events

let events t = List.rev t.events

let busy_fraction t ~proc ~makespan =
  if makespan <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc e ->
        if e.proc = proc && e.kind = Compute then acc +. e.duration else acc)
      0.0 t.events
    /. makespan

let timeline ?(width = 60) t ~nprocs ~makespan =
  if makespan <= 0.0 then "(no simulated time passed)\n"
  else begin
    let grid = Array.make_matrix nprocs width ' ' in
    let mark e =
      let c =
        match e.kind with Compute -> '#' | Wait -> '.' | Overhead -> '+'
      in
      let b0 =
        int_of_float (e.start /. makespan *. float_of_int width)
      in
      let b1 =
        int_of_float
          ((e.start +. e.duration) /. makespan *. float_of_int width)
      in
      for b = max 0 b0 to min (width - 1) b1 do
        if e.proc >= 0 && e.proc < nprocs then
          (* computing dominates waiting dominates overhead within a cell *)
          let cur = grid.(e.proc).(b) in
          let rank ch =
            match ch with '#' -> 3 | '.' -> 2 | '+' -> 1 | _ -> 0
          in
          if rank c > rank cur then grid.(e.proc).(b) <- c
      done
    in
    List.iter mark t.events;
    let buf = Buffer.create (nprocs * (width + 16)) in
    Buffer.add_string buf
      (Printf.sprintf "timeline over %.4f s  (#=compute  .=wait  +=overhead)\n"
         makespan);
    Array.iteri
      (fun p row ->
        Buffer.add_string buf (Printf.sprintf "p%-3d |" p);
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_string buf "|\n")
      grid;
    Buffer.contents buf
  end
