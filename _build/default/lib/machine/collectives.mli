(** Collective operations built from point-to-point messages along a virtual
    binomial tree, as in the paper's [array_fold] ("performed along the edges
    of a virtual tree topology ... broadcasted from the root along the tree
    edges to all other processors").

    Every collective must be called by all processors of the machine with the
    same [tag] and compatible arguments.  [bytes] is the simulated wire size
    of one payload. *)

val bcast : Machine.ctx -> tag:int -> root:int -> bytes:int -> 'a -> 'a
(** Tree broadcast of [root]'s value; every processor returns it.  The value
    argument of non-root processors is ignored. *)

val reduce :
  Machine.ctx ->
  tag:int ->
  root:int ->
  bytes:int ->
  ('a -> 'a -> 'a) ->
  'a ->
  'a
(** Tree reduction; only [root]'s return value is meaningful.  [f] should be
    associative and commutative (the paper makes the same demand of
    [array_fold]'s folding function). *)

val allreduce :
  Machine.ctx -> tag:int -> bytes:int -> ('a -> 'a -> 'a) -> 'a -> 'a
(** {!reduce} to processor 0 followed by {!bcast}; every processor returns
    the combined value. *)

val barrier : Machine.ctx -> tag:int -> unit
(** All processors synchronize (zero-byte allreduce). *)

val scan :
  Machine.ctx -> tag:int -> bytes:int -> ('a -> 'a -> 'a) -> 'a -> 'a
(** Inclusive prefix combine in rank order: processor [i] returns
    [f v0 (f v1 (... vi))].  Linear pipeline (used by the block-cyclic
    redistribution extension). *)

val gather_to : Machine.ctx -> tag:int -> root:int -> bytes:int -> 'a -> 'a array option
(** Every processor contributes one value; [root] returns [Some arr] with
    [arr.(i)] from processor [i], others return [None]. *)

val ring_shift :
  Machine.ctx -> tag:int -> bytes:int -> dest:int -> src:int -> 'a -> 'a
(** Simultaneous shift: send the value to [dest], return the one received
    from [src].  Used for Gentleman's partition rotations. *)
