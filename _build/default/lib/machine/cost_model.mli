(** Timing model of the simulated machine.

    Sequential work is charged as [ops * base_cost * factor], where the
    factor depends on the {e language profile} and on how the work is
    expressed ({!op_class}).  Communication costs follow a LogP-style model
    parameterized by {!machine_params}.  The language profiles encode the
    paper's three systems (Skil, hand-written Parix-C in its old and new
    incarnations, and the data-parallel functional language DPFL); see
    DESIGN.md section 6 for the rationale behind each factor. *)

type op_class =
  | Kernel
      (** tight instantiated loops, e.g. the inner loop of
          [array_gen_mult] after Skil's translation by instantiation *)
  | Mapped
      (** per-element work performed through a skeleton's functional
          argument (map/fold bodies) *)
  | Scalar  (** plain sequential statements outside any skeleton *)

type profile = {
  profile_name : string;
  kernel_factor : float;
  mapped_factor : float;
  scalar_factor : float;
  skeleton_call : float;  (** seconds of overhead per skeleton invocation *)
  comm_factor : float;
      (** multiplier on all per-message costs (latency, per-hop, per-byte,
          software overheads): closure-based runtimes also pay for packing
          boxed data into messages *)
  sync_comm : bool;
      (** if true, a sender's clock advances to the delivery time of every
          message (no communication/computation overlap) *)
  embedding_optimized : bool;
      (** whether Parix virtual topologies are used (false for the paper's
          "older version" of the C shortest-paths program) *)
}

type machine_params = {
  msg_latency : float;  (** fixed software + first-link cost per message *)
  per_hop : float;  (** additional cost per mesh link traversed *)
  per_byte : float;  (** transfer cost per payload byte *)
  send_overhead : float;  (** sender-side software overhead per message *)
  recv_overhead : float;  (** receiver-side software overhead per message *)
}

type t = { params : machine_params; profile : profile }

val transputer : machine_params
(** Parameters approximating the Parsytec MC's T800 links under Parix. *)

val skil : profile

val parix_c : profile
(** The "equally optimized" hand-written C. *)

val parix_c_old : profile
(** The older C shortest-paths version of Table 1: synchronous unoverlapped
    communication, no virtual topologies, less optimized kernels. *)

val dpfl : profile

val default : t
(** [transputer] parameters with the [skil] profile. *)

val make : ?params:machine_params -> profile -> t

val factor : profile -> op_class -> float

val pp_profile : Format.formatter -> profile -> unit
