(* Derivations (see DESIGN.md sections 5-6):
   - minplus_op: Table 1, sqrt p = 2 is compute-dominated; 234.29 s for
     ceil(log2 200) * 200^3 / 4 = 1.6e7 per-processor steps at Skil's kernel
     factor 1.2 gives ~12.2 us per C-level step.
   - gauss_elem_op: Table 2, p = 4x4, n = 640 is compute-dominated; 453.86 s
     for 640 * 40 * 641 = 1.64e7 per-processor map visits at Skil's mapped
     factor 2.5 gives ~11 us per C-level visit.
   Both are plausible for a 20 MHz T800 running compiler-generated code with
   2-D index arithmetic in the inner loop. *)

let minplus_op = 12.2e-6
let float_madd_op = 12.2e-6
let gauss_elem_op = 10.2e-6
let fold_conv_op = 10.0e-6
let copy_per_byte = 0.10e-6
let elem_bytes = 4
let io_per_byte = 2.0e-6
let scalar_node_op = 2.0e-6
