(** Per-processor and aggregate counters collected during a simulated run. *)

type proc = {
  mutable compute_time : float;  (** seconds of charged sequential work *)
  mutable comm_wait : float;  (** idle time spent waiting for messages *)
  mutable overhead_time : float;  (** send/recv/skeleton software overheads *)
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable hop_bytes : int;  (** sum over messages of [bytes * hops] *)
  mutable skeleton_calls : int;
}

type t = {
  procs : proc array;
  mutable makespan : float;  (** max finishing clock over processors *)
}

val create : int -> t
val fresh_proc : unit -> proc
val proc : t -> int -> proc
val total_msgs : t -> int
val total_bytes : t -> int
val max_compute : t -> float
val avg_comm_wait : t -> float
val pp_summary : Format.formatter -> t -> unit
