lib/machine/scheduler.ml: Array Effect Queue
