lib/machine/collectives.mli: Machine
