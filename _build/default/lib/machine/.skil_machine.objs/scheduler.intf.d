lib/machine/scheduler.mli:
