lib/machine/trace.ml: Array Buffer List Printf
