lib/machine/calibration.ml:
