lib/machine/topology.ml: Array Format
