lib/machine/collectives.ml: Array Machine
