lib/machine/stats.ml: Array Float Format
