lib/machine/calibration.mli:
