lib/machine/machine.mli: Cost_model Stats Topology Trace
