lib/machine/machine.ml: Array Calibration Cost_model Float Hashtbl Obj Queue Scheduler Stats Topology Trace
