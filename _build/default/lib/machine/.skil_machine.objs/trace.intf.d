lib/machine/trace.mli:
