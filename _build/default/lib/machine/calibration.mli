(** Base per-element operation costs (seconds, C-compiled tight loop on a
    20 MHz T800).  These are the only absolute-scale constants of the
    reproduction; they are global per kernel family and are never tuned per
    experiment cell.  EXPERIMENTS.md records how the resulting absolute times
    compare with the paper's. *)

val minplus_op : float
(** One [c = min (c, a + b)] step with 2-D index arithmetic, unsigned ints
    (shortest paths / [array_gen_mult] inner loop). *)

val float_madd_op : float
(** One [c = c + a * b] step, 32-bit floats (classical matrix
    multiplication). *)

val gauss_elem_op : float
(** One visit of the Gaussian-elimination [eliminate] body: the branch on the
    index plus, where applicable, [v - a_ik * piv_j]. *)

val fold_conv_op : float
(** One conversion + comparison step of [array_fold] (e.g. building an
    [elemrec] and taking a maximum). *)

val copy_per_byte : float
(** Contiguous memory copy, per byte ([array_copy], partition staging). *)

val elem_bytes : int
(** Size of a scalar array element (32-bit ints and floats in 1996). *)

val io_per_byte : float
(** Simulated parallel-disk transfer cost per byte (for the [Par_io]
    extension; no measurement in the paper). *)

val scalar_node_op : float
(** Cost of evaluating one expression node of sequential Skil code in the
    language interpreter (charged at the profile's [Scalar] rate; roughly a
    couple of T800 instructions). *)
