type op_class = Kernel | Mapped | Scalar

type profile = {
  profile_name : string;
  kernel_factor : float;
  mapped_factor : float;
  scalar_factor : float;
  skeleton_call : float;
  comm_factor : float;
  sync_comm : bool;
  embedding_optimized : bool;
}

type machine_params = {
  msg_latency : float;
  per_hop : float;
  per_byte : float;
  send_overhead : float;
  recv_overhead : float;
}

type t = { params : machine_params; profile : profile }

(* Effective cost of one Parix virtual-link message on 20 Mbit/s T800
   links: several hundred microseconds of software setup, and well under
   raw link bandwidth once protocol and store-and-forward overheads are
   paid. *)
let transputer =
  {
    msg_latency = 1.1e-3;
    per_hop = 30e-6;
    per_byte = 2.5e-6;
    send_overhead = 40e-6;
    recv_overhead = 40e-6;
  }

(* Compiled by instantiation: kernels are within ~20% of C (section 5.1);
   map/fold bodies still go through one more call level and index plumbing,
   which is where the factor ~2.5 of Table 2 at large n comes from. *)
let skil =
  {
    profile_name = "Skil";
    kernel_factor = 1.2;
    mapped_factor = 2.5;
    scalar_factor = 1.1;
    skeleton_call = 0.20e-3;
    comm_factor = 1.0;
    sync_comm = false;
    embedding_optimized = true;
  }

let parix_c =
  {
    profile_name = "Parix-C";
    kernel_factor = 1.0;
    mapped_factor = 1.0;
    scalar_factor = 1.0;
    skeleton_call = 0.0;
    comm_factor = 1.0;
    sync_comm = false;
    embedding_optimized = true;
  }

(* The "older version" of section 5.1: synchronous communication, no virtual
   topologies, and a less optimized code base (the compute-proportional part
   of its disadvantage in Table 1 scales as 1/p, hence the kernel factor). *)
let parix_c_old =
  {
    parix_c with
    profile_name = "Parix-C (old)";
    kernel_factor = 1.30;
    comm_factor = 1.4; (* per-message staging copies, no DMA overlap *)
    sync_comm = true;
    embedding_optimized = false;
  }

(* Closure-based graph reduction with boxed values: the paper measures a
   factor around 6.5 relative to Skil on compute-bound configurations. *)
let dpfl =
  {
    profile_name = "DPFL";
    kernel_factor = 7.8;
    mapped_factor = 16.3;
    scalar_factor = 7.0;
    skeleton_call = 0.50e-3;
    comm_factor = 2.4; (* boxed data is packed/unpacked around every send *)
    sync_comm = false;
    embedding_optimized = true;
  }

let make ?(params = transputer) profile = { params; profile }
let default = make skil

let factor p = function
  | Kernel -> p.kernel_factor
  | Mapped -> p.mapped_factor
  | Scalar -> p.scalar_factor

let pp_profile ppf p =
  Format.fprintf ppf
    "%s (kernel x%.2f, mapped x%.2f, skeleton call %.0f us, %s comm)"
    p.profile_name p.kernel_factor p.mapped_factor (p.skeleton_call *. 1e6)
    (if p.sync_comm then "sync" else "async")
