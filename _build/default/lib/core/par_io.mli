(** Parallel I/O skeletons — the second future-work item of the paper
    ("in order to be able to cope with 'real world' applications, new
    skeletons, for instance for (parallel) I/O, must be designed").

    The disk is modeled as [stripes] independent I/O servers hosted on the
    first [stripes] processors; partitions are written/read round-robin
    across the stripes, each stripe serializing its requests.  Costs use
    {!Calibration.io_per_byte}; no host file system is touched. *)

type file
(** A simulated file: the written partitions, retained for {!read_array}. *)

val write_array : Machine.ctx -> ?stripes:int -> 'a Darray.t -> file
(** Collective write of the whole array; returns the file handle (the same
    handle on every processor).  [stripes] defaults to
    [min 4 (nprocs)]. *)

val read_array : Machine.ctx -> file -> 'a Darray.t -> unit
(** Collective read back into an array of the same layout.
    @raise Invalid_argument on layout mismatch. *)

val bytes_of : file -> int
(** Total payload size of the file. *)
