type file = {
  stripes : int;
  (* partition payloads by rank; Obj-typed like machine messages, recovered
     at the matching read_array call site (SPMD discipline guarantees the
     element type matches) *)
  parts : Obj.t option array;
  part_bytes : int array;
  total_bytes : int;
  gsize : Index.size;
}

let bytes_of f = f.total_bytes
let server_of f rank = rank mod f.stripes
let io_time bytes = float_of_int bytes *. Calibration.io_per_byte

let write_array ctx ?stripes (a : 'a Darray.t) =
  Darray.check_alive a;
  Machine.charge_skeleton_call ctx;
  let p = Machine.nprocs ctx in
  let stripes =
    match stripes with
    | Some s when s >= 1 && s <= p -> s
    | Some _ -> invalid_arg "Par_io.write_array: stripes out of range"
    | None -> min 4 p
  in
  let tag = Machine.tags ctx 1 in
  let f =
    Machine.collective ctx (fun () ->
        let part_bytes =
          Array.init p (fun rank ->
              Darray.local_count a ~rank * Darray.elem_bytes a)
        in
        {
          stripes;
          parts = Array.make p None;
          part_bytes;
          total_bytes = Array.fold_left ( + ) 0 part_bytes;
          gsize = Darray.gsize a;
        })
  in
  let me = Machine.self ctx in
  let my_payload = Obj.repr (Array.copy (Darray.part a ~rank:me).Darray.data) in
  (* clients push their payloads to their stripe server *)
  if server_of f me <> me then
    Machine.send ctx ~dest:(server_of f me) ~tag ~bytes:f.part_bytes.(me)
      my_payload
  else f.parts.(me) <- Some my_payload;
  (* each server drains its clients in rank order, pays the disk transfer
     and acknowledges *)
  if me < f.stripes then
    for client = 0 to p - 1 do
      if server_of f client = me then begin
        if client <> me then begin
          let (payload : Obj.t) = Machine.recv ctx ~src:client ~tag in
          f.parts.(client) <- Some payload
        end;
        Machine.compute ctx (io_time f.part_bytes.(client));
        Machine.send ctx ~dest:client ~tag ~bytes:4 () (* ack *)
      end
    done;
  let () = Machine.recv ctx ~src:(server_of f me) ~tag in
  f

let read_array ctx (f : file) (a : 'a Darray.t) =
  Darray.check_alive a;
  Machine.charge_skeleton_call ctx;
  if Darray.gsize a <> f.gsize then
    invalid_arg "Par_io.read_array: size mismatch";
  let me = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let tag = Machine.tags ctx 1 in
  (* servers pay the disk transfer and ship each client its partition *)
  if me < f.stripes then
    for client = 0 to p - 1 do
      if server_of f client = me then begin
        Machine.compute ctx (io_time f.part_bytes.(client));
        match f.parts.(client) with
        | Some payload ->
            Machine.send ctx ~dest:client ~tag ~bytes:f.part_bytes.(client)
              payload
        | None -> invalid_arg "Par_io.read_array: file was never written"
      end
    done;
  let (payload : Obj.t) = Machine.recv ctx ~src:(server_of f me) ~tag in
  let (stored : 'a array) = Obj.obj payload in
  let data = (Darray.part a ~rank:me).Darray.data in
  if Array.length stored <> Array.length data then
    invalid_arg "Par_io.read_array: layout mismatch";
  Array.blit stored 0 data 0 (Array.length data)
