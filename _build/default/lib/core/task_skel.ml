type ('p, 's) token = Work of 'p | Idle | Result of 's | No_result

let token_bytes ~problem_bytes ~solution_bytes = function
  | Work p -> 4 + problem_bytes p
  | Result s -> 4 + solution_bytes s
  | Idle | No_result -> 4

let divide_conquer ctx ~problem_bytes ~solution_bytes ~is_trivial ~solve
    ~divide ~combine problem =
  Machine.charge_skeleton_call ctx;
  let self = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let tag = Machine.tags ctx 1 in
  let bytes = token_bytes ~problem_bytes ~solution_bytes in
  let send dest tok = Machine.send ctx ~dest ~tag ~bytes:(bytes tok) tok in
  let rec seq pr =
    if is_trivial pr then solve pr
    else
      let p1, p2 = divide pr in
      combine (seq p1) (seq p2)
  in
  (* All ranks of [lo, hi) participate; the problem (if any) sits on [lo]. *)
  let rec go lo hi my =
    if hi - lo = 1 then Option.map seq my
    else begin
      let mid = (lo + hi + 1) / 2 in
      if self >= mid then begin
        let my' =
          if self = mid then
            match (Machine.recv ctx ~src:lo ~tag : ('p, 's) token) with
            | Work pr -> Some pr
            | Idle -> None
            | Result _ | No_result -> assert false
          else None
        in
        let r = go mid hi my' in
        if self = mid then
          send lo (match r with Some s -> Result s | None -> No_result);
        None
      end
      else begin
        let keep =
          if self = lo then
            match my with
            | Some pr when not (is_trivial pr) ->
                let p1, p2 = divide pr in
                send mid (Work p2);
                Some p1
            | (Some _ | None) as k ->
                send mid Idle;
                k
          else None
        in
        let s1 = go lo mid keep in
        if self <> lo then None
        else
          match ((Machine.recv ctx ~src:mid ~tag : ('p, 's) token), s1) with
          | Result s2, Some s1 -> Some (combine s1 s2)
          | No_result, s1 -> s1
          | Result _, None | (Work _ | Idle), _ -> assert false
      end
    end
  in
  go 0 p (if self = 0 then problem else None)

let farm ctx ~task_bytes ~result_bytes ~worker tasks =
  Machine.charge_skeleton_call ctx;
  let self = Machine.self ctx in
  let p = Machine.nprocs ctx in
  let tag = Machine.tags ctx 2 in
  let task_tag = tag and result_tag = tag + 1 in
  if p = 1 then Option.map (List.map worker) tasks
  else if self = 0 then begin
    let tasks =
      match tasks with
      | Some t -> Array.of_list t
      | None -> invalid_arg "Task_skel.farm: master got no task list"
    in
    let n = Array.length tasks in
    let results = Array.make n None in
    let next = ref 0 in
    let outstanding = ref 0 in
    let dispatch dest =
      if !next < n then begin
        let i = !next in
        incr next;
        incr outstanding;
        Machine.send ctx ~dest ~tag:task_tag
          ~bytes:(4 + task_bytes tasks.(i))
          (Some (i, tasks.(i)))
      end
      else
        Machine.send ctx ~dest ~tag:task_tag ~bytes:4
          (None : (int * 'a) option)
    in
    for w = 1 to p - 1 do
      dispatch w
    done;
    while !outstanding > 0 do
      let src, (i, (res : 'b)) = Machine.recv_any ctx ~tag:result_tag in
      decr outstanding;
      results.(i) <- Some res;
      dispatch src
    done;
    Some
      (Array.to_list
         (Array.map
            (function
              | Some r -> r
              | None -> invalid_arg "Task_skel.farm: missing result")
            results))
  end
  else begin
    let continue_ = ref true in
    while !continue_ do
      match (Machine.recv ctx ~src:0 ~tag:task_tag : (int * 'a) option) with
      | Some (i, task) ->
          let res = worker task in
          Machine.send ctx ~dest:0 ~tag:result_tag
            ~bytes:(4 + result_bytes res)
            (i, res)
      | None -> continue_ := false
    done;
    None
  end
