lib/core/distribution.ml: Array Index List
