lib/core/par_io.ml: Array Calibration Darray Index Machine Obj
