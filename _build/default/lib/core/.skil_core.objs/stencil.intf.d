lib/core/stencil.mli: Darray Index Machine
