lib/core/task_skel.ml: Array List Machine Option
