lib/core/darray.ml: Array Distribution Index
