lib/core/skeletons.mli: Darray Distribution Index Machine
