lib/core/skeletons.ml: Array Calibration Collectives Cost_model Darray Distribution Index List Machine Topology
