lib/core/par_io.mli: Darray Machine
