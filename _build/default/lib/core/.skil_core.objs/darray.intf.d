lib/core/darray.mli: Distribution Index
