lib/core/distribution.mli: Index
