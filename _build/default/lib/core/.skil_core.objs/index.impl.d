lib/core/index.ml: Array Format String
