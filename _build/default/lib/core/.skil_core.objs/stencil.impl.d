lib/core/stencil.ml: Array Cost_model Darray Distribution Index Machine Skeletons
