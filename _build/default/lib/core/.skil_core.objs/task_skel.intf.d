lib/core/task_skel.mli: Machine
