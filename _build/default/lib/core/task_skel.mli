(** Task-parallel skeletons: divide&conquer (the paper's introductory
    example) and a dynamic processor farm.

    Both are collectives over the whole machine.  User functions may charge
    their own work through {!Machine.charge}; the skeletons account for the
    communication. *)

val divide_conquer :
  Machine.ctx ->
  problem_bytes:('p -> int) ->
  solution_bytes:('s -> int) ->
  is_trivial:('p -> bool) ->
  solve:('p -> 's) ->
  divide:('p -> 'p * 'p) ->
  combine:('s -> 's -> 's) ->
  'p option ->
  's option
(** The d&c computation pattern of section 1, distributed by recursive
    bisection of the processor set: at each level the current owner keeps
    the first sub-problem and ships the second to the middle of the other
    half of its processor group; once a group is a single processor the
    remaining recursion runs locally.  The problem is supplied on processor
    0 ([Some p] there, [None] elsewhere) and the solution is returned on
    processor 0. *)

val farm :
  Machine.ctx ->
  task_bytes:('a -> int) ->
  result_bytes:('b -> int) ->
  worker:('a -> 'b) ->
  'a list option ->
  'b list option
(** Master/worker farm with dynamic scheduling: processor 0 hands one task
    at a time to each idle worker (ANY_SOURCE result collection), so uneven
    task costs balance automatically.  Tasks are supplied on processor 0;
    results return on processor 0 in task order.  With a single processor
    the master computes everything itself. *)
