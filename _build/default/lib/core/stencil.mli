(** Overlapping partition borders (ghost cells) — the block-distribution
    extension named in the paper's future work: "it should be possible to
    define overlapping areas for the single partitions, in order to reduce
    communication in operations which require more than one element at a
    time.  Such operations are used for instance in solving partial
    differential equations ... or in image processing."

    Works on 2-D arrays with the row-block ([Default]) distribution. *)

val map_halo :
  Machine.ctx ->
  ?cost:float ->
  radius:int ->
  f:(get:(int -> int -> 'a) -> 'a -> Index.t -> 'a) ->
  'a Darray.t ->
  'a Darray.t ->
  unit
(** [map_halo ctx ~radius ~f src dst]: exchange [radius] boundary rows with
    the neighbouring partitions, then map [f] over the local elements.  [f]
    receives an accessor valid for any element whose row is within [radius]
    of the partition (and inside the global array) plus the current element
    and its index.  [src] and [dst] must be distinct arrays with identical
    layouts.

    Communication: 2 messages per processor per call (one per neighbour),
    regardless of [radius] — the point of overlapping borders versus
    fetching neighbours element-wise. *)

val jacobi_step :
  Machine.ctx -> ?cost:float -> float Darray.t -> float Darray.t -> unit
(** One 4-neighbour Jacobi relaxation step with Dirichlet boundaries (edge
    elements are copied unchanged): the PDE workload the paper's future-work
    section motivates.  Implemented with {!map_halo} ([radius] 1). *)
