(** Multi-dimensional indices, sizes and partition bounds — the [Index],
    [Size] and [Bounds] types of the paper ("classical arrays with dim
    elements"). *)

type t = int array
(** A point in a [dim]-dimensional index space. *)

type size = int array
(** Extents per dimension. *)

type bounds = { lower : t; upper : t }
(** A rectangular region: [lower] inclusive, [upper] exclusive. *)

val equal : t -> t -> bool
val volume : size -> int

val extent : bounds -> size
(** Per-dimension sizes of a bounds rectangle. *)

val contains : bounds -> t -> bool

val row_major : size -> t -> int
(** Row-major offset of an index inside a box of the given size. *)

val local_offset : bounds -> t -> int
(** Row-major offset of a global index within [bounds].
    @raise Invalid_argument if the index lies outside. *)

val iter : bounds -> (t -> unit) -> unit
(** Apply to every index of the region in row-major order.  The index array
    passed to the callback is reused between calls; copy it if kept. *)

val pp : Format.formatter -> t -> unit
val pp_bounds : Format.formatter -> bounds -> unit
