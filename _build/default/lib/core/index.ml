type t = int array
type size = int array
type bounds = { lower : t; upper : t }

let equal (a : t) (b : t) = a = b
let volume (s : size) = Array.fold_left ( * ) 1 s
let extent b = Array.init (Array.length b.lower) (fun d -> b.upper.(d) - b.lower.(d))

let contains b ix =
  let ok = ref (Array.length ix = Array.length b.lower) in
  if !ok then
    for d = 0 to Array.length ix - 1 do
      if ix.(d) < b.lower.(d) || ix.(d) >= b.upper.(d) then ok := false
    done;
  !ok

let row_major (s : size) (ix : t) =
  let off = ref 0 in
  for d = 0 to Array.length s - 1 do
    off := (!off * s.(d)) + ix.(d)
  done;
  !off

let local_offset b ix =
  if not (contains b ix) then
    invalid_arg "Index.local_offset: index outside bounds";
  let off = ref 0 in
  for d = 0 to Array.length ix - 1 do
    off := (!off * (b.upper.(d) - b.lower.(d))) + (ix.(d) - b.lower.(d))
  done;
  !off

let iter b f =
  let dim = Array.length b.lower in
  let ix = Array.copy b.lower in
  let nonempty = ref true in
  for d = 0 to dim - 1 do
    if b.upper.(d) <= b.lower.(d) then nonempty := false
  done;
  if !nonempty then begin
    let continue_ = ref true in
    while !continue_ do
      f ix;
      (* advance odometer, last dimension fastest *)
      let d = ref (dim - 1) in
      let carried = ref true in
      while !carried && !d >= 0 do
        ix.(!d) <- ix.(!d) + 1;
        if ix.(!d) >= b.upper.(!d) then begin
          ix.(!d) <- b.lower.(!d);
          decr d
        end
        else carried := false
      done;
      if !carried then continue_ := false
    done
  end

let pp ppf (ix : t) =
  Format.fprintf ppf "{%s}"
    (String.concat "," (Array.to_list (Array.map string_of_int ix)))

let pp_bounds ppf b =
  Format.fprintf ppf "[%a .. %a)" pp b.lower pp b.upper
