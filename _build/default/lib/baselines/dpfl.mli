(** Model of DPFL, the data-parallel functional language the paper compares
    against (Kuchen/Plasmeijer/Stoltze, PARLE '94).

    DPFL provided the same distributed-array skeletons, so its communication
    structure is identical to Skil's; what differed is the sequential
    execution model — closure-based evaluation with boxed values instead of
    Skil's translation by instantiation.  The paper measures the resulting
    factor at ~6.5x on compute-bound configurations.  We therefore model
    DPFL as: {e the same skeleton programs} run under a cost profile whose
    per-element factors carry the closure/boxing overhead
    ({!Cost_model.dpfl}); this reproduces both the plateau near 6.5 and its
    erosion when communication (identical on both sides) dominates. *)

val profile : Cost_model.profile

val cost : Cost_model.t
(** Transputer parameters with the DPFL profile. *)

val run :
  topology:Topology.t -> (Machine.ctx -> 'r) -> 'r Machine.result
(** Run a skeleton program as its DPFL incarnation. *)
