lib/baselines/parix_c.ml: Array Calibration Collectives Cost_model Float Gauss Machine Shortest_paths Topology
