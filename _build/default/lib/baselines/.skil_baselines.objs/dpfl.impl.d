lib/baselines/dpfl.ml: Cost_model Machine
