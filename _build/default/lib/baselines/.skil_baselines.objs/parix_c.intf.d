lib/baselines/parix_c.mli: Index Machine
