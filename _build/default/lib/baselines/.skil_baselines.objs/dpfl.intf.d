lib/baselines/dpfl.mli: Cost_model Machine Topology
