let profile = Cost_model.dpfl
let cost = Cost_model.make profile
let run ~topology f = Machine.run ~cost ~topology f
