(** Hand-written message-passing comparators ("Parix-C").

    These implement the paper's two applications (and matrix multiplication)
    directly on {!Machine.send}/{!Machine.recv} with tight local loops: no
    skeleton invocations, no per-element calls through functional arguments,
    so sequential work is charged at the [Kernel] rate of the active profile.
    Run them under {!Cost_model.parix_c} for the "equally optimized" C of
    section 5.1, or under {!Cost_model.parix_c_old} (with a
    non-embedding-optimized topology) for the older shortest-paths version
    of Table 1 — the code is the same, the communication semantics differ. *)

val shortest_paths :
  Machine.ctx -> n:int -> weight:(Index.t -> int) -> int array
(** All-pairs distances via min/plus Cannon rotations on a square torus
    grid; returns the calling processor's local block (row-major
    [bs * bs], block position from the grid coordinates). *)

val shortest_paths_global :
  Machine.ctx -> n:int -> weight:(Index.t -> int) -> int array
(** Same, followed by a gather of the full matrix on every processor. *)

val matmul :
  Machine.ctx ->
  n:int ->
  a:(Index.t -> float) ->
  b:(Index.t -> float) ->
  float array
(** Local block of [A * B] (classical arithmetic), Cannon's rotations. *)

val matmul_global :
  Machine.ctx -> n:int -> a:(Index.t -> float) -> b:(Index.t -> float) ->
  float array

val gauss :
  ?pivoting:bool ->
  Machine.ctx ->
  n:int ->
  matrix:(Index.t -> float) ->
  float array
(** Row-block Gauss-Jordan elimination of the [n x (n+1)] system; pivot rows
    travel along a binomial tree.  Returns the solution vector on every
    processor.  [pivoting] (default false, matching the Table 2 variant)
    adds the max-column pivot search and row exchange. *)
