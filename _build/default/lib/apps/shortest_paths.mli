(** All-pairs shortest paths by min/plus matrix powers (paper section 4.1).

    The distance matrix [A] of an n-node graph is raised to the n-th power
    under the (min, +) semiring using [array_gen_mult]; squaring
    ([A, A^2, A^4, ...]) needs only [ceil(log2 n)] generic multiplications.
    The skeleton program is a direct transcription of the paper's [shpaths]
    procedure. *)

val infinity_weight : int
(** The paper's "maximal integer value representing infinity" (scaled down so
    that [inf + weight] cannot overflow OCaml ints). *)

val adjusted_n : n:int -> q:int -> int
(** The paper rounds the node count up to the next multiple of the torus side
    [q] (e.g. 201 for sqrt p = 3). *)

val run : Machine.ctx -> n:int -> weight:(Index.t -> int) -> int Darray.t
(** Execute [shpaths] on the calling machine; the returned array holds the
    all-pairs distances.  Must run on a square processor grid whose side
    divides [n]. *)

val distances : Machine.ctx -> n:int -> weight:(Index.t -> int) -> int array
(** {!run} followed by a gather; row-major distance matrix on every
    processor. *)

val floyd_warshall : n:int -> weight:(Index.t -> int) -> int array
(** Sequential reference implementation (host-level, for tests). *)
