(* splitmix64 finalizer, truncated to 30 non-negative bits so the same
   values arise on any platform *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash2 ~seed a b =
  let z =
    mix
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.add (Int64.mul (Int64.of_int a) 0x2545f4914f6cdd1dL)
            (Int64.of_int b)))
  in
  Int64.to_int (Int64.logand z 0x3fffffffL)

let unit_float ~seed a b =
  float_of_int (hash2 ~seed a b) /. float_of_int 0x40000000

let graph_weight ~seed ~n:_ ~max_weight ix =
  let i = ix.(0) and j = ix.(1) in
  if i = j then 0 else 1 + (hash2 ~seed i j mod max_weight)

let sparse_graph_weight ~seed ~n:_ ~max_weight ~density ~inf ix =
  let i = ix.(0) and j = ix.(1) in
  if i = j then 0
  else if unit_float ~seed:(seed + 77) i j < density then
    1 + (hash2 ~seed i j mod max_weight)
  else inf

let gauss_matrix ~seed ~n ix =
  let i = ix.(0) and j = ix.(1) in
  if j = n then (* right-hand side *) (2.0 *. unit_float ~seed:(seed + 1) i 0) -. 1.0
  else if i = j then (* dominance: |a_ii| > sum of the row *) float_of_int n +. 1.0 +. unit_float ~seed i j
  else (2.0 *. unit_float ~seed i j -. 1.0) /. float_of_int n

let gauss_matrix_wild ~seed ~n ix =
  let i = ix.(0) and j = ix.(1) in
  if j = n then (2.0 *. unit_float ~seed:(seed + 1) i 0) -. 1.0
  else if i = j && i mod 3 = 0 then 0.0 (* forces row exchanges *)
  else (2.0 *. unit_float ~seed i j) -. 1.0

let float_matrix ~seed ix = (2.0 *. unit_float ~seed ix.(0) ix.(1)) -. 1.0
