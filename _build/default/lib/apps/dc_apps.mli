(** The divide&conquer applications the paper's introduction lists as
    immediate instantiations of the d&c skeleton ("polynomial evaluation,
    numerical integration, FFT etc. can be similarly implemented, only by
    using different customizing argument functions").

    All of these run on {!Task_skel.divide_conquer}: the problem enters on
    processor 0 and the result returns there ([None] elsewhere). *)

val integrate :
  Machine.ctx ->
  ?levels:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float option
(** Composite Simpson integration: the interval is bisected [levels] times
    (default 10) by the d&c skeleton, leaves are Simpson panels, combine is
    addition. *)

val poly_eval :
  Machine.ctx -> coeffs:float array -> x:float -> float option
(** Evaluate [c0 + c1 x + ... + cn x^n] by splitting the coefficient vector:
    [p(x) = p_lo(x) + x^(len lo) * p_hi(x)].  The combine function carries
    the power of x alongside the value, so it stays a proper monoid. *)

val fft :
  Machine.ctx -> (float * float) array -> (float * float) array option
(** Radix-2 decimation-in-time FFT as d&c: divide into even/odd index
    subsequences, combine with twiddle factors.  Input length must be a
    power of two. *)

val dft_reference : (float * float) array -> (float * float) array
(** Naive O(n^2) DFT (host-level, for tests). *)
