let run ctx ~n ~a ~b =
  let create init =
    Skeletons.create ctx ~cost:Calibration.fold_conv_op ~gsize:[| n; n |]
      ~distr:Darray.Torus2d init
  in
  let da = create a in
  let db = create b in
  let dc = create (fun _ -> 0.0) in
  Skeletons.gen_mult ctx ~cost:Calibration.float_madd_op ~add:( +. )
    ~mul:( *. ) da db dc;
  Skeletons.destroy ctx da;
  Skeletons.destroy ctx db;
  dc

let product ctx ~n ~a ~b =
  let dc = run ctx ~n ~a ~b in
  let flat = Skeletons.to_flat ctx dc in
  Skeletons.destroy ctx dc;
  flat

let reference ~n ~a ~b =
  let av = Array.init (n * n) (fun off -> a [| off / n; off mod n |]) in
  let bv = Array.init (n * n) (fun off -> b [| off / n; off mod n |]) in
  let c = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = av.((i * n) + k) in
      for j = 0 to n - 1 do
        c.((i * n) + j) <- c.((i * n) + j) +. (aik *. bv.((k * n) + j))
      done
    done
  done;
  c
