(** Classical dense matrix multiplication via [array_gen_mult] with the
    actual addition and multiplication — the "equally optimized" comparison
    of paper section 5.1. *)

val run :
  Machine.ctx ->
  n:int ->
  a:(Index.t -> float) ->
  b:(Index.t -> float) ->
  float Darray.t
(** [C = A * B] on a square torus grid whose side divides [n]. *)

val product : Machine.ctx -> n:int -> a:(Index.t -> float) ->
  b:(Index.t -> float) -> float array
(** {!run} followed by a gather. *)

val reference : n:int -> a:(Index.t -> float) -> b:(Index.t -> float) ->
  float array
(** Sequential triple loop (host-level, for tests). *)
