type result = {
  iterations : int;
  final_delta : float;
  field : float Darray.t;
}

let is_boundary ~n ~m ix =
  ix.(0) = 0 || ix.(1) = 0 || ix.(0) = n - 1 || ix.(1) = m - 1

let solve ctx ?(tol = 1e-4) ?(max_iters = 10_000) ~n ~m ~boundary () =
  let init ix = if is_boundary ~n ~m ix then boundary ix else 0.0 in
  let mk g =
    Skeletons.create ctx ~cost:Calibration.fold_conv_op ~gsize:[| n; m |]
      ~distr:Darray.Default g
  in
  let a = mk init in
  let b = mk init in
  let cur = ref a and nxt = ref b in
  let iterations = ref 0 in
  let delta = ref infinity in
  while !delta > tol && !iterations < max_iters do
    (* one relaxation sweep with a single halo exchange *)
    let f ~get v ix =
      if is_boundary ~n ~m ix then v
      else
        0.25
        *. (get (ix.(0) - 1) ix.(1)
            +. get (ix.(0) + 1) ix.(1)
            +. get ix.(0) (ix.(1) - 1)
            +. get ix.(0) (ix.(1) + 1))
    in
    Stencil.map_halo ctx ~cost:Calibration.gauss_elem_op ~radius:1 ~f !cur
      !nxt;
    (* convergence: the largest pointwise change, known on every processor
       after the fold's tree reduction + broadcast *)
    let old = !cur in
    delta :=
      Skeletons.fold ctx ~cost:Calibration.fold_conv_op
        ~conv:(fun v ix ->
          Float.abs (v -. Skeletons.get_elem ctx old ix))
        Float.max !nxt;
    incr iterations;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  Skeletons.destroy ctx !nxt;
  { iterations = !iterations; final_delta = !delta; field = !cur }

let reference ?(tol = 1e-4) ?(max_iters = 10_000) ~n ~m ~boundary () =
  let init off =
    let ix = [| off / m; off mod m |] in
    if is_boundary ~n ~m ix then boundary ix else 0.0
  in
  let cur = ref (Array.init (n * m) init) in
  let nxt = ref (Array.init (n * m) init) in
  let iterations = ref 0 in
  let delta = ref infinity in
  while !delta > tol && !iterations < max_iters do
    delta := 0.0;
    for r = 1 to n - 2 do
      for c = 1 to m - 2 do
        let v =
          0.25
          *. (!cur.(((r - 1) * m) + c)
              +. !cur.(((r + 1) * m) + c)
              +. !cur.((r * m) + c - 1)
              +. !cur.((r * m) + c + 1))
        in
        !nxt.((r * m) + c) <- v;
        delta := Float.max !delta (Float.abs (v -. !cur.((r * m) + c)))
      done
    done;
    incr iterations;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  (!cur, !iterations)
