(** Deterministic synthetic workloads.

    The paper does not publish its input graphs/matrices, so inputs are
    generated from a splitmix-style hash of (seed, index): every processor
    can evaluate the same pure [Index.t -> value] initializer locally, which
    is exactly how [array_create]'s [init_elem] argument is meant to be used. *)

val hash2 : seed:int -> int -> int -> int
(** 30-bit non-negative hash of two integers. *)

val graph_weight : seed:int -> n:int -> max_weight:int -> Index.t -> int
(** Distance-matrix entry for a complete directed graph with weights in
    [1 .. max_weight] and zero diagonal. *)

val sparse_graph_weight :
  seed:int -> n:int -> max_weight:int -> density:float -> inf:int ->
  Index.t -> int
(** Like {!graph_weight} but each off-diagonal edge is present with
    probability [density]; absent edges get [inf]. *)

val gauss_matrix : seed:int -> n:int -> Index.t -> float
(** Entry of the extended [n x (n+1)] system [A|b]: a diagonally dominant
    matrix (so the no-pivot-search variant of the paper's Section 5.2 is
    numerically safe) with right-hand side in column [n]. *)

val gauss_matrix_wild : seed:int -> n:int -> Index.t -> float
(** A system that genuinely needs partial pivoting: no dominance, and some
    (near-)zero diagonal entries. *)

val float_matrix : seed:int -> Index.t -> float
(** Generic dense float matrix entry in [-1, 1). *)
