(** Steady-state heat conduction on a rectangular plate — the partial
    differential equation workload the paper's future-work section motivates
    the overlapping-border (ghost cell) extension with.

    Jacobi relaxation with Dirichlet boundaries: interior points move toward
    the average of their four neighbours until the largest update falls
    below a tolerance.  Each sweep costs one halo exchange per neighbour
    pair ({!Stencil.map_halo}) plus one [array_fold] for the convergence
    test. *)

type result = {
  iterations : int;
  final_delta : float;  (** max |update| of the last sweep *)
  field : float Darray.t;  (** the converged temperature field *)
}

val solve :
  Machine.ctx ->
  ?tol:float ->
  ?max_iters:int ->
  n:int ->
  m:int ->
  boundary:(Index.t -> float) ->
  unit ->
  result
(** Relax an [n x m] plate whose boundary (and initial interior guess of 0)
    comes from [boundary].  Row-block distribution over all processors;
    requires at least one interior row per processor. *)

val reference : ?tol:float -> ?max_iters:int -> n:int -> m:int ->
  boundary:(Index.t -> float) -> unit -> float array * int
(** Sequential solver (host-level, for tests): the field and the iteration
    count. *)
