lib/apps/shortest_paths.ml: Array Calibration Darray Skeletons
