lib/apps/heat.mli: Darray Index Machine
