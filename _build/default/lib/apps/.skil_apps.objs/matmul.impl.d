lib/apps/matmul.ml: Array Calibration Darray Skeletons
