lib/apps/shortest_paths.mli: Darray Index Machine
