lib/apps/gauss.ml: Array Calibration Darray Float Index Machine Skeletons
