lib/apps/matmul.mli: Darray Index Machine
