lib/apps/workload.ml: Array Int64
