lib/apps/gauss.mli: Darray Index Machine
