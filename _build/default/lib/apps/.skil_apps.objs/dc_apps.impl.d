lib/apps/dc_apps.ml: Array Calibration Cost_model Float Machine Option Task_skel
