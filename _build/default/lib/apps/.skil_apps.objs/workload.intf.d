lib/apps/workload.mli: Index
