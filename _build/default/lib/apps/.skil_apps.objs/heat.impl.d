lib/apps/heat.ml: Array Calibration Darray Float Skeletons Stencil
