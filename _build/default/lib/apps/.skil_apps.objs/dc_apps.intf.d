lib/apps/dc_apps.mli: Machine
