let infinity_weight = max_int / 4

let adjusted_n ~n ~q = if n mod q = 0 then n else ((n / q) + 1) * q

let log2_ceil n =
  let rec go k pow = if pow >= n then k else go (k + 1) (2 * pow) in
  go 0 1

(* The paper's shpaths procedure, transcribed: arrays a (distances), b (copy
   of a) and c (accumulator, initialized to "infinity"), then log2 n rounds
   of  copy a b;  c := min/plus product of a and b;  copy c a. *)
let run ctx ~n ~weight =
  let gsize = [| n; n |] in
  let create init =
    Skeletons.create ctx ~cost:Calibration.fold_conv_op ~gsize
      ~distr:Darray.Torus2d init
  in
  let a = create weight in
  let b = create (fun _ -> 0) in
  let c = create (fun _ -> infinity_weight) in
  let saturating_add x y =
    let s = x + y in
    if s > infinity_weight then infinity_weight else s
  in
  for _ = 1 to log2_ceil n do
    Skeletons.copy ctx a b;
    Skeletons.gen_mult ctx ~cost:Calibration.minplus_op ~add:min
      ~mul:saturating_add a b c;
    Skeletons.copy ctx c a
  done;
  Skeletons.destroy ctx b;
  Skeletons.destroy ctx c;
  a

let distances ctx ~n ~weight =
  let a = run ctx ~n ~weight in
  let flat = Skeletons.to_flat ctx a in
  Skeletons.destroy ctx a;
  flat

let floyd_warshall ~n ~weight =
  let d = Array.init (n * n) (fun off -> weight [| off / n; off mod n |]) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.((i * n) + k) in
      if dik < infinity_weight then
        for j = 0 to n - 1 do
          let through = dik + d.((k * n) + j) in
          if through < d.((i * n) + j) then d.((i * n) + j) <- through
        done
    done
  done;
  d
