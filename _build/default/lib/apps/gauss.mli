(** Gaussian elimination on the extended matrix [A|b] (paper section 4.2).

    Two variants, as in the paper's evaluation:
    - [No_pivot_search]: the "first version ... without the search and the
      exchange of the pivot row" benchmarked in Table 2;
    - [Partial]: the complete program with [array_fold] pivot search and
      [array_permute_rows] row exchange (about twice as slow, Section 5.2). *)

type pivoting = No_pivot_search | Partial

exception Singular
(** The paper's ["Matrix is singular"] run-time error. *)

type elemrec = { value : float; row : int; col : int }
(** The paper's [elemrec] struct used by the pivot-search fold. *)

val elemrec_bytes : int

val run :
  ?pivoting:pivoting ->
  Machine.ctx ->
  n:int ->
  matrix:(Index.t -> float) ->
  float Darray.t
(** Solve the [n x (n+1)] system whose entries come from [matrix] (column
    [n] is the right-hand side).  The result array's column [n] holds the
    solution vector x.  Row-block distribution over all processors; requires
    [n >= nprocs]. *)

val solve : ?pivoting:pivoting -> Machine.ctx -> n:int ->
  matrix:(Index.t -> float) -> float array
(** {!run} and extract the solution vector (gathered on every processor). *)

val reference_solve : n:int -> matrix:(Index.t -> float) -> float array
(** Sequential Gaussian elimination with partial pivoting (host-level, for
    tests).  @raise Singular on singular systems. *)

val residual : n:int -> matrix:(Index.t -> float) -> float array -> float
(** Max-norm of [A x - b]; a direct quality measure for tests. *)
