let integrate ctx ?(levels = 10) ~f ~lo ~hi () =
  (* problem: an interval plus its remaining bisection budget *)
  let simpson (a, b, _) =
    Machine.charge ctx Cost_model.Scalar ~ops:3 ~base:Calibration.fold_conv_op;
    let m = 0.5 *. (a +. b) in
    (b -. a) /. 6.0 *. (f a +. (4.0 *. f m) +. f b)
  in
  Task_skel.divide_conquer ctx
    ~problem_bytes:(fun _ -> 20)
    ~solution_bytes:(fun _ -> 8)
    ~is_trivial:(fun (_, _, budget) -> budget = 0)
    ~solve:simpson
    ~divide:(fun (a, b, budget) ->
      let m = 0.5 *. (a +. b) in
      ((a, m, budget - 1), (m, b, budget - 1)))
    ~combine:( +. )
    (if Machine.self ctx = 0 then Some (lo, hi, max 0 levels) else None)

let poly_eval ctx ~coeffs ~x =
  (* solution: (value of the sub-polynomial at x, x^(number of coeffs)) *)
  let solve cs =
    Machine.charge ctx Cost_model.Scalar
      ~ops:(Array.length cs)
      ~base:Calibration.fold_conv_op;
    let v = ref 0.0 and p = ref 1.0 in
    Array.iter
      (fun c ->
        v := !v +. (c *. !p);
        p := !p *. x)
      cs;
    (!v, !p)
  in
  let result =
    Task_skel.divide_conquer ctx
      ~problem_bytes:(fun cs -> 8 * Array.length cs)
      ~solution_bytes:(fun _ -> 16)
      ~is_trivial:(fun cs -> Array.length cs <= 2)
      ~solve
      ~divide:(fun cs ->
        let k = Array.length cs / 2 in
        (Array.sub cs 0 k, Array.sub cs k (Array.length cs - k)))
      ~combine:(fun (v1, p1) (v2, p2) -> (v1 +. (p1 *. v2), p1 *. p2))
      (if Machine.self ctx = 0 then Some coeffs else None)
  in
  Option.map fst result

let cmul (ar, ai) (br, bi) = ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))
let cadd (ar, ai) (br, bi) = (ar +. br, ai +. bi)
let csub (ar, ai) (br, bi) = (ar -. br, ai -. bi)

let twiddle k n =
  let angle = -2.0 *. Float.pi *. float_of_int k /. float_of_int n in
  (cos angle, sin angle)

let fft ctx signal =
  let n = Array.length signal in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Dc_apps.fft: length must be a power of two";
  let combine evens odds =
    let m = Array.length evens in
    let out = Array.make (2 * m) (0.0, 0.0) in
    for k = 0 to m - 1 do
      let t = cmul (twiddle k (2 * m)) odds.(k) in
      out.(k) <- cadd evens.(k) t;
      out.(k + m) <- csub evens.(k) t
    done;
    Machine.charge ctx Cost_model.Scalar ~ops:(2 * m)
      ~base:Calibration.float_madd_op;
    out
  in
  Task_skel.divide_conquer ctx
    ~problem_bytes:(fun a -> 16 * Array.length a)
    ~solution_bytes:(fun a -> 16 * Array.length a)
    ~is_trivial:(fun a -> Array.length a <= 1)
    ~solve:(fun a -> a)
    ~divide:(fun a ->
      let m = Array.length a / 2 in
      ( Array.init m (fun i -> a.(2 * i)),
        Array.init m (fun i -> a.((2 * i) + 1)) ))
    ~combine
    (if Machine.self ctx = 0 then Some signal else None)

let dft_reference signal =
  let n = Array.length signal in
  Array.init n (fun k ->
      let acc = ref (0.0, 0.0) in
      for j = 0 to n - 1 do
        acc := cadd !acc (cmul signal.(j) (twiddle (k * j) n))
      done;
      !acc)
