(** Recursive-descent parser for the Skil surface syntax. *)

exception Error of { line : int; col : int; message : string }

val parse : string -> Ast.program
(** Parse a full compilation unit.
    @raise Error (or {!Lexer.Error}) on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (tests and the REPL-ish tooling). *)

val tyvars_of : string list -> Ast.typ -> string list
(** Append the $-variables free in a type, in order of first appearance
    (used to infer implicit type-parameter lists). *)
