exception Unsupported of { line : int; message : string }

let unsupported line fmt =
  Printf.ksprintf (fun message -> raise (Unsupported { line; message })) fmt

type target = User of string | Builtin of string | Op of string

(* How a functional argument is passed: a direct target plus the data
   arguments captured by partial application (already rewritten; they are
   evaluated at the call site and lifted into parameters of the enclosing
   specialization). *)
type fdesc = {
  d_target : target;
  d_lifted : Ast.expr list;
  d_lifted_types : Ast.typ list;
}

(* A functional parameter of the function being specialized, bound to a
   concrete target; the lifted values are available in the lift parameters
   (names paired with their concrete types, needed when the parameter is
   passed along to another HOF). *)
type bound = { b_target : target; b_lifts : (string * Ast.typ) list }

type st = {
  env : Typecheck.env;
  originals : (string, Ast.func) Hashtbl.t;
  specs : (string, string) Hashtbl.t; (* key -> generated name *)
  mutable out : Ast.func list;
  counters : (string, int) Hashtbl.t;
}

(* ---------------- types ---------------- *)

let rec subst_type s t =
  match t with
  | Ast.TVar v -> (
      match List.assoc_opt v s with Some t' -> t' | None -> t)
  | Ast.TPtr t -> Ast.TPtr (subst_type s t)
  | Ast.TNamed (n, args) -> Ast.TNamed (n, List.map (subst_type s) args)
  | Ast.TFun (args, ret) ->
      Ast.TFun (List.map (subst_type s) args, subst_type s ret)
  | Ast.TMeta { contents = Ast.Link t } -> subst_type s t
  | Ast.TMeta { contents = Ast.Unbound _ } ->
      (* ambiguous instantiation, e.g. an unused polymorphic result; C
         defaults such things to int and so do we *)
      Ast.TInt
  | ( Ast.TInt | Ast.TFloat | Ast.TChar | Ast.TVoid | Ast.TString
    | Ast.TIndex | Ast.TBounds ) as t ->
      t

let rec ground line t =
  match t with
  | Ast.TVar v -> unsupported line "unresolved type variable $%s" v
  | Ast.TPtr t -> ignore (ground line t)
  | Ast.TNamed (_, args) -> List.iter (fun t -> ignore (ground line t)) args
  | Ast.TFun (args, ret) ->
      List.iter (fun t -> ignore (ground line t)) args;
      ignore (ground line ret)
  | _ -> ()

let is_fun_type env t =
  match Typecheck.expand env t with Ast.TFun _ -> true | _ -> false

(* ---------------- naming and keys ---------------- *)

let render_target = function
  | User n -> "u:" ^ n
  | Builtin n -> "b:" ^ n
  | Op op -> "o:" ^ op

let render_fdesc d =
  Printf.sprintf "%s[%s]" (render_target d.d_target)
    (String.concat "," (List.map Ast.type_to_string d.d_lifted_types))

let spec_key g tyinst fargs =
  Printf.sprintf "%s<%s>(%s)" g
    (String.concat "," (List.map Ast.type_to_string tyinst))
    (String.concat ";" (List.map render_fdesc fargs))

let fresh_name st g =
  let k = (match Hashtbl.find_opt st.counters g with Some k -> k | None -> 0) + 1 in
  Hashtbl.replace st.counters g k;
  Printf.sprintf "%s_%d" g k

(* ---------------- instantiation of function instances ---------------- *)

let mk = Ast.mk

let rec ensure_spec st line g ~tyinst ~fargs =
  let fn =
    match Hashtbl.find_opt st.originals g with
    | Some fn -> fn
    | None -> unsupported line "no definition for function %s" g
  in
  let sch =
    match Typecheck.function_scheme st.env g with
    | Some sch -> sch
    | None -> unsupported line "unknown function %s" g
  in
  let tyinst_types =
    List.map
      (fun v ->
        match List.assoc_opt v tyinst with
        | Some t -> t
        | None -> Ast.TInt (* unused type variable: default as C would *))
      sch.Typecheck.sch_vars
  in
  List.iter (ground line) tyinst_types;
  let key = spec_key g tyinst_types fargs in
  match Hashtbl.find_opt st.specs key with
  | Some name -> name
  | None ->
      let trivial =
        tyinst_types = [] && fargs = []
        && not (List.exists (is_fun_type st.env) sch.Typecheck.sch_params)
      in
      let name = if trivial then g else fresh_name st g in
      Hashtbl.replace st.specs key name;
      let s = List.combine sch.Typecheck.sch_vars tyinst_types in
      (* build the specialized parameter list and the bindings *)
      let fargs_left = ref fargs in
      let params = ref [] in
      let bindings = ref [] in
      List.iter
        (fun p ->
          if is_fun_type st.env p.Ast.p_type then begin
            match !fargs_left with
            | [] ->
                unsupported line
                  "functional parameter %s of %s is not supplied at this \
                   call pattern"
                  p.Ast.p_name g
            | d :: rest ->
                fargs_left := rest;
                let lifts =
                  List.mapi
                    (fun i t -> (Printf.sprintf "%s_lift%d" p.Ast.p_name i, t))
                    d.d_lifted_types
                in
                List.iter
                  (fun (n, t) ->
                    params := { Ast.p_type = t; p_name = n } :: !params)
                  lifts;
                bindings :=
                  (p.Ast.p_name, { b_target = d.d_target; b_lifts = lifts })
                  :: !bindings
          end
          else
            params :=
              { Ast.p_type = subst_type s p.Ast.p_type;
                p_name = p.Ast.p_name }
              :: !params)
        fn.Ast.f_params;
      if !fargs_left <> [] then
        unsupported line "too many functional arguments for %s" g;
      let params = List.rev !params in
      let bindings = !bindings in
      let body =
        match fn.Ast.f_body with
        | None -> unsupported line "%s has no body to instantiate" g
        | Some body ->
            List.map
              (fun stmt ->
                Ast.map_stmt_types (subst_type s)
                  (rewrite_stmt st s bindings stmt))
              body
      in
      st.out <-
        {
          Ast.f_ret = subst_type s fn.Ast.f_ret;
          f_name = name;
          f_params = params;
          f_body = Some body;
        }
        :: st.out;
      name

(* ---------------- rewriting ---------------- *)

(* Flatten curried application chains: ((f a) b) -> f [a; b]. *)
and flatten_call f args =
  match f.Ast.desc with
  | Ast.Call (g, inner) -> flatten_call g (inner @ args)
  | _ -> (f, args)

and tyinst_of _st s (e : Ast.expr) =
  List.map (fun (v, t) -> (v, subst_type s t)) e.Ast.inst

(* Analyze an expression in functional-argument position into an fdesc. *)
and analyze st s bindings (e : Ast.expr) : fdesc =
  let line = e.Ast.line in
  match e.Ast.desc with
  | Ast.Var p when List.mem_assoc p bindings ->
      (* a functional parameter passed along: its lifted values travel as
         references to this specialization's lift parameters *)
      let b = List.assoc p bindings in
      {
        d_target = b.b_target;
        d_lifted = List.map (fun (n, _) -> mk ~line (Ast.Var n)) b.b_lifts;
        d_lifted_types = List.map snd b.b_lifts;
      }
  | Ast.Var g -> (
      match Typecheck.function_scheme st.env g with
      | None -> unsupported line "functional argument %s is not a function" g
      | Some sch ->
          if List.exists (is_fun_type st.env) sch.Typecheck.sch_params then
            unsupported line
              "higher-order function %s passed without its functional \
               arguments"
              g;
          if Hashtbl.mem st.originals g then
            let name =
              ensure_spec st line g ~tyinst:(tyinst_of st s e) ~fargs:[]
            in
            { d_target = User name; d_lifted = []; d_lifted_types = [] }
          else { d_target = Builtin g; d_lifted = []; d_lifted_types = [] })
  | Ast.OpSection op -> { d_target = Op op; d_lifted = []; d_lifted_types = [] }
  | Ast.Call (f, args) -> (
      let head, args = flatten_call f args in
      match head.Ast.desc with
      | Ast.OpSection op ->
          let t =
            match head.Ast.inst with
            | (_, t) :: _ -> subst_type s t
            | [] -> Ast.TInt
          in
          {
            d_target = Op op;
            d_lifted = List.map (rewrite st s bindings) args;
            d_lifted_types = List.map (fun _ -> t) args;
          }
      | Ast.Var p when List.mem_assoc p bindings ->
          (* further partial application of an already-bound functional
             parameter: prior lifts keep their recorded types; the extra
             data arguments' types come from the target's remaining
             signature when it is a user/builtin function, or stay opaque
             for operators (where the operand type is uniform anyway) *)
          let b = List.assoc p bindings in
          let prior = List.map (fun (n, _) -> mk ~line (Ast.Var n)) b.b_lifts in
          let prior_types = List.map snd b.b_lifts in
          let extra_types =
            match b.b_target with
            | Op _ -> (
                match prior_types with
                | t :: _ -> List.map (fun _ -> t) args
                | [] -> List.map (fun _ -> Ast.TInt) args)
            | User tname | Builtin tname -> (
                match Typecheck.function_scheme st.env tname with
                | Some sch ->
                    let nprior = List.length prior in
                    List.mapi
                      (fun i _ ->
                        match List.nth_opt sch.Typecheck.sch_params (nprior + i) with
                        | Some t -> subst_type s t
                        | None -> Ast.TInt)
                      args
                | None -> List.map (fun _ -> Ast.TInt) args)
          in
          {
            d_target = b.b_target;
            d_lifted = prior @ List.map (rewrite st s bindings) args;
            d_lifted_types = prior_types @ extra_types;
          }
      | Ast.Var g -> (
          match Typecheck.function_scheme st.env g with
          | None -> unsupported line "%s is not a function" g
          | Some sch ->
              let tyinst = tyinst_of st s head in
              let sub =
                List.combine sch.Typecheck.sch_vars
                  (List.map
                     (fun v ->
                       match List.assoc_opt v tyinst with
                       | Some t -> t
                       | None -> Ast.TInt)
                     sch.Typecheck.sch_vars)
              in
              let nsupplied = List.length args in
              let supplied_params =
                List.filteri (fun i _ -> i < nsupplied) sch.Typecheck.sch_params
              in
              if List.length supplied_params < nsupplied then
                unsupported line "over-application in functional argument";
              let fargs = ref [] and lifted = ref [] and ltypes = ref [] in
              List.iter2
                (fun pt arg ->
                  if is_fun_type st.env pt then
                    fargs := analyze st s bindings arg :: !fargs
                  else begin
                    lifted := rewrite st s bindings arg :: !lifted;
                    ltypes := subst_type sub (subst_type s pt) :: !ltypes
                  end)
                supplied_params args;
              let fargs = List.rev !fargs in
              let lifted = List.rev !lifted in
              let ltypes = List.rev !ltypes in
              List.iter (ground line) ltypes;
              if Hashtbl.mem st.originals g then
                let name = ensure_spec st line g ~tyinst ~fargs in
                { d_target = User name; d_lifted = lifted;
                  d_lifted_types = ltypes }
              else begin
                if fargs <> [] then
                  unsupported line
                    "builtin %s partially applied to functional arguments" g;
                { d_target = Builtin g; d_lifted = lifted;
                  d_lifted_types = ltypes }
              end)
      | _ ->
          unsupported line
            "functional argument too complex for instantiation")
  | _ -> unsupported line "functional argument too complex for instantiation"

(* Rebuild an fdesc as a residual expression (functional argument of a
   builtin skeleton: a direct reference to a first-order function). *)
and rebuild line d =
  match (d.d_target, d.d_lifted) with
  | Op op, [] -> mk ~line (Ast.OpSection op)
  | Op op, lifted -> mk ~line (Ast.Call (mk ~line (Ast.OpSection op), lifted))
  | User n, [] | Builtin n, [] -> mk ~line (Ast.Var n)
  | User n, lifted | Builtin n, lifted ->
      mk ~line (Ast.Call (mk ~line (Ast.Var n), lifted))

and rewrite st s bindings (e : Ast.expr) : Ast.expr =
  let line = e.Ast.line in
  let re = rewrite st s bindings in
  match e.Ast.desc with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Chr _ -> e
  | Ast.OpSection _ ->
      unsupported line "operator section outside a functional position"
  | Ast.Var p when List.mem_assoc p bindings ->
      unsupported line
        "functional parameter %s used outside a call or argument position" p
  | Ast.Var g when Hashtbl.mem st.originals g ->
      (* direct reference to a user function in data position: only valid if
         it is monomorphic and first-order; give it its trivial instance *)
      let name = ensure_spec st line g ~tyinst:(tyinst_of st s e) ~fargs:[] in
      mk ~line (Ast.Var name)
  | Ast.Var _ -> e
  | Ast.Call (f, args) -> rewrite_call st s bindings line f args
  | Ast.Binop (op, a, b) -> mk ~line (Ast.Binop (op, re a, re b))
  | Ast.Unop (op, a) -> mk ~line (Ast.Unop (op, re a))
  | Ast.Assign (l, r) -> mk ~line (Ast.Assign (re l, re r))
  | Ast.Idx (a, i) -> mk ~line (Ast.Idx (re a, re i))
  | Ast.Field (a, f) -> mk ~line (Ast.Field (re a, f))
  | Ast.Arrow (a, f) -> mk ~line (Ast.Arrow (re a, f))
  | Ast.Deref a -> mk ~line (Ast.Deref (re a))
  | Ast.ArrayLit es -> mk ~line (Ast.ArrayLit (List.map re es))
  | Ast.Cond (a, b, c) -> mk ~line (Ast.Cond (re a, re b, re c))
  | Ast.New a -> mk ~line (Ast.New (re a))

and rewrite_call st s bindings line f args =
  let head, args = flatten_call f args in
  match head.Ast.desc with
  | Ast.OpSection op -> (
      match List.map (rewrite st s bindings) args with
      | [ a; b ] -> mk ~line (Ast.Binop (op, a, b))
      | _ ->
          unsupported line
            "partially applied operator outside a functional position")
  | Ast.Var p when List.mem_assoc p bindings -> (
      let b = List.assoc p bindings in
      let lift = List.map (fun (n, _) -> mk ~line (Ast.Var n)) b.b_lifts in
      let full = lift @ List.map (rewrite st s bindings) args in
      match b.b_target with
      | Op op -> (
          match full with
          | [ x; y ] -> mk ~line (Ast.Binop (op, x, y))
          | _ ->
              unsupported line
                "operator-valued parameter %s applied to %d arguments" p
                (List.length full))
      | User n | Builtin n ->
          mk ~line (Ast.Call (mk ~line (Ast.Var n), full)))
  | Ast.Var g -> (
      match Typecheck.function_scheme st.env g with
      | None ->
          (* calling a local variable: not supported after instantiation *)
          unsupported line "call through variable %s is not first-order" g
      | Some sch ->
          let params = sch.Typecheck.sch_params in
          if List.length args < List.length params then
            unsupported line
              "partial application of %s outside a functional position" g;
          if List.length args > List.length params then
            unsupported line "over-application of %s" g;
          let has_funargs = List.exists (is_fun_type st.env) params in
          if Hashtbl.mem st.originals g then begin
            let tyinst = tyinst_of st s head in
            if has_funargs then begin
              let fargs = ref [] in
              let out_args = ref [] in
              List.iter2
                (fun pt arg ->
                  if is_fun_type st.env pt then begin
                    let d = analyze st s bindings arg in
                    fargs := d :: !fargs;
                    (* accumulator is in reverse order *)
                    out_args := List.rev_append d.d_lifted !out_args
                  end
                  else out_args := rewrite st s bindings arg :: !out_args)
                params args;
              let name =
                ensure_spec st line g ~tyinst ~fargs:(List.rev !fargs)
              in
              mk ~line (Ast.Call (mk ~line (Ast.Var name), List.rev !out_args))
            end
            else begin
              let name = ensure_spec st line g ~tyinst ~fargs:[] in
              mk ~line
                (Ast.Call
                   ( mk ~line (Ast.Var name),
                     List.map (rewrite st s bindings) args ))
            end
          end
          else
            (* builtin: keep the call, reduce functional arguments to direct
               first-order references *)
            let out_args =
              List.map2
                (fun pt arg ->
                  if is_fun_type st.env pt then
                    rebuild line (analyze st s bindings arg)
                  else rewrite st s bindings arg)
                params args
            in
            mk ~line (Ast.Call (mk ~line (Ast.Var g), out_args)))
  | _ -> unsupported line "computed function calls are not supported"

and rewrite_stmt st s bindings stmt =
  let re = rewrite st s bindings in
  match stmt with
  | Ast.SExpr e -> Ast.SExpr (re e)
  | Ast.SDecl (t, n, init) -> Ast.SDecl (t, n, Option.map re init)
  | Ast.SIf (c, a, b) ->
      Ast.SIf
        ( re c,
          List.map (rewrite_stmt st s bindings) a,
          List.map (rewrite_stmt st s bindings) b )
  | Ast.SWhile (c, b) ->
      Ast.SWhile (re c, List.map (rewrite_stmt st s bindings) b)
  | Ast.SFor (i, c, stp, b) ->
      Ast.SFor
        ( Option.map (rewrite_stmt st s bindings) i,
          Option.map re c,
          Option.map re stp,
          List.map (rewrite_stmt st s bindings) b )
  | Ast.SReturn e -> Ast.SReturn (Option.map re e)
  | Ast.SBreak -> Ast.SBreak
  | Ast.SContinue -> Ast.SContinue
  | Ast.SBlock b -> Ast.SBlock (List.map (rewrite_stmt st s bindings) b)

(* ---------------- entry point ---------------- *)

let program env prog ~entries =
  let originals = Hashtbl.create 32 in
  List.iter
    (function
      | Ast.TFunc f when f.Ast.f_body <> None ->
          Hashtbl.replace originals f.Ast.f_name f
      | _ -> ())
    prog;
  let st =
    { env; originals; specs = Hashtbl.create 32; out = [];
      counters = Hashtbl.create 16 }
  in
  List.iter
    (fun entry ->
      if not (Hashtbl.mem originals entry) then
        unsupported 0 "entry function %s not found" entry;
      ignore (ensure_spec st 0 entry ~tyinst:[] ~fargs:[]))
    entries;
  let others =
    List.filter (function Ast.TFunc _ -> false | _ -> true) prog
  in
  others @ List.rev_map (fun f -> Ast.TFunc f) st.out

let is_first_order prog =
  let ok_type t =
    Parser.tyvars_of [] t = []
    && (match t with Ast.TFun _ -> false | _ -> true)
  in
  List.for_all
    (function
      | Ast.TFunc f ->
          ok_type f.Ast.f_ret
          && List.for_all (fun p -> ok_type p.Ast.p_type) f.Ast.f_params
      | _ -> true)
    prog
