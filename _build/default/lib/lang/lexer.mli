(** Hand-written lexer for the Skil surface syntax. *)

exception Error of { line : int; col : int; message : string }

val tokenize : string -> Token.located list
(** Turn a source string into tokens ending with [EOF].  Comments are
    [/* ... */] and [// ...].  Operator sections like [(+)] and [(<=)] are
    recognized as single tokens (whitespace between the parentheses and the
    operator is allowed).
    @raise Error on malformed input. *)
