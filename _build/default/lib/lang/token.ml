(* Tokens of the Skil surface language: a C subset extended with type
   variables ($t), angle-bracket type arguments, pardata declarations and
   operator sections. *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string
  | CHAR of char
  | IDENT of string
  | TYVAR of string (* $t *)
  | KW of string (* if, else, while, for, return, struct, typedef, pardata,
                    int, float, char, void, break, continue, new *)
  | PUNCT of string (* ( ) { } [ ] ; , . -> < > = == != <= >= + - * / % && ||
                       ! & ? : ++ -- *)
  | OPSECTION of string (* "(+)" lexed as a single token *)
  | EOF

type located = { tok : t; line : int; col : int }

let keywords =
  [
    "if"; "else"; "while"; "for"; "return"; "struct"; "typedef"; "pardata";
    "int"; "float"; "double"; "char"; "void"; "break"; "continue"; "new";
    "unsigned";
  ]

let describe = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "%C" c
  | IDENT s -> s
  | TYVAR s -> "$" ^ s
  | KW s -> s
  | PUNCT s -> s
  | OPSECTION s -> "(" ^ s ^ ")"
  | EOF -> "<eof>"
