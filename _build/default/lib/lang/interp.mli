(** Reference interpreter for Skil.

    Dynamically typed evaluation of (type-checked) programs, supporting the
    full language incl. higher-order functions, currying, partial
    application and operator sections — so it can execute both source
    programs and the first-order output of the instantiation pass, which is
    what the semantics-preservation tests compare.

    The skeleton builtins of paper section 3 need a simulated machine
    context; they are available when the state is created with [`Par ctx]
    (see {!Spmd}) and raise {!Value.Skil_runtime_error} in sequential
    mode. *)

type state

val make :
  ?backend:[ `Seq | `Par of Machine.ctx ] ->
  tyenv:Typecheck.env ->
  Ast.program ->
  state

val call : state -> string -> Value.t list -> Value.t
(** Invoke a program function (or builtin) by name.  Partial application
    returns a function value. *)

val apply : state -> Value.t -> Value.t list -> Value.t
(** Apply a function value (used by skeleton callbacks). *)

val output : state -> string
(** Everything printed through the print_* builtins so far. *)

val default_value : state -> Ast.typ -> Value.t
(** The C zero value of a type (what uninitialized locals start as). *)
