lib/lang/instantiate.mli: Ast Typecheck
