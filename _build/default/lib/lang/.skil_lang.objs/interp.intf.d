lib/lang/interp.mli: Ast Machine Typecheck Value
