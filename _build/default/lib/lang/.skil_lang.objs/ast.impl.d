lib/lang/ast.ml: List Option Printf String
