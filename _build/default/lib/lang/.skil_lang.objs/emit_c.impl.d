lib/lang/emit_c.ml: Ast Buffer List Option Printf String
